(* Crash-recovery chaos smoke, run from @check:

     spawn daemon (--journal-dir, --checkpoint-every)
       -> in-process chaos proxy between clients and daemon
       -> 8 reconnecting clients drive scripted sessions through the
          proxy (cuts, dribbles, delays, partial writes; one fixed seed)
       -> SIGKILL the daemon mid-run, respawn it on the same journal dir
       -> clients reconnect; the daemon auto-resumes every session
       -> every exec output must be byte-identical to an undisturbed
          in-process Interactive run, and every final fingerprint must
          match the local reference — chaos and the crash must be
          observationally invisible. *)

open Adpm_serve
module Json = Adpm_trace.Json
module Chaos = Adpm_chaos.Chaos

let exe =
  if Array.length Sys.argv < 2 then (
    prerr_endline "usage: chaos_smoke TEAMSIM_EXE";
    exit 2)
  else Sys.argv.(1)

let failures = ref 0

let check name ok =
  if not ok then begin
    incr failures;
    Printf.eprintf "chaos-smoke FAIL: %s\n" name
  end

let tmpdir =
  let base = Filename.temp_file "teamsimd_chaos" "" in
  Sys.remove base;
  Unix.mkdir base 0o700;
  base

let daemon_sock = Filename.concat tmpdir "daemon.sock"
let proxy_sock = Filename.concat tmpdir "proxy.sock"
let journal_dir = Filename.concat tmpdir "journal"
let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0

let spawn () =
  Unix.create_process exe
    [|
      exe; "serve"; "--socket"; daemon_sock; "--checkpoint-dir"; tmpdir;
      "--journal-dir"; journal_dir; "--checkpoint-every"; "4";
    |]
    devnull devnull Unix.stderr

let wait_for_daemon () =
  let deadline = Unix.gettimeofday () +. 10. in
  let rec loop () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX daemon_sock) with
    | () -> Unix.close fd
    | exception Unix.Unix_error _ ->
      Unix.close fd;
      if Unix.gettimeofday () > deadline then (
        prerr_endline "chaos-smoke FAIL: daemon never came up";
        exit 1);
      Unix.sleepf 0.05;
      loop ()
  in
  loop ()

let n_clients = 8
let script =
  [
    "auto"; "step"; "auto"; "suggest"; "auto"; "status"; "step"; "auto";
    "auto"; "status";
  ]

let kill_after = 5 (* rounds before the SIGKILL *)

let designer i = if i mod 2 = 0 then "alice" else "bob"

let () =
  let pid = ref (spawn ()) in
  wait_for_daemon ();
  let envf name d =
    match Option.bind (Sys.getenv_opt name) float_of_string_opt with
    | Some v -> v
    | None -> d
  in
  let plan =
    {
      Chaos.cp_cut = envf "CHAOS_CUT" 0.05;
      cp_dribble = envf "CHAOS_DRIBBLE" 0.05;
      cp_delay = envf "CHAOS_DELAY" 0.10;
      cp_delay_max = 0.01;
      cp_split = envf "CHAOS_SPLIT" 0.3;
    }
  in
  let proxy =
    Chaos.create ~seed:20260808 ~plan ~listen:(Unix.ADDR_UNIX proxy_sock)
      ~upstream:(Unix.ADDR_UNIX daemon_sock)
  in
  let pump () = Chaos.step ~timeout:0. proxy in

  (* undisturbed references: the same scripts through in-process sessions *)
  let references =
    Array.init n_clients (fun i ->
        Adpm_teamsim.Interactive.create ~mode:Adpm_core.Dpm.Adpm ~seed:(i + 1)
          Adpm_scenarios.Simple.scenario ~designer:(designer i))
  in
  let expected_outputs =
    Array.map
      (fun r ->
        List.map
          (fun line ->
            match Adpm_teamsim.Interactive.execute r line with
            | Ok s -> Some s
            | Error _ -> None)
          script)
      references
  in

  let clients =
    Array.init n_clients (fun i ->
        Client.connect_persistent ~retries:12 ~backoff:0.05
          ~seed:(1000 + i)
          ~client:(Printf.sprintf "chaos-c%d" i)
          (Unix.ADDR_UNIX proxy_sock))
  in
  let sids = Array.make n_clients "?" in
  Array.iteri
    (fun i c ->
      let resp =
        Client.rpc ~timeout:60. ~pump c
          (Wire.Open
             {
               scenario = "simple";
               mode = Adpm_core.Dpm.Adpm;
               seed = i + 1;
               designer = designer i;
             })
      in
      check (Printf.sprintf "client %d open" i) resp.Wire.r_ok;
      sids.(i) <- Option.value ~default:"?" (Client.body_str resp "session"))
    clients;

  (* round-robin the scripts; hard-kill + respawn the daemon mid-run *)
  let got_outputs = Array.make n_clients [] in
  List.iteri
    (fun round line ->
      if round = kill_after then begin
        Unix.kill !pid Sys.sigkill;
        ignore (Unix.waitpid [] !pid);
        pid := spawn ();
        wait_for_daemon ()
      end;
      Array.iteri
        (fun i c ->
          (if Sys.getenv_opt "CHAOS_TRACE" <> None then
             Printf.eprintf "round %d client %d\n%!" round i);
          let resp =
            Client.rpc ~timeout:60. ~pump c
              (Wire.Exec { session = sids.(i); line })
          in
          got_outputs.(i) <- Client.body_str resp "output" :: got_outputs.(i))
        clients)
    script;

  let ok_sessions = ref 0 in
  Array.iteri
    (fun i c ->
      let outputs_match = List.rev got_outputs.(i) = expected_outputs.(i) in
      check (Printf.sprintf "client %d outputs byte-identical" i) outputs_match;
      let status =
        Client.rpc ~timeout:60. ~pump c (Wire.Status { session = sids.(i) })
      in
      check (Printf.sprintf "client %d status" i) status.Wire.r_ok;
      let fp_match =
        Client.body_str status "fingerprint"
        = Some (Session.fingerprint_of_interactive references.(i))
      in
      check (Printf.sprintf "client %d fingerprint matches reference" i)
        fp_match;
      if outputs_match && fp_match then incr ok_sessions)
    clients;
  check
    (Printf.sprintf "all %d sessions identical to undisturbed run (got %d)"
       n_clients !ok_sessions)
    (!ok_sessions = n_clients);

  (* at least one client must actually have crossed the crash *)
  let total_reconnects =
    Array.fold_left (fun acc c -> acc + Client.reconnects c) 0 clients
  in
  check "clients reconnected at least once" (total_reconnects > 0);

  (* closing a session deletes its journal *)
  Array.iteri
    (fun i c ->
      let resp =
        Client.rpc ~timeout:60. ~pump c (Wire.Close { session = sids.(i) })
      in
      check (Printf.sprintf "client %d close" i) resp.Wire.r_ok)
    clients;
  let leftover =
    Sys.readdir journal_dir |> Array.to_list
    |> List.filter (fun n -> Filename.check_suffix n ".journal.jsonl")
  in
  check "journals deleted on close" (leftover = []);

  let bye = Client.rpc ~timeout:60. ~pump clients.(0) Wire.Shutdown in
  check "shutdown" bye.Wire.r_ok;
  let _, exit_status = Unix.waitpid [] !pid in
  check "daemon exits cleanly on shutdown" (exit_status = Unix.WEXITED 0);
  Array.iter Client.close clients;
  Chaos.stop proxy;

  let st = Chaos.stats proxy in
  Printf.printf
    "chaos-smoke: %d conns, %d cuts, %d dribbles, %d delays, %d splits, %d \
     reconnects\n"
    st.Chaos.st_conns st.Chaos.st_cuts st.Chaos.st_dribbles st.Chaos.st_delays
    st.Chaos.st_splits total_reconnects;

  (* best-effort cleanup *)
  (try
     Array.iter
       (fun n -> try Sys.remove (Filename.concat journal_dir n) with _ -> ())
       (Sys.readdir journal_dir);
     Unix.rmdir journal_dir
   with _ -> ());
  (try
     Array.iter
       (fun n -> try Sys.remove (Filename.concat tmpdir n) with _ -> ())
       (Sys.readdir tmpdir);
     Unix.rmdir tmpdir
   with _ -> ());
  if !failures > 0 then (
    Printf.eprintf "chaos-smoke: %d failure(s)\n" !failures;
    exit 1)
  else print_endline "chaos-smoke OK"
