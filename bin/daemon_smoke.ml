(* teamsimd end-to-end smoke, run from @check:

     spawn daemon -> hello -> open -> exec ops -> checkpoint
       -> SIGKILL the daemon -> spawn a fresh daemon -> resume
       -> verify the resumed state matches the checkpoint fingerprint
       -> hostile-input probes (garbage, unknown op, bad shape, oversize)
       -> shutdown (clean daemon exit)

   Also replays the same command script through an in-process
   Interactive session and requires byte-identical operation reports:
   the socket must not change semantics. *)

open Adpm_serve
module Json = Adpm_trace.Json

let exe =
  if Array.length Sys.argv < 2 then (
    prerr_endline "usage: daemon_smoke TEAMSIM_EXE";
    exit 2)
  else Sys.argv.(1)

let failures = ref 0

let check name ok =
  if not ok then begin
    incr failures;
    Printf.eprintf "daemon-smoke FAIL: %s\n" name
  end

let tmpdir =
  let base = Filename.temp_file "teamsimd_smoke" "" in
  Sys.remove base;
  Unix.mkdir base 0o700;
  base

let sock = Filename.concat tmpdir "teamsimd.sock"
let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0

let spawn () =
  Unix.create_process exe
    [| exe; "serve"; "--socket"; sock; "--checkpoint-dir"; tmpdir |]
    devnull devnull Unix.stderr

let wait_for_socket () =
  let deadline = Unix.gettimeofday () +. 10. in
  let rec loop () =
    match Client.connect (Unix.ADDR_UNIX sock) with
    | c -> c
    | exception Unix.Unix_error _ ->
      if Unix.gettimeofday () > deadline then (
        prerr_endline "daemon-smoke FAIL: daemon never came up";
        exit 1);
      Unix.sleepf 0.05;
      loop ()
  in
  loop ()

let expect_ok name (resp : Wire.response) =
  check (name ^ " ok")
    (resp.Wire.r_ok
    ||
    (Printf.eprintf "  %s answered: %s\n" name (Json.to_string resp.Wire.r_body);
     false));
  resp

let expect_err name code (resp : Wire.response) =
  check
    (Printf.sprintf "%s yields %s" name code)
    ((not resp.Wire.r_ok) && resp.Wire.r_code = Some code)

let script = [ "auto"; "auto"; "step"; "auto"; "suggest"; "auto" ]

let () =
  let pid = spawn () in
  let c = wait_for_socket () in
  let hello = expect_ok "hello" (Client.rpc c Wire.Hello) in
  check "hello names teamsimd" (Client.body_str hello "server" = Some "teamsimd");

  let opened =
    expect_ok "open"
      (Client.rpc c
         (Wire.Open
            {
              scenario = "simple";
              mode = Adpm_core.Dpm.Adpm;
              seed = 3;
              designer = "alice";
            }))
  in
  let sid = Option.value ~default:"?" (Client.body_str opened "session") in

  (* same commands through the in-process Interactive loop: the reports
     must match the daemon's byte for byte *)
  let reference =
    Adpm_teamsim.Interactive.create ~mode:Adpm_core.Dpm.Adpm ~seed:3
      Adpm_scenarios.Simple.scenario ~designer:"alice"
  in
  List.iter
    (fun line ->
      let resp =
        expect_ok ("exec " ^ line)
          (Client.rpc c (Wire.Exec { session = sid; line }))
      in
      let daemon_out = Client.body_str resp "output" in
      let local_out =
        match Adpm_teamsim.Interactive.execute reference line with
        | Ok s -> Some s
        | Error _ -> None
      in
      check
        (Printf.sprintf "exec %s matches CLI loop" line)
        (daemon_out = local_out))
    script;

  let status = expect_ok "status" (Client.rpc c (Wire.Status { session = sid })) in
  let ops_before = Client.body_int status "operations" in
  let evals_before = Client.body_int status "evaluations" in

  let ckpt =
    expect_ok "checkpoint"
      (Client.rpc c (Wire.Checkpoint { session = sid; path = None }))
  in
  let ckpt_path = Option.value ~default:"?" (Client.body_str ckpt "path") in
  let fingerprint = Client.body_str ckpt "fingerprint" in
  check "checkpoint reports a fingerprint" (fingerprint <> None);

  (* hard-kill the daemon: sessions must survive via the artifact *)
  Unix.kill pid Sys.sigkill;
  ignore (Unix.waitpid [] pid);
  Client.close c;

  let pid2 = spawn () in
  let c2 = wait_for_socket () in
  let resumed =
    expect_ok "resume" (Client.rpc c2 (Wire.Resume { path = ckpt_path }))
  in
  let sid2 = Option.value ~default:"?" (Client.body_str resumed "session") in
  check "resume restores the fingerprint"
    (Client.body_str resumed "fingerprint" = fingerprint);
  let status2 =
    expect_ok "status after resume" (Client.rpc c2 (Wire.Status { session = sid2 }))
  in
  check "op count survives the restart"
    (Client.body_int status2 "operations" = ops_before);
  check "evaluation count survives the restart"
    (Client.body_int status2 "evaluations" = evals_before);
  ignore
    (expect_ok "exec after resume"
       (Client.rpc c2 (Wire.Exec { session = sid2; line = "status" })));

  (* hostile input: each probe must yield a structured error frame and
     leave the daemon serving *)
  Client.send c2 (Json.Str "ignored");
  Wire.write_all (Client.fd c2) "this is not json\n";
  (* the Str frame parses but is not an object; the next is not JSON *)
  expect_err "non-object frame" "bad_request" (Client.next_response c2);
  expect_err "garbage frame" "parse" (Client.next_response c2);
  Client.send c2 (Json.Obj [ ("op", Json.Str "frobnicate") ]);
  expect_err "unknown op" "bad_request" (Client.next_response c2);
  Client.send c2 (Json.Obj [ ("op", Json.Str "exec"); ("session", Json.Num 7.) ]);
  expect_err "mistyped field" "bad_request" (Client.next_response c2);
  expect_err "unknown session" "unknown_session"
    (Client.rpc c2 (Wire.Exec { session = "s999"; line = "status" }));

  (* oversize frame on a throwaway connection (it gets dropped) *)
  let c3 = wait_for_socket () in
  Wire.write_all (Client.fd c3) (String.make (Wire.default_max_frame + 2) 'x');
  Wire.write_all (Client.fd c3) "\n";
  expect_err "oversize frame" "oversize" (Client.next_response c3);
  Client.close c3;

  ignore (expect_ok "hello still served" (Client.rpc c2 Wire.Hello));
  ignore (expect_ok "shutdown" (Client.rpc c2 Wire.Shutdown));
  let _, exit_status = Unix.waitpid [] pid2 in
  check "daemon exits cleanly on shutdown" (exit_status = Unix.WEXITED 0);
  Client.close c2;

  (try Sys.remove ckpt_path with Sys_error _ -> ());
  (try Sys.remove sock with Sys_error _ -> ());
  (try Unix.rmdir tmpdir with Unix.Unix_error _ -> ());
  if !failures > 0 then (
    Printf.eprintf "daemon-smoke: %d failure(s)\n" !failures;
    exit 1)
  else print_endline "daemon-smoke OK"
