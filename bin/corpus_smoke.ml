(* Corpus smoke gate for the canonical DDDL pipeline.

   Eight generator specs spanning the parameter space (topologies,
   coupling, slack, jitter). For each: resolve it through the registry
   (generate DDDL -> elaborate), check the emitted source parse/emit
   round-trip and the spec fixed point, and run one seed in both modes —
   every run must complete. Nonzero exit on any failure, so a generator,
   emitter, elaborator, or registry regression breaks @check. *)

open Adpm_core
open Adpm_teamsim
open Adpm_scenarios

let specs =
  [
    "n=2,k=1,seed=0";
    "n=3,k=2,seed=7";
    "n=3,k=2,seed=7,topology=star";
    "n=4,k=2,seed=3,topology=random-0.5";
    "n=4,k=3,seed=1,coupling=0.5";
    "n=3,k=2,seed=5,slack=0.05";
    "n=4,k=2,seed=9,slack=0.3,jitter=0.4";
    "n=5,k=3,seed=2,topology=star,coupling=0.25";
  ]

let failures = ref 0

let fail spec fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.printf "FAIL %-45s %s\n" spec msg)
    fmt

let check spec =
  let failures_before = !failures in
  (match Registry.resolve_result ("gen:" ^ spec) with
  | Error e -> fail spec "does not resolve: %s" e
  | Ok scenario -> (
    match Generated.params_of_spec spec with
    | Error e -> fail spec "spec does not parse: %s" e
    | Ok params ->
      let canonical = Generated.spec_of_params params in
      (match Generated.params_of_spec canonical with
      | Ok p2 when Generated.spec_of_params p2 = canonical -> ()
      | Ok _ -> fail spec "canonical spec %S is not a fixed point" canonical
      | Error e -> fail spec "canonical spec %S: %s" canonical e);
      if scenario.Scenario.sc_name <> "gen:" ^ canonical then
        fail spec "scenario named %S, want %S" scenario.Scenario.sc_name
          ("gen:" ^ canonical);
      let source = Generated.source params in
      (match Adpm_dddl.Parser.parse source with
      | decl -> (
        match Adpm_dddl.Emit.roundtrip decl with
        | Ok _ -> ()
        | Error e -> fail spec "emit round-trip: %s" e)
      | exception Adpm_dddl.Parser.Error { line; col; message } ->
        fail spec "emitted DDDL does not parse (%d:%d): %s" line col message);
      List.iter
        (fun mode ->
          let cfg = Config.default ~mode ~seed:1 in
          match Engine.run cfg scenario with
          | outcome ->
            if not outcome.Engine.o_summary.Metrics.s_completed then
              fail spec "%s seed 1 did not complete"
                (Dpm.mode_to_string mode)
          | exception e ->
            fail spec "%s seed 1 raised %s" (Dpm.mode_to_string mode)
              (Printexc.to_string e))
        [ Dpm.Conventional; Dpm.Adpm ]));
  if !failures = failures_before then Printf.printf "ok   %s\n" spec

let () =
  List.iter check specs;
  if !failures > 0 then begin
    Printf.printf "corpus smoke: %d failure(s) over %d specs\n" !failures
      (List.length specs);
    exit 1
  end
  else
    Printf.printf "corpus smoke: %d specs generate, round-trip, and run\n"
      (List.length specs)
