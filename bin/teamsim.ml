(* TeamSim command-line interface.

   Subcommands:
     run     — simulate one scenario/mode/seed, print the per-operation
               profile and the run summary (optionally recording a trace)
     sweep   — run many seeds for both modes and print the Fig. 9-style
               comparison table
     replay  — re-execute a recorded trace and check convergence
     analyze — derived views of a recorded trace
     serve   — teamsimd: persistent multi-session daemon over a socket
     list    — list available scenarios *)

open Cmdliner
open Adpm_core
open Adpm_teamsim
open Adpm_scenarios
open Adpm_trace

(* every scenario reference — plain name, gen:<spec>, file:<path> — goes
   through the one registry *)
let find_scenario = Registry.resolve_result

let mode_conv =
  let parse = function
    | "adpm" -> Ok Dpm.Adpm
    | "conventional" | "conv" -> Ok Dpm.Conventional
    | s -> Error (`Msg (Printf.sprintf "bad mode %s (adpm|conventional)" s))
  in
  let print ppf m = Format.pp_print_string ppf (Dpm.mode_to_string m) in
  Arg.conv (parse, print)

(* The scenario can be given positionally or as --scenario; exactly one. *)
let scenario_arg =
  let positional =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"SCENARIO"
          ~doc:
            "Scenario reference: a name from $(b,list), a generator spec \
             $(b,gen:n=4,k=3,seed=0,topology=star), or a DDDL file \
             $(b,file:path.dddl).")
  in
  let named =
    Arg.(
      value
      & opt (some string) None
      & info [ "scenario" ] ~docv:"SCENARIO"
          ~doc:"Scenario reference (alternative to the positional argument).")
  in
  let combine positional named =
    match (positional, named) with
    | Some s, None | None, Some s -> `Ok s
    | Some _, Some _ ->
      `Error
        (false, "give the scenario either positionally or via --scenario, not both")
    | None, None ->
      `Error (true, "required scenario name missing (positional or --scenario)")
  in
  Term.(ret (const combine $ positional $ named))

let mode_arg =
  Arg.(
    value
    & opt mode_conv Dpm.Adpm
    & info [ "m"; "mode" ] ~docv:"MODE"
        ~doc:"Design process mode: $(b,adpm) or $(b,conventional).")

let engine_conv =
  let parse s =
    match Dpm.engine_of_string s with
    | Some e -> Ok e
    | None -> Error (`Msg (Printf.sprintf "bad engine %s (incremental|full)" s))
  in
  let print ppf e = Format.pp_print_string ppf (Dpm.engine_to_string e) in
  Arg.conv (parse, print)

let engine_arg =
  Arg.(
    value
    & opt engine_conv Dpm.Incremental
    & info [ "e"; "engine" ] ~docv:"ENGINE"
        ~doc:
          "DCM propagation engine: $(b,incremental) (dirty-seeded restarts \
           from the persisted box store, the default) or $(b,full) \
           (from-scratch HC4 after every operation). Both produce identical \
           design outcomes; the trace records which one ran.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let latency_arg =
  Arg.(
    value
    & opt int 0
    & info [ "l"; "latency" ] ~docv:"TICKS"
        ~doc:
          "Notification latency in virtual ticks: how long after an \
           operation completes its outcome reaches teammate mailboxes (the \
           acting designer's own feedback is instant). $(b,0), the \
           default, reproduces the original instant-broadcast engine \
           bit-for-bit.")

let duration_conv =
  let parse s =
    match Adpm_sim.Model.duration_of_string s with
    | Ok d -> Ok d
    | Error msg -> Error (`Msg msg)
  in
  let print ppf d =
    Format.pp_print_string ppf (Adpm_sim.Model.duration_to_string d)
  in
  Arg.conv (parse, print)

let duration_arg =
  Arg.(
    value
    & opt duration_conv Adpm_sim.Model.unit_duration
    & info [ "duration-model" ] ~docv:"MODEL"
        ~doc:
          "Virtual duration of each operation: $(b,uniform:N) (every \
           operation takes N ticks) or $(b,per-kind:S,V,D) (synthesis, \
           verification, decompose). Default $(b,uniform:1). At latency 0 \
           durations stretch the virtual clock without changing any \
           outcome.")

let shift_plan_arg =
  let plan_conv =
    let parse s =
      match Shift.plan_of_string s with
      | Ok plan -> Ok plan
      | Error msg -> Error (`Msg msg)
    in
    let print ppf plan =
      Format.pp_print_string ppf (Shift.plan_to_string plan)
    in
    Arg.conv (parse, print)
  in
  Arg.(
    value
    & opt plan_conv Shift.none
    & info [ "shift-plan" ] ~docv:"PLAN"
        ~doc:
          "Scheduled requirement shifts, e.g. \
           $(b,p_budget>=140\\@30;gmin0>=9.5\\@60): at virtual time TICK, \
           re-assign requirement PROP to FLOOR through the DPM. An ADPM \
           team re-propagates immediately; a conventional team discovers \
           the moved requirement only when it next verifies. Needs the \
           discrete-event engine (any nonzero latency or duration works; \
           latency 0 is fine too — only lockstep refuses shifts).")

let value_policy_arg =
  let policy_conv =
    let parse s =
      match Config.value_policy_of_string s with
      | Ok p -> Ok p
      | Error msg -> Error (`Msg msg)
    in
    let print ppf p =
      Format.pp_print_string ppf (Config.value_policy_to_string p)
    in
    Arg.conv (parse, print)
  in
  Arg.(
    value
    & opt policy_conv Config.Endpoint
    & info [ "value-policy" ] ~docv:"POLICY"
        ~doc:
          "ADPM value-selection heuristic f_v: $(b,endpoint) (the paper's \
           vote-driven quantile pick, the default) or $(b,headroom) \
           (maximize log of the minimum normalized constraint headroom — \
           keeps margin for later requirement shifts at extra evaluation \
           cost).")

(* {2 Fault-injection flags} — shared by run and sweep. *)

module Fault = Adpm_fault.Fault

let drop_arg =
  Arg.(
    value
    & opt float 0.
    & info [ "drop" ] ~docv:"RATE"
        ~doc:
          "Probability in [0,1] that a teammate notification is lost in \
           transit (the acting designer's own tool feedback is never \
           faulted). Seeded: the same seed loses the same notifications.")

let dup_arg =
  Arg.(
    value
    & opt float 0.
    & info [ "dup" ] ~docv:"RATE"
        ~doc:
          "Probability in [0,1] that a teammate notification is delivered \
           twice (each copy with its own jitter).")

let jitter_arg =
  Arg.(
    value
    & opt int 0
    & info [ "jitter" ] ~docv:"TICKS"
        ~doc:
          "Extra per-delivery delay drawn uniformly from [0,TICKS] ticks \
           on top of --latency.")

let crash_plan_arg =
  let crashes_conv =
    let parse s =
      match Fault.crashes_of_string s with
      | Ok crashes -> Ok crashes
      | Error msg -> Error (`Msg msg)
    in
    let print ppf crashes =
      Format.pp_print_string ppf (Fault.crashes_to_string crashes)
    in
    Arg.conv (parse, print)
  in
  Arg.(
    value
    & opt crashes_conv []
    & info [ "crash-plan" ] ~docv:"PLAN"
        ~doc:
          "Scheduled designer crashes, e.g. $(b,alice\\@12+5;bob\\@30+10): \
           crash NAME at virtual time TIME, restart it RECOVERY ticks \
           later. A restarted designer has lost its believed-status table \
           and queued notifications and rebuilds from later deliveries.")

let fault_plan_term =
  let combine p_drop p_dup p_jitter p_crashes =
    { Fault.p_drop; p_dup; p_jitter; p_crashes }
  in
  Term.(const combine $ drop_arg $ dup_arg $ jitter_arg $ crash_plan_arg)

let job_retries_arg =
  Arg.(
    value
    & opt int Adpm_parallel.Pool.default_retries
    & info [ "job-retries" ] ~docv:"N"
        ~doc:
          "Extra attempts the worker pool grants a seed shard whose worker \
           crashes or times out before giving up on it.")

let job_timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "job-timeout" ] ~docv:"SECONDS"
        ~doc:
          "Kill and requeue a worker that goes this long without \
           delivering a result (wall-clock). Unset means wait forever.")

(* Reject a bad combination of numeric settings before the engine raises. *)
let validated cfg =
  match Config.validate cfg with
  | Ok () -> cfg
  | Error msg ->
    Printf.eprintf "invalid configuration: %s\n" msg;
    exit 1

let seeds_arg =
  Arg.(
    value
    & opt int 60
    & info [ "n"; "seeds" ] ~docv:"N" ~doc:"Number of seeds per cell.")

let jobs_arg =
  Arg.(
    value
    & opt int 1
    & info [ "j"; "jobs" ] ~docv:"JOBS"
        ~doc:
          "Worker processes for multi-seed runs ($(b,0) = one per CPU \
           core). Results are bit-identical for any value; only wall time \
           changes.")

let effective_jobs jobs =
  if jobs = 0 then Adpm_parallel.Pool.cpu_count () else max 1 jobs

let backend_arg =
  let backend_conv =
    Arg.conv
      ( (fun s ->
          match Engine.backend_of_string s with
          | Ok b -> Ok b
          | Error e -> Error (`Msg e)),
        fun ppf b -> Format.pp_print_string ppf (Engine.backend_to_string b) )
  in
  Arg.(
    value
    & opt backend_conv Engine.Domains
    & info [ "backend" ] ~docv:"BACKEND"
        ~doc:
          "Parallel backend for multi-seed runs: $(b,domains) (shared-memory \
           domain pool, the throughput default), $(b,fork) (process pool \
           with crash/hang supervision — use with $(b,--retries) / \
           $(b,--job-timeout) or fault injection), or $(b,inline) \
           (sequential reference). Results are bit-identical across \
           backends.")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print every operation.")

let csv_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"FILE"
        ~doc:"Write the per-operation profile (run) or per-run table (sweep) as CSV.")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE" ~doc:"Write the run summary as JSON.")

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc contents)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record the run as a JSONL event trace, replayable with \
           $(b,replay).")

let run_cmd =
  let action scenario_name mode engine seed latency duration_model faults
      shifts value_policy verbose csv json trace =
    match find_scenario scenario_name with
    | Error e ->
      prerr_endline e;
      exit 1
    | Ok scenario ->
      let cfg =
        validated
          {
            (Config.default ~mode ~seed) with
            Config.engine;
            latency;
            duration_model;
            faults;
            shifts;
            value_policy;
          }
      in
      let on_op r =
        if verbose then
          Printf.printf "  op %3d %-12s %-12s evals=%3d new-violations=%d%s\n"
            r.Metrics.m_index r.Metrics.m_designer r.Metrics.m_kind
            r.Metrics.m_evaluations r.Metrics.m_new_violations
            (if r.Metrics.m_spin then " [spin]" else "")
      in
      let tracer =
        match trace with
        | None -> Tracer.null
        | Some path -> (
          match Sink.jsonl_file path with
          | sink -> Tracer.create sink
          | exception Sys_error msg ->
            Printf.eprintf "cannot open trace file: %s\n" msg;
            exit 1)
      in
      let outcome =
        match
          Fun.protect
            ~finally:(fun () -> Tracer.close tracer)
            (fun () -> Engine.run ~on_op ~tracer cfg scenario)
        with
        | outcome -> outcome
        | exception Invalid_argument msg ->
          (* a crash plan naming an unknown designer is only detectable
             once the scenario is built *)
          prerr_endline msg;
          exit 1
      in
      (match trace with
      | Some path ->
        Printf.printf "wrote %d trace events to %s\n" (Tracer.seq tracer) path
      | None -> ());
      print_endline (Metrics.summary_line outcome.Engine.o_summary);
      (match csv with
      | Some path ->
        write_file path (Export.profile_csv outcome.Engine.o_summary);
        Printf.printf "wrote profile CSV to %s\n" path
      | None -> ());
      (match json with
      | Some path ->
        write_file path (Export.summary_json outcome.Engine.o_summary);
        Printf.printf "wrote summary JSON to %s\n" path
      | None -> ())
  in
  let term =
    Term.(
      const action $ scenario_arg $ mode_arg $ engine_arg $ seed_arg
      $ latency_arg $ duration_arg $ fault_plan_term $ shift_plan_arg
      $ value_policy_arg $ verbose_arg $ csv_arg $ json_arg $ trace_arg)
  in
  Cmd.v (Cmd.info "run" ~doc:"Simulate one design process run.") term

let trace_file_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"TRACE" ~doc:"JSONL trace file recorded by $(b,run --trace).")

let read_trace path =
  match Codec.read_file path with
  | Ok events -> events
  | Error msg ->
    Printf.eprintf "cannot read trace %s: %s\n" path msg;
    exit 1

let replay_cmd =
  let action path =
    let events = read_trace path in
    match Replay.run ~resolve:Registry.resolve events with
    | exception Replay.Replay_error msg ->
      Printf.eprintf "cannot replay %s: %s\n" path msg;
      exit 1
    | report ->
      print_string (Replay.render report);
      if not (Replay.converged report) then exit 1
  in
  let term = Term.(const action $ trace_file_arg) in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Re-execute a recorded trace against a fresh design state and \
          verify it converges to the recorded outcome (nonzero exit on \
          divergence).")
    term

let analyze_cmd =
  let action path json =
    let events = read_trace path in
    let report = Analyze.analyze events in
    print_string (Analyze.render report);
    match json with
    | Some out ->
      write_file out (Json.to_string (Analyze.to_json report) ^ "\n");
      Printf.printf "wrote analysis JSON to %s\n" out
    | None -> ()
  in
  let json_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Write the analysis report as JSON.")
  in
  let term = Term.(const action $ trace_file_arg $ json_out_arg) in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Derived views of a recorded trace: notification latency, \
          propagation-wave sizes, violation open/close spans.")
    term

let sweep_cmd =
  let action scenario_name seeds backend jobs latency faults retries job_timeout
      csv =
    match find_scenario scenario_name with
    | Error e ->
      prerr_endline e;
      exit 1
    | Ok scenario ->
      let jobs = effective_jobs jobs in
      let seed_list = List.init seeds (fun i -> i + 1) in
      let cfg mode =
        validated
          { (Config.default ~mode ~seed:0) with Config.latency; faults }
      in
      let on_retry (e : Adpm_parallel.Pool.supervision_event) =
        Printf.eprintf
          "pool: item %d attempt %d failed (%s); %d item(s) requeued\n%!"
          e.Adpm_parallel.Pool.sv_index e.Adpm_parallel.Pool.sv_attempt
          e.Adpm_parallel.Pool.sv_reason e.Adpm_parallel.Pool.sv_requeued
      in
      let run_mode mode =
        Engine.run_many ~backend ~jobs ~retries ?job_timeout ~on_retry
          (cfg mode) scenario ~seeds:seed_list
      in
      let conv_runs = run_mode Dpm.Conventional in
      let adpm_runs = run_mode Dpm.Adpm in
      print_string
        (Report.comparison_table
           ~title:(Printf.sprintf "scenario %s, %d seeds" scenario_name seeds)
           [ Report.aggregate conv_runs; Report.aggregate adpm_runs ]);
      (match csv with
      | Some path ->
        write_file path (Export.runs_csv (conv_runs @ adpm_runs));
        Printf.printf "wrote per-run CSV to %s\n" path
      | None -> ())
  in
  let term =
    Term.(
      const action $ scenario_arg $ seeds_arg $ backend_arg $ jobs_arg
      $ latency_arg $ fault_plan_term $ job_retries_arg $ job_timeout_arg
      $ csv_arg)
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Compare modes over many seeds (Fig. 9 data).")
    term

(* {2 Temporal-property checking and schedule fuzzing} *)

module Prop = Adpm_check.Prop
module Props = Adpm_check.Props
module Fuzz = Adpm_check.Fuzz

(* Without an explicit horizon, bound the delivery window by the largest
   transit time the trace itself exhibits — tight for clean runs, and a
   flag away from exact when the caller knows latency + jitter. *)
let observed_horizon events =
  List.fold_left
    (fun acc (ev : Event.stamped) ->
      match ev.Event.event with
      | Event.Notification_delivered { sent_at; delivered_at; _ } ->
        max acc (delivered_at - sent_at)
      | _ -> acc)
    0 events

let check_cmd =
  let horizon_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "horizon" ] ~docv:"TICKS"
          ~doc:
            "Worst-case delivery transit (latency + jitter) used to decide \
             whether an undelivered notification was still in flight when \
             the run halted. Default: the largest transit observed in the \
             trace.")
  in
  let action path horizon crashes =
    let events = read_trace path in
    let horizon =
      match horizon with Some h -> h | None -> observed_horizon events
    in
    let results = Prop.check (Props.suite ~horizon ~crashes ()) events in
    print_string (Prop.render results);
    let worst =
      List.fold_left
        (fun acc r ->
          match (acc, r.Prop.c_verdict) with
          | _, Prop.Fail _ -> 1
          | 0, Prop.Truncated _ -> 2
          | _ -> acc)
        0 results
    in
    if worst <> 0 then exit worst
  in
  let term = Term.(const action $ trace_file_arg $ horizon_arg $ crash_plan_arg) in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Check the temporal-property suite over a recorded trace: every \
          pushed violation delivered or resolved, no designer starves, \
          crashed designers rejoin, dropped notifications stay dropped. \
          Exit 1 on a violated property, 2 on a truncated (ring-buffer) \
          trace — truncation is refused, never a vacuous pass.")
    term

let fuzz_cmd =
  let count_arg =
    Arg.(
      value
      & opt int 100
      & info [ "n"; "count" ] ~docv:"N"
          ~doc:"Random schedules to run before declaring the suite clean.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"PREFIX"
          ~doc:
            "Where to write the minimized counterexample \
             ($(b,PREFIX.trace.jsonl) + $(b,PREFIX.json)) when a property \
             fails.")
  in
  let max_ops_arg =
    Arg.(
      value
      & opt int 400
      & info [ "max-ops" ] ~docv:"N"
          ~doc:"Operation budget per fuzzed run (smaller = faster fuzzing).")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No per-schedule progress.")
  in
  let action scenario_name mode seed count max_ops faults out quiet =
    match find_scenario scenario_name with
    | Error e ->
      prerr_endline e;
      exit 1
    | Ok scenario ->
      (match Fault.validate faults with
      | Ok () -> ()
      | Error msg ->
        Printf.eprintf "invalid fault plan: %s\n" msg;
        exit 1);
      (* explicit fault flags pin the plan; otherwise each schedule draws
         its own *)
      let faults = if Fault.is_none faults then None else Some faults in
      let progress i =
        if (not quiet) && i mod 10 = 0 then Printf.printf "  %d schedules ok\n%!" i
      in
      let report =
        match
          Fuzz.fuzz ?faults ~max_ops ~progress ~mode ~seed ~count scenario
        with
        | report -> report
        | exception Invalid_argument msg ->
          prerr_endline msg;
          exit 1
      in
      (match report.Fuzz.fz_violation with
      | None ->
        Printf.printf
          "%d schedules on %s/%s: all temporal properties hold\n"
          report.Fuzz.fz_schedules scenario_name (Dpm.mode_to_string mode)
      | Some v ->
        Printf.printf "property %s FAILED after %d schedule(s)\n" v.Fuzz.v_prop
          report.Fuzz.fz_schedules;
        Printf.printf "  %s [seq %d..%d]\n" v.Fuzz.v_reason v.Fuzz.v_from_seq
          v.Fuzz.v_to_seq;
        Printf.printf "  schedule:  %s\n"
          (Fuzz.schedule_to_string v.Fuzz.v_original);
        Printf.printf "  minimized: %s (%d shrink steps, %d events)\n"
          (Fuzz.schedule_to_string v.Fuzz.v_schedule)
          v.Fuzz.v_shrink_steps
          (List.length v.Fuzz.v_events);
        (match out with
        | Some prefix ->
          let paths =
            Fuzz.write_artifact ~prefix ~scenario:scenario_name ~mode v
          in
          List.iter (Printf.printf "wrote %s\n") paths
        | None -> ());
        exit 1)
  in
  let term =
    Term.(
      const action $ scenario_arg $ mode_arg $ seed_arg $ count_arg
      $ max_ops_arg $ fault_plan_term $ out_arg $ quiet_arg)
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Fuzz the discrete-event schedule: run many random \
          (seed, latency, duration, fault-plan) combinations, check the \
          temporal-property suite over each complete trace, and on a \
          violation shrink the schedule to a minimal replayable \
          counterexample (nonzero exit).")
    term

let interactive_cmd =
  let designer_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "d"; "designer" ] ~docv:"NAME"
          ~doc:"Which team member to play (see the scenario's designers).")
  in
  let action scenario_name mode seed designer =
    match find_scenario scenario_name with
    | Error e ->
      prerr_endline e;
      exit 1
    | Ok scenario -> (
      match Interactive.create ~mode ~seed scenario ~designer with
      | exception Invalid_argument msg ->
        prerr_endline msg;
        exit 1
      | session ->
        Printf.printf
          "Interactive %s session on %s. Type 'help' for commands, 'quit' to leave.\n"
          (Dpm.mode_to_string mode) scenario_name;
        let rec loop () =
          if Interactive.finished session then
            print_endline "Design complete."
          else begin
            Printf.printf "%s> %!" (Interactive.prompt session);
            match In_channel.input_line stdin with
            | None -> ()
            | Some "quit" | Some "exit" -> ()
            | Some line ->
              (match Interactive.execute session line with
              | Ok output -> print_string output
              | Error msg -> Printf.printf "error: %s\n" msg);
              loop ()
          end
        in
        loop ())
  in
  let term =
    Term.(const action $ scenario_arg $ mode_arg $ seed_arg $ designer_arg)
  in
  Cmd.v
    (Cmd.info "interactive"
       ~doc:"Play one designer yourself; the rest of the team is simulated.")
    term

let list_cmd =
  let action () =
    List.iter
      (fun s ->
        Printf.printf "%-10s %s\n" s.Scenario.sc_name s.Scenario.sc_description)
      Registry.builtin;
    print_endline
      "gen:SPEC   generated scenario, e.g. gen:n=4,k=3,seed=0,topology=star";
    print_endline "file:PATH  scenario elaborated from a DDDL file"
  in
  Cmd.v (Cmd.info "list" ~doc:"List scenarios.") Term.(const action $ const ())

let serve_cmd =
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Listen on a Unix-domain socket at $(docv).")
  in
  let tcp_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "tcp" ] ~docv:"HOST:PORT"
          ~doc:"Listen on TCP at the numeric $(docv), e.g. 127.0.0.1:7777.")
  in
  let checkpoint_dir_arg =
    Arg.(
      value
      & opt string "."
      & info [ "checkpoint-dir" ] ~docv:"DIR"
          ~doc:"Directory for default checkpoint artifact paths.")
  in
  let max_sessions_arg =
    Arg.(
      value
      & opt int 256
      & info [ "max-sessions" ] ~docv:"N"
          ~doc:"Maximum concurrently open sessions.")
  in
  let journal_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal-dir" ] ~docv:"DIR"
          ~doc:
            "Write-ahead journal directory. Every accepted open/exec/resume \
             is journaled (fsync'd before execution); a restarted daemon \
             pointed at the same $(docv) rebuilds every in-flight session \
             automatically.")
  in
  let checkpoint_every_arg =
    Arg.(
      value
      & opt int 0
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:
            "Auto-compact a session's journal every $(docv) executed \
             commands (0 disables compaction).")
  in
  let max_conns_arg =
    Arg.(
      value
      & opt int 64
      & info [ "max-conns" ] ~docv:"N"
          ~doc:
            "Connection admission limit: clients past it are answered with \
             one `overloaded' error frame and disconnected.")
  in
  let max_ops_arg =
    Arg.(
      value
      & opt int 0
      & info [ "max-ops" ] ~docv:"N"
          ~doc:
            "Per-session exec budget (0 = unlimited); past it every exec is \
             refused with `overloaded'.")
  in
  let action socket tcp checkpoint_dir max_sessions journal_dir checkpoint_every
      max_conns max_ops =
    let addr =
      match (socket, tcp) with
      | Some p, None -> Ok (Adpm_serve.Daemon.Unix_path p)
      | None, Some hp -> (
        match String.rindex_opt hp ':' with
        | Some i -> (
          let host = String.sub hp 0 i in
          match
            int_of_string_opt (String.sub hp (i + 1) (String.length hp - i - 1))
          with
          | Some port -> Ok (Adpm_serve.Daemon.Tcp (host, port))
          | None -> Error (Printf.sprintf "bad port in --tcp %s" hp))
        | None -> Error (Printf.sprintf "--tcp wants HOST:PORT, got %s" hp))
      | Some _, Some _ -> Error "give --socket or --tcp, not both"
      | None, None -> Error "teamsimd needs a listen address: --socket or --tcp"
    in
    match addr with
    | Error msg ->
      prerr_endline msg;
      exit 2
    | Ok addr -> (
      let cfg =
        {
          (Adpm_serve.Daemon.default_config ~addr ~scenarios:Registry.builtin)
          with
          Adpm_serve.Daemon.dc_resolve = Registry.resolve_result;
          dc_checkpoint_dir = checkpoint_dir;
          dc_max_sessions = max_sessions;
          dc_journal_dir = journal_dir;
          dc_checkpoint_every = checkpoint_every;
          dc_max_conns = max_conns;
          dc_max_ops = max_ops;
        }
      in
      match Adpm_serve.Daemon.create cfg with
      | exception Unix.Unix_error (err, fn, arg) ->
        Printf.eprintf "teamsimd: cannot listen (%s %s: %s)\n" fn arg
          (Unix.error_message err);
        exit 1
      | exception Failure msg ->
        Printf.eprintf "teamsimd: %s\n" msg;
        exit 1
      | daemon ->
        (match addr with
        | Adpm_serve.Daemon.Unix_path p ->
          Printf.printf "teamsimd listening on %s\n%!" p
        | Adpm_serve.Daemon.Tcp (h, p) ->
          Printf.printf "teamsimd listening on %s:%d\n%!" h p);
        List.iter
          (fun (sid, replayed) ->
            Printf.printf "teamsimd: recovered session %s (%d commands)\n%!"
              sid replayed)
          (Adpm_serve.Daemon.recovered_sessions daemon);
        List.iter
          (fun w -> Printf.printf "teamsimd: warning: %s\n%!" w)
          (Adpm_serve.Daemon.warnings daemon);
        Adpm_serve.Daemon.run daemon)
  in
  let term =
    Term.(
      const action $ socket_arg $ tcp_arg $ checkpoint_dir_arg
      $ max_sessions_arg $ journal_dir_arg $ checkpoint_every_arg
      $ max_conns_arg $ max_ops_arg)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run teamsimd: a persistent daemon multiplexing interactive \
          sessions over a JSONL socket protocol (hello, open, exec, status, \
          checkpoint, resume, close, shutdown).")
    term

let () =
  let doc = "TeamSim design-process evaluation environment (DAC 2001 repro)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "teamsim" ~doc)
          [ run_cmd; sweep_cmd; replay_cmd; analyze_cmd; check_cmd; fuzz_cmd;
            interactive_cmd; serve_cmd; list_cmd ]))
