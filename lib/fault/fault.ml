open Adpm_util

type crash = { cr_designer : string; cr_at : int; cr_recover : int }

type plan = {
  p_drop : float;
  p_dup : float;
  p_jitter : int;
  p_crashes : crash list;
}

let none = { p_drop = 0.; p_dup = 0.; p_jitter = 0; p_crashes = [] }

let is_none p = p = none

let validate p =
  (* the comparisons also reject nan *)
  let prob name v =
    if v >= 0. && v <= 1. then Ok ()
    else Error (Printf.sprintf "%s must be a probability in [0,1] (got %g)" name v)
  in
  let rec crashes = function
    | [] -> Ok ()
    | c :: rest ->
      if c.cr_designer = "" then Error "crash plan has an empty designer name"
      else if c.cr_at < 0 then
        Error
          (Printf.sprintf "crash time for %s must be non-negative (got %d)"
             c.cr_designer c.cr_at)
      else if c.cr_recover <= 0 then
        Error
          (Printf.sprintf "crash recovery for %s must be positive (got %d)"
             c.cr_designer c.cr_recover)
      else crashes rest
  in
  match prob "drop rate" p.p_drop with
  | Error _ as e -> e
  | Ok () -> (
    match prob "duplication rate" p.p_dup with
    | Error _ as e -> e
    | Ok () ->
      if p.p_jitter < 0 then
        Error (Printf.sprintf "jitter must be non-negative (got %d)" p.p_jitter)
      else crashes p.p_crashes)

(* {2 Crash-plan syntax: NAME@TIME+RECOVERY;NAME@TIME+RECOVERY;...} *)

let crash_to_string c =
  Printf.sprintf "%s@%d+%d" c.cr_designer c.cr_at c.cr_recover

let crashes_to_string cs = String.concat ";" (List.map crash_to_string cs)

let crash_of_string entry =
  let bad () =
    Error
      (Printf.sprintf "bad crash entry %S (expected NAME@TIME+RECOVERY)" entry)
  in
  match String.index_opt entry '@' with
  | None -> bad ()
  | Some at -> (
    let name = String.sub entry 0 at in
    let rest = String.sub entry (at + 1) (String.length entry - at - 1) in
    match String.index_opt rest '+' with
    | None -> bad ()
    | Some plus -> (
      let time = String.sub rest 0 plus in
      let recover = String.sub rest (plus + 1) (String.length rest - plus - 1) in
      match (int_of_string_opt time, int_of_string_opt recover) with
      | Some cr_at, Some cr_recover when name <> "" ->
        Ok { cr_designer = name; cr_at; cr_recover }
      | _ -> bad ()))

let crashes_of_string s =
  let entries =
    List.filter
      (fun e -> String.trim e <> "")
      (String.split_on_char ';' s)
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | e :: rest -> (
      match crash_of_string (String.trim e) with
      | Ok c -> go (c :: acc) rest
      | Error _ as err -> err)
  in
  go [] entries

(* Candidate single-step simplifications, most aggressive first: drop one
   crash entry, silence a whole fault dimension, then halve it. Each
   candidate is strictly "smaller" (fewer crashes, or a lower rate /
   jitter), so greedy descent over this list terminates. *)
let shrink_plan p =
  let without_crash i =
    { p with p_crashes = List.filteri (fun j _ -> j <> i) p.p_crashes }
  in
  let crash_removals = List.mapi (fun i _ -> without_crash i) p.p_crashes in
  let dims =
    [
      (p.p_drop > 0., fun () -> { p with p_drop = 0. });
      (p.p_dup > 0., fun () -> { p with p_dup = 0. });
      (p.p_jitter > 0, fun () -> { p with p_jitter = 0 });
      (p.p_jitter > 1, fun () -> { p with p_jitter = p.p_jitter / 2 });
      (p.p_drop > 0.01, fun () -> { p with p_drop = p.p_drop /. 2. });
      (p.p_dup > 0.01, fun () -> { p with p_dup = p.p_dup /. 2. });
    ]
  in
  crash_removals
  @ List.filter_map (fun (applies, mk) -> if applies then Some (mk ()) else None) dims

(* {2 Runtime injector} *)

type t = { rng : Rng.t; i_plan : plan }

let create ~rng plan = { rng; i_plan = plan }

let plan t = t.i_plan

type fate =
  | Deliver of { extra : int }
  | Drop
  | Duplicate of { extra : int; dup_extra : int }

let jitter t =
  if t.i_plan.p_jitter <= 0 then 0 else Rng.int t.rng (t.i_plan.p_jitter + 1)

(* Fixed draw order (drop, duplicate, jitter per scheduled copy): the
   decision sequence is a pure function of the injector's stream, so a
   rerun with the same seed makes the same choices at the same events. *)
let delivery_fate t =
  if t.i_plan.p_drop > 0. && Rng.float t.rng 1.0 < t.i_plan.p_drop then Drop
  else if t.i_plan.p_dup > 0. && Rng.float t.rng 1.0 < t.i_plan.p_dup then begin
    let extra = jitter t in
    let dup_extra = jitter t in
    Duplicate { extra; dup_extra }
  end
  else Deliver { extra = jitter t }
