(** Deterministic fault model for the discrete-event engine.

    Real collaborative infrastructure does not merely {e delay}
    notifications (PR 4's latency axis): it loses them, duplicates them,
    and loses participants outright. This module describes those failure
    modes as data — a {!plan} — and turns a plan plus a split {!Rng.t}
    stream into a runtime {!t} the engine consults at every
    notification-delivery boundary. Because every stochastic fault
    decision flows through the injector's own SplitMix64 stream (split
    once from the run's root generator), a faulty run replays
    bit-identically from its seed, and a {!none} plan consumes no
    randomness at all — zero-fault configurations stay bit-identical to
    the fault-free engine. *)

open Adpm_util

type crash = {
  cr_designer : string;  (** designer to take down *)
  cr_at : int;  (** virtual crash time (ticks) *)
  cr_recover : int;
      (** ticks until restart; the restarted designer has lost its
          believed-status table and every queued delivery, and rebuilds
          its picture only from post-restart deliveries *)
}

type plan = {
  p_drop : float;  (** P(teammate delivery is lost), in [0, 1] *)
  p_dup : float;  (** P(teammate delivery is duplicated), in [0, 1] *)
  p_jitter : int;
      (** extra delivery delay drawn uniformly from [0, p_jitter] ticks *)
  p_crashes : crash list;  (** scheduled designer crash/restart windows *)
}

val none : plan
(** No faults: zero rates, zero jitter, no crashes. *)

val is_none : plan -> bool
(** Whether the plan is exactly {!none}. The engine uses this to skip the
    fault path (and its Rng split) entirely, preserving bit-identity. *)

val validate : plan -> (unit, string) result
(** Probabilities must lie in [0, 1], jitter must be non-negative, crash
    times non-negative and recovery strictly positive. *)

val crashes_of_string : string -> (crash list, string) result
(** Parse a crash plan like ["alice@12+5;bob@30+10"]: each entry is
    [NAME@TIME+RECOVERY] — crash [NAME] at virtual time [TIME], restart
    it [RECOVERY] ticks later. The empty string is the empty plan. *)

val crashes_to_string : crash list -> string
(** Inverse of {!crashes_of_string}. *)

val shrink_plan : plan -> plan list
(** Candidate one-step simplifications of a plan, most aggressive first:
    each crash entry removed, each fault dimension zeroed, then halved.
    Every candidate is strictly smaller, so a greedy "keep the first
    candidate that still reproduces a failure" descent terminates. Empty
    for {!none}. *)

(** {2 Runtime injector} *)

type t
(** A seeded injector: the plan plus a private random stream. *)

val create : rng:Rng.t -> plan -> t
(** The caller passes a dedicated (split) generator; the injector owns
    it from then on. *)

val plan : t -> plan

type fate =
  | Deliver of { extra : int }
      (** deliver once, [extra] ticks of jitter on top of the base
          latency *)
  | Drop  (** the notification is lost *)
  | Duplicate of { extra : int; dup_extra : int }
      (** deliver twice, each copy with its own jitter *)

val delivery_fate : t -> fate
(** Decide what happens to one teammate delivery. Draws from the
    injector's stream in a fixed order (drop, duplicate, jitter), so the
    decision sequence — and therefore the whole run — is a pure function
    of the seed. *)
