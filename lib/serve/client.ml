module Json = Adpm_trace.Json
module Rng = Adpm_util.Rng

type t = {
  cl_addr : Unix.sockaddr;
  cl_max_frame : int option;
  mutable cl_fd : Unix.file_descr option;
  mutable cl_reader : Wire.Reader.t;
  mutable cl_next_id : int;
  (* persistent (reconnecting) mode; cl_client = None is the plain,
     connect-once client with the original first-frame semantics *)
  cl_client : string option;
  cl_retries : int;
  cl_backoff : float;
  cl_rng : Rng.t;
  mutable cl_connected_once : bool;
  mutable cl_reconnects : int;
}

exception Timeout
exception Closed

let dial addr =
  let domain =
    match addr with
    | Unix.ADDR_UNIX _ -> Unix.PF_UNIX
    | Unix.ADDR_INET _ -> Unix.PF_INET
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (* close-on-exec: a child forked elsewhere in the process (a test
     harness respawning the daemon, say) must not inherit this end and
     keep the connection alive after we close it *)
  Unix.set_close_on_exec fd;
  (try Unix.connect fd addr
   with e ->
     Unix.close fd;
     raise e);
  fd

let connect ?max_frame addr =
  Wire.ignore_sigpipe ();
  let fd = dial addr in
  {
    cl_addr = addr;
    cl_max_frame = max_frame;
    cl_fd = Some fd;
    cl_reader = Wire.Reader.create ?max_frame ();
    cl_next_id = 0;
    cl_client = None;
    cl_retries = 0;
    cl_backoff = 0.;
    cl_rng = Rng.create 1;
    cl_connected_once = true;
    cl_reconnects = 0;
  }

let connect_persistent ?max_frame ?(retries = 8) ?(backoff = 0.02) ?(seed = 1)
    ~client addr =
  Wire.ignore_sigpipe ();
  {
    cl_addr = addr;
    cl_max_frame = max_frame;
    cl_fd = None;
    cl_reader = Wire.Reader.create ?max_frame ();
    cl_next_id = 0;
    cl_client = Some client;
    cl_retries = retries;
    cl_backoff = backoff;
    cl_rng = Rng.create seed;
    cl_connected_once = false;
    cl_reconnects = 0;
  }

let fd t = match t.cl_fd with Some fd -> fd | None -> raise Closed
let client_token t = t.cl_client
let reconnects t = t.cl_reconnects

let drop_conn t =
  (match t.cl_fd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  t.cl_fd <- None;
  t.cl_reader <- Wire.Reader.create ?max_frame:t.cl_max_frame ()

let close t = drop_conn t

let send t json = Wire.send_line (fd t) json

(* Exponential backoff with jitter before reconnect attempt [attempt]
   (0-based), the same shape as lib/parallel's retry loop. Jitter draws
   from the client's own RNG so a fleet of clients created from split
   seeds never thunders in lockstep, and stays deterministic per seed. *)
let backoff_delay t attempt =
  let base = t.cl_backoff *. (2. ** float_of_int attempt) in
  let capped = Float.min base 2.0 in
  capped *. (0.5 +. Rng.float t.cl_rng 0.5)

let sleep_pumped ?pump delay =
  let until = Unix.gettimeofday () +. delay in
  let rec loop () =
    if Unix.gettimeofday () < until then begin
      (match pump with Some f -> f () | None -> ());
      (try Unix.sleepf 0.002
       with Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ()

(* Wait for the next frame. [?pump] runs while waiting so a single-threaded
   harness can host the daemon it is talking to; without it the fd is
   simply selected on (the daemon is another process). *)
let next_response ?(timeout = 10.) ?pump t =
  let fd = fd t in
  let deadline = Unix.gettimeofday () +. timeout in
  let chunk = Bytes.create 4096 in
  let rec loop () =
    match Wire.Reader.next t.cl_reader with
    | `Frame line -> (
      match Wire.response_of_line line with
      | Ok r -> r
      | Error msg -> failwith ("Client.next_response: " ^ msg))
    | `Oversize -> failwith "Client.next_response: oversize response frame"
    | `Pending ->
      if Unix.gettimeofday () > deadline then raise Timeout;
      (match pump with Some f -> f () | None -> ());
      let ready =
        match Unix.select [ fd ] [] [] 0.05 with
        | r, _, _ -> r <> []
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
      in
      if ready then begin
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> raise Closed
        | n -> Wire.Reader.feed t.cl_reader (Bytes.sub_string chunk 0 n)
        | exception
            Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
          ->
          ()
        | exception Unix.Unix_error _ -> raise Closed
      end;
      loop ()
  in
  loop ()

let fresh_id t =
  t.cl_next_id <- t.cl_next_id + 1;
  Json.Num (float_of_int t.cl_next_id)

(* Await the response whose ["id"] echoes [id]. Frames with other ids are
   stale answers to a previous incarnation of this connection (the daemon
   flushed them before we reconnected) and are skipped. A no-id error
   frame is connection-level (admission control, oversize) and is
   returned as the answer — there will be no id'd reply behind it. *)
let await_id ?timeout ?pump t id =
  let rec loop () =
    let r = next_response ?timeout ?pump t in
    match r.Wire.r_id with
    | Some rid when rid = id -> r
    | None -> r
    | Some _ -> loop ()
  in
  loop ()

(* Connect (or reconnect) a persistent client, re-running the [hello]
   handshake so the session-layer state on both ends is fresh. *)
let rec ensure_connected ?timeout ?pump t ~attempt =
  match t.cl_fd with
  | Some _ -> ()
  | None -> (
    match dial t.cl_addr with
    | fd -> (
      t.cl_fd <- Some fd;
      t.cl_reader <- Wire.Reader.create ?max_frame:t.cl_max_frame ();
      if t.cl_connected_once then t.cl_reconnects <- t.cl_reconnects + 1;
      t.cl_connected_once <- true;
      let id = fresh_id t in
      match
        send t (Wire.request_to_json ~id ?client:t.cl_client Wire.Hello);
        await_id ?timeout ?pump t id
      with
      | (_ : Wire.response) -> ()
      | exception (Closed | Timeout | Unix.Unix_error _) ->
        drop_conn t;
        retry_connect ?timeout ?pump t ~attempt)
    | exception Unix.Unix_error _ -> retry_connect ?timeout ?pump t ~attempt)

and retry_connect ?timeout ?pump t ~attempt =
  if attempt >= t.cl_retries then
    failwith "Client: cannot reach daemon (retries exhausted)"
  else begin
    sleep_pumped ?pump (backoff_delay t attempt);
    ensure_connected ?timeout ?pump t ~attempt:(attempt + 1)
  end

let rpc_persistent ?timeout ?pump t req =
  let id = fresh_id t in
  let frame = Wire.request_to_json ~id ?client:t.cl_client req in
  let rec go attempt =
    if attempt > t.cl_retries then
      failwith "Client: request failed (retries exhausted)"
    else begin
      ensure_connected ?timeout ?pump t ~attempt:0;
      (* the resend after a lost connection reuses the same id: the
         daemon's reply cache answers it if the first copy executed *)
      match
        send t frame;
        await_id ?timeout ?pump t id
      with
      | r -> r
      | exception (Closed | Timeout | Unix.Unix_error _) ->
        drop_conn t;
        sleep_pumped ?pump (backoff_delay t attempt);
        go (attempt + 1)
    end
  in
  go 0

let rpc ?timeout ?pump t req =
  match t.cl_client with
  | Some _ -> rpc_persistent ?timeout ?pump t req
  | None ->
    let id = fresh_id t in
    send t (Wire.request_to_json ~id req);
    next_response ?timeout ?pump t

let body_str resp name =
  Option.bind (Json.member name resp.Wire.r_body) Json.to_str

let body_int resp name =
  Option.bind (Json.member name resp.Wire.r_body) Json.to_int
