module Json = Adpm_trace.Json

type t = {
  cl_fd : Unix.file_descr;
  cl_reader : Wire.Reader.t;
  mutable cl_next_id : int;
}

let connect ?max_frame addr =
  let domain =
    match addr with
    | Unix.ADDR_UNIX _ -> Unix.PF_UNIX
    | Unix.ADDR_INET _ -> Unix.PF_INET
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try Unix.connect fd addr
   with e ->
     Unix.close fd;
     raise e);
  { cl_fd = fd; cl_reader = Wire.Reader.create ?max_frame (); cl_next_id = 0 }

let fd t = t.cl_fd
let close t = try Unix.close t.cl_fd with Unix.Unix_error _ -> ()

let send t json = Wire.send_line t.cl_fd json

exception Timeout
exception Closed

(* Wait for the next frame. [?pump] runs while waiting so a single-threaded
   harness can host the daemon it is talking to; without it the fd is
   simply selected on (the daemon is another process). *)
let next_response ?(timeout = 10.) ?pump t =
  let deadline = Unix.gettimeofday () +. timeout in
  let chunk = Bytes.create 4096 in
  let rec loop () =
    match Wire.Reader.next t.cl_reader with
    | `Frame line -> (
      match Wire.response_of_line line with
      | Ok r -> r
      | Error msg -> failwith ("Client.next_response: " ^ msg))
    | `Oversize -> failwith "Client.next_response: oversize response frame"
    | `Pending ->
      if Unix.gettimeofday () > deadline then raise Timeout;
      (match pump with Some f -> f () | None -> ());
      let ready =
        match Unix.select [ t.cl_fd ] [] [] 0.05 with
        | r, _, _ -> r <> []
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
      in
      if ready then begin
        match Unix.read t.cl_fd chunk 0 (Bytes.length chunk) with
        | 0 -> raise Closed
        | n -> Wire.Reader.feed t.cl_reader (Bytes.sub_string chunk 0 n)
        | exception
            Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
          ->
          ()
      end;
      loop ()
  in
  loop ()

let rpc ?timeout ?pump t req =
  t.cl_next_id <- t.cl_next_id + 1;
  let id = Json.Num (float_of_int t.cl_next_id) in
  send t (Wire.request_to_json ~id req);
  next_response ?timeout ?pump t

let body_str resp name =
  Option.bind (Json.member name resp.Wire.r_body) Json.to_str

let body_int resp name =
  Option.bind (Json.member name resp.Wire.r_body) Json.to_int
