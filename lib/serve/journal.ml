module Json = Adpm_trace.Json

(* {2 Lockfile} *)

type lock = { lk_path : string; mutable lk_held : bool }

let ensure_dir dir =
  if not (Sys.file_exists dir) then
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let pid_alive pid =
  match Unix.kill pid 0 with
  | () -> true
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
  | exception Unix.Unix_error _ -> true (* EPERM: exists, not ours *)

(* O_EXCL creation with the owner's pid inside, so a lock left behind by
   a SIGKILLed daemon is detected as stale (its pid is gone) and broken,
   while a second daemon pointed at a live daemon's directory refuses.
   fcntl-style locks are useless here: they do not conflict within one
   process, and tests host two daemons in one process. *)
let acquire ~dir =
  ensure_dir dir;
  let path = Filename.concat dir "teamsimd.lock" in
  let try_create () =
    match Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_EXCL ] 0o644 with
    | fd ->
      let line = string_of_int (Unix.getpid ()) ^ "\n" in
      let _ = Unix.write_substring fd line 0 (String.length line) in
      Unix.close fd;
      true
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> false
  in
  let owner () =
    match In_channel.with_open_text path In_channel.input_all with
    | s -> int_of_string_opt (String.trim s)
    | exception Sys_error _ -> None
  in
  let rec go attempts =
    if try_create () then Ok { lk_path = path; lk_held = true }
    else
      match owner () with
      | Some pid when pid_alive pid ->
        Error
          (Printf.sprintf
             "journal dir %s is locked by a running daemon (pid %d)" dir pid)
      | _ when attempts > 0 ->
        (* stale (dead pid or unreadable): break it and retry *)
        (try Unix.unlink path with Unix.Unix_error _ -> ());
        go (attempts - 1)
      | _ -> Error (Printf.sprintf "cannot break stale lock %s" path)
  in
  match go 2 with
  | v -> v
  | exception Unix.Unix_error (err, _, _) ->
    Error
      (Printf.sprintf "cannot lock journal dir %s: %s" dir
         (Unix.error_message err))

let release lock =
  if lock.lk_held then begin
    lock.lk_held <- false;
    try Unix.unlink lock.lk_path with Unix.Unix_error _ -> ()
  end

(* {2 Per-session journals} *)

let suffix = ".journal.jsonl"
let path ~dir ~sid = Filename.concat dir (sid ^ suffix)

type t = { j_path : string; mutable j_fd : Unix.file_descr option }

let fd_error fn err =
  Error (Printf.sprintf "%s: %s" fn (Unix.error_message err))

(* Durability contract: every line is written and fsync'd before the
   command it records is executed, so a crash at any instant loses at
   most the in-flight (unexecuted, unanswered) command. *)
let write_line fd line =
  let s = line ^ "\n" in
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    match Unix.write fd b !off (n - !off) with
    | written -> off := !off + written
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  Unix.fsync fd

let create ~dir ~sid header =
  ensure_dir dir;
  let p = path ~dir ~sid in
  match
    Unix.openfile p [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  with
  | fd -> (
    match write_line fd (Json.to_string header) with
    | () -> Ok { j_path = p; j_fd = Some fd }
    | exception Unix.Unix_error (err, fn, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      (try Unix.unlink p with Unix.Unix_error _ -> ());
      fd_error fn err)
  | exception Unix.Unix_error (err, fn, _) -> fd_error fn err

let append t entry =
  match t.j_fd with
  | None -> Error (Printf.sprintf "journal %s is closed" t.j_path)
  | Some fd -> (
    match write_line fd (Json.to_string entry) with
    | () -> Ok ()
    | exception Unix.Unix_error (err, fn, _) ->
      (* a failing journal is dead: further appends must not pretend *)
      (try Unix.close fd with Unix.Unix_error _ -> ());
      t.j_fd <- None;
      fd_error fn err)

(* Compaction: replace the whole journal with a fresh header (which
   carries the full command log and current fingerprint) via
   write-to-temp + atomic rename, so a crash mid-compaction leaves either
   the old journal or the new one, never a torn file. *)
let rewrite t header =
  let tmp = t.j_path ^ ".tmp" in
  match
    let fd =
      Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
    in
    (match write_line fd (Json.to_string header) with
    | () -> Unix.close fd
    | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e);
    Unix.rename tmp t.j_path;
    (match t.j_fd with
    | Some old -> ( try Unix.close old with Unix.Unix_error _ -> ())
    | None -> ());
    t.j_fd <- Some (Unix.openfile t.j_path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644)
  with
  | () -> Ok ()
  | exception Unix.Unix_error (err, fn, _) ->
    (try Unix.unlink tmp with Unix.Unix_error _ -> ());
    fd_error fn err

let close t =
  match t.j_fd with
  | None -> ()
  | Some fd ->
    t.j_fd <- None;
    (try Unix.close fd with Unix.Unix_error _ -> ())

let remove t =
  close t;
  try Unix.unlink t.j_path with Unix.Unix_error _ -> ()

(* Reopen a scanned journal for appending (recovery path). *)
let reopen ~dir ~sid =
  let p = path ~dir ~sid in
  match Unix.openfile p [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 with
  | fd -> Ok { j_path = p; j_fd = Some fd }
  | exception Unix.Unix_error (err, fn, _) -> fd_error fn err

(* {2 Startup scan} *)

type scanned = {
  sc_sid : string;
  sc_path : string;
  sc_header : Json.t;
  sc_entries : Json.t list;
  sc_dropped : int;  (** trailing lines dropped: truncated or unparseable *)
}

let quarantine p =
  let dst = p ^ ".corrupt" in
  (try Unix.unlink dst with Unix.Unix_error _ -> ());
  try Unix.rename p dst with Unix.Unix_error _ -> (
    try Unix.unlink p with Unix.Unix_error _ -> ())

(* Split raw contents into complete lines; a final unterminated fragment
   is a torn append from a crash and is never a record. *)
let complete_lines contents =
  let n = String.length contents in
  let rec go acc start =
    if start >= n then (List.rev acc, 0)
    else
      match String.index_from_opt contents start '\n' with
      | Some i -> go (String.sub contents start (i - start) :: acc) (i + 1)
      | None -> (List.rev acc, 1)
  in
  go [] 0

let scan_file p =
  let sid =
    let base = Filename.basename p in
    String.sub base 0 (String.length base - String.length suffix)
  in
  match In_channel.with_open_bin p In_channel.input_all with
  | exception Sys_error msg -> Error (Printf.sprintf "%s: %s" p msg)
  | contents -> (
    let lines, torn = complete_lines contents in
    match lines with
    | [] -> Error (Printf.sprintf "%s: empty journal" p)
    | header_line :: entry_lines -> (
      match Json.parse header_line with
      | Error msg -> Error (Printf.sprintf "%s: bad header: %s" p msg)
      | Ok header ->
        (* parse entries up to the first corrupt line; everything after a
           corrupt record is untrustworthy and dropped with it *)
        let rec take acc = function
          | [] -> (List.rev acc, 0)
          | "" :: rest -> take acc rest
          | line :: rest -> (
            match Json.parse line with
            | Ok j -> take (j :: acc) rest
            | Error _ -> (List.rev acc, List.length rest + 1))
        in
        let entries, bad = take [] entry_lines in
        Ok
          {
            sc_sid = sid;
            sc_path = p;
            sc_header = header;
            sc_entries = entries;
            sc_dropped = bad + torn;
          }))

let scan ~dir =
  let files =
    match Sys.readdir dir with
    | names ->
      Array.to_list names
      |> List.filter (fun n ->
             String.length n > String.length suffix
             && Filename.check_suffix n suffix)
      |> List.sort compare
      |> List.map (Filename.concat dir)
    | exception Sys_error _ -> []
  in
  List.fold_left
    (fun (ok, warnings) p ->
      match scan_file p with
      | Ok s -> (s :: ok, warnings)
      | Error msg ->
        (* an unreadable journal must never wedge startup: set it aside
           and keep recovering the others *)
        quarantine p;
        (ok, (msg ^ " (quarantined)") :: warnings))
    ([], []) files
  |> fun (ok, warnings) -> (List.rev ok, List.rev warnings)
