(** One daemon-resident interactive session.

    Wraps {!Adpm_teamsim.Interactive} with the bookkeeping the daemon
    needs: a per-session trace collector (every session records its own
    PR 1 event stream), a command log, and checkpoint/resume.

    A checkpoint artifact is a JSONL file: line 1 is a header object
    ([teamsimd_checkpoint], scenario/mode/seed/designer, the command log,
    and a state fingerprint), followed by the session's stamped trace
    events with a synthetic closing [Run_finished] appended. The event
    half is a complete, self-contained replay input for the stock
    {!Adpm_teamsim.Replay} driver; the header half is what [resume] uses
    to rebuild the {e live} session (designer-model RNG and memory
    included) by re-issuing the command log against a fresh engine. *)

open Adpm_core
open Adpm_teamsim
module Json = Adpm_trace.Json

type t

val create :
  resolve:(string -> (Scenario.t, string) result) ->
  id:string ->
  scenario:string ->
  mode:Dpm.mode ->
  seed:int ->
  designer:string ->
  (t, string) result
(** [Error] for an unresolvable scenario or unknown designer; never
    raises. [resolve] is the daemon's injected scenario resolver
    (typically {!Adpm_scenarios.Registry.resolve_result}). *)

val id : t -> string
val interactive : t -> Interactive.t

val commands : t -> string list
(** Every line ever passed to {!exec}, oldest first. *)

val command_count : t -> int
(** [List.length (commands t)], without building the list. *)

val exec : t -> string -> (string, string) result
(** Run one command line (logged for resume). Exceptions other than the
    [Invalid_argument]s {!Interactive.execute} absorbs do propagate —
    the daemon treats them as a wedged session and tears it down. *)

val prompt : t -> string
val finished : t -> bool

val fingerprint : t -> string
(** Compact state digest (op/eval/spin counters, solved flag, sorted
    violation ids) used to verify resume fidelity. *)

val fingerprint_of_interactive : Interactive.t -> string
(** The same digest computed for a bare {!Interactive} session, so
    harnesses can compare a daemon session against a local reference run
    without a [Session.t] in hand. *)

val status_fields : t -> (string * Json.t) list
(** The [status] response body. *)

val checkpoint : t -> path:string -> (int, string) result
(** Write the replay artifact; [Ok events_written] or [Error io_message].
    The live session is untouched and can be checkpointed again later. *)

val header_fields : marker:string -> t -> (string * Json.t) list
(** The checkpoint/journal header object's fields: [marker] (a format
    tag, ["teamsimd_checkpoint"] or ["teamsimd_journal"]),
    scenario/mode/seed/designer, the full command log, and the current
    state fingerprint. Shared by {!checkpoint} and the daemon's
    write-ahead journal. *)

type resume_error =
  | Rs_io of string  (** file unreadable *)
  | Rs_corrupt of string  (** bad header/events, or trace fails replay *)
  | Rs_mismatch of string  (** rebuilt state contradicts the fingerprint *)

(** Parsed header (checkpoint or journal — same shape). *)
type header = {
  h_scenario : string;
  h_mode : Dpm.mode;
  h_seed : int;
  h_designer : string;
  h_commands : string list;
  h_fingerprint : string;
}

val header_of_json : marker:string -> Json.t -> (header, string) result
(** Parse a header object, requiring the given [marker] key. *)

val rebuild :
  resolve:(string -> (Scenario.t, string) result) ->
  id:string ->
  header ->
  (t * int, resume_error) result
(** Rebuild a live session from a parsed header alone: create a fresh
    engine, re-issue the command log, and gate on the recorded
    fingerprint. This is the shared replay path under both {!resume}
    (checkpoint artifacts, which additionally validate their recorded
    trace) and the daemon's journal recovery. *)

val resume :
  resolve:(string -> (Scenario.t, string) result) ->
  id:string ->
  path:string ->
  (t * int, resume_error) result
(** Rebuild a live session from a checkpoint artifact: validate the
    recorded trace via {!Adpm_teamsim.Replay}, re-issue the command log,
    and check the resulting fingerprint. [Ok (session, commands_replayed)]. *)
