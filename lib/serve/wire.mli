(** The teamsimd wire layer: newline-framed JSONL request/response.

    One frame is one JSON object on one LF-terminated line (a trailing CR
    is tolerated). Frames longer than the reader's [max_frame] bound are
    rejected without buffering the rest of the line — the daemon answers
    with an [Oversize] error frame and drops the connection, so a hostile
    client cannot balloon daemon memory.

    Every request may carry an ["id"] field (string or number); the
    response echoes it verbatim, letting clients correlate frames.
    Responses are [{"ok":true, ...}] or
    [{"ok":false, "code":..., "error":...}].

    Frames never contain raw floats in [Num] unless finite (see the
    {!Adpm_trace.Json} float contract): optional measurements use the
    absent-field convention via [Json.finite_num]. *)

open Adpm_core
module Json = Adpm_trace.Json

val default_max_frame : int
(** 1 MiB. *)

(** Incremental frame splitter for a byte stream arriving in arbitrary
    chunks. *)
module Reader : sig
  type t

  val create : ?max_frame:int -> unit -> t
  val feed : t -> string -> unit

  val next : t -> [ `Frame of string | `Oversize | `Pending ]
  (** Next complete frame if one is buffered. Blank lines are skipped
      (keep-alives, not frames). [`Oversize] is sticky: once a
      connection exceeds [max_frame] it must be torn down (the reader
      discards further input). *)
end

type request =
  | Hello  (** server identification + scenario listing *)
  | Open of { scenario : string; mode : Dpm.mode; seed : int; designer : string }
  | Exec of { session : string; line : string }
      (** one {!Adpm_teamsim.Interactive} command line *)
  | Status of { session : string }
  | Checkpoint of { session : string; path : string option }
  | Resume of { path : string }
  | Close of { session : string }
  | Shutdown

val request_id : Json.t -> Json.t option
(** The ["id"] field when present and a string or number (other shapes
    are ignored rather than echoed). *)

val request_client : Json.t -> string option
(** The ["client"] envelope field: a caller-chosen stable client token.
    Requests carrying both a client token and an id are idempotent — the
    daemon answers a duplicate (client, id) pair from its bounded reply
    cache instead of re-executing, which is what makes a reconnecting
    client's resend-after-connection-loss safe for mutating ops. *)

val request_of_json : Json.t -> (request, string) result

val request_to_json : ?id:Json.t -> ?client:string -> request -> Json.t
(** [id] and [client] are envelope fields alongside the op payload. *)

type error_code =
  | Parse  (** frame is not valid JSON *)
  | Oversize  (** frame exceeded [max_frame]; connection is dropped *)
  | Bad_request  (** valid JSON, invalid request shape *)
  | Unknown_scenario
  | Unknown_session
  | Session_limit
  | Overloaded
      (** admission control: connection limit reached, or a session's op
          budget is exhausted — the request is rejected outright, never
          accepted-then-wedged *)
  | Command  (** the session rejected the command ([Error] from [execute]) *)
  | Session_failed  (** the session threw and was torn down *)
  | Io  (** checkpoint/resume file system failure *)
  | Bad_checkpoint  (** artifact unreadable, corrupt, or fails replay *)
  | Resume_mismatch  (** replayed state disagrees with the recorded fingerprint *)
  | Internal  (** unexpected daemon-side exception *)

val code_to_string : error_code -> string

val ok_frame : ?id:Json.t -> (string * Json.t) list -> Json.t
val error_frame : ?id:Json.t -> code:error_code -> string -> Json.t

type response = {
  r_id : Json.t option;
  r_ok : bool;
  r_code : string option;
  r_error : string option;
  r_body : Json.t;  (** the whole frame, for op-specific fields *)
}

val response_of_json : Json.t -> (response, string) result
val response_of_line : string -> (response, string) result

val ignore_sigpipe : unit -> unit
(** Ignore SIGPIPE process-wide (on Unix), so a dead peer surfaces as an
    EPIPE [Unix_error] from the write instead of killing the process.
    Called by {!Daemon.create} and {!Client.connect}. *)

val write_all : Unix.file_descr -> string -> unit
(** Partial-write-safe: loops until the whole string is flushed, waiting
    out EAGAIN/EWOULDBLOCK (with the select itself EINTR-proof) and
    retrying interrupted writes. A dead fd (EPIPE, ECONNRESET, ...)
    escapes as the underlying [Unix.Unix_error]. *)

val send_line : Unix.file_descr -> Json.t -> unit
(** [write_all] of one frame: the rendered JSON plus ['\n']. *)
