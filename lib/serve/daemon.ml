open Adpm_teamsim
module Json = Adpm_trace.Json

type addr = Unix_path of string | Tcp of string * int

type config = {
  dc_addr : addr;
  dc_scenarios : Scenario.t list;
  dc_resolve : string -> (Scenario.t, string) result;
  dc_max_sessions : int;
  dc_max_frame : int;
  dc_checkpoint_dir : string;
  dc_journal_dir : string option;
  dc_checkpoint_every : int;
  dc_max_conns : int;
  dc_max_write_buf : int;
  dc_max_ops : int;
  dc_reply_cache : int;
  dc_sndbuf : int option;
}

let default_config ~addr ~scenarios =
  {
    dc_addr = addr;
    dc_scenarios = scenarios;
    dc_resolve =
      (fun name ->
        match Scenario.find scenarios name with
        | Some s -> Ok s
        | None ->
          Error
            (Printf.sprintf "unknown scenario %s (known: %s)" name
               (String.concat ", "
                  (List.map (fun s -> s.Scenario.sc_name) scenarios))));
    dc_max_sessions = 256;
    dc_max_frame = Wire.default_max_frame;
    dc_checkpoint_dir = Filename.current_dir_name;
    dc_journal_dir = None;
    dc_checkpoint_every = 0;
    dc_max_conns = 64;
    dc_max_write_buf = 4 lsl 20;
    dc_max_ops = 0;
    dc_reply_cache = 64;
    dc_sndbuf = None;
  }

type conn = {
  cn_fd : Unix.file_descr;
  cn_reader : Wire.Reader.t;
  cn_out : Buffer.t;
  mutable cn_closing : bool;  (* close once cn_out drains *)
  mutable cn_dead : bool;
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  mutable conns : conn list;
  sessions : (string, Session.t) Hashtbl.t;
  journals : (string, Journal.t) Hashtbl.t;
  lock : Journal.lock option;
  reply_cache : (string, (string * Json.t) list ref) Hashtbl.t;
  cache_order : string Queue.t;  (* client tokens, first-seen order *)
  mutable recovered : (string * int) list;
  mutable warnings : string list;
  mutable next_session : int;
  mutable stopping : bool;
}

let sockaddr_of = function
  | Unix_path p -> Unix.ADDR_UNIX p
  | Tcp (host, port) -> Unix.ADDR_INET (Unix.inet_addr_of_string host, port)

let journal_marker = "teamsimd_journal"

let journal_header ?(extras = []) ~sid s =
  Json.Obj
    (Session.header_fields ~marker:journal_marker s
    @ (("session", Json.Str sid) :: extras))

(* {2 Bounded reply cache}

   Keyed by (client token, request id): a reconnecting client that never
   saw its reply resends the identical frame, and the daemon answers from
   here instead of executing the command a second time. Bounded per
   client ([dc_reply_cache] newest replies) and in client count, so a
   token-spraying peer cannot balloon memory. *)

let max_cache_clients = 256

let cache_key id = Json.to_string id

let cache_find t ~client ~key =
  match Hashtbl.find_opt t.reply_cache client with
  | None -> None
  | Some entries -> List.assoc_opt key !entries

let cache_store t ~client ~key resp =
  let entries =
    match Hashtbl.find_opt t.reply_cache client with
    | Some r -> r
    | None ->
      if Hashtbl.length t.reply_cache >= max_cache_clients then
        (match Queue.take_opt t.cache_order with
        | Some oldest -> Hashtbl.remove t.reply_cache oldest
        | None -> ());
      let r = ref [] in
      Hashtbl.replace t.reply_cache client r;
      Queue.add client t.cache_order;
      r
  in
  let rec keep n = function
    | [] -> []
    | _ when n <= 0 -> []
    | e :: rest -> e :: keep (n - 1) rest
  in
  entries :=
    (key, resp) :: keep (t.cfg.dc_reply_cache - 1) (List.remove_assoc key !entries)

(* {2 Journal recovery} *)

let warn t fmt = Printf.ksprintf (fun m -> t.warnings <- t.warnings @ [ m ]) fmt

let exec_reply ?id s result =
  match result with
  | Ok output ->
    Wire.ok_frame ?id
      [
        ("output", Json.Str output);
        ("prompt", Json.Str (Session.prompt s));
        ("finished", Json.Bool (Session.finished s));
      ]
  | Error msg -> Wire.error_frame ?id ~code:Wire.Command msg

let seed_cache_from t json =
  match
    ( Option.bind (Json.member "reply_client" json) Json.to_str,
      Json.member "reply_id" json )
  with
  | Some client, Some id -> (
    match Json.member "reply" json with
    | Some reply -> cache_store t ~client ~key:(cache_key id) reply
    | None -> ())
  | _ -> ()

(* Replay one journal back into a live session. The header rebuilds the
   state at the last compaction (fingerprint-gated); each tail entry is
   fingerprint-checked against the state it was appended over, executed,
   and its reply re-cached so a client resend after the crash is answered
   without double-execution. Any damage stops the tail replay at the last
   consistent point — never the whole recovery. *)
let recover_one t ~dir (sc : Journal.scanned) =
  let sid = sc.Journal.sc_sid in
  match Session.header_of_json ~marker:journal_marker sc.Journal.sc_header with
  | Error msg ->
    Journal.quarantine sc.Journal.sc_path;
    warn t "journal %s: %s (quarantined)" sid msg
  | Ok header -> (
    match Session.rebuild ~resolve:t.cfg.dc_resolve ~id:sid header with
    | Error err ->
      Journal.quarantine sc.Journal.sc_path;
      let msg =
        match err with
        | Session.Rs_io m | Session.Rs_corrupt m | Session.Rs_mismatch m -> m
      in
      warn t "journal %s: cannot rebuild session: %s (quarantined)" sid msg
    | Ok (s, replayed) ->
      if sc.Journal.sc_dropped > 0 then
        warn t "journal %s: dropped %d damaged trailing line(s)" sid
          sc.Journal.sc_dropped;
      seed_cache_from t sc.Journal.sc_header;
      let executed = ref 0 in
      (try
         List.iter
           (fun entry ->
             match Option.bind (Json.member "cmd" entry) Json.to_str with
             | None ->
               warn t "journal %s: entry without \"cmd\"; dropping rest" sid;
               raise Exit
             | Some line -> (
               (match Option.bind (Json.member "fp" entry) Json.to_str with
               | Some fp when not (String.equal fp (Session.fingerprint s)) ->
                 warn t
                   "journal %s: entry fingerprint diverges from replay; \
                    dropping rest"
                   sid;
                 raise Exit
               | _ -> ());
               match Session.exec s line with
               | result ->
                 incr executed;
                 let id = Json.member "id" entry in
                 (match
                    (Option.bind (Json.member "client" entry) Json.to_str, id)
                  with
                 | Some client, Some idv ->
                   cache_store t ~client ~key:(cache_key idv)
                     (exec_reply ?id s result)
                 | _ -> ())
               | exception e ->
                 warn t "journal %s: replay of %S raised %s; dropping rest" sid
                   line (Printexc.to_string e);
                 raise Exit))
           sc.Journal.sc_entries
       with Exit -> ());
      Hashtbl.replace t.sessions sid s;
      t.recovered <- t.recovered @ [ (sid, replayed + !executed) ];
      (* keep "s%d" ids monotone across the restart *)
      (match int_of_string_opt (String.sub sid 1 (String.length sid - 1)) with
      | Some n when String.length sid > 1 && sid.[0] = 's' ->
        if n > t.next_session then t.next_session <- n
      | _ -> ());
      (* compact: the rebuilt session's own header (full command log,
         current fingerprint) replaces the whole journal atomically *)
      (match Journal.reopen ~dir ~sid with
      | Error msg -> warn t "journal %s: cannot reopen: %s" sid msg
      | Ok j -> (
        match Journal.rewrite j (journal_header ~sid s) with
        | Ok () -> Hashtbl.replace t.journals sid j
        | Error msg ->
          Journal.close j;
          warn t "journal %s: cannot compact: %s" sid msg)))

(* Concurrency story (see DESIGN.md §14): a single-threaded non-blocking
   event loop — no Domain.spawn, so creating a daemon never trips the
   PR 7 fork latch and [Pool]-based tooling stays usable in the same
   process. Session work is CPU-cheap (one propagation per op), so
   multiplexing beats per-session domains at this granularity. *)
let create cfg =
  Wire.ignore_sigpipe ();
  let lock =
    match cfg.dc_journal_dir with
    | None -> None
    | Some dir -> (
      match Journal.acquire ~dir with
      | Ok l -> Some l
      | Error msg -> failwith msg)
  in
  let release_lock () =
    match lock with Some l -> Journal.release l | None -> ()
  in
  let domain, addr =
    match cfg.dc_addr with
    | Unix_path p ->
      (* a stale socket file from a killed daemon must not block rebind *)
      if Sys.file_exists p then (try Unix.unlink p with Unix.Unix_error _ -> ());
      (Unix.PF_UNIX, sockaddr_of cfg.dc_addr)
    | Tcp _ -> (Unix.PF_INET, sockaddr_of cfg.dc_addr)
  in
  let fd =
    match Unix.socket domain Unix.SOCK_STREAM 0 with
    | fd -> fd
    | exception e ->
      release_lock ();
      raise e
  in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.set_close_on_exec fd;
  (try
     Unix.bind fd addr;
     Unix.listen fd 128;
     Unix.set_nonblock fd
   with e ->
     Unix.close fd;
     release_lock ();
     raise e);
  let t =
    {
      cfg;
      listen_fd = fd;
      conns = [];
      sessions = Hashtbl.create 64;
      journals = Hashtbl.create 64;
      lock;
      reply_cache = Hashtbl.create 64;
      cache_order = Queue.create ();
      recovered = [];
      warnings = [];
      next_session = 0;
      stopping = false;
    }
  in
  (match cfg.dc_journal_dir with
  | None -> ()
  | Some dir ->
    let scanned, scan_warnings = Journal.scan ~dir in
    List.iter (fun w -> warn t "%s" w) scan_warnings;
    List.iter (recover_one t ~dir) scanned);
  t

let session_count t = Hashtbl.length t.sessions
let find_session t id = Hashtbl.find_opt t.sessions id
let recovered_sessions t = t.recovered
let warnings t = t.warnings

let fresh_session_id t =
  t.next_session <- t.next_session + 1;
  Printf.sprintf "s%d" t.next_session

let default_checkpoint_path t id =
  Filename.concat t.cfg.dc_checkpoint_dir (id ^ ".checkpoint.jsonl")

let scenario_listing t =
  Json.Arr
    (List.map
       (fun s -> Json.Str s.Scenario.sc_name)
       t.cfg.dc_scenarios)

let with_session t ?id name k =
  match find_session t name with
  | None ->
    Wire.error_frame ?id ~code:Wire.Unknown_session
      (Printf.sprintf "no session %s" name)
  | Some s -> k s

(* Drop a session and its journal file: the session ended (close, or a
   throwing exec tore it down), so there is nothing left to recover. *)
let drop_session t sid =
  Hashtbl.remove t.sessions sid;
  match Hashtbl.find_opt t.journals sid with
  | Some j ->
    Hashtbl.remove t.journals sid;
    Journal.remove j
  | None -> ()

(* Start journaling a session the moment it exists. The header snapshots
   creation parameters (and, for [resume], the already-replayed command
   log); [reply_client]/[reply_id]/[reply] stash the response verbatim so
   recovery can re-seed the reply cache for the very request that created
   the session. On journal failure the session is refused outright —
   running a session the daemon has promised to recover but cannot is
   worse than an [io] error frame. *)
let start_journal t ~sid ~s ?client ?id reply =
  match t.cfg.dc_journal_dir with
  | None -> reply
  | Some dir -> (
    let extras =
      (match client with
      | Some c -> [ ("reply_client", Json.Str c) ]
      | None -> [])
      @ (match id with Some v -> [ ("reply_id", v) ] | None -> [])
      @ match (client, id) with
        | Some _, Some _ -> [ ("reply", reply) ]
        | _ -> []
    in
    match Journal.create ~dir ~sid (journal_header ~extras ~sid s) with
    | Ok j ->
      Hashtbl.replace t.journals sid j;
      reply
    | Error msg ->
      Hashtbl.remove t.sessions sid;
      Wire.error_frame ?id ~code:Wire.Io
        (Printf.sprintf "cannot journal session: %s" msg))

let exec_entry ?client ?id ~s line =
  Json.Obj
    ([ ("cmd", Json.Str line); ("fp", Json.Str (Session.fingerprint s)) ]
    @ (match client with Some c -> [ ("client", Json.Str c) ] | None -> [])
    @ match id with Some v -> [ ("id", v) ] | None -> [])

(* WAL: the command line (and the fingerprint of the state it runs over)
   hits stable storage before execution. *)
let journal_exec t ~sid ~s ?client ?id line =
  match (t.cfg.dc_journal_dir, Hashtbl.find_opt t.journals sid) with
  | None, _ -> Ok ()
  | Some dir, None -> (
    (* self-heal: a session whose journal died gets a fresh compacted one *)
    match Journal.create ~dir ~sid (journal_header ~sid s) with
    | Error msg -> Error msg
    | Ok j -> (
      match Journal.append j (exec_entry ?client ?id ~s line) with
      | Ok () ->
        Hashtbl.replace t.journals sid j;
        Ok ()
      | Error _ as e ->
        Journal.close j;
        e))
  | Some _, Some j -> Journal.append j (exec_entry ?client ?id ~s line)

(* Periodic compaction: every [dc_checkpoint_every] executed commands,
   fold the journal tail back into its header. *)
let maybe_compact t ~sid ~s =
  let every = t.cfg.dc_checkpoint_every in
  if every > 0 && Session.command_count s mod every = 0 then
    match Hashtbl.find_opt t.journals sid with
    | None -> ()
    | Some j -> (
      match Journal.rewrite j (journal_header ~sid s) with
      | Ok () -> ()
      | Error msg -> warn t "journal %s: compaction failed: %s" sid msg)

let handle t req_json =
  let id = Wire.request_id req_json in
  let client = Wire.request_client req_json in
  let dispatch () =
    match Wire.request_of_json req_json with
    | Error msg -> Wire.error_frame ?id ~code:Wire.Bad_request msg
    | Ok Wire.Hello ->
      Wire.ok_frame ?id
        [
          ("server", Json.Str "teamsimd");
          ("protocol", Json.Num 1.);
          ("scenarios", scenario_listing t);
          ("sessions", Json.Num (float_of_int (session_count t)));
        ]
    | Ok (Wire.Open { scenario; mode; seed; designer }) ->
      if session_count t >= t.cfg.dc_max_sessions then
        Wire.error_frame ?id ~code:Wire.Session_limit
          (Printf.sprintf "session limit %d reached" t.cfg.dc_max_sessions)
      else begin
        (* resolution failures (unknown name, malformed gen: spec,
           unreadable file:) are command-level errors: the daemon answers
           with a frame and keeps serving, never a failed session *)
        match t.cfg.dc_resolve scenario with
        | Error msg -> Wire.error_frame ?id ~code:Wire.Unknown_scenario msg
        | Ok _ -> (
          let sid = fresh_session_id t in
          match
            Session.create ~resolve:t.cfg.dc_resolve ~id:sid ~scenario ~mode
              ~seed ~designer
          with
          | Error msg -> Wire.error_frame ?id ~code:Wire.Bad_request msg
          | Ok s ->
            Hashtbl.replace t.sessions sid s;
            let reply =
              Wire.ok_frame ?id
                [
                  ("session", Json.Str sid);
                  ("prompt", Json.Str (Session.prompt s));
                ]
            in
            start_journal t ~sid ~s ?client ?id reply)
      end
    | Ok (Wire.Exec { session; line }) ->
      with_session t ?id session (fun s ->
          if
            t.cfg.dc_max_ops > 0
            && Session.command_count s >= t.cfg.dc_max_ops
          then
            Wire.error_frame ?id ~code:Wire.Overloaded
              (Printf.sprintf "session %s exhausted its op budget (%d)" session
                 t.cfg.dc_max_ops)
          else
            (* write-ahead: journal the command before running it; if the
               journal cannot take it, the command must not run *)
            match journal_exec t ~sid:session ~s ?client ?id line with
            | Error msg ->
              Wire.error_frame ?id ~code:Wire.Io
                (Printf.sprintf "cannot journal command: %s" msg)
            | Ok () -> (
              match Session.exec s line with
              | result ->
                let reply = exec_reply ?id s result in
                maybe_compact t ~sid:session ~s;
                reply
              | exception e ->
                (* isolation: a throwing session dies alone; the daemon and
                   its other sessions keep serving *)
                drop_session t session;
                Wire.error_frame ?id ~code:Wire.Session_failed
                  (Printf.sprintf "session %s failed and was closed: %s"
                     session (Printexc.to_string e))))
    | Ok (Wire.Status { session }) ->
      with_session t ?id session (fun s ->
          Wire.ok_frame ?id (Session.status_fields s))
    | Ok (Wire.Checkpoint { session; path }) ->
      with_session t ?id session (fun s ->
          let path =
            match path with
            | Some p -> p
            | None -> default_checkpoint_path t session
          in
          match Session.checkpoint s ~path with
          | Ok events ->
            Wire.ok_frame ?id
              [
                ("path", Json.Str path);
                ("events", Json.Num (float_of_int events));
                ("fingerprint", Json.Str (Session.fingerprint s));
              ]
          | Error msg -> Wire.error_frame ?id ~code:Wire.Io msg)
    | Ok (Wire.Resume { path }) ->
      if session_count t >= t.cfg.dc_max_sessions then
        Wire.error_frame ?id ~code:Wire.Session_limit
          (Printf.sprintf "session limit %d reached" t.cfg.dc_max_sessions)
      else begin
        let sid = fresh_session_id t in
        match Session.resume ~resolve:t.cfg.dc_resolve ~id:sid ~path with
        | Ok (s, replayed) ->
          Hashtbl.replace t.sessions sid s;
          let reply =
            Wire.ok_frame ?id
              [
                ("session", Json.Str sid);
                ("commands_replayed", Json.Num (float_of_int replayed));
                ("fingerprint", Json.Str (Session.fingerprint s));
                ("prompt", Json.Str (Session.prompt s));
              ]
          in
          start_journal t ~sid ~s ?client ?id reply
        | Error (Session.Rs_io msg) -> Wire.error_frame ?id ~code:Wire.Io msg
        | Error (Session.Rs_corrupt msg) ->
          Wire.error_frame ?id ~code:Wire.Bad_checkpoint msg
        | Error (Session.Rs_mismatch msg) ->
          Wire.error_frame ?id ~code:Wire.Resume_mismatch msg
      end
    | Ok (Wire.Close { session }) ->
      with_session t ?id session (fun _ ->
          drop_session t session;
          Wire.ok_frame ?id [ ("closed", Json.Str session) ])
    | Ok Wire.Shutdown ->
      t.stopping <- true;
      Wire.ok_frame ?id [ ("stopping", Json.Bool true) ]
  in
  (* idempotency: a (client, id) pair names one logical request; a resend
     after connection loss is answered from the bounded reply cache
     instead of executed a second time *)
  let key =
    match (client, id) with
    | Some c, Some i -> Some (c, cache_key i)
    | _ -> None
  in
  match key with
  | Some (client, key) when cache_find t ~client ~key <> None ->
    Option.get (cache_find t ~client ~key)
  | _ -> (
    let resp =
      match dispatch () with
      | resp -> resp
      | exception e ->
        Wire.error_frame ?id ~code:Wire.Internal (Printexc.to_string e)
    in
    (match key with
    | Some (client, key) -> cache_store t ~client ~key resp
    | None -> ());
    resp)

let handle_line t line =
  match Json.parse line with
  | Ok j -> handle t j
  | Error msg -> Wire.error_frame ~code:Wire.Parse msg

(* Back-pressure: a peer that stops reading while the daemon keeps
   producing would otherwise grow cn_out without bound. Past
   [dc_max_write_buf] buffered bytes the client is declared slow and
   disconnected — protecting the daemon is worth more than the laggard. *)
let enqueue t conn resp =
  Buffer.add_string conn.cn_out (Json.to_string resp);
  Buffer.add_char conn.cn_out '\n';
  if Buffer.length conn.cn_out > t.cfg.dc_max_write_buf then conn.cn_dead <- true

let read_conn t conn =
  let chunk = Bytes.create 4096 in
  let rec drain_frames () =
    match Wire.Reader.next conn.cn_reader with
    | `Pending -> ()
    | `Oversize ->
      enqueue t conn
        (Wire.error_frame ~code:Wire.Oversize
           (Printf.sprintf "frame exceeds %d bytes; closing connection"
              t.cfg.dc_max_frame));
      conn.cn_closing <- true
    | `Frame line ->
      enqueue t conn (handle_line t line);
      drain_frames ()
  in
  match Unix.read conn.cn_fd chunk 0 (Bytes.length chunk) with
  | 0 -> conn.cn_dead <- true
  | n ->
    Wire.Reader.feed conn.cn_reader (Bytes.sub_string chunk 0 n);
    drain_frames ()
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
    ()
  | exception Unix.Unix_error _ -> conn.cn_dead <- true

let write_conn conn =
  let pending = Buffer.contents conn.cn_out in
  let n = String.length pending in
  if n > 0 then begin
    match Unix.write_substring conn.cn_fd pending 0 n with
    | written ->
      Buffer.clear conn.cn_out;
      if written < n then
        Buffer.add_substring conn.cn_out pending written (n - written)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
      ()
    | exception Unix.Unix_error _ -> conn.cn_dead <- true
  end;
  if conn.cn_closing && Buffer.length conn.cn_out = 0 then conn.cn_dead <- true

(* Admission control: past [dc_max_conns] live connections a newcomer is
   told [overloaded] and shown the door immediately — accepted only long
   enough to carry the error frame, never parked to wedge later. *)
let accept_new t =
  let rec loop () =
    match Unix.accept t.listen_fd with
    | fd, _ ->
      Unix.set_nonblock fd;
      Unix.set_close_on_exec fd;
      (match t.cfg.dc_sndbuf with
      | Some bytes -> (
        try Unix.setsockopt_int fd Unix.SO_SNDBUF bytes
        with Unix.Unix_error _ -> ())
      | None -> ());
      let conn =
        {
          cn_fd = fd;
          cn_reader = Wire.Reader.create ~max_frame:t.cfg.dc_max_frame ();
          cn_out = Buffer.create 256;
          cn_closing = false;
          cn_dead = false;
        }
      in
      if List.length t.conns >= t.cfg.dc_max_conns then begin
        enqueue t conn
          (Wire.error_frame ~code:Wire.Overloaded
             (Printf.sprintf "connection limit %d reached" t.cfg.dc_max_conns));
        conn.cn_closing <- true
      end;
      t.conns <- conn :: t.conns;
      loop ()
    | exception
        Unix.Unix_error
          ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ECONNABORTED), _, _)
      ->
      ()
  in
  loop ()

let reap t =
  let dead, live = List.partition (fun c -> c.cn_dead) t.conns in
  List.iter (fun c -> try Unix.close c.cn_fd with Unix.Unix_error _ -> ()) dead;
  t.conns <- live

let pending_output t =
  List.exists (fun c -> Buffer.length c.cn_out > 0) t.conns

let step ?(timeout = 0.05) t =
  if t.stopping && not (pending_output t) then false
  else begin
    let reads =
      t.listen_fd :: List.filter_map
                       (fun c -> if c.cn_dead then None else Some c.cn_fd)
                       t.conns
    in
    let writes =
      List.filter_map
        (fun c ->
          if (not c.cn_dead) && Buffer.length c.cn_out > 0 then Some c.cn_fd
          else None)
        t.conns
    in
    (match Unix.select reads writes [] timeout with
    | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> ()
    | readable, writable, _ ->
      if List.memq t.listen_fd readable then accept_new t;
      List.iter
        (fun c ->
          if (not c.cn_dead) && List.memq c.cn_fd readable then read_conn t c)
        t.conns;
      List.iter
        (fun c ->
          if
            (not c.cn_dead)
            && (List.memq c.cn_fd writable || Buffer.length c.cn_out > 0)
          then write_conn c)
        t.conns);
    reap t;
    not (t.stopping && not (pending_output t))
  end

(* Journal files deliberately survive [stop]: they are the crash-recovery
   state, and a restarted daemon pointed at the same --journal-dir will
   rebuild every session from them. Only [close] (the op) and session
   teardown delete a session's journal. *)
let stop t =
  List.iter
    (fun c -> try Unix.close c.cn_fd with Unix.Unix_error _ -> ())
    t.conns;
  t.conns <- [];
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (match t.cfg.dc_addr with
  | Unix_path p -> ( try Unix.unlink p with Unix.Unix_error _ | Sys_error _ -> ())
  | Tcp _ -> ());
  Hashtbl.iter (fun _ j -> Journal.close j) t.journals;
  Hashtbl.reset t.journals;
  (match t.lock with Some l -> Journal.release l | None -> ());
  Hashtbl.reset t.sessions

let run t =
  while step t do
    ()
  done;
  stop t
