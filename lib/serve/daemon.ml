open Adpm_teamsim
module Json = Adpm_trace.Json

type addr = Unix_path of string | Tcp of string * int

type config = {
  dc_addr : addr;
  dc_scenarios : Scenario.t list;
  dc_resolve : string -> (Scenario.t, string) result;
  dc_max_sessions : int;
  dc_max_frame : int;
  dc_checkpoint_dir : string;
}

let default_config ~addr ~scenarios =
  {
    dc_addr = addr;
    dc_scenarios = scenarios;
    dc_resolve =
      (fun name ->
        match Scenario.find scenarios name with
        | Some s -> Ok s
        | None ->
          Error
            (Printf.sprintf "unknown scenario %s (known: %s)" name
               (String.concat ", "
                  (List.map (fun s -> s.Scenario.sc_name) scenarios))));
    dc_max_sessions = 256;
    dc_max_frame = Wire.default_max_frame;
    dc_checkpoint_dir = Filename.current_dir_name;
  }

type conn = {
  cn_fd : Unix.file_descr;
  cn_reader : Wire.Reader.t;
  cn_out : Buffer.t;
  mutable cn_closing : bool;  (* close once cn_out drains *)
  mutable cn_dead : bool;
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  mutable conns : conn list;
  sessions : (string, Session.t) Hashtbl.t;
  mutable next_session : int;
  mutable stopping : bool;
}

let sockaddr_of = function
  | Unix_path p -> Unix.ADDR_UNIX p
  | Tcp (host, port) -> Unix.ADDR_INET (Unix.inet_addr_of_string host, port)

(* Concurrency story (see DESIGN.md §14): a single-threaded non-blocking
   event loop — no Domain.spawn, so creating a daemon never trips the
   PR 7 fork latch and [Pool]-based tooling stays usable in the same
   process. Session work is CPU-cheap (one propagation per op), so
   multiplexing beats per-session domains at this granularity. *)
let create cfg =
  (match Sys.os_type with
  | "Unix" -> Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  | _ -> ());
  let domain, addr =
    match cfg.dc_addr with
    | Unix_path p ->
      (* a stale socket file from a killed daemon must not block rebind *)
      if Sys.file_exists p then (try Unix.unlink p with Unix.Unix_error _ -> ());
      (Unix.PF_UNIX, sockaddr_of cfg.dc_addr)
    | Tcp _ -> (Unix.PF_INET, sockaddr_of cfg.dc_addr)
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  (try
     Unix.bind fd addr;
     Unix.listen fd 128;
     Unix.set_nonblock fd
   with e ->
     Unix.close fd;
     raise e);
  {
    cfg;
    listen_fd = fd;
    conns = [];
    sessions = Hashtbl.create 64;
    next_session = 0;
    stopping = false;
  }

let session_count t = Hashtbl.length t.sessions
let find_session t id = Hashtbl.find_opt t.sessions id

let fresh_session_id t =
  t.next_session <- t.next_session + 1;
  Printf.sprintf "s%d" t.next_session

let default_checkpoint_path t id =
  Filename.concat t.cfg.dc_checkpoint_dir (id ^ ".checkpoint.jsonl")

let scenario_listing t =
  Json.Arr
    (List.map
       (fun s -> Json.Str s.Scenario.sc_name)
       t.cfg.dc_scenarios)

let with_session t ?id name k =
  match find_session t name with
  | None ->
    Wire.error_frame ?id ~code:Wire.Unknown_session
      (Printf.sprintf "no session %s" name)
  | Some s -> k s

let handle t req_json =
  let id = Wire.request_id req_json in
  let dispatch () =
    match Wire.request_of_json req_json with
    | Error msg -> Wire.error_frame ?id ~code:Wire.Bad_request msg
    | Ok Wire.Hello ->
      Wire.ok_frame ?id
        [
          ("server", Json.Str "teamsimd");
          ("protocol", Json.Num 1.);
          ("scenarios", scenario_listing t);
          ("sessions", Json.Num (float_of_int (session_count t)));
        ]
    | Ok (Wire.Open { scenario; mode; seed; designer }) ->
      if session_count t >= t.cfg.dc_max_sessions then
        Wire.error_frame ?id ~code:Wire.Session_limit
          (Printf.sprintf "session limit %d reached" t.cfg.dc_max_sessions)
      else begin
        (* resolution failures (unknown name, malformed gen: spec,
           unreadable file:) are command-level errors: the daemon answers
           with a frame and keeps serving, never a failed session *)
        match t.cfg.dc_resolve scenario with
        | Error msg -> Wire.error_frame ?id ~code:Wire.Unknown_scenario msg
        | Ok _ -> (
          let sid = fresh_session_id t in
          match
            Session.create ~resolve:t.cfg.dc_resolve ~id:sid ~scenario ~mode
              ~seed ~designer
          with
          | Error msg -> Wire.error_frame ?id ~code:Wire.Bad_request msg
          | Ok s ->
            Hashtbl.replace t.sessions sid s;
            Wire.ok_frame ?id
              [
                ("session", Json.Str sid);
                ("prompt", Json.Str (Session.prompt s));
              ])
      end
    | Ok (Wire.Exec { session; line }) ->
      with_session t ?id session (fun s ->
          match Session.exec s line with
          | Ok output ->
            Wire.ok_frame ?id
              [
                ("output", Json.Str output);
                ("prompt", Json.Str (Session.prompt s));
                ("finished", Json.Bool (Session.finished s));
              ]
          | Error msg -> Wire.error_frame ?id ~code:Wire.Command msg
          | exception e ->
            (* isolation: a throwing session dies alone; the daemon and
               its other sessions keep serving *)
            Hashtbl.remove t.sessions session;
            Wire.error_frame ?id ~code:Wire.Session_failed
              (Printf.sprintf "session %s failed and was closed: %s" session
                 (Printexc.to_string e)))
    | Ok (Wire.Status { session }) ->
      with_session t ?id session (fun s ->
          Wire.ok_frame ?id (Session.status_fields s))
    | Ok (Wire.Checkpoint { session; path }) ->
      with_session t ?id session (fun s ->
          let path =
            match path with
            | Some p -> p
            | None -> default_checkpoint_path t session
          in
          match Session.checkpoint s ~path with
          | Ok events ->
            Wire.ok_frame ?id
              [
                ("path", Json.Str path);
                ("events", Json.Num (float_of_int events));
                ("fingerprint", Json.Str (Session.fingerprint s));
              ]
          | Error msg -> Wire.error_frame ?id ~code:Wire.Io msg)
    | Ok (Wire.Resume { path }) ->
      if session_count t >= t.cfg.dc_max_sessions then
        Wire.error_frame ?id ~code:Wire.Session_limit
          (Printf.sprintf "session limit %d reached" t.cfg.dc_max_sessions)
      else begin
        let sid = fresh_session_id t in
        match Session.resume ~resolve:t.cfg.dc_resolve ~id:sid ~path with
        | Ok (s, replayed) ->
          Hashtbl.replace t.sessions sid s;
          Wire.ok_frame ?id
            [
              ("session", Json.Str sid);
              ("commands_replayed", Json.Num (float_of_int replayed));
              ("fingerprint", Json.Str (Session.fingerprint s));
              ("prompt", Json.Str (Session.prompt s));
            ]
        | Error (Session.Rs_io msg) -> Wire.error_frame ?id ~code:Wire.Io msg
        | Error (Session.Rs_corrupt msg) ->
          Wire.error_frame ?id ~code:Wire.Bad_checkpoint msg
        | Error (Session.Rs_mismatch msg) ->
          Wire.error_frame ?id ~code:Wire.Resume_mismatch msg
      end
    | Ok (Wire.Close { session }) ->
      with_session t ?id session (fun _ ->
          Hashtbl.remove t.sessions session;
          Wire.ok_frame ?id [ ("closed", Json.Str session) ])
    | Ok Wire.Shutdown ->
      t.stopping <- true;
      Wire.ok_frame ?id [ ("stopping", Json.Bool true) ]
  in
  match dispatch () with
  | resp -> resp
  | exception e ->
    Wire.error_frame ?id ~code:Wire.Internal (Printexc.to_string e)

let handle_line t line =
  match Json.parse line with
  | Ok j -> handle t j
  | Error msg -> Wire.error_frame ~code:Wire.Parse msg

let enqueue conn resp =
  Buffer.add_string conn.cn_out (Json.to_string resp);
  Buffer.add_char conn.cn_out '\n'

let read_conn t conn =
  let chunk = Bytes.create 4096 in
  let rec drain_frames () =
    match Wire.Reader.next conn.cn_reader with
    | `Pending -> ()
    | `Oversize ->
      enqueue conn
        (Wire.error_frame ~code:Wire.Oversize
           (Printf.sprintf "frame exceeds %d bytes; closing connection"
              t.cfg.dc_max_frame));
      conn.cn_closing <- true
    | `Frame line ->
      enqueue conn (handle_line t line);
      drain_frames ()
  in
  match Unix.read conn.cn_fd chunk 0 (Bytes.length chunk) with
  | 0 -> conn.cn_dead <- true
  | n ->
    Wire.Reader.feed conn.cn_reader (Bytes.sub_string chunk 0 n);
    drain_frames ()
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
    ()
  | exception Unix.Unix_error _ -> conn.cn_dead <- true

let write_conn conn =
  let pending = Buffer.contents conn.cn_out in
  let n = String.length pending in
  if n > 0 then begin
    match Unix.write_substring conn.cn_fd pending 0 n with
    | written ->
      Buffer.clear conn.cn_out;
      if written < n then
        Buffer.add_substring conn.cn_out pending written (n - written)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
      ()
    | exception Unix.Unix_error _ -> conn.cn_dead <- true
  end;
  if conn.cn_closing && Buffer.length conn.cn_out = 0 then conn.cn_dead <- true

let accept_new t =
  let rec loop () =
    match Unix.accept t.listen_fd with
    | fd, _ ->
      Unix.set_nonblock fd;
      t.conns <-
        {
          cn_fd = fd;
          cn_reader = Wire.Reader.create ~max_frame:t.cfg.dc_max_frame ();
          cn_out = Buffer.create 256;
          cn_closing = false;
          cn_dead = false;
        }
        :: t.conns;
      loop ()
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      ()
  in
  loop ()

let reap t =
  let dead, live = List.partition (fun c -> c.cn_dead) t.conns in
  List.iter (fun c -> try Unix.close c.cn_fd with Unix.Unix_error _ -> ()) dead;
  t.conns <- live

let pending_output t =
  List.exists (fun c -> Buffer.length c.cn_out > 0) t.conns

let step ?(timeout = 0.05) t =
  if t.stopping && not (pending_output t) then false
  else begin
    let reads =
      t.listen_fd :: List.filter_map
                       (fun c -> if c.cn_dead then None else Some c.cn_fd)
                       t.conns
    in
    let writes =
      List.filter_map
        (fun c ->
          if (not c.cn_dead) && Buffer.length c.cn_out > 0 then Some c.cn_fd
          else None)
        t.conns
    in
    (match Unix.select reads writes [] timeout with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, writable, _ ->
      if List.memq t.listen_fd readable then accept_new t;
      List.iter
        (fun c ->
          if (not c.cn_dead) && List.memq c.cn_fd readable then read_conn t c)
        t.conns;
      List.iter
        (fun c ->
          if
            (not c.cn_dead)
            && (List.memq c.cn_fd writable || Buffer.length c.cn_out > 0)
          then write_conn c)
        t.conns);
    reap t;
    not (t.stopping && not (pending_output t))
  end

let stop t =
  List.iter
    (fun c -> try Unix.close c.cn_fd with Unix.Unix_error _ -> ())
    t.conns;
  t.conns <- [];
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (match t.cfg.dc_addr with
  | Unix_path p -> ( try Unix.unlink p with Unix.Unix_error _ | Sys_error _ -> ())
  | Tcp _ -> ());
  Hashtbl.reset t.sessions

let run t =
  while step t do
    ()
  done;
  stop t
