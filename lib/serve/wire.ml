open Adpm_core
module Json = Adpm_trace.Json

let default_max_frame = 1 lsl 20

(* {2 Incremental framing} *)

module Reader = struct
  type t = {
    buf : Buffer.t;
    max_frame : int;
    mutable poisoned : bool;
  }

  let create ?(max_frame = default_max_frame) () =
    { buf = Buffer.create 256; max_frame; poisoned = false }

  let feed t s = if not t.poisoned then Buffer.add_string t.buf s

  let rec next t =
    if t.poisoned then `Oversize
    else
      let s = Buffer.contents t.buf in
      match String.index_opt s '\n' with
      | Some i when i <= t.max_frame ->
        let line = String.sub s 0 i in
        Buffer.clear t.buf;
        Buffer.add_substring t.buf s (i + 1) (String.length s - i - 1);
        (* tolerate CRLF senders *)
        let line =
          let n = String.length line in
          if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1)
          else line
        in
        (* blank lines are keep-alives, not frames *)
        if line = "" then next t else `Frame line
      | Some _ ->
        t.poisoned <- true;
        `Oversize
      | None ->
        if String.length s > t.max_frame then begin
          t.poisoned <- true;
          `Oversize
        end
        else `Pending
end

(* {2 Requests} *)

type request =
  | Hello
  | Open of { scenario : string; mode : Dpm.mode; seed : int; designer : string }
  | Exec of { session : string; line : string }
  | Status of { session : string }
  | Checkpoint of { session : string; path : string option }
  | Resume of { path : string }
  | Close of { session : string }
  | Shutdown

let ( let* ) = Result.bind

let str_field name j =
  match Option.bind (Json.member name j) Json.to_str with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "missing or mistyped field %S" name)

let opt_str_field name j =
  match Json.member name j with
  | None | Some Json.Null -> Ok None
  | Some v -> (
    match Json.to_str v with
    | Some s -> Ok (Some s)
    | None -> Error (Printf.sprintf "mistyped field %S" name))

let int_field_default name default j =
  match Json.member name j with
  | None -> Ok default
  | Some v -> (
    match Json.to_int v with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "mistyped field %S" name))

let mode_field j =
  match Json.member "mode" j with
  | None -> Ok Dpm.Adpm
  | Some v -> (
    match Option.bind (Json.to_str v) Dpm.mode_of_string with
    | Some m -> Ok m
    | None -> Error "mistyped field \"mode\" (want \"conventional\" or \"adpm\")")

let request_id j =
  match Json.member "id" j with
  | Some (Json.Num _ | Json.Str _) as id -> id
  | _ -> None

let request_client j = Option.bind (Json.member "client" j) Json.to_str

let request_of_json j =
  match j with
  | Json.Obj _ -> (
    match Option.bind (Json.member "op" j) Json.to_str with
    | None -> Error "missing or mistyped field \"op\""
    | Some "hello" -> Ok Hello
    | Some "open" ->
      let* scenario = str_field "scenario" j in
      let* designer = str_field "designer" j in
      let* seed = int_field_default "seed" 1 j in
      let* mode = mode_field j in
      Ok (Open { scenario; mode; seed; designer })
    | Some "exec" ->
      let* session = str_field "session" j in
      let* line = str_field "line" j in
      Ok (Exec { session; line })
    | Some "status" ->
      let* session = str_field "session" j in
      Ok (Status { session })
    | Some "checkpoint" ->
      let* session = str_field "session" j in
      let* path = opt_str_field "path" j in
      Ok (Checkpoint { session; path })
    | Some "resume" ->
      let* path = str_field "path" j in
      Ok (Resume { path })
    | Some "close" ->
      let* session = str_field "session" j in
      Ok (Close { session })
    | Some "shutdown" -> Ok Shutdown
    | Some op -> Error (Printf.sprintf "unknown op %S" op))
  | _ -> Error "request must be a JSON object"

let request_to_json ?id ?client req =
  let base =
    match req with
    | Hello -> [ ("op", Json.Str "hello") ]
    | Open { scenario; mode; seed; designer } ->
      [
        ("op", Json.Str "open");
        ("scenario", Json.Str scenario);
        ("mode", Json.Str (Dpm.mode_to_string mode));
        ("seed", Json.Num (float_of_int seed));
        ("designer", Json.Str designer);
      ]
    | Exec { session; line } ->
      [ ("op", Json.Str "exec"); ("session", Json.Str session); ("line", Json.Str line) ]
    | Status { session } ->
      [ ("op", Json.Str "status"); ("session", Json.Str session) ]
    | Checkpoint { session; path } ->
      [ ("op", Json.Str "checkpoint"); ("session", Json.Str session) ]
      @ (match path with None -> [] | Some p -> [ ("path", Json.Str p) ])
    | Resume { path } -> [ ("op", Json.Str "resume"); ("path", Json.Str path) ]
    | Close { session } ->
      [ ("op", Json.Str "close"); ("session", Json.Str session) ]
    | Shutdown -> [ ("op", Json.Str "shutdown") ]
  in
  Json.Obj
    ((match id with None -> [] | Some v -> [ ("id", v) ])
    @ (match client with None -> [] | Some c -> [ ("client", Json.Str c) ])
    @ base)

(* {2 Responses} *)

type error_code =
  | Parse
  | Oversize
  | Bad_request
  | Unknown_scenario
  | Unknown_session
  | Session_limit
  | Overloaded
  | Command
  | Session_failed
  | Io
  | Bad_checkpoint
  | Resume_mismatch
  | Internal

let code_to_string = function
  | Parse -> "parse"
  | Oversize -> "oversize"
  | Bad_request -> "bad_request"
  | Unknown_scenario -> "unknown_scenario"
  | Unknown_session -> "unknown_session"
  | Session_limit -> "session_limit"
  | Overloaded -> "overloaded"
  | Command -> "command"
  | Session_failed -> "session_failed"
  | Io -> "io"
  | Bad_checkpoint -> "bad_checkpoint"
  | Resume_mismatch -> "resume_mismatch"
  | Internal -> "internal"

let ok_frame ?id fields =
  Json.Obj
    ((match id with None -> [] | Some v -> [ ("id", v) ])
    @ (("ok", Json.Bool true) :: fields))

let error_frame ?id ~code msg =
  Json.Obj
    ((match id with None -> [] | Some v -> [ ("id", v) ])
    @ [
        ("ok", Json.Bool false);
        ("code", Json.Str (code_to_string code));
        ("error", Json.Str msg);
      ])

type response = {
  r_id : Json.t option;
  r_ok : bool;
  r_code : string option;
  r_error : string option;
  r_body : Json.t;
}

let response_of_json j =
  match Option.bind (Json.member "ok" j) Json.to_bool with
  | None -> Error "response lacks a boolean \"ok\" field"
  | Some ok ->
    Ok
      {
        r_id = Json.member "id" j;
        r_ok = ok;
        r_code = Option.bind (Json.member "code" j) Json.to_str;
        r_error = Option.bind (Json.member "error" j) Json.to_str;
        r_body = j;
      }

let response_of_line line =
  match Json.parse line with
  | Error msg -> Error (Printf.sprintf "unparseable response frame: %s" msg)
  | Ok j -> response_of_json j

(* {2 Blocking socket helpers (client side)} *)

let ignore_sigpipe () =
  (* A peer that dies mid-write must surface as EPIPE from the syscall,
     never as a process-killing SIGPIPE. Both the daemon and the client
     call this before touching a socket. *)
  match Sys.os_type with
  | "Unix" -> Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  | _ -> ()

(* Partial-write-safe: loop until the whole frame is flushed or the fd is
   dead (a Unix_error other than the transient EAGAIN/EWOULDBLOCK/EINTR
   family escapes to the caller). [write] may send any prefix; the
   wait-for-writability select is itself retried on EINTR so a signal
   landing mid-loop cannot escape as an exception. *)
let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    match Unix.write fd b !off (n - !off) with
    | written -> off := !off + written
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> (
      match Unix.select [] [ fd ] [] 1.0 with
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let send_line fd j = write_all fd (Json.to_string j ^ "\n")
