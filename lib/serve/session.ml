open Adpm_core
open Adpm_teamsim
open Adpm_trace
module Json = Adpm_trace.Json

type t = {
  ss_id : string;
  ss_scenario : string;
  ss_mode : Dpm.mode;
  ss_seed : int;
  ss_designer : string;
  ss_session : Interactive.t;
  ss_buf : Sink.Collect.buffer;
  ss_tracer : Tracer.t;
  mutable ss_commands : string list;  (* newest first *)
}

let id t = t.ss_id
let interactive t = t.ss_session
let commands t = List.rev t.ss_commands
let command_count t = List.length t.ss_commands

let create ~resolve ~id ~scenario ~mode ~seed ~designer =
  match (resolve scenario : (Scenario.t, string) result) with
  | Error msg -> Error msg
  | Ok sc -> (
    let buf, sink = Sink.collector () in
    let tracer = Tracer.create sink in
    match Interactive.create ~tracer ~mode ~seed sc ~designer with
    | session ->
      Ok
        {
          ss_id = id;
          ss_scenario = scenario;
          ss_mode = mode;
          ss_seed = seed;
          ss_designer = designer;
          ss_session = session;
          ss_buf = buf;
          ss_tracer = tracer;
          ss_commands = [];
        }
    | exception Invalid_argument msg -> Error msg)

let exec t line =
  (* Log the line before running it: replay-on-resume must re-issue every
     command (including rejected ones) so the designer models' RNG and
     tabu state advance identically. *)
  t.ss_commands <- line :: t.ss_commands;
  Interactive.execute t.ss_session line

let prompt t = Interactive.prompt t.ss_session
let finished t = Interactive.finished t.ss_session

let fingerprint_of_interactive session =
  let dpm = Interactive.dpm session in
  Printf.sprintf "ops=%d evals=%d spins=%d solved=%b violations=[%s]"
    (Dpm.op_count dpm)
    (Interactive.attributed_evaluations session)
    (Dpm.spin_count dpm) (Dpm.solved dpm)
    (String.concat ","
       (List.map string_of_int
          (List.sort compare (Dpm.known_violations dpm))))

let fingerprint t = fingerprint_of_interactive t.ss_session

let status_fields t =
  let dpm = Interactive.dpm t.ss_session in
  [
    ("session", Json.Str t.ss_id);
    ("scenario", Json.Str t.ss_scenario);
    ("mode", Json.Str (Dpm.mode_to_string t.ss_mode));
    ("seed", Json.Num (float_of_int t.ss_seed));
    ("designer", Json.Str t.ss_designer);
    ("prompt", Json.Str (prompt t));
    ("finished", Json.Bool (finished t));
    ("fingerprint", Json.Str (fingerprint t));
    ("operations", Json.Num (float_of_int (Dpm.op_count dpm)));
    ( "evaluations",
      Json.Num (float_of_int (Interactive.attributed_evaluations t.ss_session))
    );
    ("spins", Json.Num (float_of_int (Dpm.spin_count dpm)));
    ( "violations",
      Json.Arr
        (List.map
           (fun cid -> Json.Num (float_of_int cid))
           (List.sort compare (Dpm.known_violations (Interactive.dpm t.ss_session))))
    );
    ("commands", Json.Num (float_of_int (List.length t.ss_commands)));
    ("events", Json.Num (float_of_int (Sink.Collect.length t.ss_buf)));
  ]

(* A synthetic closing event, NOT appended to the live buffer: the
   session keeps running after a checkpoint, and a later checkpoint must
   build its own closing frame from the later state. *)
let closing_event t =
  let dpm = Interactive.dpm t.ss_session in
  {
    Event.seq = Tracer.seq t.ss_tracer;
    clock = Tracer.clock t.ss_tracer;
    event =
      Event.Run_finished
        {
          completed = Dpm.solved dpm && Dpm.ground_truth_solved dpm;
          operations = Dpm.op_count dpm;
          evaluations = Interactive.attributed_evaluations t.ss_session;
          setup_evaluations = Interactive.setup_evaluations t.ss_session;
          spins = Dpm.spin_count dpm;
          violations = List.sort compare (Dpm.known_violations dpm);
        };
  }

(* The checkpoint header and the write-ahead journal header share one
   format (the journal reuses the checkpoint shape under a different
   marker key), so resume-from-checkpoint and journal recovery parse
   through the same code path. *)
let header_fields ~marker t =
  [
    (marker, Json.Num 1.);
    ("scenario", Json.Str t.ss_scenario);
    ("mode", Json.Str (Dpm.mode_to_string t.ss_mode));
    ("seed", Json.Num (float_of_int t.ss_seed));
    ("designer", Json.Str t.ss_designer);
    ("commands", Json.Arr (List.rev_map (fun c -> Json.Str c) t.ss_commands));
    ("fingerprint", Json.Str (fingerprint t));
  ]

let meta_json t = Json.Obj (header_fields ~marker:"teamsimd_checkpoint" t)

let checkpoint t ~path =
  let events = Sink.Collect.contents t.ss_buf @ [ closing_event t ] in
  match
    Out_channel.with_open_text path (fun oc ->
        output_string oc (Json.to_string (meta_json t));
        output_char oc '\n';
        List.iter
          (fun ev ->
            output_string oc (Codec.to_line ev);
            output_char oc '\n')
          events;
        (* flush inside the protected region: [with_open_text] closes
           with [close_noerr], which would swallow an ENOSPC surfacing
           only when the channel buffer finally hits the disk *)
        Out_channel.flush oc)
  with
  | () -> Ok (List.length events)
  | exception Sys_error msg -> Error msg

type resume_error =
  | Rs_io of string
  | Rs_corrupt of string
  | Rs_mismatch of string

let read_lines path =
  match
    In_channel.with_open_text path (fun ic ->
        let rec loop acc =
          match In_channel.input_line ic with
          | Some l -> loop (l :: acc)
          | None -> List.rev acc
        in
        loop [])
  with
  | lines -> Ok lines
  | exception Sys_error msg -> Error msg

let rec collect_events acc lineno = function
  | [] -> Ok (List.rev acc)
  | "" :: rest -> collect_events acc (lineno + 1) rest
  | line :: rest -> (
    match Codec.of_line line with
    | Ok ev -> collect_events (ev :: acc) (lineno + 1) rest
    | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))

type header = {
  h_scenario : string;
  h_mode : Dpm.mode;
  h_seed : int;
  h_designer : string;
  h_commands : string list;
  h_fingerprint : string;
}

let header_of_json ~marker meta =
  let ( let* ) = Result.bind in
  let* () =
    match meta with
    | Json.Obj _ when Json.member marker meta <> None -> Ok ()
    | _ -> Error (Printf.sprintf "first line is not a %s header" marker)
  in
  let meta_str name =
    match Option.bind (Json.member name meta) Json.to_str with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "header lacks field %S" name)
  in
  let* h_scenario = meta_str "scenario" in
  let* mode_s = meta_str "mode" in
  let* h_mode =
    match Dpm.mode_of_string mode_s with
    | Some m -> Ok m
    | None -> Error (Printf.sprintf "bad mode %S in header" mode_s)
  in
  let* h_seed =
    match Option.bind (Json.member "seed" meta) Json.to_int with
    | Some n -> Ok n
    | None -> Error "header lacks field \"seed\""
  in
  let* h_designer = meta_str "designer" in
  let* h_fingerprint = meta_str "fingerprint" in
  let* h_commands =
    match Option.bind (Json.member "commands" meta) Json.to_list with
    | None -> Error "header lacks field \"commands\""
    | Some items ->
      let strs = List.filter_map Json.to_str items in
      if List.length strs <> List.length items then
        Error "non-string entry in header command log"
      else Ok strs
  in
  Ok { h_scenario; h_mode; h_seed; h_designer; h_commands; h_fingerprint }

(* Re-issuing the command log regenerates the designer-model state (RNG,
   tabu memory) and the trace buffer, so the rebuilt session can itself
   be checkpointed or journaled again. *)
let rebuild ~resolve ~id header =
  match
    create ~resolve ~id ~scenario:header.h_scenario ~mode:header.h_mode
      ~seed:header.h_seed ~designer:header.h_designer
  with
  | Error msg ->
    Error (Rs_corrupt (Printf.sprintf "cannot rebuild session: %s" msg))
  | Ok fresh -> (
    match List.iter (fun line -> ignore (exec fresh line)) header.h_commands with
    | () ->
      let fp = fingerprint fresh in
      if String.equal fp header.h_fingerprint then
        Ok (fresh, List.length header.h_commands)
      else
        Error
          (Rs_mismatch
             (Printf.sprintf "replayed %s but header recorded %s" fp
                header.h_fingerprint))
    | exception e ->
      Error
        (Rs_corrupt
           (Printf.sprintf "command log replay raised %s"
              (Printexc.to_string e))))

let resume ~resolve ~id ~path =
  let ( let* ) = Result.bind in
  match read_lines path with
  | Error msg -> Error (Rs_io msg)
  | Ok [] -> Error (Rs_corrupt "empty checkpoint file")
  | Ok (meta_line :: event_lines) ->
    let corrupt fmt = Printf.ksprintf (fun m -> Error (Rs_corrupt m)) fmt in
    let* meta =
      match Json.parse meta_line with
      | Ok j -> Ok j
      | Error msg -> corrupt "unparseable checkpoint header: %s" msg
    in
    let* header =
      match header_of_json ~marker:"teamsimd_checkpoint" meta with
      | Ok h -> Ok h
      | Error msg -> corrupt "%s" msg
    in
    let* events =
      match collect_events [] 2 event_lines with
      | Ok evs -> Ok evs
      | Error msg -> corrupt "bad trace event at %s" msg
    in
    (* Integrity gate: the recorded trace must replay cleanly through the
       stock driver before we trust the command log. *)
    let raising_resolve name =
      match resolve name with Ok s -> s | Error msg -> invalid_arg msg
    in
    let* () =
      match Replay.run ~resolve:raising_resolve events with
      | report when Replay.converged report -> Ok ()
      | report ->
        corrupt "checkpoint trace does not replay: %s"
          (String.trim (Replay.render report))
      | exception Replay.Replay_error msg ->
        corrupt "checkpoint trace does not replay: %s" msg
    in
    rebuild ~resolve ~id header
