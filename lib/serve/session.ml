open Adpm_core
open Adpm_teamsim
open Adpm_trace
module Json = Adpm_trace.Json

type t = {
  ss_id : string;
  ss_scenario : string;
  ss_mode : Dpm.mode;
  ss_seed : int;
  ss_designer : string;
  ss_session : Interactive.t;
  ss_buf : Sink.Collect.buffer;
  ss_tracer : Tracer.t;
  mutable ss_commands : string list;  (* newest first *)
}

let id t = t.ss_id
let interactive t = t.ss_session
let commands t = List.rev t.ss_commands

let create ~resolve ~id ~scenario ~mode ~seed ~designer =
  match (resolve scenario : (Scenario.t, string) result) with
  | Error msg -> Error msg
  | Ok sc -> (
    let buf, sink = Sink.collector () in
    let tracer = Tracer.create sink in
    match Interactive.create ~tracer ~mode ~seed sc ~designer with
    | session ->
      Ok
        {
          ss_id = id;
          ss_scenario = scenario;
          ss_mode = mode;
          ss_seed = seed;
          ss_designer = designer;
          ss_session = session;
          ss_buf = buf;
          ss_tracer = tracer;
          ss_commands = [];
        }
    | exception Invalid_argument msg -> Error msg)

let exec t line =
  (* Log the line before running it: replay-on-resume must re-issue every
     command (including rejected ones) so the designer models' RNG and
     tabu state advance identically. *)
  t.ss_commands <- line :: t.ss_commands;
  Interactive.execute t.ss_session line

let prompt t = Interactive.prompt t.ss_session
let finished t = Interactive.finished t.ss_session

let fingerprint t =
  let dpm = Interactive.dpm t.ss_session in
  Printf.sprintf "ops=%d evals=%d spins=%d solved=%b violations=[%s]"
    (Dpm.op_count dpm)
    (Interactive.attributed_evaluations t.ss_session)
    (Dpm.spin_count dpm) (Dpm.solved dpm)
    (String.concat ","
       (List.map string_of_int
          (List.sort compare (Dpm.known_violations dpm))))

let status_fields t =
  let dpm = Interactive.dpm t.ss_session in
  [
    ("session", Json.Str t.ss_id);
    ("scenario", Json.Str t.ss_scenario);
    ("mode", Json.Str (Dpm.mode_to_string t.ss_mode));
    ("seed", Json.Num (float_of_int t.ss_seed));
    ("designer", Json.Str t.ss_designer);
    ("prompt", Json.Str (prompt t));
    ("finished", Json.Bool (finished t));
    ("operations", Json.Num (float_of_int (Dpm.op_count dpm)));
    ( "evaluations",
      Json.Num (float_of_int (Interactive.attributed_evaluations t.ss_session))
    );
    ("spins", Json.Num (float_of_int (Dpm.spin_count dpm)));
    ( "violations",
      Json.Arr
        (List.map
           (fun cid -> Json.Num (float_of_int cid))
           (List.sort compare (Dpm.known_violations (Interactive.dpm t.ss_session))))
    );
    ("commands", Json.Num (float_of_int (List.length t.ss_commands)));
    ("events", Json.Num (float_of_int (Sink.Collect.length t.ss_buf)));
  ]

(* A synthetic closing event, NOT appended to the live buffer: the
   session keeps running after a checkpoint, and a later checkpoint must
   build its own closing frame from the later state. *)
let closing_event t =
  let dpm = Interactive.dpm t.ss_session in
  {
    Event.seq = Tracer.seq t.ss_tracer;
    clock = Tracer.clock t.ss_tracer;
    event =
      Event.Run_finished
        {
          completed = Dpm.solved dpm && Dpm.ground_truth_solved dpm;
          operations = Dpm.op_count dpm;
          evaluations = Interactive.attributed_evaluations t.ss_session;
          setup_evaluations = Interactive.setup_evaluations t.ss_session;
          spins = Dpm.spin_count dpm;
          violations = List.sort compare (Dpm.known_violations dpm);
        };
  }

let meta_json t =
  Json.Obj
    [
      ("teamsimd_checkpoint", Json.Num 1.);
      ("scenario", Json.Str t.ss_scenario);
      ("mode", Json.Str (Dpm.mode_to_string t.ss_mode));
      ("seed", Json.Num (float_of_int t.ss_seed));
      ("designer", Json.Str t.ss_designer);
      ("commands", Json.Arr (List.rev_map (fun c -> Json.Str c) t.ss_commands));
      ("fingerprint", Json.Str (fingerprint t));
    ]

let checkpoint t ~path =
  let events = Sink.Collect.contents t.ss_buf @ [ closing_event t ] in
  match
    Out_channel.with_open_text path (fun oc ->
        output_string oc (Json.to_string (meta_json t));
        output_char oc '\n';
        List.iter
          (fun ev ->
            output_string oc (Codec.to_line ev);
            output_char oc '\n')
          events)
  with
  | () -> Ok (List.length events)
  | exception Sys_error msg -> Error msg

type resume_error =
  | Rs_io of string
  | Rs_corrupt of string
  | Rs_mismatch of string

let read_lines path =
  match
    In_channel.with_open_text path (fun ic ->
        let rec loop acc =
          match In_channel.input_line ic with
          | Some l -> loop (l :: acc)
          | None -> List.rev acc
        in
        loop [])
  with
  | lines -> Ok lines
  | exception Sys_error msg -> Error msg

let rec collect_events acc lineno = function
  | [] -> Ok (List.rev acc)
  | "" :: rest -> collect_events acc (lineno + 1) rest
  | line :: rest -> (
    match Codec.of_line line with
    | Ok ev -> collect_events (ev :: acc) (lineno + 1) rest
    | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))

let resume ~resolve ~id ~path =
  let ( let* ) = Result.bind in
  match read_lines path with
  | Error msg -> Error (Rs_io msg)
  | Ok [] -> Error (Rs_corrupt "empty checkpoint file")
  | Ok (meta_line :: event_lines) ->
    let corrupt fmt = Printf.ksprintf (fun m -> Error (Rs_corrupt m)) fmt in
    let* meta =
      match Json.parse meta_line with
      | Ok j when Json.member "teamsimd_checkpoint" j <> None -> Ok j
      | Ok _ -> corrupt "first line is not a teamsimd checkpoint header"
      | Error msg -> corrupt "unparseable checkpoint header: %s" msg
    in
    let meta_str name =
      match Option.bind (Json.member name meta) Json.to_str with
      | Some s -> Ok s
      | None -> corrupt "checkpoint header lacks field %S" name
    in
    let* scenario = meta_str "scenario" in
    let* mode_s = meta_str "mode" in
    let* mode =
      match Dpm.mode_of_string mode_s with
      | Some m -> Ok m
      | None -> corrupt "bad mode %S in checkpoint header" mode_s
    in
    let* seed =
      match Option.bind (Json.member "seed" meta) Json.to_int with
      | Some n -> Ok n
      | None -> corrupt "checkpoint header lacks field \"seed\""
    in
    let* designer = meta_str "designer" in
    let* recorded_fp = meta_str "fingerprint" in
    let* commands =
      match Option.bind (Json.member "commands" meta) Json.to_list with
      | None -> corrupt "checkpoint header lacks field \"commands\""
      | Some items -> (
        let strs = List.filter_map Json.to_str items in
        if List.length strs <> List.length items then
          corrupt "non-string entry in checkpoint command log"
        else Ok strs)
    in
    let* events =
      match collect_events [] 2 event_lines with
      | Ok evs -> Ok evs
      | Error msg -> corrupt "bad trace event at %s" msg
    in
    (* Integrity gate: the recorded trace must replay cleanly through the
       stock driver before we trust the command log. *)
    let raising_resolve name =
      match resolve name with Ok s -> s | Error msg -> invalid_arg msg
    in
    let* () =
      match Replay.run ~resolve:raising_resolve events with
      | report when Replay.converged report -> Ok ()
      | report ->
        corrupt "checkpoint trace does not replay: %s"
          (String.trim (Replay.render report))
      | exception Replay.Replay_error msg ->
        corrupt "checkpoint trace does not replay: %s" msg
    in
    let* fresh =
      match create ~resolve ~id ~scenario ~mode ~seed ~designer with
      | Ok s -> Ok s
      | Error msg -> corrupt "cannot rebuild session: %s" msg
    in
    (* Re-issuing the command log regenerates the designer-model state
       (RNG, tabu memory) and the trace buffer, so the resumed session can
       itself be checkpointed again. *)
    (match List.iter (fun line -> ignore (exec fresh line)) commands with
    | () ->
      let fp = fingerprint fresh in
      if String.equal fp recorded_fp then Ok (fresh, List.length commands)
      else
        Error
          (Rs_mismatch
             (Printf.sprintf "replayed %s but checkpoint recorded %s" fp
                recorded_fp))
    | exception e ->
      Error
        (Rs_corrupt
           (Printf.sprintf "command log replay raised %s"
              (Printexc.to_string e))))
