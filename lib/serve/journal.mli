(** Write-ahead command journal for teamsimd sessions.

    One JSONL file per session under the daemon's [--journal-dir]:
    line 1 is a {!Session.header_fields} object (marker
    ["teamsimd_journal"]) describing the session at its last compaction,
    followed by one entry object per accepted mutating command since.
    Every line is fsync'd {e before} the command it records executes, so
    after a crash the journal is a complete prefix of the daemon's
    actual history: the only thing ever lost is a command that was never
    executed and never answered.

    Tail corruption (a torn final line from a crash mid-append, or any
    unparseable record) is dropped at the last valid entry; a journal
    whose header itself is unreadable is renamed [*.corrupt] and
    reported as a warning — recovery never wedges startup.

    The directory is guarded by a pid lockfile so two daemons cannot
    interleave writes; a lock left by a SIGKILLed daemon is detected as
    stale (its pid is gone) and broken automatically. *)

module Json = Adpm_trace.Json

(** {2 Directory lock} *)

type lock

val acquire : dir:string -> (lock, string) result
(** Create [dir/teamsimd.lock] with O_EXCL, our pid inside. [Error] if a
    live daemon holds it; a stale lock (dead pid) is broken and retried
    once. *)

val release : lock -> unit
(** Unlink the lockfile. Idempotent. *)

(** {2 Per-session journal files} *)

type t

val path : dir:string -> sid:string -> string
(** [dir/<sid>.journal.jsonl]. *)

val create : dir:string -> sid:string -> Json.t -> (t, string) result
(** Create (truncating any leftover) and write + fsync the header line. *)

val reopen : dir:string -> sid:string -> (t, string) result
(** Open an existing journal for appending (the recovery path, after
    {!scan}). *)

val append : t -> Json.t -> (unit, string) result
(** Write + fsync one entry line. On failure the journal is marked dead:
    later appends keep failing rather than silently losing durability. *)

val rewrite : t -> Json.t -> (unit, string) result
(** Compaction: atomically replace the whole file with a single fresh
    header line (write-to-temp + rename), then reopen for appending. A
    crash mid-compaction leaves either the old journal or the new one. *)

val close : t -> unit
val remove : t -> unit
(** [close] then unlink — for sessions that ended cleanly. *)

(** {2 Startup scan} *)

val quarantine : string -> unit
(** Rename a damaged journal to [<path>.corrupt] (best effort) so the
    next startup does not trip over it again. *)

type scanned = {
  sc_sid : string;
  sc_path : string;
  sc_header : Json.t;
  sc_entries : Json.t list;
  sc_dropped : int;  (** trailing lines dropped: truncated or unparseable *)
}

val scan : dir:string -> scanned list * string list
(** Parse every [*.journal.jsonl] in [dir] (sorted by name). Journals
    with an unreadable header are renamed [*.corrupt] and reported in
    the warning list; per-file tail damage is absorbed into
    [sc_dropped]. Never raises. *)
