(** Minimal synchronous teamsimd client, for the smoke test, the load
    bench, and scripting. One request in flight at a time; responses are
    matched by arrival order (the daemon answers frames in order). *)

module Json = Adpm_trace.Json

type t

val connect : ?max_frame:int -> Unix.sockaddr -> t
(** @raise Unix.Unix_error when the daemon is not reachable. *)

val fd : t -> Unix.file_descr
val close : t -> unit

val send : t -> Json.t -> unit
(** Write one raw frame (for hostile-input tests). *)

exception Timeout
exception Closed  (** the daemon closed the connection *)

val next_response : ?timeout:float -> ?pump:(unit -> unit) -> t -> Wire.response
(** Read the next response frame. [?pump] is called repeatedly while
    waiting, so a harness hosting the daemon in the same thread can pass
    [fun () -> ignore (Daemon.step ~timeout:0. d)]. *)

val rpc : ?timeout:float -> ?pump:(unit -> unit) -> t -> Wire.request -> Wire.response
(** Send with a fresh numeric ["id"] and await the next response. *)

val body_str : Wire.response -> string -> string option
val body_int : Wire.response -> string -> int option
