(** Synchronous teamsimd client, for the smoke tests, the load bench,
    and scripting. One request in flight at a time.

    Two modes:

    - {!connect}: the original plain client. Connects once; a lost
      connection surfaces as {!Closed}; responses are matched by arrival
      order (the daemon answers frames in order).
    - {!connect_persistent}: the reconnecting client. Carries a stable
      ["client"] token on every request, so each (client, id) pair names
      one idempotent logical request. On connection loss {!rpc}
      transparently redials (exponential backoff with seeded jitter,
      lib/parallel's retry shape), re-runs the [hello] handshake, and
      {e resends the same frame}: if the first copy executed before the
      link died, the daemon's reply cache answers the resend without
      executing it again, so the observed command log is byte-identical
      to an undisturbed run. *)

module Json = Adpm_trace.Json

type t

val connect : ?max_frame:int -> Unix.sockaddr -> t
(** Plain mode. @raise Unix.Unix_error when the daemon is not reachable. *)

val connect_persistent :
  ?max_frame:int ->
  ?retries:int ->
  ?backoff:float ->
  ?seed:int ->
  client:string ->
  Unix.sockaddr ->
  t
(** Reconnecting mode. Dials lazily on first {!rpc}. [retries] (default
    8) bounds consecutive failed attempts per operation; [backoff]
    (default 0.02 s) is the base delay, doubled per attempt and capped
    at 2 s, jittered by a factor in [0.5, 1.0) drawn from a {!Adpm_util.Rng}
    seeded with [seed] — per-client determinism, no thundering herd. *)

val fd : t -> Unix.file_descr
(** @raise Closed when a persistent client is between connections. *)

val close : t -> unit
val client_token : t -> string option

val reconnects : t -> int
(** How many times a persistent client has redialed after its first
    successful connection. *)

val send : t -> Json.t -> unit
(** Write one raw frame (for hostile-input tests). *)

exception Timeout
exception Closed  (** the daemon closed the connection *)

val next_response : ?timeout:float -> ?pump:(unit -> unit) -> t -> Wire.response
(** Read the next response frame. [?pump] is called repeatedly while
    waiting, so a harness hosting the daemon in the same thread can pass
    [fun () -> ignore (Daemon.step ~timeout:0. d)]. *)

val rpc : ?timeout:float -> ?pump:(unit -> unit) -> t -> Wire.request -> Wire.response
(** Send with a fresh numeric ["id"] and await the response. Plain mode:
    first-frame semantics, {!Closed}/{!Timeout} propagate. Persistent
    mode: matches the response by id (skipping stale frames from before
    a reconnect), retries through connection loss as described above,
    and returns a connection-level no-id error frame (e.g. [overloaded])
    as the answer; [Failure] once retries are exhausted. *)

val body_str : Wire.response -> string -> string option
val body_int : Wire.response -> string -> int option
