(** teamsimd: the persistent session daemon.

    Keeps elaborated scenarios resident and multiplexes many concurrent
    interactive sessions over one listening socket speaking the {!Wire}
    JSONL protocol.

    {b Concurrency.} A single-threaded, non-blocking [Unix.select] event
    loop. This is a deliberate choice against per-session domains: it
    never calls [Domain.spawn], so a process hosting a daemon does not
    trip the PR 7 fork latch ({!Adpm_parallel.Pool.available} stays
    true), and per-op work (one propagation) is far too small to amortize
    domain handoff. Isolation comes from exception boundaries instead of
    address spaces: a throwing session is torn down and answered with a
    [session_failed] frame; the accept loop never stalls.

    {b Driving it.} [run] blocks until a [shutdown] frame arrives.
    [step] runs one bounded iteration, so tests and benches can host a
    daemon and its clients in a single thread. [handle] exposes the
    request dispatcher directly for protocol-level tests. *)

open Adpm_teamsim
module Json = Adpm_trace.Json

type addr =
  | Unix_path of string
  | Tcp of string * int  (** numeric host address, e.g. ["127.0.0.1"] *)

type config = {
  dc_addr : addr;
  dc_scenarios : Scenario.t list;
      (** resident scenarios advertised in the [hello] listing *)
  dc_resolve : string -> (Scenario.t, string) result;
      (** the injected scenario resolver used by [open] and [resume];
          an [Error] answers the request with a command-level
          [unknown_scenario] frame — resolution failures never tear down
          anything *)
  dc_max_sessions : int;
  dc_max_frame : int;  (** per-frame byte bound (see {!Wire.Reader}) *)
  dc_checkpoint_dir : string;  (** default directory for [checkpoint] files *)
  dc_journal_dir : string option;
      (** when set, every accepted [open]/[exec]/[resume] is written to a
          per-session write-ahead journal (fsync'd {e before} execution)
          in this directory, and [create] rebuilds every journaled
          session found there — see {!Journal} *)
  dc_checkpoint_every : int;
      (** auto-compact a session's journal every N executed commands
          (0 = never): the tail folds back into a fresh header *)
  dc_max_conns : int;
      (** admission control: connections past this bound are answered
          with a single [overloaded] error frame and closed *)
  dc_max_write_buf : int;
      (** per-connection buffered-output bound in bytes; a peer that
          stops reading past it is disconnected (slow-client defense) *)
  dc_max_ops : int;
      (** per-session [exec] budget (0 = unlimited); past it every exec
          is refused with [overloaded] *)
  dc_reply_cache : int;
      (** per-client bound on cached replies for idempotent resend *)
  dc_sndbuf : int option;
      (** SO_SNDBUF for accepted connections (test seam for the
          slow-client path) *)
}

val default_config : addr:addr -> scenarios:Scenario.t list -> config
(** 256 sessions, {!Wire.default_max_frame}, checkpoints in ["."], no
    journaling, no auto-compaction, 64 connections, 4 MiB write buffers,
    unlimited ops, 64 cached replies per client, and a [dc_resolve] that
    looks names up in [scenarios] only. The CLI overrides [dc_resolve]
    with the full registry (plain names plus [gen:<spec>] and
    [file:<path>] references). *)

type t

val create : config -> t
(** Bind and listen (unlinking a stale unix-socket path first). With
    [dc_journal_dir] set, also: lock the journal directory (pid
    lockfile; stale locks from a killed daemon are broken), scan it, and
    rebuild every recoverable session by replaying its journal —
    fingerprint-gated at the header and at every tail entry, with
    damaged journals quarantined ([*.corrupt]) and reported via
    {!warnings} rather than wedging startup. Each recovered journal is
    compacted, and replies for journaled (client, id) requests are
    re-cached so a client resend from before the crash is answered
    without double-execution.
    @raise Unix.Unix_error when the address cannot be bound.
    @raise Failure when another live daemon holds the journal dir. *)

val handle : t -> Json.t -> Json.t
(** Dispatch one parsed request frame to its response frame. Total: any
    exception becomes an error frame ([session_failed] with teardown for
    a throwing session's [exec], [internal] otherwise). A frame carrying
    both a ["client"] token and an ["id"] is idempotent: a duplicate
    (client, id) pair is answered from the bounded reply cache instead
    of re-executed. *)

val handle_line : t -> string -> Json.t
(** [handle] after parsing; unparseable input yields a [parse] error
    frame. *)

val step : ?timeout:float -> t -> bool
(** One event-loop iteration: select (up to [timeout], default 0.05 s),
    accept, read/dispatch, flush. Returns [false] once a [shutdown]
    request has been processed and all responses are flushed. *)

val run : t -> unit
(** [while step t do () done; stop t]. *)

val stop : t -> unit
(** Close every connection and the listener, unlink a unix-socket path,
    drop all sessions, release the journal lock. Journal {e files} are
    deliberately kept: they are the crash-recovery state a restarted
    daemon rebuilds from. *)

val session_count : t -> int

val find_session : t -> string -> Session.t option
(** Test/bench seam: direct access to a live session. *)

val recovered_sessions : t -> (string * int) list
(** Sessions rebuilt from journals at {!create}, as
    [(session_id, commands_replayed)], in recovery order. *)

val warnings : t -> string list
(** Human-readable reports of journal damage absorbed during recovery
    (quarantined files, dropped tail entries). *)
