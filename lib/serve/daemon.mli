(** teamsimd: the persistent session daemon.

    Keeps elaborated scenarios resident and multiplexes many concurrent
    interactive sessions over one listening socket speaking the {!Wire}
    JSONL protocol.

    {b Concurrency.} A single-threaded, non-blocking [Unix.select] event
    loop. This is a deliberate choice against per-session domains: it
    never calls [Domain.spawn], so a process hosting a daemon does not
    trip the PR 7 fork latch ({!Adpm_parallel.Pool.available} stays
    true), and per-op work (one propagation) is far too small to amortize
    domain handoff. Isolation comes from exception boundaries instead of
    address spaces: a throwing session is torn down and answered with a
    [session_failed] frame; the accept loop never stalls.

    {b Driving it.} [run] blocks until a [shutdown] frame arrives.
    [step] runs one bounded iteration, so tests and benches can host a
    daemon and its clients in a single thread. [handle] exposes the
    request dispatcher directly for protocol-level tests. *)

open Adpm_teamsim
module Json = Adpm_trace.Json

type addr =
  | Unix_path of string
  | Tcp of string * int  (** numeric host address, e.g. ["127.0.0.1"] *)

type config = {
  dc_addr : addr;
  dc_scenarios : Scenario.t list;
      (** resident scenarios advertised in the [hello] listing *)
  dc_resolve : string -> (Scenario.t, string) result;
      (** the injected scenario resolver used by [open] and [resume];
          an [Error] answers the request with a command-level
          [unknown_scenario] frame — resolution failures never tear down
          anything *)
  dc_max_sessions : int;
  dc_max_frame : int;  (** per-frame byte bound (see {!Wire.Reader}) *)
  dc_checkpoint_dir : string;  (** default directory for [checkpoint] files *)
}

val default_config : addr:addr -> scenarios:Scenario.t list -> config
(** 256 sessions, {!Wire.default_max_frame}, checkpoints in ["."], and a
    [dc_resolve] that looks names up in [scenarios] only. The CLI
    overrides [dc_resolve] with the full registry (plain names plus
    [gen:<spec>] and [file:<path>] references). *)

type t

val create : config -> t
(** Bind and listen (unlinking a stale unix-socket path first).
    @raise Unix.Unix_error when the address cannot be bound. *)

val handle : t -> Json.t -> Json.t
(** Dispatch one parsed request frame to its response frame. Total: any
    exception becomes an error frame ([session_failed] with teardown for
    a throwing session's [exec], [internal] otherwise). *)

val handle_line : t -> string -> Json.t
(** [handle] after parsing; unparseable input yields a [parse] error
    frame. *)

val step : ?timeout:float -> t -> bool
(** One event-loop iteration: select (up to [timeout], default 0.05 s),
    accept, read/dispatch, flush. Returns [false] once a [shutdown]
    request has been processed and all responses are flushed. *)

val run : t -> unit
(** [while step t do () done; stop t]. *)

val stop : t -> unit
(** Close every connection and the listener, unlink a unix-socket path,
    drop all sessions. *)

val session_count : t -> int

val find_session : t -> string -> Session.t option
(** Test/bench seam: direct access to a live session. *)
