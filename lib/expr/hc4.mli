(** HC4 revision: the propagation workhorse.

    The paper's Design Constraint Manager "runs a constraint propagation
    algorithm to compute infeasible property values and the status of all
    constraints" (Section 2.2), delegating numeric work to constraint-based
    systems. HC4 (Benhamou et al., "Revising hull and box consistency",
    ICLP 1999) is the classical such algorithm for arithmetic constraints:
    a forward interval-evaluation sweep annotates every node of the
    expression tree, then a backward sweep projects the constraint's target
    interval onto each variable, shrinking its domain.

    One call to {!revise} is one "constraint evaluation" in the paper's cost
    accounting. *)

open Adpm_interval

type result =
  | Empty
      (** No point of the box can satisfy the constraint: the constraint is
          certainly violated over the current domains. *)
  | Narrowed of (string * Interval.t) list
      (** For each variable of the expression, the narrowed interval (the
          intersection of its input box with every occurrence's projection).
          Unchanged variables are included. *)

val revise :
  env:(string -> Interval.t) -> Expr.t -> Interval.t -> result
(** [revise ~env e target] enforces [e IN target] on the box [env].
    [env] must provide an interval for every variable of [e]. *)

(** {1 Compiled flat kernel}

    The allocation-free fast path for the propagation inner loop: an
    expression is {!compile}d once into a postorder opcode program with
    preallocated scratch, then {!revise_kernel} revises it directly
    against a struct-of-arrays box store ([lo]/[hi] float arrays indexed
    by a dense property id). Results are bit-identical to {!revise} —
    every float formula mirrors the boxed [Interval] operations branch
    for branch, and the backward sweep recurses in the same order. *)

type fpair = { mutable rlo : float; mutable rhi : float }

type kernel = {
  k_op : int array;
  k_a : int array;
  k_b : int array;
  k_cval : float array;
  k_vars : int array;
      (** dense ids of the expression's distinct variables, {!Expr.vars}
          order; slot [j] of the accumulators belongs to [k_vars.(j)] *)
  k_flo : float array;
  k_fhi : float array;
  k_blo : float array;
  k_bhi : float array;
  k_acc_lo : float array;
      (** after a successful {!revise_kernel}: narrowed lower bound per
          variable slot *)
  k_acc_hi : float array;
  k_tmp : fpair;
  k_tlo : float;
  k_thi : float;
}
(** Treat as read-only outside {!revise_kernel}; the scratch arrays make a
    kernel single-threaded — share it only within one domain. *)

val compile : var_id:(string -> int) -> Expr.t -> target:Interval.t -> kernel
(** [compile ~var_id e ~target] builds the kernel enforcing
    [e IN target]. [var_id] maps each variable of [e] to its dense store
    index. @raise Invalid_argument on a negative exponent. *)

val revise_kernel : kernel -> lo:float array -> hi:float array -> bool
(** One HC4 revision against the flat store. Returns [false] when the
    constraint is certainly unsatisfiable on the box (the boxed [Empty]);
    on [true] the narrowed per-variable intervals are left in
    [k_acc_lo]/[k_acc_hi] (slot order [k_vars]). The store itself is not
    written. *)
