open Adpm_interval

type t =
  | Const of float
  | Var of string
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Pow of t * int
  | Sqrt of t
  | Exp of t
  | Ln of t
  | Abs of t
  | Min of t * t
  | Max of t * t

let const c = Const c
let var x = Var x
let ( + ) a b = Add (a, b)
let ( - ) a b = Sub (a, b)
let ( * ) a b = Mul (a, b)
let ( / ) a b = Div (a, b)
let ( ~- ) a = Neg a
let ( ** ) a n = Pow (a, n)

let sum = function
  | [] -> Const 0.
  | e :: rest -> List.fold_left (fun acc x -> Add (acc, x)) e rest

let scale k e = Mul (Const k, e)

let rec fold_vars f acc = function
  | Const _ -> acc
  | Var x -> f acc x
  | Neg a | Pow (a, _) | Sqrt a | Exp a | Ln a | Abs a -> fold_vars f acc a
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Min (a, b) | Max (a, b)
    ->
    fold_vars f (fold_vars f acc a) b

let vars e =
  (* First-occurrence order, deduplicated with a hash set rather than a
     [List.mem] scan: [vars] sits under every constraint compilation and
     was quadratic in the number of occurrences. *)
  let seen = Hashtbl.create 8 in
  List.rev
    (fold_vars
       (fun acc x ->
         if Hashtbl.mem seen x then acc
         else begin
           Hashtbl.add seen x ();
           x :: acc
         end)
       [] e)

let mentions e x = fold_vars (fun acc y -> acc || String.equal x y) false e

let rec size = function
  | Const _ | Var _ -> 1
  | Neg a | Pow (a, _) | Sqrt a | Exp a | Ln a | Abs a -> Stdlib.( + ) 1 (size a)
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Min (a, b) | Max (a, b)
    ->
    Stdlib.( + ) 1 (Stdlib.( + ) (size a) (size b))

let rec subst e x r =
  match e with
  | Const _ -> e
  | Var y -> if String.equal x y then r else e
  | Neg a -> Neg (subst a x r)
  | Add (a, b) -> Add (subst a x r, subst b x r)
  | Sub (a, b) -> Sub (subst a x r, subst b x r)
  | Mul (a, b) -> Mul (subst a x r, subst b x r)
  | Div (a, b) -> Div (subst a x r, subst b x r)
  | Pow (a, n) -> Pow (subst a x r, n)
  | Sqrt a -> Sqrt (subst a x r)
  | Exp a -> Exp (subst a x r)
  | Ln a -> Ln (subst a x r)
  | Abs a -> Abs (subst a x r)
  | Min (a, b) -> Min (subst a x r, subst b x r)
  | Max (a, b) -> Max (subst a x r, subst b x r)

let equal = Stdlib.( = )

exception Unbound_variable of string

let rec eval env = function
  | Const c -> c
  | Var x -> env x
  | Neg a -> Stdlib.( ~-. ) (eval env a)
  | Add (a, b) -> Stdlib.( +. ) (eval env a) (eval env b)
  | Sub (a, b) -> Stdlib.( -. ) (eval env a) (eval env b)
  | Mul (a, b) -> Stdlib.( *. ) (eval env a) (eval env b)
  | Div (a, b) -> Stdlib.( /. ) (eval env a) (eval env b)
  | Pow (a, n) -> Stdlib.( ** ) (eval env a) (float_of_int n)
  | Sqrt a -> sqrt (eval env a)
  | Exp a -> exp (eval env a)
  | Ln a -> log (eval env a)
  | Abs a -> abs_float (eval env a)
  | Min (a, b) ->
    (* NaN-strict: IEEE [<=] would silently drop an undefined branch *)
    let x = eval env a and y = eval env b in
    if Float.is_nan x || Float.is_nan y then Float.nan else Stdlib.min x y
  | Max (a, b) ->
    let x = eval env a and y = eval env b in
    if Float.is_nan x || Float.is_nan y then Float.nan else Stdlib.max x y

let eval_opt env e =
  let exception Missing of string in
  let strict x =
    match env x with Some v -> v | None -> raise (Missing x)
  in
  match eval strict e with v -> Some v | exception Missing _ -> None

let eval_interval env e =
  let open Interval in
  let rec go = function
    | Const c -> Some (of_point c)
    | Var x -> Some (env x)
    | Neg a -> Option.map neg (go a)
    | Add (a, b) -> map2 add a b
    | Sub (a, b) -> map2 sub a b
    | Mul (a, b) -> map2 mul a b
    | Div (a, b) -> map2 div a b
    | Pow (a, n) -> Option.map (fun iv -> pow_int iv n) (go a)
    | Sqrt a -> Option.bind (go a) sqrt_i
    | Exp a -> Option.map exp_i (go a)
    | Ln a -> Option.bind (go a) ln_i
    | Abs a -> Option.map abs_i (go a)
    | Min (a, b) -> map2 min_i a b
    | Max (a, b) -> map2 max_i a b
  and map2 f a b =
    match (go a, go b) with Some x, Some y -> Some (f x y) | _, _ -> None
  in
  go e

let rec simplify e =
  match e with
  | Const _ | Var _ -> e
  | Neg a -> (
    match simplify a with
    | Const c -> Const (Stdlib.( ~-. ) c)
    | Neg b -> b
    | a' -> Neg a')
  | Add (a, b) -> (
    match (simplify a, simplify b) with
    | Const x, Const y -> Const (Stdlib.( +. ) x y)
    | Const 0., b' -> b'
    | a', Const 0. -> a'
    | a', b' -> Add (a', b'))
  | Sub (a, b) -> (
    match (simplify a, simplify b) with
    | Const x, Const y -> Const (Stdlib.( -. ) x y)
    | a', Const 0. -> a'
    | Const 0., b' -> Neg b'
    | a', b' -> Sub (a', b'))
  | Mul (a, b) -> (
    match (simplify a, simplify b) with
    | Const x, Const y -> Const (Stdlib.( *. ) x y)
    | Const 0., _ | _, Const 0. -> Const 0.
    | Const 1., b' -> b'
    | a', Const 1. -> a'
    | a', b' -> Mul (a', b'))
  | Div (a, b) -> (
    match (simplify a, simplify b) with
    | Const x, Const y when Stdlib.( <> ) y 0. -> Const (Stdlib.( /. ) x y)
    | a', Const 1. -> a'
    | a', b' -> Div (a', b'))
  | Pow (a, n) -> (
    if n = 0 then Const 1.
    else
      match simplify a with
      | Const c -> Const (Stdlib.( ** ) c (float_of_int n))
      | a' -> if n = 1 then a' else Pow (a', n))
  | Sqrt a -> (
    match simplify a with
    | Const c when Stdlib.( >= ) c 0. -> Const (sqrt c)
    | a' -> Sqrt a')
  | Exp a -> (
    match simplify a with Const c -> Const (exp c) | a' -> Exp a')
  | Ln a -> (
    match simplify a with
    | Const c when Stdlib.( > ) c 0. -> Const (log c)
    | a' -> Ln a')
  | Abs a -> (
    match simplify a with Const c -> Const (abs_float c) | a' -> Abs a')
  | Min (a, b) -> (
    match (simplify a, simplify b) with
    | Const x, Const y -> Const (Stdlib.min x y)
    | a', b' -> Min (a', b'))
  | Max (a, b) -> (
    match (simplify a, simplify b) with
    | Const x, Const y -> Const (Stdlib.max x y)
    | a', b' -> Max (a', b'))

(* Precedence: 0 = additive, 1 = multiplicative, 2 = unary/atoms. *)
let rec pp_prec prec ppf e =
  let paren p body =
    if Stdlib.( < ) p prec then Format.fprintf ppf "(%t)" body else body ppf
  in
  match e with
  | Const c -> Format.fprintf ppf "%g" c
  | Var x -> Format.pp_print_string ppf x
  | Neg a -> paren 1 (fun ppf -> Format.fprintf ppf "-%a" (pp_prec 2) a)
  | Add (a, b) ->
    paren 0 (fun ppf ->
        Format.fprintf ppf "%a + %a" (pp_prec 0) a (pp_prec 1) b)
  | Sub (a, b) ->
    paren 0 (fun ppf ->
        Format.fprintf ppf "%a - %a" (pp_prec 0) a (pp_prec 1) b)
  | Mul (a, b) ->
    paren 1 (fun ppf ->
        Format.fprintf ppf "%a * %a" (pp_prec 1) a (pp_prec 2) b)
  | Div (a, b) ->
    paren 1 (fun ppf ->
        Format.fprintf ppf "%a / %a" (pp_prec 1) a (pp_prec 2) b)
  | Pow (a, n) ->
    paren 2 (fun ppf -> Format.fprintf ppf "%a^%d" (pp_prec 2) a n)
  | Sqrt a -> Format.fprintf ppf "sqrt(%a)" (pp_prec 0) a
  | Exp a -> Format.fprintf ppf "exp(%a)" (pp_prec 0) a
  | Ln a -> Format.fprintf ppf "ln(%a)" (pp_prec 0) a
  | Abs a -> Format.fprintf ppf "abs(%a)" (pp_prec 0) a
  | Min (a, b) ->
    Format.fprintf ppf "min(%a, %a)" (pp_prec 0) a (pp_prec 0) b
  | Max (a, b) ->
    Format.fprintf ppf "max(%a, %a)" (pp_prec 0) a (pp_prec 0) b

let pp ppf e = pp_prec 0 ppf e
let to_string e = Format.asprintf "%a" pp e
