open Adpm_interval

type result = Empty | Narrowed of (string * Interval.t) list

(* Expression tree annotated with forward-evaluated intervals. *)
type anode = { shape : shape; fwd : Interval.t }

and shape =
  | A_const
  | A_var of string
  | A_neg of anode
  | A_add of anode * anode
  | A_sub of anode * anode
  | A_mul of anode * anode
  | A_div of anode * anode
  | A_pow of anode * int
  | A_sqrt of anode
  | A_exp of anode
  | A_ln of anode
  | A_abs of anode
  | A_min of anode * anode
  | A_max of anode * anode

exception Empty_projection

let annotate env e =
  let rec go e =
    match e with
    | Expr.Const c -> { shape = A_const; fwd = Interval.of_point c }
    | Expr.Var x -> { shape = A_var x; fwd = env x }
    | Expr.Neg a ->
      let na = go a in
      { shape = A_neg na; fwd = Interval.neg na.fwd }
    | Expr.Add (a, b) -> bin Interval.add (fun x y -> A_add (x, y)) a b
    | Expr.Sub (a, b) -> bin Interval.sub (fun x y -> A_sub (x, y)) a b
    | Expr.Mul (a, b) -> bin Interval.mul (fun x y -> A_mul (x, y)) a b
    | Expr.Div (a, b) -> bin Interval.div (fun x y -> A_div (x, y)) a b
    | Expr.Pow (a, n) ->
      let na = go a in
      { shape = A_pow (na, n); fwd = Interval.pow_int na.fwd n }
    | Expr.Sqrt a ->
      let na = go a in
      (match Interval.sqrt_i na.fwd with
      | None -> raise Empty_projection
      | Some iv -> { shape = A_sqrt na; fwd = iv })
    | Expr.Exp a ->
      let na = go a in
      { shape = A_exp na; fwd = Interval.exp_i na.fwd }
    | Expr.Ln a ->
      let na = go a in
      (match Interval.ln_i na.fwd with
      | None -> raise Empty_projection
      | Some iv -> { shape = A_ln na; fwd = iv })
    | Expr.Abs a ->
      let na = go a in
      { shape = A_abs na; fwd = Interval.abs_i na.fwd }
    | Expr.Min (a, b) -> bin Interval.min_i (fun x y -> A_min (x, y)) a b
    | Expr.Max (a, b) -> bin Interval.max_i (fun x y -> A_max (x, y)) a b
  and bin op mk a b =
    let na = go a and nb = go b in
    { shape = mk na nb; fwd = op na.fwd nb.fwd }
  in
  go e

(* Plain floating-point arithmetic is used instead of outward rounding, so a
   backward projection can land one ulp away from a degenerate input box
   (e.g. [(a - b) + b <> a]); widen projections by a magnitude-relative
   epsilon before intersecting so that only real gaps produce Empty.

   The slack is per-bound, not per-interval: [t -> t -. slack t] and
   [t -> t +. slack t] are monotone in [t], so widening is isotone in the
   interval-inclusion order ([X subset Y] implies [widen X subset widen Y]).
   A per-interval slack taken from the largest finite magnitude is *not*
   isotone — a projection with one infinite bound gets a smaller slack than
   a tighter all-finite one — and propagation relies on isotonicity for its
   fixpoint to be independent of revision order (the incremental engine's
   restarts must converge to bit-identical boxes). *)
let bound_slack t = 1e-11 *. Float.max 1.0 (Float.abs t)

let widen iv =
  let lo = Interval.lo iv and hi = Interval.hi iv in
  let lo = if Float.is_finite lo then lo -. bound_slack lo else lo in
  let hi = if Float.is_finite hi then hi +. bound_slack hi else hi in
  Interval.make lo hi

let revise ~env e target =
  let narrowings : (string, Interval.t) Hashtbl.t = Hashtbl.create 8 in
  let record x iv =
    let iv = widen iv in
    let cur = try Hashtbl.find narrowings x with Not_found -> env x in
    match Interval.intersect cur iv with
    | None -> raise Empty_projection
    | Some res -> Hashtbl.replace narrowings x res
  in
  let meet node tgt =
    let tgt = widen tgt in
    match Interval.intersect node.fwd tgt with
    | None -> raise Empty_projection
    | Some iv -> iv
  in
  (* [back node tgt] assumes [tgt] is already inside the node's forward
     interval. *)
  let rec back node tgt =
    match node.shape with
    | A_const -> ()
    | A_var x -> record x tgt
    | A_neg a -> back a (meet a (Interval.neg tgt))
    | A_add (a, b) ->
      back a (meet a (Interval.inv_add_left tgt b.fwd));
      back b (meet b (Interval.inv_add_left tgt a.fwd))
    | A_sub (a, b) ->
      back a (meet a (Interval.inv_sub_left tgt b.fwd));
      back b (meet b (Interval.inv_sub_right tgt a.fwd))
    | A_mul (a, b) ->
      back a (meet a (Interval.inv_mul tgt b.fwd));
      back b (meet b (Interval.inv_mul tgt a.fwd))
    | A_div (a, b) ->
      back a (meet a (Interval.inv_div_left tgt b.fwd));
      back b (meet b (Interval.inv_div_right tgt a.fwd))
    | A_pow (a, n) -> (
      match Interval.inv_pow_int tgt n with
      | None -> raise Empty_projection
      | Some pre -> back a (meet a pre))
    | A_sqrt a -> (
      match Interval.inv_sqrt tgt with
      | None -> raise Empty_projection
      | Some pre -> back a (meet a pre))
    | A_exp a -> (
      match Interval.inv_exp tgt with
      | None -> raise Empty_projection
      | Some pre -> back a (meet a pre))
    | A_ln a -> back a (meet a (Interval.inv_ln tgt))
    | A_abs a -> back a (meet a (Interval.inv_abs tgt))
    | A_min (a, b) ->
      (* Both arguments are >= tgt.lo; an argument is additionally <= tgt.hi
         when the other is certainly above tgt.hi (it must then realise the
         minimum). *)
      let floor_only = Interval.make (Interval.lo tgt) infinity in
      let bound child other =
        if Interval.lo other.fwd > Interval.hi tgt then meet child tgt
        else meet child floor_only
      in
      back a (bound a b);
      back b (bound b a)
    | A_max (a, b) ->
      let ceil_only = Interval.make neg_infinity (Interval.hi tgt) in
      let bound child other =
        if Interval.hi other.fwd < Interval.lo tgt then meet child tgt
        else meet child ceil_only
      in
      back a (bound a b);
      back b (bound b a)
  in
  match
    let root = annotate env e in
    let tgt = meet root target in
    back root tgt
  with
  | () ->
    let out =
      List.map
        (fun x ->
          let iv = try Hashtbl.find narrowings x with Not_found -> env x in
          (x, iv))
        (Expr.vars e)
    in
    Narrowed out
  | exception Empty_projection -> Empty

(* {2 Compiled flat kernel}

   [revise] above allocates an annotated tree, a narrowings hash table and
   a binding list on every call — and it is called millions of times per
   simulation sweep. The kernel below compiles an expression once into a
   postorder opcode array plus preallocated scratch, so a revision is two
   array sweeps over floats with no per-call allocation on the common
   (+,-,neg,min,max,var,const) operators.

   Bit-identity with [revise] is load-bearing: the incremental engine's
   equivalence argument and the parallel-agreement fingerprints both assume
   the fixpoint is a function of the constraint system only. Every float
   formula below therefore mirrors the corresponding [Interval] operation
   literally (including the [prod] 0*inf convention and the branch
   structure of [div] and [pow_int]), the backward pass recurses in the
   same a-then-b order, and [intersect]/[widen] are applied with the same
   operand order. A QCheck suite pins [revise_kernel] against [revise]. *)

(* All-float record: fields are stored flat, so mutating it does not
   allocate. Used as a two-float out-parameter for [div]/[mul]/[pow]. *)
type fpair = { mutable rlo : float; mutable rhi : float }

type kernel = {
  k_op : int array;  (** opcode per node, postorder (root last) *)
  k_a : int array;  (** child index / var slot / constant slot *)
  k_b : int array;  (** second child index / integer exponent *)
  k_cval : float array;  (** constant pool *)
  k_vars : int array;
      (** distinct variable ids ([var_id] image), {!Expr.vars} order *)
  k_flo : float array;  (** forward-pass scratch, per node *)
  k_fhi : float array;
  k_blo : float array;  (** backward-pass target scratch, per node *)
  k_bhi : float array;
  k_acc_lo : float array;  (** per-variable narrowing accumulator, per slot *)
  k_acc_hi : float array;
  k_tmp : fpair;
  k_tlo : float;  (** constraint target *)
  k_thi : float;
}

let op_const = 0
let op_var = 1
let op_neg = 2
let op_add = 3
let op_sub = 4
let op_mul = 5
let op_div = 6
let op_pow = 7
let op_sqrt = 8
let op_exp = 9
let op_ln = 10
let op_abs = 11
let op_min = 12
let op_max = 13

let compile ~var_id e ~target =
  let n = Expr.size e in
  let op = Array.make n 0 and pa = Array.make n 0 and pb = Array.make n 0 in
  let consts = ref [] and n_consts = ref 0 in
  let names = Expr.vars e in
  let n_slots = List.length names in
  let slot_of : (string, int) Hashtbl.t = Hashtbl.create 8 in
  List.iteri (fun i x -> Hashtbl.replace slot_of x i) names;
  let next = ref 0 in
  let emit o a b =
    let i = !next in
    op.(i) <- o;
    pa.(i) <- a;
    pb.(i) <- b;
    incr next;
    i
  in
  let rec go = function
    | Expr.Const c ->
      let ci = !n_consts in
      consts := c :: !consts;
      incr n_consts;
      emit op_const ci 0
    | Expr.Var x -> emit op_var (Hashtbl.find slot_of x) 0
    | Expr.Neg a -> un op_neg a
    | Expr.Sqrt a -> un op_sqrt a
    | Expr.Exp a -> un op_exp a
    | Expr.Ln a -> un op_ln a
    | Expr.Abs a -> un op_abs a
    | Expr.Pow (a, k) ->
      if k < 0 then invalid_arg "Hc4.compile: negative exponent";
      let ia = go a in
      emit op_pow ia k
    | Expr.Add (a, b) -> bin op_add a b
    | Expr.Sub (a, b) -> bin op_sub a b
    | Expr.Mul (a, b) -> bin op_mul a b
    | Expr.Div (a, b) -> bin op_div a b
    | Expr.Min (a, b) -> bin op_min a b
    | Expr.Max (a, b) -> bin op_max a b
  and un o a =
    let ia = go a in
    emit o ia 0
  and bin o a b =
    let ia = go a in
    let ib = go b in
    emit o ia ib
  in
  let root = go e in
  assert (root = n - 1);
  {
    k_op = op;
    k_a = pa;
    k_b = pb;
    k_cval = Array.of_list (List.rev !consts);
    k_vars = Array.of_list (List.map var_id names);
    k_flo = Array.make n 0.;
    k_fhi = Array.make n 0.;
    k_blo = Array.make n 0.;
    k_bhi = Array.make n 0.;
    k_acc_lo = Array.make (max 1 n_slots) 0.;
    k_acc_hi = Array.make (max 1 n_slots) 0.;
    k_tmp = { rlo = 0.; rhi = 0. };
    k_tlo = Interval.lo target;
    k_thi = Interval.hi target;
  }

(* Float mirrors of the [Interval] operations. Branches and operand order
   are copied verbatim so results (including NaN flows and signed zeros)
   are bitwise those of the boxed path. *)

let prod_f x y =
  if (x = 0. && not (Float.is_finite y)) || (y = 0. && not (Float.is_finite x))
  then 0.
  else x *. y

let mul_into buf alo ahi blo bhi =
  let p1 = prod_f alo blo and p2 = prod_f alo bhi in
  let p3 = prod_f ahi blo and p4 = prod_f ahi bhi in
  buf.rlo <- min (min p1 p2) (min p3 p4);
  buf.rhi <- max (max p1 p2) (max p3 p4)

let div_into buf alo ahi blo bhi =
  if blo > 0. || bhi < 0. then begin
    let p1 = alo /. blo and p2 = alo /. bhi in
    let p3 = ahi /. blo and p4 = ahi /. bhi in
    buf.rlo <- min (min p1 p2) (min p3 p4);
    buf.rhi <- max (max p1 p2) (max p3 p4)
  end
  else if blo = 0. && bhi = 0. then begin
    buf.rlo <- neg_infinity;
    buf.rhi <- infinity
  end
  else if blo = 0. then
    if alo >= 0. then begin
      buf.rlo <- alo /. bhi;
      buf.rhi <- infinity
    end
    else if ahi <= 0. then begin
      buf.rlo <- neg_infinity;
      buf.rhi <- ahi /. bhi
    end
    else begin
      buf.rlo <- neg_infinity;
      buf.rhi <- infinity
    end
  else if bhi = 0. then
    if alo >= 0. then begin
      buf.rlo <- neg_infinity;
      buf.rhi <- alo /. blo
    end
    else if ahi <= 0. then begin
      buf.rlo <- ahi /. blo;
      buf.rhi <- infinity
    end
    else begin
      buf.rlo <- neg_infinity;
      buf.rhi <- infinity
    end
  else begin
    buf.rlo <- neg_infinity;
    buf.rhi <- infinity
  end

let rec pow_into buf alo ahi n =
  if n = 0 then begin
    buf.rlo <- 1.;
    buf.rhi <- 1.
  end
  else if n = 1 then begin
    buf.rlo <- alo;
    buf.rhi <- ahi
  end
  else if n mod 2 = 0 then begin
    let xlo, xhi =
      if alo > 0. then (alo, ahi)
      else if ahi < 0. then (-.ahi, -.alo)
      else (0., max (abs_float alo) (abs_float ahi))
    in
    pow_into buf xlo xhi (n / 2);
    let blo = buf.rlo and bhi = buf.rhi in
    mul_into buf blo bhi blo bhi
  end
  else begin
    buf.rlo <- alo ** float_of_int n;
    buf.rhi <- ahi ** float_of_int n
  end

let wlo_f t = if Float.is_finite t then t -. bound_slack t else t
let whi_f t = if Float.is_finite t then t +. bound_slack t else t

let revise_kernel k ~lo ~hi =
  let vars = k.k_vars in
  let n_vars = Array.length vars in
  let acc_lo = k.k_acc_lo and acc_hi = k.k_acc_hi in
  for j = 0 to n_vars - 1 do
    let v = vars.(j) in
    acc_lo.(j) <- lo.(v);
    acc_hi.(j) <- hi.(v)
  done;
  let op = k.k_op and pa = k.k_a and pb = k.k_b in
  let flo = k.k_flo and fhi = k.k_fhi in
  let blo = k.k_blo and bhi = k.k_bhi in
  let tmp = k.k_tmp in
  let n = Array.length op in
  (* [meet i plo phi]: widen the projected target and intersect it with
     node [i]'s forward interval, exactly as the boxed [meet]. *)
  let meet i plo phi =
    let wl = wlo_f plo and wh = whi_f phi in
    let nl = max flo.(i) wl and nh = min fhi.(i) wh in
    if nl > nh then raise Empty_projection;
    blo.(i) <- nl;
    bhi.(i) <- nh
  in
  let rec back i =
    let o = op.(i) in
    if o = op_const then ()
    else if o = op_var then begin
      (* boxed [record]: widen, then intersect with the accumulator *)
      let j = pa.(i) in
      let wl = wlo_f blo.(i) and wh = whi_f bhi.(i) in
      let nl = max acc_lo.(j) wl and nh = min acc_hi.(j) wh in
      if nl > nh then raise Empty_projection;
      acc_lo.(j) <- nl;
      acc_hi.(j) <- nh
    end
    else if o = op_neg then begin
      let ia = pa.(i) in
      meet ia (-.bhi.(i)) (-.blo.(i));
      back ia
    end
    else if o = op_add then begin
      let ia = pa.(i) and ib = pb.(i) in
      meet ia (blo.(i) -. fhi.(ib)) (bhi.(i) -. flo.(ib));
      back ia;
      meet ib (blo.(i) -. fhi.(ia)) (bhi.(i) -. flo.(ia));
      back ib
    end
    else if o = op_sub then begin
      let ia = pa.(i) and ib = pb.(i) in
      meet ia (blo.(i) +. flo.(ib)) (bhi.(i) +. fhi.(ib));
      back ia;
      meet ib (flo.(ia) -. bhi.(i)) (fhi.(ia) -. blo.(i));
      back ib
    end
    else if o = op_mul then begin
      let ia = pa.(i) and ib = pb.(i) in
      div_into tmp blo.(i) bhi.(i) flo.(ib) fhi.(ib);
      meet ia tmp.rlo tmp.rhi;
      back ia;
      div_into tmp blo.(i) bhi.(i) flo.(ia) fhi.(ia);
      meet ib tmp.rlo tmp.rhi;
      back ib
    end
    else if o = op_div then begin
      let ia = pa.(i) and ib = pb.(i) in
      mul_into tmp blo.(i) bhi.(i) flo.(ib) fhi.(ib);
      meet ia tmp.rlo tmp.rhi;
      back ia;
      div_into tmp flo.(ia) fhi.(ia) blo.(i) bhi.(i);
      meet ib tmp.rlo tmp.rhi;
      back ib
    end
    else if o = op_pow then begin
      let ia = pa.(i) and ex = pb.(i) in
      let zlo = blo.(i) and zhi = bhi.(i) in
      if ex = 0 then begin
        meet ia neg_infinity infinity;
        back ia
      end
      else if ex mod 2 = 1 then begin
        let root x =
          if Float.is_finite x then begin
            let r = abs_float x ** (1. /. float_of_int ex) in
            if x < 0. then -.r else r
          end
          else x
        in
        meet ia (root zlo) (root zhi);
        back ia
      end
      else if zhi < 0. then raise Empty_projection
      else begin
        let r =
          if Float.is_finite zhi then zhi ** (1. /. float_of_int ex)
          else infinity
        in
        meet ia (-.r) r;
        back ia
      end
    end
    else if o = op_sqrt then begin
      let ia = pa.(i) in
      if bhi.(i) < 0. then raise Empty_projection;
      let l = max 0. blo.(i) in
      meet ia (l *. l)
        (if Float.is_finite bhi.(i) then bhi.(i) *. bhi.(i) else infinity);
      back ia
    end
    else if o = op_exp then begin
      let ia = pa.(i) in
      if bhi.(i) <= 0. then raise Empty_projection;
      meet ia
        (if blo.(i) <= 0. then neg_infinity else log blo.(i))
        (if Float.is_finite bhi.(i) then log bhi.(i) else infinity);
      back ia
    end
    else if o = op_ln then begin
      let ia = pa.(i) in
      meet ia
        (if Float.is_finite blo.(i) then exp blo.(i) else 0.)
        (if Float.is_finite bhi.(i) then exp bhi.(i) else infinity);
      back ia
    end
    else if o = op_abs then begin
      let ia = pa.(i) in
      let h = max 0. bhi.(i) in
      meet ia (-.h) h;
      back ia
    end
    else if o = op_min then begin
      let ia = pa.(i) and ib = pb.(i) in
      (* an argument is bounded above only when the other certainly
         exceeds the target (boxed A_min case) *)
      if flo.(ib) > bhi.(i) then meet ia blo.(i) bhi.(i)
      else meet ia blo.(i) infinity;
      back ia;
      if flo.(ia) > bhi.(i) then meet ib blo.(i) bhi.(i)
      else meet ib blo.(i) infinity;
      back ib
    end
    else begin
      (* op_max *)
      let ia = pa.(i) and ib = pb.(i) in
      if fhi.(ib) < blo.(i) then meet ia blo.(i) bhi.(i)
      else meet ia neg_infinity bhi.(i);
      back ia;
      if fhi.(ia) < blo.(i) then meet ib blo.(i) bhi.(i)
      else meet ib neg_infinity bhi.(i);
      back ib
    end
  in
  match
    for i = 0 to n - 1 do
      let o = op.(i) in
      if o = op_const then begin
        let c = k.k_cval.(pa.(i)) in
        flo.(i) <- c;
        fhi.(i) <- c
      end
      else if o = op_var then begin
        let j = pa.(i) in
        flo.(i) <- acc_lo.(j);
        fhi.(i) <- acc_hi.(j)
      end
      else if o = op_neg then begin
        let ia = pa.(i) in
        flo.(i) <- -.fhi.(ia);
        fhi.(i) <- -.flo.(ia)
      end
      else if o = op_add then begin
        let ia = pa.(i) and ib = pb.(i) in
        flo.(i) <- flo.(ia) +. flo.(ib);
        fhi.(i) <- fhi.(ia) +. fhi.(ib)
      end
      else if o = op_sub then begin
        let ia = pa.(i) and ib = pb.(i) in
        flo.(i) <- flo.(ia) -. fhi.(ib);
        fhi.(i) <- fhi.(ia) -. flo.(ib)
      end
      else if o = op_mul then begin
        let ia = pa.(i) and ib = pb.(i) in
        mul_into tmp flo.(ia) fhi.(ia) flo.(ib) fhi.(ib);
        flo.(i) <- tmp.rlo;
        fhi.(i) <- tmp.rhi
      end
      else if o = op_div then begin
        let ia = pa.(i) and ib = pb.(i) in
        div_into tmp flo.(ia) fhi.(ia) flo.(ib) fhi.(ib);
        flo.(i) <- tmp.rlo;
        fhi.(i) <- tmp.rhi
      end
      else if o = op_pow then begin
        let ia = pa.(i) in
        pow_into tmp flo.(ia) fhi.(ia) pb.(i);
        flo.(i) <- tmp.rlo;
        fhi.(i) <- tmp.rhi
      end
      else if o = op_sqrt then begin
        let ia = pa.(i) in
        if fhi.(ia) < 0. then raise Empty_projection;
        flo.(i) <- sqrt (max 0. flo.(ia));
        fhi.(i) <- sqrt fhi.(ia)
      end
      else if o = op_exp then begin
        let ia = pa.(i) in
        flo.(i) <- exp flo.(ia);
        fhi.(i) <- exp fhi.(ia)
      end
      else if o = op_ln then begin
        let ia = pa.(i) in
        if fhi.(ia) <= 0. then raise Empty_projection;
        flo.(i) <- (if flo.(ia) <= 0. then neg_infinity else log flo.(ia));
        fhi.(i) <- log fhi.(ia)
      end
      else if o = op_abs then begin
        let ia = pa.(i) in
        if flo.(ia) >= 0. then begin
          flo.(i) <- flo.(ia);
          fhi.(i) <- fhi.(ia)
        end
        else if fhi.(ia) <= 0. then begin
          flo.(i) <- -.fhi.(ia);
          fhi.(i) <- -.flo.(ia)
        end
        else begin
          flo.(i) <- 0.;
          fhi.(i) <- max (-.flo.(ia)) fhi.(ia)
        end
      end
      else if o = op_min then begin
        let ia = pa.(i) and ib = pb.(i) in
        flo.(i) <- min flo.(ia) flo.(ib);
        fhi.(i) <- min fhi.(ia) fhi.(ib)
      end
      else begin
        (* op_max *)
        let ia = pa.(i) and ib = pb.(i) in
        flo.(i) <- max flo.(ia) flo.(ib);
        fhi.(i) <- max fhi.(ia) fhi.(ib)
      end
    done;
    let r = n - 1 in
    meet r k.k_tlo k.k_thi;
    back r
  with
  | () -> true
  | exception Empty_projection -> false
