open Adpm_interval

type result = Empty | Narrowed of (string * Interval.t) list

(* Expression tree annotated with forward-evaluated intervals. *)
type anode = { shape : shape; fwd : Interval.t }

and shape =
  | A_const
  | A_var of string
  | A_neg of anode
  | A_add of anode * anode
  | A_sub of anode * anode
  | A_mul of anode * anode
  | A_div of anode * anode
  | A_pow of anode * int
  | A_sqrt of anode
  | A_exp of anode
  | A_ln of anode
  | A_abs of anode
  | A_min of anode * anode
  | A_max of anode * anode

exception Empty_projection

let annotate env e =
  let rec go e =
    match e with
    | Expr.Const c -> { shape = A_const; fwd = Interval.of_point c }
    | Expr.Var x -> { shape = A_var x; fwd = env x }
    | Expr.Neg a ->
      let na = go a in
      { shape = A_neg na; fwd = Interval.neg na.fwd }
    | Expr.Add (a, b) -> bin Interval.add (fun x y -> A_add (x, y)) a b
    | Expr.Sub (a, b) -> bin Interval.sub (fun x y -> A_sub (x, y)) a b
    | Expr.Mul (a, b) -> bin Interval.mul (fun x y -> A_mul (x, y)) a b
    | Expr.Div (a, b) -> bin Interval.div (fun x y -> A_div (x, y)) a b
    | Expr.Pow (a, n) ->
      let na = go a in
      { shape = A_pow (na, n); fwd = Interval.pow_int na.fwd n }
    | Expr.Sqrt a ->
      let na = go a in
      (match Interval.sqrt_i na.fwd with
      | None -> raise Empty_projection
      | Some iv -> { shape = A_sqrt na; fwd = iv })
    | Expr.Exp a ->
      let na = go a in
      { shape = A_exp na; fwd = Interval.exp_i na.fwd }
    | Expr.Ln a ->
      let na = go a in
      (match Interval.ln_i na.fwd with
      | None -> raise Empty_projection
      | Some iv -> { shape = A_ln na; fwd = iv })
    | Expr.Abs a ->
      let na = go a in
      { shape = A_abs na; fwd = Interval.abs_i na.fwd }
    | Expr.Min (a, b) -> bin Interval.min_i (fun x y -> A_min (x, y)) a b
    | Expr.Max (a, b) -> bin Interval.max_i (fun x y -> A_max (x, y)) a b
  and bin op mk a b =
    let na = go a and nb = go b in
    { shape = mk na nb; fwd = op na.fwd nb.fwd }
  in
  go e

(* Plain floating-point arithmetic is used instead of outward rounding, so a
   backward projection can land one ulp away from a degenerate input box
   (e.g. [(a - b) + b <> a]); widen projections by a magnitude-relative
   epsilon before intersecting so that only real gaps produce Empty.

   The slack is per-bound, not per-interval: [t -> t -. slack t] and
   [t -> t +. slack t] are monotone in [t], so widening is isotone in the
   interval-inclusion order ([X subset Y] implies [widen X subset widen Y]).
   A per-interval slack taken from the largest finite magnitude is *not*
   isotone — a projection with one infinite bound gets a smaller slack than
   a tighter all-finite one — and propagation relies on isotonicity for its
   fixpoint to be independent of revision order (the incremental engine's
   restarts must converge to bit-identical boxes). *)
let bound_slack t = 1e-11 *. Float.max 1.0 (Float.abs t)

let widen iv =
  let lo = Interval.lo iv and hi = Interval.hi iv in
  let lo = if Float.is_finite lo then lo -. bound_slack lo else lo in
  let hi = if Float.is_finite hi then hi +. bound_slack hi else hi in
  Interval.make lo hi

let revise ~env e target =
  let narrowings : (string, Interval.t) Hashtbl.t = Hashtbl.create 8 in
  let record x iv =
    let iv = widen iv in
    let cur = try Hashtbl.find narrowings x with Not_found -> env x in
    match Interval.intersect cur iv with
    | None -> raise Empty_projection
    | Some res -> Hashtbl.replace narrowings x res
  in
  let meet node tgt =
    let tgt = widen tgt in
    match Interval.intersect node.fwd tgt with
    | None -> raise Empty_projection
    | Some iv -> iv
  in
  (* [back node tgt] assumes [tgt] is already inside the node's forward
     interval. *)
  let rec back node tgt =
    match node.shape with
    | A_const -> ()
    | A_var x -> record x tgt
    | A_neg a -> back a (meet a (Interval.neg tgt))
    | A_add (a, b) ->
      back a (meet a (Interval.inv_add_left tgt b.fwd));
      back b (meet b (Interval.inv_add_left tgt a.fwd))
    | A_sub (a, b) ->
      back a (meet a (Interval.inv_sub_left tgt b.fwd));
      back b (meet b (Interval.inv_sub_right tgt a.fwd))
    | A_mul (a, b) ->
      back a (meet a (Interval.inv_mul tgt b.fwd));
      back b (meet b (Interval.inv_mul tgt a.fwd))
    | A_div (a, b) ->
      back a (meet a (Interval.inv_div_left tgt b.fwd));
      back b (meet b (Interval.inv_div_right tgt a.fwd))
    | A_pow (a, n) -> (
      match Interval.inv_pow_int tgt n with
      | None -> raise Empty_projection
      | Some pre -> back a (meet a pre))
    | A_sqrt a -> (
      match Interval.inv_sqrt tgt with
      | None -> raise Empty_projection
      | Some pre -> back a (meet a pre))
    | A_exp a -> (
      match Interval.inv_exp tgt with
      | None -> raise Empty_projection
      | Some pre -> back a (meet a pre))
    | A_ln a -> back a (meet a (Interval.inv_ln tgt))
    | A_abs a -> back a (meet a (Interval.inv_abs tgt))
    | A_min (a, b) ->
      (* Both arguments are >= tgt.lo; an argument is additionally <= tgt.hi
         when the other is certainly above tgt.hi (it must then realise the
         minimum). *)
      let floor_only = Interval.make (Interval.lo tgt) infinity in
      let bound child other =
        if Interval.lo other.fwd > Interval.hi tgt then meet child tgt
        else meet child floor_only
      in
      back a (bound a b);
      back b (bound b a)
    | A_max (a, b) ->
      let ceil_only = Interval.make neg_infinity (Interval.hi tgt) in
      let bound child other =
        if Interval.hi other.fwd < Interval.lo tgt then meet child tgt
        else meet child ceil_only
      in
      back a (bound a b);
      back b (bound b a)
  in
  match
    let root = annotate env e in
    let tgt = meet root target in
    back root tgt
  with
  | () ->
    let out =
      List.map
        (fun x ->
          let iv = try Hashtbl.find narrowings x with Not_found -> env x in
          (x, iv))
        (Expr.vars e)
    in
    Narrowed out
  | exception Empty_projection -> Empty
