open Adpm_core
module Json = Adpm_trace.Json

let to_string = Export.summary_json

let ( let* ) = Result.bind

let field name conv j =
  match Option.bind (Json.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or mistyped field %S" name)

(* Fault counters arrived after the first release of this format; decode
   them as 0 when absent so pre-fault summaries still round-trip. *)
let int_field_default name default j =
  match Json.member name j with
  | None -> Ok default
  | Some v -> (
    match Json.to_int v with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "mistyped field %S" name))

let record_of_json j =
  let* m_index = field "op" Json.to_int j in
  let* m_designer = field "designer" Json.to_str j in
  let* m_kind = field "kind" Json.to_str j in
  let* m_evaluations = field "evaluations" Json.to_int j in
  let* m_new_violations = field "new_violations" Json.to_int j in
  let* m_known_violations = field "known_violations" Json.to_int j in
  let* m_spin = field "spin" Json.to_bool j in
  Ok
    {
      Metrics.m_index;
      m_designer;
      m_kind;
      m_evaluations;
      m_new_violations;
      m_known_violations;
      m_spin;
    }

let rec records_of_json = function
  | [] -> Ok []
  | j :: rest ->
    let* r = record_of_json j in
    let* rs = records_of_json rest in
    Ok (r :: rs)

let of_json j =
  let* s_scenario = field "scenario" Json.to_str j in
  let* mode_name = field "mode" Json.to_str j in
  let* s_mode =
    match Dpm.mode_of_string mode_name with
    | Some m -> Ok m
    | None -> Error (Printf.sprintf "unknown mode %S" mode_name)
  in
  let* s_seed = field "seed" Json.to_int j in
  let* s_completed = field "completed" Json.to_bool j in
  let* s_operations = field "operations" Json.to_int j in
  let* s_evaluations = field "evaluations" Json.to_int j in
  let* s_spins = field "spins" Json.to_int j in
  let* f_dropped = int_field_default "dropped" 0 j in
  let* f_duplicated = int_field_default "duplicated" 0 j in
  let* f_crashes = int_field_default "crashes" 0 j in
  let* profile = field "profile" Json.to_list j in
  let* s_profile = records_of_json profile in
  Ok
    {
      Metrics.s_scenario;
      s_mode;
      s_seed;
      s_completed;
      s_operations;
      s_evaluations;
      s_spins;
      s_faults = { Metrics.f_dropped; f_duplicated; f_crashes };
      s_profile;
    }

let of_string s =
  match Json.parse s with
  | Error msg -> Error ("summary JSON does not parse: " ^ msg)
  | Ok j -> of_json j
