type t = { sh_prop : string; sh_value : float; sh_at : int }

type plan = t list

let none = []

let to_string s = Printf.sprintf "%s>=%.12g@%d" s.sh_prop s.sh_value s.sh_at

let plan_to_string plan = String.concat ";" (List.map to_string plan)

let split_once sep s =
  let seplen = String.length sep in
  let limit = String.length s - seplen in
  let rec scan i =
    if i > limit then None
    else if String.sub s i seplen = sep then
      Some
        ( String.sub s 0 i,
          String.sub s (i + seplen) (String.length s - i - seplen) )
    else scan (i + 1)
  in
  scan 0

let of_string spec =
  match split_once ">=" spec with
  | None ->
    Error
      (Printf.sprintf "malformed shift %S (want PROP>=FLOOR@TICK)" spec)
  | Some (prop, rest) -> (
    match split_once "@" rest with
    | None ->
      Error
        (Printf.sprintf "shift %S lacks a @TICK virtual time" spec)
    | Some (value, tick) -> (
      let prop = String.trim prop in
      if prop = "" then
        Error (Printf.sprintf "shift %S names no property" spec)
      else
        match float_of_string_opt (String.trim value) with
        | None ->
          Error
            (Printf.sprintf "shift %S: %S is not a number" spec value)
        | Some v when not (Float.is_finite v) ->
          Error
            (Printf.sprintf "shift %S: the floor must be finite" spec)
        | Some v -> (
          match int_of_string_opt (String.trim tick) with
          | None ->
            Error
              (Printf.sprintf "shift %S: %S is not an integer tick" spec tick)
          | Some at when at < 0 ->
            Error
              (Printf.sprintf "shift %S: tick must be >= 0" spec)
          | Some at -> Ok { sh_prop = prop; sh_value = v; sh_at = at })))

let plan_of_string spec =
  let fields =
    List.filter
      (fun f -> String.trim f <> "")
      (String.split_on_char ';' spec)
  in
  let rec build acc = function
    | [] ->
      (* stable sort: same-tick shifts keep their written order *)
      Ok (List.stable_sort (fun a b -> compare a.sh_at b.sh_at) (List.rev acc))
    | f :: rest -> (
      match of_string (String.trim f) with
      | Ok s -> build (s :: acc) rest
      | Error _ as e -> e)
  in
  build [] fields

let validate plan =
  let rec check = function
    | [] -> Ok ()
    | s :: rest ->
      if s.sh_prop = "" then Error "shift plan names an empty property"
      else if not (Float.is_finite s.sh_value) then
        Error
          (Printf.sprintf "shift of %s: the floor must be finite" s.sh_prop)
      else if s.sh_at < 0 then
        Error
          (Printf.sprintf "shift of %s: tick must be >= 0 (got %d)" s.sh_prop
             s.sh_at)
      else check rest
  in
  check plan
