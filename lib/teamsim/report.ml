open Adpm_util
open Adpm_core

type aggregate = {
  a_scenario : string;
  a_mode : Dpm.mode;
  a_runs : int;
  a_completed : int;
  a_ops : Stats_acc.t;
  a_evals : Stats_acc.t;
  a_evals_per_op : Stats_acc.t;
  a_spins : Stats_acc.t;
  a_violations : Stats_acc.t;
}

let aggregate summaries =
  match summaries with
  | [] -> invalid_arg "Report.aggregate: no runs"
  | first :: _ ->
    List.iter
      (fun s ->
        if
          (not (String.equal s.Metrics.s_scenario first.Metrics.s_scenario))
          || s.Metrics.s_mode <> first.Metrics.s_mode
        then invalid_arg "Report.aggregate: mixed scenarios or modes")
      summaries;
    let ops = Stats_acc.create () in
    let evals = Stats_acc.create () in
    let per_op = Stats_acc.create () in
    let spins = Stats_acc.create () in
    let violations = Stats_acc.create () in
    let completed = ref 0 in
    List.iter
      (fun s ->
        if s.Metrics.s_completed then incr completed;
        Stats_acc.add_int ops s.Metrics.s_operations;
        Stats_acc.add_int evals s.Metrics.s_evaluations;
        (* zero-op runs have no per-op cost (documented nan); skipping them
           keeps one degenerate run from poisoning the aggregate mean *)
        if s.Metrics.s_operations > 0 then
          Stats_acc.add per_op (Metrics.evaluations_per_op s);
        Stats_acc.add_int spins s.Metrics.s_spins;
        Stats_acc.add_int violations (Metrics.violations_found s))
      summaries;
    {
      a_scenario = first.Metrics.s_scenario;
      a_mode = first.Metrics.s_mode;
      a_runs = List.length summaries;
      a_completed = !completed;
      a_ops = ops;
      a_evals = evals;
      a_evals_per_op = per_op;
      a_spins = spins;
      a_violations = violations;
    }

(* One pass over every record, accumulating into arrays indexed by op
   number (index 0 is the ADPM setup record, excluded as before). Indices
   no run reached are skipped — the old per-index rescan was quadratic in
   run length and silently reported 0 for such gaps instead of the
   documented survivor mean. *)
let mean_profile summaries =
  let max_index =
    List.fold_left
      (fun acc s ->
        List.fold_left
          (fun acc r -> max acc r.Metrics.m_index)
          acc s.Metrics.s_profile)
      0 summaries
  in
  let n = Array.make (max_index + 1) 0 in
  let viols = Array.make (max_index + 1) 0. in
  let evals = Array.make (max_index + 1) 0. in
  List.iter
    (fun s ->
      List.iter
        (fun r ->
          let i = r.Metrics.m_index in
          if i >= 1 then begin
            n.(i) <- n.(i) + 1;
            viols.(i) <- viols.(i) +. float_of_int r.Metrics.m_new_violations;
            evals.(i) <- evals.(i) +. float_of_int r.Metrics.m_evaluations
          end)
        s.Metrics.s_profile)
    summaries;
  List.filter_map
    (fun i ->
      if n.(i) = 0 then None
      else
        let c = float_of_int n.(i) in
        Some (i, viols.(i) /. c, evals.(i) /. c))
    (List.init max_index (fun i -> i + 1))

let comparison_table ~title aggregates =
  let table =
    Table.create ~title
      [
        "Scenario"; "Mode"; "Runs"; "Done"; "Ops (mean)"; "Ops (sd)";
        "Evals (mean)"; "Evals/op"; "Spins (mean)"; "Violations";
      ]
  in
  Table.set_align table
    [
      Table.Left; Table.Left; Table.Right; Table.Right; Table.Right;
      Table.Right; Table.Right; Table.Right; Table.Right; Table.Right;
    ];
  let cell fmt v = if Float.is_nan v then "n/a" else Printf.sprintf fmt v in
  List.iter
    (fun a ->
      Table.add_row table
        [
          a.a_scenario;
          Dpm.mode_to_string a.a_mode;
          string_of_int a.a_runs;
          string_of_int a.a_completed;
          cell "%.1f" (Stats_acc.mean a.a_ops);
          cell "%.1f" (Stats_acc.stddev a.a_ops);
          cell "%.0f" (Stats_acc.mean a.a_evals);
          cell "%.2f" (Stats_acc.mean a.a_evals_per_op);
          cell "%.2f" (Stats_acc.mean a.a_spins);
          cell "%.1f" (Stats_acc.mean a.a_violations);
        ])
    aggregates;
  Table.render table
