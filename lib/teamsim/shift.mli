(** Requirement-shift schedules: the adaptability workload.

    A shift re-assigns one requirement property to a new value at a
    virtual time, modelling a customer or system lead moving the goalposts
    mid-project ("the power budget drops to 140 at tick 30"). The
    discrete-event engine applies each shift through {!Adpm_core.Dpm}, so
    in ADPM mode the new requirement propagates immediately while a
    conventional team only discovers it at its next verification.

    The concrete syntax is [PROP>=FLOOR@TICK], with [;] separating plan
    entries: ["p_budget>=140@30;gmin0>=9.5@60"]. The [>=] reads as "the
    requirement on PROP becomes FLOOR" — the stored value is the new
    assignment, whatever the underlying constraint's relation. *)

type t = {
  sh_prop : string;  (** the requirement property to re-assign *)
  sh_value : float;  (** its new value *)
  sh_at : int;  (** virtual time (scheduler ticks) the shift fires *)
}

type plan = t list

val none : plan

val of_string : string -> (t, string) result
(** Parse one [PROP>=FLOOR@TICK] entry. *)

val plan_of_string : string -> (plan, string) result
(** Parse a [;]-separated schedule, sorted by tick (stable for ties).
    Empty fields are skipped, so a trailing [;] is harmless. *)

val to_string : t -> string

val plan_to_string : plan -> string
(** Inverse of {!plan_of_string} up to whitespace and field order at
    equal ticks. *)

val validate : plan -> (unit, string) result
(** Structural checks only (finite value, tick >= 0). Whether the
    property exists is checked by the engine against the built scenario. *)
