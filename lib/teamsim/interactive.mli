(** Interactive design sessions.

    "Minerva III's interactive windows can also be viewed and used during
    simulations" (Section 3.1): here a human plays one designer while the
    remaining team members are simulated. The session exposes the same
    browsers the paper's figures show and executes operations through the
    same DPM the simulator uses; command parsing is pure string-in /
    string-out so clients (the CLI, tests) just feed lines. *)

open Adpm_core

type t

val create :
  ?tracer:Adpm_trace.Tracer.t ->
  mode:Dpm.mode ->
  seed:int ->
  Scenario.t ->
  designer:string ->
  t
(** Start a session playing [designer]. In ADPM mode the initial
    propagation runs immediately (as the engine would).

    [?tracer] (default disabled) is attached to the DPM and additionally
    receives the engine-level framing events — [Run_started] up front and
    [Op_submitted] (with decision-time evaluation deltas) before every
    applied operation — so the recorded stream is replayable by the stock
    [Replay] driver once a closing [Run_finished] is appended (the
    teamsimd checkpoint writer does exactly that).
    @raise Invalid_argument if the scenario has no such designer. *)

val prompt : t -> string
(** Short status line for the prompt: mode, operations so far, known
    violations. *)

val finished : t -> bool
(** The top-level problem is solved. *)

val execute : t -> string -> (string, string) result
(** Run one command line; [Ok output] or [Error message]. Commands:

    - [help] — list commands
    - [status] — problems, own outputs with values, known violations
    - [browse OBJECT] — the Fig. 2 object browser
    - [props] — the Fig. 3 property browser over the player's properties
    - [conflicts] — the Fig. 4 conflict-resolution view
    - [set PROP VALUE] — synthesis operation (the tool recomputes dependent
      performance properties)
    - [verify] — request the verification the designer would issue now
    - [suggest] — show the operation the simulated designer model would
      pick, without executing it
    - [auto] — execute that operation
    - [step] — every other (simulated) team member takes one turn

    Never raises on a command: [Invalid_argument] escaping a designer
    decision or a [Dpm.apply] (on any command path, not just [set])
    comes back as [Error msg], so a daemon session loop survives
    hostile or unlucky input. *)

val dpm : t -> Dpm.t
(** The session's underlying DPM (read-mostly: for status frames and
    checkpoint fingerprints). *)

val setup_evaluations : t -> int
(** Evaluations spent by the initial ADPM propagation (0 in conventional
    mode) — the [setup_evaluations] a closing [Run_finished] reports. *)

val attributed_evaluations : t -> int
(** N_T already attributed to emitted [Op_submitted] events, i.e.
    [Dpm.eval_count] as of the last applied operation. The checkpoint
    writer records this (not the live [eval_count]) as [Run_finished]'s
    evaluation total so a replay reproduces it exactly; decision-time
    evaluations after the final apply are deliberately excluded. *)
