(** Problem scenarios.

    "Each simulation has an initial problem scenario given by a top-level
    problem formulation, an initial decomposition into subproblems, a set
    of designers, an assignment of subproblems to designers, and initial
    values for top-level requirements" (Section 3.1.2). A scenario is a
    factory: every run builds a fresh DPM so simulations are independent.

    Scenarios also declare the {e models} behind derived performance
    properties. Design operators are "typically implemented by CAD tools"
    (Section 2.1): when a simulated designer executes a synthesis operation
    on a design parameter, the tool recomputes every dependent performance
    property from its model, so performance values stay consistent with the
    parameters (the model-band constraints in the network express the
    tool's accuracy tolerance and tie the properties together for
    propagation). *)

open Adpm_expr
open Adpm_core

type t = {
  sc_name : string;
  sc_description : string;
  sc_models : (string * Expr.t) list;
      (** derived property -> model expression the synthesis tool
          evaluates; may reference other derived properties (resolved to a
          fixpoint) *)
  sc_build : mode:Dpm.mode -> Dpm.t;
}

val make :
  name:string ->
  description:string ->
  ?models:(string * Expr.t) list ->
  (mode:Dpm.mode -> Dpm.t) ->
  t

val find : t list -> string -> t option
(** Lookup by [sc_name]. *)

val resolver : t list -> string -> t
(** A fixed-list resolver, e.g. for {!Replay.run} over test fixtures.
    @raise Invalid_argument naming the known scenarios when absent. *)
