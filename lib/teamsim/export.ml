open Adpm_util
open Adpm_core

let csv_escape = Escape.csv
let json_escape = Escape.json

let profile_csv summary =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "op,designer,kind,evaluations,new_violations,known_violations,spin\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%s,%s,%d,%d,%d,%b\n" r.Metrics.m_index
           (csv_escape r.Metrics.m_designer)
           (csv_escape r.Metrics.m_kind)
           r.Metrics.m_evaluations r.Metrics.m_new_violations
           r.Metrics.m_known_violations r.Metrics.m_spin))
    summary.Metrics.s_profile;
  Buffer.contents buf

let summary_json summary =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf
       {|{"scenario":"%s","mode":"%s","seed":%d,"completed":%b,"operations":%d,"evaluations":%d,"spins":%d,"dropped":%d,"duplicated":%d,"crashes":%d,"profile":[|}
       (json_escape summary.Metrics.s_scenario)
       (json_escape (Dpm.mode_to_string summary.Metrics.s_mode))
       summary.Metrics.s_seed summary.Metrics.s_completed
       summary.Metrics.s_operations summary.Metrics.s_evaluations
       summary.Metrics.s_spins summary.Metrics.s_faults.Metrics.f_dropped
       summary.Metrics.s_faults.Metrics.f_duplicated
       summary.Metrics.s_faults.Metrics.f_crashes);
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           {|{"op":%d,"designer":"%s","kind":"%s","evaluations":%d,"new_violations":%d,"known_violations":%d,"spin":%b}|}
           r.Metrics.m_index
           (json_escape r.Metrics.m_designer)
           (json_escape r.Metrics.m_kind)
           r.Metrics.m_evaluations r.Metrics.m_new_violations
           r.Metrics.m_known_violations r.Metrics.m_spin))
    summary.Metrics.s_profile;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let runs_csv summaries =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "scenario,mode,seed,completed,operations,evaluations,spins,violations,dropped,duplicated,crashes\n";
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%s,%d,%b,%d,%d,%d,%d,%d,%d,%d\n"
           (csv_escape s.Metrics.s_scenario)
           (csv_escape (Dpm.mode_to_string s.Metrics.s_mode))
           s.Metrics.s_seed s.Metrics.s_completed s.Metrics.s_operations
           s.Metrics.s_evaluations s.Metrics.s_spins
           (Metrics.violations_found s) s.Metrics.s_faults.Metrics.f_dropped
           s.Metrics.s_faults.Metrics.f_duplicated
           s.Metrics.s_faults.Metrics.f_crashes))
    summaries;
  Buffer.contents buf
