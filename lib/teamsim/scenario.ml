open Adpm_expr
open Adpm_core

type t = {
  sc_name : string;
  sc_description : string;
  sc_models : (string * Expr.t) list;
  sc_build : mode:Dpm.mode -> Dpm.t;
}

let make ~name ~description ?(models = []) build =
  {
    sc_name = name;
    sc_description = description;
    sc_models = models;
    sc_build = build;
  }

let find scenarios name =
  List.find_opt (fun s -> String.equal s.sc_name name) scenarios

let resolver scenarios name =
  match find scenarios name with
  | Some s -> s
  | None ->
    invalid_arg
      (Printf.sprintf "unknown scenario %s (known: %s)" name
         (String.concat ", " (List.map (fun s -> s.sc_name) scenarios)))
