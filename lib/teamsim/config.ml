open Adpm_core

type forward_ordering = Smallest_subspace | Most_constrained | Random_target

type t = {
  mode : Dpm.mode;
  engine : Dpm.engine;
  seed : int;
  max_ops : int;
  max_revisions : int;
  delta_divisor : float;
  adaptive_delta : bool;
  forward_ordering : forward_ordering;
  use_alpha_repair : bool;
  use_monotone_hints : bool;
  use_history_tabu : bool;
  use_relaxed_feasible : bool;
}

let default ~mode ~seed =
  {
    mode;
    engine = Dpm.Incremental;
    seed;
    max_ops = 2000;
    max_revisions = 10_000;
    delta_divisor = 100.;
    adaptive_delta = true;
    forward_ordering = Smallest_subspace;
    use_alpha_repair = true;
    use_monotone_hints = true;
    use_history_tabu = true;
    use_relaxed_feasible = true;
  }

let with_seed t seed = { t with seed }
