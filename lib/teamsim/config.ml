open Adpm_core
module Model = Adpm_sim.Model
module Fault = Adpm_fault.Fault

type forward_ordering = Smallest_subspace | Most_constrained | Random_target

type value_policy = Endpoint | Headroom

let value_policy_to_string = function
  | Endpoint -> "endpoint"
  | Headroom -> "headroom"

let value_policy_of_string = function
  | "endpoint" -> Ok Endpoint
  | "headroom" -> Ok Headroom
  | s ->
    Error (Printf.sprintf "unknown value policy %S (want endpoint|headroom)" s)

type t = {
  mode : Dpm.mode;
  engine : Dpm.engine;
  seed : int;
  max_ops : int;
  max_revisions : int;
  latency : int;
  duration_model : Model.duration;
  faults : Fault.plan;
  delta_divisor : float;
  adaptive_delta : bool;
  forward_ordering : forward_ordering;
  use_alpha_repair : bool;
  use_monotone_hints : bool;
  use_history_tabu : bool;
  use_relaxed_feasible : bool;
  value_policy : value_policy;
  shifts : Shift.plan;
}

let default ~mode ~seed =
  {
    mode;
    engine = Dpm.Incremental;
    seed;
    max_ops = 2000;
    max_revisions = 10_000;
    latency = 0;
    duration_model = Model.unit_duration;
    faults = Fault.none;
    delta_divisor = 100.;
    adaptive_delta = true;
    forward_ordering = Smallest_subspace;
    use_alpha_repair = true;
    use_monotone_hints = true;
    use_history_tabu = true;
    use_relaxed_feasible = true;
    value_policy = Endpoint;
    shifts = Shift.none;
  }

let with_seed t seed = { t with seed }

let validate t =
  if t.max_ops <= 0 then
    Error (Printf.sprintf "max_ops must be positive (got %d)" t.max_ops)
  else if t.max_revisions <= 0 then
    Error
      (Printf.sprintf "max_revisions must be positive (got %d)" t.max_revisions)
  else
    match Model.validate_latency t.latency with
    | Error e -> Error (Printf.sprintf "%s (got %d)" e t.latency)
    | Ok () -> (
      match Model.validate_duration t.duration_model with
      | Error e -> Error e
      | Ok () -> (
        match Fault.validate t.faults with
        | Error e -> Error e
        | Ok () -> (
          (* the comparison also rejects nan *)
          if not (t.delta_divisor > 0.) then
            Error
              (Printf.sprintf "delta_divisor must be positive (got %g)"
                 t.delta_divisor)
          else
            match Shift.validate t.shifts with
            | Error e -> Error e
            | Ok () -> Ok ())))

let validate_exn t =
  match validate t with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Config.validate: " ^ msg)
