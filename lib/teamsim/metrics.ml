open Adpm_core

type op_record = {
  m_index : int;
  m_designer : string;
  m_kind : string;
  m_evaluations : int;
  m_new_violations : int;
  m_known_violations : int;
  m_spin : bool;
}

type fault_counts = { f_dropped : int; f_duplicated : int; f_crashes : int }

let no_faults = { f_dropped = 0; f_duplicated = 0; f_crashes = 0 }

type run_summary = {
  s_scenario : string;
  s_mode : Dpm.mode;
  s_seed : int;
  s_completed : bool;
  s_operations : int;
  s_evaluations : int;
  s_spins : int;
  s_faults : fault_counts;
  s_profile : op_record list;
}

let evaluations_per_op s =
  if s.s_operations = 0 then nan
  else float_of_int s.s_evaluations /. float_of_int s.s_operations

let violations_found s =
  List.fold_left (fun acc r -> acc + r.m_new_violations) 0 s.s_profile

(* {2 Aggregates over a batch of runs} *)

let completion_rate summaries =
  match summaries with
  | [] -> nan
  | _ ->
    let n = List.length summaries in
    let done_ = List.length (List.filter (fun s -> s.s_completed) summaries) in
    float_of_int done_ /. float_of_int n

let mean f summaries =
  match summaries with
  | [] -> nan
  | _ ->
    List.fold_left (fun acc s -> acc +. float_of_int (f s)) 0. summaries
    /. float_of_int (List.length summaries)

let mean_operations summaries = mean (fun s -> s.s_operations) summaries
let mean_evaluations summaries = mean (fun s -> s.s_evaluations) summaries

let summary_line s =
  let per_op =
    if s.s_operations = 0 then "n/a"
    else Printf.sprintf "%.1f" (evaluations_per_op s)
  in
  let faults =
    if s.s_faults = no_faults then ""
    else
      Printf.sprintf ", faults: %d dropped/%d duplicated/%d crashes"
        s.s_faults.f_dropped s.s_faults.f_duplicated s.s_faults.f_crashes
  in
  Printf.sprintf
    "%s/%s seed=%d: %s in %d ops, %d evals (%s/op), %d spins, %d violations%s"
    s.s_scenario
    (Dpm.mode_to_string s.s_mode)
    s.s_seed
    (if s.s_completed then "completed" else "DID NOT COMPLETE")
    s.s_operations s.s_evaluations per_op s.s_spins (violations_found s) faults
