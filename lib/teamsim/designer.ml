open Adpm_util
open Adpm_interval
open Adpm_expr
open Adpm_csp
open Adpm_core
open Adpm_trace
module Mailbox = Adpm_sim.Mailbox

(* A queued NM delivery: the outcome of one executed operation, tagged
   with whether it was this designer's own. *)
type delivery = { dv_own : bool; dv_op : Operator.t; dv_result : Dpm.result }

type t = {
  d_name : string;
  cfg : Config.t;
  rng : Rng.t;
  models : (string * Expr.t) list;
  tabu : (string, unit) Hashtbl.t;
  (* last repair direction and step per property, for adaptive delta *)
  repair_memory : (string, [ `Up | `Down ] * float) Hashtbl.t;
  (* violations that motivated repairs and await re-verification *)
  pending_reverify : (int, unit) Hashtbl.t;
  (* most recent own parameter assignment, so conventional-mode
     verifications can attribute freshly discovered violations to it
     (design-history tabu) *)
  mutable last_synthesis : (string * float) option;
  (* consecutive repairs of a parameter that resolved nothing: such
     parameters are demoted so siblings get a chance (design-history
     consultation, ADPM mode where feedback is immediate) *)
  failed_repairs : (string, int) Hashtbl.t;
  (* what this designer believes each constraint's status to be, rebuilt
     from delivered status transitions; consulted instead of the DPM's
     live view only under a nonzero notification latency, where the two
     can disagree (staleness is the phenomenon being modelled) *)
  believed : (int, Constr.status) Hashtbl.t;
  (* queued NM deliveries, drained at the start of the next turn *)
  inbox : delivery Mailbox.t;
}

let create cfg ~rng ~models name =
  {
    d_name = name;
    cfg;
    rng;
    models;
    tabu = Hashtbl.create 64;
    repair_memory = Hashtbl.create 16;
    pending_reverify = Hashtbl.create 16;
    last_synthesis = None;
    failed_repairs = Hashtbl.create 16;
    believed = Hashtbl.create 64;
    inbox = Mailbox.create ();
  }

let name d = d.d_name

(* With latency 0 and no fault plan the engine delivers every outcome
   before the next turn, so the DPM's live view and the believed table
   never disagree; using the live view on that path keeps it
   bit-identical to the lockstep engine. Any latency or active fault
   plan makes the two diverge (deliveries lag, vanish, or die with their
   recipient), so decisions must come from the believed table. *)
let delayed_view d =
  d.cfg.Config.latency > 0
  || not (Adpm_fault.Fault.is_none d.cfg.Config.faults)

let believed_status d cid =
  try Hashtbl.find d.believed cid with Not_found -> Constr.Consistent

let learn_statuses d statuses =
  List.iter (fun (cid, s) -> Hashtbl.replace d.believed cid s) statuses

let believed_snapshot d =
  Hashtbl.fold (fun cid s acc -> (cid, s) :: acc) d.believed []
  |> List.sort compare

(* A crashed designer comes back with its working memory gone: believed
   statuses, queued deliveries, repair adaptation, re-verification
   bookkeeping. Only the tabu set survives — the design history lives in
   the shared database (Section 3.1.1), not in the designer's head. *)
let restart d =
  Hashtbl.reset d.believed;
  Hashtbl.reset d.repair_memory;
  Hashtbl.reset d.pending_reverify;
  Hashtbl.reset d.failed_repairs;
  d.last_synthesis <- None;
  ignore (Mailbox.drain d.inbox : delivery list)

let tabu_key prop value = Printf.sprintf "%s@%.9g" prop value

let is_tabu d prop value =
  d.cfg.Config.use_history_tabu && Hashtbl.mem d.tabu (tabu_key prop value)

let is_derived d prop = List.mem_assoc prop d.models

(* f_p: assigned problems that are not Waiting. *)
let addressable_problems d dpm =
  List.filter
    (fun p -> p.Problem.pr_status <> Problem.Waiting)
    (Dpm.problems_owned_by dpm d.d_name)

let numeric_outputs dpm p =
  let net = Dpm.network dpm in
  List.filter
    (fun o ->
      Network.mem_prop net o
      && Domain.is_numeric (Network.initial_domain net o))
    p.Problem.pr_outputs

let my_outputs dpm probs =
  List.sort_uniq compare (List.concat_map (numeric_outputs dpm) probs)

(* Design parameters: outputs the designer assigns directly (not computed
   by a tool model). *)
let free_outputs d dpm probs =
  List.filter (fun o -> not (is_derived d o)) (my_outputs dpm probs)

let derived_outputs d dpm probs =
  List.filter (fun o -> is_derived d o) (my_outputs dpm probs)

let initial_hull_env net prop =
  match Domain.hull (Network.initial_domain net prop) with
  | Some iv -> iv
  | None -> raise Not_found

(* Direction (as seen from parameter [x]) in which moving [x] helps satisfy
   constraint [c], routing through the model of a derived argument when
   needed. *)
let helps_through_models d dpm c x =
  let net = Dpm.network dpm in
  let compose outer inner =
    match (outer, inner) with
    | `None, _ -> `None
    | _, (Monotone.Constant | Monotone.Unknown) -> `None
    | `Up, Monotone.Increasing | `Down, Monotone.Decreasing -> `Up
    | `Up, Monotone.Decreasing | `Down, Monotone.Increasing -> `Down
  in
  List.filter_map
    (fun arg ->
      if String.equal arg x then
        match Network.helps_direction net c arg with
        | `None -> None
        | (`Up | `Down) as dir -> Some dir
      else
        match List.assoc_opt arg d.models with
        | Some model when Expr.mentions model x -> (
          let inner =
            try Monotone.direction ~env:(initial_hull_env net) model x
            with Not_found -> Monotone.Unknown
          in
          match compose (Network.helps_direction net c arg) inner with
          | `None -> None
          | (`Up | `Down) as dir -> Some dir)
        | Some _ | None -> None)
    (Constr.args c)

(* Does constraint [c] reach parameter [x] directly or through a model? *)
let touches_through_models d c x =
  List.exists
    (fun arg ->
      String.equal arg x
      ||
      match List.assoc_opt arg d.models with
      | Some model -> Expr.mentions model x
      | None -> false)
    (Constr.args c)

let known_violated_constraints d dpm =
  let violated =
    if delayed_view d then fun c -> believed_status d c.Constr.id = Constr.Violated
    else fun c -> Dpm.known_status dpm c.Constr.id = Constr.Violated
  in
  List.filter violated (Network.constraints (Dpm.network dpm))

(* Repair votes for parameter [x]: how many known violations a move up
   (resp. down) would help fix, counting model-mediated influence. *)
let repair_votes d dpm x =
  List.fold_left
    (fun (up, down, alpha) c ->
      if touches_through_models d c x then begin
        let dirs = helps_through_models d dpm c x in
        let up' = List.length (List.filter (fun dir -> dir = `Up) dirs) in
        let down' = List.length (List.filter (fun dir -> dir = `Down) dirs) in
        (up + min 1 up', down + min 1 down', alpha + 1)
      end
      else (up, down, alpha))
    (0, 0, 0)
    (known_violated_constraints d dpm)

(* {2 Tool emulation}

   Recompute every derived output whose model inputs are available, to a
   fixpoint (models may reference other derived properties). [extra]
   overrides the network's current assignments. *)
let recompute_derived d dpm probs extra =
  let net = Dpm.network dpm in
  let values : (string, float) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun prop ->
      match Network.assigned_num net prop with
      | Some v -> Hashtbl.replace values prop v
      | None -> ())
    (Network.prop_names net);
  List.iter (fun (prop, v) -> Hashtbl.replace values prop v) extra;
  let targets = derived_outputs d dpm probs in
  let computed : (string, float) Hashtbl.t = Hashtbl.create 16 in
  let progress = ref true in
  while !progress do
    progress := false;
    List.iter
      (fun prop ->
        if not (Hashtbl.mem computed prop) then begin
          let model = List.assoc prop d.models in
          let lookup v = Hashtbl.find_opt values v in
          match Expr.eval_opt lookup model with
          | Some raw when Float.is_finite raw ->
            (* the tool's output is clamped to the property's legal range *)
            let value =
              match Domain.hull (Network.initial_domain net prop) with
              | Some hull ->
                Float.min (Interval.hi hull) (Float.max (Interval.lo hull) raw)
              | None -> raw
            in
            Hashtbl.replace computed prop value;
            Hashtbl.replace values prop value;
            progress := true
          | Some _ | None -> ()
        end)
      targets
  done;
  List.filter_map
    (fun prop ->
      match Hashtbl.find_opt computed prop with
      | Some v when Network.assigned_num net prop <> Some v ->
        Some (prop, Value.Num v)
      | Some _ | None -> None)
    targets

let problem_of_output dpm probs prop =
  List.find_opt (fun p -> List.mem prop (numeric_outputs dpm p)) probs

let synthesis_op d dpm probs ?(motivated_by = []) prop v =
  match problem_of_output dpm probs prop with
  | None -> None
  | Some p ->
    let derived = recompute_derived d dpm probs [ (prop, v) ] in
    Some
      (Operator.synthesis ~motivated_by ~designer:d.d_name
         ~problem:p.Problem.pr_id
         ((prop, Value.Num v) :: derived))

(* {2 Value selection helpers} *)

let clamp iv x = Float.min (Interval.hi iv) (Float.max (Interval.lo iv) x)

let quantile_of_domain dom q =
  match dom with
  | Domain.Empty | Domain.Symbolic _ -> None
  | Domain.Continuous iv ->
    if Interval.is_bounded iv then
      Some (Interval.lo iv +. (q *. Interval.width iv))
    else Some (Interval.midpoint iv)
  | Domain.Finite arr ->
    let n = Array.length arr in
    let i = int_of_float (q *. float_of_int (n - 1)) in
    Some arr.(max 0 (min (n - 1) i))

let random_in_domain d dom =
  match dom with
  | Domain.Empty | Domain.Symbolic _ -> None
  | Domain.Continuous iv ->
    if Interval.is_bounded iv then
      Some (Rng.float_range d.rng (Interval.lo iv) (Interval.hi iv))
    else Some (Interval.midpoint iv)
  | Domain.Finite arr -> Some (Rng.pick_array d.rng arr)

(* Choose a value from a non-empty domain, preferring the quantile the
   direction votes suggest; repeated failed repairs escalate the choice
   toward the window's corner (the fix may only exist at the margin). *)
let pick_from_domain d prop dom direction =
  let fatigue =
    float_of_int (try Hashtbl.find d.failed_repairs prop with Not_found -> 0)
  in
  let push = Float.min 0.25 (0.08 *. fatigue) in
  let q =
    match direction with
    | `Up -> 0.75 +. push
    | `Down -> 0.25 -. push
    | `None -> 0.5
  in
  match quantile_of_domain dom q with
  | None -> None
  | Some v -> if is_tabu d prop v then None else Some v

(* The feasible-endpoint choice of f_v for forward synthesis: the top or
   bottom value according to which direction helps satisfy the most
   connected constraints (counting model-mediated connections). *)
let endpoint_from_votes d dpm prop dom =
  let net = Dpm.network dpm in
  let up, down =
    if not d.cfg.Config.use_monotone_hints then (0, 0)
    else
      List.fold_left
        (fun (u, w) c ->
          let dirs = helps_through_models d dpm c prop in
          ( u + List.length (List.filter (fun dir -> dir = `Up) dirs),
            w + List.length (List.filter (fun dir -> dir = `Down) dirs) ))
        (0, 0)
        (Network.constraints net)
  in
  (* top or bottom of the feasible window per the votes, pulled slightly
     inside (with a little designer-to-designer jitter) so a boundary
     choice does not immediately pinch the margins of the other designers'
     windows *)
  let jitter = Rng.float d.rng 0.1 in
  let choice =
    if up > down then quantile_of_domain dom (0.75 +. jitter)
    else if down > up then quantile_of_domain dom (0.15 +. jitter)
    else quantile_of_domain dom (0.45 +. jitter)
  in
  match choice with
  | Some v when not (is_tabu d prop v) -> Some v
  | Some _ -> random_in_domain d dom
  | None -> None

(* The headroom-seeking f_v variant (the adaptability option): among
   candidate quantiles of the feasible window, pick the one maximizing
   log(min normalized headroom) over the connected constraints — keep
   every constraint comfortably away from its limit so a later
   requirement shift has margin to land in. Unbound teammate parameters
   are assumed at the middle of their feasible windows; each constraint
   check is charged as one tool evaluation. *)
let headroom_from_votes d dpm probs prop dom =
  let net = Dpm.network dpm in
  let connected =
    List.filter (fun c -> touches_through_models d c prop)
      (Network.constraints net)
  in
  if connected = [] then None
  else begin
    let candidates =
      List.filter
        (fun v -> not (is_tabu d prop v))
        (List.sort_uniq compare
           (List.filter_map (quantile_of_domain dom)
              [ 0.1; 0.3; 0.5; 0.7; 0.9 ]))
    in
    let evals = ref 0 in
    let midpoint name =
      match Domain.hull (Network.feasible net name) with
      | Some iv when Interval.is_bounded iv -> Some (Interval.midpoint iv)
      | _ -> (
        match Domain.hull (Network.initial_domain net name) with
        | Some iv when Interval.is_bounded iv -> Some (Interval.midpoint iv)
        | _ -> None)
    in
    let score v =
      let derived = recompute_derived d dpm probs [ (prop, v) ] in
      let lookup name =
        if String.equal name prop then Some v
        else
          match List.assoc_opt name derived with
          | Some (Value.Num x) -> Some x
          | Some (Value.Sym _) | None -> (
            match Network.assigned_num net name with
            | Some x -> Some x
            | None -> midpoint name)
      in
      let worst =
        List.fold_left
          (fun acc c ->
            incr evals;
            match
              ( Expr.eval_opt lookup c.Constr.lhs,
                Expr.eval_opt lookup c.Constr.rhs )
            with
            | Some l, Some r when Float.is_finite l && Float.is_finite r ->
              let raw =
                match c.Constr.rel with
                | Constr.Le -> r -. l
                | Constr.Ge -> l -. r
                | Constr.Eq -> -.Float.abs (l -. r)
              in
              let headroom = raw /. (1. +. Float.abs r) in
              Some (match acc with None -> headroom | Some a -> Float.min a headroom)
            | _ -> acc)
          None connected
      in
      match worst with
      | None -> None
      | Some s ->
        (* log of the worst headroom; an already-violated candidate ranks
           strictly below every positive-margin one, more-negative worse *)
        Some (if s > 0. then Float.log s else -1e18 +. s)
    in
    let best =
      List.fold_left
        (fun acc v ->
          match score v with
          | None -> acc
          | Some s -> (
            match acc with
            | Some (_, best_s) when best_s >= s -> acc
            | _ -> Some (v, s)))
        None candidates
    in
    Dpm.charge_evaluations dpm !evals;
    Option.map fst best
  end

(* Delta move for repairs (f_v's "choose from initial subspace" branch):
   exponential search while the direction persists, bisection on flip. *)
let delta_move d dpm prop direction =
  let net = Dpm.network dpm in
  let initial = Network.initial_domain net prop in
  match Domain.hull initial with
  | None -> None
  | Some hull ->
    let width = if Interval.is_bounded hull then Interval.width hull else 1.0 in
    let base_step = width /. d.cfg.Config.delta_divisor in
    let step =
      if d.cfg.Config.adaptive_delta then
        match Hashtbl.find_opt d.repair_memory prop with
        | Some (last_dir, last_step) when last_dir = direction ->
          Float.min (last_step *. 2.) (width /. 2.)
        | Some (_, last_step) -> Float.max (last_step /. 2.) (base_step /. 16.)
        | None -> base_step
      else base_step
    in
    Hashtbl.replace d.repair_memory prop (direction, step);
    let cur =
      match Network.assigned_num net prop with
      | Some v -> v
      | None -> Interval.midpoint hull
    in
    let signed s = match direction with `Up -> s | `Down -> -.s in
    let snap v =
      match initial with
      | Domain.Finite arr ->
        let beyond =
          Array.to_list arr
          |> List.filter (fun x ->
                 match direction with `Up -> x > cur | `Down -> x < cur)
        in
        (match (direction, beyond) with
        | `Up, x :: _ -> x
        | `Down, _ :: _ -> List.nth beyond (List.length beyond - 1)
        | _, [] -> v)
      | Domain.Continuous _ | Domain.Empty | Domain.Symbolic _ -> v
    in
    let discrete = match initial with Domain.Finite _ -> true | _ -> false in
    let rec attempt step tries =
      let candidate = snap (clamp hull (cur +. signed step)) in
      if candidate = cur then None (* saturated at a range bound *)
      else if
        (* pinned against a bound: the residual move is too small to fix
           anything and would starve better repair candidates *)
        (not discrete)
        && Float.abs (candidate -. cur) < base_step /. 8.
      then None
      else if is_tabu d prop candidate && tries < 6 then
        attempt (step *. 2.) (tries + 1)
      else if is_tabu d prop candidate then None
      else Some candidate
    in
    attempt step 0

(* {2 Operation construction} *)

(* Conventional mode: request verification of every eligible constraint of
   one owned problem (one tool-run batch; Section 3.1.2: verification
   operators run when a subsystem is complete). *)
let verification_op d dpm probs =
  match Dpm.mode dpm with
  | Dpm.Adpm -> None
  | Dpm.Conventional -> (
    let eligible = Dpm.eligible_verifications dpm ~designer:d.d_name in
    match eligible with
    | [] -> None
    | _ ->
      let candidates =
        List.filter_map
          (fun p ->
            let cids =
              List.filter (fun c -> List.mem c eligible) p.Problem.pr_constraints
            in
            match cids with [] -> None | _ -> Some (p, cids))
          probs
      in
      (match candidates with
      | [] -> None
      | _ ->
        let p, cids = Rng.pick d.rng candidates in
        let motivated_by =
          List.filter (fun cid -> Hashtbl.mem d.pending_reverify cid) cids
        in
        Some
          (Operator.verification ~motivated_by ~designer:d.d_name
             ~problem:p.Problem.pr_id cids)))

(* Repair: f_a picks the parameter whose single directed move is likely to
   fix the most known violations; f_v picks its new value. *)
let repair_op d dpm probs =
  let params = free_outputs d dpm probs in
  let votes = List.map (fun x -> (x, repair_votes d dpm x)) params in
  let candidates = List.filter (fun (_, (_, _, a)) -> a > 0) votes in
  match candidates with
  | [] -> None
  | _ ->
    let score (prop, (up, down, alpha)) =
      if d.cfg.Config.use_alpha_repair then begin
        (* primary: violations fixable by one directed move, discounted
           when other violations pull the opposite way and when recent
           repairs of this parameter resolved nothing; secondary: alpha *)
        let fixable =
          if d.cfg.Config.use_monotone_hints then
            float_of_int (max up down) -. (0.5 *. float_of_int (min up down))
          else 0.
        in
        let fatigue =
          float_of_int
            (try Hashtbl.find d.failed_repairs prop with Not_found -> 0)
        in
        -.(fixable -. fatigue +. (float_of_int alpha /. 1000.))
      end
      else Rng.float d.rng 1.0
    in
    let ranked =
      List.sort (fun a b -> compare (score a) (score b))
        (Rng.shuffle d.rng candidates)
    in
    let direction_for (up, down) =
      if not d.cfg.Config.use_monotone_hints then
        if Rng.bool d.rng then `Up else `Down
      else if up > down then `Up
      else if down > up then `Down
      else if Rng.bool d.rng then `Up
      else `Down
    in
    let motivated_for x =
      List.filter_map
        (fun c ->
          if touches_through_models d c x then Some c.Constr.id else None)
        (known_violated_constraints d dpm)
    in
    let repair_value prop direction =
      let net = Dpm.network dpm in
      let current = Network.assigned_num net prop in
      let differs = function
        | Some v when current <> Some v -> Some v
        | Some _ | None -> None
      in
      match Dpm.mode dpm with
      | Dpm.Adpm when d.cfg.Config.use_relaxed_feasible -> (
        (* constraint-margin window for the parameter, letting its
           dependent performance properties move with it *)
        let unpin =
          List.filter
            (fun p ->
              match List.assoc_opt p d.models with
              | Some model -> Expr.mentions model prop
              | None -> false)
            (my_outputs dpm probs)
        in
        let dom = Dpm.relaxed_feasible_group dpm ~target:prop ~unpin in
        match differs (pick_from_domain d prop dom direction) with
        | Some v when not (is_tabu d prop v) -> Some v
        | Some _ | None -> (
          match differs (random_in_domain d dom) with
          | Some v -> Some v
          | None -> delta_move d dpm prop direction))
      | Dpm.Adpm | Dpm.Conventional -> delta_move d dpm prop direction
    in
    (* escape of last resort: every candidate is tabu-locked or saturated —
       restart one of them at a fresh random value inside E_i *)
    let random_restart () =
      let net = Dpm.network dpm in
      let viable =
        List.filter_map
          (fun (prop, _) ->
            let current = Network.assigned_num net prop in
            let rec draw tries =
              if tries = 0 then None
              else
                match random_in_domain d (Network.initial_domain net prop) with
                | Some v when current <> Some v && not (is_tabu d prop v) ->
                  Some (prop, v)
                | Some _ | None -> draw (tries - 1)
            in
            draw 8)
          ranked
      in
      match viable with [] -> None | _ -> Some (Rng.pick d.rng viable)
    in
    let rec try_candidates = function
      | [] -> (
        match random_restart () with
        | None -> None
        | Some (prop, v) ->
          synthesis_op d dpm probs ~motivated_by:(motivated_for prop) prop v)
      | (prop, (up, down, _)) :: rest -> (
        let direction = direction_for (up, down) in
        match repair_value prop direction with
        | None -> try_candidates rest
        | Some v ->
          synthesis_op d dpm probs ~motivated_by:(motivated_for prop) prop v)
    in
    try_candidates ranked

(* Forward progress: f_a picks the unbound parameter with the smallest
   feasible subspace (ADPM) or a random one (conventional); f_v picks the
   value. *)
let forward_op d dpm probs =
  let net = Dpm.network dpm in
  let unbound =
    List.filter (fun p -> not (Network.is_bound net p)) (free_outputs d dpm probs)
  in
  match unbound with
  | [] -> (
    (* all parameters placed: run the tool once more if some performance
       property is still uncomputed *)
    let stale = recompute_derived d dpm probs [] in
    let pending =
      List.filter
        (fun (prop, _) -> not (Network.is_bound net prop))
        stale
    in
    match pending with
    | [] -> None
    | (prop, _) :: _ -> (
      match problem_of_output dpm probs prop with
      | None -> None
      | Some p ->
        Some
          (Operator.synthesis ~designer:d.d_name ~problem:p.Problem.pr_id stale)))
  | _ ->
    let pick_by score =
      match
        List.sort (fun a b -> compare (score a) (score b))
          (Rng.shuffle d.rng unbound)
      with
      | [] -> None
      | x :: _ -> Some x
    in
    let target =
      match (d.cfg.Config.forward_ordering, Dpm.mode dpm) with
      | Config.Smallest_subspace, Dpm.Adpm ->
        pick_by (fun prop ->
            match Dpm.heuristic_info dpm prop with
            | Some info -> info.Heuristic_data.hi_relative_size
            | None -> 1.)
      | Config.Most_constrained, (Dpm.Adpm | Dpm.Conventional) ->
        (* constraint membership is static knowledge, available either way;
           count model-mediated membership too (the 2.3.2 extension) *)
        pick_by (fun prop ->
            -.float_of_int
                (List.length
                   (List.filter
                      (fun c -> touches_through_models d c prop)
                      (Network.constraints net))))
      | (Config.Smallest_subspace | Config.Random_target), _ ->
        Some (Rng.pick d.rng unbound)
    in
    (match target with
    | None -> None
    | Some prop ->
      let value =
        match Dpm.mode dpm with
        | Dpm.Adpm -> (
          let feasible = Network.feasible net prop in
          if Domain.is_empty feasible then
            (* v_F = empty: choose from the initial range *)
            random_in_domain d (Network.initial_domain net prop)
          else
            let vote =
              match d.cfg.Config.value_policy with
              | Config.Endpoint -> endpoint_from_votes d dpm prop feasible
              | Config.Headroom -> (
                match headroom_from_votes d dpm probs prop feasible with
                | Some v -> Some v
                | None -> endpoint_from_votes d dpm prop feasible)
            in
            match vote with
            | Some v -> Some v
            | None -> random_in_domain d (Network.initial_domain net prop))
        | Dpm.Conventional ->
          (* no feasibility information: an engineering guess from the
             middle half of the initial range *)
          quantile_of_domain
            (Network.initial_domain net prop)
            (0.25 +. Rng.float d.rng 0.5)
      in
      (match value with
      | None -> None
      | Some v -> synthesis_op d dpm probs prop v))

(* Which of f_a's orderings actually drives forward target selection for
   this configuration and mode (the fallbacks in [forward_op]). *)
let forward_heuristic d dpm =
  match (d.cfg.Config.forward_ordering, Dpm.mode dpm) with
  | Config.Smallest_subspace, Dpm.Adpm -> Event.Smallest_subspace
  | Config.Most_constrained, (Dpm.Adpm | Dpm.Conventional) ->
    Event.Most_constrained
  | (Config.Smallest_subspace | Config.Random_target), _ -> Event.Random_target

let trace_decision d dpm heuristic op =
  let tr = Dpm.tracer dpm in
  if Tracer.active tr then begin
    let target =
      match op.Operator.op_kind with
      | Operator.Synthesis ((prop, _) :: _) -> Some prop
      | Operator.Synthesis [] | Operator.Verification _
      | Operator.Decompose _ ->
        None
    in
    let net = Dpm.network dpm in
    let alpha, beta =
      match target with
      | Some prop when Network.mem_prop net prop ->
        (Network.alpha net prop, Network.beta net prop)
      | Some _ | None -> (0, 0)
    in
    Tracer.emit tr
      (Event.Designer_decision
         { designer = d.d_name; heuristic; target; alpha; beta })
  end

let choose_operation d dpm =
  let probs = addressable_problems d dpm in
  match probs with
  | [] -> None
  | _ -> (
    let violations_known = known_violated_constraints d dpm <> [] in
    let chosen =
      if violations_known then
        match repair_op d dpm probs with
        | Some op -> Some (Event.Conflict_resolution, op)
        | None -> (
          match verification_op d dpm probs with
          | Some op -> Some (Event.Verification_request, op)
          | None ->
            Option.map
              (fun op -> (forward_heuristic d dpm, op))
              (forward_op d dpm probs))
      else
        match forward_op d dpm probs with
        | Some op -> Some (forward_heuristic d dpm, op)
        | None ->
          Option.map
            (fun op -> (Event.Verification_request, op))
            (verification_op d dpm probs)
    in
    match chosen with
    | None -> None
    | Some (heuristic, op) ->
      trace_decision d dpm heuristic op;
      Some op)

let synthesis_with_tools d dpm prop v =
  let probs = addressable_problems d dpm in
  let motivated_by =
    List.filter_map
      (fun c ->
        if touches_through_models d c prop then Some c.Constr.id else None)
      (known_violated_constraints d dpm)
  in
  synthesis_op d dpm probs ~motivated_by prop v

let request_verification d dpm =
  verification_op d dpm (addressable_problems d dpm)

let observe d dpm ~own op result =
  (* Every delivered outcome updates the believed constraint statuses —
     this is the knowledge the NM pushes. [r_status_changes] includes the
     conventional-mode freshness decays (Violated fading back to
     Consistent) that the violated/resolved lists omit. *)
  List.iter
    (fun (cid, _old, status) -> Hashtbl.replace d.believed cid status)
    result.Dpm.r_status_changes;
  match op.Operator.op_kind with
  | Operator.Synthesis assignments when own ->
    if result.Dpm.r_newly_violated <> [] && d.cfg.Config.use_history_tabu then
      List.iter
        (fun (prop, value) ->
          match value with
          | Value.Num v when not (is_derived d prop) ->
            Hashtbl.replace d.tabu (tabu_key prop v) ()
          | Value.Num _ | Value.Sym _ -> ())
        assignments;
    (match assignments with
    | (prop, Value.Num v) :: _ when not (is_derived d prop) ->
      d.last_synthesis <- Some (prop, v);
      (* ADPM feedback is immediate: a repair that resolved nothing tires
         out its parameter; one that helped restores it *)
      if Dpm.mode dpm = Dpm.Adpm && op.Operator.op_motivated_by <> [] then begin
        if result.Dpm.r_resolved = [] then begin
          let n = try Hashtbl.find d.failed_repairs prop with Not_found -> 0 in
          Hashtbl.replace d.failed_repairs prop (n + 1)
        end
        else Hashtbl.reset d.failed_repairs
      end
    | _ -> d.last_synthesis <- None);
    (* repairs await re-verification before the fix is trusted *)
    List.iter
      (fun cid -> Hashtbl.replace d.pending_reverify cid ())
      op.Operator.op_motivated_by
  | Operator.Verification cids ->
    (* Verification results — whoever ran them, including the leader's
       integration checks — are how conventional mode discovers damage.
       Attribute fresh violations touching my last assignment to it (the
       design-history consultation, Section 3.1.1 footnote). *)
    let touches_last prop =
      List.exists
        (fun cid ->
          touches_through_models d
            (Network.find_constraint (Dpm.network dpm) cid)
            prop)
        result.Dpm.r_newly_violated
    in
    (if d.cfg.Config.use_history_tabu then
       match d.last_synthesis with
       | Some (prop, v) when touches_last prop ->
         Hashtbl.replace d.tabu (tabu_key prop v) ()
       | Some _ | None -> ());
    (* repair fatigue, conventional flavour: a verification that re-finds a
       violation my repairs were supposed to fix — or surfaces a new one on
       the parameter I just moved — tires out that parameter; a resolution
       restores everyone *)
    (match d.last_synthesis with
    | Some (prop, _) ->
      let refound =
        List.exists
          (fun cid -> Hashtbl.mem d.pending_reverify cid)
          result.Dpm.r_newly_violated
      in
      if refound || touches_last prop then begin
        let n = try Hashtbl.find d.failed_repairs prop with Not_found -> 0 in
        Hashtbl.replace d.failed_repairs prop (n + 1)
      end
      else if result.Dpm.r_resolved <> [] then Hashtbl.reset d.failed_repairs
    | None -> ());
    List.iter (fun cid -> Hashtbl.remove d.pending_reverify cid) cids
  | Operator.Synthesis _ | Operator.Decompose _ -> ()

(* {2 Mailbox} *)

let deliver d ~own op result =
  Mailbox.push d.inbox { dv_own = own; dv_op = op; dv_result = result }

let drain d dpm =
  let pending = Mailbox.drain d.inbox in
  List.iter
    (fun { dv_own; dv_op; dv_result } -> observe d dpm ~own:dv_own dv_op dv_result)
    pending;
  List.length pending
