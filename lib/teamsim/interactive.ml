open Adpm_util
open Adpm_csp
open Adpm_core
open Adpm_trace

type t = {
  dpm : Dpm.t;
  player : string;
  player_model : Designer.t;
  teammates : Designer.t list;
  models : (string * Adpm_expr.Expr.t) list;
  setup_evals : int;
  mutable last_evals : int;
      (* N_T already attributed to an emitted [Op_submitted]; the delta at
         the next submission is that op's decision cost (suggest/browse
         evaluations between applies), mirroring the lockstep engine *)
}

let create ?(tracer = Tracer.null) ~mode ~seed scenario ~designer =
  let dpm = scenario.Scenario.sc_build ~mode in
  if not (List.mem designer (Dpm.designers dpm)) then
    invalid_arg
      (Printf.sprintf "Interactive.create: no designer %s (team: %s)" designer
         (String.concat ", " (Dpm.designers dpm)));
  Dpm.set_tracer dpm tracer;
  if Tracer.active tracer then
    Tracer.emit tracer
      (Event.Run_started
         {
           scenario = scenario.Scenario.sc_name;
           mode = Dpm.mode_to_string mode;
           seed;
           engine = Dpm.engine_to_string (Dpm.engine dpm);
         });
  let rng = Rng.create seed in
  let cfg = Config.default ~mode ~seed in
  let mk name = Designer.create cfg ~rng:(Rng.split rng) ~models:scenario.Scenario.sc_models name in
  let player_model = mk designer in
  let teammates =
    List.filter_map
      (fun name -> if String.equal name designer then None else Some (mk name))
      (Dpm.designers dpm)
  in
  let setup_evals =
    match mode with
    | Dpm.Conventional -> 0
    | Dpm.Adpm -> (Dpm.run_propagation dpm).Propagate.evaluations
  in
  { dpm; player = designer; player_model; teammates;
    models = scenario.Scenario.sc_models; setup_evals;
    last_evals = Dpm.eval_count dpm }

let prompt t =
  Printf.sprintf "[%s | %s | op %d | %d violations]"
    t.player
    (Dpm.mode_to_string (Dpm.mode t.dpm))
    (Dpm.op_count t.dpm)
    (List.length (Dpm.known_violations t.dpm))

let finished t = Dpm.solved t.dpm

let describe_op t op =
  ignore t;
  Format.asprintf "%a" Operator.pp op

let apply_and_report t op =
  let tracer = Dpm.tracer t.dpm in
  if Tracer.active tracer then
    Tracer.emit tracer
      (Event.Op_submitted
         {
           op = Operator.to_trace_spec op;
           choose_evaluations = Dpm.eval_count t.dpm - t.last_evals;
         });
  let result = Dpm.apply t.dpm op in
  t.last_evals <- Dpm.eval_count t.dpm;
  (* route outcomes through the mailboxes the discrete-event engine uses,
     at latency 0: deliver to everyone, then absorb immediately *)
  let feed d =
    let own = String.equal (Designer.name d) op.Operator.op_designer in
    Designer.deliver d ~own op result;
    ignore (Designer.drain d t.dpm : int)
  in
  feed t.player_model;
  List.iter feed t.teammates;
  let net = Dpm.network t.dpm in
  let cname cid = (Network.find_constraint net cid).Constr.name in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "executed: %s\n" (describe_op t op));
  Buffer.add_string buf
    (Printf.sprintf "evaluations: %d\n" result.Dpm.r_evaluations);
  List.iter
    (fun cid ->
      Buffer.add_string buf (Printf.sprintf "VIOLATION: %s\n" (cname cid)))
    result.Dpm.r_newly_violated;
  List.iter
    (fun cid ->
      Buffer.add_string buf (Printf.sprintf "resolved: %s\n" (cname cid)))
    result.Dpm.r_resolved;
  (match result.Dpm.r_skipped with
  | [] -> ()
  | skipped ->
    Buffer.add_string buf
      (Printf.sprintf "skipped (not eligible): %s\n"
         (String.concat ", " (List.map cname skipped))));
  if result.Dpm.r_spin then Buffer.add_string buf "this operation was a design spin\n";
  if finished t then
    Buffer.add_string buf "\nThe top-level problem is SOLVED. Congratulations.\n";
  Buffer.contents buf

let my_properties t =
  List.sort_uniq compare
    (List.concat_map Problem.properties (Dpm.problems_owned_by t.dpm t.player))

let status t =
  let net = Dpm.network t.dpm in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "PROBLEMS\n";
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "  %-24s owner=%-10s %s\n" p.Problem.pr_name
           p.Problem.pr_owner
           (Problem.status_to_string p.Problem.pr_status)))
    (Dpm.problems t.dpm);
  Buffer.add_string buf "\nYOUR PROPERTIES\n";
  List.iter
    (fun prop ->
      if Network.mem_prop net prop then begin
        let value =
          match Network.assigned net prop with
          | Some v -> Value.to_string v
          | None -> "<unbound>"
        in
        Buffer.add_string buf (Printf.sprintf "  %-20s = %s\n" prop value)
      end)
    (my_properties t);
  let violations = Dpm.known_violations t.dpm in
  Buffer.add_string buf
    (Printf.sprintf "\nKNOWN VIOLATIONS: %d\n" (List.length violations));
  List.iter
    (fun cid ->
      Buffer.add_string buf
        (Printf.sprintf "  %s\n"
           (Constr.to_string (Network.find_constraint net cid))))
    violations;
  Buffer.contents buf

let help =
  {|commands:
  status              problems, your properties, known violations
  browse OBJECT       object browser (Fig. 2 view)
  props               property/constraint browser (Fig. 3 view)
  conflicts           conflict-resolution view (Fig. 4)
  set PROP VALUE      synthesis operation (tools recompute derived values)
  verify              request the verification you would issue now
  suggest             what the simulated designer model would do
  auto                execute the suggested operation
  step                every simulated teammate takes one turn
  help                this text
  quit                leave the session (handled by the client)
|}

let execute_command t line =
  let words =
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun w -> w <> "")
  in
  match words with
  | [] -> Ok ""
  | [ "help" ] -> Ok help
  | [ "status" ] -> Ok (status t)
  | [ "browse"; obj ] -> (
    match Dpm.find_object t.dpm obj with
    | Some _ -> Ok (Browser.object_browser t.dpm obj)
    | None ->
      Error
        (Printf.sprintf "unknown object %s (known: %s)" obj
           (String.concat ", "
              (List.map
                 (fun o -> o.Design_object.o_name)
                 (Dpm.objects t.dpm)))))
  | [ "props" ] -> Ok (Browser.property_browser t.dpm ~props:(my_properties t))
  | [ "conflicts" ] -> Ok (Browser.conflict_browser t.dpm ~props:(my_properties t))
  | [ "set"; prop; value ] -> (
    match float_of_string_opt value with
    | None -> Error (Printf.sprintf "%s is not a number" value)
    | Some _ when List.mem_assoc prop t.models ->
      Error
        (Printf.sprintf
           "%s is a performance property the tool computes (model: %s)" prop
           (Adpm_expr.Expr.to_string (List.assoc prop t.models)))
    | Some v -> (
      match Designer.synthesis_with_tools t.player_model t.dpm prop v with
      | None ->
        Error
          (Printf.sprintf "%s is not an output of one of your problems" prop)
      | Some op -> Ok (apply_and_report t op)))
  | [ "verify" ] -> (
    match Designer.request_verification t.player_model t.dpm with
    | None -> Error "nothing to verify right now"
    | Some op -> Ok (apply_and_report t op))
  | [ "suggest" ] -> (
    match Designer.choose_operation t.player_model t.dpm with
    | None -> Ok "the designer model would idle (nothing to do)\n"
    | Some op -> Ok (Printf.sprintf "suggested: %s\n" (describe_op t op)))
  | [ "auto" ] -> (
    match Designer.choose_operation t.player_model t.dpm with
    | None -> Ok "nothing to do\n"
    | Some op -> Ok (apply_and_report t op))
  | [ "step" ] ->
    let buf = Buffer.create 256 in
    List.iter
      (fun teammate ->
        match Designer.choose_operation teammate t.dpm with
        | None ->
          Buffer.add_string buf
            (Printf.sprintf "%s idles\n" (Designer.name teammate))
        | Some op -> Buffer.add_string buf (apply_and_report t op))
      t.teammates;
    Ok (Buffer.contents buf)
  | cmd :: _ -> Error (Printf.sprintf "unknown command %s (try 'help')" cmd)

(* Every command is caught uniformly: [Invalid_argument] can surface from
   choose time (e.g. a problem referencing a constraint the network does
   not know) as well as from [Dpm.apply] inside [apply_and_report], on
   the [verify]/[auto]/[step] paths just as on [set]. A long-lived
   session loop (the teamsimd daemon) must get [Error], not a killed
   session. *)
let execute t line =
  match execute_command t line with
  | result -> result
  | exception Invalid_argument msg -> Error msg

let dpm t = t.dpm
let setup_evaluations t = t.setup_evals
let attributed_evaluations t = t.last_evals
