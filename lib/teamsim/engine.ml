open Adpm_util
open Adpm_csp
open Adpm_core
open Adpm_trace
module Pool = Adpm_parallel.Pool
module Dpool = Adpm_parallel.Dpool
module Model = Adpm_sim.Model
module Scheduler = Adpm_sim.Scheduler
module Fault = Adpm_fault.Fault

type outcome = {
  o_summary : Metrics.run_summary;
  o_dpm : Dpm.t;
  o_makespan : int;
}

(* {2 Shared run scaffolding}

   Everything outside the turn-taking discipline is identical between the
   discrete-event driver and the reference lockstep loop: scenario build,
   [Run_started], Rng stream layout (one split per designer, in designer
   order), the ADPM setup propagation with its charged setup record, and
   the closing summary. Keeping it in one place is what makes the
   latency-0 equivalence contract auditable. *)

let prepare ~tracer cfg scenario ~record =
  let dpm = scenario.Scenario.sc_build ~mode:cfg.Config.mode in
  Dpm.set_engine dpm cfg.Config.engine;
  Dpm.set_tracer dpm tracer;
  if Tracer.active tracer then
    Tracer.emit tracer
      (Event.Run_started
         {
           scenario = scenario.Scenario.sc_name;
           mode = Dpm.mode_to_string cfg.Config.mode;
           seed = cfg.Config.seed;
           engine = Dpm.engine_to_string cfg.Config.engine;
         });
  let rng = Rng.create cfg.Config.seed in
  let designers =
    List.map
      (fun name ->
        Designer.create cfg ~rng:(Rng.split rng)
          ~models:scenario.Scenario.sc_models name)
      (Dpm.designers dpm)
  in
  let setup_evals =
    match cfg.Config.mode with
    | Dpm.Conventional -> 0
    | Dpm.Adpm ->
      let outcome =
        Dpm.run_propagation ~max_revisions:cfg.Config.max_revisions dpm
      in
      record
        {
          Metrics.m_index = 0;
          m_designer = "<setup>";
          m_kind = "setup";
          m_evaluations = outcome.Propagate.evaluations;
          m_new_violations =
            List.length
              (List.filter
                 (fun (_, s) -> s = Constr.Violated)
                 outcome.Propagate.statuses);
          m_known_violations = List.length (Dpm.known_violations dpm);
          m_spin = false;
        };
      outcome.Propagate.evaluations
  in
  (* the project kickoff: everyone leaves setup with the same picture of
     the constraint network (matters only under a nonzero latency, where
     later knowledge arrives with a delay) *)
  let statuses = Dpm.known_statuses dpm in
  List.iter (fun d -> Designer.learn_statuses d statuses) designers;
  (dpm, rng, designers, setup_evals)

let finish ~tracer cfg scenario dpm ~setup_evals ~profile ~makespan ~faults =
  let completed = Dpm.solved dpm && Dpm.ground_truth_solved dpm in
  if Tracer.active tracer then
    Tracer.emit tracer
      (Event.Run_finished
         {
           completed;
           operations = Dpm.op_count dpm;
           evaluations = Dpm.eval_count dpm;
           setup_evaluations = setup_evals;
           spins = Dpm.spin_count dpm;
           violations = List.sort compare (Dpm.known_violations dpm);
         });
  let summary =
    {
      Metrics.s_scenario = scenario.Scenario.sc_name;
      s_mode = cfg.Config.mode;
      s_seed = cfg.Config.seed;
      s_completed = completed;
      s_operations = Dpm.op_count dpm;
      s_evaluations = Dpm.eval_count dpm + setup_evals;
      s_spins = Dpm.spin_count dpm;
      s_faults = faults;
      s_profile = List.rev !profile;
    }
  in
  { o_summary = summary; o_dpm = dpm; o_makespan = makespan }

(* {2 The reference lockstep loop}

   The original engine: one while-loop round per shuffle, every designer
   observes every outcome inline. Kept verbatim as the executable
   specification the discrete-event driver is tested against (and as the
   baseline for the scheduler-overhead benchmark). *)

let run_lockstep ?(on_op = fun _ -> ()) ?(tracer = Tracer.null) cfg scenario =
  Config.validate_exn cfg;
  if not (Fault.is_none cfg.Config.faults) then
    invalid_arg
      "Engine.run_lockstep: fault injection needs the discrete-event engine";
  if cfg.Config.shifts <> [] then
    invalid_arg
      "Engine.run_lockstep: requirement shifts need the discrete-event engine";
  let profile = ref [] in
  let record r =
    profile := r :: !profile;
    on_op r
  in
  let dpm, rng, designers, setup_evals = prepare ~tracer cfg scenario ~record in
  let finished = ref false in
  let continue_run () =
    (not !finished) && Dpm.op_count dpm < cfg.Config.max_ops
  in
  while continue_run () do
    let order = Rng.shuffle rng designers in
    let acted = ref false in
    List.iter
      (fun designer ->
        if continue_run () then begin
          (* include evaluations spent while *choosing* (e.g. relaxed
             feasibility queries) in this operation's cost *)
          let evals_before = Dpm.eval_count dpm in
          match Designer.choose_operation designer dpm with
          | None -> ()
          | Some op ->
            acted := true;
            if Tracer.active tracer then
              Tracer.emit tracer
                (Event.Op_submitted
                   {
                     op = Operator.to_trace_spec op;
                     choose_evaluations = Dpm.eval_count dpm - evals_before;
                   });
            let result = Dpm.apply dpm op in
            (* everyone learns the outcome (the NM relays it) *)
            List.iter
              (fun peer ->
                Designer.observe peer dpm ~own:(peer == designer) op result)
              designers;
            record
              {
                Metrics.m_index = result.Dpm.r_index;
                m_designer = Designer.name designer;
                m_kind = Operator.kind_label op;
                m_evaluations = Dpm.eval_count dpm - evals_before;
                m_new_violations = List.length result.Dpm.r_newly_violated;
                m_known_violations = List.length (Dpm.known_violations dpm);
                m_spin = result.Dpm.r_spin;
              };
            if Dpm.solved dpm then finished := true
        end)
      order;
    if not !acted then finished := true
  done;
  finish ~tracer cfg scenario dpm ~setup_evals ~profile
    ~makespan:(Dpm.op_count dpm) ~faults:Metrics.no_faults

(* {2 The discrete-event driver} *)

type des_event =
  | Round_start
  | Next_turn  (** pop the next designer off this round's shuffled order *)
  | Op_done of {
      designer : Designer.t;
      op : Operator.t;
      evals_before : int;
    }  (** the chosen operation's virtual duration elapsed: execute it *)
  | Deliver of {
      recipient : Designer.t;
      own : bool;
      op : Operator.t;
      result : Dpm.result;
      sent_at : int;
      op_index : int;
    }  (** a routed outcome reaches a mailbox *)
  | Crash of Designer.t  (** scheduled fault: the designer goes down *)
  | Restart of Designer.t
      (** the crashed designer comes back, working memory wiped *)
  | Shift of Shift.t
      (** a scheduled requirement shift reaches its virtual time *)

let op_class op =
  match op.Operator.op_kind with
  | Operator.Synthesis _ -> Model.Synthesis
  | Operator.Verification _ -> Model.Verification
  | Operator.Decompose _ -> Model.Decompose

(* Virtual-time semantics, and why latency 0 is bit-identical to the
   lockstep loop:

   - Turns are serialized: [Next_turn] is only scheduled from [Round_start]
     or [Op_done], so at most one operation is ever in flight and durations
     stretch the clock without reordering decisions.
   - The shuffle is drawn once per [Round_start] from the same shared Rng
     the lockstep loop uses, and a designer's own stream is consumed only
     inside [choose_operation] — so every random draw happens in the same
     order.
   - Outcomes are delivered to mailboxes ([Designer.deliver]) and absorbed
     at the start of the recipient's next turn ([Designer.drain]).
     [observe] mutates only the observer's private state, so deferring it
     from "immediately after apply" to "before the observer next chooses"
     cannot change any decision: at latency 0 every delivery event carries
     delay 0 and therefore pops before the next [Next_turn] (scheduled
     later at the same time, hence a larger tie-break sequence), so each
     mailbox is complete before its owner acts.
   - With latency > 0 a teammate's outcome arrives [latency] ticks after
     the operation completes; until then the recipient's believed
     constraint statuses — and hence its repair decisions — lag the DPM's
     live state. The designer's own feedback is always instant.

   Fault semantics on top of the above:

   - The injector owns a dedicated Rng stream, split from the run's root
     generator only when the plan is non-none — a zero-fault run draws
     exactly the fault-free engine's random sequence and stays
     bit-identical to it.
   - Delivery fates are drawn at send time ([Op_done]), one draw sequence
     per teammate in designer order, so a rerun with the same seed drops,
     duplicates and jitters the very same deliveries. Own feedback is the
     local tool report and is never faulted.
   - A crashed designer skips its turns (without counting as activity),
     loses every delivery that arrives while it is down, and restarts
     with its working memory wiped ([Designer.restart]). While someone is
     down, an otherwise-idle round advances the clock one tick instead of
     halting, so the team waits for the restart rather than declaring the
     project stuck. In-flight operations still execute — the tool was
     already running when its operator crashed. *)
let run ?(on_op = fun _ -> ()) ?(tracer = Tracer.null) cfg scenario =
  Config.validate_exn cfg;
  let profile = ref [] in
  let record r =
    profile := r :: !profile;
    on_op r
  in
  let dpm, rng, designers, setup_evals = prepare ~tracer cfg scenario ~record in
  let injector =
    if Fault.is_none cfg.Config.faults then None
    else Some (Fault.create ~rng:(Rng.split rng) cfg.Config.faults)
  in
  let dropped = ref 0 and duplicated = ref 0 and crashes_fired = ref 0 in
  let dead : (string, unit) Hashtbl.t = Hashtbl.create 4 in
  let is_dead d = Hashtbl.mem dead (Designer.name d) in
  let sch : des_event Scheduler.t = Scheduler.create () in
  let finished = ref false in
  let continue_run () =
    (not !finished) && Dpm.op_count dpm < cfg.Config.max_ops
  in
  let order = ref [] in
  let acted = ref false in
  (* Requirement shifts: pre-scheduled below, applied through the DPM at
     their virtual time. A shift that lands while an operation is in
     flight is deferred to that operation's completion — the tool was
     already running against the old requirement — which keeps exactly one
     network mutation per scheduler event and a deterministic trace
     order. *)
  let shifts_remaining = ref (List.length cfg.Config.shifts) in
  let in_flight = ref false in
  let pending_shifts = ref [] in
  let apply_shift sh =
    decr shifts_remaining;
    if Tracer.active tracer then
      Tracer.emit tracer
        (Event.Requirement_shifted
           {
             prop = sh.Shift.sh_prop;
             value = sh.Shift.sh_value;
             at = Scheduler.now sch;
           });
    (* [shift_requirement] emits the induced [Constraint_status_changed]
       events itself, after the [Requirement_shifted] marker above *)
    ignore
      (Dpm.shift_requirement dpm ~prop:sh.Shift.sh_prop
         ~value:sh.Shift.sh_value
        : (int * Constr.status * Constr.status) list);
    (* the shift is the system lead's broadcast: every live designer
       learns the re-checked statuses at once; a crashed designer misses
       it like any other delivery *)
    let statuses = Dpm.known_statuses dpm in
    List.iter
      (fun d -> if not (is_dead d) then Designer.learn_statuses d statuses)
      designers
  in
  let handle ev =
    match ev with
    | Round_start ->
      if continue_run () then begin
        order := Rng.shuffle rng designers;
        acted := false;
        Scheduler.schedule sch ~delay:0 Next_turn
      end
      else Scheduler.halt sch
    | Next_turn -> (
      match !order with
      | [] ->
        if !acted then Scheduler.schedule sch ~delay:0 Round_start
        else if Hashtbl.length dead > 0 || !shifts_remaining > 0 then
          (* everyone alive is idle but a teammate is down or a
             requirement shift is still scheduled: wait a tick for the
             restart/shift instead of declaring the project done *)
          Scheduler.schedule sch ~delay:1 Round_start
        else Scheduler.halt sch
      | designer :: rest ->
        order := rest;
        if continue_run () then begin
          if is_dead designer then Scheduler.schedule sch ~delay:0 Next_turn
          else begin
            if Tracer.active tracer then
              Tracer.emit tracer
                (Event.Turn_started
                   { designer = Designer.name designer; at = Scheduler.now sch });
            ignore (Designer.drain designer dpm : int);
            let evals_before = Dpm.eval_count dpm in
            match Designer.choose_operation designer dpm with
            | None -> Scheduler.schedule sch ~delay:0 Next_turn
            | Some op ->
              acted := true;
              if Tracer.active tracer then
                Tracer.emit tracer
                  (Event.Op_submitted
                     {
                       op = Operator.to_trace_spec op;
                       choose_evaluations = Dpm.eval_count dpm - evals_before;
                     });
              let delay =
                Model.duration_for cfg.Config.duration_model (op_class op)
              in
              in_flight := true;
              Scheduler.schedule sch ~delay
                (Op_done { designer; op; evals_before })
          end
        end
        else Scheduler.halt sch)
    | Op_done { designer; op; evals_before } ->
      in_flight := false;
      let result = Dpm.apply dpm op in
      if Tracer.active tracer then
        Tracer.emit tracer
          (Event.Op_completed
             { index = result.Dpm.r_index; at = Scheduler.now sch });
      let sent_at = Scheduler.now sch in
      let op_index = result.Dpm.r_index in
      List.iter
        (fun peer ->
          let own = peer == designer in
          let deliver extra =
            Scheduler.schedule sch
              ~delay:
                (Model.delivery_delay ~extra ~latency:cfg.Config.latency ~own
                   ())
              (Deliver { recipient = peer; own; op; result; sent_at; op_index })
          in
          match injector with
          | Some inj when not own -> (
            let recipient = Designer.name peer in
            match Fault.delivery_fate inj with
            | Fault.Drop ->
              incr dropped;
              if Tracer.active tracer then
                Tracer.emit tracer
                  (Event.Notification_dropped
                     { recipient; op_index; at = sent_at })
            | Fault.Deliver { extra } -> deliver extra
            | Fault.Duplicate { extra; dup_extra } ->
              incr duplicated;
              if Tracer.active tracer then
                Tracer.emit tracer
                  (Event.Notification_duplicated
                     { recipient; op_index; at = sent_at });
              deliver extra;
              deliver dup_extra)
          | Some _ | None -> deliver 0)
        designers;
      record
        {
          Metrics.m_index = result.Dpm.r_index;
          m_designer = Designer.name designer;
          m_kind = Operator.kind_label op;
          m_evaluations = Dpm.eval_count dpm - evals_before;
          m_new_violations = List.length result.Dpm.r_newly_violated;
          m_known_violations = List.length (Dpm.known_violations dpm);
          m_spin = result.Dpm.r_spin;
        };
      (* shifts that landed while this operation was in flight take
         effect now, before the solved check — a just-moved requirement
         can un-solve the project *)
      let deferred = !pending_shifts in
      pending_shifts := [];
      List.iter apply_shift deferred;
      if Dpm.solved dpm && !shifts_remaining = 0 then begin
        finished := true;
        Scheduler.halt sch
      end
      else Scheduler.schedule sch ~delay:0 Next_turn
    | Crash designer ->
      Hashtbl.replace dead (Designer.name designer) ();
      incr crashes_fired;
      if Tracer.active tracer then
        Tracer.emit tracer
          (Event.Designer_crashed
             { designer = Designer.name designer; at = Scheduler.now sch })
    | Shift sh ->
      if !in_flight then pending_shifts := !pending_shifts @ [ sh ]
      else apply_shift sh
    | Restart designer ->
      Hashtbl.remove dead (Designer.name designer);
      Designer.restart designer;
      if Tracer.active tracer then
        Tracer.emit tracer
          (Event.Designer_restarted
             { designer = Designer.name designer; at = Scheduler.now sch })
    | Deliver { recipient; _ } when is_dead recipient ->
      (* deliveries to a crashed designer are lost with it *)
      ()
    | Deliver { recipient; own; op; result; sent_at; op_index } ->
      Designer.deliver recipient ~own op result;
      if (not own) && Tracer.active tracer then (
        (* announce only deliveries the NM actually routed: the recipient
           subscribes to the touched properties and the outcome produced a
           notification-worthy event *)
        match
          List.find_opt
            (fun n ->
              String.equal n.Notify.n_recipient (Designer.name recipient))
            result.Dpm.r_notifications
        with
        | None -> ()
        | Some n ->
          Tracer.emit tracer
            (Event.Notification_delivered
               {
                 recipient = Designer.name recipient;
                 op_index;
                 sent_at;
                 delivered_at = Scheduler.now sch;
                 events = List.map Notify.event_label n.Notify.n_events;
                 violations = Notify.detected_violations n;
               }))
  in
  (* crash windows are scheduled before the first round so a time-0 crash
     fires before any turn at the same tick; an unknown name is a caller
     error, not a silently ignored fault *)
  List.iter
    (fun { Fault.cr_designer; cr_at; cr_recover } ->
      match
        List.find_opt
          (fun d -> String.equal (Designer.name d) cr_designer)
          designers
      with
      | None ->
        invalid_arg
          (Printf.sprintf "Engine.run: crash plan names unknown designer %S"
             cr_designer)
      | Some d ->
        Scheduler.schedule sch ~delay:cr_at (Crash d);
        Scheduler.schedule sch ~delay:(cr_at + cr_recover) (Restart d))
    cfg.Config.faults.Fault.p_crashes;
  (* requirement shifts are scheduled up front, like crash windows; an
     unknown property is a caller error, not a silently dropped shift *)
  List.iter
    (fun sh ->
      if not (Network.mem_prop (Dpm.network dpm) sh.Shift.sh_prop) then
        invalid_arg
          (Printf.sprintf "Engine.run: shift plan names unknown property %S"
             sh.Shift.sh_prop);
      if
        not
          (Adpm_interval.Domain.mem_num sh.Shift.sh_value
             (Network.initial_domain (Dpm.network dpm) sh.Shift.sh_prop))
      then
        invalid_arg
          (Printf.sprintf
             "Engine.run: shift plan moves %S to %.12g, outside its initial \
              range"
             sh.Shift.sh_prop sh.Shift.sh_value);
      Scheduler.schedule sch ~delay:sh.Shift.sh_at (Shift sh))
    cfg.Config.shifts;
  Scheduler.schedule sch ~delay:0 Round_start;
  Scheduler.run sch handle;
  (* pending mailbox deliveries at halt are discarded: the project is over
     (solved, idle, or out of budget) and nothing after [Run_finished] may
     appear in the trace *)
  finish ~tracer cfg scenario dpm ~setup_evals ~profile
    ~makespan:(Scheduler.now sch)
    ~faults:
      {
        Metrics.f_dropped = !dropped;
        f_duplicated = !duplicated;
        f_crashes = !crashes_fired;
      }

(* Parallelism never changes a number: each seed's run draws from its own
   Rng stream regardless of which process executes it, and the summary
   round-trips exactly through Metrics_codec (ints, bools, strings only).
   So the only contract the pool must keep is order and loudness: results
   come back in seed order, and any worker failure names its seed. *)
let decode_summary ~seed payload =
  match Metrics_codec.of_string payload with
  | Error msg ->
    Error (Printf.sprintf "undecodable worker result for seed %d: %s" seed msg)
  | Ok summary ->
    if summary.Metrics.s_seed <> seed then
      Error
        (Printf.sprintf "worker result out of order: expected seed %d, got %d"
           seed summary.Metrics.s_seed)
    else Ok summary

type backend = Domains | Fork | Inline

let backend_to_string = function
  | Domains -> "domains"
  | Fork -> "fork"
  | Inline -> "inline"

let backend_of_string = function
  | "domains" -> Ok Domains
  | "fork" -> Ok Fork
  | "inline" -> Ok Inline
  | s -> Error (Printf.sprintf "unknown backend '%s' (expected domains|fork|inline)" s)

let run_many ?(backend = Domains) ?(jobs = 1) ?retries ?job_timeout ?on_retry
    cfg scenario ~seeds =
  let run_seed seed = (run (Config.with_seed cfg seed) scenario).o_summary in
  let inline () = List.map run_seed seeds in
  let fail_seed index message =
    failwith
      (Printf.sprintf "Engine.run_many: worker failed for seed %d: %s"
         (List.nth seeds index) message)
  in
  if jobs <= 1 || List.length seeds <= 1 then inline ()
  else
    match backend with
    | Inline -> inline ()
    | Domains -> (
      (* shared heap: summaries come back as ordinary values, no codec *)
      try Dpool.map ~jobs ~f:run_seed seeds
      with Pool.Worker_error { index; message } -> fail_seed index message)
    | Fork ->
      if not (Pool.available ()) then inline ()
      else begin
        let payloads =
          try
            Pool.map_serialized ?retries ?job_timeout ?on_retry ~jobs
              ~f:(fun seed -> Metrics_codec.to_string (run_seed seed))
              seeds
          with Pool.Worker_error { index; message } -> fail_seed index message
        in
        List.map2
          (fun seed payload ->
            match decode_summary ~seed payload with
            | Ok summary -> summary
            | Error msg -> failwith ("Engine.run_many: " ^ msg))
          seeds payloads
      end

(* The `Partial policy: a poisoned seed costs one Error slot, never the
   batch. The inline path mirrors the pool's contract (an exception in
   the run becomes that seed's Error) so callers see one shape. *)
let run_many_partial ?(backend = Domains) ?(jobs = 1) ?retries ?job_timeout
    ?on_retry cfg scenario ~seeds =
  let run_seed seed = (run (Config.with_seed cfg seed) scenario).o_summary in
  let inline () =
    List.map
      (fun seed ->
        match run_seed seed with
        | summary -> Ok summary
        | exception e -> Error ("worker raised: " ^ Printexc.to_string e))
      seeds
  in
  if jobs <= 1 || List.length seeds <= 1 then inline ()
  else
    match backend with
    | Inline -> inline ()
    | Domains -> Dpool.map_partial ~jobs ~f:run_seed seeds
    | Fork ->
      if not (Pool.available ()) then inline ()
      else
        List.map2
          (fun seed result ->
            match result with
            | Error _ as e -> e
            | Ok payload -> decode_summary ~seed payload)
          seeds
          (Pool.map_partial ?retries ?job_timeout ?on_retry ~jobs
             ~f:(fun seed -> Metrics_codec.to_string (run_seed seed))
             seeds)
