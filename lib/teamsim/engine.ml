open Adpm_util
open Adpm_csp
open Adpm_core
open Adpm_trace
module Pool = Adpm_parallel.Pool

type outcome = { o_summary : Metrics.run_summary; o_dpm : Dpm.t }

let run ?(on_op = fun _ -> ()) ?(tracer = Tracer.null) cfg scenario =
  let dpm = scenario.Scenario.sc_build ~mode:cfg.Config.mode in
  Dpm.set_engine dpm cfg.Config.engine;
  Dpm.set_tracer dpm tracer;
  if Tracer.active tracer then
    Tracer.emit tracer
      (Event.Run_started
         {
           scenario = scenario.Scenario.sc_name;
           mode = Dpm.mode_to_string cfg.Config.mode;
           seed = cfg.Config.seed;
           engine = Dpm.engine_to_string cfg.Config.engine;
         });
  let rng = Rng.create cfg.Config.seed in
  let designers =
    List.map
      (fun name ->
        Designer.create cfg ~rng:(Rng.split rng)
          ~models:scenario.Scenario.sc_models name)
      (Dpm.designers dpm)
  in
  let profile = ref [] in
  let record r =
    profile := r :: !profile;
    on_op r
  in
  let setup_evals =
    match cfg.Config.mode with
    | Dpm.Conventional -> 0
    | Dpm.Adpm ->
      let outcome =
        Dpm.run_propagation ~max_revisions:cfg.Config.max_revisions dpm
      in
      record
        {
          Metrics.m_index = 0;
          m_designer = "<setup>";
          m_kind = "setup";
          m_evaluations = outcome.Propagate.evaluations;
          m_new_violations =
            List.length
              (List.filter
                 (fun (_, s) -> s = Constr.Violated)
                 outcome.Propagate.statuses);
          m_known_violations = List.length (Dpm.known_violations dpm);
          m_spin = false;
        };
      outcome.Propagate.evaluations
  in
  let finished = ref false in
  let continue_run () =
    (not !finished) && Dpm.op_count dpm < cfg.Config.max_ops
  in
  while continue_run () do
    let order = Rng.shuffle rng designers in
    let acted = ref false in
    List.iter
      (fun designer ->
        if continue_run () then begin
          (* include evaluations spent while *choosing* (e.g. relaxed
             feasibility queries) in this operation's cost *)
          let evals_before = Dpm.eval_count dpm in
          match Designer.choose_operation designer dpm with
          | None -> ()
          | Some op ->
            acted := true;
            if Tracer.active tracer then
              Tracer.emit tracer
                (Event.Op_submitted
                   {
                     op = Operator.to_trace_spec op;
                     choose_evaluations = Dpm.eval_count dpm - evals_before;
                   });
            let result = Dpm.apply dpm op in
            (* everyone learns the outcome (the NM relays it) *)
            List.iter
              (fun peer ->
                Designer.observe peer dpm ~own:(peer == designer) op result)
              designers;
            record
              {
                Metrics.m_index = result.Dpm.r_index;
                m_designer = Designer.name designer;
                m_kind = Operator.kind_label op;
                m_evaluations = Dpm.eval_count dpm - evals_before;
                m_new_violations = List.length result.Dpm.r_newly_violated;
                m_known_violations = List.length (Dpm.known_violations dpm);
                m_spin = result.Dpm.r_spin;
              };
            if Dpm.solved dpm then finished := true
        end)
      order;
    if not !acted then finished := true
  done;
  let completed = Dpm.solved dpm && Dpm.ground_truth_solved dpm in
  if Tracer.active tracer then
    Tracer.emit tracer
      (Event.Run_finished
         {
           completed;
           operations = Dpm.op_count dpm;
           evaluations = Dpm.eval_count dpm;
           setup_evaluations = setup_evals;
           spins = Dpm.spin_count dpm;
           violations = List.sort compare (Dpm.known_violations dpm);
         });
  let summary =
    {
      Metrics.s_scenario = scenario.Scenario.sc_name;
      s_mode = cfg.Config.mode;
      s_seed = cfg.Config.seed;
      s_completed = completed;
      s_operations = Dpm.op_count dpm;
      s_evaluations = Dpm.eval_count dpm + setup_evals;
      s_spins = Dpm.spin_count dpm;
      s_profile = List.rev !profile;
    }
  in
  { o_summary = summary; o_dpm = dpm }

(* Parallelism never changes a number: each seed's run draws from its own
   Rng stream regardless of which process executes it, and the summary
   round-trips exactly through Metrics_codec (ints, bools, strings only).
   So the only contract the pool must keep is order and loudness: results
   come back in seed order, and any worker failure names its seed. *)
let run_many ?(jobs = 1) cfg scenario ~seeds =
  let run_seed seed = (run (Config.with_seed cfg seed) scenario).o_summary in
  if jobs <= 1 || List.length seeds <= 1 || not (Pool.available ()) then
    List.map run_seed seeds
  else begin
    let payloads =
      try
        Pool.map_serialized ~jobs
          ~f:(fun seed -> Metrics_codec.to_string (run_seed seed))
          seeds
      with Pool.Worker_error { index; message } ->
        failwith
          (Printf.sprintf "Engine.run_many: worker failed for seed %d: %s"
             (List.nth seeds index) message)
    in
    List.map2
      (fun seed payload ->
        match Metrics_codec.of_string payload with
        | Error msg ->
          failwith
            (Printf.sprintf
               "Engine.run_many: undecodable worker result for seed %d: %s"
               seed msg)
        | Ok summary ->
          if summary.Metrics.s_seed <> seed then
            failwith
              (Printf.sprintf
                 "Engine.run_many: worker result out of order: expected seed \
                  %d, got %d"
                 seed summary.Metrics.s_seed);
          summary)
      seeds payloads
  end
