open Adpm_csp
open Adpm_core
open Adpm_trace

type mismatch = { mm_label : string; mm_expected : string; mm_actual : string }

type report = {
  rp_scenario : string;
  rp_mode : Dpm.mode;
  rp_seed : int;
  rp_operations : int;
  rp_events : int;
  rp_finished : bool;
  rp_mismatches : mismatch list;
}

let converged r = r.rp_finished && r.rp_mismatches = []

exception Replay_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Replay_error s)) fmt

let ints_to_string ids =
  "[" ^ String.concat "," (List.map string_of_int ids) ^ "]"

let status_of_constr = function
  | Constr.Satisfied -> Event.Satisfied
  | Constr.Violated -> Event.Violated
  | Constr.Consistent -> Event.Consistent

let run ~resolve events =
  let scenario_name, mode_name, seed, engine_name =
    match
      List.find_map
        (fun s ->
          match s.Event.event with
          | Event.Run_started { scenario; mode; seed; engine } ->
            Some (scenario, mode, seed, engine)
          | _ -> None)
        events
    with
    | Some header -> header
    | None -> fail "trace contains no run_started event"
  in
  let scenario =
    match resolve scenario_name with
    | sc -> sc
    | exception Invalid_argument msg ->
      fail "trace references unresolvable scenario %S: %s" scenario_name msg
  in
  let mode =
    match Dpm.mode_of_string mode_name with
    | Some m -> m
    | None -> fail "trace references unknown mode %S" mode_name
  in
  let engine =
    match Dpm.engine_of_string engine_name with
    | Some e -> e
    | None -> fail "trace references unknown engine %S" engine_name
  in
  let dpm = scenario.Scenario.sc_build ~mode in
  (* per-engine evaluation totals differ (the incremental engine performs
     fewer HC4 revisions), so replay must run the same engine the trace was
     recorded with to reproduce N_T *)
  Dpm.set_engine dpm engine;
  (* the engine's pre-turn propagation (its cost is recorded separately in
     the run_finished event, so it is checked, not merged into N_T) *)
  let setup_evals =
    match mode with
    | Dpm.Conventional -> 0
    | Dpm.Adpm -> (Dpm.run_propagation dpm).Propagate.evaluations
  in
  let mismatches = ref [] in
  let add label expected actual =
    if not (String.equal expected actual) then
      mismatches :=
        { mm_label = label; mm_expected = expected; mm_actual = actual }
        :: !mismatches
  in
  let results : (int, Operator.t * Dpm.result) Hashtbl.t =
    Hashtbl.create 256
  in
  let last_status : (int, Event.status) Hashtbl.t = Hashtbl.create 64 in
  let replayed = ref 0 in
  let finished = ref false in
  List.iter
    (fun stamped ->
      match stamped.Event.event with
      | Event.Op_submitted { op; choose_evaluations } ->
        (* decision-time evaluations (relaxed feasibility queries) happen
           outside [Dpm.apply]; re-charge them so N_T is comparable *)
        Dpm.charge_evaluations dpm choose_evaluations;
        let op = Operator.of_trace_spec op in
        let result = Dpm.apply dpm op in
        incr replayed;
        Hashtbl.replace results result.Dpm.r_index (op, result)
      | Event.Op_executed
          {
            index;
            designer;
            kind;
            evaluations;
            newly_violated;
            resolved;
            skipped;
            spin;
          } -> (
        let label what = Printf.sprintf "op %d %s" index what in
        match Hashtbl.find_opt results index with
        | None -> add (label "replayed") "present" "missing"
        | Some (op, r) ->
          add (label "designer") designer op.Operator.op_designer;
          add (label "kind") kind (Operator.kind_label op);
          add (label "evaluations") (string_of_int evaluations)
            (string_of_int r.Dpm.r_evaluations);
          add (label "newly-violated")
            (ints_to_string (List.sort compare newly_violated))
            (ints_to_string (List.sort compare r.Dpm.r_newly_violated));
          add (label "resolved")
            (ints_to_string (List.sort compare resolved))
            (ints_to_string (List.sort compare r.Dpm.r_resolved));
          add (label "skipped")
            (ints_to_string (List.sort compare skipped))
            (ints_to_string (List.sort compare r.Dpm.r_skipped));
          add (label "spin") (string_of_bool spin)
            (string_of_bool r.Dpm.r_spin))
      | Event.Constraint_status_changed { cid; new_status; _ } ->
        Hashtbl.replace last_status cid new_status
      | Event.Requirement_shifted { prop; value; _ } -> (
        (* re-apply the shift so every later operation executes against
           the moved requirement (and, in ADPM mode, the same propagation
           cost is re-charged) *)
        match Dpm.shift_requirement dpm ~prop ~value with
        | (_ : (int * Constr.status * Constr.status) list) -> ()
        | exception Invalid_argument msg ->
          fail "trace records an inapplicable shift of %S: %s" prop msg)
      | Event.Run_finished
          {
            completed;
            operations;
            evaluations;
            setup_evaluations;
            spins;
            violations;
          } ->
        finished := true;
        add "completed" (string_of_bool completed)
          (string_of_bool (Dpm.solved dpm && Dpm.ground_truth_solved dpm));
        add "operations (N_O)" (string_of_int operations)
          (string_of_int (Dpm.op_count dpm));
        add "evaluations (N_T)" (string_of_int evaluations)
          (string_of_int (Dpm.eval_count dpm));
        add "setup evaluations" (string_of_int setup_evaluations)
          (string_of_int setup_evals);
        add "spins" (string_of_int spins)
          (string_of_int (Dpm.spin_count dpm));
        add "violations" (ints_to_string violations)
          (ints_to_string (List.sort compare (Dpm.known_violations dpm)));
        let cids =
          List.sort compare
            (Hashtbl.fold (fun cid _ acc -> cid :: acc) last_status [])
        in
        List.iter
          (fun cid ->
            add
              (Printf.sprintf "constraint %d final status" cid)
              (Event.status_to_string (Hashtbl.find last_status cid))
              (Event.status_to_string
                 (status_of_constr (Dpm.known_status dpm cid))))
          cids
      | Event.Run_started _ | Event.Propagation_started _
      | Event.Propagation_finished _ | Event.Notification_pushed _
      | Event.Turn_started _ | Event.Op_completed _
      | Event.Notification_delivered _
      | Event.Notification_dropped _ | Event.Notification_duplicated _
      | Event.Designer_crashed _ | Event.Designer_restarted _
      | Event.Pool_retry _ | Event.Designer_decision _ ->
        ())
    events;
  {
    rp_scenario = scenario_name;
    rp_mode = mode;
    rp_seed = seed;
    rp_operations = !replayed;
    rp_events = List.length events;
    rp_finished = !finished;
    rp_mismatches = List.rev !mismatches;
  }

let render r =
  let b = Buffer.create 256 in
  Printf.bprintf b "replay: scenario=%s mode=%s seed=%d\n" r.rp_scenario
    (Dpm.mode_to_string r.rp_mode)
    r.rp_seed;
  Printf.bprintf b "replayed %d operations from %d trace events\n"
    r.rp_operations r.rp_events;
  if not r.rp_finished then
    Buffer.add_string b
      "trace has no run_finished event: recording is incomplete\n";
  (match r.rp_mismatches with
  | [] ->
    if r.rp_finished then
      Buffer.add_string b "converged: replay matches the recorded run\n"
  | ms ->
    Printf.bprintf b "DIVERGED: %d mismatch(es)\n" (List.length ms);
    List.iter
      (fun m ->
        Printf.bprintf b "  %-32s recorded %s, replayed %s\n" m.mm_label
          m.mm_expected m.mm_actual)
      ms);
  Buffer.contents b
