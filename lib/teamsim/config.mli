(** Simulation configuration.

    Bundles the paper's lambda switch (ADPM vs conventional, Section 3.1.2),
    the delta parameter of the value-selection function f_v (Section 3.1.1:
    "delta values around 100 times smaller than the size of E_i worked
    well"), and ablation switches for the individual heuristics, which the
    paper's conclusion calls out as future evaluation work. *)

open Adpm_core

type forward_ordering =
  | Smallest_subspace
      (** heuristic 2.3.1: the unbound parameter with the smallest feasible
          subspace first (needs ADPM's propagation; conventional mode falls
          back to random) *)
  | Most_constrained
      (** heuristic 2.3.2: the parameter appearing in the most constraints
          first (static knowledge, effective in both modes) *)
  | Random_target  (** uninformed baseline *)

type value_policy =
  | Endpoint
      (** the paper's f_v: push to the feasible-window end the monotone
          votes favour *)
  | Headroom
      (** the adaptability variant: among candidate quantiles of the
          feasible window, pick argmax log(min normalized constraint
          headroom) — keep every connected constraint comfortably away
          from its limit so later requirement shifts have margin to land
          in (ADPM mode only; conventional mode has no feasible window
          to sample) *)

val value_policy_to_string : value_policy -> string
val value_policy_of_string : string -> (value_policy, string) result

type t = {
  mode : Dpm.mode;  (** the paper's lambda *)
  engine : Dpm.engine;
      (** DCM propagation engine (default [Incremental]); recorded in the
          trace header so replay re-selects it *)
  seed : int;
  max_ops : int;  (** safety bound on executed operations *)
  max_revisions : int;  (** propagation fixpoint budget per run *)
  latency : int;
      (** notification latency in virtual ticks: the Notification Manager
          delivers an operation's outcome to teammates this long after the
          operation completes ([0] = instant broadcast, the legacy
          behaviour; the acting designer always learns instantly) *)
  duration_model : Adpm_sim.Model.duration;
      (** virtual ticks each operation takes (default
          {!Adpm_sim.Model.unit_duration}); durations never change run
          outcomes at [latency = 0], only the virtual makespan *)
  faults : Adpm_fault.Fault.plan;
      (** deterministic fault injection: notification drop/duplication
          probabilities, delivery jitter, and scheduled designer
          crash/restart windows (default {!Adpm_fault.Fault.none}, which
          keeps runs bit-identical to the fault-free engine and is the
          only plan the lockstep engine accepts) *)
  delta_divisor : float;
      (** repair step = |E_i| / delta_divisor (paper: about 100) *)
  adaptive_delta : bool;
      (** double the step on consecutive same-direction repairs *)
  forward_ordering : forward_ordering;
      (** how f_a orders unbound parameters during forward design *)
  use_alpha_repair : bool;
      (** heuristic 2.3.3: repair the property with most connected
          violations *)
  use_monotone_hints : bool;
      (** use repair-direction votes from monotonic constraints *)
  use_history_tabu : bool;
      (** consult design history to avoid previously-bad assignments *)
  use_relaxed_feasible : bool;
      (** ADPM repair values from constraint-margin propagation *)
  value_policy : value_policy;
      (** f_v variant for forward synthesis (default [Endpoint]) *)
  shifts : Shift.plan;
      (** requirement shifts applied at virtual time (default
          {!Shift.none}); only the discrete-event engine honours a
          non-empty plan *)
}

val default : mode:Dpm.mode -> seed:int -> t
(** All heuristics on ([forward_ordering = Smallest_subspace]),
    [max_ops = 2000], [delta_divisor = 100.], [latency = 0],
    unit durations. *)

val with_seed : t -> int -> t

val validate : t -> (unit, string) result
(** Reject configurations the engine cannot honour: non-positive
    [max_ops] or [max_revisions], a negative [latency], a negative
    duration, an invalid fault plan (out-of-range probabilities,
    negative jitter, non-positive recovery), or a non-positive (or nan)
    [delta_divisor]. *)

val validate_exn : t -> unit
(** @raise Invalid_argument with {!validate}'s message. *)
