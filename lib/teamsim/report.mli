(** Consolidation of multi-run statistics.

    Aggregates run summaries into the quantities Fig. 9 reports — average
    and standard deviation of the number of design operations, total and
    per-operation constraint evaluations, spins — and renders them. *)

open Adpm_util
open Adpm_core

type aggregate = {
  a_scenario : string;
  a_mode : Dpm.mode;
  a_runs : int;
  a_completed : int;
  a_ops : Stats_acc.t;
  a_evals : Stats_acc.t;
  a_evals_per_op : Stats_acc.t;
  a_spins : Stats_acc.t;
  a_violations : Stats_acc.t;
}

val aggregate : Metrics.run_summary list -> aggregate
(** @raise Invalid_argument on an empty list or on mixed scenarios/modes. *)

val mean_profile : Metrics.run_summary list -> (int * float * float) list
(** Per operation index: (index, mean new violations, mean evaluations)
    averaged across runs that reached that index — the data of Fig. 7.
    Ascending by index; indices no run reached are omitted. Single pass
    over the profiles (linear in the total number of records). *)

val comparison_table :
  title:string -> aggregate list -> string
(** Fig. 9-style table: one row per (scenario, mode) aggregate. *)
