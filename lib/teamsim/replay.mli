(** Deterministic replay of recorded traces.

    A recorded trace pins down a run completely: the scenario builds the
    same initial state, and the [Op_submitted] events carry every design
    operation in execution order as plain data. Replay re-executes that
    operation sequence against a fresh {!Adpm_core.Dpm.t} — no simulated
    designers, no RNG — and checks that the design process converges to
    the recorded outcome: per-operation results ([Op_executed]), final
    constraint statuses, violation sets, and the N_O / N_T / spin totals
    ([Run_finished]).

    This is both a determinism audit for the simulator and a portable
    regression format: a trace captured on one machine must replay
    cleanly on any other. *)

open Adpm_core
open Adpm_trace

type mismatch = {
  mm_label : string;  (** what was compared, e.g. ["op 12 evaluations"] *)
  mm_expected : string;  (** recorded value *)
  mm_actual : string;  (** replayed value *)
}

type report = {
  rp_scenario : string;
  rp_mode : Dpm.mode;
  rp_seed : int;  (** recorded seed (informational; replay uses no RNG) *)
  rp_operations : int;  (** operations re-executed *)
  rp_events : int;  (** trace events consumed *)
  rp_finished : bool;  (** the trace contained a [Run_finished] event *)
  rp_mismatches : mismatch list;
}

val converged : report -> bool
(** Complete trace and zero mismatches. *)

exception Replay_error of string
(** The trace cannot be replayed at all: no [Run_started] event, or it
    names a scenario / mode unknown to this binary. *)

val run : resolve:(string -> Scenario.t) -> Event.stamped list -> report
(** Replay a single-run trace, resolving the recorded scenario name
    through [resolve] — typically {!Adpm_scenarios.Registry.resolve} (so
    recorded ["gen:<spec>"] names rebuild the identical generated network
    on any process) or {!Scenario.resolver} over a fixture list. An
    [Invalid_argument] from [resolve] becomes a {!Replay_error}.
    Assumes the engine's default revision budget; a run recorded with a
    custom [max_revisions] may diverge.
    @raise Replay_error when the trace header is unusable. *)

val render : report -> string
(** Human-readable verdict, one line per mismatch. *)
