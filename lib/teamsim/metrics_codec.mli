(** JSON codec for {!Metrics.run_summary}.

    The encoder is exactly {!Export.summary_json} (one compact JSON
    document, the same schema external tools consume); the decoder reads
    it back with the trace library's hand-rolled parser. Round-trip is
    exact: every field of a summary is an int, bool, or string, so no
    precision is lost — this is what lets the parallel runner ship
    summaries between processes and reassemble results bit-identical to
    the in-process path. *)

val to_string : Metrics.run_summary -> string
(** Alias of {!Export.summary_json}. *)

val of_string : string -> (Metrics.run_summary, string) result
(** Inverse of {!to_string}. [Error] describes the first missing or
    mistyped field (or the parse error) — never raises. *)
