(** The simulation engine.

    Drives a scenario: simulated designers take turns requesting operations
    (in a per-round shuffled order — designers act independently), the DPM
    executes them, and statistics are captured per operation. A simulation
    terminates when the top-level problem is solved — all outputs have a
    value and no constraint is violated (Section 3.1.2) — or when every
    designer idles for a full round, or when the operation budget runs
    out. *)

open Adpm_core

type outcome = {
  o_summary : Metrics.run_summary;
  o_dpm : Dpm.t;  (** final state, for inspection *)
}

val run :
  ?on_op:(Metrics.op_record -> unit) ->
  ?tracer:Adpm_trace.Tracer.t ->
  Config.t ->
  Scenario.t ->
  outcome
(** Execute one simulation. In ADPM mode an initial propagation runs before
    the first designer turn (constraints are propagated "beginning when
    these constraints are generated"); its evaluations are charged to the
    run as a setup record.

    With an active [tracer] the engine emits the run lifecycle
    ([Run_started], one [Op_submitted] per accepted operation carrying its
    decision-time evaluation cost, [Run_finished]) and attaches the tracer
    to the DPM so execution-level events flow through the same stream. The
    caller owns the tracer and must [Tracer.close] it. *)

val run_many :
  ?jobs:int ->
  Config.t ->
  Scenario.t ->
  seeds:int list ->
  Metrics.run_summary list
(** One run per seed, same configuration otherwise.

    [jobs] (default 1) shards the seed list across that many forked worker
    processes ({!Adpm_parallel.Pool}). The result is {b bit-identical} to
    the sequential path for any [jobs] — same summaries, same seed order —
    because each seed's run owns its Rng stream and summaries round-trip
    exactly through {!Metrics_codec}. With [jobs <= 1], a single seed, or
    fork unavailable, no process is forked.

    @raise Failure naming the failing seed if a worker crashes or returns
    an undecodable result (no silent partial aggregates). *)
