(** The simulation engine.

    Drives a scenario on a virtual clock: simulated designers take turns
    requesting operations (in a per-round shuffled order — designers act
    independently), the DPM executes them, and statistics are captured per
    operation. A simulation terminates when the top-level problem is
    solved — all outputs have a value and no constraint is violated
    (Section 3.1.2) — or when every designer idles for a full round, or
    when the operation budget runs out.

    {!run} is a discrete-event scheduler ({!Adpm_sim.Scheduler}): each
    operation occupies a configurable virtual duration
    ([Config.duration_model]) and the Notification Manager's outcome
    broadcasts reach teammate mailboxes [Config.latency] ticks after the
    operation completes (a designer's own feedback is instant). Designers
    absorb queued deliveries at the start of their next turn. At latency 0
    this is {b bit-identical} — full summary, per-op profile included — to
    the original lockstep loop, which {!run_lockstep} preserves as the
    executable reference. *)

open Adpm_core

type outcome = {
  o_summary : Metrics.run_summary;
  o_dpm : Dpm.t;  (** final state, for inspection *)
  o_makespan : int;
      (** final virtual-clock reading in scheduler ticks. Under the unit
          duration model and latency 0 this equals the operation count;
          for {!run_lockstep} it is defined as the operation count. *)
}

val run :
  ?on_op:(Metrics.op_record -> unit) ->
  ?tracer:Adpm_trace.Tracer.t ->
  Config.t ->
  Scenario.t ->
  outcome
(** Execute one simulation on the discrete-event scheduler. In ADPM mode an
    initial propagation runs before the first designer turn (constraints
    are propagated "beginning when these constraints are generated"); its
    evaluations are charged to the run as a setup record.

    With an active [tracer] the engine emits the run lifecycle
    ([Run_started], one [Op_submitted] per accepted operation carrying its
    decision-time evaluation cost, [Op_completed] with the virtual
    completion time, [Notification_delivered] for each routed teammate
    delivery, [Run_finished]) and attaches the tracer to the DPM so
    execution-level events flow through the same stream. The caller owns
    the tracer and must [Tracer.close] it.

    @raise Invalid_argument if the configuration fails
    {!Config.validate}. *)

val run_lockstep :
  ?on_op:(Metrics.op_record -> unit) ->
  ?tracer:Adpm_trace.Tracer.t ->
  Config.t ->
  Scenario.t ->
  outcome
(** The original synchronous loop, kept as the executable specification
    {!run} is tested against (and as the baseline for the
    scheduler-overhead benchmark). Ignores [Config.latency] and
    [Config.duration_model]: every outcome is observed by every designer
    inline, immediately after the operation executes.

    @raise Invalid_argument if the configuration fails
    {!Config.validate}. *)

type backend =
  | Domains
      (** OCaml 5 shared-memory domain pool ({!Adpm_parallel.Dpool}): no
          serialization, no per-shard process — the throughput default.
          No fault isolation: a worker that exits or wedges the runtime
          takes the whole process. *)
  | Fork
      (** Fork+pipe pool with supervision ({!Adpm_parallel.Pool}): each
          shard in its own process; crashes and hangs are retried. The
          fault-isolation backend. *)
  | Inline  (** Sequential in-process reference path. *)

val backend_to_string : backend -> string
val backend_of_string : string -> (backend, string) result

val run_many :
  ?backend:backend ->
  ?jobs:int ->
  ?retries:int ->
  ?job_timeout:float ->
  ?on_retry:(Adpm_parallel.Pool.supervision_event -> unit) ->
  Config.t ->
  Scenario.t ->
  seeds:int list ->
  Metrics.run_summary list
(** One run per seed (via {!run}), same configuration otherwise.

    [jobs] (default 1) shards the seed list across that many workers of
    the chosen [backend] (default [Domains]). The result is
    {b bit-identical} to the sequential path for any backend and any
    [jobs] — same summaries, same seed order — because each seed's run
    owns its Rng stream, runs are independent (every run builds its own
    network), and fork-backend summaries round-trip exactly through
    {!Metrics_codec}. With [jobs <= 1] or a single seed nothing is
    spawned; [Fork] also falls back inline when fork is unavailable —
    on non-Unix platforms, or once the [Domains] backend has spawned its
    first domain (the OCaml 5 runtime permanently forbids [Unix.fork]
    after that), so run fork batches before domain batches when one
    process needs both.

    [retries], [job_timeout] and [on_retry] configure the fork pool's
    supervision (crashed or hung workers are respawned and their
    undelivered seeds re-run, up to [retries] extra attempts per seed);
    they pass through to {!Adpm_parallel.Pool.map_serialized} and are
    ignored by the other backends (domains share one process — there is
    nothing to respawn; pick [Fork] when runs may crash). Supervision
    does not affect results, only availability: a retried seed re-runs
    from scratch and is deterministic in its seed.

    @raise Failure naming the failing seed if a worker exhausts its retry
    budget or returns an undecodable result (no silent partial
    aggregates). *)

val run_many_partial :
  ?backend:backend ->
  ?jobs:int ->
  ?retries:int ->
  ?job_timeout:float ->
  ?on_retry:(Adpm_parallel.Pool.supervision_event -> unit) ->
  Config.t ->
  Scenario.t ->
  seeds:int list ->
  (Metrics.run_summary, string) result list
(** {!run_many} under the [`Partial] delivery policy
    ({!Adpm_parallel.Pool.map_partial}): one [result] per seed, in seed
    order. A seed whose worker exhausts its retry budget (or whose run
    raises, on the inline path) yields [Error message] in its slot instead
    of poisoning the whole batch; every other seed's summary is still
    bit-identical to the sequential path. *)
