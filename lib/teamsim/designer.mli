(** The simulated designer model (Section 3.1.1).

    A designer is a state-based system whose goal is to solve its assigned
    design problems. Each turn it applies the operation-selection function
    f_o = f_v . f_a . f_p to its view of the design:

    - {b f_p (problem selection)} keeps the assigned problems that are not
      [Waiting]; if no violations are known and every assigned problem is
      solved, the empty set is returned (the designer idles).
    - {b f_a (target property selection)}: with no known violations, the
      unbound design parameter with the smallest feasible subspace (ADPM;
      the conventional designer has no feasibility information and
      guesses); with violations, the parameter whose single directed move
      is likely to fix the most violations, counting violations that reach
      the parameter through the performance models it drives (the paper's
      "indirect" extension of Section 2.3.2). Ties break randomly.
    - {b f_v (value selection)}: from the feasible subspace when it is
      non-empty — the top or bottom value according to which direction
      satisfies the most constraints; from the initial range E_i otherwise,
      moving a bound ordered value by a delta about 100 times smaller than
      |E_i| in the direction likely to fix the most violations (with
      exponential growth and bisection on overshoot). The design history is
      consulted to avoid values that previously led to violations (tabu).

    A synthesis operation emulates a CAD-tool run: it binds the chosen
    design parameter {e and} every dependent performance property, which
    the tool recomputes from the scenario's model expressions.

    Conventional-mode designers additionally request verification
    operations — the only way they learn of violations — whenever their
    problems have bound-but-unverified constraints. *)

open Adpm_util
open Adpm_expr
open Adpm_core

type t

type delivery = { dv_own : bool; dv_op : Operator.t; dv_result : Dpm.result }
(** One queued NM delivery: the outcome of an executed operation, tagged
    with whether it was this designer's own. *)

val create :
  Config.t -> rng:Rng.t -> models:(string * Expr.t) list -> string -> t

val name : t -> string

val learn_statuses : t -> (int * Adpm_csp.Constr.status) list -> unit
(** Seed the designer's believed constraint statuses (the project kickoff:
    everyone leaves setup with the same picture of the network). Unknown
    constraints default to [Consistent], matching the DPM's own default. *)

val believed_snapshot : t -> (int * Adpm_csp.Constr.status) list
(** The believed-status table, sorted by constraint id — what this
    designer currently thinks the network looks like. Test and
    inspection hook for the fault model. *)

val restart : t -> unit
(** Model a crash/restart: the believed-status table, queued mailbox
    deliveries, repair adaptation and re-verification bookkeeping are
    lost; the designer rebuilds its picture only from subsequent
    deliveries. The tabu set survives — design history lives in the
    shared database, not in the designer's head. *)

val choose_operation : t -> Dpm.t -> Operator.t option
(** One turn: select the next operation, or [None] to idle (everything
    solved / nothing addressable). *)

val synthesis_with_tools :
  t -> Dpm.t -> string -> float -> Adpm_core.Operator.t option
(** Build the synthesis operation that assigns the given design parameter
    and lets the tool recompute every dependent performance property —
    the same operation {!choose_operation} would construct for that choice.
    [None] when the property is not an output of one of the designer's
    addressable problems. Used by interactive sessions where a human plays
    the designer. *)

val request_verification : t -> Dpm.t -> Operator.t option
(** Build the verification operation the designer would request now
    (conventional mode), if any. *)

val observe : t -> Dpm.t -> own:bool -> Operator.t -> Dpm.result -> unit
(** Feedback after the DPM executed an operation — the designer's own
    ([own = true]) or a teammate's whose outcome the Notification Manager
    relayed. Updates the believed constraint statuses from the result's
    status transitions, records tabu entries (assignments that produced
    violations, possibly discovered only at a later verification, possibly
    one run by the team leader at integration) and adapts the repair
    step. *)

val deliver : t -> own:bool -> Operator.t -> Dpm.result -> unit
(** Enqueue an operation outcome in the designer's mailbox without
    processing it. The discrete-event engine calls this when the
    notification's virtual delivery time arrives; the designer absorbs the
    queued deliveries at the start of its next turn ({!drain}). *)

val drain : t -> Dpm.t -> int
(** Process every queued delivery in arrival order through {!observe} and
    return how many there were. *)
