(** Simulation statistics capture.

    TeamSim's simulation engine "dynamically captures, stores, and
    consolidates simulation statistics" (Section 3.1): per executed
    operation, the number of constraint violations found, the number of
    constraint evaluations executed, and whether the operation was a design
    spin; plus run-level aggregates. *)

open Adpm_core

type op_record = {
  m_index : int;  (** 1-based operation number *)
  m_designer : string;
  m_kind : string;  (** "synthesis" / "verification" / "decompose" / "setup" *)
  m_evaluations : int;
  m_new_violations : int;
  m_known_violations : int;  (** known violations after the operation *)
  m_spin : bool;
}

type fault_counts = {
  f_dropped : int;  (** teammate notifications lost by the fault injector *)
  f_duplicated : int;  (** teammate notifications delivered twice *)
  f_crashes : int;  (** scheduled designer crashes that fired *)
}
(** What the fault injector actually did during one run. All zero —
    {!no_faults} — for fault-free runs. *)

val no_faults : fault_counts

type run_summary = {
  s_scenario : string;
  s_mode : Dpm.mode;
  s_seed : int;
  s_completed : bool;
  s_operations : int;  (** N_O: executed design operations *)
  s_evaluations : int;  (** N_T: total constraint evaluations (incl. setup) *)
  s_spins : int;
  s_faults : fault_counts;
  s_profile : op_record list;  (** chronological *)
}

val evaluations_per_op : run_summary -> float
(** N_E = N_T / N_O; [nan] when no operation executed. *)

val violations_found : run_summary -> int
(** Total violations discovered across the run. *)

val completion_rate : run_summary list -> float
(** Fraction of runs that completed; [nan] on the empty list. *)

val mean_operations : run_summary list -> float
(** Mean N_O across the batch; [nan] on the empty list. *)

val mean_evaluations : run_summary list -> float
(** Mean N_T across the batch; [nan] on the empty list. *)

val summary_line : run_summary -> string
