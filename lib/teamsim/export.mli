(** Export of captured simulation statistics.

    TeamSim "dynamically captures, stores, and consolidates simulation
    statistics for on-line visualization and post-simulation analysis"
    (Section 3.1). The original fed Gnuplot; these exporters emit the
    per-operation profile and run summary as CSV and JSON so any external
    tool can consume them. *)

val csv_escape : string -> string
(** Alias of [Adpm_util.Escape.csv] — the quoting rule every CSV exporter
    in the repo shares. *)

val json_escape : string -> string
(** Alias of [Adpm_util.Escape.json] (string-body escaping, no surrounding
    quotes), shared with the JSONL trace codec. *)

val profile_csv : Metrics.run_summary -> string
(** One header row, one row per operation record:
    [op,designer,kind,evaluations,new_violations,known_violations,spin]. *)

val summary_json : Metrics.run_summary -> string
(** The whole run — metadata, totals, and the per-operation profile — as a
    single JSON document. *)

val runs_csv : Metrics.run_summary list -> string
(** One row per run: scenario, mode, seed, completed, operations,
    evaluations, spins, violations — the Fig. 9 raw data. *)
