open Adpm_interval
open Adpm_expr

type rel = Le | Ge | Eq

type status = Satisfied | Violated | Consistent

type t = {
  id : int;
  name : string;
  lhs : Expr.t;
  rel : rel;
  rhs : Expr.t;
  c_args : string list;
  c_diff : Expr.t;
}

(* [Expr.vars] on [lhs - rhs] is exactly the historical
   [lhs_vars @ (rhs_vars not already in lhs_vars)]: a single deduplicated
   first-occurrence walk of the left side then the right. Computed once at
   construction — [args] used to re-walk both expressions (with a
   quadratic [List.mem] dedup) on every call, including from [arity] and
   every [Network.add_constraint]. *)
let make ~id ~name lhs rel rhs =
  let diff = Expr.Sub (lhs, rhs) in
  { id; name; lhs; rel; rhs; c_args = Expr.vars diff; c_diff = diff }

let args c = c.c_args
let arity c = List.length c.c_args
let diff c = c.c_diff

let default_eps = 1e-9

let target ?(eps = default_eps) c =
  match c.rel with
  | Le -> Interval.make neg_infinity eps
  | Ge -> Interval.make (-.eps) infinity
  | Eq -> Interval.make (-.eps) eps

let check_point ?(eps = default_eps) env c =
  let d = Expr.eval env (diff c) in
  if Float.is_nan d then false
  else
    match c.rel with
    | Le -> d <= eps
    | Ge -> d >= -.eps
    | Eq -> abs_float d <= eps

let status_on_box ?(eps = default_eps) env c =
  match Expr.eval_interval env (diff c) with
  | None -> Violated
  | Some d -> (
    let lo = Interval.lo d and hi = Interval.hi d in
    match c.rel with
    | Le -> if hi <= eps then Satisfied else if lo > eps then Violated else Consistent
    | Ge ->
      if lo >= -.eps then Satisfied else if hi < -.eps then Violated else Consistent
    | Eq ->
      if lo >= -.eps && hi <= eps then Satisfied
      else if lo > eps || hi < -.eps then Violated
      else Consistent)

let pp_rel ppf rel =
  Format.pp_print_string ppf (match rel with Le -> "<=" | Ge -> ">=" | Eq -> "=")

let pp_status ppf status =
  Format.pp_print_string ppf
    (match status with
    | Satisfied -> "Satisfied"
    | Violated -> "Violated"
    | Consistent -> "Consistent")

let status_to_string s = Format.asprintf "%a" pp_status s

let pp ppf c =
  Format.fprintf ppf "%s: %a %a %a" c.name Expr.pp c.lhs pp_rel c.rel Expr.pp
    c.rhs

let to_string c = Format.asprintf "%a" pp c
