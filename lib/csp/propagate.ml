open Adpm_interval
open Adpm_expr
open Adpm_trace

type outcome = {
  feasible : (string * Domain.t) list;
  statuses : (int * Constr.status) list;
  evaluations : int;
  revisions : int;
  fixpoint : bool;
}

(* [narrowed] is always a sub-interval of [old_iv] (HC4 intersects with the
   input box); requeue only when the shrink is significant. When both widths
   are infinite their difference says nothing ([inf < inf] is false even
   when a bound genuinely moved, e.g. [-inf,+inf] -> [0,+inf]), so compare
   the bounds directly. *)
let significantly_narrower ~eps old_iv narrowed =
  let old_w = Interval.width old_iv and new_w = Interval.width narrowed in
  if Float.is_finite old_w then
    new_w < old_w && old_w -. new_w > eps *. Float.max 1. old_w
  else if Float.is_finite new_w then true
  else
    Interval.lo narrowed > Interval.lo old_iv
    || Interval.hi narrowed < Interval.hi old_iv

let numeric_props net =
  List.filter
    (fun name -> Domain.is_numeric (Network.initial_domain net name))
    (Network.prop_names net)

let initial_boxes net =
  let boxes : (string, Interval.t) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun name ->
      match Network.box net name with
      | Some iv -> Hashtbl.replace boxes name iv
      | None -> ())
    (numeric_props net);
  boxes

(* The HC4 fixpoint core, shared by hull propagation and shaving probes.
   Mutates [boxes]; returns the evaluation count, whether some constraint
   became certainly unsatisfiable on the box, and whether the revision
   budget was exhausted. Constraints found Empty are recorded in
   [empty_marks] when provided. When [waves] is given, it receives the
   revision count of each propagation wave in order: wave 0 is the initial
   queue — [seed] when given (the incremental engine's dirty-seeded
   worklist), every constraint otherwise — and wave n+1 the constraints
   requeued while processing wave n. *)
let fixpoint ?(eps = 0.) ~max_revisions ?empty_marks ?waves ?seed net boxes =
  let env name = Hashtbl.find boxes name in
  let queue = Queue.create () in
  let queued : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let enqueue c =
    if not (Hashtbl.mem queued c.Constr.id) then begin
      Hashtbl.replace queued c.Constr.id ();
      Queue.add c queue
    end
  in
  List.iter enqueue
    (match seed with Some cs -> cs | None -> Network.constraints net);
  let evaluations = ref 0 in
  let budget_hit = ref false in
  let any_empty = ref false in
  let wave_sizes = ref [] (* reversed *) in
  let this_wave = ref 0 in
  let wave_boundary = ref (Queue.length queue) in
  let continue_loop () =
    if Queue.is_empty queue then false
    else if !evaluations >= max_revisions then begin
      budget_hit := true;
      false
    end
    else true
  in
  while continue_loop () do
    if !wave_boundary = 0 then begin
      wave_sizes := !this_wave :: !wave_sizes;
      this_wave := 0;
      wave_boundary := Queue.length queue
    end;
    let c = Queue.pop queue in
    Hashtbl.remove queued c.Constr.id;
    decr wave_boundary;
    incr this_wave;
    incr evaluations;
    match Hc4.revise ~env (Constr.diff c) (Constr.target c) with
    | Hc4.Empty ->
      any_empty := true;
      (match empty_marks with
      | Some marks -> Hashtbl.replace marks c.Constr.id ()
      | None -> ())
    | Hc4.Narrowed bindings ->
      List.iter
        (fun (x, iv) ->
          let old_iv = Hashtbl.find boxes x in
          (* Sub-eps narrowings are discarded, not just left unqueued:
             applying them would make the final box depend on the revision
             trajectory, and the incremental engine restarts from the
             stored fixpoint along a different trajectory than a
             from-scratch run. Discarding keeps the stored boxes an exact
             fixpoint of this gated contraction, so both engines converge
             to bit-identical results. *)
          if
            (not (Interval.equal old_iv iv))
            && significantly_narrower ~eps old_iv iv
          then begin
            Hashtbl.replace boxes x iv;
            (* The revised constraint requeues itself too: HC4-revise is
               not idempotent, and fair scheduling (iterate until no
               revise can change anything) is what makes the final boxes
               a true fixpoint — and therefore independent of revision
               order, which the incremental engine's bit-identical
               equivalence with from-scratch runs rests on. *)
            List.iter enqueue (Network.constraints_of_prop net x)
          end)
        bindings
  done;
  if !this_wave > 0 then wave_sizes := !this_wave :: !wave_sizes;
  (match waves with
  | Some cell -> cell := List.rev !wave_sizes
  | None -> ());
  (!evaluations, !any_empty, !budget_hit)

(* 3B-style bound shaving: try to prove the outermost [1/slices] slice of a
   variable's box infeasible by running the fixpoint on a copy; on success
   the bound moves inward. Each probe's revisions are charged to the
   caller's counter. *)
let shave_bounds ~eps ~max_revisions ~slices net boxes evaluations =
  let probe x slice =
    let copy = Hashtbl.copy boxes in
    Hashtbl.replace copy x slice;
    let evals, infeasible, _ =
      fixpoint ~eps ~max_revisions:(max_revisions / 4) net copy
    in
    evaluations := !evaluations + evals;
    infeasible
  in
  let shave_prop x =
    let changed = ref false in
    let attempt side =
      let iv = Hashtbl.find boxes x in
      let w = Interval.width iv in
      if Float.is_finite w && w > eps then begin
        let step = w /. float_of_int slices in
        let lo = Interval.lo iv and hi = Interval.hi iv in
        let slice, rest =
          match side with
          | `Low -> (Interval.make lo (lo +. step), Interval.make (lo +. step) hi)
          | `High -> (Interval.make (hi -. step) hi, Interval.make lo (hi -. step))
        in
        if probe x slice then begin
          Hashtbl.replace boxes x rest;
          changed := true
        end
      end
    in
    attempt `Low;
    attempt `High;
    !changed
  in
  let unbound =
    List.filter (fun x -> not (Network.is_bound net x)) (numeric_props net)
  in
  (* one shaving sweep per variable, repeated while it makes progress and
     the budget allows; bounded to avoid slow convergence *)
  let rec sweeps remaining =
    if remaining = 0 || !evaluations >= max_revisions then ()
    else begin
      let progress =
        List.fold_left
          (fun acc x ->
            if !evaluations >= max_revisions then acc
            else shave_prop x || acc)
          false unbound
      in
      if progress then begin
        (* re-contract with plain propagation after successful shaves *)
        let evals, _, _ = fixpoint ~eps ~max_revisions net boxes in
        evaluations := !evaluations + evals;
        sweeps (remaining - 1)
      end
    end
  in
  sweeps 3

(* The final classification sweep shared by both engines: status of every
   constraint on the contracted box (one evaluation each) plus the feasible
   subspace of every numeric property. *)
let classify net boxes empty_marks revisions =
  let env name = Hashtbl.find boxes name in
  let evaluations = ref revisions in
  let statuses =
    List.map
      (fun c ->
        incr evaluations;
        let s =
          if Hashtbl.mem empty_marks c.Constr.id then Constr.Violated
          else Constr.status_on_box env c
        in
        (c.Constr.id, s))
      (Network.constraints net)
  in
  let feasible =
    List.map
      (fun name ->
        let initial = Network.initial_domain net name in
        let d =
          match Hashtbl.find_opt boxes name with
          | Some iv -> Domain.refine initial iv
          | None -> initial
        in
        (name, d))
      (numeric_props net)
  in
  (statuses, feasible, !evaluations)

(* [base_revisions] charges work done before this run to its counters: a
   full restart that replaces an aborted incremental attempt inherits the
   attempt's revisions, so reported costs reflect all HC4 work performed. *)
let run_core ~eps ~max_revisions ~consistency ~tracer ~engine ~boxes
    ~empty_marks ~seed ?(base_revisions = 0) net =
  if Tracer.active tracer then
    Tracer.emit tracer
      (Event.Propagation_started { constraints = Network.constraint_count net });
  let seeded =
    match seed with
    | Some cs -> List.length cs
    | None -> Network.constraint_count net
  in
  let waves = ref [] in
  let evals, _, budget_hit =
    fixpoint ~eps ~max_revisions ~empty_marks ~waves ?seed net boxes
  in
  let revisions = ref (base_revisions + evals) in
  (match consistency with
  | `Hull -> ()
  | `Shave slices ->
    if slices < 2 then invalid_arg "Propagate.run: shaving needs >= 2 slices";
    shave_bounds ~eps ~max_revisions ~slices net boxes revisions);
  let statuses, feasible, evaluations = classify net boxes empty_marks !revisions in
  if Tracer.active tracer then
    Tracer.emit tracer
      (Event.Propagation_finished
         {
           engine;
           seeded;
           evaluations;
           revisions = !revisions;
           waves = !waves;
           empties = Hashtbl.length empty_marks;
           fixpoint = not budget_hit;
         });
  { feasible; statuses; evaluations; revisions = !revisions; fixpoint = not budget_hit }

let run ?(eps = 0.) ?(max_revisions = 10_000) ?(consistency = `Hull)
    ?(tracer = Tracer.null) net =
  run_core ~eps ~max_revisions ~consistency ~tracer ~engine:"full"
    ~boxes:(initial_boxes net)
    ~empty_marks:(Hashtbl.create 8)
    ~seed:None net

let run_full = run

(* Constraints touching any dirty property, first-seen order, deduplicated. *)
let dirty_seed net dirty =
  let seen : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let acc =
    List.fold_left
      (fun acc name ->
        List.fold_left
          (fun acc c ->
            if Hashtbl.mem seen c.Constr.id then acc
            else begin
              Hashtbl.replace seen c.Constr.id ();
              c :: acc
            end)
          acc
          (Network.constraints_of_prop net name))
      [] dirty
  in
  List.rev acc

let run_incremental ?(eps = 0.) ?(max_revisions = 10_000)
    ?(tracer = Tracer.null) net =
  let persist boxes empty_marks outcome =
    Network.store_prop_state net
      { Network.ps_boxes = boxes; ps_empties = empty_marks };
    Network.clear_dirty net;
    outcome
  in
  let full_restart ?(base_revisions = 0) () =
    let boxes = initial_boxes net in
    let empty_marks : (int, unit) Hashtbl.t = Hashtbl.create 8 in
    persist boxes empty_marks
      (run_core ~eps ~max_revisions ~consistency:`Hull ~tracer ~engine:"full"
         ~boxes ~empty_marks ~seed:None ~base_revisions net)
  in
  match Network.prop_state net with
  | None -> full_restart ()
  | Some ps ->
    let dirty = Network.dirty_props net in
    (* Restarting from the previous fixpoint is sound only when every dirty
       property's fresh box lies inside the stored contracted box:
       propagation is a monotone contraction, so narrowing the start can
       only reproduce the same greatest fixpoint. Unassignments and
       assignments outside the stored box widen the start, in which case a
       stale contraction could wrongly survive — fall back to a
       from-scratch run. *)
    let narrowing_only =
      List.for_all
        (fun name ->
          match Network.box net name with
          | None -> true (* symbolic: propagation never sees it *)
          | Some fresh -> (
            match Hashtbl.find_opt ps.Network.ps_boxes name with
            | Some stored -> Interval.subset fresh stored
            | None -> false))
        dirty
    in
    (* Empty constraints break the order-independence argument: a revise
       that returns Empty contributes no narrowings, so *when* a constraint
       turns empty along a trajectory decides which of its earlier
       narrowings survive in the final box. Emptiness is monotone downward
       (both the backward projections and the box shrink as the box
       shrinks, so a constraint empty on a box is empty on every sub-box),
       which yields a sound discipline: only restart incrementally from an
       empty-free stored state, and discard the attempt if it discovers
       any empty. An empty-free attempt then certifies the from-scratch
       run is empty-free too — a constraint empty anywhere along the full
       trajectory would be empty on the attempt's (tighter) fixpoint, and
       fair scheduling revises every constraint at its arguments' final
       values, so the attempt (or, for untouched constraints, the previous
       run) would have marked it. *)
    if (not narrowing_only) || Hashtbl.length ps.Network.ps_empties > 0 then
      full_restart ()
    else begin
      let boxes = Hashtbl.copy ps.Network.ps_boxes in
      List.iter
        (fun name ->
          match Network.box net name with
          | Some fresh -> Hashtbl.replace boxes name fresh
          | None -> ())
        dirty;
      let empty_marks : (int, unit) Hashtbl.t = Hashtbl.create 8 in
      let outcome =
        run_core ~eps ~max_revisions ~consistency:`Hull ~tracer
          ~engine:"incremental" ~boxes ~empty_marks
          ~seed:(Some (dirty_seed net dirty))
          net
      in
      if Hashtbl.length empty_marks > 0 then
        (* A dirty assignment introduced a conflict: the attempt's result
           is trajectory-dependent, so rerun from scratch, charging the
           aborted attempt's work to the restart. *)
        full_restart ~base_revisions:outcome.revisions ()
      else persist boxes empty_marks outcome
    end

let apply net outcome =
  List.iter (fun (name, d) -> Network.set_feasible net name d) outcome.feasible;
  List.iter (fun (id, s) -> Network.set_status net id s) outcome.statuses

let run_and_apply ?eps ?max_revisions ?consistency ?tracer net =
  let outcome = run ?eps ?max_revisions ?consistency ?tracer net in
  apply net outcome;
  outcome

let run_incremental_and_apply ?eps ?max_revisions ?tracer net =
  let outcome = run_incremental ?eps ?max_revisions ?tracer net in
  apply net outcome;
  outcome

let relaxed_feasible_group ?eps ?max_revisions ?consistency net ~target ~unpin =
  let snapshot = Network.copy net in
  Network.unassign snapshot target;
  List.iter (fun p -> Network.unassign snapshot p) unpin;
  let outcome = run ?eps ?max_revisions ?consistency snapshot in
  let d =
    try List.assoc target outcome.feasible
    with Not_found -> Network.initial_domain net target
  in
  (d, outcome.evaluations)

let relaxed_feasible ?eps ?max_revisions net name =
  relaxed_feasible_group ?eps ?max_revisions net ~target:name ~unpin:[]
