open Adpm_interval
open Adpm_expr
open Adpm_trace

type outcome = {
  feasible : (string * Domain.t) list;
  statuses : (int * Constr.status) list;
  evaluations : int;
  fixpoint : bool;
}

(* [narrowed] is always a sub-interval of [old_iv] (HC4 intersects with the
   input box); requeue only when the shrink is significant. *)
let significantly_narrower ~eps old_iv narrowed =
  let old_w = Interval.width old_iv and new_w = Interval.width narrowed in
  if new_w < old_w then begin
    if Float.is_finite old_w then old_w -. new_w > eps *. Float.max 1. old_w
    else true
  end
  else false

let numeric_props net =
  List.filter
    (fun name -> Domain.is_numeric (Network.initial_domain net name))
    (Network.prop_names net)

let initial_boxes net =
  let boxes : (string, Interval.t) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun name ->
      match Network.box net name with
      | Some iv -> Hashtbl.replace boxes name iv
      | None -> ())
    (numeric_props net);
  boxes

(* The HC4 fixpoint core, shared by hull propagation and shaving probes.
   Mutates [boxes]; returns the evaluation count, whether some constraint
   became certainly unsatisfiable on the box, and whether the revision
   budget was exhausted. Constraints found Empty are recorded in
   [empty_marks] when provided. When [waves] is given, it receives the
   revision count of each propagation wave in order: wave 0 is the initial
   queue of all constraints, wave n+1 the constraints requeued while
   processing wave n. *)
let fixpoint ?(eps = 1e-9) ~max_revisions ?empty_marks ?waves net boxes =
  let env name = Hashtbl.find boxes name in
  let queue = Queue.create () in
  let queued : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let enqueue c =
    if not (Hashtbl.mem queued c.Constr.id) then begin
      Hashtbl.replace queued c.Constr.id ();
      Queue.add c queue
    end
  in
  List.iter enqueue (Network.constraints net);
  let evaluations = ref 0 in
  let budget_hit = ref false in
  let any_empty = ref false in
  let wave_sizes = ref [] (* reversed *) in
  let this_wave = ref 0 in
  let wave_boundary = ref (Queue.length queue) in
  let continue_loop () =
    if Queue.is_empty queue then false
    else if !evaluations >= max_revisions then begin
      budget_hit := true;
      false
    end
    else true
  in
  while continue_loop () do
    if !wave_boundary = 0 then begin
      wave_sizes := !this_wave :: !wave_sizes;
      this_wave := 0;
      wave_boundary := Queue.length queue
    end;
    let c = Queue.pop queue in
    Hashtbl.remove queued c.Constr.id;
    decr wave_boundary;
    incr this_wave;
    incr evaluations;
    match Hc4.revise ~env (Constr.diff c) (Constr.target c) with
    | Hc4.Empty ->
      any_empty := true;
      (match empty_marks with
      | Some marks -> Hashtbl.replace marks c.Constr.id ()
      | None -> ())
    | Hc4.Narrowed bindings ->
      List.iter
        (fun (x, iv) ->
          let old_iv = Hashtbl.find boxes x in
          if not (Interval.equal old_iv iv) then begin
            Hashtbl.replace boxes x iv;
            if significantly_narrower ~eps old_iv iv then
              List.iter
                (fun c' -> if c'.Constr.id <> c.Constr.id then enqueue c')
                (Network.constraints_of_prop net x)
          end)
        bindings
  done;
  if !this_wave > 0 then wave_sizes := !this_wave :: !wave_sizes;
  (match waves with
  | Some cell -> cell := List.rev !wave_sizes
  | None -> ());
  (!evaluations, !any_empty, !budget_hit)

(* 3B-style bound shaving: try to prove the outermost [1/slices] slice of a
   variable's box infeasible by running the fixpoint on a copy; on success
   the bound moves inward. Each probe's revisions are charged to the
   caller's counter. *)
let shave_bounds ~eps ~max_revisions ~slices net boxes evaluations =
  let probe x slice =
    let copy = Hashtbl.copy boxes in
    Hashtbl.replace copy x slice;
    let evals, infeasible, _ =
      fixpoint ~eps ~max_revisions:(max_revisions / 4) net copy
    in
    evaluations := !evaluations + evals;
    infeasible
  in
  let shave_prop x =
    let changed = ref false in
    let attempt side =
      let iv = Hashtbl.find boxes x in
      let w = Interval.width iv in
      if Float.is_finite w && w > eps then begin
        let step = w /. float_of_int slices in
        let lo = Interval.lo iv and hi = Interval.hi iv in
        let slice, rest =
          match side with
          | `Low -> (Interval.make lo (lo +. step), Interval.make (lo +. step) hi)
          | `High -> (Interval.make (hi -. step) hi, Interval.make lo (hi -. step))
        in
        if probe x slice then begin
          Hashtbl.replace boxes x rest;
          changed := true
        end
      end
    in
    attempt `Low;
    attempt `High;
    !changed
  in
  let unbound =
    List.filter (fun x -> not (Network.is_bound net x)) (numeric_props net)
  in
  (* one shaving sweep per variable, repeated while it makes progress and
     the budget allows; bounded to avoid slow convergence *)
  let rec sweeps remaining =
    if remaining = 0 || !evaluations >= max_revisions then ()
    else begin
      let progress =
        List.fold_left
          (fun acc x ->
            if !evaluations >= max_revisions then acc
            else shave_prop x || acc)
          false unbound
      in
      if progress then begin
        (* re-contract with plain propagation after successful shaves *)
        let evals, _, _ = fixpoint ~eps ~max_revisions net boxes in
        evaluations := !evaluations + evals;
        sweeps (remaining - 1)
      end
    end
  in
  sweeps 3

let run ?(eps = 1e-9) ?(max_revisions = 10_000) ?(consistency = `Hull)
    ?(tracer = Tracer.null) net =
  if Tracer.active tracer then
    Tracer.emit tracer
      (Event.Propagation_started { constraints = Network.constraint_count net });
  let boxes = initial_boxes net in
  let empty_marks : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let waves = ref [] in
  let evals, _, budget_hit =
    fixpoint ~eps ~max_revisions ~empty_marks ~waves net boxes
  in
  let evaluations = ref evals in
  (match consistency with
  | `Hull -> ()
  | `Shave slices ->
    if slices < 2 then invalid_arg "Propagate.run: shaving needs >= 2 slices";
    shave_bounds ~eps ~max_revisions ~slices net boxes evaluations);
  let env name = Hashtbl.find boxes name in
  let statuses =
    List.map
      (fun c ->
        incr evaluations;
        let s =
          if Hashtbl.mem empty_marks c.Constr.id then Constr.Violated
          else Constr.status_on_box env c
        in
        (c.Constr.id, s))
      (Network.constraints net)
  in
  let feasible =
    List.map
      (fun name ->
        let initial = Network.initial_domain net name in
        let d =
          match Hashtbl.find_opt boxes name with
          | Some iv -> Domain.refine initial iv
          | None -> initial
        in
        (name, d))
      (numeric_props net)
  in
  if Tracer.active tracer then
    Tracer.emit tracer
      (Event.Propagation_finished
         {
           evaluations = !evaluations;
           waves = !waves;
           empties = Hashtbl.length empty_marks;
           fixpoint = not budget_hit;
         });
  { feasible; statuses; evaluations = !evaluations; fixpoint = not budget_hit }

let apply net outcome =
  List.iter (fun (name, d) -> Network.set_feasible net name d) outcome.feasible;
  List.iter (fun (id, s) -> Network.set_status net id s) outcome.statuses

let run_and_apply ?eps ?max_revisions ?consistency ?tracer net =
  let outcome = run ?eps ?max_revisions ?consistency ?tracer net in
  apply net outcome;
  outcome

let relaxed_feasible_group ?eps ?max_revisions ?consistency net ~target ~unpin =
  let snapshot = Network.copy net in
  Network.unassign snapshot target;
  List.iter (fun p -> Network.unassign snapshot p) unpin;
  let outcome = run ?eps ?max_revisions ?consistency snapshot in
  let d =
    try List.assoc target outcome.feasible
    with Not_found -> Network.initial_domain net target
  in
  (d, outcome.evaluations)

let relaxed_feasible ?eps ?max_revisions net name =
  relaxed_feasible_group ?eps ?max_revisions net ~target:name ~unpin:[]
