open Adpm_interval
open Adpm_expr
open Adpm_trace

type outcome = {
  feasible : (string * Domain.t) list;
  statuses : (int * Constr.status) list;
  evaluations : int;
  revisions : int;
  fixpoint : bool;
}

(* The working box store of a propagation run: struct-of-arrays float
   layout indexed by dense prop id, so the HC4 kernels revise it without
   boxing intervals. [mask] is true where the property has a box (numeric
   and not symbolically assigned); it never changes during a run. *)
type store = { lo : float array; hi : float array; mask : bool array }

let store_box st pid = Interval.make st.lo.(pid) st.hi.(pid)

(* [narrowed] is always a sub-interval of [old_iv] (HC4 intersects with the
   input box); requeue only when the shrink is significant. When both widths
   are infinite their difference says nothing ([inf < inf] is false even
   when a bound genuinely moved, e.g. [-inf,+inf] -> [0,+inf]), so compare
   the bounds directly. *)
let significantly_narrower_f ~eps ~olo ~ohi ~nlo ~nhi =
  let old_w = ohi -. olo and new_w = nhi -. nlo in
  if Float.is_finite old_w then
    new_w < old_w && old_w -. new_w > eps *. Float.max 1. old_w
  else if Float.is_finite new_w then true
  else nlo > olo || nhi < ohi

let numeric_props net =
  List.filter
    (fun name -> Domain.is_numeric (Network.initial_domain net name))
    (Network.prop_names net)

let initial_store net =
  let n = Network.prop_count net in
  let st =
    { lo = Array.make n 0.; hi = Array.make n 0.; mask = Array.make n false }
  in
  List.iter
    (fun name ->
      match Network.box net name with
      | Some iv ->
        let pid = Network.prop_id net name in
        st.lo.(pid) <- Interval.lo iv;
        st.hi.(pid) <- Interval.hi iv;
        st.mask.(pid) <- true
      | None -> ())
    (numeric_props net);
  st

let copy_store st =
  { lo = Array.copy st.lo; hi = Array.copy st.hi; mask = Array.copy st.mask }

(* The HC4 fixpoint core, shared by hull propagation and shaving probes.
   Mutates the store; returns the evaluation count, whether some constraint
   became certainly unsatisfiable on the box, and whether the revision
   budget was exhausted. Constraints found Empty are recorded in
   [empty_marks] when provided. When [waves] is given, it receives the
   revision count of each propagation wave in order: wave 0 is the initial
   queue — [seed] when given (the incremental engine's dirty-seeded
   worklist), every constraint otherwise — and wave n+1 the constraints
   requeued while processing wave n.

   The loop runs entirely on dense ids: constraints come from the cached
   id-indexed array, membership flags are plain bool arrays, and a revision
   is one [Hc4.revise_kernel] call against the float store followed by an
   in-place gate over the kernel's accumulator slots. *)
let fixpoint ?(eps = 0.) ~max_revisions ?empty_marks ?waves ?seed net st =
  let carr = Network.constraint_array net in
  let adj = Network.adjacency_by_id net in
  let n_con = Array.length carr in
  let queue = Queue.create () in
  let queued = Array.make (max 1 n_con) false in
  let enqueue cid =
    if not queued.(cid) then begin
      queued.(cid) <- true;
      Queue.add cid queue
    end
  in
  (match seed with
  | Some cs -> List.iter (fun c -> enqueue c.Constr.id) cs
  | None ->
    for cid = 0 to n_con - 1 do
      enqueue cid
    done);
  let evaluations = ref 0 in
  let budget_hit = ref false in
  let any_empty = ref false in
  let wave_sizes = ref [] (* reversed *) in
  let this_wave = ref 0 in
  let wave_boundary = ref (Queue.length queue) in
  let continue_loop () =
    if Queue.is_empty queue then false
    else if !evaluations >= max_revisions then begin
      budget_hit := true;
      false
    end
    else true
  in
  while continue_loop () do
    if !wave_boundary = 0 then begin
      wave_sizes := !this_wave :: !wave_sizes;
      this_wave := 0;
      wave_boundary := Queue.length queue
    end;
    let cid = Queue.pop queue in
    queued.(cid) <- false;
    decr wave_boundary;
    incr this_wave;
    incr evaluations;
    let k = Network.kernel net carr.(cid) in
    if not (Hc4.revise_kernel k ~lo:st.lo ~hi:st.hi) then begin
      any_empty := true;
      match empty_marks with
      | Some marks -> Hashtbl.replace marks cid ()
      | None -> ()
    end
    else begin
      let kv = k.Hc4.k_vars in
      let acc_lo = k.Hc4.k_acc_lo and acc_hi = k.Hc4.k_acc_hi in
      for j = 0 to Array.length kv - 1 do
        let pid = kv.(j) in
        let olo = st.lo.(pid) and ohi = st.hi.(pid) in
        let nlo = acc_lo.(j) and nhi = acc_hi.(j) in
        (* Sub-eps narrowings are discarded, not just left unqueued:
           applying them would make the final box depend on the revision
           trajectory, and the incremental engine restarts from the
           stored fixpoint along a different trajectory than a
           from-scratch run. Discarding keeps the stored boxes an exact
           fixpoint of this gated contraction, so both engines converge
           to bit-identical results. *)
        if
          (not (olo = nlo && ohi = nhi))
          && significantly_narrower_f ~eps ~olo ~ohi ~nlo ~nhi
        then begin
          st.lo.(pid) <- nlo;
          st.hi.(pid) <- nhi;
          (* The revised constraint requeues itself too: HC4-revise is
             not idempotent, and fair scheduling (iterate until no
             revise can change anything) is what makes the final boxes
             a true fixpoint — and therefore independent of revision
             order, which the incremental engine's bit-identical
             equivalence with from-scratch runs rests on. *)
          let near = adj.(pid) in
          for i = 0 to Array.length near - 1 do
            enqueue near.(i)
          done
        end
      done
    end
  done;
  if !this_wave > 0 then wave_sizes := !this_wave :: !wave_sizes;
  (match waves with
  | Some cell -> cell := List.rev !wave_sizes
  | None -> ());
  (!evaluations, !any_empty, !budget_hit)

(* 3B-style bound shaving: try to prove the outermost [1/slices] slice of a
   variable's box infeasible by running the fixpoint on a copy; on success
   the bound moves inward. Each probe's revisions are charged to the
   caller's counter. *)
let shave_bounds ~eps ~max_revisions ~slices net st evaluations =
  let probe pid slice =
    let cp = copy_store st in
    cp.lo.(pid) <- Interval.lo slice;
    cp.hi.(pid) <- Interval.hi slice;
    let evals, infeasible, _ =
      fixpoint ~eps ~max_revisions:(max_revisions / 4) net cp
    in
    evaluations := !evaluations + evals;
    infeasible
  in
  let shave_prop pid =
    let changed = ref false in
    let attempt side =
      let iv = store_box st pid in
      let w = Interval.width iv in
      if Float.is_finite w && w > eps then begin
        let step = w /. float_of_int slices in
        let lo = Interval.lo iv and hi = Interval.hi iv in
        let slice, rest =
          match side with
          | `Low -> (Interval.make lo (lo +. step), Interval.make (lo +. step) hi)
          | `High -> (Interval.make (hi -. step) hi, Interval.make lo (hi -. step))
        in
        if probe pid slice then begin
          st.lo.(pid) <- Interval.lo rest;
          st.hi.(pid) <- Interval.hi rest;
          changed := true
        end
      end
    in
    attempt `Low;
    attempt `High;
    !changed
  in
  let unbound =
    List.filter_map
      (fun x ->
        if Network.is_bound net x then None else Some (Network.prop_id net x))
      (numeric_props net)
  in
  (* one shaving sweep per variable, repeated while it makes progress and
     the budget allows; bounded to avoid slow convergence *)
  let rec sweeps remaining =
    if remaining = 0 || !evaluations >= max_revisions then ()
    else begin
      let progress =
        List.fold_left
          (fun acc pid ->
            if !evaluations >= max_revisions then acc
            else shave_prop pid || acc)
          false unbound
      in
      if progress then begin
        (* re-contract with plain propagation after successful shaves *)
        let evals, _, _ = fixpoint ~eps ~max_revisions net st in
        evaluations := !evaluations + evals;
        sweeps (remaining - 1)
      end
    end
  in
  sweeps 3

(* The final classification sweep shared by both engines: status of every
   constraint on the contracted box (one evaluation each) plus the feasible
   subspace of every numeric property. *)
let classify net st empty_marks revisions =
  let env name =
    let pid = Network.prop_id net name in
    if st.mask.(pid) then store_box st pid else raise (Expr.Unbound_variable name)
  in
  let evaluations = ref revisions in
  let statuses =
    List.map
      (fun c ->
        incr evaluations;
        let s =
          if Hashtbl.mem empty_marks c.Constr.id then Constr.Violated
          else Constr.status_on_box env c
        in
        (c.Constr.id, s))
      (Network.constraints net)
  in
  let feasible =
    List.map
      (fun name ->
        let initial = Network.initial_domain net name in
        let pid = Network.prop_id net name in
        let d =
          if st.mask.(pid) then Domain.refine initial (store_box st pid)
          else initial
        in
        (name, d))
      (numeric_props net)
  in
  (statuses, feasible, !evaluations)

(* [base_revisions] charges work done before this run to its counters: a
   full restart that replaces an aborted incremental attempt inherits the
   attempt's revisions, so reported costs reflect all HC4 work performed. *)
let run_core ~eps ~max_revisions ~consistency ~tracer ~engine ~st ~empty_marks
    ~seed ?(base_revisions = 0) net =
  if Tracer.active tracer then
    Tracer.emit tracer
      (Event.Propagation_started { constraints = Network.constraint_count net });
  let seeded =
    match seed with
    | Some cs -> List.length cs
    | None -> Network.constraint_count net
  in
  let waves = ref [] in
  let evals, _, budget_hit =
    fixpoint ~eps ~max_revisions ~empty_marks ~waves ?seed net st
  in
  let revisions = ref (base_revisions + evals) in
  (match consistency with
  | `Hull -> ()
  | `Shave slices ->
    if slices < 2 then invalid_arg "Propagate.run: shaving needs >= 2 slices";
    shave_bounds ~eps ~max_revisions ~slices net st revisions);
  let statuses, feasible, evaluations = classify net st empty_marks !revisions in
  if Tracer.active tracer then
    Tracer.emit tracer
      (Event.Propagation_finished
         {
           engine;
           seeded;
           evaluations;
           revisions = !revisions;
           waves = !waves;
           empties = Hashtbl.length empty_marks;
           fixpoint = not budget_hit;
         });
  { feasible; statuses; evaluations; revisions = !revisions; fixpoint = not budget_hit }

let run ?(eps = 0.) ?(max_revisions = 10_000) ?(consistency = `Hull)
    ?(tracer = Tracer.null) net =
  run_core ~eps ~max_revisions ~consistency ~tracer ~engine:"full"
    ~st:(initial_store net)
    ~empty_marks:(Hashtbl.create 8)
    ~seed:None net

let run_full = run

(* Constraints touching any dirty property, first-seen order, deduplicated. *)
let dirty_seed net dirty =
  let seen : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let acc =
    List.fold_left
      (fun acc name ->
        List.fold_left
          (fun acc c ->
            if Hashtbl.mem seen c.Constr.id then acc
            else begin
              Hashtbl.replace seen c.Constr.id ();
              c :: acc
            end)
          acc
          (Network.constraints_of_prop net name))
      [] dirty
  in
  List.rev acc

let run_incremental ?(eps = 0.) ?(max_revisions = 10_000)
    ?(tracer = Tracer.null) net =
  let persist st empty_marks outcome =
    Network.store_prop_state net
      {
        Network.ps_lo = st.lo;
        ps_hi = st.hi;
        ps_mask = st.mask;
        ps_empties = empty_marks;
      };
    Network.clear_dirty net;
    outcome
  in
  let full_restart ?(base_revisions = 0) () =
    let st = initial_store net in
    let empty_marks : (int, unit) Hashtbl.t = Hashtbl.create 8 in
    persist st empty_marks
      (run_core ~eps ~max_revisions ~consistency:`Hull ~tracer ~engine:"full"
         ~st ~empty_marks ~seed:None ~base_revisions net)
  in
  match Network.prop_state net with
  | None -> full_restart ()
  | Some ps when Array.length ps.Network.ps_lo <> Network.prop_count net ->
    (* stale shape (shouldn't happen: structural edits invalidate) *)
    full_restart ()
  | Some ps ->
    let dirty = Network.dirty_props net in
    (* Restarting from the previous fixpoint is sound only when every dirty
       property's fresh box lies inside the stored contracted box:
       propagation is a monotone contraction, so narrowing the start can
       only reproduce the same greatest fixpoint. Unassignments and
       assignments outside the stored box widen the start, in which case a
       stale contraction could wrongly survive — fall back to a
       from-scratch run. *)
    let narrowing_only =
      List.for_all
        (fun name ->
          match Network.box net name with
          | None -> true (* symbolic: propagation never sees it *)
          | Some fresh ->
            let pid = Network.prop_id net name in
            ps.Network.ps_mask.(pid)
            && ps.Network.ps_lo.(pid) <= Interval.lo fresh
            && Interval.hi fresh <= ps.Network.ps_hi.(pid))
        dirty
    in
    (* Empty constraints break the order-independence argument: a revise
       that returns Empty contributes no narrowings, so *when* a constraint
       turns empty along a trajectory decides which of its earlier
       narrowings survive in the final box. Emptiness is monotone downward
       (both the backward projections and the box shrink as the box
       shrinks, so a constraint empty on a box is empty on every sub-box),
       which yields a sound discipline: only restart incrementally from an
       empty-free stored state, and discard the attempt if it discovers
       any empty. An empty-free attempt then certifies the from-scratch
       run is empty-free too — a constraint empty anywhere along the full
       trajectory would be empty on the attempt's (tighter) fixpoint, and
       fair scheduling revises every constraint at its arguments' final
       values, so the attempt (or, for untouched constraints, the previous
       run) would have marked it. *)
    if (not narrowing_only) || Hashtbl.length ps.Network.ps_empties > 0 then
      full_restart ()
    else begin
      let st =
        {
          lo = Array.copy ps.Network.ps_lo;
          hi = Array.copy ps.Network.ps_hi;
          mask = Array.copy ps.Network.ps_mask;
        }
      in
      List.iter
        (fun name ->
          match Network.box net name with
          | Some fresh ->
            let pid = Network.prop_id net name in
            st.lo.(pid) <- Interval.lo fresh;
            st.hi.(pid) <- Interval.hi fresh
          | None -> ())
        dirty;
      let empty_marks : (int, unit) Hashtbl.t = Hashtbl.create 8 in
      let outcome =
        run_core ~eps ~max_revisions ~consistency:`Hull ~tracer
          ~engine:"incremental" ~st ~empty_marks
          ~seed:(Some (dirty_seed net dirty))
          net
      in
      if Hashtbl.length empty_marks > 0 then
        (* A dirty assignment introduced a conflict: the attempt's result
           is trajectory-dependent, so rerun from scratch, charging the
           aborted attempt's work to the restart. *)
        full_restart ~base_revisions:outcome.revisions ()
      else persist st empty_marks outcome
    end

let apply net outcome =
  List.iter (fun (name, d) -> Network.set_feasible net name d) outcome.feasible;
  List.iter (fun (id, s) -> Network.set_status net id s) outcome.statuses

let run_and_apply ?eps ?max_revisions ?consistency ?tracer net =
  let outcome = run ?eps ?max_revisions ?consistency ?tracer net in
  apply net outcome;
  outcome

let run_incremental_and_apply ?eps ?max_revisions ?tracer net =
  let outcome = run_incremental ?eps ?max_revisions ?tracer net in
  apply net outcome;
  outcome

let relaxed_feasible_group ?eps ?max_revisions ?consistency net ~target ~unpin =
  let snapshot = Network.copy net in
  Network.unassign snapshot target;
  List.iter (fun p -> Network.unassign snapshot p) unpin;
  let outcome = run ?eps ?max_revisions ?consistency snapshot in
  let d =
    try List.assoc target outcome.feasible
    with Not_found -> Network.initial_domain net target
  in
  (d, outcome.evaluations)

let relaxed_feasible ?eps ?max_revisions net name =
  relaxed_feasible_group ?eps ?max_revisions net ~target:name ~unpin:[]
