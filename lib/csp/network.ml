open Adpm_interval
open Adpm_expr

type prop = {
  p_name : string;
  p_id : int;
  p_initial : Domain.t;
  mutable p_assigned : Value.t option;
  mutable p_feasible : Domain.t;
  p_meta : (string * string) list;
}

type pstate = {
  ps_lo : float array;
  ps_hi : float array;
  ps_mask : bool array;
  ps_empties : (int, unit) Hashtbl.t;
}

type t = {
  props : (string, prop) Hashtbl.t;
  mutable prop_order : string list; (* reversed insertion order *)
  mutable by_id : prop array; (* dense, index = p_id *)
  constrs : (int, Constr.t) Hashtbl.t;
  mutable constr_order : int list; (* reversed *)
  adjacency : (string, int list) Hashtbl.t; (* reversed per prop *)
  statuses : (int, Constr.status) Hashtbl.t;
  declared_mono : (string, Monotone.direction) Hashtbl.t;
  (* key: "<cid>/<prop>" *)
  mutable next_cid : int;
  mutable n_rev : int;
  mutable n_struct : int;
  (* Structural revision: bumped only by add_prop/add_constraint. The
     derived views below are keyed on it rather than on [n_rev], which
     also moves on every assignment and status update. *)
  mutable c_list_cache : (int * Constr.t list) option;
  mutable c_arr_cache : (int * Constr.t array) option;
  mutable adj_cache : (int * int array array) option;
  kernels : (int, Hc4.kernel) Hashtbl.t;
  (* Compiled HC4 kernels per constraint id, built lazily. Kernels carry
     mutable scratch, so a network (and its copies, which share compiled
     kernels) must stay within one domain — which holds: every simulation
     run builds its own network. *)
  dirty : (string, unit) Hashtbl.t;
  mutable n_pstate : pstate option;
}

let create () =
  {
    props = Hashtbl.create 64;
    prop_order = [];
    by_id = [||];
    constrs = Hashtbl.create 64;
    constr_order = [];
    adjacency = Hashtbl.create 64;
    statuses = Hashtbl.create 64;
    declared_mono = Hashtbl.create 16;
    next_cid = 0;
    n_rev = 0;
    n_struct = 0;
    c_list_cache = None;
    c_arr_cache = None;
    adj_cache = None;
    kernels = Hashtbl.create 64;
    dirty = Hashtbl.create 16;
    n_pstate = None;
  }

let bump t = t.n_rev <- t.n_rev + 1

let bump_struct t =
  t.n_struct <- t.n_struct + 1;
  bump t

let revision t = t.n_rev
let mark_dirty t name = Hashtbl.replace t.dirty name ()
let dirty_props t = Hashtbl.fold (fun name () acc -> name :: acc) t.dirty []
let clear_dirty t = Hashtbl.reset t.dirty
let prop_state t = t.n_pstate

let store_prop_state t ps =
  t.n_pstate <- Some ps;
  bump t

let invalidate_prop_state t = t.n_pstate <- None

let copy_pstate ps =
  {
    ps_lo = Array.copy ps.ps_lo;
    ps_hi = Array.copy ps.ps_hi;
    ps_mask = Array.copy ps.ps_mask;
    ps_empties = Hashtbl.copy ps.ps_empties;
  }

let copy t =
  let fresh = create () in
  Hashtbl.iter
    (fun name p -> Hashtbl.replace fresh.props name { p with p_name = p.p_name })
    t.props;
  fresh.prop_order <- t.prop_order;
  fresh.by_id <-
    Array.map (fun p -> Hashtbl.find fresh.props p.p_name) t.by_id;
  Hashtbl.iter (fun id c -> Hashtbl.replace fresh.constrs id c) t.constrs;
  fresh.constr_order <- t.constr_order;
  Hashtbl.iter (fun name ids -> Hashtbl.replace fresh.adjacency name ids) t.adjacency;
  Hashtbl.iter (fun id s -> Hashtbl.replace fresh.statuses id s) t.statuses;
  Hashtbl.iter (fun k d -> Hashtbl.replace fresh.declared_mono k d) t.declared_mono;
  fresh.next_cid <- t.next_cid;
  fresh.n_rev <- t.n_rev;
  fresh.n_struct <- t.n_struct;
  (* compiled kernels are immutable programs + scratch: safe to share
     between sequentially-used copies, so only the table is copied *)
  Hashtbl.iter (fun id k -> Hashtbl.replace fresh.kernels id k) t.kernels;
  Hashtbl.iter (fun name () -> Hashtbl.replace fresh.dirty name ()) t.dirty;
  fresh.n_pstate <- Option.map copy_pstate t.n_pstate;
  fresh

let add_prop t ?(meta = []) name domain =
  if Hashtbl.mem t.props name then
    invalid_arg (Printf.sprintf "Network.add_prop: duplicate property %s" name);
  if Domain.is_empty domain then
    invalid_arg (Printf.sprintf "Network.add_prop: empty initial domain for %s" name);
  let p =
    { p_name = name; p_id = Array.length t.by_id; p_initial = domain;
      p_assigned = None; p_feasible = domain; p_meta = meta }
  in
  Hashtbl.replace t.props name p;
  t.prop_order <- name :: t.prop_order;
  t.by_id <- Array.append t.by_id [| p |];
  (* structural change: any persisted propagation state is stale *)
  invalidate_prop_state t;
  bump_struct t

let prop_names t = List.rev t.prop_order

let find_prop t name =
  match Hashtbl.find_opt t.props name with
  | Some p -> p
  | None ->
    invalid_arg (Printf.sprintf "Network.find_prop: unknown property '%s'" name)

let mem_prop t name = Hashtbl.mem t.props name
let prop_count t = Array.length t.by_id
let prop_by_id t id = t.by_id.(id)
let prop_id t name = (find_prop t name).p_id
let initial_domain t name = (find_prop t name).p_initial
let feasible t name = (find_prop t name).p_feasible
let set_feasible t name d =
  (find_prop t name).p_feasible <- d;
  bump t

let reset_feasible t =
  Hashtbl.iter (fun _ p -> p.p_feasible <- p.p_initial) t.props;
  bump t

let assign t name value =
  let p = find_prop t name in
  (match (value, p.p_initial) with
  | Value.Num x, (Domain.Continuous _ | Domain.Finite _) ->
    (match Domain.hull p.p_initial with
    | Some iv when Interval.mem x iv -> ()
    | Some _ | None ->
      invalid_arg
        (Printf.sprintf "Network.assign: %g outside initial range of %s" x name))
  | Value.Sym s, Domain.Symbolic _ ->
    if not (Domain.mem_sym s p.p_initial) then
      invalid_arg
        (Printf.sprintf "Network.assign: %s outside initial range of %s" s name)
  | Value.Num _, (Domain.Symbolic _ | Domain.Empty)
  | Value.Sym _, (Domain.Continuous _ | Domain.Finite _ | Domain.Empty) ->
    invalid_arg (Printf.sprintf "Network.assign: kind mismatch for %s" name));
  p.p_assigned <- Some value;
  mark_dirty t name;
  bump t

let unassign t name =
  (find_prop t name).p_assigned <- None;
  mark_dirty t name;
  bump t
let assigned t name = (find_prop t name).p_assigned

let assigned_num t name =
  match assigned t name with
  | Some (Value.Num x) -> Some x
  | Some (Value.Sym _) | None -> None

let is_bound t name = assigned t name <> None

let numeric_props t =
  List.filter (fun n -> Domain.is_numeric (initial_domain t n)) (prop_names t)

let all_numeric_bound t = List.for_all (fun n -> is_bound t n) (numeric_props t)

let box t name =
  let p = find_prop t name in
  match p.p_assigned with
  | Some (Value.Num x) -> Some (Interval.of_point x)
  | Some (Value.Sym _) -> None
  | None -> Domain.hull p.p_initial

let env_box t name =
  match box t name with
  | Some iv -> iv
  | None -> raise (Expr.Unbound_variable name)

let env_point t name =
  match assigned_num t name with
  | Some x -> x
  | None -> raise (Expr.Unbound_variable name)

let add_constraint t ~name lhs rel rhs =
  let c = Constr.make ~id:t.next_cid ~name lhs rel rhs in
  List.iter
    (fun arg ->
      (match Hashtbl.find_opt t.props arg with
      | None ->
        invalid_arg
          (Printf.sprintf "Network.add_constraint: unknown property %s in %s" arg name)
      | Some p ->
        if not (Domain.is_numeric p.p_initial) then
          invalid_arg
            (Printf.sprintf
               "Network.add_constraint: symbolic property %s in %s" arg name));
      let prev = Option.value ~default:[] (Hashtbl.find_opt t.adjacency arg) in
      Hashtbl.replace t.adjacency arg (c.Constr.id :: prev))
    (Constr.args c);
  Hashtbl.replace t.constrs c.Constr.id c;
  t.constr_order <- c.Constr.id :: t.constr_order;
  t.next_cid <- t.next_cid + 1;
  invalidate_prop_state t;
  bump_struct t;
  c

let find_constraint t id =
  match Hashtbl.find_opt t.constrs id with
  | Some c -> c
  | None ->
    invalid_arg (Printf.sprintf "Network.find_constraint: unknown constraint id %d" id)

let constraints t =
  match t.c_list_cache with
  | Some (r, cs) when r = t.n_struct -> cs
  | _ ->
    let cs = List.rev_map (fun id -> find_constraint t id) t.constr_order in
    t.c_list_cache <- Some (t.n_struct, cs);
    cs

let constraint_array t =
  match t.c_arr_cache with
  | Some (r, arr) when r = t.n_struct -> arr
  | _ ->
    (* constraint ids are dense (allocated 0,1,2,.. and never removed), so
       the array is indexed directly by id *)
    let arr = Array.of_list (constraints t) in
    Array.iteri
      (fun i c -> assert (c.Constr.id = i))
      arr;
    t.c_arr_cache <- Some (t.n_struct, arr);
    arr

let constraint_count t = Hashtbl.length t.constrs

let constraints_of_prop t name =
  match Hashtbl.find_opt t.adjacency name with
  | None ->
    if not (Hashtbl.mem t.props name) then
      invalid_arg
        (Printf.sprintf "Network.constraints_of_prop: unknown property '%s'" name);
    []
  | Some ids -> List.rev_map (fun id -> find_constraint t id) ids

let adjacency_by_id t =
  match t.adj_cache with
  | Some (r, arr) when r = t.n_struct -> arr
  | _ ->
    let arr =
      Array.map
        (fun p ->
          match Hashtbl.find_opt t.adjacency p.p_name with
          | None -> [||]
          | Some ids ->
            (* stored reversed; emit insertion order *)
            let a = Array.of_list ids in
            let n = Array.length a in
            Array.init n (fun i -> a.(n - 1 - i)))
        t.by_id
    in
    t.adj_cache <- Some (t.n_struct, arr);
    arr

let kernel t c =
  let id = c.Constr.id in
  match Hashtbl.find_opt t.kernels id with
  | Some k -> k
  | None ->
    let k =
      Hc4.compile
        ~var_id:(fun x -> (find_prop t x).p_id)
        (Constr.diff c) ~target:(Constr.target c)
    in
    Hashtbl.replace t.kernels id k;
    k

let status t id =
  match Hashtbl.find_opt t.statuses id with
  | Some s -> s
  | None -> Constr.Consistent

let set_status t id s =
  Hashtbl.replace t.statuses id s;
  bump t

let reset_statuses t =
  Hashtbl.reset t.statuses;
  bump t

let violated t =
  List.filter (fun c -> status t c.Constr.id = Constr.Violated) (constraints t)

let beta t name = List.length (constraints_of_prop t name)

let alpha t name =
  List.length
    (List.filter
       (fun c -> status t c.Constr.id = Constr.Violated)
       (constraints_of_prop t name))

let mono_key cid prop = Printf.sprintf "%d/%s" cid prop

let declare_monotone t cid prop dir =
  Hashtbl.replace t.declared_mono (mono_key cid prop) dir;
  bump t

let diff_direction t c prop =
  match Hashtbl.find_opt t.declared_mono (mono_key c.Constr.id prop) with
  | Some dir -> dir
  | None ->
    let env name =
      match Domain.hull (initial_domain t name) with
      | Some iv -> iv
      | None -> raise Not_found
    in
    (try Monotone.direction ~env (Constr.diff c) prop
     with Not_found -> Monotone.Unknown)

let helps_direction t c prop =
  let dir = diff_direction t c prop in
  match (c.Constr.rel, dir) with
  | _, (Monotone.Constant | Monotone.Unknown) -> `None
  | Constr.Le, Monotone.Increasing -> `Down (* shrinking lhs-rhs helps *)
  | Constr.Le, Monotone.Decreasing -> `Up
  | Constr.Ge, Monotone.Increasing -> `Up
  | Constr.Ge, Monotone.Decreasing -> `Down
  | Constr.Eq, (Monotone.Increasing | Monotone.Decreasing) -> `None

let check_constraint_point t c = Constr.check_point (env_point t) c

let solved t =
  all_numeric_bound t
  && List.for_all (fun c -> check_constraint_point t c) (constraints t)

let reset_assignments t =
  Hashtbl.iter (fun _ p -> p.p_assigned <- None) t.props;
  invalidate_prop_state t;
  clear_dirty t;
  bump t

let pp_summary ppf t =
  Format.fprintf ppf "network: %d properties, %d constraints, %d violated"
    (Hashtbl.length t.props) (constraint_count t) (List.length (violated t))
