open Adpm_interval
open Adpm_expr

type prop = {
  p_name : string;
  p_initial : Domain.t;
  mutable p_assigned : Value.t option;
  mutable p_feasible : Domain.t;
  p_meta : (string * string) list;
}

type pstate = {
  ps_boxes : (string, Interval.t) Hashtbl.t;
  ps_empties : (int, unit) Hashtbl.t;
}

type t = {
  props : (string, prop) Hashtbl.t;
  mutable prop_order : string list; (* reversed insertion order *)
  constrs : (int, Constr.t) Hashtbl.t;
  mutable constr_order : int list; (* reversed *)
  adjacency : (string, int list) Hashtbl.t;
  statuses : (int, Constr.status) Hashtbl.t;
  declared_mono : (string, Monotone.direction) Hashtbl.t;
  (* key: "<cid>/<prop>" *)
  mutable next_cid : int;
  mutable n_rev : int;
  dirty : (string, unit) Hashtbl.t;
  mutable n_pstate : pstate option;
}

let create () =
  {
    props = Hashtbl.create 64;
    prop_order = [];
    constrs = Hashtbl.create 64;
    constr_order = [];
    adjacency = Hashtbl.create 64;
    statuses = Hashtbl.create 64;
    declared_mono = Hashtbl.create 16;
    next_cid = 0;
    n_rev = 0;
    dirty = Hashtbl.create 16;
    n_pstate = None;
  }

let bump t = t.n_rev <- t.n_rev + 1
let revision t = t.n_rev
let mark_dirty t name = Hashtbl.replace t.dirty name ()
let dirty_props t = Hashtbl.fold (fun name () acc -> name :: acc) t.dirty []
let clear_dirty t = Hashtbl.reset t.dirty
let prop_state t = t.n_pstate

let store_prop_state t ps =
  t.n_pstate <- Some ps;
  bump t

let invalidate_prop_state t = t.n_pstate <- None

let copy_pstate ps =
  { ps_boxes = Hashtbl.copy ps.ps_boxes; ps_empties = Hashtbl.copy ps.ps_empties }

let copy t =
  let fresh = create () in
  Hashtbl.iter
    (fun name p -> Hashtbl.replace fresh.props name { p with p_name = p.p_name })
    t.props;
  fresh.prop_order <- t.prop_order;
  Hashtbl.iter (fun id c -> Hashtbl.replace fresh.constrs id c) t.constrs;
  fresh.constr_order <- t.constr_order;
  Hashtbl.iter (fun name ids -> Hashtbl.replace fresh.adjacency name ids) t.adjacency;
  Hashtbl.iter (fun id s -> Hashtbl.replace fresh.statuses id s) t.statuses;
  Hashtbl.iter (fun k d -> Hashtbl.replace fresh.declared_mono k d) t.declared_mono;
  fresh.next_cid <- t.next_cid;
  fresh.n_rev <- t.n_rev;
  Hashtbl.iter (fun name () -> Hashtbl.replace fresh.dirty name ()) t.dirty;
  fresh.n_pstate <- Option.map copy_pstate t.n_pstate;
  fresh

let add_prop t ?(meta = []) name domain =
  if Hashtbl.mem t.props name then
    invalid_arg (Printf.sprintf "Network.add_prop: duplicate property %s" name);
  if Domain.is_empty domain then
    invalid_arg (Printf.sprintf "Network.add_prop: empty initial domain for %s" name);
  Hashtbl.replace t.props name
    { p_name = name; p_initial = domain; p_assigned = None; p_feasible = domain;
      p_meta = meta };
  t.prop_order <- name :: t.prop_order;
  (* structural change: any persisted propagation state is stale *)
  invalidate_prop_state t;
  bump t

let prop_names t = List.rev t.prop_order
let find_prop t name = Hashtbl.find t.props name
let mem_prop t name = Hashtbl.mem t.props name
let initial_domain t name = (find_prop t name).p_initial
let feasible t name = (find_prop t name).p_feasible
let set_feasible t name d =
  (find_prop t name).p_feasible <- d;
  bump t

let reset_feasible t =
  Hashtbl.iter (fun _ p -> p.p_feasible <- p.p_initial) t.props;
  bump t

let assign t name value =
  let p = find_prop t name in
  (match (value, p.p_initial) with
  | Value.Num x, (Domain.Continuous _ | Domain.Finite _) ->
    (match Domain.hull p.p_initial with
    | Some iv when Interval.mem x iv -> ()
    | Some _ | None ->
      invalid_arg
        (Printf.sprintf "Network.assign: %g outside initial range of %s" x name))
  | Value.Sym s, Domain.Symbolic _ ->
    if not (Domain.mem_sym s p.p_initial) then
      invalid_arg
        (Printf.sprintf "Network.assign: %s outside initial range of %s" s name)
  | Value.Num _, (Domain.Symbolic _ | Domain.Empty)
  | Value.Sym _, (Domain.Continuous _ | Domain.Finite _ | Domain.Empty) ->
    invalid_arg (Printf.sprintf "Network.assign: kind mismatch for %s" name));
  p.p_assigned <- Some value;
  mark_dirty t name;
  bump t

let unassign t name =
  (find_prop t name).p_assigned <- None;
  mark_dirty t name;
  bump t
let assigned t name = (find_prop t name).p_assigned

let assigned_num t name =
  match assigned t name with
  | Some (Value.Num x) -> Some x
  | Some (Value.Sym _) | None -> None

let is_bound t name = assigned t name <> None

let numeric_props t =
  List.filter (fun n -> Domain.is_numeric (initial_domain t n)) (prop_names t)

let all_numeric_bound t = List.for_all (fun n -> is_bound t n) (numeric_props t)

let box t name =
  let p = find_prop t name in
  match p.p_assigned with
  | Some (Value.Num x) -> Some (Interval.of_point x)
  | Some (Value.Sym _) -> None
  | None -> Domain.hull p.p_initial

let env_box t name =
  match box t name with Some iv -> iv | None -> raise Not_found

let env_point t name =
  match assigned_num t name with
  | Some x -> x
  | None -> raise (Expr.Unbound_variable name)

let add_constraint t ~name lhs rel rhs =
  let c = Constr.make ~id:t.next_cid ~name lhs rel rhs in
  List.iter
    (fun arg ->
      (match Hashtbl.find_opt t.props arg with
      | None ->
        invalid_arg
          (Printf.sprintf "Network.add_constraint: unknown property %s in %s" arg name)
      | Some p ->
        if not (Domain.is_numeric p.p_initial) then
          invalid_arg
            (Printf.sprintf
               "Network.add_constraint: symbolic property %s in %s" arg name));
      let prev = try Hashtbl.find t.adjacency arg with Not_found -> [] in
      Hashtbl.replace t.adjacency arg (c.Constr.id :: prev))
    (Constr.args c);
  Hashtbl.replace t.constrs c.Constr.id c;
  t.constr_order <- c.Constr.id :: t.constr_order;
  t.next_cid <- t.next_cid + 1;
  invalidate_prop_state t;
  bump t;
  c

let constraints t =
  List.rev_map (fun id -> Hashtbl.find t.constrs id) t.constr_order

let find_constraint t id = Hashtbl.find t.constrs id
let constraint_count t = Hashtbl.length t.constrs

let constraints_of_prop t name =
  match Hashtbl.find_opt t.adjacency name with
  | None -> []
  | Some ids -> List.rev_map (fun id -> Hashtbl.find t.constrs id) ids

let status t id =
  try Hashtbl.find t.statuses id with Not_found -> Constr.Consistent

let set_status t id s =
  Hashtbl.replace t.statuses id s;
  bump t

let reset_statuses t =
  Hashtbl.reset t.statuses;
  bump t

let violated t =
  List.filter (fun c -> status t c.Constr.id = Constr.Violated) (constraints t)

let beta t name = List.length (constraints_of_prop t name)

let alpha t name =
  List.length
    (List.filter
       (fun c -> status t c.Constr.id = Constr.Violated)
       (constraints_of_prop t name))

let mono_key cid prop = Printf.sprintf "%d/%s" cid prop

let declare_monotone t cid prop dir =
  Hashtbl.replace t.declared_mono (mono_key cid prop) dir;
  bump t

let diff_direction t c prop =
  match Hashtbl.find_opt t.declared_mono (mono_key c.Constr.id prop) with
  | Some dir -> dir
  | None ->
    let env name =
      match Domain.hull (initial_domain t name) with
      | Some iv -> iv
      | None -> raise Not_found
    in
    (try Monotone.direction ~env (Constr.diff c) prop
     with Not_found -> Monotone.Unknown)

let helps_direction t c prop =
  let dir = diff_direction t c prop in
  match (c.Constr.rel, dir) with
  | _, (Monotone.Constant | Monotone.Unknown) -> `None
  | Constr.Le, Monotone.Increasing -> `Down (* shrinking lhs-rhs helps *)
  | Constr.Le, Monotone.Decreasing -> `Up
  | Constr.Ge, Monotone.Increasing -> `Up
  | Constr.Ge, Monotone.Decreasing -> `Down
  | Constr.Eq, (Monotone.Increasing | Monotone.Decreasing) -> `None

let check_constraint_point t c = Constr.check_point (env_point t) c

let solved t =
  all_numeric_bound t
  && List.for_all (fun c -> check_constraint_point t c) (constraints t)

let reset_assignments t =
  Hashtbl.iter (fun _ p -> p.p_assigned <- None) t.props;
  invalidate_prop_state t;
  clear_dirty t;
  bump t

let pp_summary ppf t =
  Format.fprintf ppf "network: %d properties, %d constraints, %d violated"
    (Hashtbl.length t.props) (constraint_count t) (List.length (violated t))
