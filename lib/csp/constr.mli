(** Design constraints.

    A design constraint (Section 2.1, equation 1) is a relation between two
    arithmetic expressions of design properties. Its status with respect to
    the current argument values is three-valued: {e satisfied} when the
    relation holds for every combination of values in the current domains,
    {e violated} when it fails for every combination, {e consistent}
    otherwise. *)

open Adpm_interval
open Adpm_expr

type rel = Le | Ge | Eq

type status = Satisfied | Violated | Consistent

type t = private {
  id : int;  (** unique within a network *)
  name : string;
  lhs : Expr.t;
  rel : rel;
  rhs : Expr.t;
  c_args : string list;  (** memoised {!args}; use the accessor *)
  c_diff : Expr.t;  (** memoised {!diff}; use the accessor *)
}

val make : id:int -> name:string -> Expr.t -> rel -> Expr.t -> t

val args : t -> string list
(** Distinct properties mentioned, left-to-right. Memoised at
    construction; the list is shared, never rebuilt. *)

val arity : t -> int

val diff : t -> Expr.t
(** [lhs - rhs]: the normalised form used for propagation. Memoised at
    construction so hot loops don't re-allocate the [Sub] node. *)

val target : ?eps:float -> t -> Interval.t
(** Interval that [diff] must lie in for the constraint to hold.
    [eps] (default [1e-9]) widens the target to absorb rounding. *)

val check_point : ?eps:float -> (string -> float) -> t -> bool
(** Ground truth at a full assignment. *)

val status_on_box : ?eps:float -> (string -> Interval.t) -> t -> status
(** Status over a box of current argument values. A box on which the
    expressions are undefined everywhere yields [Violated]. *)

val pp_rel : Format.formatter -> rel -> unit
val pp_status : Format.formatter -> status -> unit
val status_to_string : status -> string
val pp : Format.formatter -> t -> unit
val to_string : t -> string
