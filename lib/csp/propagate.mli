(** Constraint propagation to fixpoint.

    Implements the Design Constraint Manager's propagation step
    (Section 2.2): starting from the current argument values — the assigned
    point for bound properties, the initial range E_i for unbound ones —
    HC4-revise every constraint until no domain changes, then classify every
    constraint's status. The result is the feasible subspace v_F(a_i) of
    every property plus the status of every constraint.

    Every HC4 revision and every final status classification counts as one
    "constraint evaluation", the cost unit of the paper's evaluation
    (each corresponds to a run of a constraint-based system or verification
    tool in the real environment).

    Two consistency levels are available: hull consistency (the default,
    one HC4 fixpoint) and a stronger 3B-style {e bound shaving} that tries
    to refute the outermost slices of each unbound variable's box with
    probe propagations — narrower feasible subspaces at a higher
    evaluation cost. *)

open Adpm_interval

(** @see <../trace/tracer.mli> the emit-path contract. *)

type outcome = {
  feasible : (string * Domain.t) list;
      (** Feasible subspace per numeric property. *)
  statuses : (int * Constr.status) list;  (** Per constraint id. *)
  evaluations : int;  (** Constraint evaluations performed. *)
  fixpoint : bool;  (** False when stopped by the revision budget. *)
}

val run :
  ?eps:float ->
  ?max_revisions:int ->
  ?consistency:[ `Hull | `Shave of int ] ->
  ?tracer:Adpm_trace.Tracer.t ->
  Network.t ->
  outcome
(** Pure with respect to the network: reads assignments and initial domains,
    writes nothing. [max_revisions] (default 10_000) bounds non-terminating
    slow convergence; [eps] is the relative narrowing threshold below which
    a domain change does not requeue neighbours (default 1e-9).
    [consistency] defaults to [`Hull]; [`Shave n] additionally shaves each
    unbound variable's bounds in [1/n]-width slices (n >= 2).

    When an active [tracer] is supplied, one [Propagation_started] /
    [Propagation_finished] event pair is emitted per call; the finish event
    carries per-wave revision counts of the primary HC4 fixpoint (shaving
    probes are charged to the evaluation total but not waved). *)

val apply : Network.t -> outcome -> unit
(** Store feasible subspaces and statuses into the network. *)

val run_and_apply :
  ?eps:float ->
  ?max_revisions:int ->
  ?consistency:[ `Hull | `Shave of int ] ->
  ?tracer:Adpm_trace.Tracer.t ->
  Network.t ->
  outcome

val relaxed_feasible :
  ?eps:float -> ?max_revisions:int -> Network.t -> string -> Domain.t * int
(** [relaxed_feasible net p]: the feasible subspace of [p] computed with
    [p]'s own assignment ignored (all other assignments kept) — the
    "constraint margin" trade-off information the browser of Fig. 2 shows
    for bound properties and that conflict resolution exploits. Returns the
    domain and the number of constraint evaluations spent. *)

val relaxed_feasible_group :
  ?eps:float ->
  ?max_revisions:int ->
  ?consistency:[ `Hull | `Shave of int ] ->
  Network.t ->
  target:string ->
  unpin:string list ->
  Domain.t * int
(** As {!relaxed_feasible} for [target], but additionally ignoring the
    assignments of the [unpin] properties — used when [target] is a design
    parameter whose dependent performance properties must be free to move
    with it. *)
