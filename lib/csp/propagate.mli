(** Constraint propagation to fixpoint.

    Implements the Design Constraint Manager's propagation step
    (Section 2.2): starting from the current argument values — the assigned
    point for bound properties, the initial range E_i for unbound ones —
    HC4-revise every constraint until no domain changes, then classify every
    constraint's status. The result is the feasible subspace v_F(a_i) of
    every property plus the status of every constraint.

    Every HC4 revision and every final status classification counts as one
    "constraint evaluation", the cost unit of the paper's evaluation
    (each corresponds to a run of a constraint-based system or verification
    tool in the real environment).

    Two consistency levels are available: hull consistency (the default,
    one HC4 fixpoint) and a stronger 3B-style {e bound shaving} that tries
    to refute the outermost slices of each unbound variable's box with
    probe propagations — narrower feasible subspaces at a higher
    evaluation cost. *)

open Adpm_interval

(** @see <../trace/tracer.mli> the emit-path contract. *)

type outcome = {
  feasible : (string * Domain.t) list;
      (** Feasible subspace per numeric property. *)
  statuses : (int * Constr.status) list;  (** Per constraint id. *)
  evaluations : int;  (** Constraint evaluations performed. *)
  revisions : int;
      (** HC4 revisions performed (the evaluation total minus the final
          status sweep) — the implementation work the incremental engine
          reduces, reported separately from the paper's evaluation cost
          unit. *)
  fixpoint : bool;  (** False when stopped by the revision budget. *)
}

val run :
  ?eps:float ->
  ?max_revisions:int ->
  ?consistency:[ `Hull | `Shave of int ] ->
  ?tracer:Adpm_trace.Tracer.t ->
  Network.t ->
  outcome
(** Pure with respect to the network: reads assignments and initial domains,
    writes nothing. [max_revisions] (default 10_000) bounds non-terminating
    slow convergence; [eps] is the relative narrowing threshold below which
    a projection is discarded — neither applied nor requeued (default 0:
    HC4's built-in magnitude-relative projection slack already quantises
    narrowings and guarantees termination, and a zero threshold keeps the
    gated revision operator monotone, which makes the fixpoint independent
    of revision order — the property the incremental engine's bit-identical
    equivalence with from-scratch runs rests on).
    [consistency] defaults to [`Hull]; [`Shave n] additionally shaves each
    unbound variable's bounds in [1/n]-width slices (n >= 2).

    When an active [tracer] is supplied, one [Propagation_started] /
    [Propagation_finished] event pair is emitted per call; the finish event
    carries per-wave revision counts of the primary HC4 fixpoint (shaving
    probes are charged to the evaluation total but not waved). *)

val run_full :
  ?eps:float ->
  ?max_revisions:int ->
  ?consistency:[ `Hull | `Shave of int ] ->
  ?tracer:Adpm_trace.Tracer.t ->
  Network.t ->
  outcome
(** Alias of {!run}: from-scratch propagation seeding the worklist with
    every constraint. The reference point the incremental engine is checked
    against. *)

val run_incremental :
  ?eps:float ->
  ?max_revisions:int ->
  ?tracer:Adpm_trace.Tracer.t ->
  Network.t ->
  outcome
(** Incremental propagation (hull consistency only). Restarts from the box
    store persisted in the network by the previous call
    ({!Network.prop_state}), seeding the worklist with only the constraints
    of properties whose assignment changed since then
    ({!Network.dirty_props}).

    Soundness: propagation is a fair chaotic iteration of monotone
    contracting revision operators, so the restart converges to the same
    (bit-identical) fixpoint as a from-scratch run — provided the restart
    only {e narrows} the start and no constraint turns empty. Concretely,
    the incremental path is used only when every dirty property's fresh
    box lies inside its stored contracted box and the stored state carries
    no empty marks; if the seeded run then discovers an empty constraint
    (a conflicting assignment), the attempt is discarded and a full run
    replaces it, inheriting the attempt's revision count. On any widening
    (unassignment, assignment outside the stored box), on structural
    changes (which invalidate the stored state), and on the first call, it
    likewise falls back to a full from-scratch run. Either way the
    contracted store is persisted back into the network and the dirty set
    cleared; feasible subspaces and statuses are {e not} applied (see
    {!apply}).

    The [evaluations] total still charges one unit per HC4 revision plus
    the full status sweep, so the paper's cost model is per-engine;
    [revisions] is where the saving shows. *)

val apply : Network.t -> outcome -> unit
(** Store feasible subspaces and statuses into the network. *)

val run_and_apply :
  ?eps:float ->
  ?max_revisions:int ->
  ?consistency:[ `Hull | `Shave of int ] ->
  ?tracer:Adpm_trace.Tracer.t ->
  Network.t ->
  outcome

val run_incremental_and_apply :
  ?eps:float ->
  ?max_revisions:int ->
  ?tracer:Adpm_trace.Tracer.t ->
  Network.t ->
  outcome

val relaxed_feasible :
  ?eps:float -> ?max_revisions:int -> Network.t -> string -> Domain.t * int
(** [relaxed_feasible net p]: the feasible subspace of [p] computed with
    [p]'s own assignment ignored (all other assignments kept) — the
    "constraint margin" trade-off information the browser of Fig. 2 shows
    for bound properties and that conflict resolution exploits. Returns the
    domain and the number of constraint evaluations spent. *)

val relaxed_feasible_group :
  ?eps:float ->
  ?max_revisions:int ->
  ?consistency:[ `Hull | `Shave of int ] ->
  Network.t ->
  target:string ->
  unpin:string list ->
  Domain.t * int
(** As {!relaxed_feasible} for [target], but additionally ignoring the
    assignments of the [unpin] properties — used when [target] is a design
    parameter whose dependent performance properties must be free to move
    with it. *)
