(** The network of constraints C_n.

    Holds every design property (with its initial range E_i, current
    assignment, and feasible subspace v_F from the last propagation) and
    every design constraint, plus the property-to-constraint adjacency used
    by the heuristic-support computations (alpha_i, beta_i) of Section 2.3.

    The network is a mutable store updated by the design process manager;
    {!copy} produces an independent snapshot so many simulations can share
    one scenario definition. *)

open Adpm_interval
open Adpm_expr

type prop = private {
  p_name : string;
  p_id : int;  (** dense index (insertion order), keys the flat stores *)
  p_initial : Domain.t;
  mutable p_assigned : Value.t option;
  mutable p_feasible : Domain.t;
  p_meta : (string * string) list;
}

type pstate = {
  ps_lo : float array;  (** lower bounds, indexed by dense prop id *)
  ps_hi : float array;  (** upper bounds, indexed by dense prop id *)
  ps_mask : bool array;
      (** [true] where the property has a box (numeric, not symbolic) *)
  ps_empties : (int, unit) Hashtbl.t;
      (** constraints proven unsatisfiable during that fixpoint *)
}
(** Persistent propagation state: the contracted box store kept across
    design operations so the incremental engine can restart from the
    previous fixpoint instead of the initial ranges. Struct-of-arrays
    float layout so HC4 kernels revise it without allocating. *)

type t

val create : unit -> t
val copy : t -> t

(** {1 Revision tracking}

    The revision counter increments on every mutation (assignments,
    structural additions, status and feasible updates), so memoised
    heuristic layers can key their caches on it. The dirty set records
    which properties changed assignment since the last time a propagation
    engine consumed it. *)

val revision : t -> int

val dirty_props : t -> string list
(** Properties assigned or unassigned since the last {!clear_dirty}
    (unspecified order). *)

val clear_dirty : t -> unit

val prop_state : t -> pstate option
(** The box store persisted by the last propagation run, if still valid.
    Structural changes ({!add_prop}, {!add_constraint},
    {!reset_assignments}) invalidate it. *)

val store_prop_state : t -> pstate -> unit
val invalidate_prop_state : t -> unit

(** {1 Properties} *)

val add_prop : t -> ?meta:(string * string) list -> string -> Domain.t -> unit
(** @raise Invalid_argument on duplicate names or an [Empty] initial
    domain. *)

val prop_names : t -> string list
(** Insertion order. *)

val find_prop : t -> string -> prop
(** @raise Invalid_argument for unknown names, naming the property. *)

val mem_prop : t -> string -> bool

val prop_count : t -> int
(** Number of properties; dense prop ids range over [0 .. prop_count-1]. *)

val prop_by_id : t -> int -> prop

val prop_id : t -> string -> int
(** @raise Invalid_argument for unknown names. *)

val initial_domain : t -> string -> Domain.t
val feasible : t -> string -> Domain.t
val set_feasible : t -> string -> Domain.t -> unit
val reset_feasible : t -> unit
(** Restore every feasible subspace to the initial range. *)

val assign : t -> string -> Value.t -> unit
(** Bind a property. Numeric assignments must be numeric-domain properties
    and symbolic assignments symbolic ones; the value need not lie inside
    the current feasible subspace (designers may choose infeasible values —
    that is what creates violations) but must lie in the initial range E_i.
    @raise Invalid_argument on kind mismatch or out-of-range values. *)

val unassign : t -> string -> unit
val assigned : t -> string -> Value.t option
val assigned_num : t -> string -> float option
val is_bound : t -> string -> bool
val all_numeric_bound : t -> bool

val box : t -> string -> Interval.t option
(** Interval view for propagation: the assigned point when bound, otherwise
    the hull of the initial range. [None] for symbolic properties. *)

val env_box : t -> string -> Interval.t
(** As {!box} but usable directly as an HC4 environment.
    @raise Expr.Unbound_variable for symbolic properties.
    @raise Invalid_argument for unknown properties. *)

val env_point : t -> string -> float
(** Assigned numeric value.
    @raise Expr.Unbound_variable when unbound. *)

(** {1 Constraints} *)

val add_constraint : t -> name:string -> Expr.t -> Constr.rel -> Expr.t -> Constr.t
(** Registers the constraint and its adjacency.
    @raise Invalid_argument if an argument property is unknown or
    symbolic. *)

val constraints : t -> Constr.t list
(** Insertion order. Cached on the structural revision (the counter bumped
    only by {!add_prop}/{!add_constraint}): repeated calls return the same
    list physically until a constraint or property is added. *)

val find_constraint : t -> int -> Constr.t
(** @raise Invalid_argument for unknown ids, naming the id. *)

val constraint_count : t -> int

val constraints_of_prop : t -> string -> Constr.t list
(** Constraints mentioning the property, insertion order.
    @raise Invalid_argument for unknown properties. *)

(** {1 Flat propagation views}

    Derived dense-id views used by the propagation hot path; all cached on
    the structural revision and rebuilt only after {!add_prop} /
    {!add_constraint}. *)

val constraint_array : t -> Constr.t array
(** All constraints, indexed by their (dense) constraint id. *)

val adjacency_by_id : t -> int array array
(** For each dense prop id, the ids of the constraints mentioning it, in
    constraint insertion order. *)

val kernel : t -> Constr.t -> Adpm_expr.Hc4.kernel
(** The compiled HC4 kernel of a constraint ([diff] against the default
    [target]), built on first use and cached. Kernels hold mutable
    scratch: they are shared with {!copy}s and must only be used from one
    domain at a time. *)

val status : t -> int -> Constr.status
(** Last recorded status; [Consistent] before any evaluation. *)

val set_status : t -> int -> Constr.status -> unit
val reset_statuses : t -> unit
val violated : t -> Constr.t list

(** {1 Heuristic-support data (Section 2.3)} *)

val beta : t -> string -> int
(** Number of constraints mentioning the property. *)

val alpha : t -> string -> int
(** Number of currently-violated constraints mentioning the property
    (equation 3). *)

val declare_monotone : t -> int -> string -> Monotone.direction -> unit
(** DDDL-style declaration overriding the structural analysis: the recorded
    direction is that of the constraint's [diff] expression in the
    property. *)

val helps_direction : t -> Constr.t -> string -> [ `Up | `Down | `None ]
(** Which way to move the property's value to help satisfy the constraint
    (the paper's constraint-monotonicity notion): [`Up] means increasing
    helps. Uses the declared direction when present, otherwise the
    structural analysis over initial ranges. [`None] when not monotone or
    for [Eq] relations with unknown slope. *)

(** {1 Ground truth} *)

val check_constraint_point : t -> Constr.t -> bool
(** Evaluate at the current assignment (all arguments must be bound).
    @raise Expr.Unbound_variable otherwise. *)

val solved : t -> bool
(** All numeric properties bound and every constraint satisfied at the
    assignment — the simulation termination condition of Section 3.1.2. *)

val reset_assignments : t -> unit

val pp_summary : Format.formatter -> t -> unit
