(** A minimal JSON value type with a printer and a hand-rolled
    recursive-descent parser.

    Deliberately dependency-free: trace files must be writable and readable
    without any external JSON library (the container bakes in only the
    OCaml toolchain).

    {b Float contract.} The printer round-trips every finite float
    ([%.17g]). [Num nan] and [Num infinity] have no JSON representation
    and deliberately print as [null] — i.e. [parse (to_string (Num nan))]
    is [Ok Null], not [Ok (Num nan)]. Wire formats must therefore never
    put a possibly-non-finite float inside [Num]; use the absent-field
    convention via {!finite_num} instead (as [Metrics_codec] and the
    teamsimd frames do), so a missing measurement reads back as a missing
    field rather than silently becoming [Null].

    {b String contract.} Strings are raw UTF-8 byte sequences. The parser
    validates [\u] escapes strictly: exactly four hex digits, astral-plane
    code points as high+low surrogate pairs decoded to one 4-byte UTF-8
    code point, and lone or mismatched surrogates rejected as parse
    errors. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering (no insignificant whitespace). *)

val parse : string -> (t, string) result
(** Parse one complete JSON document; trailing garbage is an error. *)

val finite_num : float -> t option
(** [Some (Num f)] when [f] is finite, [None] for nan/±inf. Encoders
    should [Option.iter] this into an optional field (the absent-field
    convention) rather than trusting [Num] with unchecked floats — see
    the float contract above. *)

(** {1 Accessors} — shallow, total; [None] on shape mismatch. *)

val member : string -> t -> t option
val to_float : t -> float option
val to_int : t -> int option
(** Only for integral [Num]s. *)

val to_str : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option
