(** A minimal JSON value type with a printer and a hand-rolled
    recursive-descent parser.

    Deliberately dependency-free: trace files must be writable and readable
    without any external JSON library (the container bakes in only the
    OCaml toolchain). The printer round-trips every finite float
    ([%.17g]); [nan]/[inf] print as [null]. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering (no insignificant whitespace). *)

val parse : string -> (t, string) result
(** Parse one complete JSON document; trailing garbage is an error. *)

(** {1 Accessors} — shallow, total; [None] on shape mismatch. *)

val member : string -> t -> t option
val to_float : t -> float option
val to_int : t -> int option
(** Only for integral [Num]s. *)

val to_str : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option
