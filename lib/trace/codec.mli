(** JSONL serialisation of stamped trace events: one JSON object per line,
    tagged with a ["type"] field. Encoding and decoding round-trip exactly
    (floats via [%.17g]), which is what makes a trace file usable as a
    deterministic-replay input. *)

val to_json : Event.stamped -> Json.t
val to_line : Event.stamped -> string
(** Single line, no trailing newline. *)

val of_json : Json.t -> (Event.stamped, string) result
val of_line : string -> (Event.stamped, string) result

val read_file : string -> (Event.stamped list, string) result
(** Decode a whole JSONL trace file; blank lines are skipped, the first
    malformed line aborts with its line number. *)
