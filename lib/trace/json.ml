open Adpm_util

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* {2 Printing} *)

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else if Float.is_finite f then Printf.sprintf "%.17g" f
  else "null" (* nan/inf have no JSON representation *)

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> Buffer.add_string buf (float_to_string f)
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (Escape.json s);
    Buffer.add_char buf '"'
  | Arr items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        write buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (Escape.json k);
        Buffer.add_string buf "\":";
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  write buf j;
  Buffer.contents buf

(* {2 Parsing} *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let error cur msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg cur.pos))

let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let skip_ws cur =
  let rec loop () =
    match peek cur with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance cur;
      loop ()
    | _ -> ()
  in
  loop ()

let expect cur c =
  match peek cur with
  | Some d when d = c -> advance cur
  | _ -> error cur (Printf.sprintf "expected %c" c)

let parse_literal cur word value =
  if
    cur.pos + String.length word <= String.length cur.src
    && String.sub cur.src cur.pos (String.length word) = word
  then begin
    cur.pos <- cur.pos + String.length word;
    value
  end
  else error cur (Printf.sprintf "expected %s" word)

let parse_number cur =
  let start = cur.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec loop () =
    match peek cur with
    | Some c when is_num_char c ->
      advance cur;
      loop ()
    | _ -> ()
  in
  loop ();
  let text = String.sub cur.src start (cur.pos - start) in
  match float_of_string_opt text with
  | Some f -> Num f
  | None -> error cur (Printf.sprintf "bad number %s" text)

(* Encode a Unicode code point as UTF-8 bytes (up to U+10FFFF). *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

(* Exactly four hex digits, validated by hand: [int_of_string "0x…"]
   accepts OCaml-isms (underscores, signs, a nested 0x) that are not
   JSON. *)
let hex_digit = function
  | '0' .. '9' as c -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' as c -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' as c -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let parse_hex4 cur =
  if cur.pos + 4 > String.length cur.src then error cur "truncated \\u escape";
  let v = ref 0 in
  for i = 0 to 3 do
    match hex_digit cur.src.[cur.pos + i] with
    | Some d -> v := (!v lsl 4) lor d
    | None ->
      error cur
        (Printf.sprintf "bad \\u escape %s" (String.sub cur.src cur.pos 4))
  done;
  cur.pos <- cur.pos + 4;
  !v

let parse_string_body cur =
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek cur with
    | None -> error cur "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' -> (
      advance cur;
      match peek cur with
      | None -> error cur "unterminated escape"
      | Some c ->
        advance cur;
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          let cp = parse_hex4 cur in
          if cp >= 0xD800 && cp <= 0xDBFF then begin
            (* High surrogate: JSON encodes astral-plane code points as a
               \uD800-DBFF \uDC00-DFFF pair, which must decode to ONE
               code point — never to two 3-byte CESU-8 sequences. *)
            if
              not
                (cur.pos + 2 <= String.length cur.src
                && cur.src.[cur.pos] = '\\'
                && cur.src.[cur.pos + 1] = 'u')
            then error cur (Printf.sprintf "unpaired high surrogate %04X" cp);
            cur.pos <- cur.pos + 2;
            let lo = parse_hex4 cur in
            if lo < 0xDC00 || lo > 0xDFFF then
              error cur
                (Printf.sprintf "high surrogate %04X followed by %04X" cp lo);
            add_utf8 buf (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00))
          end
          else if cp >= 0xDC00 && cp <= 0xDFFF then
            error cur (Printf.sprintf "unpaired low surrogate %04X" cp)
          else add_utf8 buf cp
        | c -> error cur (Printf.sprintf "bad escape \\%c" c));
        loop ())
    | Some c ->
      advance cur;
      Buffer.add_char buf c;
      loop ()
  in
  loop ();
  Buffer.contents buf

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> error cur "unexpected end of input"
  | Some 'n' -> parse_literal cur "null" Null
  | Some 't' -> parse_literal cur "true" (Bool true)
  | Some 'f' -> parse_literal cur "false" (Bool false)
  | Some '"' ->
    advance cur;
    Str (parse_string_body cur)
  | Some '[' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some ']' then begin
      advance cur;
      Arr []
    end
    else begin
      let rec items acc =
        let v = parse_value cur in
        skip_ws cur;
        match peek cur with
        | Some ',' ->
          advance cur;
          items (v :: acc)
        | Some ']' ->
          advance cur;
          List.rev (v :: acc)
        | _ -> error cur "expected , or ] in array"
      in
      Arr (items [])
    end
  | Some '{' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some '}' then begin
      advance cur;
      Obj []
    end
    else begin
      let field () =
        skip_ws cur;
        expect cur '"';
        let k = parse_string_body cur in
        skip_ws cur;
        expect cur ':';
        let v = parse_value cur in
        (k, v)
      in
      let rec fields acc =
        let kv = field () in
        skip_ws cur;
        match peek cur with
        | Some ',' ->
          advance cur;
          fields (kv :: acc)
        | Some '}' ->
          advance cur;
          List.rev (kv :: acc)
        | _ -> error cur "expected , or } in object"
      in
      Obj (fields [])
    end
  | Some _ -> parse_number cur

let parse s =
  let cur = { src = s; pos = 0 } in
  match parse_value cur with
  | v ->
    skip_ws cur;
    if cur.pos <> String.length s then
      Error (Printf.sprintf "trailing garbage at offset %d" cur.pos)
    else Ok v
  | exception Parse_error msg -> Error msg

let finite_num f = if Float.is_finite f then Some (Num f) else None

(* {2 Accessors} *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function Num f -> Some f | _ -> None
let to_int = function Num f when Float.is_integer f -> Some (int_of_float f) | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function Arr items -> Some items | _ -> None
