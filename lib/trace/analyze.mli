(** Trace analysis: fold a recorded event stream into the derived views
    TeamSim's statistics window consolidated on-line — notification
    latency per designer, the propagation-wave size distribution, and
    violation open/close spans — rendered as ASCII (via
    [Adpm_util.Ascii_chart] / [Table]) or exported as JSON. *)

type latency = {
  l_designer : string;
  l_count : int;  (** notifications received *)
  l_mean : float;  (** mean clock ticks until the designer's next operation *)
  l_max : int;
}

type span = {
  v_cid : int;
  v_times_opened : int;
  v_total_open : int;
  v_open_at_end : bool;
}

type report = {
  r_scenario : string option;
  r_mode : string option;
  r_engine : string option;
      (** engine the run was configured with, from [Run_started] *)
  r_operations : int;
  r_evaluations : int;
  r_propagations : int;
  r_propagations_incremental : int;
      (** propagations whose worklist was dirty-seeded *)
  r_revisions_full : int;
      (** HC4 revisions performed by full-seeded propagations *)
  r_revisions_incremental : int;
      (** HC4 revisions performed by dirty-seeded propagations *)
  r_wave_sizes : int list;
  r_latencies : latency list;
  r_spans : span list;
  r_notifications : int;
  r_turns : int;
      (** [Turn_started] events — live-designer turns the discrete-event
          engine granted (0 for lockstep traces) *)
  r_deliveries : int;
      (** [Notification_delivered] events — teammate deliveries recorded
          by the discrete-event engine *)
  r_delivery_latency_mean : float;
      (** mean virtual transit time [delivered_at - sent_at] (nan when the
          trace has no deliveries) *)
  r_makespan : int;
      (** latest virtual operation-completion time; [0] for traces without
          [Op_completed] events *)
  r_dropped : int;
      (** [Notification_dropped] events — teammate notifications the fault
          injector lost *)
  r_duplicated : int;  (** [Notification_duplicated] events *)
  r_crashes : int;  (** [Designer_crashed] events *)
  r_restarts : int;  (** [Designer_restarted] events *)
  r_shifts : int;  (** [Requirement_shifted] events *)
  r_pool_retries : int;  (** [Pool_retry] supervision events *)
}

val analyze : Event.stamped list -> report
val render : report -> string
val to_json : report -> Json.t
