type t = {
  enabled : bool;
  sink : Sink.t;
  mutable seq : int;
  mutable clock : int;
}

let null = { enabled = false; sink = Sink.null; seq = 0; clock = 0 }

let create sink = { enabled = true; sink; seq = 0; clock = 0 }

let active t = t.enabled

let emit t event =
  if t.enabled then begin
    let stamped = { Event.seq = t.seq; clock = t.clock; event } in
    t.seq <- t.seq + 1;
    t.sink.Sink.write stamped
  end

let set_clock t clock = if t.enabled then t.clock <- clock
let clock t = t.clock
let seq t = t.seq
let close t = t.sink.Sink.close ()
