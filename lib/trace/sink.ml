type t = { write : Event.stamped -> unit; close : unit -> unit }

let null = { write = (fun _ -> ()); close = (fun () -> ()) }

let tee a b =
  {
    write =
      (fun ev ->
        a.write ev;
        b.write ev);
    close =
      (fun () ->
        a.close ();
        b.close ());
  }

module Ring = struct
  type buffer = {
    capacity : int;
    slots : Event.stamped option array;
    mutable next : int;  (* total events ever written *)
  }

  let create ~capacity =
    if capacity <= 0 then invalid_arg "Sink.Ring.create: capacity must be positive";
    { capacity; slots = Array.make capacity None; next = 0 }

  let write buf ev =
    buf.slots.(buf.next mod buf.capacity) <- Some ev;
    buf.next <- buf.next + 1

  let sink buf = { write = write buf; close = (fun () -> ()) }

  let stored buf = min buf.next buf.capacity
  let dropped buf = buf.next - stored buf
  let capacity buf = buf.capacity

  let contents buf =
    let n = stored buf in
    let start = buf.next - n in
    List.init n (fun i ->
        match buf.slots.((start + i) mod buf.capacity) with
        | Some ev -> ev
        | None -> assert false)
end

let memory ~capacity =
  let buf = Ring.create ~capacity in
  (buf, Ring.sink buf)

module Collect = struct
  type buffer = { mutable events : Event.stamped list; mutable count : int }

  let create () = { events = []; count = 0 }

  let write buf ev =
    buf.events <- ev :: buf.events;
    buf.count <- buf.count + 1

  let sink buf = { write = write buf; close = (fun () -> ()) }
  let length buf = buf.count
  let contents buf = List.rev buf.events
end

let collector () =
  let buf = Collect.create () in
  (buf, Collect.sink buf)

let jsonl oc =
  {
    write =
      (fun ev ->
        output_string oc (Codec.to_line ev);
        output_char oc '\n');
    close = (fun () -> flush oc);
  }

let jsonl_file path =
  let oc = open_out path in
  {
    write =
      (fun ev ->
        output_string oc (Codec.to_line ev);
        output_char oc '\n');
    close = (fun () -> close_out oc);
  }
