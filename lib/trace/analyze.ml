open Adpm_util
open Event

type latency = { l_designer : string; l_count : int; l_mean : float; l_max : int }

type span = {
  v_cid : int;
  v_times_opened : int;
  v_total_open : int;  (** clock ticks spent in Violated *)
  v_open_at_end : bool;
}

type report = {
  r_scenario : string option;
  r_mode : string option;
  r_engine : string option;  (** engine the run was configured with *)
  r_operations : int;
  r_evaluations : int;
  r_propagations : int;
  r_propagations_incremental : int;
      (** propagations whose worklist was dirty-seeded *)
  r_revisions_full : int;  (** HC4 revisions done by full-seeded runs *)
  r_revisions_incremental : int;  (** HC4 revisions done by dirty-seeded runs *)
  r_wave_sizes : int list;  (** revisions per wave, all propagations *)
  r_latencies : latency list;  (** per designer, name order *)
  r_spans : span list;  (** per constraint, id order *)
  r_notifications : int;
  r_turns : int;  (** [Turn_started] events — designer turns (DES runs) *)
  r_deliveries : int;  (** [Notification_delivered] events (DES runs) *)
  r_delivery_latency_mean : float;
      (** mean [delivered_at - sent_at] over deliveries, in virtual ticks
          (nan when the trace has none) *)
  r_makespan : int;
      (** latest virtual [Op_completed] timestamp; [0] for lockstep
          traces, which carry no virtual time *)
  r_dropped : int;  (** notifications lost by the fault injector *)
  r_duplicated : int;  (** notifications duplicated by the fault injector *)
  r_crashes : int;  (** scheduled designer crashes that fired *)
  r_restarts : int;  (** designer restarts that fired *)
  r_shifts : int;  (** requirement shifts applied mid-run *)
  r_pool_retries : int;  (** supervised worker-pool retry events *)
}

let analyze events =
  let scenario = ref None and mode = ref None and engine = ref None in
  let operations = ref 0 and evaluations = ref 0 in
  let propagations = ref 0 and propagations_incremental = ref 0 in
  let revisions_full = ref 0 and revisions_incremental = ref 0 in
  let wave_sizes = ref [] in
  let notifications = ref 0 in
  let turns = ref 0 in
  let deliveries = ref 0 in
  let delivery_ticks = ref 0 in
  let makespan = ref 0 in
  let dropped = ref 0 and duplicated = ref 0 in
  let crashes = ref 0 and restarts = ref 0 in
  let shifts = ref 0 in
  let pool_retries = ref 0 in
  (* pending notification clocks per designer, oldest first *)
  let pending : (string, int list) Hashtbl.t = Hashtbl.create 8 in
  let latencies : (string, int list) Hashtbl.t = Hashtbl.create 8 in
  (* violation spans: cid -> (clock opened) while open *)
  let open_since : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let spans : (int, int * int) Hashtbl.t = Hashtbl.create 16 in
  let record_span cid opened closed =
    let times, total = try Hashtbl.find spans cid with Not_found -> (0, 0) in
    Hashtbl.replace spans cid (times + 1, total + (closed - opened))
  in
  let last_clock = ref 0 in
  List.iter
    (fun { clock; event; _ } ->
      last_clock := max !last_clock clock;
      match event with
      | Run_started { scenario = s; mode = m; engine = e; _ } ->
        scenario := Some s;
        mode := Some m;
        engine := Some e
      | Run_finished { operations = n_o; evaluations = n_t; _ } ->
        operations := n_o;
        evaluations := n_t
      | Op_submitted { op; _ } -> (
        match Hashtbl.find_opt pending op.op_designer with
        | None | Some [] -> ()
        | Some waiting ->
          let prev = try Hashtbl.find latencies op.op_designer with Not_found -> [] in
          Hashtbl.replace latencies op.op_designer
            (List.rev_append (List.rev_map (fun c -> clock - c) waiting) prev);
          Hashtbl.replace pending op.op_designer [])
      | Notification_pushed { recipient; _ } ->
        incr notifications;
        let waiting = try Hashtbl.find pending recipient with Not_found -> [] in
        Hashtbl.replace pending recipient (waiting @ [ clock ])
      | Op_completed { at; _ } -> makespan := max !makespan at
      | Turn_started { at; _ } ->
        incr turns;
        makespan := max !makespan at
      | Notification_delivered { sent_at; delivered_at; _ } ->
        incr deliveries;
        delivery_ticks := !delivery_ticks + (delivered_at - sent_at)
      | Propagation_finished { engine = e; revisions; waves; _ } ->
        incr propagations;
        if String.equal e "incremental" then begin
          incr propagations_incremental;
          revisions_incremental := !revisions_incremental + revisions
        end
        else revisions_full := !revisions_full + revisions;
        wave_sizes := List.rev_append waves !wave_sizes
      | Constraint_status_changed { cid; new_status; _ } -> (
        match (Hashtbl.find_opt open_since cid, new_status) with
        | None, Violated -> Hashtbl.replace open_since cid clock
        | Some opened, (Satisfied | Consistent) ->
          Hashtbl.remove open_since cid;
          record_span cid opened clock
        | Some _, Violated | None, (Satisfied | Consistent) -> ())
      | Notification_dropped _ -> incr dropped
      | Notification_duplicated _ -> incr duplicated
      | Designer_crashed _ -> incr crashes
      | Designer_restarted _ -> incr restarts
      | Requirement_shifted { at; _ } ->
        incr shifts;
        makespan := max !makespan at
      | Pool_retry _ -> incr pool_retries
      | Op_executed _ | Propagation_started _ | Designer_decision _ -> ())
    events;
  (* close still-open violations at the final clock *)
  let open_at_end = Hashtbl.fold (fun cid _ acc -> cid :: acc) open_since [] in
  Hashtbl.iter (fun cid opened -> record_span cid opened !last_clock) open_since;
  let span_list =
    Hashtbl.fold
      (fun cid (times, total) acc ->
        {
          v_cid = cid;
          v_times_opened = times;
          v_total_open = total;
          v_open_at_end = List.mem cid open_at_end;
        }
        :: acc)
      spans []
    |> List.sort (fun a b -> compare a.v_cid b.v_cid)
  in
  let latency_list =
    Hashtbl.fold
      (fun designer ls acc ->
        let n = List.length ls in
        let sum = List.fold_left ( + ) 0 ls in
        {
          l_designer = designer;
          l_count = n;
          l_mean = float_of_int sum /. float_of_int (max 1 n);
          l_max = List.fold_left max 0 ls;
        }
        :: acc)
      latencies []
    |> List.sort (fun a b -> compare a.l_designer b.l_designer)
  in
  {
    r_scenario = !scenario;
    r_mode = !mode;
    r_engine = !engine;
    r_operations = !operations;
    r_evaluations = !evaluations;
    r_propagations = !propagations;
    r_propagations_incremental = !propagations_incremental;
    r_revisions_full = !revisions_full;
    r_revisions_incremental = !revisions_incremental;
    r_wave_sizes = List.rev !wave_sizes;
    r_latencies = latency_list;
    r_spans = span_list;
    r_notifications = !notifications;
    r_turns = !turns;
    r_deliveries = !deliveries;
    r_delivery_latency_mean =
      (* nan (rendered as JSON null), never 0/0: a trace with no
         deliveries has no transit statistic at all *)
      (if !deliveries = 0 then Float.nan
       else float_of_int !delivery_ticks /. float_of_int !deliveries);
    r_makespan = !makespan;
    r_dropped = !dropped;
    r_duplicated = !duplicated;
    r_crashes = !crashes;
    r_restarts = !restarts;
    r_shifts = !shifts;
    r_pool_retries = !pool_retries;
  }

let render r =
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "=== Trace analysis: %s / %s (engine %s) ===\n"
    (Option.value ~default:"?" r.r_scenario)
    (Option.value ~default:"?" r.r_mode)
    (Option.value ~default:"?" r.r_engine);
  add "operations %d, evaluations %d, propagations %d, notifications %d\n"
    r.r_operations r.r_evaluations r.r_propagations r.r_notifications;
  if r.r_deliveries > 0 then
    add
      "virtual makespan %d ticks; %d teammate deliveries, mean transit %.2f \
       ticks\n"
      r.r_makespan r.r_deliveries r.r_delivery_latency_mean;
  if r.r_turns > 0 then add "designer turns taken: %d\n" r.r_turns;
  if r.r_dropped + r.r_duplicated + r.r_crashes + r.r_pool_retries > 0 then
    add
      "faults: %d notifications dropped, %d duplicated; %d designer crashes \
       (%d restarts); %d pool retries\n"
      r.r_dropped r.r_duplicated r.r_crashes r.r_restarts r.r_pool_retries;
  if r.r_shifts > 0 then
    add "requirement shifts applied mid-run: %d\n" r.r_shifts;
  add "HC4 revisions: %d incremental (over %d dirty-seeded runs), %d full\n\n"
    r.r_revisions_incremental r.r_propagations_incremental r.r_revisions_full;
  (if r.r_latencies <> [] then begin
     let table =
       Table.create ~title:"Notification latency (clock ticks to next own op)"
         [ "Designer"; "Notifications"; "Mean latency"; "Max" ]
     in
     Table.set_align table [ Table.Left; Table.Right; Table.Right; Table.Right ];
     List.iter
       (fun l ->
         Table.add_row table
           [
             l.l_designer;
             string_of_int l.l_count;
             Printf.sprintf "%.2f" l.l_mean;
             string_of_int l.l_max;
           ])
       r.r_latencies;
     Buffer.add_string buf (Table.render table);
     Buffer.add_char buf '\n'
   end);
  (if r.r_spans <> [] then begin
     let table =
       Table.create ~title:"Violation open/close spans"
         [ "Constraint"; "Times opened"; "Open ticks"; "Open at end" ]
     in
     Table.set_align table [ Table.Right; Table.Right; Table.Right; Table.Left ];
     List.iter
       (fun s ->
         Table.add_row table
           [
             string_of_int s.v_cid;
             string_of_int s.v_times_opened;
             string_of_int s.v_total_open;
             (if s.v_open_at_end then "yes" else "no");
           ])
       r.r_spans;
     Buffer.add_string buf (Table.render table);
     Buffer.add_char buf '\n'
   end);
  (if r.r_wave_sizes <> [] then
     Buffer.add_string buf
       (Ascii_chart.histogram ~title:"Propagation-wave size (revisions per wave)"
          (List.map float_of_int r.r_wave_sizes)));
  Buffer.contents buf

let to_json r =
  let jint i = Json.Num (float_of_int i) in
  Json.Obj
    [
      ( "scenario",
        match r.r_scenario with Some s -> Json.Str s | None -> Json.Null );
      ("mode", match r.r_mode with Some m -> Json.Str m | None -> Json.Null);
      ( "engine",
        match r.r_engine with Some e -> Json.Str e | None -> Json.Null );
      ("operations", jint r.r_operations);
      ("evaluations", jint r.r_evaluations);
      ("propagations", jint r.r_propagations);
      ("propagations_incremental", jint r.r_propagations_incremental);
      ("revisions_full", jint r.r_revisions_full);
      ("revisions_incremental", jint r.r_revisions_incremental);
      ("notifications", jint r.r_notifications);
      ("turns", jint r.r_turns);
      ("deliveries", jint r.r_deliveries);
      ( "delivery_latency_mean",
        (* the comparison is written to also catch nan *)
        if Float.is_finite r.r_delivery_latency_mean then
          Json.Num r.r_delivery_latency_mean
        else Json.Null );
      ("makespan", jint r.r_makespan);
      ("dropped", jint r.r_dropped);
      ("duplicated", jint r.r_duplicated);
      ("crashes", jint r.r_crashes);
      ("restarts", jint r.r_restarts);
      ("shifts", jint r.r_shifts);
      ("pool_retries", jint r.r_pool_retries);
      ("wave_sizes", Json.Arr (List.map jint r.r_wave_sizes));
      ( "notification_latency",
        Json.Arr
          (List.map
             (fun l ->
               Json.Obj
                 [
                   ("designer", Json.Str l.l_designer);
                   ("count", jint l.l_count);
                   ("mean", Json.Num l.l_mean);
                   ("max", jint l.l_max);
                 ])
             r.r_latencies) );
      ( "violation_spans",
        Json.Arr
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("cid", jint s.v_cid);
                   ("times_opened", jint s.v_times_opened);
                   ("open_ticks", jint s.v_total_open);
                   ("open_at_end", Json.Bool s.v_open_at_end);
                 ])
             r.r_spans) );
    ]
