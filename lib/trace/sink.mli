(** Pluggable trace destinations.

    A sink is a pair of closures, so instrumented layers depend only on
    this minimal interface. Sinks are single-writer: the tracer that owns a
    sink serialises all writes. *)

type t = { write : Event.stamped -> unit; close : unit -> unit }

val null : t
(** Discards everything. *)

val tee : t -> t -> t
(** Duplicate every event (and close) to both sinks, left first. *)

(** Bounded in-memory ring buffer: keeps the most recent [capacity]
    events, counting how many older ones were overwritten. *)
module Ring : sig
  type buffer

  val create : capacity:int -> buffer
  (** @raise Invalid_argument when [capacity <= 0]. *)

  val sink : buffer -> t
  val contents : buffer -> Event.stamped list
  (** Oldest retained event first. *)

  val stored : buffer -> int
  val dropped : buffer -> int
  val capacity : buffer -> int
end

val memory : capacity:int -> Ring.buffer * t
(** Convenience: a fresh ring buffer and its sink. *)

(** Unbounded in-memory collector: keeps {e every} event, so a consumer
    that must see a complete stream (the temporal-property checker refuses
    truncated traces) never races a capacity guess. *)
module Collect : sig
  type buffer

  val create : unit -> buffer
  val sink : buffer -> t

  val contents : buffer -> Event.stamped list
  (** In write order. *)

  val length : buffer -> int
end

val collector : unit -> Collect.buffer * t
(** Convenience: a fresh collect buffer and its sink. *)

val jsonl : out_channel -> t
(** One JSONL line per event on the given channel; [close] flushes but
    does not close the channel (the caller owns it). *)

val jsonl_file : string -> t
(** Opens (truncating) the file now; [close] closes it. *)
