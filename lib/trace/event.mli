(** The typed trace event model: everything observable about one design
    process run, from operation submission through propagation waves to the
    notifications the NM pushes.

    The model is deliberately self-contained — events carry plain data
    (strings, ints, floats), not [Adpm_core] values — so that the trace
    library sits {e below} the engine layers it instruments and a recorded
    trace can be decoded without rebuilding any engine state. Conversions
    to and from engine types live next to those types
    ([Adpm_core.Operator.to_trace_spec] / [of_trace_spec]). *)

type value = Vnum of float | Vsym of string
(** Mirror of [Adpm_csp.Value.t]. *)

type status = Satisfied | Violated | Consistent
(** Mirror of [Adpm_csp.Constr.status]. *)

val status_to_string : status -> string
val status_of_string : string -> status option

type subproblem = {
  sb_name : string;
  sb_owner : string;
  sb_inputs : string list;
  sb_outputs : string list;
  sb_constraints : int list;
  sb_depends_on : string list;
  sb_object : string option;
}
(** Mirror of [Adpm_core.Operator.subproblem_spec]. *)

type op_kind =
  | Synthesis of (string * value) list
  | Verification of int list
  | Decompose of subproblem list

type op_spec = {
  op_designer : string;
  op_problem : int;
  op_kind : op_kind;
  op_motivated_by : int list;
}
(** A full description of one design operation — enough to reconstruct the
    [Operator.t] and re-execute it during replay. *)

type heuristic =
  | Smallest_subspace
  | Most_constrained
  | Random_target
  | Conflict_resolution
  | Verification_request

val heuristic_to_string : heuristic -> string
val heuristic_of_string : string -> heuristic option

type t =
  | Run_started of {
      scenario : string;
      mode : string;
      seed : int;
      engine : string;
          (** propagation engine the run was configured with ("full" or
              "incremental"); replay re-selects the same engine so N_T
              totals match *)
    }
  | Op_submitted of { op : op_spec; choose_evaluations : int }
      (** Emitted by the engine just before the DPM executes the operation.
          [choose_evaluations] is the constraint-evaluation cost the
          designer spent {e deciding} (relaxed-feasibility queries); replay
          re-charges it so N_T totals match exactly. *)
  | Op_executed of {
      index : int;
      designer : string;
      kind : string;
      evaluations : int;
      newly_violated : int list;
      resolved : int list;
      skipped : int list;
      spin : bool;
    }  (** Emitted by the DPM after the transition completes. *)
  | Propagation_started of { constraints : int }
  | Propagation_finished of {
      engine : string;
          (** how this propagation's worklist was seeded: ["full"] (every
              constraint) or ["incremental"] (constraints of dirty
              properties only); an incremental engine falling back to a
              from-scratch run reports ["full"] *)
      seeded : int;  (** constraints in the initial worklist *)
      evaluations : int;
      revisions : int;
          (** HC4 revisions performed (the evaluation total minus the final
              status sweep) — the work the incremental engine saves *)
      waves : int list;
      empties : int;
      fixpoint : bool;
    }
  | Constraint_status_changed of {
      cid : int;
      old_status : status;
      new_status : status;
    }
  | Op_completed of { index : int; at : int }
      (** Emitted by the discrete-event engine when the operation's
          virtual duration elapses ([at] is in scheduler ticks); absent
          from lockstep-loop traces. *)
  | Turn_started of { designer : string; at : int }
      (** A live designer's turn began at virtual time [at]: it drains its
          mailbox and considers acting (possibly choosing nothing). Crashed
          designers are skipped without a turn. Emitted only by the
          discrete-event engine; the temporal-property checker reads these
          to bound turn gaps (starvation / rejoin-after-restart). *)
  | Notification_pushed of {
      recipient : string;
      op_index : int;
          (** index of the operation whose outcome is announced; pairs the
              push with its [Notification_delivered] / [_dropped] fate *)
      events : string list;
      violations : int list;
    }
      (** The NM {e sent} a notification (emitted at operation-execution
          time). With a nonzero notification latency the recipient sees it
          only at the matching [Notification_delivered]. *)
  | Notification_delivered of {
      recipient : string;
      op_index : int;
      sent_at : int;
      delivered_at : int;  (** [sent_at + latency], scheduler ticks *)
      events : string list;
      violations : int list;
    }
      (** A routed notification {e arrived} in a teammate's mailbox (the
          acting designer's own feedback is instant and not re-announced).
          Emitted only by the discrete-event engine. *)
  | Designer_decision of {
      designer : string;
      heuristic : heuristic;
      target : string option;
      alpha : int;
      beta : int;
    }
  | Notification_dropped of { recipient : string; op_index : int; at : int }
      (** The fault injector lost this teammate's copy of the
          notification for operation [op_index] — the matching
          [Notification_delivered] never happens. Emitted only by the
          discrete-event engine under a fault plan. *)
  | Notification_duplicated of { recipient : string; op_index : int; at : int }
      (** The fault injector duplicated the notification: two
          [Notification_delivered] events follow for the same
          [op_index]. *)
  | Designer_crashed of { designer : string; at : int }
      (** A scheduled fault took [designer] down at virtual time [at]:
          the designer stops acting, queued and in-flight deliveries to
          it are lost, and its believed-status table is gone. *)
  | Designer_restarted of { designer : string; at : int }
      (** The crashed designer came back with an {e empty}
          believed-status table, rebuilt only from subsequent
          deliveries. *)
  | Requirement_shifted of { prop : string; value : float; at : int }
      (** A scheduled requirement shift fired at virtual time [at]: the
          requirement property [prop] was re-assigned to [value] through
          the DPM (the adaptability workload). Replay re-applies it so
          later operations see the moved requirement. *)
  | Pool_retry of {
      index : int;
      attempt : int;
      reason : string;
      requeued : int;
    }
      (** A pool worker crashed, hung, or garbled its stream; the
          supervisor charged work item [index] with failed [attempt]
          number and requeued [requeued] items to a fresh worker. Host
          wall-clock, not virtual time. *)
  | Run_finished of {
      completed : bool;
      operations : int;
      evaluations : int;
      setup_evaluations : int;
      spins : int;
      violations : int list;
    }

type stamped = { seq : int; clock : int; event : t }
(** [seq] is a per-tracer monotonic sequence number; [clock] is the logical
    clock — the number of design operations executed when the event fired
    (0 during setup). *)

val kind_label : t -> string
(** The event's JSONL ["type"] tag. *)
