type value = Vnum of float | Vsym of string

type status = Satisfied | Violated | Consistent

let status_to_string = function
  | Satisfied -> "satisfied"
  | Violated -> "violated"
  | Consistent -> "consistent"

let status_of_string = function
  | "satisfied" -> Some Satisfied
  | "violated" -> Some Violated
  | "consistent" -> Some Consistent
  | _ -> None

type subproblem = {
  sb_name : string;
  sb_owner : string;
  sb_inputs : string list;
  sb_outputs : string list;
  sb_constraints : int list;
  sb_depends_on : string list;
  sb_object : string option;
}

type op_kind =
  | Synthesis of (string * value) list
  | Verification of int list
  | Decompose of subproblem list

type op_spec = {
  op_designer : string;
  op_problem : int;
  op_kind : op_kind;
  op_motivated_by : int list;
}

type heuristic =
  | Smallest_subspace
  | Most_constrained
  | Random_target
  | Conflict_resolution
  | Verification_request

let heuristic_to_string = function
  | Smallest_subspace -> "smallest-subspace"
  | Most_constrained -> "most-constrained"
  | Random_target -> "random-target"
  | Conflict_resolution -> "conflict-resolution"
  | Verification_request -> "verification-request"

let heuristic_of_string = function
  | "smallest-subspace" -> Some Smallest_subspace
  | "most-constrained" -> Some Most_constrained
  | "random-target" -> Some Random_target
  | "conflict-resolution" -> Some Conflict_resolution
  | "verification-request" -> Some Verification_request
  | _ -> None

type t =
  | Run_started of {
      scenario : string;
      mode : string;
      seed : int;
      engine : string;  (** propagation engine: "full" or "incremental" *)
    }
  | Op_submitted of { op : op_spec; choose_evaluations : int }
  | Op_executed of {
      index : int;
      designer : string;
      kind : string;
      evaluations : int;
      newly_violated : int list;
      resolved : int list;
      skipped : int list;
      spin : bool;
    }
  | Propagation_started of { constraints : int }
  | Propagation_finished of {
      engine : string;  (** how the worklist was seeded: "full"/"incremental" *)
      seeded : int;  (** constraints in the initial worklist *)
      evaluations : int;
      revisions : int;  (** HC4 revisions (evaluations minus status sweep) *)
      waves : int list;  (** revisions per propagation wave, in order *)
      empties : int;  (** constraints proven unsatisfiable on the box *)
      fixpoint : bool;  (** false when the revision budget stopped it *)
    }
  | Constraint_status_changed of {
      cid : int;
      old_status : status;
      new_status : status;
    }
  | Op_completed of {
      index : int;  (** operation index, matching [Op_executed] *)
      at : int;  (** virtual completion time (scheduler ticks) *)
    }
  | Turn_started of {
      designer : string;
      at : int;  (** virtual turn time (scheduler ticks) *)
    }
  | Notification_pushed of {
      recipient : string;
      op_index : int;  (** the operation whose outcome is being announced *)
      events : string list;  (** rendered event descriptions *)
      violations : int list;  (** ids of newly violated constraints *)
    }
  | Notification_delivered of {
      recipient : string;
      op_index : int;  (** the operation whose outcome was delivered *)
      sent_at : int;  (** virtual time the NM sent it (op completion) *)
      delivered_at : int;  (** virtual arrival time (sent + latency) *)
      events : string list;  (** rendered event descriptions *)
      violations : int list;  (** ids of newly violated constraints *)
    }
  | Designer_decision of {
      designer : string;
      heuristic : heuristic;
      target : string option;  (** chosen property, when one exists *)
      alpha : int;  (** violated constraints on the target (eq. 3) *)
      beta : int;  (** total constraints on the target *)
    }
  | Notification_dropped of {
      recipient : string;
      op_index : int;  (** the operation whose notification was lost *)
      at : int;  (** virtual send time (scheduler ticks) *)
    }
  | Notification_duplicated of {
      recipient : string;
      op_index : int;
      at : int;  (** virtual send time (scheduler ticks) *)
    }
  | Designer_crashed of {
      designer : string;
      at : int;  (** virtual crash time (scheduler ticks) *)
    }
  | Designer_restarted of {
      designer : string;
      at : int;  (** virtual restart time (scheduler ticks) *)
    }
  | Requirement_shifted of {
      prop : string;  (** the re-assigned requirement property *)
      value : float;  (** its new value *)
      at : int;  (** virtual shift time (scheduler ticks) *)
    }
  | Pool_retry of {
      index : int;  (** work item charged with the failed attempt *)
      attempt : int;  (** 1-based attempt number that failed *)
      reason : string;  (** how the worker failed *)
      requeued : int;  (** items handed to the replacement worker *)
    }
  | Run_finished of {
      completed : bool;
      operations : int;  (** N_O *)
      evaluations : int;  (** N_T charged to the DPM *)
      setup_evaluations : int;  (** initial ADPM propagation (not in N_T) *)
      spins : int;
      violations : int list;  (** final known-violated constraint ids *)
    }

type stamped = { seq : int; clock : int; event : t }

let kind_label = function
  | Run_started _ -> "run_started"
  | Op_submitted _ -> "op_submitted"
  | Op_executed _ -> "op_executed"
  | Op_completed _ -> "op_completed"
  | Turn_started _ -> "turn_started"
  | Propagation_started _ -> "propagation_started"
  | Propagation_finished _ -> "propagation_finished"
  | Constraint_status_changed _ -> "constraint_status_changed"
  | Notification_pushed _ -> "notification_pushed"
  | Notification_delivered _ -> "notification_delivered"
  | Designer_decision _ -> "designer_decision"
  | Notification_dropped _ -> "notification_dropped"
  | Notification_duplicated _ -> "notification_duplicated"
  | Designer_crashed _ -> "designer_crashed"
  | Designer_restarted _ -> "designer_restarted"
  | Requirement_shifted _ -> "requirement_shifted"
  | Pool_retry _ -> "pool_retry"
  | Run_finished _ -> "run_finished"
