open Event

(* {2 Encoding} *)

let json_of_value = function
  | Vnum f -> Json.Num f
  | Vsym s -> Json.Obj [ ("sym", Json.Str s) ]

let json_of_ints ids = Json.Arr (List.map (fun i -> Json.Num (float_of_int i)) ids)
let json_of_strings ss = Json.Arr (List.map (fun s -> Json.Str s) ss)
let jint i = Json.Num (float_of_int i)

let json_of_subproblem sb =
  Json.Obj
    [
      ("name", Json.Str sb.sb_name);
      ("owner", Json.Str sb.sb_owner);
      ("inputs", json_of_strings sb.sb_inputs);
      ("outputs", json_of_strings sb.sb_outputs);
      ("constraints", json_of_ints sb.sb_constraints);
      ("depends_on", json_of_strings sb.sb_depends_on);
      ( "object",
        match sb.sb_object with Some o -> Json.Str o | None -> Json.Null );
    ]

let json_of_op op =
  let kind_fields =
    match op.op_kind with
    | Synthesis assignments ->
      [
        ("kind", Json.Str "synthesis");
        ( "assign",
          Json.Arr
            (List.map
               (fun (prop, v) -> Json.Arr [ Json.Str prop; json_of_value v ])
               assignments) );
      ]
    | Verification cids ->
      [ ("kind", Json.Str "verification"); ("cids", json_of_ints cids) ]
    | Decompose subs ->
      [
        ("kind", Json.Str "decompose");
        ("subproblems", Json.Arr (List.map json_of_subproblem subs));
      ]
  in
  Json.Obj
    ([ ("designer", Json.Str op.op_designer); ("problem", jint op.op_problem) ]
    @ kind_fields
    @ [ ("motivated_by", json_of_ints op.op_motivated_by) ])

let fields_of_event = function
  | Run_started { scenario; mode; seed; engine } ->
    [
      ("scenario", Json.Str scenario);
      ("mode", Json.Str mode);
      ("seed", jint seed);
      ("engine", Json.Str engine);
    ]
  | Op_submitted { op; choose_evaluations } ->
    [ ("op", json_of_op op); ("choose_evaluations", jint choose_evaluations) ]
  | Op_executed
      { index; designer; kind; evaluations; newly_violated; resolved; skipped; spin }
    ->
    [
      ("index", jint index);
      ("designer", Json.Str designer);
      ("kind", Json.Str kind);
      ("evaluations", jint evaluations);
      ("newly_violated", json_of_ints newly_violated);
      ("resolved", json_of_ints resolved);
      ("skipped", json_of_ints skipped);
      ("spin", Json.Bool spin);
    ]
  | Propagation_started { constraints } -> [ ("constraints", jint constraints) ]
  | Propagation_finished { engine; seeded; evaluations; revisions; waves; empties; fixpoint }
    ->
    [
      ("engine", Json.Str engine);
      ("seeded", jint seeded);
      ("evaluations", jint evaluations);
      ("revisions", jint revisions);
      ("waves", json_of_ints waves);
      ("empties", jint empties);
      ("fixpoint", Json.Bool fixpoint);
    ]
  | Constraint_status_changed { cid; old_status; new_status } ->
    [
      ("cid", jint cid);
      ("old", Json.Str (status_to_string old_status));
      ("new", Json.Str (status_to_string new_status));
    ]
  | Op_completed { index; at } -> [ ("index", jint index); ("at", jint at) ]
  | Turn_started { designer; at } ->
    [ ("designer", Json.Str designer); ("at", jint at) ]
  | Notification_pushed { recipient; op_index; events; violations } ->
    [
      ("recipient", Json.Str recipient);
      ("op_index", jint op_index);
      ("events", json_of_strings events);
      ("violations", json_of_ints violations);
    ]
  | Notification_delivered { recipient; op_index; sent_at; delivered_at; events; violations }
    ->
    [
      ("recipient", Json.Str recipient);
      ("op_index", jint op_index);
      ("sent_at", jint sent_at);
      ("delivered_at", jint delivered_at);
      ("events", json_of_strings events);
      ("violations", json_of_ints violations);
    ]
  | Designer_decision { designer; heuristic; target; alpha; beta } ->
    [
      ("designer", Json.Str designer);
      ("heuristic", Json.Str (heuristic_to_string heuristic));
      ("target", match target with Some t -> Json.Str t | None -> Json.Null);
      ("alpha", jint alpha);
      ("beta", jint beta);
    ]
  | Notification_dropped { recipient; op_index; at }
  | Notification_duplicated { recipient; op_index; at } ->
    [
      ("recipient", Json.Str recipient);
      ("op_index", jint op_index);
      ("at", jint at);
    ]
  | Designer_crashed { designer; at } | Designer_restarted { designer; at } ->
    [ ("designer", Json.Str designer); ("at", jint at) ]
  | Requirement_shifted { prop; value; at } ->
    [ ("prop", Json.Str prop); ("value", Json.Num value); ("at", jint at) ]
  | Pool_retry { index; attempt; reason; requeued } ->
    [
      ("index", jint index);
      ("attempt", jint attempt);
      ("reason", Json.Str reason);
      ("requeued", jint requeued);
    ]
  | Run_finished
      { completed; operations; evaluations; setup_evaluations; spins; violations }
    ->
    [
      ("completed", Json.Bool completed);
      ("operations", jint operations);
      ("evaluations", jint evaluations);
      ("setup_evaluations", jint setup_evaluations);
      ("spins", jint spins);
      ("violations", json_of_ints violations);
    ]

let to_json stamped =
  Json.Obj
    ([
       ("seq", jint stamped.seq);
       ("clock", jint stamped.clock);
       ("type", Json.Str (kind_label stamped.event));
     ]
    @ fields_of_event stamped.event)

let to_line stamped = Json.to_string (to_json stamped)

(* {2 Decoding} *)

exception Decode_error of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Decode_error msg)) fmt

let get j key = match Json.member key j with Some v -> v | None -> fail "missing field %s" key

let get_int j key =
  match Json.to_int (get j key) with Some i -> i | None -> fail "field %s: expected int" key

let get_str j key =
  match Json.to_str (get j key) with Some s -> s | None -> fail "field %s: expected string" key

let get_bool j key =
  match Json.to_bool (get j key) with Some b -> b | None -> fail "field %s: expected bool" key

let get_ints j key =
  match Json.to_list (get j key) with
  | None -> fail "field %s: expected array" key
  | Some items ->
    List.map
      (fun item ->
        match Json.to_int item with
        | Some i -> i
        | None -> fail "field %s: expected int element" key)
      items

let get_strings j key =
  match Json.to_list (get j key) with
  | None -> fail "field %s: expected array" key
  | Some items ->
    List.map
      (fun item ->
        match Json.to_str item with
        | Some s -> s
        | None -> fail "field %s: expected string element" key)
      items

(* Backward-compatible readers: traces recorded before the incremental
   engine lack the per-engine fields, so decoding falls back to defaults
   instead of failing. *)
let get_str_default j key default =
  match Json.member key j with
  | None -> default
  | Some v -> (
    match Json.to_str v with Some s -> s | None -> fail "field %s: expected string" key)

let get_int_default j key default =
  match Json.member key j with
  | None -> default
  | Some v -> (
    match Json.to_int v with Some i -> i | None -> fail "field %s: expected int" key)

let get_str_opt j key =
  match Json.member key j with
  | Some Json.Null | None -> None
  | Some v -> (
    match Json.to_str v with Some s -> Some s | None -> fail "field %s: expected string or null" key)

let value_of_json = function
  | Json.Num f -> Vnum f
  | Json.Obj _ as o -> (
    match Json.member "sym" o with
    | Some (Json.Str s) -> Vsym s
    | _ -> fail "bad value encoding")
  | _ -> fail "bad value encoding"

let subproblem_of_json j =
  {
    sb_name = get_str j "name";
    sb_owner = get_str j "owner";
    sb_inputs = get_strings j "inputs";
    sb_outputs = get_strings j "outputs";
    sb_constraints = get_ints j "constraints";
    sb_depends_on = get_strings j "depends_on";
    sb_object = get_str_opt j "object";
  }

let op_of_json j =
  let kind =
    match get_str j "kind" with
    | "synthesis" -> (
      match Json.to_list (get j "assign") with
      | None -> fail "synthesis: expected assign array"
      | Some pairs ->
        Synthesis
          (List.map
             (fun pair ->
               match Json.to_list pair with
               | Some [ Json.Str prop; v ] -> (prop, value_of_json v)
               | _ -> fail "synthesis: bad assignment pair")
             pairs))
    | "verification" -> Verification (get_ints j "cids")
    | "decompose" -> (
      match Json.to_list (get j "subproblems") with
      | None -> fail "decompose: expected subproblems array"
      | Some subs -> Decompose (List.map subproblem_of_json subs))
    | k -> fail "unknown op kind %s" k
  in
  {
    op_designer = get_str j "designer";
    op_problem = get_int j "problem";
    op_kind = kind;
    op_motivated_by = get_ints j "motivated_by";
  }

let status_field j key =
  let s = get_str j key in
  match status_of_string s with
  | Some st -> st
  | None -> fail "field %s: unknown status %s" key s

let event_of_json j =
  match get_str j "type" with
  | "run_started" ->
    Run_started
      {
        scenario = get_str j "scenario";
        mode = get_str j "mode";
        seed = get_int j "seed";
        engine = get_str_default j "engine" "full";
      }
  | "op_submitted" ->
    Op_submitted
      { op = op_of_json (get j "op"); choose_evaluations = get_int j "choose_evaluations" }
  | "op_executed" ->
    Op_executed
      {
        index = get_int j "index";
        designer = get_str j "designer";
        kind = get_str j "kind";
        evaluations = get_int j "evaluations";
        newly_violated = get_ints j "newly_violated";
        resolved = get_ints j "resolved";
        skipped = get_ints j "skipped";
        spin = get_bool j "spin";
      }
  | "propagation_started" ->
    Propagation_started { constraints = get_int j "constraints" }
  | "propagation_finished" ->
    let waves = get_ints j "waves" in
    Propagation_finished
      {
        engine = get_str_default j "engine" "full";
        seeded = get_int_default j "seeded" (match waves with w :: _ -> w | [] -> 0);
        evaluations = get_int j "evaluations";
        revisions = get_int_default j "revisions" (List.fold_left ( + ) 0 waves);
        waves;
        empties = get_int j "empties";
        fixpoint = get_bool j "fixpoint";
      }
  | "constraint_status_changed" ->
    Constraint_status_changed
      {
        cid = get_int j "cid";
        old_status = status_field j "old";
        new_status = status_field j "new";
      }
  | "op_completed" ->
    Op_completed { index = get_int j "index"; at = get_int j "at" }
  | "turn_started" ->
    Turn_started { designer = get_str j "designer"; at = get_int j "at" }
  | "notification_pushed" ->
    Notification_pushed
      {
        recipient = get_str j "recipient";
        (* traces recorded before the checker subsystem lack the pairing
           index; -1 marks "unknown operation" *)
        op_index = get_int_default j "op_index" (-1);
        events = get_strings j "events";
        violations = get_ints j "violations";
      }
  | "notification_delivered" ->
    Notification_delivered
      {
        recipient = get_str j "recipient";
        op_index = get_int j "op_index";
        sent_at = get_int j "sent_at";
        delivered_at = get_int j "delivered_at";
        events = get_strings j "events";
        violations = get_ints j "violations";
      }
  | "designer_decision" ->
    let h = get_str j "heuristic" in
    Designer_decision
      {
        designer = get_str j "designer";
        heuristic =
          (match heuristic_of_string h with
          | Some h -> h
          | None -> fail "unknown heuristic %s" h);
        target = get_str_opt j "target";
        alpha = get_int j "alpha";
        beta = get_int j "beta";
      }
  | "notification_dropped" ->
    Notification_dropped
      {
        recipient = get_str j "recipient";
        op_index = get_int j "op_index";
        at = get_int j "at";
      }
  | "notification_duplicated" ->
    Notification_duplicated
      {
        recipient = get_str j "recipient";
        op_index = get_int j "op_index";
        at = get_int j "at";
      }
  | "designer_crashed" ->
    Designer_crashed { designer = get_str j "designer"; at = get_int j "at" }
  | "designer_restarted" ->
    Designer_restarted { designer = get_str j "designer"; at = get_int j "at" }
  | "requirement_shifted" ->
    let value =
      match Json.to_float (get j "value") with
      | Some v -> v
      | None -> fail "field value: expected number"
    in
    Requirement_shifted { prop = get_str j "prop"; value; at = get_int j "at" }
  | "pool_retry" ->
    Pool_retry
      {
        index = get_int j "index";
        attempt = get_int j "attempt";
        reason = get_str j "reason";
        requeued = get_int j "requeued";
      }
  | "run_finished" ->
    Run_finished
      {
        completed = get_bool j "completed";
        operations = get_int j "operations";
        evaluations = get_int j "evaluations";
        setup_evaluations = get_int j "setup_evaluations";
        spins = get_int j "spins";
        violations = get_ints j "violations";
      }
  | t -> fail "unknown event type %s" t

let of_json j =
  match
    { seq = get_int j "seq"; clock = get_int j "clock"; event = event_of_json j }
  with
  | stamped -> Ok stamped
  | exception Decode_error msg -> Error msg

let of_line line =
  match Json.parse line with
  | Error msg -> Error (Printf.sprintf "bad JSON: %s" msg)
  | Ok j -> of_json j

(* {2 Files} *)

let read_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | contents ->
    let lines =
      String.split_on_char '\n' contents
      |> List.filter (fun l -> String.trim l <> "")
    in
    let rec decode acc lineno = function
      | [] -> Ok (List.rev acc)
      | line :: rest -> (
        match of_line line with
        | Ok stamped -> decode (stamped :: acc) (lineno + 1) rest
        | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
    in
    decode [] 1 lines
