(** The emit path.

    Instrumented layers hold a [Tracer.t] (by default {!null}) and guard
    every emission site with {!active}, so a disabled tracer costs one
    immediate-field read per site — no event is even constructed:

    {[
      if Tracer.active tr then
        Tracer.emit tr (Event.Propagation_started { constraints })
    ]}

    The tracer stamps each event with a monotonic sequence number and the
    current logical clock (the number of design operations executed, which
    the DPM advances at the start of each transition). *)

type t

val null : t
(** The disabled tracer: {!active} is false, every operation is a no-op. *)

val create : Sink.t -> t

val active : t -> bool
val emit : t -> Event.t -> unit
(** Stamp and write. No-op on a disabled tracer (but prefer guarding with
    {!active} so the event itself is never built). *)

val set_clock : t -> int -> unit
val clock : t -> int
val seq : t -> int
(** Number of events emitted so far. *)

val close : t -> unit
(** Close the underlying sink. *)
