module Rng = Adpm_util.Rng

type plan = {
  cp_cut : float;
  cp_dribble : float;
  cp_delay : float;
  cp_delay_max : float;
  cp_split : float;
}

let none =
  { cp_cut = 0.; cp_dribble = 0.; cp_delay = 0.; cp_delay_max = 0.; cp_split = 0. }

let default =
  {
    cp_cut = 0.02;
    cp_dribble = 0.05;
    cp_delay = 0.15;
    cp_delay_max = 0.02;
    cp_split = 0.3;
  }

type stats = {
  mutable st_conns : int;
  mutable st_cuts : int;
  mutable st_dribbles : int;
  mutable st_delays : int;
  mutable st_splits : int;
}

(* One queued delivery: [sg_bytes] from [sg_off], not before [sg_due]. *)
type seg = { sg_due : float; sg_bytes : Bytes.t; mutable sg_off : int }

(* One proxied direction: bytes read from [dr_src] are queued (possibly
   mangled) and drained into [dr_dst]. *)
type dir = {
  dr_src : Unix.file_descr;
  dr_dst : Unix.file_descr;
  dr_segs : seg Queue.t;
  mutable dr_eof : bool;  (* src hit EOF; flush then shutdown dst's send side *)
  mutable dr_shut : bool;
}

type link = {
  lk_client : Unix.file_descr;
  lk_server : Unix.file_descr;
  lk_rng : Rng.t;
  lk_c2s : dir;
  lk_s2c : dir;
  mutable lk_cutting : bool;  (* flush queues, then hard-close both fds *)
  mutable lk_dead : bool;
}

type t = {
  ch_plan : plan;
  ch_listen : Unix.file_descr;
  ch_listen_path : string option;
  ch_upstream : Unix.sockaddr;
  ch_rng : Rng.t;
  ch_stats : stats;
  mutable ch_links : link list;
}

let stats t = t.ch_stats

let create ~seed ~plan ~listen ~upstream =
  let domain, path =
    match listen with
    | Unix.ADDR_UNIX p ->
      if Sys.file_exists p then (try Unix.unlink p with Unix.Unix_error _ -> ());
      (Unix.PF_UNIX, Some p)
    | Unix.ADDR_INET _ -> (Unix.PF_INET, None)
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  Unix.set_close_on_exec fd;
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  (try
     Unix.bind fd listen;
     Unix.listen fd 64;
     Unix.set_nonblock fd
   with e ->
     Unix.close fd;
     raise e);
  {
    ch_plan = plan;
    ch_listen = fd;
    ch_listen_path = path;
    ch_upstream = upstream;
    ch_rng = Rng.create seed;
    ch_stats =
      { st_conns = 0; st_cuts = 0; st_dribbles = 0; st_delays = 0; st_splits = 0 };
    ch_links = [];
  }

let now () = Unix.gettimeofday ()

let enqueue_slice dir ~due buf off len =
  if len > 0 then
    Queue.add { sg_due = due; sg_bytes = Bytes.sub buf off len; sg_off = 0 }
      dir.dr_segs

(* Mangle one freshly-read chunk according to the plan. Five values are
   drawn from the link's RNG in a fixed order on {e every} chunk —
   whether or not each fault fires — so the byte stream's content never
   perturbs the fault schedule: determinism depends only on the seed and
   the chunk boundaries (lib/fault's fixed-draw-order idiom). *)
let ingest t link dir buf len =
  let p = t.ch_plan in
  let r = link.lk_rng in
  let cut_d = Rng.float r 1.0 in
  let drib_d = Rng.float r 1.0 in
  let delay_d = Rng.float r 1.0 in
  let split_d = Rng.float r 1.0 in
  let aux = Rng.float r 1.0 in
  let t0 = now () in
  if cut_d < p.cp_cut then begin
    (* mid-frame disconnect: forward a prefix, then kill the link *)
    t.ch_stats.st_cuts <- t.ch_stats.st_cuts + 1;
    let keep = int_of_float (aux *. float_of_int len) in
    enqueue_slice dir ~due:t0 buf 0 keep;
    link.lk_cutting <- true
  end
  else if drib_d < p.cp_dribble then begin
    (* slow-loris: one byte at a time, spread over ~cp_delay_max *)
    t.ch_stats.st_dribbles <- t.ch_stats.st_dribbles + 1;
    let gap = if len > 1 then p.cp_delay_max /. float_of_int len else 0. in
    for i = 0 to len - 1 do
      enqueue_slice dir ~due:(t0 +. (gap *. float_of_int i)) buf i 1
    done
  end
  else if delay_d < p.cp_delay then begin
    t.ch_stats.st_delays <- t.ch_stats.st_delays + 1;
    enqueue_slice dir ~due:(t0 +. (aux *. p.cp_delay_max)) buf 0 len
  end
  else if split_d < p.cp_split && len > 1 then begin
    (* partial write: the peer sees the chunk arrive in two pieces *)
    t.ch_stats.st_splits <- t.ch_stats.st_splits + 1;
    let cut_at = 1 + int_of_float (aux *. float_of_int (len - 1)) in
    enqueue_slice dir ~due:t0 buf 0 cut_at;
    enqueue_slice dir ~due:t0 buf cut_at (len - cut_at)
  end
  else enqueue_slice dir ~due:t0 buf 0 len

let read_dir t link dir =
  let chunk = Bytes.create 2048 in
  match Unix.read dir.dr_src chunk 0 (Bytes.length chunk) with
  | 0 -> dir.dr_eof <- true
  | n -> ingest t link dir chunk n
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
    ()
  | exception Unix.Unix_error _ ->
    dir.dr_eof <- true;
    Queue.clear dir.dr_segs

let flush_dir dir =
  let t0 = now () in
  let rec loop () =
    match Queue.peek_opt dir.dr_segs with
    | None -> ()
    | Some seg when seg.sg_due > t0 -> ()
    | Some seg -> (
      let remaining = Bytes.length seg.sg_bytes - seg.sg_off in
      match Unix.write dir.dr_dst seg.sg_bytes seg.sg_off remaining with
      | written ->
        seg.sg_off <- seg.sg_off + written;
        if seg.sg_off >= Bytes.length seg.sg_bytes then begin
          ignore (Queue.pop dir.dr_segs : seg);
          loop ()
        end
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
        ()
      | exception Unix.Unix_error _ ->
        (* dst is gone; drop the queue and pass the EOF upstream *)
        Queue.clear dir.dr_segs;
        dir.dr_eof <- true)
  in
  loop ()

(* Propagate a half-close once a drained direction hit EOF: the peer sees
   exactly the shutdown sequence it would see without the proxy. *)
let settle_dir dir =
  if dir.dr_eof && Queue.is_empty dir.dr_segs && not dir.dr_shut then begin
    dir.dr_shut <- true;
    try Unix.shutdown dir.dr_dst Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ()
  end

let close_link link =
  if not link.lk_dead then begin
    link.lk_dead <- true;
    (try Unix.close link.lk_client with Unix.Unix_error _ -> ());
    try Unix.close link.lk_server with Unix.Unix_error _ -> ()
  end

let link_finished link =
  (link.lk_cutting
  && Queue.is_empty link.lk_c2s.dr_segs
  && Queue.is_empty link.lk_s2c.dr_segs)
  || (link.lk_c2s.dr_shut && link.lk_s2c.dr_shut)

let accept_new t =
  let rec loop () =
    match Unix.accept t.ch_listen with
    | cfd, _ -> (
      (* close-on-exec on both legs: if the host process forks+execs (a
         harness respawning the daemon under test), the child must not
         inherit link fds — a cut link would otherwise stay open from
         the client's point of view and never deliver its EOF *)
      Unix.set_close_on_exec cfd;
      t.ch_stats.st_conns <- t.ch_stats.st_conns + 1;
      match
        let domain =
          match t.ch_upstream with
          | Unix.ADDR_UNIX _ -> Unix.PF_UNIX
          | Unix.ADDR_INET _ -> Unix.PF_INET
        in
        let sfd = Unix.socket domain Unix.SOCK_STREAM 0 in
        Unix.set_close_on_exec sfd;
        (try Unix.connect sfd t.ch_upstream
         with e ->
           Unix.close sfd;
           raise e);
        sfd
      with
      | sfd ->
        Unix.set_nonblock cfd;
        Unix.set_nonblock sfd;
        let link =
          {
            lk_client = cfd;
            lk_server = sfd;
            (* per-connection substream: the fault schedule of link N is
               independent of how many bytes links 1..N-1 carried *)
            lk_rng = Rng.split t.ch_rng;
            lk_c2s =
              {
                dr_src = cfd;
                dr_dst = sfd;
                dr_segs = Queue.create ();
                dr_eof = false;
                dr_shut = false;
              };
            lk_s2c =
              {
                dr_src = sfd;
                dr_dst = cfd;
                dr_segs = Queue.create ();
                dr_eof = false;
                dr_shut = false;
              };
            lk_cutting = false;
            lk_dead = false;
          }
        in
        t.ch_links <- link :: t.ch_links;
        loop ()
      | exception Unix.Unix_error _ ->
        (* upstream down (e.g. daemon mid-restart): the client sees an
           immediate EOF and its own retry logic takes over *)
        (try Unix.close cfd with Unix.Unix_error _ -> ());
        loop ())
    | exception
        Unix.Unix_error
          ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ECONNABORTED), _, _)
      ->
      ()
  in
  loop ()

(* Earliest due time among queued segments, for the select timeout. *)
let next_due t =
  List.fold_left
    (fun acc link ->
      let dir_due d acc =
        match Queue.peek_opt d.dr_segs with
        | Some seg -> Float.min acc seg.sg_due
        | None -> acc
      in
      dir_due link.lk_c2s (dir_due link.lk_s2c acc))
    infinity t.ch_links

let step ?(timeout = 0.05) t =
  let timeout =
    let due = next_due t in
    if due = infinity then timeout
    else Float.max 0. (Float.min timeout (due -. now ()))
  in
  let reads =
    t.ch_listen
    :: List.concat_map
         (fun l ->
           if l.lk_dead || l.lk_cutting then []
           else
             (if l.lk_c2s.dr_eof then [] else [ l.lk_c2s.dr_src ])
             @ if l.lk_s2c.dr_eof then [] else [ l.lk_s2c.dr_src ])
         t.ch_links
  in
  let writes =
    List.concat_map
      (fun l ->
        if l.lk_dead then []
        else
          let due d =
            match Queue.peek_opt d.dr_segs with
            | Some seg when seg.sg_due <= now () -> [ d.dr_dst ]
            | _ -> []
          in
          due l.lk_c2s @ due l.lk_s2c)
      t.ch_links
  in
  (match Unix.select reads writes [] timeout with
  | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> ()
  | readable, _, _ ->
    if List.memq t.ch_listen readable then accept_new t;
    List.iter
      (fun l ->
        if not l.lk_dead then begin
          if
            (not l.lk_cutting)
            && (not l.lk_c2s.dr_eof)
            && List.memq l.lk_c2s.dr_src readable
          then read_dir t l l.lk_c2s;
          if
            (not l.lk_cutting)
            && (not l.lk_s2c.dr_eof)
            && List.memq l.lk_s2c.dr_src readable
          then read_dir t l l.lk_s2c
        end)
      t.ch_links);
  List.iter
    (fun l ->
      if not l.lk_dead then begin
        flush_dir l.lk_c2s;
        flush_dir l.lk_s2c;
        if l.lk_cutting then begin
          if link_finished l then close_link l
        end
        else begin
          settle_dir l.lk_c2s;
          settle_dir l.lk_s2c;
          if link_finished l then close_link l
        end
      end)
    t.ch_links;
  t.ch_links <- List.filter (fun l -> not l.lk_dead) t.ch_links

let stop t =
  List.iter close_link t.ch_links;
  t.ch_links <- [];
  (try Unix.close t.ch_listen with Unix.Unix_error _ -> ());
  match t.ch_listen_path with
  | Some p -> ( try Unix.unlink p with Unix.Unix_error _ | Sys_error _ -> ())
  | None -> ()
