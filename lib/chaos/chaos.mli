(** Socket-level chaos proxy for hardening the teamsimd stack.

    Sits between a client and the daemon, forwarding bytes in both
    directions while injecting faults drawn deterministically from a
    seeded {!Adpm_util.Rng}: mid-frame disconnects (a random prefix of a
    chunk is delivered, then the link dies), partial writes (a chunk
    arrives split in two), delivery delays, and slow-loris dribble (a
    chunk arrives one byte at a time). Each accepted connection gets its
    own [Rng.split] substream, and every chunk draws the same five
    values in a fixed order whether or not a fault fires — so a given
    seed produces the same fault schedule regardless of payload content
    (the lib/fault idiom).

    Like {!Adpm_serve.Daemon}, the proxy is a single-threaded
    non-blocking [select] loop driven by {!step}, so a test can host the
    client, the proxy, and the daemon in one process, or run the proxy
    in-process against a daemon in another. *)

(** Per-chunk fault probabilities, each drawn independently; precedence
    when several fire is cut > dribble > delay > split. *)
type plan = {
  cp_cut : float;  (** P(kill the link after a random prefix of the chunk) *)
  cp_dribble : float;  (** P(deliver byte-by-byte over [cp_delay_max]) *)
  cp_delay : float;  (** P(hold the chunk up to [cp_delay_max] seconds) *)
  cp_delay_max : float;  (** delay/dribble time scale, seconds *)
  cp_split : float;  (** P(deliver the chunk as two back-to-back writes) *)
}

val none : plan
(** Pure passthrough — every probability 0. *)

val default : plan
(** Mild chaos: 2% cuts, 5% dribbles, 15% delays, 30% splits, 20 ms
    scale. *)

type stats = {
  mutable st_conns : int;
  mutable st_cuts : int;
  mutable st_dribbles : int;
  mutable st_delays : int;
  mutable st_splits : int;
}

type t

val create :
  seed:int ->
  plan:plan ->
  listen:Unix.sockaddr ->
  upstream:Unix.sockaddr ->
  t
(** Bind [listen] (unlinking a stale unix-socket path). Each accepted
    client gets a fresh upstream connection; if the upstream is down the
    client is closed immediately (it sees EOF and retries).
    @raise Unix.Unix_error when [listen] cannot be bound. *)

val step : ?timeout:float -> t -> unit
(** One proxy iteration: select (bounded by [timeout], default 0.05 s,
    and by the earliest queued delivery), accept, read + inject, flush
    due segments, propagate half-closes, reap dead links. *)

val stats : t -> stats
val stop : t -> unit
