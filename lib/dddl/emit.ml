(* Canonical DDDL emission.

   [Printer] knows how to render every AST form; this module pins down the
   *artifact* contract on top of it: the emitted text is the canonical
   spelling of the scenario, and parsing it back yields a structurally
   identical declaration. Generated scenarios go through [checked] so a
   rendering bug can never silently ship an artifact that elaborates to a
   different network than the in-memory declaration. *)

let scenario = Printer.scenario

let roundtrip decl =
  let src = scenario decl in
  match Parser.parse src with
  | parsed ->
    if parsed = decl then Ok src
    else
      Error
        (Printf.sprintf
           "emitted DDDL for %s does not round-trip: parse(emit(m)) <> m"
           decl.Ast.sd_name)
  | exception Lexer.Error { line; col; message } ->
    Error
      (Printf.sprintf "emitted DDDL for %s fails to lex at %d:%d: %s"
         decl.Ast.sd_name line col message)
  | exception Parser.Error { line; col; message } ->
    Error
      (Printf.sprintf "emitted DDDL for %s fails to parse at %d:%d: %s"
         decl.Ast.sd_name line col message)

let checked decl =
  match roundtrip decl with
  | Ok src -> src
  | Error msg -> raise (Elaborate.Error msg)
