open Adpm_interval
open Adpm_expr
open Adpm_csp
open Adpm_core
open Adpm_teamsim

exception Error of string

let errorf fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let check_unique what names =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun n ->
      if Hashtbl.mem seen n then errorf "duplicate %s %s" what n
      else Hashtbl.replace seen n ())
    names

let domain_of_decl name = function
  | Ast.D_real (lo, hi) ->
    if lo >= hi then errorf "property %s: empty real domain [%g, %g]" name lo hi;
    Domain.continuous lo hi
  | Ast.D_discrete values ->
    if values = [] then errorf "property %s: empty discrete domain" name;
    Domain.finite values
  | Ast.D_symbol values ->
    if values = [] then errorf "property %s: empty symbol domain" name;
    Domain.symbolic values

(* The DDDL declaration says which direction of the property helps satisfy
   the constraint; the network stores the direction of (lhs - rhs). *)
let diff_direction rel helps =
  match (rel, helps) with
  | Constr.Le, `Increasing | Constr.Ge, `Decreasing -> Monotone.Decreasing
  | Constr.Le, `Decreasing | Constr.Ge, `Increasing -> Monotone.Increasing
  | Constr.Eq, _ ->
    errorf "monotonicity declarations make no sense on equality constraints"

let validate decl =
  let prop_names = List.map (fun p -> p.Ast.pd_name) decl.Ast.sd_properties in
  check_unique "property" prop_names;
  (* malformed domains surface at elaboration, not first build *)
  List.iter
    (fun p -> ignore (domain_of_decl p.Ast.pd_name p.Ast.pd_domain))
    decl.Ast.sd_properties;
  check_unique "constraint" (List.map (fun c -> c.Ast.cd_name) decl.Ast.sd_constraints);
  check_unique "object" (List.map fst decl.Ast.sd_objects);
  let known p = List.mem p prop_names in
  let check_expr ctx e =
    List.iter
      (fun v -> if not (known v) then errorf "%s references unknown property %s" ctx v)
      (Expr.vars e)
  in
  List.iter
    (fun c ->
      let ctx = Printf.sprintf "constraint %s" c.Ast.cd_name in
      check_expr ctx c.Ast.cd_lhs;
      check_expr ctx c.Ast.cd_rhs;
      let args = Expr.vars c.Ast.cd_lhs @ Expr.vars c.Ast.cd_rhs in
      List.iter
        (fun m ->
          if not (List.mem m.Ast.md_prop args) then
            errorf "%s declares monotonicity in %s, which is not an argument"
              ctx m.Ast.md_prop)
        c.Ast.cd_monotone)
    decl.Ast.sd_constraints;
  List.iter
    (fun (target, model) ->
      if not (known target) then errorf "model targets unknown property %s" target;
      check_expr (Printf.sprintf "model of %s" target) model)
    decl.Ast.sd_models;
  List.iter
    (fun (target, _) ->
      if not (known target) then
        errorf "requirement targets unknown property %s" target)
    decl.Ast.sd_requirements;
  List.iter
    (fun (obj, props) ->
      List.iter
        (fun p ->
          if not (known p) then errorf "object %s lists unknown property %s" obj p)
        props)
    decl.Ast.sd_objects;
  let rec check_problem p =
    List.iter
      (fun prop ->
        if not (known prop) then
          errorf "problem %s references unknown property %s" p.Ast.prd_name prop)
      (p.Ast.prd_inputs @ p.Ast.prd_outputs);
    (match p.Ast.prd_object with
    | Some o when not (List.mem_assoc o decl.Ast.sd_objects) ->
      errorf "problem %s references unknown object %s" p.Ast.prd_name o
    | Some _ | None -> ());
    List.iter
      (fun cname ->
        if
          not
            (List.exists
               (fun c -> String.equal c.Ast.cd_name cname)
               decl.Ast.sd_constraints)
        then errorf "problem %s references unknown constraint %s" p.Ast.prd_name cname)
      p.Ast.prd_constraints;
    let sibling_names = List.map (fun c -> c.Ast.prd_name) p.Ast.prd_children in
    check_unique "subproblem" sibling_names;
    List.iter
      (fun child ->
        List.iter
          (fun dep ->
            if not (List.mem dep sibling_names) then
              errorf "problem %s depends on unknown sibling %s"
                child.Ast.prd_name dep)
          child.Ast.prd_after;
        check_problem child)
      p.Ast.prd_children
  in
  check_problem decl.Ast.sd_problem

let build decl ~mode =
  let net = Network.create () in
  List.iter
    (fun p ->
      let meta =
        match p.Ast.pd_levels with
        | Some levels -> [ ("levels", levels) ]
        | None -> []
      in
      Network.add_prop net ~meta p.Ast.pd_name
        (domain_of_decl p.Ast.pd_name p.Ast.pd_domain))
    decl.Ast.sd_properties;
  let constraint_ids = Hashtbl.create 16 in
  List.iter
    (fun c ->
      let built =
        Network.add_constraint net ~name:c.Ast.cd_name c.Ast.cd_lhs c.Ast.cd_rel
          c.Ast.cd_rhs
      in
      Hashtbl.replace constraint_ids c.Ast.cd_name built.Constr.id;
      List.iter
        (fun m ->
          Network.declare_monotone net built.Constr.id m.Ast.md_prop
            (diff_direction c.Ast.cd_rel m.Ast.md_helps))
        c.Ast.cd_monotone)
    decl.Ast.sd_constraints;
  List.iter
    (fun (target, value) -> Network.assign net target (Value.Num value))
    decl.Ast.sd_requirements;
  let objects =
    List.map
      (fun (name, properties) -> Design_object.make ~name ~properties ())
      decl.Ast.sd_objects
  in
  let cids names = List.map (fun n -> Hashtbl.find constraint_ids n) names in
  let top_decl = decl.Ast.sd_problem in
  let top =
    Problem.make ~id:0 ~name:top_decl.Ast.prd_name ~owner:top_decl.Ast.prd_owner
      ~inputs:top_decl.Ast.prd_inputs ~outputs:top_decl.Ast.prd_outputs
      ~constraints:(cids top_decl.Ast.prd_constraints)
      ?object_name:top_decl.Ast.prd_object ()
  in
  let dpm = Dpm.create ~mode net ~objects ~top in
  (* register subproblems depth-first; resolve sibling ordering afterwards *)
  let rec register parent_id siblings_tbl p =
    let id = Dpm.fresh_problem_id dpm in
    let built =
      Problem.make ~id ~name:p.Ast.prd_name ~owner:p.Ast.prd_owner
        ~inputs:p.Ast.prd_inputs ~outputs:p.Ast.prd_outputs
        ~constraints:(cids p.Ast.prd_constraints)
        ?object_name:p.Ast.prd_object ()
    in
    Dpm.register_problem dpm ~parent:(Some parent_id) built;
    Hashtbl.replace siblings_tbl p.Ast.prd_name built;
    let child_tbl = Hashtbl.create 4 in
    List.iter (fun child -> register id child_tbl child) p.Ast.prd_children;
    (* resolve this level's orderings *)
    List.iter
      (fun child ->
        let built_child = Hashtbl.find child_tbl child.Ast.prd_name in
        List.iter
          (fun dep ->
            Problem.add_dependency built_child
              (Hashtbl.find child_tbl dep).Problem.pr_id)
          child.Ast.prd_after)
      p.Ast.prd_children
  in
  let top_children_tbl = Hashtbl.create 4 in
  List.iter
    (fun child -> register 0 top_children_tbl child)
    top_decl.Ast.prd_children;
  List.iter
    (fun child ->
      let built_child = Hashtbl.find top_children_tbl child.Ast.prd_name in
      List.iter
        (fun dep ->
          Problem.add_dependency built_child
            (Hashtbl.find top_children_tbl dep).Problem.pr_id)
        child.Ast.prd_after)
    top_decl.Ast.prd_children;
  dpm

let scenario decl =
  validate decl;
  Scenario.make ~name:decl.Ast.sd_name
    ~description:(Printf.sprintf "DDDL scenario %s" decl.Ast.sd_name)
    ~models:decl.Ast.sd_models
    (fun ~mode -> build decl ~mode)

(* Render a lexer/parser position as a caret message so a misplaced token
   in an embedded or on-disk DDDL source points at the offending spot:

     line 2, column 12: expected a property name
       property ; }
                ^                                                       *)
let caret_message src ~line ~col message =
  let source_line =
    match List.nth_opt (String.split_on_char '\n' src) (line - 1) with
    | Some l -> l
    | None -> ""
  in
  Printf.sprintf "line %d, column %d: %s\n  %s\n  %s^" line col message
    source_line
    (String.make (max 0 (col - 1)) ' ')

let load_string src =
  match Parser.parse src with
  | decl -> scenario decl
  | exception Lexer.Error { line; col; message } ->
    raise (Error (caret_message src ~line ~col message))
  | exception Parser.Error { line; col; message } ->
    raise (Error (caret_message src ~line ~col message))
