(** Elaboration of a DDDL description into a runnable TeamSim scenario.

    Performs the semantic checks the parser cannot (unknown property and
    constraint references, duplicate declarations, models targeting
    non-properties, monotonicity declarations naming properties outside the
    constraint) and produces a {!Adpm_teamsim.Scenario.t} whose build
    function constructs a fresh network, problem hierarchy and DPM per
    run. *)

exception Error of string

val scenario : Ast.scenario_decl -> Adpm_teamsim.Scenario.t
(** @raise Error on semantic errors. *)

val load_string : string -> Adpm_teamsim.Scenario.t
(** Parse then elaborate. Lexer and parser failures are re-raised as
    {!Error} with a caret-style message carrying the line, column and the
    offending source line, so every failure mode of a DDDL source string
    surfaces through one exception.
    @raise Error on lexical, syntactic or semantic errors. *)
