(** Canonical DDDL emission: render a scenario declaration back to text
    that the parser reads to a structurally identical AST.

    This is the artifact side of the scenario pipeline: every scenario —
    hand-written or generated — is a DDDL text, and [emit] is how a
    programmatically built declaration becomes one. *)

val scenario : Ast.scenario_decl -> string
(** Canonical rendering, parseable by {!Parser.parse}. *)

val roundtrip : Ast.scenario_decl -> (string, string) result
(** Render, re-parse, and compare: [Ok src] when [parse (emit m) = m],
    [Error msg] describing the divergence otherwise. *)

val checked : Ast.scenario_decl -> string
(** Like {!scenario} but verifies the round-trip first.
    @raise Elaborate.Error when the emitted text does not round-trip. *)
