(** The Notification Manager (NM).

    After each state transition the NM "alerts designers of
    constraint-related events, including violations and reductions of a
    property's feasible subspace", selecting the subset of the new state
    relevant to each designer (Section 2.2). Relevance is determined by
    subscriptions: a designer is subscribed to the properties of the
    problems they own, and receives an event when it touches a subscribed
    property. *)

open Adpm_interval
open Adpm_csp

type event =
  | Violation_detected of int  (** constraint id *)
  | Violation_resolved of int
  | Feasible_reduced of string * Domain.t
      (** property and its new, smaller feasible subspace *)
  | Feasible_empty of string
      (** every value of the property was found infeasible *)
  | Problem_update of int * Problem.status

type notification = { n_recipient : string; n_events : event list }

type subscriptions = (string * string list) list
(** designer name -> subscribed properties *)

val routed_events :
  args_of:(int -> string list) ->
  old_statuses:(int -> Constr.status) ->
  new_statuses:(int * Constr.status) list ->
  old_feasible:(string -> Domain.t) ->
  new_feasible:(string * Domain.t) list ->
  (string list * event) list
(** The raw event list {!diff} routes, each tagged with the properties it
    touches. Status transitions: entering [Violated] emits
    [Violation_detected]; leaving [Violated] (for [Satisfied] {e or}
    [Consistent]) emits [Violation_resolved]; any other transition is
    silent. Feasibility: an emptied domain emits [Feasible_empty] (never
    also [Feasible_reduced]); a strictly smaller measure emits
    [Feasible_reduced]; widening emits nothing. *)

val diff :
  subscriptions:subscriptions ->
  args_of:(int -> string list) ->
  old_statuses:(int -> Constr.status) ->
  new_statuses:(int * Constr.status) list ->
  old_feasible:(string -> Domain.t) ->
  new_feasible:(string * Domain.t) list ->
  notification list
(** Compute the per-designer event lists arising from a propagation result.
    [args_of] maps a constraint id to its argument properties (used for
    routing violation events). Only designers with at least one event get a
    notification. *)

val event_label : event -> string
(** Compact machine-readable rendering (e.g. ["violation-detected:3"]);
    the payload format of [Notification_pushed] / [Notification_delivered]
    trace events. *)

val detected_violations : notification -> int list
(** Ids of the constraints a notification reports newly violated. *)

val trace_pushed :
  Adpm_trace.Tracer.t -> op_index:int -> notification list -> unit
(** Emit one [Notification_pushed] trace event per notification (no-op on
    an inactive tracer) — the NM's side of the observability contract.
    [op_index] is the history index of the operation that raised them,
    pairing each push with its later delivery / drop fate. *)

val event_to_string : (int -> string) -> event -> string
(** Render an event; the function maps constraint ids to names. *)
