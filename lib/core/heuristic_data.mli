(** Constraint-based heuristic support data (Section 2.3).

    After each propagation, the DCM's raw results are "mined" into
    per-property data that directly supports the paper's three search
    heuristics:

    - the feasible subspace v_F(a_i) and its size relative to the initial
      range E_i (smallest-subspace-first ordering, Section 2.3.1; the
      relative size makes comparisons unit-free, addressing the paper's
      footnote about unit-dependent value-set sizes);
    - beta_i, the number of constraints in which a_i appears
      (most-constrained-first ordering, Section 2.3.2);
    - alpha_i, the number of {e violated} constraints in which a_i appears
      (conflict-resolution guidance, Section 2.3.3, equation 3);
    - per-direction repair votes: among the violated constraints that are
      monotonic in a_i, how many would be helped by increasing (resp.
      decreasing) its value (Section 3.1.1's "direction of value change
      likely to fix most violations"). *)

open Adpm_interval
open Adpm_csp

type prop_info = {
  hi_name : string;
  hi_assigned : Value.t option;
  hi_feasible : Domain.t;  (** v_F(a_i) from the last propagation *)
  hi_relative_size : float;
      (** measure of v_F relative to E_i, in [0, 1] *)
  hi_alpha : int;
  hi_beta : int;
  hi_up_helps : int list;
      (** all constraints that increasing a_i helps satisfy *)
  hi_down_helps : int list;
  hi_up_votes : int;
      (** violated constraints that increasing a_i would help *)
  hi_down_votes : int;
}

val mine_prop : Network.t -> string -> prop_info
(** @raise Not_found for unknown properties. *)

val indirect_beta : Network.t -> string -> int
(** The Section 2.3.2 extension: beta_i including constraints indirectly
    related to a_i through one intermediate constraint — i.e. every
    constraint touching a property that shares a constraint with a_i. *)

val indirect_alpha : Network.t -> string -> int
(** The same one-hop closure restricted to currently-violated
    constraints. *)

val mine : Network.t -> prop_info list
(** All numeric properties, in network insertion order. *)

(** Memoised mining keyed on {!Network.revision}: entries stay valid while
    the network is unchanged and are dropped wholesale on the first query
    after any mutation. Designer decision loops query the same properties
    repeatedly between operations, so this turns repeated mining into a
    table lookup. *)
module Cache : sig
  type t

  val create : unit -> t
  val reset : t -> unit

  val mine_prop : t -> Network.t -> string -> prop_info
  (** As {!val:mine_prop}, cached. *)
end

val preferred_direction : prop_info -> [ `Up | `Down | `None ]
(** Majority repair vote; [`None] on a tie or when no violated constraint
    is monotone in the property. *)

val pp_prop_info : Format.formatter -> prop_info -> unit
