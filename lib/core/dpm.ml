open Adpm_interval
open Adpm_csp
open Adpm_trace

type mode = Conventional | Adpm

let mode_to_string = function Conventional -> "conventional" | Adpm -> "ADPM"

let mode_of_string = function
  | "conventional" -> Some Conventional
  | "ADPM" | "adpm" -> Some Adpm
  | _ -> None

type engine = Full | Incremental

let engine_to_string = function Full -> "full" | Incremental -> "incremental"

let engine_of_string = function
  | "full" -> Some Full
  | "incremental" -> Some Incremental
  | _ -> None

type history_entry = {
  h_index : int;
  h_op : Operator.t;
  h_evaluations : int;
  h_new_violations : int;
  h_known_violations : int;
  h_spin : bool;
}

type result = {
  r_index : int;
  r_evaluations : int;
  r_newly_violated : int list;
  r_resolved : int list;
  r_status_changes : (int * Constr.status * Constr.status) list;
  r_skipped : int list;
  r_notifications : Notify.notification list;
  r_spin : bool;
}

type t = {
  d_mode : mode;
  mutable d_engine : engine;
  d_max_revisions : int;
  net : Network.t;
  probs : (int, Problem.t) Hashtbl.t;
  mutable prob_order : int list; (* reversed *)
  objs : (string, Design_object.t) Hashtbl.t;
  mutable obj_order : string list; (* reversed *)
  top : int;
  mutable next_pid : int;
  mutable ops : int;
  mutable evals : int;
  mutable spins : int;
  verified_at : (int, int) Hashtbl.t; (* cid -> op index of last verification *)
  modified_at : (string, int) Hashtbl.t; (* prop -> op index of last assignment *)
  mutable hist : history_entry list; (* reversed *)
  mutable d_tracer : Tracer.t;
  mutable d_revision_work : int; (* HC4 revisions done by DPM propagations *)
  d_heur_cache : Heuristic_data.Cache.t;
  (* relaxed-feasibility memo, valid for one network revision *)
  mutable d_relaxed_rev : int;
  d_relaxed : (string, Domain.t) Hashtbl.t;
}

let register_problem_internal t parent_id p =
  if Hashtbl.mem t.probs p.Problem.pr_id then
    invalid_arg
      (Printf.sprintf "Dpm: duplicate problem id %d" p.Problem.pr_id);
  Hashtbl.replace t.probs p.Problem.pr_id p;
  t.prob_order <- p.Problem.pr_id :: t.prob_order;
  if p.Problem.pr_id >= t.next_pid then t.next_pid <- p.Problem.pr_id + 1;
  match parent_id with
  | None -> ()
  | Some pid ->
    let parent = Hashtbl.find t.probs pid in
    Problem.link_child ~parent ~child:p

let create ~mode ?(engine = Incremental) ?(max_revisions = 10_000) net ~objects
    ~top =
  let t =
    {
      d_mode = mode;
      d_engine = engine;
      d_max_revisions = max_revisions;
      net;
      probs = Hashtbl.create 16;
      prob_order = [];
      objs = Hashtbl.create 16;
      obj_order = [];
      top = top.Problem.pr_id;
      next_pid = 0;
      ops = 0;
      evals = 0;
      spins = 0;
      verified_at = Hashtbl.create 64;
      modified_at = Hashtbl.create 64;
      hist = [];
      d_tracer = Tracer.null;
      d_revision_work = 0;
      d_heur_cache = Heuristic_data.Cache.create ();
      d_relaxed_rev = -1;
      d_relaxed = Hashtbl.create 32;
    }
  in
  List.iter
    (fun o ->
      Hashtbl.replace t.objs o.Design_object.o_name o;
      t.obj_order <- o.Design_object.o_name :: t.obj_order)
    objects;
  register_problem_internal t None top;
  t

let register_problem t ~parent p = register_problem_internal t parent p
let fresh_problem_id t = t.next_pid

let mode t = t.d_mode
let network t = t.net
let top_problem t = Hashtbl.find t.probs t.top
let problems t = List.rev_map (fun id -> Hashtbl.find t.probs id) t.prob_order
let find_problem t id = Hashtbl.find t.probs id

let problems_owned_by t designer =
  List.filter (fun p -> String.equal p.Problem.pr_owner designer) (problems t)

let objects t = List.rev_map (fun n -> Hashtbl.find t.objs n) t.obj_order
let find_object t name = Hashtbl.find_opt t.objs name

(* First-seen order; called once per operation via [subscriptions], so a
   seen-table beats the quadratic [List.mem]/append-at-end construction. *)
let designers t =
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let rev =
    List.fold_left
      (fun acc p ->
        let o = p.Problem.pr_owner in
        if Hashtbl.mem seen o then acc
        else begin
          Hashtbl.replace seen o ();
          o :: acc
        end)
      [] (problems t)
  in
  List.rev rev

let op_count t = t.ops
let eval_count t = t.evals
let spin_count t = t.spins
let revision_work t = t.d_revision_work

let engine t = t.d_engine
let set_engine t engine = t.d_engine <- engine

let run_propagation ?max_revisions t =
  let max_revisions =
    match max_revisions with Some n -> n | None -> t.d_max_revisions
  in
  let outcome =
    match t.d_engine with
    | Full -> Propagate.run_and_apply ~max_revisions ~tracer:t.d_tracer t.net
    | Incremental ->
      Propagate.run_incremental_and_apply ~max_revisions ~tracer:t.d_tracer
        t.net
  in
  t.d_revision_work <- t.d_revision_work + outcome.Propagate.revisions;
  outcome

let set_tracer t tracer = t.d_tracer <- tracer
let tracer t = t.d_tracer
let charge_evaluations t n = if n > 0 then t.evals <- t.evals + n

let trace_status = function
  | Constr.Satisfied -> Event.Satisfied
  | Constr.Violated -> Event.Violated
  | Constr.Consistent -> Event.Consistent

(* {2 Freshness (conventional-mode verification staleness)} *)

let modified_at t prop =
  try Hashtbl.find t.modified_at prop with Not_found -> 0

let is_fresh t c =
  match Hashtbl.find_opt t.verified_at c.Constr.id with
  | None -> false
  | Some v ->
    List.for_all (fun arg -> v >= modified_at t arg) (Constr.args c)

let known_status t cid =
  let c = Network.find_constraint t.net cid in
  match t.d_mode with
  | Adpm -> Network.status t.net cid
  | Conventional ->
    if is_fresh t c then Network.status t.net cid else Constr.Consistent

let known_violations t =
  List.filter_map
    (fun c ->
      if known_status t c.Constr.id = Constr.Violated then Some c.Constr.id
      else None)
    (Network.constraints t.net)

let known_statuses t =
  List.map
    (fun c -> (c.Constr.id, known_status t c.Constr.id))
    (Network.constraints t.net)

let heuristic_info t prop =
  match t.d_mode with
  | Conventional -> None
  | Adpm ->
    if Network.mem_prop t.net prop then
      Some (Heuristic_data.Cache.mine_prop t.d_heur_cache t.net prop)
    else None

let relaxed_feasible_group t ~target ~unpin =
  match t.d_mode with
  | Conventional ->
    invalid_arg "Dpm.relaxed_feasible: unavailable in conventional mode"
  | Adpm -> (
    (* memoised per network revision: designer decision loops re-query the
       same relaxations while weighing candidates, and nothing mutates the
       network between those queries. A cache hit repeats no propagation,
       so it charges no evaluations. *)
    let rev = Network.revision t.net in
    if rev <> t.d_relaxed_rev then begin
      Hashtbl.reset t.d_relaxed;
      t.d_relaxed_rev <- rev
    end;
    let key = String.concat "\x00" (target :: unpin) in
    match Hashtbl.find_opt t.d_relaxed key with
    | Some d -> d
    | None ->
      let d, evals =
        Propagate.relaxed_feasible_group ~max_revisions:t.d_max_revisions t.net
          ~target ~unpin
      in
      t.evals <- t.evals + evals;
      Hashtbl.replace t.d_relaxed key d;
      d)

let relaxed_feasible t prop = relaxed_feasible_group t ~target:prop ~unpin:[]

(* {2 Subsystems and spins} *)

let rec top_ancestor t pid =
  let p = Hashtbl.find t.probs pid in
  match p.Problem.pr_parent with
  | None -> None (* the top problem itself: system level *)
  | Some parent when parent = t.top -> Some pid
  | Some parent -> top_ancestor t parent

let subsystem_of_prop t prop =
  (* A property belongs to the subsystem of the deepest problem that lists
     it among its outputs; system-level requirement properties are outputs
     of the top problem and map to None. *)
  let owner =
    List.find_opt
      (fun p -> List.mem prop p.Problem.pr_outputs && Problem.is_leaf p)
      (problems t)
  in
  let owner =
    match owner with
    | Some p -> Some p
    | None ->
      List.find_opt (fun p -> List.mem prop p.Problem.pr_outputs) (problems t)
  in
  match owner with
  | None -> None
  | Some p -> top_ancestor t p.Problem.pr_id

let is_cross_subsystem t c =
  let subs =
    List.filter_map (fun arg -> subsystem_of_prop t arg) (Constr.args c)
  in
  match List.sort_uniq compare subs with
  | [] | [ _ ] -> false
  | _ :: _ :: _ -> true

(* {2 Problem status update} *)

let constraint_known_satisfied t cid = known_status t cid = Constr.Satisfied

let outputs_bound t p =
  List.for_all
    (fun o ->
      (not (Domain.is_numeric (Network.initial_domain t.net o)))
      || Network.is_bound t.net o)
    p.Problem.pr_outputs

let rec update_problem_status t p =
  let deps_solved =
    List.for_all
      (fun dep ->
        (Hashtbl.find t.probs dep).Problem.pr_status = Problem.Solved)
      p.Problem.pr_depends_on
  in
  (* children first: parents depend on their statuses *)
  List.iter
    (fun cid -> update_problem_status t (Hashtbl.find t.probs cid))
    p.Problem.pr_children;
  let children_solved =
    List.for_all
      (fun cid -> (Hashtbl.find t.probs cid).Problem.pr_status = Problem.Solved)
      p.Problem.pr_children
  in
  let own_constraints_ok =
    List.for_all (fun cid -> constraint_known_satisfied t cid) p.Problem.pr_constraints
  in
  let status =
    if not deps_solved then Problem.Waiting
    else if children_solved && outputs_bound t p && own_constraints_ok then
      Problem.Solved
    else Problem.Open
  in
  Problem.set_status p status

let update_statuses t = update_problem_status t (top_problem t)

let integration_ready t =
  List.for_all
    (fun p ->
      (not (Problem.is_leaf p)) || p.Problem.pr_status = Problem.Solved)
    (problems t)

let solved t = (top_problem t).Problem.pr_status = Problem.Solved

let ground_truth_solved t = Network.solved t.net

(* {2 Verification eligibility} *)

let args_bound t c =
  List.for_all (fun arg -> Network.is_bound t.net arg) (Constr.args c)

let leaf_problems_of_constraint t c =
  let arg_list = Constr.args c in
  List.filter
    (fun p ->
      Problem.is_leaf p
      && List.exists (fun arg -> List.mem arg p.Problem.pr_outputs) arg_list)
    (problems t)

let cross_rule_ok t c =
  if not (is_cross_subsystem t c) then true
  else
    List.for_all
      (fun p -> p.Problem.pr_status = Problem.Solved)
      (leaf_problems_of_constraint t c)

let eligible_now t c =
  args_bound t c && (not (is_fresh t c)) && cross_rule_ok t c

let eligible_verifications t ~designer =
  match t.d_mode with
  | Adpm -> []
  | Conventional ->
    let owned = problems_owned_by t designer in
    let cids =
      List.sort_uniq compare
        (List.concat_map (fun p -> p.Problem.pr_constraints) owned)
    in
    List.filter
      (fun cid -> eligible_now t (Network.find_constraint t.net cid))
      cids

(* {2 Subscriptions for the NM} *)

let subscriptions t =
  List.map
    (fun designer ->
      let props =
        List.sort_uniq compare
          (List.concat_map Problem.properties (problems_owned_by t designer))
      in
      (designer, props))
    (designers t)

(* {2 The transition} *)

let snapshot_known t =
  let table = Hashtbl.create 64 in
  List.iter
    (fun c -> Hashtbl.replace table c.Constr.id (known_status t c.Constr.id))
    (Network.constraints t.net);
  table

let snapshot_feasible t =
  let table = Hashtbl.create 64 in
  List.iter
    (fun name ->
      if Domain.is_numeric (Network.initial_domain t.net name) then
        Hashtbl.replace table name (Network.feasible t.net name))
    (Network.prop_names t.net);
  table

let bump_object_for_prop t prop =
  Hashtbl.iter
    (fun _ o -> if Design_object.owns o prop then Design_object.bump_patch o)
    t.objs

let apply_synthesis t idx op assignments =
  let p = find_problem t op.Operator.op_problem in
  List.iter
    (fun (prop, value) ->
      if not (List.mem prop p.Problem.pr_outputs) then
        invalid_arg
          (Printf.sprintf "Dpm.apply: %s is not an output of problem %s" prop
             p.Problem.pr_name);
      Network.assign t.net prop value;
      Hashtbl.replace t.modified_at prop idx;
      bump_object_for_prop t prop)
    assignments;
  match t.d_mode with
  | Conventional -> (0, [])
  | Adpm ->
    let outcome = run_propagation t in
    (outcome.Propagate.evaluations, [])

let apply_verification t idx op cids =
  (* Eligibility is mode-specific, and [skipped] must be its exact
     complement: in ADPM mode propagation keeps everything fresh, so a
     verification is an explicit point check of the requested, bound
     constraints; in conventional mode the staleness/cross-subsystem rules
     apply. Partitioning per mode keeps a constraint from being reported
     skipped while it was actually checked. *)
  let eligible, skipped =
    match t.d_mode with
    | Conventional ->
      List.partition
        (fun cid -> eligible_now t (Network.find_constraint t.net cid))
        cids
    | Adpm ->
      List.partition
        (fun cid -> args_bound t (Network.find_constraint t.net cid))
        cids
  in
  let evals = ref 0 in
  List.iter
    (fun cid ->
      let c = Network.find_constraint t.net cid in
      incr evals;
      let status =
        if Network.check_constraint_point t.net c then Constr.Satisfied
        else Constr.Violated
      in
      Network.set_status t.net cid status;
      Hashtbl.replace t.verified_at cid idx)
    eligible;
  ignore op;
  (!evals, skipped)

let apply_decompose t op specs =
  let parent = find_problem t op.Operator.op_problem in
  let created =
    List.map
      (fun spec ->
        let p =
          Problem.make ~id:(fresh_problem_id t) ~name:spec.Operator.sp_name
            ~owner:spec.Operator.sp_owner ~inputs:spec.Operator.sp_inputs
            ~outputs:spec.Operator.sp_outputs
            ~constraints:spec.Operator.sp_constraints
            ?object_name:spec.Operator.sp_object ()
        in
        register_problem t ~parent:(Some parent.Problem.pr_id) p;
        (spec, p))
      specs
  in
  (* resolve sibling dependency names *)
  List.iter
    (fun (spec, p) ->
      List.iter
        (fun dep_name ->
          match
            List.find_opt
              (fun (s, _) -> String.equal s.Operator.sp_name dep_name)
              created
          with
          | Some (_, dep) -> Problem.add_dependency p dep.Problem.pr_id
          | None ->
            invalid_arg
              (Printf.sprintf "Dpm.apply: unknown sibling dependency %s" dep_name))
        spec.Operator.sp_depends_on_names)
    created;
  match t.d_mode with
  | Conventional -> (0, [])
  | Adpm ->
    (* decomposition may have registered new problems/constraints: the
       network invalidates its persisted propagation state on structural
       changes, so the incremental engine transparently restarts in full *)
    let outcome = run_propagation t in
    (outcome.Propagate.evaluations, [])

let apply t op =
  t.ops <- t.ops + 1;
  let idx = t.ops in
  Tracer.set_clock t.d_tracer idx;
  (* Spins are "expensive design iterations performed upon system
     integration" (Section 3.1.2): an operation counts as one when it
     reacts to a cross-subsystem violation at a point where the design is
     fully bound — i.e. the conflict is an integration-level conflict, not
     an early warning that guidance surfaced while subsystems were still
     open. *)
  let integration_level = Network.all_numeric_bound t.net in
  let before_known = snapshot_known t in
  let before_feasible = snapshot_feasible t in
  let evaluations, skipped =
    match op.Operator.op_kind with
    | Operator.Synthesis assignments -> apply_synthesis t idx op assignments
    | Operator.Verification cids -> apply_verification t idx op cids
    | Operator.Decompose specs -> apply_decompose t op specs
  in
  t.evals <- t.evals + evaluations;
  update_statuses t;
  let after_known = snapshot_known t in
  let newly_violated = ref [] and resolved = ref [] in
  let status_changes = ref [] in
  Hashtbl.iter
    (fun cid after ->
      let before =
        try Hashtbl.find before_known cid with Not_found -> Constr.Consistent
      in
      if before <> after then status_changes := (cid, before, after) :: !status_changes;
      if after = Constr.Violated && before <> Constr.Violated then
        newly_violated := cid :: !newly_violated
      else if before = Constr.Violated && after = Constr.Satisfied then
        resolved := cid :: !resolved)
    after_known;
  let status_changes = List.sort compare !status_changes in
  if Tracer.active t.d_tracer then
    List.iter
      (fun (cid, before, after) ->
        Tracer.emit t.d_tracer
          (Event.Constraint_status_changed
             {
               cid;
               old_status = trace_status before;
               new_status = trace_status after;
             }))
      status_changes;
  let spin =
    integration_level
    && List.exists
         (fun cid -> is_cross_subsystem t (Network.find_constraint t.net cid))
         op.Operator.op_motivated_by
  in
  if spin then t.spins <- t.spins + 1;
  let notifications =
    Notify.diff ~subscriptions:(subscriptions t)
      ~args_of:(fun cid -> Constr.args (Network.find_constraint t.net cid))
      ~old_statuses:(fun cid ->
        try Hashtbl.find before_known cid with Not_found -> Constr.Consistent)
      ~new_statuses:(Hashtbl.fold (fun cid s acc -> (cid, s) :: acc) after_known [])
      ~old_feasible:(fun prop ->
        try Hashtbl.find before_feasible prop
        with Not_found -> Network.initial_domain t.net prop)
      ~new_feasible:
        (List.filter_map
           (fun name ->
             if Domain.is_numeric (Network.initial_domain t.net name) then
               Some (name, Network.feasible t.net name)
             else None)
           (Network.prop_names t.net))
  in
  Notify.trace_pushed t.d_tracer ~op_index:idx notifications;
  let known_now = known_violations t in
  t.hist <-
    {
      h_index = idx;
      h_op = op;
      h_evaluations = evaluations;
      h_new_violations = List.length !newly_violated;
      h_known_violations = List.length known_now;
      h_spin = spin;
    }
    :: t.hist;
  let result =
    {
      r_index = idx;
      r_evaluations = evaluations;
      r_newly_violated = List.rev !newly_violated;
      r_resolved = List.rev !resolved;
      r_status_changes = status_changes;
      r_skipped = skipped;
      r_notifications = notifications;
      r_spin = spin;
    }
  in
  if Tracer.active t.d_tracer then
    Tracer.emit t.d_tracer
      (Event.Op_executed
         {
           index = idx;
           designer = op.Operator.op_designer;
           kind = Operator.kind_label op;
           evaluations;
           newly_violated = result.r_newly_violated;
           resolved = result.r_resolved;
           skipped;
           spin;
         });
  result

(* {2 Requirement shifts} *)

let shift_requirement t ~prop ~value =
  if not (Network.mem_prop t.net prop) then
    invalid_arg
      (Printf.sprintf "Dpm.shift_requirement: unknown property %S" prop);
  let before_known = snapshot_known t in
  Network.assign t.net prop (Value.Num value);
  (* the shifted requirement is newer than every executed operation, so a
     conventional team's verifications of its constraints go stale and the
     new demand is only discovered on re-verification; an ADPM team pays
     for (and benefits from) an immediate propagation *)
  Hashtbl.replace t.modified_at prop (t.ops + 1);
  bump_object_for_prop t prop;
  (match t.d_mode with
  | Conventional -> ()
  | Adpm ->
    let outcome = run_propagation t in
    t.evals <- t.evals + outcome.Propagate.evaluations);
  update_statuses t;
  let after_known = snapshot_known t in
  let status_changes = ref [] in
  Hashtbl.iter
    (fun cid after ->
      let before =
        try Hashtbl.find before_known cid with Not_found -> Constr.Consistent
      in
      if before <> after then
        status_changes := (cid, before, after) :: !status_changes)
    after_known;
  let status_changes = List.sort compare !status_changes in
  if Tracer.active t.d_tracer then
    List.iter
      (fun (cid, before, after) ->
        Tracer.emit t.d_tracer
          (Event.Constraint_status_changed
             {
               cid;
               old_status = trace_status before;
               new_status = trace_status after;
             }))
      status_changes;
  status_changes

let history t = List.rev t.hist
