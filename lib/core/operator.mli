(** Design operators and operations.

    A design operator helps solve a problem by computing output values
    (synthesis/optimisation), verifying constraints (verification), or
    decomposing the problem (decomposition) — Section 2.1. A design
    operation theta pairs an operator with the problem it is applied to and
    the requesting designer; it optionally records the violated constraints
    that motivated it, which is what lets the DPM classify operations as
    design {e spins} (operations caused by cross-subsystem violations,
    Section 3.1.2). *)

open Adpm_csp

type subproblem_spec = {
  sp_name : string;
  sp_owner : string;
  sp_inputs : string list;
  sp_outputs : string list;
  sp_constraints : int list;
  sp_depends_on_names : string list;  (** names of sibling subproblems *)
  sp_object : string option;
}

type kind =
  | Synthesis of (string * Value.t) list
      (** bind output properties to values *)
  | Verification of int list
      (** evaluate these constraints (subject to the mode's eligibility
          rules) *)
  | Decompose of subproblem_spec list
      (** split the target problem into subproblems *)

type t = {
  op_designer : string;
  op_problem : int;
  op_kind : kind;
  op_motivated_by : int list;
      (** ids of the violated constraints this operation reacts to; empty
          for forward design progress *)
}

val synthesis :
  ?motivated_by:int list -> designer:string -> problem:int ->
  (string * Value.t) list -> t

val verification :
  ?motivated_by:int list -> designer:string -> problem:int -> int list -> t

val decompose : designer:string -> problem:int -> subproblem_spec list -> t

val kind_label : t -> string

val to_trace_spec : t -> Adpm_trace.Event.op_spec
(** Plain-data mirror for the trace subsystem. *)

val of_trace_spec : Adpm_trace.Event.op_spec -> t
(** Rebuild the operation recorded in a trace — the replay driver's input. *)

val pp : Format.formatter -> t -> unit
