open Adpm_interval
open Adpm_csp

type event =
  | Violation_detected of int
  | Violation_resolved of int
  | Feasible_reduced of string * Domain.t
  | Feasible_empty of string
  | Problem_update of int * Problem.status

type notification = { n_recipient : string; n_events : event list }

type subscriptions = (string * string list) list

let routed_events ~args_of ~old_statuses ~new_statuses ~old_feasible
    ~new_feasible =
  let status_events =
    List.concat_map
      (fun (cid, s) ->
        let old_s = old_statuses cid in
        if s = old_s then []
        else
          match s with
          | Constr.Violated -> [ (args_of cid, Violation_detected cid) ]
          | Constr.Satisfied | Constr.Consistent ->
            if old_s = Constr.Violated then
              [ (args_of cid, Violation_resolved cid) ]
            else [])
      new_statuses
  in
  let feasible_events =
    List.filter_map
      (fun (prop, d) ->
        let old_d = old_feasible prop in
        if Domain.equal d old_d then None
        else if Domain.is_empty d then Some ([ prop ], Feasible_empty prop)
        else if Domain.measure d < Domain.measure old_d then
          Some ([ prop ], Feasible_reduced (prop, d))
        else None)
      new_feasible
  in
  status_events @ feasible_events

let diff ~subscriptions ~args_of ~old_statuses ~new_statuses ~old_feasible
    ~new_feasible =
  let events =
    routed_events ~args_of ~old_statuses ~new_statuses ~old_feasible
      ~new_feasible
  in
  match events with
  | [] -> []
  | _ ->
    List.filter_map
      (fun (designer, props) ->
        (* one hash set per recipient, instead of a List.mem scan of the
           subscription list for every touched property of every event *)
        let subscribed = Hashtbl.create (max 8 (List.length props)) in
        List.iter (fun p -> Hashtbl.replace subscribed p ()) props;
        let relevant =
          List.filter_map
            (fun (touched, event) ->
              if List.exists (Hashtbl.mem subscribed) touched then Some event
              else None)
            events
        in
        match relevant with
        | [] -> None
        | _ -> Some { n_recipient = designer; n_events = relevant })
      subscriptions

let event_label = function
  | Violation_detected cid -> Printf.sprintf "violation-detected:%d" cid
  | Violation_resolved cid -> Printf.sprintf "violation-resolved:%d" cid
  | Feasible_reduced (prop, _) -> "feasible-reduced:" ^ prop
  | Feasible_empty prop -> "feasible-empty:" ^ prop
  | Problem_update (pid, status) ->
    Printf.sprintf "problem-update:%d:%s" pid (Problem.status_to_string status)

let detected_violations n =
  List.filter_map
    (function Violation_detected cid -> Some cid | _ -> None)
    n.n_events

let trace_pushed tracer ~op_index notifications =
  let open Adpm_trace in
  if Tracer.active tracer then
    List.iter
      (fun n ->
        Tracer.emit tracer
          (Event.Notification_pushed
             {
               recipient = n.n_recipient;
               op_index;
               events = List.map event_label n.n_events;
               violations = detected_violations n;
             }))
      notifications

let event_to_string cname = function
  | Violation_detected cid -> Printf.sprintf "violation detected: %s" (cname cid)
  | Violation_resolved cid -> Printf.sprintf "violation resolved: %s" (cname cid)
  | Feasible_reduced (prop, d) ->
    Printf.sprintf "feasible subspace of %s reduced to %s" prop
      (Domain.to_string d)
  | Feasible_empty prop ->
    Printf.sprintf "all values of %s are infeasible" prop
  | Problem_update (pid, status) ->
    Printf.sprintf "problem #%d is now %s" pid (Problem.status_to_string status)
