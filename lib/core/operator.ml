open Adpm_csp

type subproblem_spec = {
  sp_name : string;
  sp_owner : string;
  sp_inputs : string list;
  sp_outputs : string list;
  sp_constraints : int list;
  sp_depends_on_names : string list;
  sp_object : string option;
}

type kind =
  | Synthesis of (string * Value.t) list
  | Verification of int list
  | Decompose of subproblem_spec list

type t = {
  op_designer : string;
  op_problem : int;
  op_kind : kind;
  op_motivated_by : int list;
}

let synthesis ?(motivated_by = []) ~designer ~problem assignments =
  { op_designer = designer; op_problem = problem; op_kind = Synthesis assignments;
    op_motivated_by = motivated_by }

let verification ?(motivated_by = []) ~designer ~problem cids =
  { op_designer = designer; op_problem = problem; op_kind = Verification cids;
    op_motivated_by = motivated_by }

let decompose ~designer ~problem specs =
  { op_designer = designer; op_problem = problem; op_kind = Decompose specs;
    op_motivated_by = [] }

let kind_label t =
  match t.op_kind with
  | Synthesis _ -> "synthesis"
  | Verification _ -> "verification"
  | Decompose _ -> "decompose"

(* {2 Trace-spec conversion}

   The trace event model mirrors operations as plain data so traces decode
   without engine state; these are the two bridges. *)

let value_to_trace = function
  | Value.Num f -> Adpm_trace.Event.Vnum f
  | Value.Sym s -> Adpm_trace.Event.Vsym s

let value_of_trace = function
  | Adpm_trace.Event.Vnum f -> Value.Num f
  | Adpm_trace.Event.Vsym s -> Value.Sym s

let spec_to_trace sp =
  {
    Adpm_trace.Event.sb_name = sp.sp_name;
    sb_owner = sp.sp_owner;
    sb_inputs = sp.sp_inputs;
    sb_outputs = sp.sp_outputs;
    sb_constraints = sp.sp_constraints;
    sb_depends_on = sp.sp_depends_on_names;
    sb_object = sp.sp_object;
  }

let spec_of_trace sb =
  {
    sp_name = sb.Adpm_trace.Event.sb_name;
    sp_owner = sb.Adpm_trace.Event.sb_owner;
    sp_inputs = sb.Adpm_trace.Event.sb_inputs;
    sp_outputs = sb.Adpm_trace.Event.sb_outputs;
    sp_constraints = sb.Adpm_trace.Event.sb_constraints;
    sp_depends_on_names = sb.Adpm_trace.Event.sb_depends_on;
    sp_object = sb.Adpm_trace.Event.sb_object;
  }

let to_trace_spec t =
  let kind =
    match t.op_kind with
    | Synthesis assignments ->
      Adpm_trace.Event.Synthesis
        (List.map (fun (p, v) -> (p, value_to_trace v)) assignments)
    | Verification cids -> Adpm_trace.Event.Verification cids
    | Decompose specs -> Adpm_trace.Event.Decompose (List.map spec_to_trace specs)
  in
  {
    Adpm_trace.Event.op_designer = t.op_designer;
    op_problem = t.op_problem;
    op_kind = kind;
    op_motivated_by = t.op_motivated_by;
  }

let of_trace_spec spec =
  let kind =
    match spec.Adpm_trace.Event.op_kind with
    | Adpm_trace.Event.Synthesis assignments ->
      Synthesis (List.map (fun (p, v) -> (p, value_of_trace v)) assignments)
    | Adpm_trace.Event.Verification cids -> Verification cids
    | Adpm_trace.Event.Decompose subs -> Decompose (List.map spec_of_trace subs)
  in
  {
    op_designer = spec.Adpm_trace.Event.op_designer;
    op_problem = spec.Adpm_trace.Event.op_problem;
    op_kind = kind;
    op_motivated_by = spec.Adpm_trace.Event.op_motivated_by;
  }

let pp ppf t =
  let detail =
    match t.op_kind with
    | Synthesis assignments ->
      String.concat ", "
        (List.map
           (fun (p, v) -> Printf.sprintf "%s:=%s" p (Value.to_string v))
           assignments)
    | Verification cids ->
      Printf.sprintf "check {%s}" (String.concat "," (List.map string_of_int cids))
    | Decompose specs ->
      Printf.sprintf "into {%s}"
        (String.concat "," (List.map (fun s -> s.sp_name) specs))
  in
  Format.fprintf ppf "%s by %s on p#%d: %s" (kind_label t) t.op_designer
    t.op_problem detail
