open Adpm_interval
open Adpm_csp

type prop_info = {
  hi_name : string;
  hi_assigned : Value.t option;
  hi_feasible : Domain.t;
  hi_relative_size : float;
  hi_alpha : int;
  hi_beta : int;
  hi_up_helps : int list;
  hi_down_helps : int list;
  hi_up_votes : int;
  hi_down_votes : int;
}

let mine_prop net name =
  let prop = Network.find_prop net name in
  let connected = Network.constraints_of_prop net name in
  let up_helps, down_helps =
    List.fold_left
      (fun (up, down) c ->
        match Network.helps_direction net c name with
        | `Up -> (c.Constr.id :: up, down)
        | `Down -> (up, c.Constr.id :: down)
        | `None -> (up, down))
      ([], []) connected
  in
  let violated c = Network.status net c = Constr.Violated in
  {
    hi_name = name;
    hi_assigned = prop.Network.p_assigned;
    hi_feasible = prop.Network.p_feasible;
    hi_relative_size =
      Domain.relative_measure ~initial:prop.Network.p_initial
        prop.Network.p_feasible;
    hi_alpha = Network.alpha net name;
    hi_beta = List.length connected;
    hi_up_helps = List.rev up_helps;
    hi_down_helps = List.rev down_helps;
    hi_up_votes = List.length (List.filter violated up_helps);
    hi_down_votes = List.length (List.filter violated down_helps);
  }

(* One-hop closure: the constraints of [name] plus every constraint of a
   property sharing a constraint with [name]. *)
let one_hop_constraints net name =
  let direct = Network.constraints_of_prop net name in
  let neighbour_props =
    List.sort_uniq compare (List.concat_map Constr.args direct)
  in
  let all =
    List.concat_map (fun p -> Network.constraints_of_prop net p) neighbour_props
  in
  List.sort_uniq
    (fun a b -> compare a.Constr.id b.Constr.id)
    (direct @ all)

let indirect_beta net name = List.length (one_hop_constraints net name)

let indirect_alpha net name =
  List.length
    (List.filter
       (fun c -> Network.status net c.Constr.id = Constr.Violated)
       (one_hop_constraints net name))

let mine net =
  Network.prop_names net
  |> List.filter (fun n -> Domain.is_numeric (Network.initial_domain net n))
  |> List.map (mine_prop net)

module Cache = struct
  type cache = {
    mutable c_rev : int;  (* network revision the entries were mined at *)
    c_table : (string, prop_info) Hashtbl.t;
  }

  type t = cache

  let create () = { c_rev = -1; c_table = Hashtbl.create 32 }

  let reset c =
    c.c_rev <- -1;
    Hashtbl.reset c.c_table

  let mine_prop c net name =
    let rev = Network.revision net in
    if rev <> c.c_rev then begin
      Hashtbl.reset c.c_table;
      c.c_rev <- rev
    end;
    match Hashtbl.find_opt c.c_table name with
    | Some info -> info
    | None ->
      let info = mine_prop net name in
      Hashtbl.replace c.c_table name info;
      info
end

let preferred_direction info =
  if info.hi_up_votes > info.hi_down_votes then `Up
  else if info.hi_down_votes > info.hi_up_votes then `Down
  else `None

let pp_prop_info ppf info =
  Format.fprintf ppf
    "%s: v_F=%a (rel %.3f), alpha=%d, beta=%d, votes up/down=%d/%d"
    info.hi_name Domain.pp info.hi_feasible info.hi_relative_size info.hi_alpha
    info.hi_beta info.hi_up_votes info.hi_down_votes
