(** The Design Process Manager: the next-state function delta.

    Implements the transition model of Fig. 1. A designer submits an
    operation theta_n; the DPM applies its operator to the target problem
    and updates the design state. What happens next depends on the mode
    (the paper's lambda switch, Section 3.1.2):

    - {b Conventional} (lambda = F): no constraint propagation runs.
      Designers learn of violations and infeasible values only by requesting
      verification operations, which execute only when their input
      properties are bound; constraints relating multiple subproblems are
      evaluated only when all involved subproblems are solved and none of
      their internal constraints is known-violated. A constraint's verified
      status goes stale as soon as one of its arguments is reassigned.

    - {b ADPM} (lambda = T): after every operation the Design Constraint
      Manager runs constraint propagation, computing infeasible property
      values and the status of all constraints; the results are mined into
      heuristic-support data and the Notification Manager pushes relevant
      events to each affected designer.

    The DPM also maintains the paper's cost accounting: executed operations
    N_O, constraint evaluations N_T, and design spins (operations motivated
    by a cross-subsystem violation). *)

open Adpm_csp

type mode = Conventional | Adpm

val mode_to_string : mode -> string

val mode_of_string : string -> mode option
(** Inverse of {!mode_to_string} (also accepts ["adpm"]); used when
    decoding recorded traces. *)

type engine = Full | Incremental
(** Propagation engine selection. [Full] reruns HC4 from the initial
    ranges on every operation ({!Adpm_csp.Propagate.run_full}); the default
    [Incremental] restarts from the box store persisted in the network,
    seeding the worklist with the constraints of dirty properties only
    ({!Adpm_csp.Propagate.run_incremental}). Both produce identical
    feasible subspaces and statuses; they differ only in HC4 revision
    work (see {!revision_work}) and therefore in the per-engine N_T. *)

val engine_to_string : engine -> string
val engine_of_string : string -> engine option

type t

type result = {
  r_index : int;  (** 1-based index of this operation *)
  r_evaluations : int;  (** constraint evaluations caused by the operation *)
  r_newly_violated : int list;
      (** constraints whose known status switched to Violated *)
  r_resolved : int list;
      (** constraints whose known status left Violated for Satisfied *)
  r_status_changes : (int * Constr.status * Constr.status) list;
      (** every known-status transition [(cid, before, after)] the
          operation caused, sorted by constraint id — including
          conventional-mode freshness decay (Violated -> Consistent when a
          verified constraint's argument is reassigned), which
          [r_newly_violated]/[r_resolved] do not cover. Deferred-delivery
          designers rebuild their believed statuses from this list. *)
  r_skipped : int list;
      (** requested verifications that were not eligible *)
  r_notifications : Notify.notification list;
  r_spin : bool;
}

(** {1 Construction} *)

val create :
  mode:mode ->
  ?engine:engine ->
  ?max_revisions:int ->
  Network.t ->
  objects:Design_object.t list ->
  top:Problem.t ->
  t
(** Take ownership of the network and problem hierarchy root. Additional
    problems enter via decomposition operations or {!register_problem}. *)

val register_problem : t -> parent:int option -> Problem.t -> unit
(** Scenario-construction hook: attach a pre-built problem. Problem ids
    must be unique. *)

val fresh_problem_id : t -> int

(** {1 Accessors} *)

val mode : t -> mode
val network : t -> Network.t
val top_problem : t -> Problem.t
val problems : t -> Problem.t list
(** Insertion order. *)

val find_problem : t -> int -> Problem.t
val problems_owned_by : t -> string -> Problem.t list
val objects : t -> Design_object.t list
val find_object : t -> string -> Design_object.t option
val designers : t -> string list
(** Distinct problem owners. *)

val op_count : t -> int
val eval_count : t -> int
val spin_count : t -> int

val revision_work : t -> int
(** Total HC4 revisions performed by the propagations this DPM ran
    (synthesis/decomposition updates and {!run_propagation}) — the
    implementation-cost counter the incremental engine reduces, separate
    from the paper's evaluation unit N_T. *)

(** {1 Propagation engine} *)

val engine : t -> engine
val set_engine : t -> engine -> unit

val run_propagation : ?max_revisions:int -> t -> Adpm_csp.Propagate.outcome
(** Run the configured engine over the network and apply the results —
    the entry point the simulation engine uses for the pre-turn setup
    propagation. [max_revisions] defaults to the value given at
    {!create}. *)

(** {1 Tracing} *)

val set_tracer : t -> Adpm_trace.Tracer.t -> unit
(** Attach a tracer after construction (scenario builders need no trace
    awareness). The DPM advances the tracer's logical clock to the
    operation index at the start of every {!apply} and emits
    [Op_executed], [Constraint_status_changed], and (via the NM)
    [Notification_pushed] events; propagation runs inside the transition
    carry the tracer too. Defaults to [Tracer.null]: tracing disabled. *)

val tracer : t -> Adpm_trace.Tracer.t

val charge_evaluations : t -> int -> unit
(** Add externally-incurred constraint evaluations to N_T. The replay
    driver uses this to re-charge decision-time evaluation costs (relaxed
    feasibility queries recorded in [Op_submitted] events) so that replayed
    N_T totals match the live run exactly. Negative amounts are ignored. *)

(** {1 Mode-aware knowledge} *)

val known_status : t -> int -> Constr.status
(** The status a designer can rely on. In ADPM mode, the latest propagation
    result. In conventional mode, the last verified status — unless an
    argument was reassigned since, in which case [Consistent] (unknown). *)

val known_violations : t -> int list
(** Constraint ids with [known_status = Violated]. *)

val known_statuses : t -> (int * Constr.status) list
(** [known_status] of every constraint, in network constraint order. The
    simulation engine snapshots this after the ADPM setup propagation to
    seed each designer's believed statuses (the kickoff meeting). *)

val heuristic_info : t -> string -> Heuristic_data.prop_info option
(** Mined heuristic-support data for a property; [None] in conventional
    mode (the information does not exist without propagation). *)

val relaxed_feasible : t -> string -> Adpm_interval.Domain.t
(** ADPM only: feasible subspace of a property ignoring its own assignment
    (constraint-margin information used during conflict resolution). The
    propagation this needs is charged to the evaluation counter.
    @raise Invalid_argument in conventional mode. *)

val relaxed_feasible_group :
  t -> target:string -> unpin:string list -> Adpm_interval.Domain.t
(** As {!relaxed_feasible} but also ignoring the assignments of [unpin]
    (the performance properties the target parameter drives).
    @raise Invalid_argument in conventional mode. *)

val eligible_verifications : t -> designer:string -> int list
(** Constraints the given designer could usefully verify now, respecting
    the mode's eligibility rules and skipping fresh statuses. *)

val subsystem_of_prop : t -> string -> int option
(** Id of the top-level subproblem (child of the top problem) whose subtree
    contains the property; [None] for system-level properties. *)

val is_cross_subsystem : t -> Constr.t -> bool
(** Do the constraint's arguments span at least two subsystems? *)

val integration_ready : t -> bool
(** Conventional-mode gate: every leaf problem is Solved. *)

val solved : t -> bool
(** The top-level problem is Solved — i.e. every output has a value and no
    constraint is (known) violated, established through the mode's own
    information channels. *)

val ground_truth_solved : t -> bool
(** Oracle check (for tests and the simulation engine's safety net): all
    numeric properties bound and all constraints actually satisfied. *)

(** {1 The transition} *)

val apply : t -> Operator.t -> result
(** Execute one design operation and perform the mode's state update.
    @raise Invalid_argument for malformed operations (unknown problem,
    assignment to a property outside the problem, non-positive ids). *)

val shift_requirement :
  t -> prop:string -> value:float -> (int * Constr.status * Constr.status) list
(** Re-assign a requirement property mid-run — the adaptability workload's
    "the goalposts moved" transition. Unlike {!apply} it is not a design
    operation: no operation index is consumed and no history entry is
    written. The assignment is stamped newer than every executed operation,
    so conventional-mode verifications of the affected constraints go
    stale; in ADPM mode one propagation runs immediately (its evaluations
    are charged to the run). Returns the known-status changes, which are
    also traced as [Constraint_status_changed] events.
    @raise Invalid_argument for an unknown property. *)

(** {1 History} *)

type history_entry = {
  h_index : int;
  h_op : Operator.t;
  h_evaluations : int;
  h_new_violations : int;
  h_known_violations : int;  (** total known violations after the op *)
  h_spin : bool;
}

val history : t -> history_entry list
(** Chronological. *)
