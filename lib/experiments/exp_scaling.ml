open Adpm_util
open Adpm_core
open Adpm_teamsim
open Adpm_scenarios

type point = {
  label : string;
  properties : int;
  constraints : int;
  conv_ops : float;
  adpm_ops : float;
  conv_evals : float;
  adpm_evals : float;
  ops_ratio : float;
  eval_penalty : float;
  completed : bool;
}

type result = { by_size : point list; by_tightness : point list }

let measure params ~label ~seeds ~jobs =
  let scenario = Generated.scenario params in
  let run mode =
    let cfg = Config.default ~mode ~seed:0 in
    let summaries =
      Engine.run_many ~jobs cfg scenario ~seeds:(List.init seeds (fun i -> i + 1))
    in
    let ops = Stats_acc.create () and evals = Stats_acc.create () in
    let all_done = ref true in
    List.iter
      (fun s ->
        if not s.Metrics.s_completed then all_done := false;
        Stats_acc.add_int ops s.Metrics.s_operations;
        Stats_acc.add_int evals s.Metrics.s_evaluations)
      summaries;
    (Stats_acc.mean ops, Stats_acc.mean evals, !all_done)
  in
  let conv_ops, conv_evals, conv_done = run Dpm.Conventional in
  let adpm_ops, adpm_evals, adpm_done = run Dpm.Adpm in
  {
    label;
    properties = Generated.property_count params;
    constraints = Generated.constraint_count params;
    conv_ops;
    adpm_ops;
    conv_evals;
    adpm_evals;
    ops_ratio = conv_ops /. adpm_ops;
    eval_penalty = adpm_evals /. conv_evals;
    completed = conv_done && adpm_done;
  }

let size_sweep = [ (2, 2); (3, 2); (4, 3); (6, 3); (8, 4) ]
let size_slack = 0.06
let tightness_sweep = [ 0.3; 0.15; 0.08; 0.05 ]

let run ?(seeds = 8) ?(jobs = 1) () =
  let by_size =
    List.map
      (fun (n, k) ->
        measure
          { (Generated.default_params ~subsystems:n ~vars:k) with
            Generated.g_slack = size_slack }
          ~label:(Printf.sprintf "%d subsystems x %d vars" n k)
          ~seeds ~jobs)
      size_sweep
  in
  let by_tightness =
    List.map
      (fun slack ->
        measure
          { (Generated.default_params ~subsystems:4 ~vars:3) with
            Generated.g_slack = slack }
          ~label:(Printf.sprintf "slack %.0f%%" (slack *. 100.))
          ~seeds ~jobs)
      tightness_sweep
  in
  { by_size; by_tightness }

let table title points =
  let t =
    Table.create ~title
      [
        "Point"; "Props"; "Cons"; "Conv ops"; "ADPM ops"; "Accel";
        "Conv evals"; "ADPM evals"; "Penalty"; "Done";
      ]
  in
  Table.set_align t
    [
      Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
      Table.Right; Table.Right; Table.Right; Table.Right; Table.Right;
    ];
  List.iter
    (fun p ->
      Table.add_row t
        [
          p.label;
          string_of_int p.properties;
          string_of_int p.constraints;
          Printf.sprintf "%.1f" p.conv_ops;
          Printf.sprintf "%.1f" p.adpm_ops;
          Printf.sprintf "%.2fx" p.ops_ratio;
          Printf.sprintf "%.0f" p.conv_evals;
          Printf.sprintf "%.0f" p.adpm_evals;
          Printf.sprintf "%.1fx" p.eval_penalty;
          (if p.completed then "yes" else "NO");
        ])
    points;
  Table.render t

let render r =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "=== Scaling study (extension of the Section 4 claim) ===\n\n";
  add "%s\n" (table "hardness via problem size (slack 6%)" r.by_size);
  add "%s\n" (table "hardness via requirement tightness (4x3)" r.by_tightness);
  add "paper's concluding claim: harder problems => larger acceleration\n";
  add "(Accel column grows) and a proportionally smaller computational\n";
  add "penalty (Penalty column shrinks).\n";
  let first = List.hd r.by_tightness
  and last = List.nth r.by_tightness (List.length r.by_tightness - 1) in
  add "measured on the tightness axis: acceleration %.2fx -> %.2fx,\n"
    first.ops_ratio last.ops_ratio;
  add "penalty %.1fx -> %.1fx from loosest to tightest - the claim holds\n"
    first.eval_penalty last.eval_penalty;
  add "when hardness means conflict density. On the raw-size axis ADPM's\n";
  add "operation count is already near its floor (one operation per\n";
  add "parameter), so acceleration tracks conventional's conflicts while\n";
  add "the propagation penalty grows with network size: the acceleration\n";
  add "is driven by coupling tightness, not instance size alone.\n";
  Buffer.contents buf
