(** Figure 9: design-process performance and computational penalty.

    Over 60 simulations per (case, mode) cell, varying the random seed:

    (a) Average and standard deviation of the number of design operations
    required to complete each case. Paper claims: the conventional approach
    needs at least twice as many operations; the reduction is more
    significant for the (harder) receiver; ADPM's results are at least 3x
    less variable; and ADPM's spins average about 7% of conventional's.

    (b) Average number of constraint evaluations — total, and per executed
    operation. Paper claims: ADPM needs many more evaluations; the total
    penalty is smaller than the per-operation penalty; and the penalty is
    smaller for the harder case. *)

open Adpm_teamsim

type cell = Report.aggregate

type result = {
  sensor_conv : cell;
  sensor_adpm : cell;
  receiver_conv : cell;
  receiver_adpm : cell;
}

type verdicts = {
  ops_ratio_sensor : float;  (** conventional mean ops / ADPM mean ops *)
  ops_ratio_receiver : float;
  reduction_larger_for_receiver : bool;
  variability_ratio_sensor : float;  (** conventional sd / ADPM sd *)
  variability_ratio_receiver : float;
  spin_fraction : float;  (** ADPM mean spins / conventional mean spins *)
  eval_penalty_sensor : float;  (** ADPM mean evals / conventional *)
  eval_penalty_receiver : float;
  penalty_smaller_for_receiver : bool;
  per_op_penalty_sensor : float;
  per_op_penalty_receiver : float;
}

val run :
  ?seeds:int -> ?backend:Engine.backend -> ?jobs:int -> unit -> result
(** Default 60 seeds per cell, as in the paper. [backend] (default
    [Domains]) and [jobs] forward to {!Adpm_teamsim.Engine.run_many} —
    results are identical for any value. *)

val verdicts : result -> verdicts
val render : result -> string
