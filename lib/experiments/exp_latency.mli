(** Notification-latency sweep (discrete-event extension).

    The paper's comparison runs with instant notification: every designer
    learns an operation's outcome before anyone acts again. The
    discrete-event engine makes the delivery delay a parameter, so this
    experiment asks how the ADPM advantage depends on it: for each latency
    in the sweep, run both modes over the same seed set and compare mean
    operation counts and completion rates.

    Expected shape: the conventional process already discovers violations
    late (only at verification time), so extra notification lag costs it
    comparatively little, while it delays the conflict-resolution feedback
    loop; the conventional-to-ADPM operation ratio should grow — or at
    least hold — as the latency increases. *)

open Adpm_teamsim

type point = {
  p_latency : int;
  p_conv : Report.aggregate;
  p_adpm : Report.aggregate;
}

type result = { scenario : string; seeds : int; points : point list }

type verdicts = {
  ops_ratio_by_latency : (int * float) list;
      (** (latency, conventional mean ops / ADPM mean ops), sweep order *)
  ratio_at_zero : float;
  ratio_at_max : float;
  advantage_grows : bool;  (** ratio at the largest latency >= at zero *)
}

val default_latencies : int list
(** [0; 1; 2; 4; 8] *)

val run :
  ?seeds:int ->
  ?jobs:int ->
  ?latencies:int list ->
  ?scenario:Scenario.t ->
  unit ->
  result
(** Default 30 seeds per cell over {!default_latencies} on the sensor
    scenario. Latencies are deduplicated and sorted ascending. [jobs]
    forwards to {!Adpm_teamsim.Engine.run_many}.

    @raise Invalid_argument on an empty latency list. *)

val verdicts : result -> verdicts
val render : result -> string
