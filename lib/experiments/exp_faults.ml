open Adpm_util
open Adpm_core
open Adpm_teamsim
open Adpm_scenarios
module Fault = Adpm_fault.Fault

type point = {
  p_drop : float;
  p_conv : Report.aggregate;
  p_adpm : Report.aggregate;
}

type crash_point = {
  c_plan : string;
  c_conv : Report.aggregate;
  c_adpm : Report.aggregate;
}

type result = {
  scenario : string;
  seeds : int;
  points : point list;
  crash : crash_point option;
}

type verdicts = {
  completion_by_drop : (float * float * float) list;
      (** (drop rate, conventional completion, ADPM completion) *)
  adpm_degrades_slower : bool;
  crash_completion : (float * float) option;
}

let default_drops = [ 0.; 0.1; 0.25; 0.5 ]

let cell ~jobs scenario mode faults seeds =
  let cfg = { (Config.default ~mode ~seed:0) with Config.faults } in
  Report.aggregate
    (Engine.run_many ~jobs cfg scenario ~seeds:(List.init seeds (fun i -> i + 1)))

let drop_plan rate = { Fault.none with Fault.p_drop = rate }

(* Knock out the scenario's first designer early enough that even a fast
   ADPM run (sensor completes in ~6 ticks) is still in flight when the
   crash lands, with a recovery window long enough to hurt. *)
let default_crash_plan scenario =
  match Dpm.designers (scenario.Scenario.sc_build ~mode:Dpm.Adpm) with
  | [] -> invalid_arg "Exp_faults: scenario has no designers"
  | first :: _ ->
    {
      Fault.none with
      Fault.p_crashes =
        [ { Fault.cr_designer = first; cr_at = 3; cr_recover = 12 } ];
    }

let run ?(seeds = 30) ?(jobs = 1) ?(drops = default_drops) ?(with_crash = true)
    ?(scenario = Sensor.scenario) () =
  if drops = [] then invalid_arg "Exp_faults.run: empty drop-rate list";
  let drops = List.sort_uniq compare drops in
  {
    scenario = scenario.Scenario.sc_name;
    seeds;
    points =
      List.map
        (fun rate ->
          let plan = drop_plan rate in
          {
            p_drop = rate;
            p_conv = cell ~jobs scenario Dpm.Conventional plan seeds;
            p_adpm = cell ~jobs scenario Dpm.Adpm plan seeds;
          })
        drops;
    crash =
      (if not with_crash then None
       else
         let plan = default_crash_plan scenario in
         Some
           {
             c_plan = Fault.crashes_to_string plan.Fault.p_crashes;
             c_conv = cell ~jobs scenario Dpm.Conventional plan seeds;
             c_adpm = cell ~jobs scenario Dpm.Adpm plan seeds;
           });
  }

let completion a =
  if a.Report.a_runs = 0 then 0.
  else float_of_int a.Report.a_completed /. float_of_int a.Report.a_runs

let verdicts r =
  let rows =
    List.map (fun p -> (p.p_drop, completion p.p_conv, completion p.p_adpm))
      r.points
  in
  let _, conv0, adpm0 = List.hd rows in
  let _, convN, adpmN = List.nth rows (List.length rows - 1) in
  {
    completion_by_drop = rows;
    (* ADPM loses no more completion than the conventional process does
       between the cleanest and lossiest cells. *)
    adpm_degrades_slower = adpm0 -. adpmN <= conv0 -. convN;
    crash_completion =
      Option.map (fun c -> (completion c.c_conv, completion c.c_adpm)) r.crash;
  }

let render r =
  let v = verdicts r in
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "=== Fault-injection sweep: %s (%d seeds/cell) ===\n\n" r.scenario r.seeds;
  let table =
    Table.create ~title:"Completion and mean operations by notification drop rate"
      [ "Drop"; "Conv done"; "ADPM done"; "Conv ops"; "ADPM ops" ]
  in
  Table.set_align table
    [ Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ];
  List.iter
    (fun p ->
      Table.add_row table
        [
          Printf.sprintf "%.2f" p.p_drop;
          Printf.sprintf "%.0f%%" (100. *. completion p.p_conv);
          Printf.sprintf "%.0f%%" (100. *. completion p.p_adpm);
          Printf.sprintf "%.1f" (Stats_acc.mean p.p_conv.Report.a_ops);
          Printf.sprintf "%.1f" (Stats_acc.mean p.p_adpm.Report.a_ops);
        ])
    r.points;
  Buffer.add_string buf (Table.render table);
  Buffer.add_char buf '\n';
  add "%s\n"
    (Ascii_chart.bar_chart ~title:"ADPM completion rate by drop rate"
       (List.map
          (fun (rate, _, adpm) -> (Printf.sprintf "drop %.2f" rate, adpm))
          v.completion_by_drop));
  (match r.crash with
  | None -> ()
  | Some c ->
    add "Designer-crash schedule %s:\n" c.c_plan;
    add "  conventional completion: %.0f%%   ADPM completion: %.0f%%\n"
      (100. *. completion c.c_conv)
      (100. *. completion c.c_adpm));
  add "ADPM degrades no faster than conventional: %b\n" v.adpm_degrades_slower;
  Buffer.contents buf
