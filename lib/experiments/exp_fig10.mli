(** Figure 10: robustness to specification tightness.

    Sweeps the tightness of the receiver's gain requirement and records the
    number of executed operations per mode. Paper claim: the variation with
    tightness appears larger when using the conventional approach — ADPM is
    more robust to problem hardness. *)

type point = {
  req_gain : float;
  conv_mean_ops : float;
  conv_sd_ops : float;
  adpm_mean_ops : float;
  adpm_sd_ops : float;
}

type result = {
  points : point list;
  conv_spread : float;
      (** max - min of conventional mean ops across the sweep *)
  adpm_spread : float;
}

val run :
  ?seeds:int ->
  ?sweep:float list ->
  ?backend:Adpm_teamsim.Engine.backend ->
  ?jobs:int ->
  unit ->
  result
(** Defaults: 10 seeds per point, {!Adpm_scenarios.Receiver.gain_sweep}.
    [backend] (default [Domains]) and [jobs] forward to
    {!Adpm_teamsim.Engine.run_many}. *)

val render : result -> string
