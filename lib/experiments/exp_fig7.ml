open Adpm_util
open Adpm_core
open Adpm_teamsim
open Adpm_scenarios

type series = { ops : int array; violations : float array; evaluations : float array }

type result = {
  conventional : series;
  adpm : series;
  conv_total_viol : float;
  adpm_total_viol : float;
  conv_total_evals : float;
  adpm_total_evals : float;
  conv_last_violation_op : int;
  adpm_last_violation_op : int;
  conv_mean_ops : float;
  adpm_mean_ops : float;
}

let profile_series ~backend ~jobs mode seeds =
  let cfg = Config.default ~mode ~seed:0 in
  let summaries =
    Engine.run_many ~backend ~jobs cfg Simple.scenario
      ~seeds:(List.init seeds (fun i -> i + 1))
  in
  let mean = Report.mean_profile summaries in
  let mean_ops =
    List.fold_left (fun acc s -> acc +. float_of_int s.Metrics.s_operations) 0.
      summaries
    /. float_of_int (List.length summaries)
  in
  ( {
      ops = Array.of_list (List.map (fun (i, _, _) -> i) mean);
      violations = Array.of_list (List.map (fun (_, v, _) -> v) mean);
      evaluations = Array.of_list (List.map (fun (_, _, e) -> e) mean);
    },
    mean_ops )

let totals s =
  ( Array.fold_left ( +. ) 0. s.violations,
    Array.fold_left ( +. ) 0. s.evaluations )

let last_violation_op s =
  let last = ref 0 in
  Array.iteri (fun i v -> if v > 0.01 then last := s.ops.(i)) s.violations;
  !last

let run ?(seeds = 20) ?(backend = Engine.Domains) ?(jobs = 1) () =
  let conventional, conv_mean_ops =
    profile_series ~backend ~jobs Dpm.Conventional seeds
  in
  let adpm, adpm_mean_ops = profile_series ~backend ~jobs Dpm.Adpm seeds in
  let conv_total_viol, conv_total_evals = totals conventional in
  let adpm_total_viol, adpm_total_evals = totals adpm in
  {
    conventional;
    adpm;
    conv_total_viol;
    adpm_total_viol;
    conv_total_evals;
    adpm_total_evals;
    conv_last_violation_op = last_violation_op conventional;
    adpm_last_violation_op = last_violation_op adpm;
    conv_mean_ops;
    adpm_mean_ops;
  }

let to_points s values =
  Array.to_list (Array.mapi (fun i v -> (float_of_int s.ops.(i), v)) values)

let render r =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "=== Figure 7: per-operation profiles, simplified case ===\n\n";
  add "%s\n"
    (Ascii_chart.line_chart ~title:"Fig. 7(a) violations found per operation"
       ~x_label:"operation number" ~y_label:"violations found"
       [
         { Ascii_chart.label = "conventional";
           points = to_points r.conventional r.conventional.violations };
         { Ascii_chart.label = "ADPM"; points = to_points r.adpm r.adpm.violations };
       ]);
  add "%s\n"
    (Ascii_chart.line_chart
       ~title:"Fig. 7(b) constraint evaluations per operation"
       ~x_label:"operation number" ~y_label:"evaluations"
       [
         { Ascii_chart.label = "conventional";
           points = to_points r.conventional r.conventional.evaluations };
         { Ascii_chart.label = "ADPM"; points = to_points r.adpm r.adpm.evaluations };
       ]);
  add "paper shape: ADPM finds fewer violations, stops finding them earlier,\n";
  add "and needs fewer operations; ADPM pays more evaluations per operation\n";
  add "but the total penalty is smaller than the per-operation penalty.\n\n";
  add "measured: violations total conv=%.1f adpm=%.1f; last violation at op conv=%d adpm=%d\n"
    r.conv_total_viol r.adpm_total_viol r.conv_last_violation_op
    r.adpm_last_violation_op;
  add "          mean run length conv=%.1f adpm=%.1f ops; evaluations total conv=%.0f adpm=%.0f\n"
    r.conv_mean_ops r.adpm_mean_ops r.conv_total_evals r.adpm_total_evals;
  Buffer.contents buf
