(** Fault-injection sweep (robustness extension).

    The paper's processes assume a perfect Notification Manager: every
    operation outcome reaches every teammate. The fault layer makes that
    an experimental variable. For each notification drop rate in the
    sweep, run both modes over the same seed set and compare completion
    rates and operation counts; optionally add one designer-crash
    schedule (the scenario's first designer loses its believed-status
    table mid-run and rebuilds it from later deliveries).

    Expected shape: dropped notifications starve exactly the mechanism
    the ADPM advantage rides on — early violation awareness — so its
    completion rate should degrade as drops increase, but no faster than
    the conventional process, which already discovers violations late. *)

open Adpm_teamsim

type point = {
  p_drop : float;
  p_conv : Report.aggregate;
  p_adpm : Report.aggregate;
}

type crash_point = {
  c_plan : string;  (** the schedule, in {!Adpm_fault.Fault.crashes_to_string} form *)
  c_conv : Report.aggregate;
  c_adpm : Report.aggregate;
}

type result = {
  scenario : string;
  seeds : int;
  points : point list;
  crash : crash_point option;
}

type verdicts = {
  completion_by_drop : (float * float * float) list;
      (** (drop rate, conventional completion, ADPM completion), sweep
          order *)
  adpm_degrades_slower : bool;
      (** ADPM's completion loss from the cleanest to the lossiest cell is
          no larger than the conventional process's *)
  crash_completion : (float * float) option;
      (** (conventional, ADPM) completion under the crash schedule *)
}

val default_drops : float list
(** [0.; 0.1; 0.25; 0.5] *)

val run :
  ?seeds:int ->
  ?jobs:int ->
  ?drops:float list ->
  ?with_crash:bool ->
  ?scenario:Scenario.t ->
  unit ->
  result
(** Default 30 seeds per cell over {!default_drops} on the sensor
    scenario, plus the crash schedule unless [with_crash] is false. Drop
    rates are deduplicated and sorted ascending. [jobs] forwards to
    {!Adpm_teamsim.Engine.run_many}.

    @raise Invalid_argument on an empty drop list. *)

val verdicts : result -> verdicts
val render : result -> string
