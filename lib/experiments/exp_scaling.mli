(** Scaling study (extension): testing the paper's concluding claim.

    "For more complex design problems ADPM may provide a more substantial
    design process acceleration for a proportionally smaller computational
    penalty" (Section 4). The paper supports this with two data points
    (sensor vs receiver); this experiment sweeps problem hardness
    systematically on generated ring scenarios, along two axes:

    - {b size}: number of subsystems and parameters, at fixed requirement
      slack (6%);
    - {b tightness}: requirement slack around the witness, at fixed size.

    For each point it reports the operation ratio (conventional / ADPM —
    the acceleration) and the evaluation penalty (ADPM / conventional).
    Expected shape: acceleration grows and the relative penalty shrinks as
    problems harden. *)

type point = {
  label : string;
  properties : int;
  constraints : int;
  conv_ops : float;
  adpm_ops : float;
  conv_evals : float;
  adpm_evals : float;
  ops_ratio : float;  (** conventional / ADPM *)
  eval_penalty : float;  (** ADPM / conventional *)
  completed : bool;  (** all runs in both modes completed *)
}

type result = { by_size : point list; by_tightness : point list }

val run : ?seeds:int -> ?jobs:int -> unit -> result
(** Default 8 seeds per (point, mode). [jobs] forwards to
    {!Adpm_teamsim.Engine.run_many}. *)

val render : result -> string
