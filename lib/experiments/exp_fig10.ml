open Adpm_util
open Adpm_core
open Adpm_teamsim
open Adpm_scenarios

type point = {
  req_gain : float;
  conv_mean_ops : float;
  conv_sd_ops : float;
  adpm_mean_ops : float;
  adpm_sd_ops : float;
}

type result = { points : point list; conv_spread : float; adpm_spread : float }

let measure ~backend ~jobs mode req_gain seeds =
  let scenario =
    Scenario.make ~name:"receiver-sweep" ~description:""
      ~models:Receiver.scenario.Scenario.sc_models (fun ~mode ->
        Receiver.build ~req_gain () ~mode)
  in
  let cfg = Config.default ~mode ~seed:0 in
  let summaries =
    Engine.run_many ~backend ~jobs cfg scenario
      ~seeds:(List.init seeds (fun i -> i + 1))
  in
  let acc = Stats_acc.create () in
  List.iter (fun s -> Stats_acc.add_int acc s.Metrics.s_operations) summaries;
  (Stats_acc.mean acc, Stats_acc.stddev acc)

let run ?(seeds = 10) ?(sweep = Receiver.gain_sweep) ?(backend = Engine.Domains)
    ?(jobs = 1) () =
  let points =
    List.map
      (fun req_gain ->
        let conv_mean_ops, conv_sd_ops =
          measure ~backend ~jobs Dpm.Conventional req_gain seeds
        in
        let adpm_mean_ops, adpm_sd_ops =
          measure ~backend ~jobs Dpm.Adpm req_gain seeds
        in
        { req_gain; conv_mean_ops; conv_sd_ops; adpm_mean_ops; adpm_sd_ops })
      sweep
  in
  let spread f =
    let values = List.map f points in
    List.fold_left max neg_infinity values -. List.fold_left min infinity values
  in
  {
    points;
    conv_spread = spread (fun p -> p.conv_mean_ops);
    adpm_spread = spread (fun p -> p.adpm_mean_ops);
  }

let render r =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "=== Figure 10: operations vs gain-requirement tightness (receiver) ===\n\n";
  let table =
    Table.create
      [ "req-gain"; "conv ops (mean)"; "conv sd"; "ADPM ops (mean)"; "ADPM sd" ]
  in
  Table.set_align table
    [ Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ];
  List.iter
    (fun p ->
      Table.add_row table
        [
          Printf.sprintf "%.0f" p.req_gain;
          Printf.sprintf "%.1f" p.conv_mean_ops;
          Printf.sprintf "%.1f" p.conv_sd_ops;
          Printf.sprintf "%.1f" p.adpm_mean_ops;
          Printf.sprintf "%.1f" p.adpm_sd_ops;
        ])
    r.points;
  add "%s\n" (Table.render table);
  add "%s\n"
    (Ascii_chart.line_chart ~title:"mean operations vs gain requirement"
       ~x_label:"gain requirement (tightness)" ~y_label:"operations"
       [
         { Ascii_chart.label = "conventional";
           points = List.map (fun p -> (p.req_gain, p.conv_mean_ops)) r.points };
         { Ascii_chart.label = "ADPM";
           points = List.map (fun p -> (p.req_gain, p.adpm_mean_ops)) r.points };
       ]);
  add "paper claim: variation with tightness is larger for the conventional approach\n";
  add "measured spread (max-min of mean ops): conventional=%.1f, ADPM=%.1f\n"
    r.conv_spread r.adpm_spread;
  Buffer.contents buf
