open Adpm_util
open Adpm_core
open Adpm_teamsim
open Adpm_scenarios

type cell = Report.aggregate

type result = {
  sensor_conv : cell;
  sensor_adpm : cell;
  receiver_conv : cell;
  receiver_adpm : cell;
}

type verdicts = {
  ops_ratio_sensor : float;
  ops_ratio_receiver : float;
  reduction_larger_for_receiver : bool;
  variability_ratio_sensor : float;
  variability_ratio_receiver : float;
  spin_fraction : float;
  eval_penalty_sensor : float;
  eval_penalty_receiver : float;
  penalty_smaller_for_receiver : bool;
  per_op_penalty_sensor : float;
  per_op_penalty_receiver : float;
}

let cell ~backend ~jobs scenario mode seeds =
  let cfg = Config.default ~mode ~seed:0 in
  Report.aggregate
    (Engine.run_many ~backend ~jobs cfg scenario
       ~seeds:(List.init seeds (fun i -> i + 1)))

let run ?(seeds = 60) ?(backend = Engine.Domains) ?(jobs = 1) () =
  {
    sensor_conv = cell ~backend ~jobs Sensor.scenario Dpm.Conventional seeds;
    sensor_adpm = cell ~backend ~jobs Sensor.scenario Dpm.Adpm seeds;
    receiver_conv = cell ~backend ~jobs Receiver.scenario Dpm.Conventional seeds;
    receiver_adpm = cell ~backend ~jobs Receiver.scenario Dpm.Adpm seeds;
  }

let safe_div a b = if b = 0. then infinity else a /. b

let verdicts r =
  let mean_ops c = Stats_acc.mean c.Report.a_ops in
  let sd_ops c = Stats_acc.stddev c.Report.a_ops in
  let mean_evals c = Stats_acc.mean c.Report.a_evals in
  let mean_per_op c = Stats_acc.mean c.Report.a_evals_per_op in
  let mean_spins c = Stats_acc.mean c.Report.a_spins in
  let ops_ratio_sensor = safe_div (mean_ops r.sensor_conv) (mean_ops r.sensor_adpm) in
  let ops_ratio_receiver =
    safe_div (mean_ops r.receiver_conv) (mean_ops r.receiver_adpm)
  in
  let eval_penalty_sensor =
    safe_div (mean_evals r.sensor_adpm) (mean_evals r.sensor_conv)
  in
  let eval_penalty_receiver =
    safe_div (mean_evals r.receiver_adpm) (mean_evals r.receiver_conv)
  in
  {
    ops_ratio_sensor;
    ops_ratio_receiver;
    reduction_larger_for_receiver = ops_ratio_receiver > ops_ratio_sensor;
    variability_ratio_sensor = safe_div (sd_ops r.sensor_conv) (sd_ops r.sensor_adpm);
    variability_ratio_receiver =
      safe_div (sd_ops r.receiver_conv) (sd_ops r.receiver_adpm);
    spin_fraction =
      safe_div
        (mean_spins r.sensor_adpm +. mean_spins r.receiver_adpm)
        (mean_spins r.sensor_conv +. mean_spins r.receiver_conv);
    eval_penalty_sensor;
    eval_penalty_receiver;
    penalty_smaller_for_receiver = eval_penalty_receiver < eval_penalty_sensor;
    per_op_penalty_sensor =
      safe_div (mean_per_op r.sensor_adpm) (mean_per_op r.sensor_conv);
    per_op_penalty_receiver =
      safe_div (mean_per_op r.receiver_adpm) (mean_per_op r.receiver_conv);
  }

let render r =
  let v = verdicts r in
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "=== Figure 9: performance and computational penalty (%d seeds/cell) ===\n\n"
    r.sensor_conv.Report.a_runs;
  add "%s\n"
    (Report.comparison_table ~title:"Fig. 9 raw aggregates"
       [ r.sensor_conv; r.sensor_adpm; r.receiver_conv; r.receiver_adpm ]);
  add "%s\n"
    (Ascii_chart.bar_chart ~title:"Fig. 9(a) mean design operations"
       [
         ("sensor / conventional", Stats_acc.mean r.sensor_conv.Report.a_ops);
         ("sensor / ADPM", Stats_acc.mean r.sensor_adpm.Report.a_ops);
         ("receiver / conventional", Stats_acc.mean r.receiver_conv.Report.a_ops);
         ("receiver / ADPM", Stats_acc.mean r.receiver_adpm.Report.a_ops);
       ]);
  add "%s\n"
    (Ascii_chart.bar_chart ~title:"Fig. 9(b) mean total constraint evaluations"
       [
         ("sensor / conventional", Stats_acc.mean r.sensor_conv.Report.a_evals);
         ("sensor / ADPM", Stats_acc.mean r.sensor_adpm.Report.a_evals);
         ("receiver / conventional", Stats_acc.mean r.receiver_conv.Report.a_evals);
         ("receiver / ADPM", Stats_acc.mean r.receiver_adpm.Report.a_evals);
       ]);
  add "paper claim                                    | paper     | measured\n";
  add "-----------------------------------------------+-----------+---------\n";
  add "conventional ops / ADPM ops (sensor)           | >= 2      | %.1f\n"
    v.ops_ratio_sensor;
  add "conventional ops / ADPM ops (receiver)         | >= 2      | %.1f\n"
    v.ops_ratio_receiver;
  add "reduction more significant for receiver        | yes       | %b\n"
    v.reduction_larger_for_receiver;
  add "conventional sd / ADPM sd (sensor)             | >= 3      | %.1f\n"
    v.variability_ratio_sensor;
  add "conventional sd / ADPM sd (receiver)           | >= 3      | %.1f\n"
    v.variability_ratio_receiver;
  add "ADPM spins / conventional spins                | ~0.07     | %.2f\n"
    v.spin_fraction;
  add "ADPM evals / conventional evals (sensor)       | >> 1      | %.1f\n"
    v.eval_penalty_sensor;
  add "ADPM evals / conventional evals (receiver)     | >> 1      | %.1f\n"
    v.eval_penalty_receiver;
  add "total penalty smaller for harder case          | yes       | %b\n"
    v.penalty_smaller_for_receiver;
  add "per-op penalty (sensor)                        | > total   | %.1f\n"
    v.per_op_penalty_sensor;
  add "per-op penalty (receiver)                      | > total   | %.1f\n"
    v.per_op_penalty_receiver;
  Buffer.contents buf
