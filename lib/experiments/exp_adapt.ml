open Adpm_util
open Adpm_csp
open Adpm_core
open Adpm_teamsim
open Adpm_scenarios

type cell = { ops : float; evals : float; done_rate : float }

type point = {
  family : string;
  schedule : string;
  plan : string;
  conv : cell;
  adpm : cell;
  headroom : cell;
  advantage : float;
}

type result = { points : point list; adapt_advantage : float }

(* Witness-preserving shift schedules, derived from the requirement values
   the generator actually assigned: squeezing the budget to
   old * (1 + 0.3s) / (1 + s) or raising a gain floor to
   old * (1 - 0.3s) / (1 - s) moves each requirement 70% of the way to the
   nominal witness, so the instance stays satisfiable by construction and
   the shift is a re-work event, not an impossibility. *)
let schedules params scenario =
  let dpm = scenario.Scenario.sc_build ~mode:Dpm.Adpm in
  let net = Dpm.network dpm in
  let req name =
    match Network.assigned_num net name with
    | Some v -> v
    | None ->
      invalid_arg
        (Printf.sprintf "Exp_adapt: %s has no requirement %S"
           scenario.Scenario.sc_name name)
  in
  let s = params.Generated.g_slack in
  let squeeze =
    {
      Shift.sh_prop = "p_budget";
      sh_value = req "p_budget" *. (1. +. (0.3 *. s)) /. (1. +. s);
      sh_at = 10;
    }
  in
  let raise0 =
    {
      Shift.sh_prop = "gmin0";
      sh_value = req "gmin0" *. (1. -. (0.3 *. s)) /. (1. -. s);
      sh_at = 15;
    }
  in
  [
    ("budget-squeeze", [ squeeze ]);
    ("floor-raise", [ raise0 ]);
    ("double-shift", [ squeeze; { raise0 with Shift.sh_at = 40 } ]);
  ]

let families =
  [
    ("3x2 ring", Generated.default_params ~subsystems:3 ~vars:2);
    ( "4x2 star+coupling",
      {
        (Generated.default_params ~subsystems:4 ~vars:2) with
        Generated.g_topology = Generated.Star;
        g_coupling = 0.25;
      } );
    ( "4x3 random",
      {
        (Generated.default_params ~subsystems:4 ~vars:3) with
        Generated.g_topology = Generated.Random 0.5;
      } );
  ]

let measure_cell ~seeds ~jobs ~shifts ~policy mode scenario =
  let cfg =
    {
      (Config.default ~mode ~seed:0) with
      Config.shifts;
      value_policy = policy;
    }
  in
  let summaries =
    Engine.run_many ~jobs cfg scenario ~seeds:(List.init seeds (fun i -> i + 1))
  in
  let ops = Stats_acc.create () and evals = Stats_acc.create () in
  let completed = ref 0 in
  List.iter
    (fun s ->
      if s.Metrics.s_completed then incr completed;
      Stats_acc.add_int ops s.Metrics.s_operations;
      Stats_acc.add_int evals s.Metrics.s_evaluations)
    summaries;
  {
    ops = Stats_acc.mean ops;
    evals = Stats_acc.mean evals;
    done_rate = float_of_int !completed /. float_of_int seeds;
  }

let measure ~seeds ~jobs ~family ~schedule ~shifts scenario =
  let cell = measure_cell ~seeds ~jobs ~shifts in
  let conv = cell ~policy:Config.Endpoint Dpm.Conventional scenario in
  let adpm = cell ~policy:Config.Endpoint Dpm.Adpm scenario in
  let headroom = cell ~policy:Config.Headroom Dpm.Adpm scenario in
  {
    family;
    schedule;
    plan = Shift.plan_to_string shifts;
    conv;
    adpm;
    headroom;
    advantage = conv.ops /. adpm.ops;
  }

let run ?(seeds = 8) ?(jobs = 1) () =
  let points =
    List.concat_map
      (fun (family, params) ->
        let scenario = Generated.scenario params in
        List.map
          (fun (schedule, shifts) ->
            measure ~seeds ~jobs ~family ~schedule ~shifts scenario)
          (schedules params scenario))
      families
  in
  let adapt_advantage =
    (* geometric mean of the per-point operation ratios *)
    exp
      (List.fold_left (fun acc p -> acc +. log p.advantage) 0. points
      /. float_of_int (List.length points))
  in
  { points; adapt_advantage }

let pct x = Printf.sprintf "%.0f%%" (100. *. x)

let table points =
  let t =
    Table.create ~title:"requirement shifts mid-run (mean over seeds)"
      [
        "Family"; "Schedule"; "Conv ops"; "ADPM ops"; "Advantage";
        "HR ops"; "Conv done"; "ADPM done"; "HR done";
      ]
  in
  Table.set_align t
    [
      Table.Left; Table.Left; Table.Right; Table.Right; Table.Right;
      Table.Right; Table.Right; Table.Right; Table.Right;
    ];
  List.iter
    (fun p ->
      Table.add_row t
        [
          p.family;
          p.schedule;
          Printf.sprintf "%.1f" p.conv.ops;
          Printf.sprintf "%.1f" p.adpm.ops;
          Printf.sprintf "%.2fx" p.advantage;
          Printf.sprintf "%.1f" p.headroom.ops;
          pct p.conv.done_rate;
          pct p.adpm.done_rate;
          pct p.headroom.done_rate;
        ])
    points;
  Table.render t

let render r =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "=== Adaptability study (requirement shifts at virtual time) ===\n\n";
  add "%s\n" (table r.points);
  add "Each schedule re-assigns a requirement mid-run, 70%% of the way to\n";
  add "the generator's witness point (still satisfiable). The ADPM team\n";
  add "re-propagates at the shift tick and re-plans immediately; the\n";
  add "conventional team keeps working against the stale requirement until\n";
  add "its next verification exposes the move. The Advantage column is the\n";
  add "operation-count ratio conventional/ADPM under the same shifts; HR is\n";
  add "ADPM with the headroom-seeking value policy (f_v = argmax log of\n";
  add "minimum normalized constraint headroom), which buys margin against\n";
  add "future shifts at extra evaluation cost.\n";
  add "adapt_advantage (geometric mean of per-cell ratios): %.2fx\n"
    r.adapt_advantage;
  Buffer.contents buf
