(** Figure 7: per-operation profiles on the simplified design case.

    (a) Number of constraint violations found upon each executed operation,
    conventional (solid) vs ADPM (dotted). Expected shape: with ADPM fewer
    violations are found, they start later and stop earlier, and fewer
    operations complete the design.

    (b) Number of constraint evaluations per executed operation. Expected
    shape: ADPM pays more evaluations per operation, but the total (area
    under the curve) carries a smaller penalty because the run is much
    shorter. *)

type series = { ops : int array; violations : float array; evaluations : float array }

type result = {
  conventional : series;
  adpm : series;
  conv_total_viol : float;
  adpm_total_viol : float;
  conv_total_evals : float;
  adpm_total_evals : float;
  conv_last_violation_op : int;  (** last operation that found a violation *)
  adpm_last_violation_op : int;
  conv_mean_ops : float;  (** mean run length *)
  adpm_mean_ops : float;
}

val run :
  ?seeds:int ->
  ?backend:Adpm_teamsim.Engine.backend ->
  ?jobs:int ->
  unit ->
  result
(** Averages profiles over [seeds] (default 20) runs per mode. [backend]
    (default [Domains]) and [jobs] forward to
    {!Adpm_teamsim.Engine.run_many}. *)

val render : result -> string
