(** Adaptability study: requirement shifts at virtual design time.

    The paper motivates ADPM's continuous constraint propagation partly as
    an insurance policy: when a requirement moves mid-project, a team with
    a live constraint network sees the consequences immediately, while a
    conventional team keeps designing against the stale value until the
    next verification pass. This experiment measures that asymmetry on
    generated scenario families under witness-preserving shift schedules
    ([budget-squeeze], [floor-raise], [double-shift] — each re-assigns a
    requirement 70% of the way to the generator's witness point, so every
    shifted instance stays satisfiable).

    Each (family, schedule) cell runs three configurations over the same
    seeds: conventional, ADPM with the paper's endpoint value heuristic,
    and ADPM with the headroom-seeking policy
    ([f_v = argmax log (min normalized constraint headroom)]). The
    headline [adapt_advantage] is the geometric mean of the per-cell
    conventional/ADPM operation ratios. *)

type cell = {
  ops : float;  (** mean N_O over seeds (capped runs included) *)
  evals : float;  (** mean N_T over seeds *)
  done_rate : float;  (** fraction of seeds that completed in [0, 1] *)
}

type point = {
  family : string;
  schedule : string;
  plan : string;  (** concrete rendered plan, e.g. ["p_budget>=132.2@10"] *)
  conv : cell;
  adpm : cell;  (** endpoint value policy *)
  headroom : cell;  (** ADPM with [Config.Headroom] *)
  advantage : float;  (** [conv.ops /. adpm.ops] *)
}

type result = {
  points : point list;  (** families x shift schedules *)
  adapt_advantage : float;
      (** geometric mean of {!point.advantage} over all points *)
}

val run : ?seeds:int -> ?jobs:int -> unit -> result
(** Default 8 seeds per cell and configuration. [jobs] forwards to
    {!Adpm_teamsim.Engine.run_many}. *)

val render : result -> string
