(** Ablation studies (the "other heuristics" evaluation the paper's
    conclusion defers to future work, plus the CSP premise it builds on).

    (a) TeamSim ablation: disable each ADPM heuristic in isolation —
    smallest-feasible-subspace ordering (2.3.1), alpha-guided conflict
    repair (2.3.3), monotone direction hints, constraint-margin repair
    windows, and the design-history tabu — and measure operations and
    evaluations on the receiver case.

    (b) CSP search ablation: compare the variable-ordering heuristics the
    paper imports from the constraint-satisfaction literature
    (smallest-domain-first = 2.3.1, max-degree = 2.3.2) against
    uninformed orderings, on random binary CSPs near the phase
    transition: backtracking nodes and constraint checks.

    (c) DCM consistency ablation: hull consistency (one HC4 fixpoint, the
    default) against 3B-style bound shaving, measured by the mean relative
    feasible-window width on a mid-design receiver state (tight gain spec,
    two committed parameters) and the constraint evaluations spent — the precision/cost dial of the constraint
    management infrastructure the paper identifies as the key
    challenge. *)

type teamsim_row = {
  label : string;
  mean_ops : float;
  sd_ops : float;
  mean_evals : float;
  completion : int;  (** completed runs *)
  runs : int;
}

type search_row = {
  s_label : string;  (** "heuristic / inference" *)
  heuristic : Adpm_csp.Search.heuristic;
  inference : Adpm_csp.Search.inference;
  mean_nodes : float;
  mean_checks : float;
  solved : int;
  instances : int;
}

type consistency_row = {
  c_label : string;
  c_mean_window : float;
      (** mean relative feasible-window width over unbound properties *)
  c_evaluations : int;
}

type result = {
  teamsim : teamsim_row list;
  search : search_row list;
  consistency : consistency_row list;
}

val run : ?seeds:int -> ?instances:int -> ?jobs:int -> unit -> result
(** Defaults: 15 seeds per TeamSim configuration, 30 random CSP
    instances. [jobs] parallelizes the TeamSim rows (the CSP and
    consistency ablations are single-process). *)

val render : result -> string
