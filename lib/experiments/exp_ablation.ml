open Adpm_util
open Adpm_csp
open Adpm_core
open Adpm_teamsim
open Adpm_scenarios

type teamsim_row = {
  label : string;
  mean_ops : float;
  sd_ops : float;
  mean_evals : float;
  completion : int;
  runs : int;
}

type search_row = {
  s_label : string;
  heuristic : Search.heuristic;
  inference : Search.inference;
  mean_nodes : float;
  mean_checks : float;
  solved : int;
  instances : int;
}

type consistency_row = {
  c_label : string;
  c_mean_window : float;
  c_evaluations : int;
}

type result = {
  teamsim : teamsim_row list;
  search : search_row list;
  consistency : consistency_row list;
}

let teamsim_row ~jobs label cfg seeds =
  let summaries =
    Engine.run_many ~jobs cfg Receiver.scenario
      ~seeds:(List.init seeds (fun i -> i + 1))
  in
  let ops = Stats_acc.create () and evals = Stats_acc.create () in
  let completed = ref 0 in
  List.iter
    (fun s ->
      if s.Metrics.s_completed then incr completed;
      Stats_acc.add_int ops s.Metrics.s_operations;
      Stats_acc.add_int evals s.Metrics.s_evaluations)
    summaries;
  {
    label;
    mean_ops = Stats_acc.mean ops;
    sd_ops = Stats_acc.stddev ops;
    mean_evals = Stats_acc.mean evals;
    completion = !completed;
    runs = seeds;
  }

let teamsim_ablation ~jobs seeds =
  let base = Config.default ~mode:Dpm.Adpm ~seed:0 in
  [
    teamsim_row ~jobs "ADPM, all heuristics" base seeds;
    teamsim_row ~jobs "no feasible-subspace ordering (2.3.1)"
      { base with Config.forward_ordering = Config.Random_target }
      seeds;
    teamsim_row ~jobs "most-constrained-first ordering (2.3.2)"
      { base with Config.forward_ordering = Config.Most_constrained }
      seeds;
    teamsim_row ~jobs "no alpha conflict repair (2.3.3)"
      { base with Config.use_alpha_repair = false }
      seeds;
    teamsim_row ~jobs "no monotone direction hints"
      { base with Config.use_monotone_hints = false }
      seeds;
    teamsim_row ~jobs "no constraint-margin repair windows"
      { base with Config.use_relaxed_feasible = false }
      seeds;
    teamsim_row ~jobs "no design-history tabu"
      { base with Config.use_history_tabu = false }
      seeds;
    teamsim_row ~jobs "conventional (lambda = F)"
      (Config.default ~mode:Dpm.Conventional ~seed:0)
      seeds;
  ]

let search_ablation instances =
  let row heuristic inference =
    let nodes = Stats_acc.create () and checks = Stats_acc.create () in
    let solved = ref 0 in
    for i = 1 to instances do
      let rng = Rng.create (1000 + i) in
      (* near the solvable-but-hard region for model-B instances *)
      let csp =
        Search.random_csp rng ~nvars:14 ~domain_size:6 ~density:0.4
          ~tightness:0.35
      in
      let stats = Search.solve ~rng:(Rng.create i) ~inference ~heuristic csp in
      if stats.Search.solution <> None then incr solved;
      Stats_acc.add_int nodes stats.Search.nodes;
      Stats_acc.add_int checks stats.Search.checks
    done;
    {
      s_label =
        Printf.sprintf "%s / %s"
          (Search.heuristic_name heuristic)
          (Search.inference_name inference);
      heuristic;
      inference;
      mean_nodes = Stats_acc.mean nodes;
      mean_checks = Stats_acc.mean checks;
      solved = !solved;
      instances;
    }
  in
  List.map (fun h -> row h Search.Forward_check) Search.all_heuristics
  @ [
      row Search.Min_domain Search.No_inference;
      row Search.Min_domain Search.Mac;
    ]

(* DCM consistency comparison: window precision vs evaluation cost on a
   mid-design receiver state (tight gain spec, two analog parameters
   committed) where hull consistency is measurably weaker. *)
let consistency_ablation () =
  let measure label consistency =
    let dpm = Receiver.build ~req_gain:2000. () ~mode:Dpm.Adpm in
    let net = Dpm.network dpm in
    Network.assign net "bias-current" (Value.Num 9.);
    Network.assign net "mixer-gm" (Value.Num 18.);
    let outcome = Propagate.run ~consistency net in
    let windows =
      List.filter_map
        (fun (name, d) ->
          if Network.is_bound net name then None
          else
            Some
              (Adpm_interval.Domain.relative_measure
                 ~initial:(Network.initial_domain net name)
                 d))
        outcome.Propagate.feasible
    in
    let mean =
      List.fold_left ( +. ) 0. windows /. float_of_int (List.length windows)
    in
    { c_label = label; c_mean_window = mean;
      c_evaluations = outcome.Propagate.evaluations }
  in
  [
    measure "hull consistency (HC4 fixpoint)" `Hull;
    measure "bound shaving, 4 slices" (`Shave 4);
    measure "bound shaving, 8 slices" (`Shave 8);
  ]

let run ?(seeds = 15) ?(instances = 30) ?(jobs = 1) () =
  {
    teamsim = teamsim_ablation ~jobs seeds;
    search = search_ablation instances;
    consistency = consistency_ablation ();
  }

let render r =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "=== Ablation (a): ADPM heuristics on the receiver case ===\n\n";
  let table =
    Table.create [ "Configuration"; "Ops (mean)"; "Ops (sd)"; "Evals"; "Done" ]
  in
  Table.set_align table
    [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ];
  List.iter
    (fun row ->
      Table.add_row table
        [
          row.label;
          Printf.sprintf "%.1f" row.mean_ops;
          Printf.sprintf "%.1f" row.sd_ops;
          Printf.sprintf "%.0f" row.mean_evals;
          Printf.sprintf "%d/%d" row.completion row.runs;
        ])
    r.teamsim;
  add "%s\n" (Table.render table);
  add "=== Ablation (b): CSP variable-ordering heuristics (random binary CSPs) ===\n\n";
  let table =
    Table.create
      [ "Heuristic / inference"; "Nodes (mean)"; "Checks (mean)"; "Solved" ]
  in
  Table.set_align table [ Table.Left; Table.Right; Table.Right; Table.Right ];
  List.iter
    (fun row ->
      Table.add_row table
        [
          row.s_label;
          Printf.sprintf "%.0f" row.mean_nodes;
          Printf.sprintf "%.0f" row.mean_checks;
          Printf.sprintf "%d/%d" row.solved row.instances;
        ])
    r.search;
  add "%s\n" (Table.render table);
  add "expected shape: informed orderings (min-domain, dom/deg) expand far\n";
  add "fewer nodes than lexicographic/random — the premise behind ADPM's\n";
  add "smallest-feasible-subspace and most-constrained-first guidance.\n\n";
  add "=== Ablation (c): DCM consistency level (receiver, mid-design state) ===\n\n";
  let table =
    Table.create [ "Consistency"; "Mean relative window"; "Evaluations" ]
  in
  Table.set_align table [ Table.Left; Table.Right; Table.Right ];
  List.iter
    (fun row ->
      Table.add_row table
        [
          row.c_label;
          Printf.sprintf "%.4f" row.c_mean_window;
          string_of_int row.c_evaluations;
        ])
    r.consistency;
  add "%s\n" (Table.render table);
  add "expected shape: shaving buys narrower windows (more precise guidance)\n";
  add "at a higher evaluation cost.\n";
  Buffer.contents buf
