open Adpm_util
open Adpm_core
open Adpm_teamsim
open Adpm_scenarios

type point = {
  p_latency : int;
  p_conv : Report.aggregate;
  p_adpm : Report.aggregate;
}

type result = { scenario : string; seeds : int; points : point list }

type verdicts = {
  ops_ratio_by_latency : (int * float) list;
  ratio_at_zero : float;
  ratio_at_max : float;
  advantage_grows : bool;
}

let default_latencies = [ 0; 1; 2; 4; 8 ]

let cell ~jobs scenario mode latency seeds =
  let cfg = { (Config.default ~mode ~seed:0) with Config.latency } in
  Report.aggregate
    (Engine.run_many ~jobs cfg scenario ~seeds:(List.init seeds (fun i -> i + 1)))

let run ?(seeds = 30) ?(jobs = 1) ?(latencies = default_latencies)
    ?(scenario = Sensor.scenario) () =
  if latencies = [] then invalid_arg "Exp_latency.run: empty latency list";
  let latencies = List.sort_uniq compare latencies in
  {
    scenario = scenario.Scenario.sc_name;
    seeds;
    points =
      List.map
        (fun latency ->
          {
            p_latency = latency;
            p_conv = cell ~jobs scenario Dpm.Conventional latency seeds;
            p_adpm = cell ~jobs scenario Dpm.Adpm latency seeds;
          })
        latencies;
  }

let safe_div a b = if b = 0. then infinity else a /. b

let ops_ratio p =
  safe_div (Stats_acc.mean p.p_conv.Report.a_ops)
    (Stats_acc.mean p.p_adpm.Report.a_ops)

let verdicts r =
  let ratios = List.map (fun p -> (p.p_latency, ops_ratio p)) r.points in
  let first = List.hd ratios and last = List.nth ratios (List.length ratios - 1) in
  {
    ops_ratio_by_latency = ratios;
    ratio_at_zero = snd first;
    ratio_at_max = snd last;
    advantage_grows = snd last >= snd first;
  }

let completion a =
  safe_div (float_of_int a.Report.a_completed) (float_of_int a.Report.a_runs)

let render r =
  let v = verdicts r in
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "=== Notification-latency sweep: %s (%d seeds/cell) ===\n\n" r.scenario
    r.seeds;
  let table =
    Table.create ~title:"Mean design operations by notification latency"
      [
        "Latency";
        "Conv ops";
        "ADPM ops";
        "Conv/ADPM";
        "Conv done";
        "ADPM done";
      ]
  in
  Table.set_align table
    [ Table.Right; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ];
  List.iter
    (fun p ->
      Table.add_row table
        [
          string_of_int p.p_latency;
          Printf.sprintf "%.1f" (Stats_acc.mean p.p_conv.Report.a_ops);
          Printf.sprintf "%.1f" (Stats_acc.mean p.p_adpm.Report.a_ops);
          Printf.sprintf "%.2f" (ops_ratio p);
          Printf.sprintf "%.0f%%" (100. *. completion p.p_conv);
          Printf.sprintf "%.0f%%" (100. *. completion p.p_adpm);
        ])
    r.points;
  Buffer.add_string buf (Table.render table);
  Buffer.add_char buf '\n';
  add "%s\n"
    (Ascii_chart.bar_chart
       ~title:"Conventional-to-ADPM operation ratio by latency"
       (List.map
          (fun (latency, ratio) ->
            (Printf.sprintf "latency %d" latency, ratio))
          v.ops_ratio_by_latency));
  add "ADPM advantage (conv ops / ADPM ops) at latency 0: %.2f\n" v.ratio_at_zero;
  add "ADPM advantage at the largest latency:             %.2f\n" v.ratio_at_max;
  add "advantage grows (or holds) as notification lags:   %b\n" v.advantage_grows;
  Buffer.contents buf
