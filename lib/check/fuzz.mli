(** Schedule fuzzing with shrinking.

    A {e schedule} is everything that perturbs one simulation run beyond
    the scenario itself: the Rng seed (turn shuffles, duration draws,
    fault fates), the delivery latency, the duration model, and the fault
    plan. The fuzzer draws schedules from a splittable stream, runs each
    on the discrete-event engine with a complete (unbounded) in-memory
    trace, and checks the temporal-property suite ({!Props}) over the
    trace.

    On a violation it {e shrinks}: greedily simplifies the schedule —
    dropping crash entries, silencing fault dimensions, lowering latency,
    flattening the duration model — as long as the same property keeps
    failing. Runs are deterministic in the schedule, so a reproducing
    candidate reproduces forever. The minimized run is written out as a
    replayable artifact: the trace as JSONL ([teamsim replay] accepts
    it) plus a JSON summary carrying the schedule and the repro command
    line. *)

open Adpm_core
open Adpm_trace
module Model = Adpm_sim.Model
module Fault = Adpm_fault.Fault
module Config = Adpm_teamsim.Config
module Scenario = Adpm_teamsim.Scenario

type schedule = {
  fs_seed : int;
  fs_latency : int;
  fs_duration : Model.duration;
  fs_faults : Fault.plan;
}

val schedule_to_string : schedule -> string
(** e.g. ["seed=7 latency=2 duration=uniform:1 drop=0.1 dup=0 jitter=3
    crashes=alice@5+3"]. *)

val config_of_schedule : mode:Dpm.mode -> ?max_ops:int -> schedule -> Config.t
(** The engine configuration a schedule denotes (defaults elsewhere). *)

val gen_schedule :
  rng:Adpm_util.Rng.t ->
  roster:string list ->
  ?faults:Fault.plan ->
  unit ->
  schedule
(** Draw one random schedule. [faults], when given, is used verbatim
    (the caller pins the fault plan); otherwise drop/dup/jitter rates
    and an occasional single crash on a roster designer are drawn too. *)

val run_schedule :
  mode:Dpm.mode ->
  ?max_ops:int ->
  Scenario.t ->
  schedule ->
  Event.stamped list
(** One engine run under the schedule, traced into an unbounded
    collector — the checker never sees a truncated stream. Deterministic
    in (scenario, mode, schedule). *)

val default_suite : schedule -> Prop.t list
(** {!Props.suite} tuned to the schedule: horizon from latency + jitter,
    crash deadlines from the plan. *)

type violation = {
  v_prop : string;  (** failing property *)
  v_reason : string;
  v_from_seq : int;
  v_to_seq : int;
  v_original : schedule;  (** as drawn by the fuzzer *)
  v_schedule : schedule;  (** after shrinking *)
  v_shrink_steps : int;  (** accepted simplification steps *)
  v_events : Event.stamped list;  (** trace of the minimized run *)
}

type report = {
  fz_schedules : int;  (** schedules run (stops at the first violation) *)
  fz_violation : violation option;
}

val shrink :
  ?suite:(schedule -> Prop.t list) ->
  ?max_ops:int ->
  mode:Dpm.mode ->
  scenario:Scenario.t ->
  prop:string ->
  schedule ->
  schedule * int
(** Greedy descent: repeatedly take the first candidate simplification
    under which property [prop] still fails, until none does. Returns
    the minimized schedule and the number of accepted steps. *)

val fuzz :
  ?suite:(schedule -> Prop.t list) ->
  ?faults:Fault.plan ->
  ?max_ops:int ->
  ?progress:(int -> unit) ->
  mode:Dpm.mode ->
  seed:int ->
  count:int ->
  Scenario.t ->
  report
(** Run up to [count] random schedules; on the first property failure,
    shrink it and stop. [progress] is called with the 1-based index
    after each clean schedule. *)

val write_artifact :
  prefix:string ->
  scenario:string ->
  mode:Dpm.mode ->
  violation ->
  string list
(** Write [<prefix>.trace.jsonl] (the minimized run, replayable) and
    [<prefix>.json] (schedule, property, witness window, repro command).
    Returns the paths written. *)
