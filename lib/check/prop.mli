(** Temporal properties over trace event streams.

    A property is a named description that can be instantiated into a
    fresh stateful checker; {!check} runs a whole suite over one recorded
    trace in a single pass. Properties are built from a small combinator
    vocabulary — {!never}, {!eventually}, {!leads_to}, {!after_never},
    {!bounded_count} — each of which reports the {e witnessing window}
    (first and last sequence numbers involved) when it fails.

    The evaluator maintains ambient {!facts} about the run (virtual
    makespan, operation completion times, crash windows, the designer
    roster) that end-of-trace policies consult to separate genuine
    violations from obligations the run legitimately left open (a
    notification still in flight when the project finished, a recipient
    that was crashed for the whole delivery window).

    Truncated traces are {b refused}, not vacuously passed: a ring-buffer
    sink that overwrote old events produces a stream whose sequence
    numbers no longer start at zero or are no longer dense, and every
    property then reports {!Truncated} instead of a verdict. *)

open Adpm_trace

(** {1 Verdicts} *)

type fail = {
  f_reason : string;  (** human-readable explanation *)
  f_from_seq : int;  (** sequence number opening the witnessing window *)
  f_to_seq : int;  (** sequence number closing it *)
}

type verdict =
  | Pass
  | Fail of fail
  | Truncated of { dropped : int }
      (** the trace is incomplete ([dropped] events missing — at least 1
          even when the exact count is unknown); no verdict is sound *)

val verdict_to_string : verdict -> string
(** ["pass"], ["FAIL: <reason> [seq A..B]"], or
    ["truncated (<n> events dropped)"]. *)

(** {1 Ambient facts}

    Accumulated by the evaluator during the same single pass; step
    functions and end-of-trace policies may consult them. *)

type facts

val makespan : facts -> int
(** Largest virtual time stamped on any event so far. *)

val completion_of : facts -> int -> int option
(** Virtual completion time of an operation index ([Op_completed]). *)

val actor_of : facts -> int -> string option
(** Designer who executed an operation index ([Op_executed]). *)

val roster_size : facts -> int
(** Distinct designers seen acting (turns, executions, crashes) so far. *)

val op_count : facts -> int
(** [Op_completed] events seen — [0] for traces without virtual-time
    information (lockstep runs). *)

val crashed_during : facts -> string -> int -> int -> bool
(** [crashed_during f d t1 t2]: did designer [d] have a crash window
    (crash to restart, or crash to end-of-trace) intersecting
    [[t1, t2]]? *)

(** {1 Properties} *)

type instance
(** Fresh mutable checker state for one run over one trace. *)

type t = {
  p_name : string;
  p_doc : string;  (** one-line statement of the property *)
  p_instantiate : unit -> instance;
}

val never :
  name:string -> doc:string -> (Event.stamped -> string option) -> t
(** Fails on the first event the predicate condemns (returning
    [Some reason]). *)

val eventually :
  name:string ->
  doc:string ->
  ?unless:(facts -> bool) ->
  (Event.stamped -> bool) ->
  t
(** Fails at end of trace when no event satisfied the predicate, unless
    the [unless] policy excuses the whole trace. *)

val leads_to :
  name:string ->
  doc:string ->
  trigger:(facts -> Event.stamped -> 'ob list) ->
  key:('ob -> string) ->
  describe:('ob -> string) ->
  discharge:(facts -> Event.stamped -> ('ob -> bool) option) ->
  ?excuse:(facts -> Event.stamped -> ('ob -> bool) option) ->
  ?at_end:(facts -> 'ob -> bool) ->
  unit ->
  t
(** The workhorse: [trigger] opens obligations (deduplicated by [key]),
    [discharge] closes the ones its returned predicate selects, [excuse]
    closes them without counting as fulfilment (e.g. the fault injector
    dropped the message). Obligations still open at end of trace fail —
    with the triggering event's sequence number opening the witness
    window — unless [at_end] (default: never) excuses them. *)

val after_never :
  name:string ->
  doc:string ->
  mark:(Event.stamped -> string list) ->
  bad:(Event.stamped -> string list) ->
  describe:(string -> string) ->
  t
(** Safety: once a key is [mark]ed, any later event listing it among its
    [bad] keys is a violation (window: mark to offending event). *)

val bounded_count :
  name:string ->
  doc:string ->
  arm:(facts -> Event.stamped -> string list) ->
  tick:(facts -> Event.stamped -> (string -> bool) option) ->
  disarm:(facts -> Event.stamped -> (string -> bool) option) ->
  bound:(facts -> int) ->
  describe:(string -> int -> string) ->
  t
(** Fairness: [arm] starts (or resets) a counter per key, [tick]
    increments the counters its predicate selects, and exceeding
    [bound facts] fails ([describe key count] renders the reason).
    [disarm] drops counters (a crashed designer is not starving). Events
    are applied disarm-first, then tick, then arm, so a key's own
    arrival both resets it and never self-ticks. *)

val conj : name:string -> doc:string -> t list -> t
(** All sub-properties under one name; the first failure wins. *)

(** {1 Checking} *)

type result = { c_prop : string; c_doc : string; c_verdict : verdict }

val truncation : ?dropped:int -> Event.stamped list -> int option
(** [Some n] when the stream is visibly incomplete: the caller reported
    [dropped > 0] (a ring sink's overwrite count), the first sequence
    number is not [0], or the sequence numbers are not dense. [n] is the
    best lower bound on the number of missing events. *)

val check : ?dropped:int -> t list -> Event.stamped list -> result list
(** Evaluate every property over the trace in one pass, in order.
    Refuses truncated traces: every verdict is then [Truncated]. *)

val failed : result list -> result list
(** The results that are not [Pass]. *)

val render : result list -> string
(** One line per property. *)
