open Adpm_core
open Adpm_trace
module Rng = Adpm_util.Rng
module Model = Adpm_sim.Model
module Fault = Adpm_fault.Fault
module Config = Adpm_teamsim.Config
module Engine = Adpm_teamsim.Engine
module Scenario = Adpm_teamsim.Scenario

type schedule = {
  fs_seed : int;
  fs_latency : int;
  fs_duration : Model.duration;
  fs_faults : Fault.plan;
}

let schedule_to_string s =
  Printf.sprintf "seed=%d latency=%d duration=%s drop=%g dup=%g jitter=%d%s"
    s.fs_seed s.fs_latency
    (Model.duration_to_string s.fs_duration)
    s.fs_faults.Fault.p_drop s.fs_faults.Fault.p_dup s.fs_faults.Fault.p_jitter
    (match s.fs_faults.Fault.p_crashes with
    | [] -> ""
    | cs -> " crashes=" ^ Fault.crashes_to_string cs)

let config_of_schedule ~mode ?max_ops s =
  let cfg = Config.default ~mode ~seed:s.fs_seed in
  let cfg =
    {
      cfg with
      Config.latency = s.fs_latency;
      duration_model = s.fs_duration;
      faults = s.fs_faults;
    }
  in
  match max_ops with
  | None -> cfg
  | Some max_ops -> { cfg with Config.max_ops }

let gen_duration rng =
  match Rng.int rng 3 with
  | 0 -> Model.unit_duration
  | 1 -> Model.Uniform (1 + Rng.int rng 3)
  | _ ->
    Model.Per_kind
      {
        dm_synthesis = 1 + Rng.int rng 4;
        dm_verification = 1 + Rng.int rng 4;
        dm_decompose = 1 + Rng.int rng 4;
      }

let gen_faults rng ~roster =
  let p_drop = if Rng.bool rng then 0. else Rng.float rng 0.3 in
  let p_dup = if Rng.bool rng then 0. else Rng.float rng 0.2 in
  let p_jitter = Rng.int rng 4 in
  let p_crashes =
    (* at most one crash per generated plan: enough to exercise the
       recovery properties, small enough to keep runs converging *)
    if roster = [] || Rng.int rng 3 <> 0 then []
    else
      let designer = Rng.pick rng roster in
      [
        {
          Fault.cr_designer = designer;
          cr_at = Rng.int rng 16;
          cr_recover = 1 + Rng.int rng 8;
        };
      ]
  in
  { Fault.p_drop; p_dup; p_jitter; p_crashes }

let gen_schedule ~rng ~roster ?faults () =
  let fs_seed = 1 + Rng.int rng 1_000_000 in
  let fs_latency = Rng.int rng 4 in
  let fs_duration = gen_duration rng in
  let fs_faults =
    match faults with Some plan -> plan | None -> gen_faults rng ~roster
  in
  { fs_seed; fs_latency; fs_duration; fs_faults }

let run_schedule ~mode ?max_ops scenario s =
  let buf, sink = Sink.collector () in
  let tracer = Tracer.create sink in
  let cfg = config_of_schedule ~mode ?max_ops s in
  let (_ : Engine.outcome) = Engine.run ~tracer cfg scenario in
  Tracer.close tracer;
  Sink.Collect.contents buf

let default_suite s =
  let horizon =
    Model.max_delivery_delay ~latency:s.fs_latency
      ~jitter:s.fs_faults.Fault.p_jitter
  in
  Props.suite ~horizon ~crashes:s.fs_faults.Fault.p_crashes ()

type violation = {
  v_prop : string;
  v_reason : string;
  v_from_seq : int;
  v_to_seq : int;
  v_original : schedule;
  v_schedule : schedule;
  v_shrink_steps : int;
  v_events : Event.stamped list;
}

type report = { fz_schedules : int; fz_violation : violation option }

let first_fail results =
  List.find_opt
    (fun r -> match r.Prop.c_verdict with Prop.Fail _ -> true | _ -> false)
    results

(* {2 Shrinking} *)

let candidates s =
  let faults =
    List.map (fun p -> { s with fs_faults = p }) (Fault.shrink_plan s.fs_faults)
  in
  let latency =
    if s.fs_latency > 0 then
      { s with fs_latency = 0 }
      :: (if s.fs_latency > 1 then [ { s with fs_latency = s.fs_latency / 2 } ]
          else [])
    else []
  in
  let duration =
    if s.fs_duration <> Model.unit_duration then
      [ { s with fs_duration = Model.unit_duration } ]
    else []
  in
  faults @ latency @ duration

let reproduces ~suite ~max_ops ~mode ~scenario ~prop s =
  let events = run_schedule ~mode ?max_ops scenario s in
  let results = Prop.check (suite s) events in
  List.exists
    (fun r ->
      r.Prop.c_prop = prop
      && match r.Prop.c_verdict with Prop.Fail _ -> true | _ -> false)
    results

let shrink ?(suite = default_suite) ?max_ops ~mode ~scenario ~prop s =
  (* every candidate is strictly smaller, so the descent terminates; the
     step cap only guards against a pathological candidate generator *)
  let max_steps = 64 in
  let rec go s steps =
    if steps >= max_steps then (s, steps)
    else
      match
        List.find_opt
          (reproduces ~suite ~max_ops ~mode ~scenario ~prop)
          (candidates s)
      with
      | Some smaller -> go smaller (steps + 1)
      | None -> (s, steps)
  in
  go s 0

(* {2 The fuzz loop} *)

let fuzz ?(suite = default_suite) ?faults ?max_ops ?(progress = fun _ -> ())
    ~mode ~seed ~count scenario =
  let roster = Dpm.designers (scenario.Scenario.sc_build ~mode) in
  let root = Rng.create seed in
  let rec go i =
    if i > count then { fz_schedules = count; fz_violation = None }
    else begin
      let rng = Rng.split root in
      let s = gen_schedule ~rng ~roster ?faults () in
      let events = run_schedule ~mode ?max_ops scenario s in
      let results = Prop.check (suite s) events in
      match first_fail results with
      | None ->
        progress i;
        go (i + 1)
      | Some r ->
        let prop = r.Prop.c_prop in
        let min_s, steps = shrink ~suite ?max_ops ~mode ~scenario ~prop s in
        let min_events = run_schedule ~mode ?max_ops scenario min_s in
        let min_results = Prop.check (suite min_s) min_events in
        let reason, from_seq, to_seq =
          match
            List.find_opt (fun r -> r.Prop.c_prop = prop) min_results
          with
          | Some { Prop.c_verdict = Prop.Fail f; _ } ->
            (f.Prop.f_reason, f.Prop.f_from_seq, f.Prop.f_to_seq)
          | _ -> (
            (* defensive: shrink accepted only reproducing candidates *)
            match r.Prop.c_verdict with
            | Prop.Fail f -> (f.Prop.f_reason, f.Prop.f_from_seq, f.Prop.f_to_seq)
            | _ -> ("", 0, 0))
        in
        {
          fz_schedules = i;
          fz_violation =
            Some
              {
                v_prop = prop;
                v_reason = reason;
                v_from_seq = from_seq;
                v_to_seq = to_seq;
                v_original = s;
                v_schedule = min_s;
                v_shrink_steps = steps;
                v_events = min_events;
              };
        }
    end
  in
  go 1

(* {2 Artifacts} *)

let schedule_json s =
  Json.Obj
    [
      ("seed", Json.Num (float_of_int s.fs_seed));
      ("latency", Json.Num (float_of_int s.fs_latency));
      ("duration", Json.Str (Model.duration_to_string s.fs_duration));
      ( "faults",
        Json.Obj
          [
            ("drop", Json.Num s.fs_faults.Fault.p_drop);
            ("dup", Json.Num s.fs_faults.Fault.p_dup);
            ("jitter", Json.Num (float_of_int s.fs_faults.Fault.p_jitter));
            ( "crashes",
              Json.Str (Fault.crashes_to_string s.fs_faults.Fault.p_crashes) );
          ] );
    ]

let write_artifact ~prefix ~scenario ~mode v =
  let trace_path = prefix ^ ".trace.jsonl" in
  let meta_path = prefix ^ ".json" in
  let oc = open_out trace_path in
  List.iter
    (fun ev ->
      output_string oc (Codec.to_line ev);
      output_char oc '\n')
    v.v_events;
  close_out oc;
  let s = v.v_schedule in
  let repro =
    Printf.sprintf
      "teamsim run %s --mode %s --seed %d --latency %d --duration-model %s \
       --drop %g --dup %g --jitter %d%s --trace %s"
      scenario (Dpm.mode_to_string mode) s.fs_seed s.fs_latency
      (Model.duration_to_string s.fs_duration)
      s.fs_faults.Fault.p_drop s.fs_faults.Fault.p_dup
      s.fs_faults.Fault.p_jitter
      (match s.fs_faults.Fault.p_crashes with
      | [] -> ""
      | cs -> Printf.sprintf " --crash-plan '%s'" (Fault.crashes_to_string cs))
      trace_path
  in
  let meta =
    Json.Obj
      [
        ("scenario", Json.Str scenario);
        ("mode", Json.Str (Dpm.mode_to_string mode));
        ("property", Json.Str v.v_prop);
        ("reason", Json.Str v.v_reason);
        ( "witness",
          Json.Obj
            [
              ("from_seq", Json.Num (float_of_int v.v_from_seq));
              ("to_seq", Json.Num (float_of_int v.v_to_seq));
            ] );
        ("schedule", schedule_json v.v_schedule);
        ("original_schedule", schedule_json v.v_original);
        ("shrink_steps", Json.Num (float_of_int v.v_shrink_steps));
        ("events", Json.Num (float_of_int (List.length v.v_events)));
        ("trace", Json.Str trace_path);
        ("repro", Json.Str repro);
      ]
  in
  let oc = open_out meta_path in
  output_string oc (Json.to_string meta);
  output_char oc '\n';
  close_out oc;
  [ trace_path; meta_path ]
