(** The standard temporal-property suite for TeamSim traces — the four
    collaboration guarantees the roadmap names, expressed over the
    discrete-event engine's event stream:

    - every pushed violation is eventually delivered to its owner,
      resolved, or excusably lost (dropped by the fault injector, or the
      owner was down for the delivery window);
    - no live designer starves: the gap between a designer's consecutive
      turns is bounded by a small multiple of the roster size;
    - a crashed designer always recovers: the restart fires when it is
      due, and the restarted designer rejoins the turn rotation;
    - the fault injector is honest: a notification it dropped is never
      also delivered.

    Each property is engineered to hold on {e every} fault-free or
    faulty run of the engine — a failure indicates a real scheduling or
    bookkeeping bug, not an artefact of aggressive fault plans — which is
    what makes the suite usable as a fuzzing oracle ({!Fuzz}). *)

module Fault = Adpm_fault.Fault

val notified_or_resolved : horizon:int -> Prop.t
(** [horizon] is the worst-case teammate transit time
    ({!Adpm_sim.Model.max_delivery_delay}); obligations whose delivery
    window extends past the end of the run, or whose recipient was
    crashed during it, are excused. Vacuous on lockstep traces (no
    virtual-time events). *)

val no_starvation : ?slack:int -> unit -> Prop.t
(** Bound: [2 * roster + slack] other-designer turns between two turns
    of the same live designer (the engine's round-shuffle worst case is
    [2 * (roster - 1)]). [slack] defaults to [4]. *)

val crash_rejoins : ?crashes:Fault.crash list -> ?slack:int -> unit -> Prop.t
(** With the fault [crashes] plan known, additionally checks each
    restart fires when due (crash time + recovery); without it, only the
    rejoin half (a restarted designer takes a turn within
    [2 * roster + slack] other turns) is enforceable. *)

val no_deliver_after_drop : Prop.t

val suite : ?horizon:int -> ?crashes:Fault.crash list -> unit -> Prop.t list
(** All four. [horizon] defaults to a conservative [64] ticks; pass the
    run's actual [latency + jitter] for a tight check. *)
