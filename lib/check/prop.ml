open Adpm_trace

type fail = { f_reason : string; f_from_seq : int; f_to_seq : int }

type verdict = Pass | Fail of fail | Truncated of { dropped : int }

let verdict_to_string = function
  | Pass -> "pass"
  | Fail f ->
    Printf.sprintf "FAIL: %s [seq %d..%d]" f.f_reason f.f_from_seq f.f_to_seq
  | Truncated { dropped } ->
    Printf.sprintf "truncated (%d events dropped)" dropped

(* {2 Ambient facts} *)

type facts = {
  fx_completions : (int, int) Hashtbl.t;  (* op index -> completion time *)
  fx_actors : (int, string) Hashtbl.t;  (* op index -> executing designer *)
  fx_crashes : (string, (int * int option) list) Hashtbl.t;
      (* designer -> crash windows, newest first; [None] = still down *)
  fx_roster : (string, unit) Hashtbl.t;
  mutable fx_makespan : int;
  mutable fx_ops : int;
  mutable fx_last_seq : int;
}

let fresh_facts () =
  {
    fx_completions = Hashtbl.create 64;
    fx_actors = Hashtbl.create 64;
    fx_crashes = Hashtbl.create 8;
    fx_roster = Hashtbl.create 8;
    fx_makespan = 0;
    fx_ops = 0;
    fx_last_seq = 0;
  }

let makespan f = f.fx_makespan
let completion_of f idx = Hashtbl.find_opt f.fx_completions idx
let actor_of f idx = Hashtbl.find_opt f.fx_actors idx
let roster_size f = Hashtbl.length f.fx_roster
let op_count f = f.fx_ops

let crashed_during f designer t1 t2 =
  match Hashtbl.find_opt f.fx_crashes designer with
  | None -> false
  | Some windows ->
    List.exists
      (fun (c, r) ->
        match r with Some r -> c <= t2 && r >= t1 | None -> c <= t2)
      windows

let observe f (ev : Event.stamped) =
  f.fx_last_seq <- ev.seq;
  let time at = if at > f.fx_makespan then f.fx_makespan <- at in
  let seen d = Hashtbl.replace f.fx_roster d () in
  match ev.event with
  | Event.Op_completed { index; at } ->
    Hashtbl.replace f.fx_completions index at;
    f.fx_ops <- f.fx_ops + 1;
    time at
  | Event.Op_executed { index; designer; _ } ->
    Hashtbl.replace f.fx_actors index designer;
    seen designer
  | Event.Turn_started { designer; at } ->
    seen designer;
    time at
  | Event.Designer_crashed { designer; at } ->
    seen designer;
    time at;
    let windows =
      match Hashtbl.find_opt f.fx_crashes designer with
      | None -> []
      | Some ws -> ws
    in
    Hashtbl.replace f.fx_crashes designer ((at, None) :: windows)
  | Event.Designer_restarted { designer; at } ->
    time at;
    (* close the newest still-open window: real engine traces never nest
       crashes of one designer, but adversarial traces can, and a restart
       must not be discarded just because the newest window is closed *)
    let rec close = function
      | [] -> []
      | (c, None) :: rest -> (c, Some at) :: rest
      | w :: rest -> w :: close rest
    in
    let windows =
      match Hashtbl.find_opt f.fx_crashes designer with
      | Some ws -> close ws
      | None -> []
    in
    Hashtbl.replace f.fx_crashes designer windows
  | Event.Notification_delivered { delivered_at; _ } -> time delivered_at
  | Event.Notification_dropped { at; _ }
  | Event.Notification_duplicated { at; _ } ->
    time at
  | _ -> ()

(* {2 Properties} *)

type instance = {
  i_step : facts -> Event.stamped -> fail option;
  i_finish : facts -> fail option;
}

type t = { p_name : string; p_doc : string; p_instantiate : unit -> instance }

let never ~name ~doc pred =
  {
    p_name = name;
    p_doc = doc;
    p_instantiate =
      (fun () ->
        {
          i_step =
            (fun _ ev ->
              match pred ev with
              | None -> None
              | Some reason ->
                Some { f_reason = reason; f_from_seq = ev.seq; f_to_seq = ev.seq });
          i_finish = (fun _ -> None);
        });
  }

let eventually ~name ~doc ?(unless = fun _ -> false) pred =
  {
    p_name = name;
    p_doc = doc;
    p_instantiate =
      (fun () ->
        let seen = ref false in
        {
          i_step =
            (fun _ ev ->
              if (not !seen) && pred ev then seen := true;
              None);
          i_finish =
            (fun facts ->
              if !seen || unless facts then None
              else
                Some
                  {
                    f_reason = doc ^ ": never happened";
                    f_from_seq = 0;
                    f_to_seq = facts.fx_last_seq;
                  });
        });
  }

let leads_to ~name ~doc ~trigger ~key ~describe ~discharge
    ?(excuse = fun _ _ -> None) ?(at_end = fun _ _ -> false) () =
  {
    p_name = name;
    p_doc = doc;
    p_instantiate =
      (fun () ->
        (* key -> (obligation, seq of the trigger) *)
        let pending = Hashtbl.create 16 in
        let close pred =
          let doomed =
            Hashtbl.fold
              (fun k (ob, _) acc -> if pred ob then k :: acc else acc)
              pending []
          in
          List.iter (Hashtbl.remove pending) doomed
        in
        {
          i_step =
            (fun facts ev ->
              (* resolve before opening: an event may discharge old
                 obligations and trigger new ones *)
              (match discharge facts ev with Some p -> close p | None -> ());
              (match excuse facts ev with Some p -> close p | None -> ());
              List.iter
                (fun ob ->
                  let k = key ob in
                  if not (Hashtbl.mem pending k) then
                    Hashtbl.replace pending k (ob, ev.seq))
                (trigger facts ev);
              None);
          i_finish =
            (fun facts ->
              Hashtbl.fold
                (fun _ (ob, seq) acc ->
                  match acc with
                  | Some _ -> acc
                  | None ->
                    if at_end facts ob then None
                    else
                      Some
                        {
                          f_reason = describe ob;
                          f_from_seq = seq;
                          f_to_seq = facts.fx_last_seq;
                        })
                pending None);
        });
  }

let after_never ~name ~doc ~mark ~bad ~describe =
  {
    p_name = name;
    p_doc = doc;
    p_instantiate =
      (fun () ->
        let marked : (string, int) Hashtbl.t = Hashtbl.create 16 in
        {
          i_step =
            (fun _ ev ->
              let offence =
                List.fold_left
                  (fun acc k ->
                    match acc with
                    | Some _ -> acc
                    | None -> (
                      match Hashtbl.find_opt marked k with
                      | Some mark_seq ->
                        Some
                          {
                            f_reason = describe k;
                            f_from_seq = mark_seq;
                            f_to_seq = ev.seq;
                          }
                      | None -> None))
                  None (bad ev)
              in
              List.iter (fun k -> Hashtbl.replace marked k ev.seq) (mark ev);
              offence);
          i_finish = (fun _ -> None);
        });
  }

let bounded_count ~name ~doc ~arm ~tick ~disarm ~bound ~describe =
  {
    p_name = name;
    p_doc = doc;
    p_instantiate =
      (fun () ->
        (* key -> (count, seq of the arming event) *)
        let armed : (string, int * int) Hashtbl.t = Hashtbl.create 8 in
        {
          i_step =
            (fun facts ev ->
              (match disarm facts ev with
              | Some p ->
                let doomed =
                  Hashtbl.fold
                    (fun k _ acc -> if p k then k :: acc else acc)
                    armed []
                in
                List.iter (Hashtbl.remove armed) doomed
              | None -> ());
              let overflow =
                match tick facts ev with
                | None -> None
                | Some p ->
                  let limit = bound facts in
                  Hashtbl.fold
                    (fun k (count, seq) acc ->
                      if not (p k) then acc
                      else begin
                        let count = count + 1 in
                        Hashtbl.replace armed k (count, seq);
                        match acc with
                        | Some _ -> acc
                        | None ->
                          if count > limit then
                            Some
                              {
                                f_reason = describe k count;
                                f_from_seq = seq;
                                f_to_seq = ev.seq;
                              }
                          else None
                      end)
                    armed None
              in
              List.iter
                (fun k -> Hashtbl.replace armed k (0, ev.seq))
                (arm facts ev);
              overflow);
          i_finish = (fun _ -> None);
        });
  }

let conj ~name ~doc props =
  {
    p_name = name;
    p_doc = doc;
    p_instantiate =
      (fun () ->
        let instances = List.map (fun p -> p.p_instantiate ()) props in
        let first f =
          List.fold_left
            (fun acc i -> match acc with Some _ -> acc | None -> f i)
            None instances
        in
        {
          i_step = (fun facts ev -> first (fun i -> i.i_step facts ev));
          i_finish = (fun facts -> first (fun i -> i.i_finish facts));
        });
  }

(* {2 Checking} *)

type result = { c_prop : string; c_doc : string; c_verdict : verdict }

let truncation ?(dropped = 0) events =
  if dropped > 0 then Some dropped
  else
    let rec gaps expected missing = function
      | [] -> missing
      | (ev : Event.stamped) :: rest ->
        let missing =
          if ev.seq > expected then missing + (ev.seq - expected) else missing
        in
        gaps (ev.seq + 1) missing rest
    in
    match events with
    | [] -> None
    | (first : Event.stamped) :: _ ->
      let missing = gaps first.seq 0 events + first.seq in
      if missing > 0 then Some missing else None

let check ?(dropped = 0) props events =
  match truncation ~dropped events with
  | Some n ->
    List.map
      (fun p ->
        { c_prop = p.p_name; c_doc = p.p_doc; c_verdict = Truncated { dropped = n } })
      props
  | None ->
    let facts = fresh_facts () in
    let live = List.map (fun p -> (p, ref None, p.p_instantiate ())) props in
    List.iter
      (fun ev ->
        observe facts ev;
        List.iter
          (fun (_, verdict, inst) ->
            if !verdict = None then
              match inst.i_step facts ev with
              | Some f -> verdict := Some (Fail f)
              | None -> ())
          live)
      events;
    List.map
      (fun (p, verdict, inst) ->
        let v =
          match !verdict with
          | Some v -> v
          | None -> (
            match inst.i_finish facts with Some f -> Fail f | None -> Pass)
        in
        { c_prop = p.p_name; c_doc = p.p_doc; c_verdict = v })
      live

let failed results =
  List.filter (fun r -> r.c_verdict <> Pass) results

let render results =
  let b = Buffer.create 256 in
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "%-28s %s\n" r.c_prop (verdict_to_string r.c_verdict)))
    results;
  Buffer.contents b
