open Adpm_trace
module Fault = Adpm_fault.Fault

(* P1: a pushed violation reaches its owner, is resolved, or is
   excusably lost. Obligations are opened per (recipient, op, cid) at
   [Notification_pushed] and closed by a matching delivery, by the
   constraint leaving the violated state, or by the fault injector
   admitting the drop. *)

type p1_ob = { o_recipient : string; o_op : int; o_cid : int }

let notified_or_resolved ~horizon =
  Prop.leads_to ~name:"notified-or-resolved"
    ~doc:"every pushed violation is delivered to its owner or resolved"
    ~trigger:(fun _ (ev : Event.stamped) ->
      match ev.event with
      | Event.Notification_pushed { recipient; op_index; violations; _ }
        when violations <> [] ->
        List.map
          (fun cid -> { o_recipient = recipient; o_op = op_index; o_cid = cid })
          violations
      | _ -> [])
    ~key:(fun ob -> Printf.sprintf "%s#%d#%d" ob.o_recipient ob.o_op ob.o_cid)
    ~describe:(fun ob ->
      Printf.sprintf
        "violation of constraint %d (op %d) never delivered to %s nor resolved"
        ob.o_cid ob.o_op ob.o_recipient)
    ~discharge:(fun _ (ev : Event.stamped) ->
      match ev.event with
      | Event.Notification_delivered { recipient; op_index; _ } ->
        Some (fun ob -> ob.o_recipient = recipient && ob.o_op = op_index)
      | Event.Constraint_status_changed
          { cid; new_status = Event.Satisfied | Event.Consistent; _ } ->
        Some (fun ob -> ob.o_cid = cid)
      | _ -> None)
    ~excuse:(fun _ (ev : Event.stamped) ->
      match ev.event with
      | Event.Notification_dropped { recipient; op_index; _ } ->
        Some (fun ob -> ob.o_recipient = recipient && ob.o_op = op_index)
      | _ -> None)
    ~at_end:(fun facts ob ->
      (* lockstep traces carry no virtual-time delivery events at all *)
      Prop.op_count facts = 0
      ||
      match Prop.completion_of facts ob.o_op with
      | None -> true (* op never completed: the run halted mid-operation *)
      | Some sent ->
        (* still in flight when the run halted (pending deliveries are
           discarded at halt, so [>=] rather than [>]) *)
        sent + horizon >= Prop.makespan facts
        (* deliveries to a crashed designer are silently lost *)
        || Prop.crashed_during facts ob.o_recipient sent (sent + horizon)
        (* the actor's own feedback is local, never a teammate delivery *)
        || Prop.actor_of facts ob.o_op = Some ob.o_recipient)
    ()

(* P2: no live designer starves. The engine shuffles a full round of
   turns, so between two consecutive turns of a live designer at most
   2*(roster-1) other turns can occur (last slot of one round, first of
   the next). Crashed designers are disarmed — they are down, not
   starved — and re-arm at their first turn after restart. *)

let starvation_bound slack facts = (2 * Prop.roster_size facts) + slack

let no_starvation ?(slack = 4) () =
  Prop.bounded_count ~name:"no-starvation"
    ~doc:"bounded gap between consecutive turns of a live designer"
    ~arm:(fun _ (ev : Event.stamped) ->
      match ev.event with
      | Event.Turn_started { designer; _ } -> [ designer ]
      | _ -> [])
    ~tick:(fun _ (ev : Event.stamped) ->
      match ev.event with
      | Event.Turn_started { designer; _ } -> Some (fun k -> k <> designer)
      | _ -> None)
    ~disarm:(fun _ (ev : Event.stamped) ->
      match ev.event with
      | Event.Designer_crashed { designer; _ } -> Some (fun k -> k = designer)
      | _ -> None)
    ~bound:(starvation_bound slack)
    ~describe:(fun k count ->
      Printf.sprintf "designer %s starved: %d other turns since their last" k
        count)

(* P3: crashed designers recover. Two halves under one name:
   (a) the scheduled restart fires when due — checkable only when the
       crash plan is known (the fuzzer knows it; a bare trace does not);
   (b) the restarted designer rejoins the rotation within a bounded
       number of other designers' turns. *)

type p3_ob = { c_designer : string; c_at : int }

let restart_fires crashes =
  Prop.leads_to ~name:"restart-fires"
    ~doc:"a scheduled restart fires when due"
    ~trigger:(fun _ (ev : Event.stamped) ->
      match ev.event with
      | Event.Designer_crashed { designer; at } ->
        [ { c_designer = designer; c_at = at } ]
      | _ -> [])
    ~key:(fun ob -> Printf.sprintf "%s@%d" ob.c_designer ob.c_at)
    ~describe:(fun ob ->
      Printf.sprintf "designer %s crashed at %d and never restarted"
        ob.c_designer ob.c_at)
    ~discharge:(fun _ (ev : Event.stamped) ->
      match ev.event with
      | Event.Designer_restarted { designer; _ } ->
        Some (fun ob -> ob.c_designer = designer)
      | _ -> None)
    ~at_end:(fun facts ob ->
      match
        List.find_opt
          (fun c ->
            c.Fault.cr_designer = ob.c_designer && c.Fault.cr_at = ob.c_at)
          crashes
      with
      | None -> true (* not in the known plan: cannot compute the deadline *)
      | Some c ->
        (* the restart was due at [cr_at + cr_recover]; a halt at the
           same instant may legitimately discard it, hence [>=] *)
        c.Fault.cr_at + c.Fault.cr_recover >= Prop.makespan facts)
    ()

let rejoins_rotation slack =
  Prop.bounded_count ~name:"rejoins-rotation"
    ~doc:"a restarted designer takes a turn again"
    ~arm:(fun _ (ev : Event.stamped) ->
      match ev.event with
      | Event.Designer_restarted { designer; _ } -> [ designer ]
      | _ -> [])
    ~tick:(fun _ (ev : Event.stamped) ->
      match ev.event with
      | Event.Turn_started { designer; _ } -> Some (fun k -> k <> designer)
      | _ -> None)
    ~disarm:(fun _ (ev : Event.stamped) ->
      match ev.event with
      | Event.Turn_started { designer; _ } | Event.Designer_crashed { designer; _ }
        ->
        Some (fun k -> k = designer)
      | _ -> None)
    ~bound:(starvation_bound slack)
    ~describe:(fun k count ->
      Printf.sprintf
        "designer %s restarted but missed %d other turns without acting" k
        count)

let crash_rejoins ?(crashes = []) ?(slack = 4) () =
  Prop.conj ~name:"crash-rejoins"
    ~doc:"a crashed designer restarts on schedule and rejoins the rotation"
    [ restart_fires crashes; rejoins_rotation slack ]

(* P4: drop means drop. One notification per (recipient, op): once the
   injector reports it dropped, a later delivery of the same pair is a
   double-accounting bug. *)

let no_deliver_after_drop =
  Prop.after_never ~name:"no-deliver-after-drop"
    ~doc:"a dropped notification is never also delivered"
    ~mark:(fun (ev : Event.stamped) ->
      match ev.event with
      | Event.Notification_dropped { recipient; op_index; _ } ->
        [ Printf.sprintf "%s#%d" recipient op_index ]
      | _ -> [])
    ~bad:(fun (ev : Event.stamped) ->
      match ev.event with
      | Event.Notification_delivered { recipient; op_index; _ } ->
        [ Printf.sprintf "%s#%d" recipient op_index ]
      | _ -> [])
    ~describe:(fun k ->
      Printf.sprintf "notification %s was dropped yet later delivered" k)

let suite ?(horizon = 64) ?(crashes = []) () =
  [
    notified_or_resolved ~horizon;
    no_starvation ();
    crash_rejoins ~crashes ();
    no_deliver_after_drop;
  ]
