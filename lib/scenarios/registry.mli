(** The scenario registry: one resolution path for every scenario
    reference in the system.

    Every consumer — the CLI's run/sweep/fuzz/interactive commands, trace
    replay, and the daemon — names scenarios with a string and resolves it
    here. Three forms are understood:

    - a plain name ([simple], [lna], [sensor], [receiver]) — one of the
      {!builtin} scenarios, each elaborated from its embedded DDDL source;
    - [gen:<spec>] — a {!Generated} scenario, e.g.
      [gen:n=4,k=3,seed=7,topology=star]. The spec is the scenario's
      identity: a trace recorded under it rebuilds the bit-identical
      network on any process;
    - [file:<path>] — a DDDL file loaded with
      {!Adpm_dddl.Elaborate.load_string}; the resolved scenario keeps the
      [file:<path>] reference as its name so recorded traces resolve back
      through the same file.

    Resolution failures are [Invalid_argument] with a message identifying
    the failure class: unknown plain name, malformed [gen:] spec, or
    unreadable/unelaboratable [file:] target. *)

open Adpm_teamsim

val builtin : Scenario.t list
(** The paper's four scenarios shipped with the binary. *)

val resolve : string -> Scenario.t
(** @raise Invalid_argument on any resolution failure (descriptive,
    distinct per failure class; never any other exception). *)

val resolve_result : string -> (Scenario.t, string) result
(** {!resolve} with the [Invalid_argument] folded into [Error]. *)
