(** The MEMS-based pressure sensing system design case (Section 3.2).

    A capacitive pressure sensor and a mixed-signal interface circuit are
    designed concurrently, with top-level constraints on sensing resolution,
    estimated yield, and achievable pressure range. The network holds 26
    properties and 21 constraints, most of them linear and monotonic —
    matching the statistics the paper reports for this case. *)

open Adpm_core
open Adpm_teamsim

val build :
  ?req_resolution:float ->
  ?req_yield:float ->
  ?req_range:float ->
  unit ->
  mode:Dpm.mode ->
  Dpm.t
(** Defaults: resolution 2.3 kPa, yield 78 %, range 180 kPa. *)

val models : (string * Adpm_expr.Expr.t) list
(** Tool models of the derived performance properties (band centres). *)

val scenario : Scenario.t

val source : string
(** The scenario in DDDL — the canonical text artifact that [scenario] is
    elaborated from. *)
