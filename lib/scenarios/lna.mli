(** The Section 2.4 walkthrough: team-based design of a MEMS-based wireless
    receiver front-end (LNA + mixer and a MEMS filtering device).

    The constraint constants are chosen so that the published feasible
    windows of Fig. 2 fall out of propagation: once the device engineer sets
    the beam length to 13 um, the frequency-inductor window becomes
    (0.174255, 0.5) uH and the differential-pair-width window becomes
    (2.5, 3.698225) um. The differential pair width appears in exactly three
    constraints (power, input impedance, gain), giving beta = 3 as in
    Fig. 3; after the gain violation and the leader's impedance tightening
    to 40 Ohm it is connected to two violations (alpha = 2, Fig. 4), and a
    single re-sizing to 3.5 um clears both. *)

open Adpm_core
open Adpm_teamsim

val build : ?adjustable_requirements:bool -> unit -> mode:Dpm.mode -> Dpm.t
(** [adjustable_requirements] (default [false]) makes the requirement
    properties outputs of the leader's top-level problem so that scripted
    walkthroughs can tighten them mid-design; simulations keep them fixed
    inputs. When requirements are fixed, [min_zin] starts at its tightened
    value of 40 Ohm. *)

val scenario : Scenario.t

(** Property names used by the walkthrough script and tests. *)

val diff_pair_w : string
val freq_ind : string
val beam_length : string
val min_gain : string
val max_power : string
val min_zin : string

val source : string
(** The scenario in DDDL — the canonical text artifact that [scenario] is
    elaborated from. *)
