open Adpm_expr
open Adpm_csp
open Adpm_core
open Adpm_teamsim

(* Analog subsystem: differential pair width W (um), load inductor L (uH),
   bias current Ib (mA), load resistance Rl (kOhm), mixer transconductance
   (mS) and bias (mA); performance parameters tied to non-linear models by
   bands. MEMS filter: clamped-clamped beam dimensions, electrode gap,
   resonator Q, drive voltage; centre frequency ~ Wb sqrt(Tb) / Lb^2. *)

let build ?(req_gain = 30.) () ~mode =
  let net = Network.create () in
  let open Builder in
  (* analog free variables *)
  continuous net "diff-pair-w" 2.5 10.;
  continuous net "freq-ind" 0.05 0.5;
  continuous net "bias-current" 1. 10.;
  continuous net "load-res" 0.1 2.;
  continuous net "mixer-gm" 1. 20.;
  continuous net "mixer-bias" 0.5 5.;
  (* analog performance parameters *)
  continuous net "lna-gain" 1. 300.;
  continuous net "lna-power" 10. 400.;
  continuous net "lna-zin" 10. 200.;
  continuous net "mixer-gain" 0.5 40.;
  continuous net "mixer-power" 1. 100.;
  (* filter free variables *)
  continuous net "beam-length" 5. 50.;
  continuous net "beam-width" 0.5 5.;
  continuous net "beam-thickness" 0.5 4.;
  continuous net "gap" 0.1 2.;
  continuous net "resonator-q" 100. 10000.;
  continuous net "drive-v" 1. 50.;
  (* filter performance parameters *)
  continuous net "center-freq" 10. 500.;
  continuous net "filter-bw" 0.05 5.;
  continuous net "insertion-att" 1. 10.;
  continuous net "filter-power" 0.01 10.;
  continuous net "freq-precision" 0.05 5.;
  (* requirements *)
  continuous net "req-gain" 10. 4000.;
  continuous net "req-power" 50. 400.;
  continuous net "req-zin-min" 10. 100.;
  continuous net "req-zin-max" 50. 200.;
  continuous net "req-bw-min" 0.1 2.;
  continuous net "req-bw-max" 0.5 3.;
  continuous net "req-freq" 50. 200.;
  continuous net "req-freq-tol" 1. 20.;
  continuous net "req-prec-max" 0.5 5.;
  continuous net "req-att-max" 1.1 5.;
  continuous net "req-ind-max" 0.1 1.;
  continuous net "req-drive-max" 5. 50.;
  continuous net "req-mixer-gain" 1. 20.;
  let v = Expr.var and c = Expr.const in
  (* analog model bands (non-linear) *)
  let gm_model = Expr.Sqrt Expr.(v "bias-current" * v "diff-pair-w") in
  let gain_model = Expr.(scale 10. gm_model * v "load-res") in
  let a_gain_lo = ge net "LNAGain-lo" (v "lna-gain") Expr.(scale 0.85 gain_model) in
  let a_gain_hi = le net "LNAGain-hi" (v "lna-gain") Expr.(scale 1.15 gain_model) in
  let power_model =
    Expr.(scale 30. (v "bias-current") + scale 5. (v "diff-pair-w"))
  in
  let a_power_lo = ge net "LNAPower-lo" (v "lna-power") Expr.(scale 0.9 power_model) in
  let zin_model =
    Expr.(scale 500. (v "freq-ind") / Expr.Sqrt (v "diff-pair-w"))
  in
  let a_zin_lo = ge net "LNAZin-lo" (v "lna-zin") Expr.(scale 0.9 zin_model) in
  let a_zin_hi = le net "LNAZin-hi" (v "lna-zin") Expr.(scale 1.1 zin_model) in
  let a_mgain_lo =
    ge net "MixerGain-lo" (v "mixer-gain") Expr.(scale 1.275 (v "mixer-gm"))
  in
  let a_mgain_hi =
    le net "MixerGain-hi" (v "mixer-gain") Expr.(scale 1.725 (v "mixer-gm"))
  in
  let a_mpower_lo =
    ge net "MixerPower-lo" (v "mixer-power") Expr.(scale 10.8 (v "mixer-bias"))
  in
  (* filter model bands (non-linear) *)
  let cf_model =
    Expr.(scale 5650. (v "beam-width") * Expr.Sqrt (v "beam-thickness")
          / Expr.Pow (v "beam-length", 2))
  in
  let f_cf_lo = ge net "CenterFreq-lo" (v "center-freq") Expr.(scale 0.92 cf_model) in
  let f_cf_hi = le net "CenterFreq-hi" (v "center-freq") Expr.(scale 1.08 cf_model) in
  let bw_model = Expr.(scale 20. (v "center-freq") / v "resonator-q") in
  let f_bw_lo = ge net "FilterBW-lo" (v "filter-bw") Expr.(scale 0.85 bw_model) in
  let f_bw_hi = le net "FilterBW-hi" (v "filter-bw") Expr.(scale 1.15 bw_model) in
  let att_model =
    Expr.(c 1.
          + scale 300. (Expr.Pow (v "gap", 2))
            / (v "beam-width" * v "beam-thickness")
            / Expr.Sqrt (v "resonator-q"))
  in
  let f_att_lo = ge net "FilterLoss-lo" (v "insertion-att") Expr.(scale 0.85 att_model) in
  let f_att_hi = le net "FilterLoss-hi" (v "insertion-att") Expr.(scale 1.15 att_model) in
  let fpow_model = Expr.(scale 0.02 (Expr.Pow (v "drive-v", 2)) / v "gap") in
  let f_fpow_lo =
    ge net "FilterPower-lo" (v "filter-power") Expr.(scale 0.8 fpow_model)
  in
  let prec_model = Expr.(scale 50. (v "gap") / v "beam-length") in
  let f_prec_lo =
    ge net "FreqPrec-lo" (v "freq-precision") Expr.(scale 0.8 prec_model)
  in
  let f_prec_hi =
    le net "FreqPrec-hi" (v "freq-precision") Expr.(scale 1.2 prec_model)
  in
  (* system constraints *)
  let s_gain =
    ge net "TotalGain" Expr.(v "lna-gain" * v "mixer-gain")
      Expr.(v "req-gain" * v "insertion-att")
  in
  let s_power =
    le net "TotalPower"
      Expr.(v "lna-power" + v "mixer-power" + v "filter-power")
      (v "req-power")
  in
  let s_zin_lo = ge net "ZinWindow-lo" (v "lna-zin") (v "req-zin-min") in
  let s_zin_hi = le net "ZinWindow-hi" (v "lna-zin") (v "req-zin-max") in
  let s_freq_lo =
    ge net "ChannelFreq-lo" (v "center-freq") Expr.(v "req-freq" - v "req-freq-tol")
  in
  let s_freq_hi =
    le net "ChannelFreq-hi" (v "center-freq") Expr.(v "req-freq" + v "req-freq-tol")
  in
  let s_bw_lo = ge net "ChannelBW-lo" (v "filter-bw") (v "req-bw-min") in
  let s_bw_hi = le net "ChannelBW-hi" (v "filter-bw") (v "req-bw-max") in
  let s_prec = le net "FreqPrecision" (v "freq-precision") (v "req-prec-max") in
  let s_att = le net "InsertionLoss" (v "insertion-att") (v "req-att-max") in
  let s_ind = le net "MaxFreqInd" (v "freq-ind") (v "req-ind-max") in
  let s_drive = le net "MaxDrive" (v "drive-v") (v "req-drive-max") in
  let s_mgain = ge net "MixerGainReq" (v "mixer-gain") (v "req-mixer-gain") in
  let objects =
    [
      Design_object.make ~name:"LNA+Mixer"
        ~properties:
          [
            "diff-pair-w"; "freq-ind"; "bias-current"; "load-res"; "mixer-gm";
            "mixer-bias"; "lna-gain"; "lna-power"; "lna-zin"; "mixer-gain";
            "mixer-power";
          ]
        ();
      Design_object.make ~name:"MEMS-Filter"
        ~properties:
          [
            "beam-length"; "beam-width"; "beam-thickness"; "gap";
            "resonator-q"; "drive-v"; "center-freq"; "filter-bw";
            "insertion-att"; "filter-power"; "freq-precision";
          ]
        ();
    ]
  in
  assemble ~mode ~net ~objects ~top_name:"receiver-front-end" ~leader:"leader"
    ~requirements:
      [
        ("req-gain", req_gain);
        ("req-power", 190.);
        ("req-zin-min", 45.);
        ("req-zin-max", 75.);
        ("req-bw-min", 0.85);
        ("req-bw-max", 1.15);
        ("req-freq", 100.);
        ("req-freq-tol", 6.);
        ("req-prec-max", 2.2);
        ("req-att-max", 1.7);
        ("req-ind-max", 0.5);
        ("req-drive-max", 25.);
        ("req-mixer-gain", 5.);
      ]
    ~system_constraints:
      [
        s_gain; s_power; s_zin_lo; s_zin_hi; s_freq_lo; s_freq_hi; s_bw_lo;
        s_bw_hi; s_prec; s_att; s_ind; s_drive; s_mgain;
      ]
    ~subproblems:
      [
        {
          ps_name = "analog";
          ps_owner = "circuit";
          ps_inputs = [ "req-gain"; "req-power"; "req-zin-min"; "req-zin-max" ];
          ps_outputs =
            [
              "diff-pair-w"; "freq-ind"; "bias-current"; "load-res";
              "mixer-gm"; "mixer-bias"; "lna-gain"; "lna-power"; "lna-zin";
              "mixer-gain"; "mixer-power";
            ];
          ps_constraints =
            [
              a_gain_lo; a_gain_hi; a_power_lo; a_zin_lo; a_zin_hi;
              a_mgain_lo; a_mgain_hi; a_mpower_lo;
            ];
          ps_object = Some "LNA+Mixer";
        };
        {
          ps_name = "mems-filter";
          ps_owner = "device";
          ps_inputs = [ "req-freq"; "req-freq-tol"; "req-bw-min"; "req-bw-max" ];
          ps_outputs =
            [
              "beam-length"; "beam-width"; "beam-thickness"; "gap";
              "resonator-q"; "drive-v"; "center-freq"; "filter-bw";
              "insertion-att"; "filter-power"; "freq-precision";
            ];
          ps_constraints =
            [
              f_cf_lo; f_cf_hi; f_bw_lo; f_bw_hi; f_att_lo; f_att_hi;
              f_fpow_lo; f_prec_lo; f_prec_hi;
            ];
          ps_object = Some "MEMS-Filter";
        };
      ]

(* model centres evaluated by the synthesis tools (geometric mean of the
   multiplicative band bounds where the bands are two-sided) *)
let models =
  let v = Expr.var and c = Expr.const in
  let gm_model = Expr.Sqrt Expr.(v "bias-current" * v "diff-pair-w") in
  [
    ("lna-gain", Expr.(scale 10. gm_model * v "load-res"));
    ( "lna-power",
      Expr.(scale 30. (v "bias-current") + scale 5. (v "diff-pair-w")) );
    ( "lna-zin",
      Expr.(scale 500. (v "freq-ind") / Expr.Sqrt (v "diff-pair-w")) );
    ("mixer-gain", Expr.(scale 1.5 (v "mixer-gm")));
    ("mixer-power", Expr.(scale 12. (v "mixer-bias")));
    ( "center-freq",
      Expr.(scale 5650. (v "beam-width") * Expr.Sqrt (v "beam-thickness")
            / Expr.Pow (v "beam-length", 2)) );
    ("filter-bw", Expr.(scale 20. (v "center-freq") / v "resonator-q"));
    ( "insertion-att",
      Expr.(c 1.
            + scale 300. (Expr.Pow (v "gap", 2))
              / (v "beam-width" * v "beam-thickness")
              / Expr.Sqrt (v "resonator-q")) );
    ("filter-power", Expr.(scale 0.02 (Expr.Pow (v "drive-v", 2)) / v "gap"));
    ("freq-precision", Expr.(scale 50. (v "gap") / v "beam-length"));
  ]

(* The same network in DDDL. This text is the canonical artifact:
   [scenario] is elaborated from it, and the OCaml [build] above serves as
   the equivalence reference the tests compare against. *)
let source =
  {|
// The MEMS-based wireless receiver front-end (Section 3.2) in DDDL:
// 35 properties, 30 mostly non-linear constraints. The exact twin of the
// OCaml-built Receiver scenario (tests assert identical simulations).
scenario receiver {
  // analog free variables
  property "diff-pair-w"   : real [2.5, 10];
  property "freq-ind"      : real [0.05, 0.5];
  property "bias-current"  : real [1, 10];
  property "load-res"      : real [0.1, 2];
  property "mixer-gm"      : real [1, 20];
  property "mixer-bias"    : real [0.5, 5];
  // analog performance parameters
  property "lna-gain"      : real [1, 300];
  property "lna-power"     : real [10, 400];
  property "lna-zin"       : real [10, 200];
  property "mixer-gain"    : real [0.5, 40];
  property "mixer-power"   : real [1, 100];
  // filter free variables
  property "beam-length"   : real [5, 50];
  property "beam-width"    : real [0.5, 5];
  property "beam-thickness": real [0.5, 4];
  property gap             : real [0.1, 2];
  property "resonator-q"   : real [100, 10000];
  property "drive-v"       : real [1, 50];
  // filter performance parameters
  property "center-freq"   : real [10, 500];
  property "filter-bw"     : real [0.05, 5];
  property "insertion-att" : real [1, 10];
  property "filter-power"  : real [0.01, 10];
  property "freq-precision": real [0.05, 5];
  // requirements
  property "req-gain"      : real [10, 4000];
  property "req-power"     : real [50, 400];
  property "req-zin-min"   : real [10, 100];
  property "req-zin-max"   : real [50, 200];
  property "req-bw-min"    : real [0.1, 2];
  property "req-bw-max"    : real [0.5, 3];
  property "req-freq"      : real [50, 200];
  property "req-freq-tol"  : real [1, 20];
  property "req-prec-max"  : real [0.5, 5];
  property "req-att-max"   : real [1.1, 5];
  property "req-ind-max"   : real [0.1, 1];
  property "req-drive-max" : real [5, 50];
  property "req-mixer-gain": real [1, 20];

  // analog model bands (non-linear)
  constraint "LNAGain-lo" :
    "lna-gain" >= 0.85 * (10 * sqrt("bias-current" * "diff-pair-w") * "load-res");
  constraint "LNAGain-hi" :
    "lna-gain" <= 1.15 * (10 * sqrt("bias-current" * "diff-pair-w") * "load-res");
  constraint "LNAPower-lo" :
    "lna-power" >= 0.9 * (30 * "bias-current" + 5 * "diff-pair-w");
  constraint "LNAZin-lo" :
    "lna-zin" >= 0.9 * (500 * "freq-ind" / sqrt("diff-pair-w"));
  constraint "LNAZin-hi" :
    "lna-zin" <= 1.1 * (500 * "freq-ind" / sqrt("diff-pair-w"));
  constraint "MixerGain-lo" : "mixer-gain" >= 1.275 * "mixer-gm";
  constraint "MixerGain-hi" : "mixer-gain" <= 1.725 * "mixer-gm";
  constraint "MixerPower-lo" : "mixer-power" >= 10.8 * "mixer-bias";

  // filter model bands (non-linear)
  constraint "CenterFreq-lo" :
    "center-freq" >= 0.92 * (5650 * "beam-width" * sqrt("beam-thickness") / "beam-length"^2);
  constraint "CenterFreq-hi" :
    "center-freq" <= 1.08 * (5650 * "beam-width" * sqrt("beam-thickness") / "beam-length"^2);
  constraint "FilterBW-lo" :
    "filter-bw" >= 0.85 * (20 * "center-freq" / "resonator-q");
  constraint "FilterBW-hi" :
    "filter-bw" <= 1.15 * (20 * "center-freq" / "resonator-q");
  constraint "FilterLoss-lo" :
    "insertion-att" >= 0.85 * (1 + 300 * gap^2 / ("beam-width" * "beam-thickness") / sqrt("resonator-q"));
  constraint "FilterLoss-hi" :
    "insertion-att" <= 1.15 * (1 + 300 * gap^2 / ("beam-width" * "beam-thickness") / sqrt("resonator-q"));
  constraint "FilterPower-lo" :
    "filter-power" >= 0.8 * (0.02 * "drive-v"^2 / gap);
  constraint "FreqPrec-lo" :
    "freq-precision" >= 0.8 * (50 * gap / "beam-length");
  constraint "FreqPrec-hi" :
    "freq-precision" <= 1.2 * (50 * gap / "beam-length");

  // system constraints
  constraint TotalGain : "lna-gain" * "mixer-gain" >= "req-gain" * "insertion-att";
  constraint TotalPower :
    "lna-power" + "mixer-power" + "filter-power" <= "req-power";
  constraint "ZinWindow-lo" : "lna-zin" >= "req-zin-min";
  constraint "ZinWindow-hi" : "lna-zin" <= "req-zin-max";
  constraint "ChannelFreq-lo" : "center-freq" >= "req-freq" - "req-freq-tol";
  constraint "ChannelFreq-hi" : "center-freq" <= "req-freq" + "req-freq-tol";
  constraint "ChannelBW-lo" : "filter-bw" >= "req-bw-min";
  constraint "ChannelBW-hi" : "filter-bw" <= "req-bw-max";
  constraint FreqPrecision : "freq-precision" <= "req-prec-max";
  constraint InsertionLoss : "insertion-att" <= "req-att-max";
  constraint MaxFreqInd : "freq-ind" <= "req-ind-max";
  constraint MaxDrive : "drive-v" <= "req-drive-max";
  constraint MixerGainReq : "mixer-gain" >= "req-mixer-gain";

  // the synthesis tools' models (band centres)
  model "lna-gain"       = 10 * sqrt("bias-current" * "diff-pair-w") * "load-res";
  model "lna-power"      = 30 * "bias-current" + 5 * "diff-pair-w";
  model "lna-zin"        = 500 * "freq-ind" / sqrt("diff-pair-w");
  model "mixer-gain"     = 1.5 * "mixer-gm";
  model "mixer-power"    = 12 * "mixer-bias";
  model "center-freq"    = 5650 * "beam-width" * sqrt("beam-thickness") / "beam-length"^2;
  model "filter-bw"      = 20 * "center-freq" / "resonator-q";
  model "insertion-att"  = 1 + 300 * gap^2 / ("beam-width" * "beam-thickness") / sqrt("resonator-q");
  model "filter-power"   = 0.02 * "drive-v"^2 / gap;
  model "freq-precision" = 50 * gap / "beam-length";

  requirement "req-gain" = 30;
  requirement "req-power" = 190;
  requirement "req-zin-min" = 45;
  requirement "req-zin-max" = 75;
  requirement "req-bw-min" = 0.85;
  requirement "req-bw-max" = 1.15;
  requirement "req-freq" = 100;
  requirement "req-freq-tol" = 6;
  requirement "req-prec-max" = 2.2;
  requirement "req-att-max" = 1.7;
  requirement "req-ind-max" = 0.5;
  requirement "req-drive-max" = 25;
  requirement "req-mixer-gain" = 5;

  object "LNA+Mixer" {
    properties: "diff-pair-w", "freq-ind", "bias-current", "load-res",
      "mixer-gm", "mixer-bias", "lna-gain", "lna-power", "lna-zin",
      "mixer-gain", "mixer-power";
  }
  object "MEMS-Filter" {
    properties: "beam-length", "beam-width", "beam-thickness", gap,
      "resonator-q", "drive-v", "center-freq", "filter-bw", "insertion-att",
      "filter-power", "freq-precision";
  }

  problem "receiver-front-end" owner leader {
    inputs: "req-gain", "req-power", "req-zin-min", "req-zin-max",
      "req-bw-min", "req-bw-max", "req-freq", "req-freq-tol", "req-prec-max",
      "req-att-max", "req-ind-max", "req-drive-max", "req-mixer-gain";
    constraints: TotalGain, TotalPower, "ZinWindow-lo", "ZinWindow-hi",
      "ChannelFreq-lo", "ChannelFreq-hi", "ChannelBW-lo", "ChannelBW-hi",
      FreqPrecision, InsertionLoss, MaxFreqInd, MaxDrive, MixerGainReq;
    subproblem analog owner circuit {
      inputs: "req-gain", "req-power", "req-zin-min", "req-zin-max";
      outputs: "diff-pair-w", "freq-ind", "bias-current", "load-res",
        "mixer-gm", "mixer-bias", "lna-gain", "lna-power", "lna-zin",
        "mixer-gain", "mixer-power";
      constraints: "LNAGain-lo", "LNAGain-hi", "LNAPower-lo", "LNAZin-lo",
        "LNAZin-hi", "MixerGain-lo", "MixerGain-hi", "MixerPower-lo";
      object: "LNA+Mixer";
    }
    subproblem "mems-filter" owner device {
      inputs: "req-freq", "req-freq-tol", "req-bw-min", "req-bw-max";
      outputs: "beam-length", "beam-width", "beam-thickness", gap,
        "resonator-q", "drive-v", "center-freq", "filter-bw",
        "insertion-att", "filter-power", "freq-precision";
      constraints: "CenterFreq-lo", "CenterFreq-hi", "FilterBW-lo",
        "FilterBW-hi", "FilterLoss-lo", "FilterLoss-hi", "FilterPower-lo",
        "FreqPrec-lo", "FreqPrec-hi";
      object: "MEMS-Filter";
    }
  }
}
|}

let scenario =
  {
    (Adpm_dddl.Elaborate.load_string source) with
    Scenario.sc_description =
      "MEMS wireless receiver front-end: 35 properties, 30 mostly non-linear constraints";
  }

let gain_sweep = [ 30.; 500.; 1000.; 1500.; 2000.; 3000. ]
