open Adpm_expr
open Adpm_core
open Adpm_teamsim

let build ?(p_max = 19.) ?(g_min = 14.5) () ~mode =
  let net = Adpm_csp.Network.create () in
  let open Builder in
  continuous net "xa1" 0. 10.;
  continuous net "xa2" 0. 10.;
  continuous net "pa" 0. 20.;
  continuous net "ga" 0. 25.;
  continuous net "xb1" 0. 10.;
  continuous net "xb2" 0. 10.;
  continuous net "pb" 0. 20.;
  continuous net "gb" 0. 15.;
  continuous net "p_max" 5. 40.;
  continuous net "g_min" 1. 30.;
  let v = Expr.var and c = Expr.const in
  let pa_model = Expr.(c 4. + scale 0.8 (v "xa1") + scale 0.6 (v "xa2")) in
  let ga_model = Expr.(scale 1.5 (v "xa1") + scale 0.5 (v "xa2")) in
  let pb_model = Expr.(c 2. + scale 0.5 (v "xb1") + scale 0.7 (v "xb2")) in
  let gb_model = Expr.(v "xb1" + scale 0.3 (v "xb2")) in
  (* model bands: the synthesis tool's accuracy tolerance *)
  let a_pow_lo = ge net "A-power-lo" (v "pa") Expr.(pa_model - c 0.5) in
  let a_pow_hi = le net "A-power-hi" (v "pa") Expr.(pa_model + c 0.5) in
  let a_gain_lo = ge net "A-gain-lo" (v "ga") Expr.(ga_model - c 0.4) in
  let a_gain_hi = le net "A-gain-hi" (v "ga") Expr.(ga_model + c 0.4) in
  let b_pow_lo = ge net "B-power-lo" (v "pb") Expr.(pb_model - c 0.5) in
  let b_pow_hi = le net "B-power-hi" (v "pb") Expr.(pb_model + c 0.5) in
  let b_gain_lo = ge net "B-gain-lo" (v "gb") Expr.(gb_model - c 0.3) in
  let b_gain_hi = le net "B-gain-hi" (v "gb") Expr.(gb_model + c 0.3) in
  (* cross-subsystem budgets: the conflicts integration would find late *)
  let s_power = le net "TotalPower" Expr.(v "pa" + v "pb") (v "p_max") in
  let s_gain = ge net "TotalGain" Expr.(v "ga" + v "gb") (v "g_min") in
  let s_balance =
    le net "GainBalance" (v "ga") Expr.(scale 2.5 (v "gb") + c 5.)
  in
  let objects =
    [
      Design_object.make ~name:"SubsystemA"
        ~properties:[ "xa1"; "xa2"; "pa"; "ga" ] ();
      Design_object.make ~name:"SubsystemB"
        ~properties:[ "xb1"; "xb2"; "pb"; "gb" ] ();
    ]
  in
  assemble ~mode ~net ~objects ~top_name:"system" ~leader:"leader"
    ~requirements:[ ("p_max", p_max); ("g_min", g_min) ]
    ~system_constraints:[ s_power; s_gain; s_balance ]
    ~subproblems:
      [
        {
          ps_name = "subsystem-A";
          ps_owner = "alice";
          ps_inputs = [ "p_max"; "g_min" ];
          ps_outputs = [ "xa1"; "xa2"; "pa"; "ga" ];
          ps_constraints = [ a_pow_lo; a_pow_hi; a_gain_lo; a_gain_hi ];
          ps_object = Some "SubsystemA";
        };
        {
          ps_name = "subsystem-B";
          ps_owner = "bob";
          ps_inputs = [ "p_max"; "g_min" ];
          ps_outputs = [ "xb1"; "xb2"; "pb"; "gb" ];
          ps_constraints = [ b_pow_lo; b_pow_hi; b_gain_lo; b_gain_hi ];
          ps_object = Some "SubsystemB";
        };
      ]

(* models the synthesis tools evaluate (band centres) *)
let models =
  let v = Expr.var and c = Expr.const in
  [
    ("pa", Expr.(c 4. + scale 0.8 (v "xa1") + scale 0.6 (v "xa2")));
    ("ga", Expr.(scale 1.5 (v "xa1") + scale 0.5 (v "xa2")));
    ("pb", Expr.(c 2. + scale 0.5 (v "xb1") + scale 0.7 (v "xb2")));
    ("gb", Expr.(v "xb1" + scale 0.3 (v "xb2")));
  ]

(* The same network in DDDL. This text is the canonical artifact:
   [scenario] is elaborated from it, and the OCaml [build] above serves as
   the equivalence reference the tests compare against. *)
let source =
  {|
// The simplified two-subsystem case of Fig. 7, in DDDL.
// Two designers (alice, bob) develop subsystems A and B concurrently;
// the leader owns the system problem with the cross-subsystem budgets.
scenario simple {
  property xa1 : real [0, 10];
  property xa2 : real [0, 10];
  property pa  : real [0, 20];
  property ga  : real [0, 25];
  property xb1 : real [0, 10];
  property xb2 : real [0, 10];
  property pb  : real [0, 20];
  property gb  : real [0, 15];
  property p_max : real [5, 40];
  property g_min : real [1, 30];

  /* model bands: the synthesis tool's accuracy tolerance */
  constraint "A-power-lo" : pa >= 4.0 + 0.8*xa1 + 0.6*xa2 - 0.5;
  constraint "A-power-hi" : pa <= 4.0 + 0.8*xa1 + 0.6*xa2 + 0.5;
  constraint "A-gain-lo"  : ga >= 1.5*xa1 + 0.5*xa2 - 0.4;
  constraint "A-gain-hi"  : ga <= 1.5*xa1 + 0.5*xa2 + 0.4;
  constraint "B-power-lo" : pb >= 2.0 + 0.5*xb1 + 0.7*xb2 - 0.5;
  constraint "B-power-hi" : pb <= 2.0 + 0.5*xb1 + 0.7*xb2 + 0.5;
  constraint "B-gain-lo"  : gb >= xb1 + 0.3*xb2 - 0.3;
  constraint "B-gain-hi"  : gb <= xb1 + 0.3*xb2 + 0.3;

  // cross-subsystem budgets
  constraint TotalPower : pa + pb <= p_max;
  constraint TotalGain : ga + gb >= g_min;
  constraint GainBalance : ga <= 2.5*gb + 5.0;

  model pa = 4.0 + 0.8*xa1 + 0.6*xa2;
  model ga = 1.5*xa1 + 0.5*xa2;
  model pb = 2.0 + 0.5*xb1 + 0.7*xb2;
  model gb = xb1 + 0.3*xb2;

  requirement p_max = 19.0;
  requirement g_min = 14.5;

  object SubsystemA { properties: xa1, xa2, pa, ga; }
  object SubsystemB { properties: xb1, xb2, pb, gb; }

  problem system owner leader {
    inputs: p_max, g_min;
    constraints: TotalPower, TotalGain, GainBalance;
    subproblem "subsystem-A" owner alice {
      inputs: p_max, g_min;
      outputs: xa1, xa2, pa, ga;
      constraints: "A-power-lo", "A-power-hi", "A-gain-lo", "A-gain-hi";
      object: SubsystemA;
    }
    subproblem "subsystem-B" owner bob {
      inputs: p_max, g_min;
      outputs: xb1, xb2, pb, gb;
      constraints: "B-power-lo", "B-power-hi", "B-gain-lo", "B-gain-hi";
      object: SubsystemB;
    }
  }
}
|}

let scenario =
  {
    (Adpm_dddl.Elaborate.load_string source) with
    Scenario.sc_description = "two-subsystem simplified case (Fig. 7)";
  }
