(** The simplified design case of Fig. 7.

    Two subsystems designed concurrently by two designers, each with two
    free design variables and two performance parameters tied to them by
    model bands, plus three cross-subsystem constraints (a power budget
    [pa + pb <= p_max] — the paper's introductory example constraint — a
    gain floor [ga + gb >= g_min], and a gain-balance coupling). Small
    enough that per-operation profiles (violations found, evaluations
    executed) are easy to read. *)

open Adpm_core
open Adpm_teamsim

val build : ?p_max:float -> ?g_min:float -> unit -> mode:Dpm.mode -> Dpm.t
(** Defaults: [p_max = 19.], [g_min = 14.5]. *)

val models : (string * Adpm_expr.Expr.t) list
(** Tool models of the derived performance properties (band centres). *)

val scenario : Scenario.t

val source : string
(** The scenario in DDDL — the canonical text artifact that [scenario] is
    elaborated from. *)
