(** The MEMS-based wireless receiver front-end design case (Section 3.2).

    Mixed-signal circuitry (LNA + mixer) and a MEMS channel-selection filter
    designed concurrently, with constraints on channel bandwidth, system
    gain, input impedance, frequency-selection precision, and power
    consumption. The network holds 35 properties and 30 constraints, most
    of them non-linear — matching the statistics the paper reports, which
    makes this the "harder" of the two cases. *)

open Adpm_core
open Adpm_teamsim

val build : ?req_gain:float -> unit -> mode:Dpm.mode -> Dpm.t
(** [req_gain] is the minimum end-to-end voltage gain (default 30). Fig. 10
    sweeps its tightness. *)

val models : (string * Adpm_expr.Expr.t) list
(** Tool models of the derived performance properties (band centres). *)

val scenario : Scenario.t

val gain_sweep : float list
(** The requirement values used by the Fig. 10 tightness sweep. *)

val source : string
(** The scenario in DDDL — the canonical text artifact that [scenario] is
    elaborated from. *)
