open Adpm_teamsim

let builtin =
  [ Simple.scenario; Lna.scenario; Sensor.scenario; Receiver.scenario ]

let usage = "gen:<spec> (e.g. gen:n=4,k=3) or file:<path>.dddl"

let strip_prefix prefix s =
  let pl = String.length prefix in
  if String.length s >= pl && String.sub s 0 pl = prefix then
    Some (String.sub s pl (String.length s - pl))
  else None

let resolve name =
  match strip_prefix "gen:" name with
  | Some spec -> (
    match Generated.params_of_spec spec with
    | Ok p -> Generated.scenario p
    | Error msg ->
      invalid_arg (Printf.sprintf "malformed gen: spec %S: %s" spec msg))
  | None -> (
    match strip_prefix "file:" name with
    | Some path -> (
      let src =
        match In_channel.with_open_text path In_channel.input_all with
        | src -> src
        | exception Sys_error msg ->
          invalid_arg (Printf.sprintf "cannot read scenario file: %s" msg)
      in
      match Adpm_dddl.Elaborate.load_string src with
      | scenario ->
        (* the trace header must resolve back to this same file *)
        { scenario with Scenario.sc_name = name }
      | exception Adpm_dddl.Elaborate.Error msg ->
        invalid_arg
          (Printf.sprintf "scenario file %s does not elaborate: %s" path msg))
    | None -> (
      match Scenario.find builtin name with
      | Some s -> s
      | None ->
        invalid_arg
          (Printf.sprintf "unknown scenario %s (known: %s; or %s)" name
             (String.concat ", "
                (List.map (fun s -> s.Scenario.sc_name) builtin))
             usage)))

let resolve_result name =
  match resolve name with
  | s -> Ok s
  | exception Invalid_argument msg -> Error msg
