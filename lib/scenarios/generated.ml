open Adpm_util
open Adpm_expr
open Adpm_teamsim
module Ast = Adpm_dddl.Ast

type topology = Ring | Star | Random of float

type params = {
  g_subsystems : int;
  g_vars_per_subsystem : int;
  g_seed : int;
  g_slack : float;
  g_topology : topology;
  g_coupling : float;
  g_slack_jitter : float;
}

let default_params ~subsystems ~vars =
  { g_subsystems = subsystems; g_vars_per_subsystem = vars; g_seed = 0;
    g_slack = 0.15; g_topology = Ring; g_coupling = 0.; g_slack_jitter = 0. }

let validate p =
  if p.g_subsystems < 2 then invalid_arg "Generated: need >= 2 subsystems";
  if p.g_vars_per_subsystem < 1 then invalid_arg "Generated: need >= 1 var";
  if p.g_slack <= 0. then invalid_arg "Generated: slack must be positive";
  (match p.g_topology with
  | Random prob when not (prob >= 0. && prob <= 1.) ->
    invalid_arg "Generated: random topology density must be in [0, 1]"
  | Ring | Star | Random _ -> ());
  if not (p.g_coupling >= 0. && p.g_coupling <= 1.) then
    invalid_arg "Generated: coupling fraction must be in [0, 1]";
  if not (p.g_slack_jitter >= 0. && p.g_slack_jitter < 1.) then
    invalid_arg "Generated: slack jitter must be in [0, 1)"

(* {2 Spec strings}

   A generated scenario is identified by a [gen:<spec>] string — the full
   parameter set in text form — so the artifact recorded in a trace header
   is enough to rebuild the identical network on a fresh process. *)

(* shortest representation that parses back to the same float, so
   params -> spec -> params is the identity (same policy as the DDDL
   printer's float literals) *)
let float_lit x =
  let s = Printf.sprintf "%.12g" x in
  if float_of_string s = x then s else Printf.sprintf "%.17g" x

let topology_to_string = function
  | Ring -> "ring"
  | Star -> "star"
  | Random prob -> Printf.sprintf "random-%s" (float_lit prob)

let topology_of_string s =
  match s with
  | "ring" -> Ok Ring
  | "star" -> Ok Star
  | _ ->
    let prefix = "random-" in
    let pl = String.length prefix in
    if String.length s > pl && String.sub s 0 pl = prefix then
      match float_of_string_opt (String.sub s pl (String.length s - pl)) with
      | Some prob -> Ok (Random prob)
      | None -> Error (Printf.sprintf "bad random topology density in %S" s)
    else
      Error
        (Printf.sprintf
           "unknown topology %S (want ring, star or random-<density>)" s)

let spec_of_params p =
  Printf.sprintf "n=%d,k=%d,seed=%d,slack=%s,jitter=%s,topology=%s,coupling=%s"
    p.g_subsystems p.g_vars_per_subsystem p.g_seed (float_lit p.g_slack)
    (float_lit p.g_slack_jitter)
    (topology_to_string p.g_topology)
    (float_lit p.g_coupling)

let params_of_spec spec =
  let ( let* ) = Result.bind in
  let parse_field acc field =
    let* acc = acc in
    match String.index_opt field '=' with
    | None ->
      Error (Printf.sprintf "malformed field %S (want key=value)" field)
    | Some i ->
      let key = String.sub field 0 i in
      let value = String.sub field (i + 1) (String.length field - i - 1) in
      let int_v f =
        match int_of_string_opt value with
        | Some v -> Ok (f v)
        | None -> Error (Printf.sprintf "field %s: %S is not an integer" key value)
      in
      let float_v f =
        match float_of_string_opt value with
        | Some v -> Ok (f v)
        | None -> Error (Printf.sprintf "field %s: %S is not a number" key value)
      in
      (match key with
      | "n" -> int_v (fun v -> { acc with g_subsystems = v })
      | "k" -> int_v (fun v -> { acc with g_vars_per_subsystem = v })
      | "seed" -> int_v (fun v -> { acc with g_seed = v })
      | "slack" -> float_v (fun v -> { acc with g_slack = v })
      | "jitter" -> float_v (fun v -> { acc with g_slack_jitter = v })
      | "coupling" -> float_v (fun v -> { acc with g_coupling = v })
      | "topology" ->
        let* t = topology_of_string value in
        Ok { acc with g_topology = t }
      | _ ->
        Error
          (Printf.sprintf
             "unknown field %S (want n, k, seed, slack, jitter, topology or coupling)"
             key))
  in
  let fields =
    String.split_on_char ',' (String.trim spec)
    |> List.map String.trim
    |> List.filter (fun f -> f <> "")
  in
  if fields = [] then Error "empty spec"
  else
    let* p =
      List.fold_left parse_field
        (Ok (default_params ~subsystems:2 ~vars:1))
        fields
    in
    match validate p with
    | () -> Ok p
    | exception Invalid_argument msg -> Error msg

(* {2 Structure derivation}

   Everything stochastic is drawn from one generator in a fixed order
   (model coefficients, then topology, then coupling, then slack jitter),
   so the same spec always derives the same structure. Draws are skipped
   entirely when their knob is off, keeping legacy ring scenarios
   bit-identical to the pre-topology generator. *)

let var_name i j = Printf.sprintf "x%d_%d" i j
let power_name i = Printf.sprintf "power%d" i
let gain_name i = Printf.sprintf "gain%d" i
let gmin_name e = Printf.sprintf "gmin%d" e

let ring_edges n =
  if n = 2 then [ (0, 1) ] else List.init n (fun i -> (i, (i + 1) mod n))

type instance = {
  i_power_base : float array;  (* per subsystem *)
  i_power_coeff : float array array;  (* per subsystem, per var *)
  i_gain_coeff : float array array;
}

type structure = {
  s_instance : instance;
  s_edges : (int * int) list;  (* gain-floor couplings, in gmin index order *)
  s_budget_slack : float;
  s_edge_slacks : float list;
}

let mem_edge (a, b) edges =
  List.exists (fun (x, y) -> (x = a && y = b) || (x = b && y = a)) edges

let draw_edges rng p =
  let n = p.g_subsystems in
  let base =
    match p.g_topology with
    | Ring -> ring_edges n
    | Star -> List.init (n - 1) (fun i -> (0, i + 1))
    | Random prob ->
      (* a spanning chain keeps every subsystem coupled in; remaining
         pairs join with the given density *)
      let chain = List.init (n - 1) (fun i -> (i, i + 1)) in
      let extra = ref [] in
      for i = 0 to n - 1 do
        for j = i + 2 to n - 1 do
          if Rng.float rng 1. < prob then extra := (i, j) :: !extra
        done
      done;
      chain @ List.rev !extra
  in
  let wanted =
    int_of_float (Float.round (p.g_coupling *. float_of_int n))
  in
  if wanted <= 0 then base
  else begin
    let candidates = ref [] in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if not (mem_edge (i, j) base) then candidates := (i, j) :: !candidates
      done
    done;
    let pool = Array.of_list (List.rev !candidates) in
    let avail = ref (Array.length pool) in
    let picked = ref [] in
    for _ = 1 to min wanted !avail do
      let idx = Rng.int rng !avail in
      picked := pool.(idx) :: !picked;
      pool.(idx) <- pool.(!avail - 1);
      decr avail
    done;
    base @ List.rev !picked
  end

let structure p =
  let rng = Rng.create (0x9e37 + p.g_seed) in
  let n = p.g_subsystems and k = p.g_vars_per_subsystem in
  let inst =
    {
      i_power_base = Array.init n (fun _ -> Rng.float_range rng 1. 3.);
      i_power_coeff =
        Array.init n (fun _ -> Array.init k (fun _ -> Rng.float_range rng 0.3 1.0));
      i_gain_coeff =
        Array.init n (fun _ -> Array.init k (fun _ -> Rng.float_range rng 0.4 1.2));
    }
  in
  let edges = draw_edges rng p in
  let slack () =
    if p.g_slack_jitter = 0. then p.g_slack
    else
      Rng.float_range rng
        (p.g_slack *. (1. -. p.g_slack_jitter))
        (p.g_slack *. (1. +. p.g_slack_jitter))
  in
  let budget_slack = slack () in
  let edge_slacks = List.map (fun _ -> slack ()) edges in
  { s_instance = inst; s_edges = edges; s_budget_slack = budget_slack;
    s_edge_slacks = edge_slacks }

let property_count p =
  validate p;
  let n = p.g_subsystems and k = p.g_vars_per_subsystem in
  (n * (k + 2)) + 1 + List.length (structure p).s_edges

let constraint_count p =
  validate p;
  let n = p.g_subsystems in
  (2 * n) + 1 + List.length (structure p).s_edges

let witness_value = 5.

let power_model inst i k =
  Expr.sum
    (Expr.const inst.i_power_base.(i)
    :: List.init k (fun j ->
           Expr.scale inst.i_power_coeff.(i).(j) (Expr.var (var_name i j))))

let gain_model inst i k =
  Expr.sum
    (List.init k (fun j ->
         Expr.scale inst.i_gain_coeff.(i).(j) (Expr.var (var_name i j))))

let power_at_witness inst i =
  inst.i_power_base.(i)
  +. (witness_value *. Array.fold_left ( +. ) 0. inst.i_power_coeff.(i))

let gain_at_witness inst i =
  witness_value *. Array.fold_left ( +. ) 0. inst.i_gain_coeff.(i)

(* {2 DDDL declaration}

   The generator builds an AST and goes through [Emit] + [Elaborate]: the
   emitted text is the scenario, and the in-memory declaration is only a
   means of producing it. [Emit.checked] guarantees the text elaborates to
   the same network the declaration describes. *)

let decl p =
  validate p;
  let { s_instance = inst; s_edges = edges; s_budget_slack; s_edge_slacks } =
    structure p
  in
  let n = p.g_subsystems and k = p.g_vars_per_subsystem in
  let real lo hi = Ast.D_real (lo, hi) in
  let prop name dom = { Ast.pd_name = name; pd_domain = dom; pd_levels = None } in
  let properties =
    List.concat
      (List.init n (fun i ->
           let p_max =
             inst.i_power_base.(i)
             +. (10. *. Array.fold_left ( +. ) 0. inst.i_power_coeff.(i))
           in
           let g_max = 10. *. Array.fold_left ( +. ) 0. inst.i_gain_coeff.(i) in
           List.init k (fun j -> prop (var_name i j) (real 0. 10.))
           @ [
               prop (power_name i) (real 0. (p_max +. 1.));
               prop (gain_name i) (real 0. (g_max +. 1.));
             ]))
  in
  let total_power_witness =
    List.fold_left ( +. ) 0. (List.init n (fun i -> power_at_witness inst i))
  in
  let budget = total_power_witness *. (1. +. s_budget_slack) in
  let floor_of (a, b) slack =
    (gain_at_witness inst a +. gain_at_witness inst b) *. (1. -. slack)
  in
  let floors = List.map2 floor_of edges s_edge_slacks in
  let properties =
    properties
    @ (prop "p_budget" (real 1. (budget *. 2.))
      :: List.mapi
           (fun e floor_v -> prop (gmin_name e) (real 0.1 (floor_v *. 2.)))
           floors)
  in
  let constr name lhs rel rhs =
    { Ast.cd_name = name; cd_lhs = lhs; cd_rel = rel; cd_rhs = rhs;
      cd_monotone = [] }
  in
  let bands =
    List.concat
      (List.init n (fun i ->
           [
             constr (Printf.sprintf "PowerBand%d" i)
               (Expr.var (power_name i))
               Adpm_csp.Constr.Ge
               Expr.(power_model inst i k - const 0.5);
             constr (Printf.sprintf "GainBand%d" i)
               (Expr.var (gain_name i))
               Adpm_csp.Constr.Le
               Expr.(gain_model inst i k + const 0.4);
           ]))
  in
  let total_power =
    constr "TotalPower"
      (Expr.sum (List.init n (fun i -> Expr.var (power_name i))))
      Adpm_csp.Constr.Le (Expr.var "p_budget")
  in
  let gain_floors =
    List.mapi
      (fun e (a, b) ->
        constr (Printf.sprintf "GainFloor%d" e)
          Expr.(Expr.var (gain_name a) + Expr.var (gain_name b))
          Adpm_csp.Constr.Ge
          (Expr.var (gmin_name e)))
      edges
  in
  let models =
    List.concat
      (List.init n (fun i ->
           [
             (power_name i, power_model inst i k);
             (gain_name i, gain_model inst i k);
           ]))
  in
  let requirements =
    ("p_budget", budget)
    :: List.mapi (fun e floor_v -> (gmin_name e, floor_v)) floors
  in
  let objects =
    List.init n (fun i ->
        ( Printf.sprintf "Subsystem%d" i,
          List.init k (var_name i) @ [ power_name i; gain_name i ] ))
  in
  let subproblems =
    List.init n (fun i ->
        {
          Ast.prd_name = Printf.sprintf "subsystem-%d" i;
          prd_owner = Printf.sprintf "designer%d" i;
          prd_inputs = [ "p_budget" ];
          prd_outputs = List.init k (var_name i) @ [ power_name i; gain_name i ];
          prd_constraints =
            [ Printf.sprintf "PowerBand%d" i; Printf.sprintf "GainBand%d" i ];
          prd_object = Some (Printf.sprintf "Subsystem%d" i);
          prd_after = [];
          prd_children = [];
        })
  in
  let top =
    {
      Ast.prd_name = Printf.sprintf "generated-%dx%d" n k;
      prd_owner = "leader";
      prd_inputs = List.map fst requirements;
      prd_outputs = [];
      prd_constraints =
        "TotalPower" :: List.mapi (fun e _ -> Printf.sprintf "GainFloor%d" e) edges;
      prd_object = None;
      prd_after = [];
      prd_children = subproblems;
    }
  in
  {
    Ast.sd_name = "gen:" ^ spec_of_params p;
    sd_properties = properties;
    sd_constraints = bands @ (total_power :: gain_floors);
    sd_models = models;
    sd_requirements = requirements;
    sd_objects = objects;
    sd_problem = top;
  }

let source p = Adpm_dddl.Emit.checked (decl p)

let scenario p =
  let base = Adpm_dddl.Elaborate.load_string (source p) in
  {
    base with
    Scenario.sc_description =
      Printf.sprintf
        "generated %s scenario: %d subsystems, %d parameters each, seed %d"
        (topology_to_string p.g_topology)
        p.g_subsystems p.g_vars_per_subsystem p.g_seed;
  }

let build p ~mode = (scenario p).Scenario.sc_build ~mode
