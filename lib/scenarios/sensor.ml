open Adpm_interval
open Adpm_expr
open Adpm_csp
open Adpm_core
open Adpm_teamsim

(* Free design variables and model-band-derived performance parameters.
   Sensor: membrane radius r (um), thickness t (um), electrode gap g (um).
   Interface: amplifier gain Ga, ADC bits B (finite), bias current (mA).
   Derived values are tied to linear models by one-sided bands wherever the
   system-level pressure keeps the other side honest. *)

let build ?(req_resolution = 2.3) ?(req_yield = 78.) ?(req_range = 180.) ()
    ~mode =
  let net = Network.create () in
  let open Builder in
  (* sensor subsystem *)
  continuous net "radius" 100. 1000.;
  continuous net "thickness" 1. 20.;
  continuous net "gap" 0.5 5.;
  continuous net "base-cap" 1. 20.;
  continuous net "sensitivity" 0.1 4.;
  continuous net "max-pressure" 10. 1000.;
  continuous net "sensor-noise" 0.1 5.;
  continuous net "yield" 50. 100.;
  (* interface subsystem *)
  continuous net "amp-gain" 1. 100.;
  Network.add_prop net "adc-bits" (Domain.finite [ 8.; 10.; 12.; 14.; 16. ]);
  continuous net "bias-current" 0.1 5.;
  continuous net "circuit-noise" 0.1 10.;
  continuous net "interface-power" 0.5 50.;
  continuous net "offset" 0.1 10.;
  (* top-level requirements *)
  continuous net "req-resolution" 0.5 10.;
  continuous net "req-yield" 50. 95.;
  continuous net "req-range" 50. 500.;
  continuous net "req-power" 2. 50.;
  continuous net "req-cap-min" 1. 10.;
  continuous net "req-cap-max" 5. 20.;
  continuous net "req-offset-max" 0.5 5.;
  continuous net "req-noise-max" 1. 20.;
  continuous net "req-sens-min" 0.1 2.;
  continuous net "req-bits-min" 8. 16.;
  continuous net "req-gain-max" 10. 100.;
  continuous net "req-t-max" 2. 20.;
  let v = Expr.var and c = Expr.const in
  (* sensor model bands (linear) *)
  let cap_model = Expr.(scale 0.02 (v "radius") - scale 2. (v "gap")) in
  let s_cap_lo = ge net "SensorCap-lo" (v "base-cap") Expr.(cap_model - c 0.5) in
  let s_cap_hi = le net "SensorCap-hi" (v "base-cap") Expr.(cap_model + c 0.5) in
  let sens_model =
    Expr.(scale 0.004 (v "radius") - scale 0.1 (v "thickness")
          - scale 0.2 (v "gap"))
  in
  let s_sens_hi = le net "Sensitivity-hi" (v "sensitivity") Expr.(sens_model + c 0.2) in
  let s_pmax_hi =
    le net "MaxPressure-hi" (v "max-pressure")
      Expr.(scale 50. (v "thickness") - scale 0.05 (v "radius") + c 20.)
  in
  let s_noise_lo =
    ge net "SensorNoise-lo" (v "sensor-noise")
      Expr.(c 1.8 - scale 0.002 (v "radius") + scale 0.1 (v "gap"))
  in
  let s_yield_hi =
    le net "Yield-hi" (v "yield")
      Expr.(c 92. - scale 2. (v "thickness") - scale 0.004 (v "radius")
            + scale 3. (v "gap"))
  in
  (* interface model bands (linear) *)
  let i_noise_lo =
    ge net "CircuitNoise-lo" (v "circuit-noise")
      Expr.(c 4.7 - scale 0.04 (v "amp-gain") - scale 0.8 (v "bias-current"))
  in
  let i_power_lo =
    ge net "InterfacePower-lo" (v "interface-power")
      Expr.(scale 2. (v "bias-current") + scale 0.05 (v "amp-gain")
            + scale 0.3 (v "adc-bits") - c 0.5)
  in
  let i_offset_lo =
    ge net "Offset-lo" (v "offset")
      Expr.(c 2.7 - scale 0.1 (v "amp-gain"))
  in
  (* system constraints: resolution, yield, range, power, compatibility *)
  let sys_resolution =
    le net "Resolution"
      Expr.(v "sensor-noise" + v "circuit-noise")
      Expr.(scale 2. (v "req-resolution") * v "sensitivity")
  in
  let sys_yield = ge net "YieldReq" (v "yield") (v "req-yield") in
  let sys_range = ge net "PressureRange" (v "max-pressure") (v "req-range") in
  let sys_power = le net "PowerBudget" (v "interface-power") (v "req-power") in
  let sys_cap_lo = ge net "CapWindow-lo" (v "base-cap") (v "req-cap-min") in
  let sys_cap_hi = le net "CapWindow-hi" (v "base-cap") (v "req-cap-max") in
  let sys_offset = le net "OffsetReq" (v "offset") (v "req-offset-max") in
  let sys_noise =
    le net "NoiseBudget" Expr.(v "sensor-noise" + v "circuit-noise")
      (v "req-noise-max")
  in
  let sys_sens = ge net "SensReq" (v "sensitivity") (v "req-sens-min") in
  let sys_bits = ge net "BitsReq" (v "adc-bits") (v "req-bits-min") in
  let sys_gain = le net "GainMax" (v "amp-gain") (v "req-gain-max") in
  let sys_tmax = le net "ThicknessMax" (v "thickness") (v "req-t-max") in
  let objects =
    [
      Design_object.make ~name:"PressureSensor"
        ~properties:
          [
            "radius"; "thickness"; "gap"; "base-cap"; "sensitivity";
            "max-pressure"; "sensor-noise"; "yield";
          ]
        ();
      Design_object.make ~name:"InterfaceCircuit"
        ~properties:
          [
            "amp-gain"; "adc-bits"; "bias-current"; "circuit-noise";
            "interface-power"; "offset";
          ]
        ();
    ]
  in
  assemble ~mode ~net ~objects ~top_name:"sensing-system" ~leader:"leader"
    ~requirements:
      [
        ("req-resolution", req_resolution);
        ("req-yield", req_yield);
        ("req-range", req_range);
        ("req-power", 8.5);
        ("req-cap-min", 3.);
        ("req-cap-max", 12.);
        ("req-offset-max", 2.);
        ("req-noise-max", 5.5);
        ("req-sens-min", 0.5);
        ("req-bits-min", 10.);
        ("req-gain-max", 50.);
        ("req-t-max", 10.);
      ]
    ~system_constraints:
      [
        sys_resolution; sys_yield; sys_range; sys_power; sys_cap_lo;
        sys_cap_hi; sys_offset; sys_noise; sys_sens; sys_bits; sys_gain;
        sys_tmax;
      ]
    ~subproblems:
      [
        {
          ps_name = "pressure-sensor";
          ps_owner = "mems";
          ps_inputs = [ "req-resolution"; "req-yield"; "req-range" ];
          ps_outputs =
            [
              "radius"; "thickness"; "gap"; "base-cap"; "sensitivity";
              "max-pressure"; "sensor-noise"; "yield";
            ];
          ps_constraints =
            [ s_cap_lo; s_cap_hi; s_sens_hi; s_pmax_hi; s_noise_lo; s_yield_hi ];
          ps_object = Some "PressureSensor";
        };
        {
          ps_name = "interface-circuit";
          ps_owner = "analog";
          ps_inputs = [ "req-resolution"; "req-power"; "req-noise-max" ];
          ps_outputs =
            [
              "amp-gain"; "adc-bits"; "bias-current"; "circuit-noise";
              "interface-power"; "offset";
            ];
          ps_constraints = [ i_noise_lo; i_power_lo; i_offset_lo ];
          ps_object = Some "InterfaceCircuit";
        };
      ]

(* model centres evaluated by the synthesis tools; the one-sided bands in
   the network keep the tool outputs honest in the direction the system
   requirements would otherwise exploit *)
let models =
  let v = Expr.var and c = Expr.const in
  [
    ("base-cap", Expr.(scale 0.02 (v "radius") - scale 2. (v "gap")));
    ( "sensitivity",
      Expr.(scale 0.004 (v "radius") - scale 0.1 (v "thickness")
            - scale 0.2 (v "gap")) );
    ( "max-pressure",
      Expr.(scale 50. (v "thickness") - scale 0.05 (v "radius")) );
    ( "sensor-noise",
      Expr.(c 2. - scale 0.002 (v "radius") + scale 0.1 (v "gap")) );
    ( "yield",
      Expr.(c 90. - scale 2. (v "thickness") - scale 0.004 (v "radius")
            + scale 3. (v "gap")) );
    ( "circuit-noise",
      Expr.(c 5. - scale 0.04 (v "amp-gain") - scale 0.8 (v "bias-current")) );
    ( "interface-power",
      Expr.(scale 2. (v "bias-current") + scale 0.05 (v "amp-gain")
            + scale 0.3 (v "adc-bits")) );
    ("offset", Expr.(c 3. - scale 0.1 (v "amp-gain")));
  ]

(* The same network in DDDL. This text is the canonical artifact:
   [scenario] is elaborated from it, and the OCaml [build] above serves as
   the equivalence reference the tests compare against. *)
let source =
  {|
// The MEMS pressure-sensing system (Section 3.2) in DDDL: 26 properties,
// 21 mostly-linear constraints. The exact twin of the OCaml-built Sensor
// scenario (tests assert identical simulations).
scenario sensor {
  // sensor subsystem
  property radius          : real [100, 1000];
  property thickness       : real [1, 20];
  property gap             : real [0.5, 5];
  property "base-cap"      : real [1, 20];
  property sensitivity     : real [0.1, 4];
  property "max-pressure"  : real [10, 1000];
  property "sensor-noise"  : real [0.1, 5];
  property yield           : real [50, 100];
  // interface subsystem
  property "amp-gain"      : real [1, 100];
  property "adc-bits"      : discrete {8, 10, 12, 14, 16};
  property "bias-current"  : real [0.1, 5];
  property "circuit-noise" : real [0.1, 10];
  property "interface-power" : real [0.5, 50];
  property offset          : real [0.1, 10];
  // top-level requirements
  property "req-resolution" : real [0.5, 10];
  property "req-yield"      : real [50, 95];
  property "req-range"      : real [50, 500];
  property "req-power"      : real [2, 50];
  property "req-cap-min"    : real [1, 10];
  property "req-cap-max"    : real [5, 20];
  property "req-offset-max" : real [0.5, 5];
  property "req-noise-max"  : real [1, 20];
  property "req-sens-min"   : real [0.1, 2];
  property "req-bits-min"   : real [8, 16];
  property "req-gain-max"   : real [10, 100];
  property "req-t-max"      : real [2, 20];

  // sensor model bands (linear)
  constraint "SensorCap-lo" :
    "base-cap" >= 0.02 * radius - 2 * gap - 0.5;
  constraint "SensorCap-hi" :
    "base-cap" <= 0.02 * radius - 2 * gap + 0.5;
  constraint "Sensitivity-hi" :
    sensitivity <= 0.004 * radius - 0.1 * thickness - 0.2 * gap + 0.2;
  constraint "MaxPressure-hi" :
    "max-pressure" <= 50 * thickness - 0.05 * radius + 20;
  constraint "SensorNoise-lo" :
    "sensor-noise" >= 1.8 - 0.002 * radius + 0.1 * gap;
  constraint "Yield-hi" :
    yield <= 92 - 2 * thickness - 0.004 * radius + 3 * gap;

  // interface model bands (linear)
  constraint "CircuitNoise-lo" :
    "circuit-noise" >= 4.7 - 0.04 * "amp-gain" - 0.8 * "bias-current";
  constraint "InterfacePower-lo" :
    "interface-power" >= 2 * "bias-current" + 0.05 * "amp-gain" + 0.3 * "adc-bits" - 0.5;
  constraint "Offset-lo" :
    offset >= 2.7 - 0.1 * "amp-gain";

  // system constraints
  constraint Resolution :
    "sensor-noise" + "circuit-noise" <= 2 * "req-resolution" * sensitivity;
  constraint YieldReq : yield >= "req-yield";
  constraint PressureRange : "max-pressure" >= "req-range";
  constraint PowerBudget : "interface-power" <= "req-power";
  constraint "CapWindow-lo" : "base-cap" >= "req-cap-min";
  constraint "CapWindow-hi" : "base-cap" <= "req-cap-max";
  constraint OffsetReq : offset <= "req-offset-max";
  constraint NoiseBudget : "sensor-noise" + "circuit-noise" <= "req-noise-max";
  constraint SensReq : sensitivity >= "req-sens-min";
  constraint BitsReq : "adc-bits" >= "req-bits-min";
  constraint GainMax : "amp-gain" <= "req-gain-max";
  constraint ThicknessMax : thickness <= "req-t-max";

  // the synthesis tools' models (band centres)
  model "base-cap"        = 0.02 * radius - 2 * gap;
  model sensitivity       = 0.004 * radius - 0.1 * thickness - 0.2 * gap;
  model "max-pressure"    = 50 * thickness - 0.05 * radius;
  model "sensor-noise"    = 2 - 0.002 * radius + 0.1 * gap;
  model yield             = 90 - 2 * thickness - 0.004 * radius + 3 * gap;
  model "circuit-noise"   = 5 - 0.04 * "amp-gain" - 0.8 * "bias-current";
  model "interface-power" = 2 * "bias-current" + 0.05 * "amp-gain" + 0.3 * "adc-bits";
  model offset            = 3 - 0.1 * "amp-gain";

  requirement "req-resolution" = 2.3;
  requirement "req-yield" = 78;
  requirement "req-range" = 180;
  requirement "req-power" = 8.5;
  requirement "req-cap-min" = 3;
  requirement "req-cap-max" = 12;
  requirement "req-offset-max" = 2;
  requirement "req-noise-max" = 5.5;
  requirement "req-sens-min" = 0.5;
  requirement "req-bits-min" = 10;
  requirement "req-gain-max" = 50;
  requirement "req-t-max" = 10;

  object PressureSensor {
    properties: radius, thickness, gap, "base-cap", sensitivity,
      "max-pressure", "sensor-noise", yield;
  }
  object InterfaceCircuit {
    properties: "amp-gain", "adc-bits", "bias-current", "circuit-noise",
      "interface-power", offset;
  }

  problem "sensing-system" owner leader {
    inputs: "req-resolution", "req-yield", "req-range", "req-power",
      "req-cap-min", "req-cap-max", "req-offset-max", "req-noise-max",
      "req-sens-min", "req-bits-min", "req-gain-max", "req-t-max";
    constraints: Resolution, YieldReq, PressureRange, PowerBudget,
      "CapWindow-lo", "CapWindow-hi", OffsetReq, NoiseBudget, SensReq,
      BitsReq, GainMax, ThicknessMax;
    subproblem "pressure-sensor" owner mems {
      inputs: "req-resolution", "req-yield", "req-range";
      outputs: radius, thickness, gap, "base-cap", sensitivity,
        "max-pressure", "sensor-noise", yield;
      constraints: "SensorCap-lo", "SensorCap-hi", "Sensitivity-hi",
        "MaxPressure-hi", "SensorNoise-lo", "Yield-hi";
      object: PressureSensor;
    }
    subproblem "interface-circuit" owner analog {
      inputs: "req-resolution", "req-power", "req-noise-max";
      outputs: "amp-gain", "adc-bits", "bias-current", "circuit-noise",
        "interface-power", offset;
      constraints: "CircuitNoise-lo", "InterfacePower-lo", "Offset-lo";
      object: InterfaceCircuit;
    }
  }
}
|}

let scenario =
  {
    (Adpm_dddl.Elaborate.load_string source) with
    Scenario.sc_description =
      "MEMS pressure sensing system: 26 properties, 21 mostly-linear constraints";
  }
