open Adpm_expr
open Adpm_csp
open Adpm_core
open Adpm_teamsim

let diff_pair_w = "Diff-pair-W"
let freq_ind = "Freq-ind"
let beam_length = "Beam-length"
let min_gain = "Min-gain"
let max_power = "Max-power"
let min_zin = "Min-LNA-Zin"

(* Constants calibrated to reproduce the Fig. 2 windows (see .mli). *)
let power_slope_w = 38.5522
let power_slope_l = 100.
let power_base = 40.
let gain_coeff = 30.
let zin_coeff = 60.
let match_coeff = 0.0134042

let build ?(adjustable_requirements = false) () ~mode =
  let net = Network.create () in
  let open Builder in
  let meta = [ ("levels", "Transistor,Geometry") ] in
  Network.add_prop net ~meta diff_pair_w (Adpm_interval.Domain.continuous 2.5 10.);
  Network.add_prop net ~meta freq_ind (Adpm_interval.Domain.continuous 0.05 0.5);
  continuous net beam_length 5. 50.;
  continuous net min_gain 10. 100.;
  continuous net max_power 50. 400.;
  continuous net min_zin 10. 100.;
  let v = Expr.var and c = Expr.const in
  let c_power =
    le net "LNAPower-C7"
      Expr.(c power_base + scale power_slope_w (v diff_pair_w)
            + scale power_slope_l (v freq_ind))
      (v max_power)
  in
  let c_gain =
    ge net "LNAGain-C10"
      Expr.(scale gain_coeff (v diff_pair_w) * Expr.Sqrt (v freq_ind))
      (v min_gain)
  in
  let c_zin =
    ge net "LNA-Zin-C9"
      Expr.(scale zin_coeff (v diff_pair_w) * v freq_ind)
      (v min_zin)
  in
  let c_match =
    ge net "FilterMatch-C4" (v freq_ind)
      Expr.(scale match_coeff (v beam_length))
  in
  let objects =
    [
      Design_object.make ~name:"LNA+Mixer"
        ~properties:[ diff_pair_w; freq_ind ] ();
      Design_object.make ~name:"MEMS-Filter" ~properties:[ beam_length ] ();
    ]
  in
  let initial_min_zin = if adjustable_requirements then 25. else 40. in
  let requirements =
    [ (min_gain, 40.); (max_power, 200.); (min_zin, initial_min_zin) ]
  in
  if adjustable_requirements then begin
    (* the walkthrough leader adjusts requirements through operations, so
       they are outputs of the top problem rather than fixed inputs *)
    List.iter
      (fun (name, value) -> Network.assign net name (Value.Num value))
      requirements;
    let top =
      Problem.make ~id:0 ~name:"receiver-front-end" ~owner:"leader"
        ~outputs:[ min_gain; max_power; min_zin ]
        ~constraints:[ c_match.Constr.id ] ()
    in
    let dpm = Dpm.create ~mode net ~objects ~top in
    let analog =
      Problem.make ~id:1 ~name:"analog" ~owner:"circuit"
        ~inputs:[ min_gain; max_power; min_zin ]
        ~outputs:[ diff_pair_w; freq_ind ]
        ~constraints:
          [ c_power.Constr.id; c_gain.Constr.id; c_zin.Constr.id ]
        ~object_name:"LNA+Mixer" ()
    in
    let filter =
      Problem.make ~id:2 ~name:"mems-filter" ~owner:"device"
        ~outputs:[ beam_length ] ~object_name:"MEMS-Filter" ()
    in
    Dpm.register_problem dpm ~parent:(Some 0) analog;
    Dpm.register_problem dpm ~parent:(Some 0) filter;
    dpm
  end
  else
    assemble ~mode ~net ~objects ~top_name:"receiver-front-end"
      ~leader:"leader" ~requirements ~system_constraints:[ c_match ]
      ~subproblems:
        [
          {
            ps_name = "analog";
            ps_owner = "circuit";
            ps_inputs = [ min_gain; max_power; min_zin ];
            ps_outputs = [ diff_pair_w; freq_ind ];
            ps_constraints = [ c_power; c_gain; c_zin ];
            ps_object = Some "LNA+Mixer";
          };
          {
            ps_name = "mems-filter";
            ps_owner = "device";
            ps_inputs = [];
            ps_outputs = [ beam_length ];
            ps_constraints = [];
            ps_object = Some "MEMS-Filter";
          };
        ]

(* The same network in DDDL (the fixed-requirements simulation variant;
   the adjustable-requirements walkthrough stays OCaml-only because its
   requirements are outputs the leader mutates mid-script). This text is
   the canonical artifact: [scenario] is elaborated from it, and the OCaml
   [build] above serves as the equivalence reference the tests compare
   against. *)
let source =
  {|
// The Section 2.4 walkthrough case in DDDL: LNA + mixer circuitry and a
// MEMS filtering device. Constants calibrated so the Fig. 2 feasible
// windows fall out of propagation.
scenario lna {
  property "Diff-pair-W" : real [2.5, 10] levels "Transistor,Geometry";
  property "Freq-ind"    : real [0.05, 0.5] levels "Transistor,Geometry";
  property "Beam-length" : real [5, 50];
  property "Min-gain"    : real [10, 100];
  property "Max-power"   : real [50, 400];
  property "Min-LNA-Zin" : real [10, 100];

  constraint "LNAPower-C7" :
    40 + 38.5522 * "Diff-pair-W" + 100 * "Freq-ind" <= "Max-power";
  constraint "LNAGain-C10" :
    30 * "Diff-pair-W" * sqrt("Freq-ind") >= "Min-gain";
  constraint "LNA-Zin-C9" :
    60 * "Diff-pair-W" * "Freq-ind" >= "Min-LNA-Zin";
  constraint "FilterMatch-C4" :
    "Freq-ind" >= 0.0134042 * "Beam-length";

  requirement "Min-gain" = 40;
  requirement "Max-power" = 200;
  requirement "Min-LNA-Zin" = 40;

  object "LNA+Mixer" { properties: "Diff-pair-W", "Freq-ind"; }
  object "MEMS-Filter" { properties: "Beam-length"; }

  problem "receiver-front-end" owner leader {
    inputs: "Min-gain", "Max-power", "Min-LNA-Zin";
    constraints: "FilterMatch-C4";
    subproblem analog owner circuit {
      inputs: "Min-gain", "Max-power", "Min-LNA-Zin";
      outputs: "Diff-pair-W", "Freq-ind";
      constraints: "LNAPower-C7", "LNAGain-C10", "LNA-Zin-C9";
      object: "LNA+Mixer";
    }
    subproblem "mems-filter" owner device {
      outputs: "Beam-length";
      object: "MEMS-Filter";
    }
  }
}
|}

let scenario =
  {
    (Adpm_dddl.Elaborate.load_string source) with
    Scenario.sc_description = "Section 2.4 LNA + MEMS filter walkthrough case";
  }
