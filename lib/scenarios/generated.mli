(** Randomly generated collaborative-design scenarios, emitted as DDDL.

    The paper's two cases are fixed points in problem-size space; its
    conclusion extrapolates — "for more complex design problems ADPM may
    provide a more substantial design process acceleration for a
    proportionally smaller computational penalty". This generator produces
    structurally similar scenarios of arbitrary size so the scaling and
    adaptability experiments can test that claim: [n] subsystems coupled by
    a configurable constraint graph, each with [k] free design parameters,
    a tool-computed power and gain per subsystem (linear models with random
    coefficients plus accuracy bands), a global power budget, and per-edge
    gain floors coupling subsystems.

    Every instance is satisfiable by construction: requirements are derived
    from a nominal witness point with controlled slack.

    The generator does not build a network directly. It constructs a DDDL
    declaration, renders it with {!Adpm_dddl.Emit} (round-trip checked) and
    elaborates the text — so the emitted source is the canonical artifact
    and [same spec string -> same artifact -> same network]. The scenario's
    name is the ["gen:<spec>"] string itself, which the registry resolves
    back to the identical scenario on any process. *)

open Adpm_core
open Adpm_teamsim

type topology =
  | Ring  (** subsystem [i] couples to [i+1 mod n]; the legacy shape *)
  | Star  (** subsystem 0 couples to every other subsystem *)
  | Random of float
      (** spanning chain plus each remaining pair independently with the
          given probability in [[0, 1]] *)

type params = {
  g_subsystems : int;  (** >= 2 *)
  g_vars_per_subsystem : int;  (** >= 1 *)
  g_seed : int;  (** generator seed: same seed, same network *)
  g_slack : float;
      (** requirement slack around the witness, e.g. 0.15 = 15% *)
  g_topology : topology;  (** constraint-graph shape of the gain couplings *)
  g_coupling : float;
      (** extra cross-subsystem coupling fraction in [[0, 1]]:
          [round (coupling * n)] additional edges beyond the topology *)
  g_slack_jitter : float;
      (** per-requirement hardness spread in [[0, 1)]: each requirement's
          slack is drawn uniformly from
          [slack * (1 - jitter), slack * (1 + jitter)] *)
}

val default_params : subsystems:int -> vars:int -> params
(** Seed 0, slack 0.15, ring topology, no extra coupling, no jitter —
    bit-identical to the pre-topology generator. *)

val spec_of_params : params -> string
(** Canonical textual form, e.g.
    ["n=4,k=3,seed=0,slack=0.15,jitter=0,topology=ring,coupling=0"].
    Round-trips through {!params_of_spec}. *)

val params_of_spec : string -> (params, string) result
(** Parse a spec string. [n] and [k] fields are comma-separated
    [key=value] pairs; missing fields take the {!default_params} values.
    Errors are descriptive: malformed field, unknown key, bad number, or
    a validation failure. *)

val source : params -> string
(** The canonical DDDL text for these parameters (round-trip checked). *)

val build : params -> mode:Dpm.mode -> Dpm.t
val scenario : params -> Scenario.t
(** Named ["gen:<spec>"]; elaborated from {!source}. *)

val property_count : params -> int
(** Numeric properties the instance will have (for reporting). *)

val constraint_count : params -> int
