type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float; (* sum of squared deviations, Welford *)
  mutable min_v : float;
  mutable max_v : float;
  mutable sum : float;
  mutable samples : float list; (* reverse insertion order *)
  mutable sorted : float array option; (* quantile cache, cleared on add *)
}

let create () =
  {
    n = 0;
    mean = 0.;
    m2 = 0.;
    min_v = nan;
    max_v = nan;
    sum = 0.;
    samples = [];
    sorted = None;
  }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  t.sum <- t.sum +. x;
  if t.n = 1 then begin
    t.min_v <- x;
    t.max_v <- x
  end else begin
    if x < t.min_v then t.min_v <- x;
    if x > t.max_v then t.max_v <- x
  end;
  t.samples <- x :: t.samples;
  t.sorted <- None

let add_int t x = add t (float_of_int x)

let count t = t.n

let mean t = if t.n = 0 then nan else t.mean

let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)

let stddev t = sqrt (variance t)

let min_value t = t.min_v

let max_value t = t.max_v

let total t = t.sum

let to_list t = List.rev t.samples

let sorted_samples t =
  match t.sorted with
  | Some arr -> arr
  | None ->
    let arr = Array.of_list t.samples in
    Array.sort Float.compare arr;
    t.sorted <- Some arr;
    arr

let quantile t q =
  if t.n = 0 then nan
  else begin
    let arr = sorted_samples t in
    let q = if q < 0. then 0. else if q > 1. then 1. else q in
    let pos = q *. float_of_int (t.n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = int_of_float (Float.ceil pos) in
    if lo = hi then arr.(lo)
    else begin
      let frac = pos -. float_of_int lo in
      (arr.(lo) *. (1. -. frac)) +. (arr.(hi) *. frac)
    end
  end

let median t = quantile t 0.5

let summary t =
  if t.n = 0 then "n=0"
  else
    Printf.sprintf "n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f" t.n (mean t)
      (stddev t) t.min_v t.max_v
