(* SplitMix64 (Steele, Lea & Flood, OOPSLA 2014). The mixing constants below
   are the reference ones; the generator passes BigCrush when used as here. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let copy rng = { state = rng.state }

let bits64 rng =
  rng.state <- Int64.add rng.state golden_gamma;
  mix64 rng.state

let split rng = { state = mix64 (bits64 rng) }

let int rng bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free for our purposes: modulo bias is negligible because
     bounds are tiny compared to 2^62. *)
  let x = Int64.to_int (Int64.shift_right_logical (bits64 rng) 2) in
  x mod bound

let float rng x =
  (* 53 uniform bits into [0, 1). *)
  let bits = Int64.to_float (Int64.shift_right_logical (bits64 rng) 11) in
  bits /. 9007199254740992.0 *. x

let float_range rng lo hi =
  if hi <= lo then lo else lo +. float rng (hi -. lo)

let bool rng = Int64.logand (bits64 rng) 1L = 1L

let pick_array rng arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick_array: empty array";
  arr.(int rng (Array.length arr))

let pick rng xs =
  (* O(n) walk, no array copy: pick sits on the designers' hot path. Draws
     exactly one rng value, like pick_array, so streams are unchanged. *)
  match xs with
  | [] -> invalid_arg "Rng.pick: empty list"
  | _ -> List.nth xs (int rng (List.length xs))

let shuffle rng xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr
