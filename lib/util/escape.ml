let csv s =
  (* '\r' must force quoting too: a bare CR splits the row in most CSV
     readers just like LF does. *)
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let json s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf
