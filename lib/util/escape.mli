(** Quoting rules shared by every exporter (CSV and JSON writers in
    [Adpm_teamsim.Export], the JSONL trace codec in [Adpm_trace]). *)

val csv : string -> string
(** RFC 4180 quoting: wrap in double quotes when the string contains a
    comma, quote, or line break (LF or CR), doubling embedded quotes. *)

val json : string -> string
(** JSON string-body escaping (without the surrounding quotes): quotes,
    backslashes, and control characters. Bytes >= 0x20 pass through
    unchanged, so UTF-8 text survives byte-for-byte. *)
