(** Streaming statistics accumulator.

    Collects scalar observations and reports count, mean, standard deviation,
    extrema and quantiles. Mean and variance use Welford's online update so
    they remain numerically stable for long series; quantiles retain the full
    sample (our series are small: at most a few thousand simulation runs). *)

type t

val create : unit -> t
(** Fresh, empty accumulator. *)

val add : t -> float -> unit
(** Record one observation. *)

val add_int : t -> int -> unit
(** Record one integer observation. *)

val count : t -> int
(** Number of observations recorded. *)

val mean : t -> float
(** Arithmetic mean; [nan] when empty. *)

val variance : t -> float
(** Unbiased sample variance; [0.] with fewer than two observations. *)

val stddev : t -> float
(** Square root of {!variance}. *)

val min_value : t -> float
(** Smallest observation; [nan] when empty. *)

val max_value : t -> float
(** Largest observation; [nan] when empty. *)

val total : t -> float
(** Sum of all observations. *)

val quantile : t -> float -> float
(** [quantile t q] for [q] in [\[0, 1\]], by linear interpolation between
    order statistics; [nan] when empty. The sorted sample array is cached
    and invalidated by {!add}, so repeated quantile queries between
    additions sort only once. *)

val median : t -> float
(** [quantile t 0.5]. *)

val to_list : t -> float list
(** All observations, in insertion order. *)

val summary : t -> string
(** One-line rendering: count, mean, stddev, min, max. *)
