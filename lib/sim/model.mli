(** Operation-duration and notification-delivery models.

    Virtual time is a dimensionless integer tick count. An operation
    started at time [t] completes at [t + duration]; the Notification
    Manager delivers its outcome to the acting designer instantly (the
    tool's own report) and to every teammate after a constant [latency]
    ticks. [latency = 0] reproduces the instant broadcast of the original
    lockstep engine. *)

type op_class = Synthesis | Verification | Decompose

type duration =
  | Uniform of int  (** every operation takes the same number of ticks *)
  | Per_kind of {
      dm_synthesis : int;
      dm_verification : int;
      dm_decompose : int;
    }  (** ticks per operation class *)

val unit_duration : duration
(** [Uniform 1]: virtual time counts executed operations. *)

val duration_for : duration -> op_class -> int

val validate_duration : duration -> (unit, string) result
(** Durations must be non-negative ([0] is allowed: the event queue's
    sequence tie-break keeps same-instant events deterministic). *)

val duration_to_string : duration -> string
(** ["uniform:N"] or ["per-kind:S,V,D"]; inverse of
    {!duration_of_string}. *)

val duration_of_string : string -> (duration, string) result

val delivery_delay : ?extra:int -> latency:int -> own:bool -> unit -> int
(** Ticks between an operation's completion and the delivery of its
    outcome to a given designer: [0] for the acting designer,
    [latency + extra] for teammates. [extra] (default [0]) carries the
    fault injector's per-delivery jitter; the acting designer's own
    feedback is the local tool report and is never jittered. *)

val max_delivery_delay : latency:int -> jitter:int -> int
(** Worst-case teammate transit time under a fault plan with the given
    jitter ceiling — the horizon after which the temporal-property checker
    may treat a still-undelivered notification as a violation rather than
    merely in flight. *)

val validate_latency : int -> (unit, string) result
