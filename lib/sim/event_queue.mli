(** Deterministic priority event queue for discrete-event simulation.

    Entries are ordered by virtual time; entries scheduled for the same
    time pop in insertion order (each push takes the next value of an
    internal sequence counter, and the heap orders by the pair
    [(time, sequence)]). Replays of the same push sequence therefore pop
    in exactly the same order — there is no iteration-order or hash
    nondeterminism to leak into a simulation. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> time:int -> 'a -> unit
(** Schedule a payload at an absolute virtual time.
    @raise Invalid_argument on a negative time. *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the earliest entry — smallest [(time, sequence)]
    pair — or [None] when empty. *)

val peek_time : 'a t -> int option
(** Virtual time of the next entry, without removing it. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val clear : 'a t -> unit
(** Drop every pending entry (the sequence counter keeps advancing, so
    later pushes still order after earlier ones). *)
