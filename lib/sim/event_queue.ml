(* Binary min-heap over (time, seq). The seq tie-break makes the pop order
   a pure function of the push sequence: two entries never compare equal,
   so sift order cannot depend on anything but the keys. *)

type 'a entry = { at : int; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }

let length t = t.size
let is_empty t = t.size = 0

let before a b = a.at < b.at || (a.at = b.at && a.seq < b.seq)

let grow t entry =
  let cap = Array.length t.heap in
  if t.size = cap then begin
    let heap = Array.make (max 8 (2 * cap)) entry in
    Array.blit t.heap 0 heap 0 t.size;
    t.heap <- heap
  end

let push t ~time payload =
  if time < 0 then invalid_arg "Event_queue.push: negative time";
  let entry = { at = time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  grow t entry;
  let i = ref t.size in
  t.size <- t.size + 1;
  t.heap.(!i) <- entry;
  (* sift up *)
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before t.heap.(!i) t.heap.(parent) then begin
      let tmp = t.heap.(parent) in
      t.heap.(parent) <- t.heap.(!i);
      t.heap.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let peek_time t = if t.size = 0 then None else Some t.heap.(0).at

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
        if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = t.heap.(!smallest) in
          t.heap.(!smallest) <- t.heap.(!i);
          t.heap.(!i) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some (top.at, top.payload)
  end

let clear t = t.size <- 0
