(* A FIFO queue: deliveries are consumed in the order they arrived. *)

type 'a t = 'a Queue.t

let create () = Queue.create ()
let push t x = Queue.add x t
let pop t = Queue.take_opt t
let is_empty t = Queue.is_empty t
let length t = Queue.length t

let drain t =
  let rec go acc =
    match Queue.take_opt t with None -> List.rev acc | Some x -> go (x :: acc)
  in
  go []
