(** Per-designer delivery mailbox: a plain FIFO.

    The Notification Manager enqueues deliveries as they arrive on the
    virtual timeline; the designer consumes them — oldest first — at the
    start of its next turn. FIFO order plus the event queue's
    deterministic tie-break means a designer always observes a given
    operation sequence in execution order. *)

type 'a t

val create : unit -> 'a t
val push : 'a t -> 'a -> unit
val pop : 'a t -> 'a option
val drain : 'a t -> 'a list

val is_empty : 'a t -> bool
val length : 'a t -> int
