type 'a t = {
  queue : 'a Event_queue.t;
  mutable clock : int;
  mutable halted : bool;
}

let create () = { queue = Event_queue.create (); clock = 0; halted = false }

let now t = t.clock
let pending t = Event_queue.length t.queue
let halted t = t.halted

let schedule t ~delay payload =
  if delay < 0 then invalid_arg "Scheduler.schedule: negative delay";
  if not t.halted then Event_queue.push t.queue ~time:(t.clock + delay) payload

let halt t =
  t.halted <- true;
  Event_queue.clear t.queue

let step t handler =
  if t.halted then false
  else
    match Event_queue.pop t.queue with
    | None -> false
    | Some (at, payload) ->
      t.clock <- at;
      handler payload;
      true

let run t handler = while step t handler do () done
