type op_class = Synthesis | Verification | Decompose

type duration =
  | Uniform of int
  | Per_kind of { dm_synthesis : int; dm_verification : int; dm_decompose : int }

let unit_duration = Uniform 1

let duration_for model cls =
  match model with
  | Uniform n -> n
  | Per_kind { dm_synthesis; dm_verification; dm_decompose } -> (
    match cls with
    | Synthesis -> dm_synthesis
    | Verification -> dm_verification
    | Decompose -> dm_decompose)

let validate_duration = function
  | Uniform n when n < 0 -> Error "uniform duration must be non-negative"
  | Uniform _ -> Ok ()
  | Per_kind { dm_synthesis; dm_verification; dm_decompose } ->
    if dm_synthesis < 0 || dm_verification < 0 || dm_decompose < 0 then
      Error "per-kind durations must be non-negative"
    else Ok ()

let duration_to_string = function
  | Uniform n -> Printf.sprintf "uniform:%d" n
  | Per_kind { dm_synthesis; dm_verification; dm_decompose } ->
    Printf.sprintf "per-kind:%d,%d,%d" dm_synthesis dm_verification dm_decompose

let duration_of_string s =
  let int_of part =
    match int_of_string_opt (String.trim part) with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "bad duration component %S" part)
  in
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "bad duration model %S (uniform:N | per-kind:S,V,D)" s)
  | Some i -> (
    let head = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    match head with
    | "uniform" -> Result.map (fun n -> Uniform n) (int_of rest)
    | "per-kind" -> (
      match String.split_on_char ',' rest with
      | [ a; b; c ] ->
        Result.bind (int_of a) (fun dm_synthesis ->
            Result.bind (int_of b) (fun dm_verification ->
                Result.map
                  (fun dm_decompose ->
                    Per_kind { dm_synthesis; dm_verification; dm_decompose })
                  (int_of c)))
      | _ ->
        Error
          (Printf.sprintf "bad per-kind duration %S (expected per-kind:S,V,D)" s))
    | _ ->
      Error (Printf.sprintf "bad duration model %S (uniform:N | per-kind:S,V,D)" s))

let delivery_delay ?(extra = 0) ~latency ~own () =
  if own then 0 else latency + extra

let max_delivery_delay ~latency ~jitter = latency + max 0 jitter

let validate_latency latency =
  if latency < 0 then Error "latency must be non-negative" else Ok ()
