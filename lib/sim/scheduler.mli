(** A virtual-clock discrete-event loop.

    The scheduler owns a {!Event_queue} and an integer clock. [run] pops
    the earliest pending event, advances the clock to its timestamp (time
    never moves backwards: [schedule] only places events at
    [now + delay], [delay >= 0]), and invokes the handler, which may
    schedule further events; it returns when the queue is empty or the
    simulation is halted.

    Determinism: the clock and the pop order are pure functions of the
    schedule-call sequence (see {!Event_queue}), so two runs issuing the
    same calls see the same interleaving. *)

type 'a t

val create : unit -> 'a t

val now : 'a t -> int
(** Current virtual time (ticks). Starts at [0]. *)

val schedule : 'a t -> delay:int -> 'a -> unit
(** Enqueue an event [delay] ticks from [now]. Events scheduled for the
    same instant fire in schedule order. No-op after {!halt}.
    @raise Invalid_argument on a negative delay. *)

val halt : 'a t -> unit
(** Stop the simulation: drop every pending event; [run] returns after
    the current handler does. The clock keeps its final value. *)

val halted : 'a t -> bool
val pending : 'a t -> int

val step : 'a t -> ('a -> unit) -> bool
(** Process exactly one event; [false] when nothing was pending (or the
    scheduler is halted). *)

val run : 'a t -> ('a -> unit) -> unit
(** [step] until exhaustion or {!halt}. *)
