(** Fork-based worker pool for embarrassingly parallel batch work.

    [map_serialized] shards a list of work items across [jobs] worker
    processes ([Unix.fork] + pipes — no OCaml 5 domain dependency), runs
    the item function in each child, ships each result back to the parent
    as an opaque serialized string over a length-framed pipe protocol, and
    reassembles the results {b in item order}. Because every item is
    processed by exactly the same function the caller would have run
    in-process, the output is identical to [List.map f items] whenever [f]
    is deterministic per item — parallelism never changes a result, only
    wall time.

    Failure contract: a worker that raises, dies, or writes a malformed
    frame never degrades into a silent partial result. The parent raises
    {!Worker_error} carrying the index of the (lowest-indexed) failing
    item, so callers can name the exact work item (e.g. the random seed)
    in their error message. *)

exception Worker_error of { index : int; message : string }
(** Raised by {!map_serialized} when any item fails: [index] is the
    0-based position of the failing item in the input list ([message]
    explains how it failed — an exception in the item function, a worker
    process death, or an undecodable result frame). When several items
    fail, the lowest index is reported, deterministically. *)

val available : unit -> bool
(** Whether [Unix.fork] is usable on this platform. When [false],
    {!map_serialized} silently runs in-process (equivalent results). *)

val cpu_count : unit -> int
(** Number of online CPUs (from [/proc/cpuinfo]); [1] when undetectable.
    A sensible default for [jobs]. *)

val map_serialized : jobs:int -> f:('a -> string) -> 'a list -> string list
(** [map_serialized ~jobs ~f items] is [List.map f items], computed by up
    to [jobs] forked workers (item [i] goes to worker [i mod jobs]).
    Results come back in item order. With [jobs <= 1], a single-item
    list, or fork unavailable, runs in-process with no forking at all.

    @raise Worker_error as per the failure contract above. *)
