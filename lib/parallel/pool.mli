(** Fork-based worker pool for embarrassingly parallel batch work, with
    supervision.

    [map_serialized] shards a list of work items across [jobs] worker
    processes ([Unix.fork] + pipes — no OCaml 5 domain dependency), runs
    the item function in each child, ships each result back to the parent
    as an opaque serialized string over a length-framed pipe protocol, and
    reassembles the results {b in item order}. Because every item is
    processed by exactly the same function the caller would have run
    in-process, the output is identical to [List.map f items] whenever [f]
    is deterministic per item — parallelism never changes a result, only
    wall time.

    The parent {b supervises} its workers: a worker that crashes or hangs
    loses only its in-flight item's attempt, not the batch. The dead
    worker's undelivered shard is requeued to a fresh child (with
    exponential backoff between respawns of a repeatedly-crashing item),
    and only an item whose own retry budget is exhausted becomes a
    failure. An item function that {e raises} is deterministic and is not
    retried — the exception is the result.

    Failure contract: a failed item never degrades into a silent partial
    result. Under {!map_serialized} the parent raises {!Worker_error}
    carrying the index of the (lowest-indexed) failing item, so callers
    can name the exact work item (e.g. the random seed) in their error
    message. Under {!map_partial} every item instead reports
    individually, [Ok payload] or [Error message], so survivors of a
    partially-failed batch remain usable. *)

exception Worker_error of { index : int; message : string }
(** Raised by {!map_serialized} when any item fails: [index] is the
    0-based position of the failing item in the input list ([message]
    explains how it failed — an exception in the item function, a worker
    process death that outlasted the retry budget, a per-job timeout, or
    an undecodable result frame). When several items fail, the lowest
    index is reported, deterministically. *)

type supervision_event = {
  sv_index : int;  (** item charged with the failed attempt *)
  sv_attempt : int;  (** 1-based attempt number that just failed *)
  sv_reason : string;  (** how the worker failed *)
  sv_requeued : int;  (** undelivered items handed to the fresh worker *)
}
(** One worker failure as seen by the supervisor, reported through
    [?on_retry] so callers can trace or log requeues. *)

val default_retries : int
(** Extra attempts granted to each item beyond its first ([2]). *)

val available : unit -> bool
(** Whether [Unix.fork] is usable in this process. [false] on non-Unix
    platforms, and permanently [false] once any domain has been spawned
    ({!block_fork}) — the OCaml 5 runtime forbids forking a process that
    has ever been multicore. When [false], the maps silently run
    in-process (equivalent results, no fault isolation). *)

val block_fork : unit -> unit
(** Record that this process has spawned a domain, making {!available}
    return [false] from now on. Called by {!Dpool} before its first
    [Domain.spawn]; callers never need this directly. *)

val cpu_count : unit -> int
(** Number of online CPUs (from [/proc/cpuinfo]); [1] when undetectable.
    A sensible default for [jobs]. *)

val map_serialized :
  ?retries:int ->
  ?job_timeout:float ->
  ?on_retry:(supervision_event -> unit) ->
  jobs:int ->
  f:('a -> string) ->
  'a list ->
  string list
(** [map_serialized ~jobs ~f items] is [List.map f items], computed by up
    to [jobs] forked workers (item [i] starts on worker [i mod jobs]).
    Results come back in item order. With [jobs <= 1], a single-item
    list, or fork unavailable, runs in-process with no forking at all.

    [?retries] (default {!default_retries}) bounds how many {e extra}
    attempts a crashing or hung item gets before it is declared failed;
    [?job_timeout] (seconds, default none) SIGKILLs and requeues a worker
    that makes no observable progress for that long, so a hung child can
    never wedge the batch; [?on_retry] observes each supervised failure.

    @raise Worker_error as per the failure contract above. *)

val map_partial :
  ?retries:int ->
  ?job_timeout:float ->
  ?on_retry:(supervision_event -> unit) ->
  jobs:int ->
  f:('a -> string) ->
  'a list ->
  (string, string) result list
(** Like {!map_serialized} but never raises {!Worker_error}: each
    position of the returned list is [Ok payload] or [Error message] for
    the item at the same position of the input, so a batch with a few
    poisoned items still yields every survivor. *)
