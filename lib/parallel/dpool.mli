(** Shared-memory domain pool: the throughput backend.

    The OCaml 5 counterpart of {!Pool}: [map ~jobs ~f items] is
    [List.map f items] computed by up to [jobs] domains (the caller
    participates as one of them), self-scheduling items off a shared
    atomic counter. Unlike the fork pool there is no serialization, no
    pipes and no per-shard process — results are ordinary heap values and
    the domains share the same runtime.

    The trade-off is fault isolation: a worker that calls [exit], drives
    the runtime into the ground, or hangs takes the whole process with it
    (there is no supervisor to respawn it), so batches that must survive
    hostile item functions belong on {!Pool}. An item function that
    {e raises} is handled: the exception is caught per item and reported
    through the same failure contract as the fork pool.

    [f] must be domain-safe: it may not touch shared mutable state. The
    simulation runner qualifies — each run builds its own network and Rng
    from the scenario closure.

    Spawning the first domain permanently disables [Unix.fork] in this
    process (an OCaml 5 runtime rule), so {!map} calls
    {!Pool.block_fork} first: any later {!Pool} map degrades to its
    inline fallback instead of raising. Run fork-pool batches before
    domain-pool batches when a process needs both. *)

val map : jobs:int -> f:('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs ~f items] is [List.map f items]. With [jobs <= 1] or a
    single item, runs on the calling domain only (no spawn).

    @raise Pool.Worker_error when [f] raised for some item: carries the
    lowest failing index and a ["worker raised: ..."] message, matching
    the fork pool's deterministic-raise contract. *)

val map_partial : jobs:int -> f:('a -> 'b) -> 'a list -> ('b, string) result list
(** Like {!map} but per-item: [Ok result] or [Error message] in input
    order, never raising {!Pool.Worker_error}. *)
