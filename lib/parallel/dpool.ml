(* Shared-memory domain pool.

   Work distribution is chunk-handoff self-scheduling: one Atomic counter
   of the next unclaimed item index; each domain (the spawned workers and
   the calling domain, which participates) grabs items with
   [fetch_and_add] until the list is drained. No work queue, no
   stealing — for batches of similar-cost items (seed sweeps) this is
   within noise of a work-stealing deque and has no failure modes.

   Each result cell is written by exactly one domain and read by the
   caller only after [Domain.join] of every worker, which establishes the
   necessary happens-before edge; the item array is read-only after
   construction. No other state is shared — the item function must itself
   be domain-safe (the simulation runner is: each run builds its own
   network, Rng and DCM from the scenario closure). *)

let run_batch ~jobs ~f items =
  let arr = Array.of_list items in
  let n = Array.length arr in
  let out = Array.make n None in
  let next = Atomic.make 0 in
  let rec work () =
    let i = Atomic.fetch_and_add next 1 in
    if i < n then begin
      let r =
        match f arr.(i) with
        | v -> Ok v
        | exception e -> Error ("worker raised: " ^ Printexc.to_string e)
      in
      out.(i) <- Some r;
      work ()
    end
  in
  let helpers = max 0 (min jobs n - 1) in
  if helpers > 0 then Pool.block_fork ();
  let domains = Array.init helpers (fun _ -> Domain.spawn work) in
  work ();
  Array.iter Domain.join domains;
  Array.map (function Some r -> r | None -> assert false) out

let map_partial ~jobs ~f items =
  Array.to_list (run_batch ~jobs ~f items)

let map ~jobs ~f items =
  let results = run_batch ~jobs ~f items in
  let failure = ref None in
  (* scan right-to-left so the surviving failure is the lowest index,
     matching the fork pool's deterministic failure contract *)
  for i = Array.length results - 1 downto 0 do
    match results.(i) with
    | Error message -> failure := Some (i, message)
    | Ok _ -> ()
  done;
  match !failure with
  | Some (index, message) -> raise (Pool.Worker_error { index; message })
  | None ->
    Array.to_list
      (Array.map (function Ok v -> v | Error _ -> assert false) results)
