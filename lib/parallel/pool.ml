(* Fork-based worker pool.

   Wire protocol (child -> parent, one pipe per worker): a sequence of
   frames, each a header line "ok <index> <length>\n" or
   "err <index> <length>\n" followed by exactly <length> payload bytes
   (the serialized result, or the exception text). Length framing makes
   the protocol safe for arbitrary payload bytes — including newlines —
   and lets the parent detect truncation: a worker that dies mid-write
   leaves a recognizably incomplete tail, never a plausible result. *)

exception Worker_error of { index : int; message : string }

let available () = Sys.os_type = "Unix"

let cpu_count () =
  match In_channel.with_open_text "/proc/cpuinfo" In_channel.input_all with
  | contents ->
    let n =
      List.fold_left
        (fun acc line ->
          if String.length line >= 9 && String.sub line 0 9 = "processor" then
            acc + 1
          else acc)
        0
        (String.split_on_char '\n' contents)
    in
    max 1 n
  | exception Sys_error _ -> 1

(* {2 In-process fallback} *)

let map_inline ~f items =
  List.mapi
    (fun index item ->
      try f item
      with e ->
        raise (Worker_error { index; message = Printexc.to_string e }))
    items

(* {2 Child side} *)

let write_all fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write_substring fd s !off (n - !off)
  done

let frame tag index payload =
  Printf.sprintf "%s %d %d\n%s" tag index (String.length payload) payload

(* Runs in the forked child: compute this worker's shard in item order,
   streaming one frame per item, then exit without running the parent's
   at_exit handlers (we share its heap image). *)
let child_main wfd ~f shard =
  let status =
    match
      List.iter
        (fun (index, item) ->
          let tag, payload =
            match f item with
            | payload -> ("ok", payload)
            | exception e -> ("err", Printexc.to_string e)
          in
          write_all wfd (frame tag index payload))
        shard
    with
    | () -> 0
    | exception _ -> 2 (* pipe broke or f's result failed to serialize *)
  in
  (try Unix.close wfd with Unix.Unix_error _ -> ());
  Unix._exit status

(* {2 Parent side: frame parsing} *)

type parsed = {
  ok : (int * string) list;
  errs : (int * string) list;
  malformed : bool; (* trailing bytes that do not form a complete frame *)
}

let parse_frames s =
  let len = String.length s in
  let rec go pos ok errs =
    if pos >= len then { ok; errs; malformed = false }
    else
      match String.index_from_opt s pos '\n' with
      | None -> { ok; errs; malformed = true }
      | Some nl -> (
        let header = String.sub s pos (nl - pos) in
        match String.split_on_char ' ' header with
        | [ tag; index; length ] -> (
          match (int_of_string_opt index, int_of_string_opt length) with
          | Some index, Some length
            when length >= 0 && nl + 1 + length <= len -> (
            let payload = String.sub s (nl + 1) length in
            let next = nl + 1 + length in
            match tag with
            | "ok" -> go next ((index, payload) :: ok) errs
            | "err" -> go next ok ((index, payload) :: errs)
            | _ -> { ok; errs; malformed = true })
          | _ -> { ok; errs; malformed = true })
        | _ -> { ok; errs; malformed = true })
  in
  go 0 [] []

(* Drain every worker pipe concurrently (a worker can outpace the pipe
   buffer, so reading sequentially could deadlock) until all report EOF. *)
let drain readers =
  let buffers = List.map (fun (w, fd) -> (fd, (w, Buffer.create 4096))) readers in
  let chunk = Bytes.create 65536 in
  let open_fds = ref (List.map snd readers) in
  while !open_fds <> [] do
    let ready, _, _ =
      try Unix.select !open_fds [] [] (-1.)
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    List.iter
      (fun fd ->
        let _, buf = List.assoc fd buffers in
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 ->
          Unix.close fd;
          open_fds := List.filter (fun fd' -> fd' <> fd) !open_fds
        | n -> Buffer.add_subbytes buf chunk 0 n
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
      ready
  done;
  List.map (fun (_, (w, buf)) -> (w, Buffer.contents buf)) buffers

let status_to_string = function
  | Unix.WEXITED 0 -> "exited cleanly"
  | Unix.WEXITED n -> Printf.sprintf "exited with status %d" n
  | Unix.WSIGNALED n -> Printf.sprintf "killed by signal %d" n
  | Unix.WSTOPPED n -> Printf.sprintf "stopped by signal %d" n

(* {2 Parent side: orchestration} *)

let map_forked ~jobs ~f items =
  let n = Array.length items in
  let shard w =
    let rec go i acc =
      if i >= n then List.rev acc
      else go (i + 1) (if i mod jobs = w then (i, items.(i)) :: acc else acc)
    in
    go 0 []
  in
  (* Flush before forking so buffered output is not duplicated in children. *)
  flush stdout;
  flush stderr;
  let workers = ref [] in
  (* (worker, pid, read_fd), newest first *)
  (try
     for w = 0 to jobs - 1 do
       let rfd, wfd = Unix.pipe ~cloexec:false () in
       match Unix.fork () with
       | 0 ->
         (* Child: drop every parent-side fd we know about, keep only our
            own write end (sibling read ends would otherwise keep sibling
            pipes open past their writers' death). *)
         Unix.close rfd;
         List.iter
           (fun (_, _, fd) -> try Unix.close fd with Unix.Unix_error _ -> ())
           !workers;
         child_main wfd ~f (shard w)
       | pid ->
         Unix.close wfd;
         workers := (w, pid, rfd) :: !workers
     done
   with e ->
     (* Fork or pipe creation failed partway: reap what exists, then give
        the caller the in-process result rather than a capacity error. *)
     List.iter
       (fun (_, pid, fd) ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
         try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
       !workers;
     workers := [];
     ignore e);
  match !workers with
  | [] -> map_inline ~f (Array.to_list items)
  | workers ->
    let payloads = drain (List.map (fun (w, _, fd) -> (w, fd)) workers) in
    let statuses =
      List.map
        (fun (w, pid, _) ->
          let rec wait () =
            match Unix.waitpid [] pid with
            | _, status -> status
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
          in
          (w, wait ()))
        workers
    in
    let results = Array.make n None in
    let failures = ref [] in
    let fail index message = failures := (index, message) :: !failures in
    List.iter
      (fun (w, raw) ->
        let parsed = parse_frames raw in
        List.iter
          (fun (index, payload) ->
            if index >= 0 && index < n && index mod jobs = w then
              results.(index) <- Some payload)
          parsed.ok;
        List.iter
          (fun (index, message) ->
            let index = if index >= 0 && index < n then index else w in
            fail index ("worker raised: " ^ message))
          parsed.errs;
        let status = List.assoc w statuses in
        let died = status <> Unix.WEXITED 0 in
        if parsed.malformed || died then
          (* Name every shard item the worker never delivered. *)
          List.iter
            (fun (index, _) ->
              if results.(index) = None && not (List.mem_assoc index !failures)
              then
                fail index
                  (Printf.sprintf "worker %d %s%s before delivering a result"
                     w
                     (status_to_string status)
                     (if parsed.malformed then " (malformed result frame)"
                      else "")))
            (shard w))
      payloads;
    (* Belt and braces: any still-missing result is a failure too. *)
    Array.iteri
      (fun index r ->
        if r = None && not (List.mem_assoc index !failures) then
          fail index "worker delivered no result")
      results;
    (match List.sort compare !failures with
    | (index, message) :: _ -> raise (Worker_error { index; message })
    | [] -> ());
    Array.to_list (Array.map Option.get results)

let map_serialized ~jobs ~f items =
  let n = List.length items in
  let jobs = min jobs n in
  if jobs <= 1 || not (available ()) then map_inline ~f items
  else map_forked ~jobs ~f (Array.of_list items)
