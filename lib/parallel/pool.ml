(* Fork-based worker pool with supervision.

   Wire protocol (child -> parent, one pipe per worker): a sequence of
   frames, each a header line "ok <index> <length>\n" or
   "err <index> <length>\n" followed by exactly <length> payload bytes
   (the serialized result, or the exception text). Length framing makes
   the protocol safe for arbitrary payload bytes — including newlines —
   and lets the parent detect truncation: a worker that dies mid-write
   leaves a recognizably incomplete tail, never a plausible result.

   The parent parses frames incrementally as bytes arrive, so at any
   moment it knows exactly which items a worker still owes (its pending
   list, in send order). When a worker dies, garbles its stream, or
   stalls past the per-job timeout, the in-flight item — the head of
   that pending list — is charged one attempt, and the undelivered tail
   is requeued to a freshly forked child. Items whose budget is
   exhausted become per-item failures instead of poisoning the batch;
   "err" frames (the item function itself raised) are deterministic and
   terminal, never retried. *)

exception Worker_error of { index : int; message : string }

type supervision_event = {
  sv_index : int;
  sv_attempt : int;
  sv_reason : string;
  sv_requeued : int;
}

let default_retries = 2

(* Once any domain has been spawned, the OCaml 5 runtime permanently
   forbids Unix.fork in this process ("Unix.fork may not be called while
   other domains were created" — the multicore latch survives
   Domain.join). Dpool flips this before its first spawn so every fork
   path degrades to the inline fallback instead of raising. *)
let fork_blocked = Atomic.make false
let block_fork () = Atomic.set fork_blocked true

let available () = Sys.os_type = "Unix" && not (Atomic.get fork_blocked)

let cpu_count () =
  match In_channel.with_open_text "/proc/cpuinfo" In_channel.input_all with
  | contents ->
    let n =
      List.fold_left
        (fun acc line ->
          if String.length line >= 9 && String.sub line 0 9 = "processor" then
            acc + 1
          else acc)
        0
        (String.split_on_char '\n' contents)
    in
    max 1 n
  | exception Sys_error _ -> 1

(* {2 In-process execution (fallback, and fork-exhaustion recovery)} *)

let attempt_inline ~f item =
  match f item with
  | payload -> Ok payload
  | exception e -> Error ("worker raised: " ^ Printexc.to_string e)

(* {2 Child side} *)

(* A signal landing mid-write must not kill the worker between frames:
   retry the interrupted (or transiently unwritable) syscall instead. *)
let write_all fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    match Unix.write_substring fd s !off (n - !off) with
    | written -> off := !off + written
    | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> ()
  done

let frame tag index payload =
  Printf.sprintf "%s %d %d\n%s" tag index (String.length payload) payload

(* Runs in the forked child: compute this worker's shard in item order,
   streaming one frame per item, then exit without running the parent's
   at_exit handlers (we share its heap image). SIGPIPE is ignored so a
   dead parent turns writes into EPIPE — a clean status-2 exit — rather
   than a signal death. *)
let child_main wfd ~f shard =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let status =
    match
      List.iter
        (fun (index, item) ->
          let tag, payload =
            match f item with
            | payload -> ("ok", payload)
            | exception e -> ("err", Printexc.to_string e)
          in
          write_all wfd (frame tag index payload))
        shard
    with
    | () -> 0
    | exception _ -> 2 (* pipe broke or f's result failed to serialize *)
  in
  (try Unix.close wfd with Unix.Unix_error _ -> ());
  Unix._exit status

(* {2 Parent side: incremental frame parsing} *)

type frame_item = F_ok of int * string | F_err of int * string

(* Parse every complete frame at the front of [s]. Returns the frames,
   the offset where the unconsumed tail starts, and whether that tail is
   definitely garbage (malformed header) as opposed to merely incomplete
   (more bytes still in flight). A legitimate header is a few dozen
   bytes, so a long newline-less prefix is garbage, not patience. *)
let parse_available s =
  let len = String.length s in
  let rec go pos acc =
    if pos >= len then (List.rev acc, pos, false)
    else
      match String.index_from_opt s pos '\n' with
      | None -> (List.rev acc, pos, len - pos > 256)
      | Some nl -> (
        let header = String.sub s pos (nl - pos) in
        match String.split_on_char ' ' header with
        | [ tag; index; length ] -> (
          match (int_of_string_opt index, int_of_string_opt length) with
          | Some index, Some length when length >= 0 ->
            if nl + 1 + length > len then (List.rev acc, pos, false)
            else (
              let payload = String.sub s (nl + 1) length in
              let next = nl + 1 + length in
              match tag with
              | "ok" -> go next (F_ok (index, payload) :: acc)
              | "err" -> go next (F_err (index, payload) :: acc)
              | _ -> (List.rev acc, pos, true))
          | _ -> (List.rev acc, pos, true))
        | _ -> (List.rev acc, pos, true))
  in
  go 0 []

let status_to_string = function
  | Unix.WEXITED 0 -> "exited cleanly"
  | Unix.WEXITED n -> Printf.sprintf "exited with status %d" n
  | Unix.WSIGNALED n -> Printf.sprintf "killed by signal %d" n
  | Unix.WSTOPPED n -> Printf.sprintf "stopped by signal %d" n

(* {2 Parent side: supervised orchestration} *)

type 'a worker = {
  w_pid : int;
  w_fd : Unix.file_descr;
  w_buf : Buffer.t; (* bytes received but not yet forming a frame *)
  mutable w_pending : (int * 'a) list; (* undelivered items, send order *)
  mutable w_progress : float; (* last observable activity, for timeouts *)
}

(* Runs the whole supervised batch and fills [results] — a plain array
   keyed by item index, so every bookkeeping step (record a result,
   charge an attempt, find survivors) is O(1) per item rather than the
   assoc-list scans the unsupervised pool used. *)
let run_supervised ~retries ~job_timeout ~on_retry ~jobs ~f items results =
  let n = Array.length items in
  let attempts = Array.make n 0 in
  let shard w =
    let rec go i acc =
      if i >= n then List.rev acc
      else go (i + 1) (if i mod jobs = w then (i, items.(i)) :: acc else acc)
    in
    go 0 []
  in
  let now () = Unix.gettimeofday () in
  let reap pid =
    let rec wait () =
      match Unix.waitpid [] pid with
      | _, status -> status
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
    in
    wait ()
  in
  let active = ref [] in
  let respawns = ref [] in
  (* (ready_at, pending items), unordered *)
  let spawn pending =
    match Unix.pipe ~cloexec:false () with
    | exception Unix.Unix_error _ -> None
    | rfd, wfd -> (
      match Unix.fork () with
      | exception Unix.Unix_error _ ->
        (try Unix.close rfd with Unix.Unix_error _ -> ());
        (try Unix.close wfd with Unix.Unix_error _ -> ());
        None
      | 0 ->
        (* Child: drop every parent-side fd we know about, keep only our
           own write end (sibling read ends would otherwise keep sibling
           pipes open past their writers' death). *)
        Unix.close rfd;
        List.iter
          (fun w -> try Unix.close w.w_fd with Unix.Unix_error _ -> ())
          !active;
        child_main wfd ~f pending
      | pid ->
        Unix.close wfd;
        Some
          {
            w_pid = pid;
            w_fd = rfd;
            w_buf = Buffer.create 4096;
            w_pending = pending;
            w_progress = now ();
          })
  in
  let run_inline pending =
    List.iter
      (fun (index, item) -> results.(index) <- Some (attempt_inline ~f item))
      pending
  in
  (* A worker failed with undelivered items: the in-flight head item is
     charged one attempt (dropped entirely once its budget is spent),
     and whatever the worker still owes is requeued to a fresh child —
     immediately on a first failure, after exponentially growing pauses
     when the same item keeps killing its workers. *)
  let handle_failure w reason =
    match w.w_pending with
    | [] -> ()
    | (head, _) :: tail ->
      attempts.(head) <- attempts.(head) + 1;
      let attempt = attempts.(head) in
      let exhausted = attempt > retries in
      if exhausted then
        results.(head) <- Some (Error (reason ^ " before delivering a result"));
      let requeue = if exhausted then tail else w.w_pending in
      (match on_retry with
      | Some fn ->
        fn
          {
            sv_index = head;
            sv_attempt = attempt;
            sv_reason = reason;
            sv_requeued = List.length requeue;
          }
      | None -> ());
      if requeue <> [] then begin
        let delay =
          if exhausted || attempt <= 1 then 0.
          else min 1.0 (0.05 *. (2. ** float_of_int (attempt - 2)))
        in
        respawns := (now () +. delay, requeue) :: !respawns
      end
  in
  let retire w =
    (try Unix.close w.w_fd with Unix.Unix_error _ -> ());
    active := List.filter (fun w' -> w' != w) !active
  in
  let kill_worker w reason =
    (try Unix.kill w.w_pid Sys.sigkill with Unix.Unix_error _ -> ());
    ignore (reap w.w_pid);
    retire w;
    handle_failure w reason
  in
  let handle_eof w =
    let status = reap w.w_pid in
    retire w;
    if w.w_pending <> [] then begin
      let detail =
        if Buffer.length w.w_buf > 0 then " (incomplete result frame)" else ""
      in
      handle_failure w ("worker " ^ status_to_string status ^ detail)
    end
  in
  (* Consume every complete frame buffered for [w], resolving the
     matching pending items. Frames arrive in send order, so the match
     is almost always the pending head. *)
  let consume_frames w =
    let contents = Buffer.contents w.w_buf in
    let frames, tail, malformed = parse_available contents in
    Buffer.clear w.w_buf;
    Buffer.add_substring w.w_buf contents tail (String.length contents - tail);
    List.iter
      (fun fr ->
        let record index outcome =
          if List.mem_assoc index w.w_pending then begin
            results.(index) <- Some outcome;
            w.w_pending <- List.remove_assoc index w.w_pending
          end
        in
        match fr with
        | F_ok (index, payload) -> record index (Ok payload)
        | F_err (index, message) ->
          record index (Error ("worker raised: " ^ message)))
      frames;
    if malformed then `Malformed else `Ok
  in
  (* Flush before forking so buffered output is not duplicated in
     children. *)
  flush stdout;
  flush stderr;
  (* Initial spawn: one worker per round-robin shard. If fork capacity
     runs out before the pool exists, tear down and compute in-process
     rather than failing on a resource error. *)
  let initial_ok = ref true in
  (try
     for w = 0 to jobs - 1 do
       match shard w with
       | [] -> ()
       | pending -> (
         match spawn pending with
         | Some worker -> active := worker :: !active
         | None -> raise Exit)
     done
   with Exit -> initial_ok := false);
  if not !initial_ok then begin
    List.iter
      (fun w ->
        (try Unix.close w.w_fd with Unix.Unix_error _ -> ());
        (try Unix.kill w.w_pid Sys.sigterm with Unix.Unix_error _ -> ());
        try ignore (reap w.w_pid) with Unix.Unix_error _ -> ())
      !active;
    active := [];
    respawns := [];
    run_inline
      (Array.to_list (Array.mapi (fun index item -> (index, item)) items))
  end;
  let chunk = Bytes.create 65536 in
  while !active <> [] || !respawns <> [] do
    (* Launch every respawn whose backoff has elapsed. A failed respawn
       fork means the machine lost fork capacity mid-batch: finish those
       items in-process instead of spinning. *)
    let t = now () in
    let due, later = List.partition (fun (ready, _) -> ready <= t) !respawns in
    respawns := later;
    List.iter
      (fun (_, pending) ->
        match spawn pending with
        | Some worker -> active := worker :: !active
        | None -> run_inline pending)
      due;
    if !active <> [] || !respawns <> [] then begin
      (* Never block past the nearest supervision deadline: a stalled
         worker's kill time, or a pending respawn's ready time. With
         neither armed, block until pipe activity as before. *)
      let deadline =
        let worker_deadline =
          match job_timeout with
          | None -> None
          | Some limit ->
            List.fold_left
              (fun acc w ->
                if w.w_pending = [] then acc
                else
                  let d = w.w_progress +. limit in
                  match acc with
                  | None -> Some d
                  | Some d' -> Some (min d d'))
              None !active
        in
        List.fold_left
          (fun acc (ready, _) ->
            match acc with
            | None -> Some ready
            | Some d -> Some (min d ready))
          worker_deadline !respawns
      in
      let timeout =
        match deadline with
        | None -> -1.
        | Some d -> max 0. (d -. now ()) +. 0.001
      in
      let fds = List.map (fun w -> w.w_fd) !active in
      let ready, _, _ =
        try Unix.select fds [] [] timeout
        with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      List.iter
        (fun fd ->
          match List.find_opt (fun w -> w.w_fd = fd) !active with
          | None -> () (* worker already retired this round *)
          | Some w -> (
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 -> handle_eof w
            | nread -> (
              w.w_progress <- now ();
              Buffer.add_subbytes w.w_buf chunk 0 nread;
              match consume_frames w with
              | `Ok -> ()
              | `Malformed -> kill_worker w "worker garbled its result stream")
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()))
        ready;
      match job_timeout with
      | None -> ()
      | Some limit ->
        let t = now () in
        let expired =
          List.filter
            (fun w -> w.w_pending <> [] && t -. w.w_progress > limit)
            !active
        in
        List.iter
          (fun w ->
            kill_worker w
              (Printf.sprintf "worker timed out after %.3gs" limit))
          expired
    end
  done

let map_results ~retries ~job_timeout ~on_retry ~jobs ~f items =
  let items = Array.of_list items in
  let n = Array.length items in
  let jobs = min jobs n in
  let results = Array.make n None in
  if jobs <= 1 || not (available ()) then
    Array.iteri
      (fun index item -> results.(index) <- Some (attempt_inline ~f item))
      items
  else run_supervised ~retries ~job_timeout ~on_retry ~jobs ~f items results;
  (* Belt and braces: a result slot nothing ever filled is a failure. *)
  Array.map
    (function Some r -> r | None -> Error "worker delivered no result")
    results

let map_partial ?(retries = default_retries) ?job_timeout ?on_retry ~jobs ~f
    items =
  Array.to_list (map_results ~retries ~job_timeout ~on_retry ~jobs ~f items)

let map_serialized ?(retries = default_retries) ?job_timeout ?on_retry ~jobs ~f
    items =
  let results = map_results ~retries ~job_timeout ~on_retry ~jobs ~f items in
  let failure = ref None in
  Array.iteri
    (fun index r ->
      match r with
      | Error message when !failure = None -> failure := Some (index, message)
      | _ -> ())
    results;
  (match !failure with
  | Some (index, message) -> raise (Worker_error { index; message })
  | None -> ());
  Array.to_list
    (Array.map (function Ok payload -> payload | Error _ -> assert false)
       results)
