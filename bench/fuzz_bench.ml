(* Schedule-fuzzing throughput: how many random (seed, latency, duration,
   fault-plan) schedules per second the fuzzer can run and check on the
   sensor scenario. The run doubles as a soundness gate — every schedule
   must satisfy the whole temporal-property suite. *)

module Fuzz = Adpm_check.Fuzz
module Dpm = Adpm_core.Dpm

type result = {
  schedules : int;  (** schedules run across both modes *)
  throughput : float;  (** schedules per second *)
  clean : bool;  (** no property violated, no truncated verdict *)
}

let run ~count () =
  let scenario = Adpm_scenarios.Sensor.scenario in
  let t0 = Unix.gettimeofday () in
  let reports =
    List.map
      (fun mode -> Fuzz.fuzz ~max_ops:400 ~mode ~seed:11 ~count scenario)
      [ Dpm.Conventional; Dpm.Adpm ]
  in
  let dt = Unix.gettimeofday () -. t0 in
  let schedules =
    List.fold_left (fun acc r -> acc + r.Fuzz.fz_schedules) 0 reports
  in
  let clean =
    List.for_all (fun r -> r.Fuzz.fz_violation = None) reports
  in
  {
    schedules;
    throughput = (if dt > 0. then float_of_int schedules /. dt else 0.);
    clean;
  }

let render r =
  Printf.sprintf
    "sensor, both modes: %d schedules checked, %.1f schedules/s, %s\n"
    r.schedules r.throughput
    (if r.clean then "all properties hold" else "PROPERTY VIOLATED")
