(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (Figs. 2-4 walkthrough, Fig. 7 profiles, Fig. 8
   statistics window, Fig. 9 performance/penalty aggregates, Fig. 10
   tightness sweep, plus the heuristic ablations), then runs bechamel
   micro-benchmarks of the underlying engines.

   Per-experiment wall time and the Fig. 9 headline ratios are written to
   BENCH_results.json in the working directory, so CI can diff successive
   runs without scraping stdout.

   Environment knobs:
     ADPM_BENCH_SEEDS  seeds per Fig. 9 cell (default 60, as in the paper)
     ADPM_BENCH_FAST   set to shrink every experiment (CI smoke mode)
     ADPM_BENCH_JOBS   worker processes for multi-seed experiments
                       (default: one per CPU core) *)

open Adpm_experiments
module Json = Adpm_trace.Json
module Pool = Adpm_parallel.Pool
module Engine = Adpm_teamsim.Engine

let getenv_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> default)
  | None -> default

let fast = Sys.getenv_opt "ADPM_BENCH_FAST" <> None

let section title = Printf.printf "\n%s\n%s\n\n" title (String.make 72 '=')

let timings : (string * float) list ref = ref []

let timed name f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  timings := (name, Unix.gettimeofday () -. t0) :: !timings;
  v

let fault_sweep_json (faults : Exp_faults.result) =
  let v = Exp_faults.verdicts faults in
  Json.Obj
    ([
       ( "completion_by_drop",
         Json.Arr
           (List.map
              (fun (drop, conv, adpm) ->
                Json.Obj
                  [
                    ("drop", Json.Num drop);
                    ("conv", Json.Num conv);
                    ("adpm", Json.Num adpm);
                  ])
              v.Exp_faults.completion_by_drop) );
       ( "adpm_degrades_slower",
         Json.Bool v.Exp_faults.adpm_degrades_slower );
     ]
    @
    match v.Exp_faults.crash_completion with
    | None -> []
    | Some (conv, adpm) ->
      [
        ( "crash",
          Json.Obj [ ("conv", Json.Num conv); ("adpm", Json.Num adpm) ] );
      ])

(* Generator throughput: full canonical-pipeline builds per second —
   spec parse, DDDL emission (round-trip checked), elaboration to a
   network — over a spread of specs. *)
let gen_scenarios_per_s () =
  let specs =
    List.concat_map
      (fun seed ->
        [
          Printf.sprintf "n=3,k=2,seed=%d" seed;
          Printf.sprintf "n=4,k=3,seed=%d,topology=star" seed;
          Printf.sprintf "n=5,k=2,seed=%d,topology=random-0.5,coupling=0.25"
            seed;
        ])
      (List.init (if fast then 4 else 20) (fun i -> i))
  in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun spec ->
      match Adpm_scenarios.Registry.resolve_result ("gen:" ^ spec) with
      | Ok scenario ->
        ignore
          (scenario.Adpm_teamsim.Scenario.sc_build ~mode:Adpm_core.Dpm.Adpm
            : Adpm_core.Dpm.t)
      | Error e -> failwith ("gen throughput: " ^ e))
    specs;
  let dt = Unix.gettimeofday () -. t0 in
  let rate = float_of_int (List.length specs) /. dt in
  Printf.printf "%d generated scenarios built in %.2fs -> %.1f scenarios/s\n"
    (List.length specs) dt rate;
  rate

let results_json ~fig9_seeds ~parallel ~domains ~adapt ~gen_rate verdicts incr
    des pool faults fuzz teamsimd chaos =
  let parallel_jobs, parallel_speedup, parallel_agrees = parallel in
  let domains_jobs, domains_speedup, domains_agrees = domains in
  Json.Obj
    [
      ("fast", Json.Bool fast);
      ("cores", Json.Num (float_of_int (Pool.cpu_count ())));
      ("fig9_seeds", Json.Num (float_of_int fig9_seeds));
      ("incremental_speedup", Json.Num incr.Incremental.speedup);
      ("des_overhead", Json.Num des.Des_overhead.overhead);
      ("des_agrees", Json.Bool des.Des_overhead.agrees);
      ("pool_retry_overhead", Json.Num pool.Pool_overhead.overhead);
      ("pool_retry_agrees", Json.Bool pool.Pool_overhead.agrees);
      ("fault_sweep", fault_sweep_json faults);
      ("adapt_advantage", Json.Num adapt.Exp_adapt.adapt_advantage);
      ("gen_scenarios_per_s", Json.Num gen_rate);
      ("fuzz_throughput", Json.Num fuzz.Fuzz_bench.throughput);
      ("fuzz_schedules", Json.Num (float_of_int fuzz.Fuzz_bench.schedules));
      ("fuzz_clean", Json.Bool fuzz.Fuzz_bench.clean);
      ( "teamsimd_sessions",
        Json.Num (float_of_int teamsimd.Daemon_bench.sessions) );
      ("teamsimd_ops", Json.Num (float_of_int teamsimd.Daemon_bench.total_ops));
      ("teamsimd_ops_per_s", Json.Num teamsimd.Daemon_bench.ops_per_s);
      ("teamsimd_p99_ms", Json.Num teamsimd.Daemon_bench.p99_ms);
      ("teamsimd_recovery_ms", Json.Num chaos.Chaos_bench.recovery_ms);
      ( "teamsimd_recovered",
        Json.Num (float_of_int chaos.Chaos_bench.recovered) );
      ("chaos_sessions", Json.Num (float_of_int chaos.Chaos_bench.sessions));
      ( "chaos_sessions_ok",
        Json.Num
          (float_of_int chaos.Chaos_bench.ok_sessions
          /. float_of_int chaos.Chaos_bench.sessions) );
      ("parallel_jobs", Json.Num (float_of_int parallel_jobs));
      ("parallel_speedup", Json.Num parallel_speedup);
      ("parallel_agrees", Json.Bool parallel_agrees);
      ("domains_jobs", Json.Num (float_of_int domains_jobs));
      ("domains_speedup", Json.Num domains_speedup);
      ("domains_agrees", Json.Bool domains_agrees);
      ( "incremental",
        Json.Obj
          [
            ("revisions_full", Json.Num (float_of_int incr.Incremental.total_full));
            ( "revisions_incremental",
              Json.Num (float_of_int incr.Incremental.total_incr) );
            ("outcomes_agree", Json.Bool incr.Incremental.all_agree);
          ] );
      ( "wall_time_s",
        Json.Obj
          (List.rev_map (fun (name, dt) -> (name, Json.Num dt)) !timings) );
      ( "fig9",
        Json.Obj
          [
            ("ops_ratio_sensor", Json.Num verdicts.Exp_fig9.ops_ratio_sensor);
            ("ops_ratio_receiver", Json.Num verdicts.Exp_fig9.ops_ratio_receiver);
            ( "variability_ratio_sensor",
              Json.Num verdicts.Exp_fig9.variability_ratio_sensor );
            ( "variability_ratio_receiver",
              Json.Num verdicts.Exp_fig9.variability_ratio_receiver );
            ("spin_fraction", Json.Num verdicts.Exp_fig9.spin_fraction);
            ("eval_penalty_sensor", Json.Num verdicts.Exp_fig9.eval_penalty_sensor);
            ( "eval_penalty_receiver",
              Json.Num verdicts.Exp_fig9.eval_penalty_receiver );
            ( "per_op_penalty_sensor",
              Json.Num verdicts.Exp_fig9.per_op_penalty_sensor );
            ( "per_op_penalty_receiver",
              Json.Num verdicts.Exp_fig9.per_op_penalty_receiver );
          ] );
    ]

let () =
  let fig9_seeds = getenv_int "ADPM_BENCH_SEEDS" (if fast then 10 else 60) in
  let njobs = max 1 (getenv_int "ADPM_BENCH_JOBS" (Pool.cpu_count ())) in
  let fig7_seeds = if fast then 5 else 20 in
  let fig10_seeds = if fast then 3 else 10 in
  let ablation_seeds = if fast then 5 else 15 in
  let ablation_instances = if fast then 10 else 30 in

  section "Figures 2-4: Section 2.4 walkthrough";
  print_string (timed "fig234" (fun () -> Exp_fig234.render (Exp_fig234.run ())));

  (* Fork before domains, always: the first Domain.spawn permanently
     disables Unix.fork in this process, so every fork-pool measurement
     (Fig. 7's fork pass, the parallel runner, the supervision-overhead
     bench) runs before the domain runner and everything downstream of
     it. *)
  section "Figure 7: per-operation profiles (simplified case)";
  print_string
    (timed "fig7" (fun () ->
         Exp_fig7.render
           (Exp_fig7.run ~seeds:fig7_seeds ~backend:Engine.Fork ~jobs:njobs ())));

  section "Figure 8: design process statistics window";
  print_string (timed "fig8" (fun () -> Exp_fig8.render (Exp_fig8.run ())));

  section "Figure 9: performance and computational penalty";
  let fig9 = timed "fig9" (fun () -> Exp_fig9.run ~seeds:fig9_seeds ()) in
  print_string (Exp_fig9.render fig9);

  let wall name = List.assoc name !timings in
  (* Per-run sample lists, not whole aggregates: Stats_acc carries an
     internal sort cache whose state is irrelevant to equality. *)
  let fingerprint (c : Adpm_teamsim.Report.aggregate) =
    let samples = Adpm_util.Stats_acc.to_list in
    ( c.Adpm_teamsim.Report.a_scenario,
      c.Adpm_teamsim.Report.a_mode,
      c.Adpm_teamsim.Report.a_runs,
      c.Adpm_teamsim.Report.a_completed,
      List.map samples
        [
          c.Adpm_teamsim.Report.a_ops;
          c.Adpm_teamsim.Report.a_evals;
          c.Adpm_teamsim.Report.a_evals_per_op;
          c.Adpm_teamsim.Report.a_spins;
          c.Adpm_teamsim.Report.a_violations;
        ] )
  in
  let cells r =
    [
      r.Exp_fig9.sensor_conv; r.Exp_fig9.sensor_adpm;
      r.Exp_fig9.receiver_conv; r.Exp_fig9.receiver_adpm;
    ]
  in
  let agrees_with_fig9 r =
    List.for_all2 (fun a b -> fingerprint a = fingerprint b) (cells r)
      (cells fig9)
  in

  (* Parallel runner (fork): redo the Fig. 9 cells with the worker pool
     and compare wall time against the sequential pass above. On a
     single-CPU host there is nothing to overlap, so the ratio is
     definitionally 1 and the fork path is left to the test suite's
     equivalence checks. *)
  let parallel =
    if njobs < 2 then (1, 1.0, true)
    else begin
      section
        (Printf.sprintf
           "Parallel runner (fork): Fig. 9 cells at jobs=%d vs jobs=1" njobs);
      let fig9_par =
        timed "fig9_parallel" (fun () ->
            Exp_fig9.run ~seeds:fig9_seeds ~backend:Engine.Fork ~jobs:njobs ())
      in
      let speedup = wall "fig9" /. wall "fig9_parallel" in
      let agrees = agrees_with_fig9 fig9_par in
      Printf.printf
        "jobs=%d: sequential %.2fs, parallel %.2fs -> speedup %.2fx; results %s\n"
        njobs (wall "fig9")
        (wall "fig9_parallel")
        speedup
        (if agrees then "bit-identical" else "DIVERGED");
      (njobs, speedup, agrees)
    end
  in

  section "Worker pool: supervision overhead on the healthy path";
  let pool =
    timed "pool_overhead" (fun () ->
        Pool_overhead.run ~seeds:(if fast then 4 else 12) ~jobs:(max 2 njobs) ())
  in
  print_string (Pool_overhead.render pool);

  section "Figure 10: specification-tightness sweep";
  print_string
    (timed "fig10" (fun () ->
         Exp_fig10.render (Exp_fig10.run ~seeds:fig10_seeds ~jobs:njobs ())));

  section "Ablations: ADPM heuristics, CSP orderings, DCM consistency";
  print_string
    (timed "ablation" (fun () ->
         Exp_ablation.render
           (Exp_ablation.run ~seeds:ablation_seeds ~instances:ablation_instances
              ~jobs:njobs ())));

  section "Scaling study (extension): hardness vs acceleration and penalty";
  print_string
    (timed "scaling" (fun () ->
         Exp_scaling.render
           (Exp_scaling.run ~seeds:(if fast then 3 else 8) ~jobs:njobs ())));

  section "Adaptability study (extension): requirement shifts mid-run";
  let adapt =
    timed "adapt" (fun () ->
        Exp_adapt.run ~seeds:(if fast then 2 else 8) ~jobs:njobs ())
  in
  print_string (Exp_adapt.render adapt);

  section "Generator throughput: canonical DDDL pipeline builds";
  let gen_rate = timed "gen_throughput" (fun () -> gen_scenarios_per_s ()) in

  section "Incremental DCM: full vs dirty-seeded HC4 (receiver, Fig. 9 case)";
  let incr =
    timed "incremental" (fun () ->
        Incremental.run ~seeds:(if fast then 3 else 10) ())
  in
  print_string (Incremental.render incr);

  section "Notification-latency sweep (extension): ADPM advantage vs lag";
  print_string
    (timed "latency" (fun () ->
         Exp_latency.render
           (Exp_latency.run ~seeds:(if fast then 3 else 20) ~jobs:njobs ())));

  section "Fault-injection sweep (extension): completion vs notification loss";
  let faults =
    timed "faults" (fun () ->
        Exp_faults.run ~seeds:(if fast then 3 else 20) ~jobs:njobs ())
  in
  print_string (Exp_faults.render faults);

  section "Discrete-event scheduler: overhead vs the lockstep loop (latency 0)";
  let des =
    timed "des_overhead" (fun () ->
        Des_overhead.run ~seeds:(if fast then 3 else 12) ())
  in
  print_string (Des_overhead.render des);

  section "teamsimd: concurrent interactive sessions over the socket protocol";
  (* No forks, no domains: the daemon is a single-threaded select loop
     hosted in this process, so this section is safe to run before the
     domain spawn below and does not consume the fork latch. *)
  let teamsimd =
    timed "teamsimd" (fun () ->
        Daemon_bench.run
          ~sessions:(if fast then 16 else 64)
          ~ops_per_session:(if fast then 4 else 8)
          ())
  in
  print_string (Daemon_bench.render teamsimd);

  section "teamsimd crash recovery: journal replay and chaos-proxy sessions";
  (* Same no-fork/no-domain footing as the load bench above: daemon,
     proxy, and clients are all select loops in this thread. *)
  let chaos =
    timed "chaos" (fun () ->
        Chaos_bench.run
          ~sessions:(if fast then 4 else 8)
          ~ops_per_session:(if fast then 4 else 6)
          ())
  in
  print_string (Chaos_bench.render chaos);

  (* Domain runner: the Fig. 9 cells again on the shared-memory backend.
     Unlike the fork section this always runs (jobs forced to >= 2) so
     every bench run exercises the domain pool's bit-identity; a real
     speedup is only expected — and only gated by check_results — when
     the host actually has >= 2 cores. It runs LAST among the timed
     experiment sections on purpose: spawning domains permanently grows
     the runtime's multi-domain GC state, which measurably slows the
     sequential sections that follow, so every section whose wall time is
     tracked against a baseline must run before the first domain spawn
     (just as the fork sections must — see the note above fig7). *)
  let domains =
    let djobs = max 2 njobs in
    section
      (Printf.sprintf
         "Domain runner: Fig. 9 cells at jobs=%d (shared memory) vs jobs=1"
         djobs);
    let fig9_dom =
      timed "fig9_domains" (fun () ->
          Exp_fig9.run ~seeds:fig9_seeds ~backend:Engine.Domains ~jobs:djobs ())
    in
    let speedup = wall "fig9" /. wall "fig9_domains" in
    let agrees = agrees_with_fig9 fig9_dom in
    Printf.printf
      "jobs=%d (%d core(s)): sequential %.2fs, domains %.2fs -> speedup \
       %.2fx; results %s\n"
      djobs (Pool.cpu_count ()) (wall "fig9")
      (wall "fig9_domains")
      speedup
      (if agrees then "bit-identical" else "DIVERGED");
    (djobs, speedup, agrees)
  in

  section "Schedule fuzzer: temporal-property suite over random schedules";
  let fuzz =
    timed "fuzz" (fun () -> Fuzz_bench.run ~count:(if fast then 10 else 50) ())
  in
  print_string (Fuzz_bench.render fuzz);

  section "Micro-benchmarks (bechamel)";
  timed "microbench" (fun () -> Microbench.run ~fast ());

  let json =
    results_json ~fig9_seeds ~parallel ~domains ~adapt ~gen_rate
      (Exp_fig9.verdicts fig9) incr des pool faults fuzz teamsimd chaos
  in
  let oc = open_out "BENCH_results.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.to_string json ^ "\n"));
  Printf.printf "\nwrote BENCH_results.json\n"
