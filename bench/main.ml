(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (Figs. 2-4 walkthrough, Fig. 7 profiles, Fig. 8
   statistics window, Fig. 9 performance/penalty aggregates, Fig. 10
   tightness sweep, plus the heuristic ablations), then runs bechamel
   micro-benchmarks of the underlying engines.

   Per-experiment wall time and the Fig. 9 headline ratios are written to
   BENCH_results.json in the working directory, so CI can diff successive
   runs without scraping stdout.

   Environment knobs:
     ADPM_BENCH_SEEDS  seeds per Fig. 9 cell (default 60, as in the paper)
     ADPM_BENCH_FAST   set to shrink every experiment (CI smoke mode) *)

open Adpm_experiments
module Json = Adpm_trace.Json

let getenv_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> default)
  | None -> default

let fast = Sys.getenv_opt "ADPM_BENCH_FAST" <> None

let section title = Printf.printf "\n%s\n%s\n\n" title (String.make 72 '=')

let timings : (string * float) list ref = ref []

let timed name f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  timings := (name, Unix.gettimeofday () -. t0) :: !timings;
  v

let results_json ~fig9_seeds verdicts incr =
  Json.Obj
    [
      ("fast", Json.Bool fast);
      ("fig9_seeds", Json.Num (float_of_int fig9_seeds));
      ("incremental_speedup", Json.Num incr.Incremental.speedup);
      ( "incremental",
        Json.Obj
          [
            ("revisions_full", Json.Num (float_of_int incr.Incremental.total_full));
            ( "revisions_incremental",
              Json.Num (float_of_int incr.Incremental.total_incr) );
            ("outcomes_agree", Json.Bool incr.Incremental.all_agree);
          ] );
      ( "wall_time_s",
        Json.Obj
          (List.rev_map (fun (name, dt) -> (name, Json.Num dt)) !timings) );
      ( "fig9",
        Json.Obj
          [
            ("ops_ratio_sensor", Json.Num verdicts.Exp_fig9.ops_ratio_sensor);
            ("ops_ratio_receiver", Json.Num verdicts.Exp_fig9.ops_ratio_receiver);
            ( "variability_ratio_sensor",
              Json.Num verdicts.Exp_fig9.variability_ratio_sensor );
            ( "variability_ratio_receiver",
              Json.Num verdicts.Exp_fig9.variability_ratio_receiver );
            ("spin_fraction", Json.Num verdicts.Exp_fig9.spin_fraction);
            ("eval_penalty_sensor", Json.Num verdicts.Exp_fig9.eval_penalty_sensor);
            ( "eval_penalty_receiver",
              Json.Num verdicts.Exp_fig9.eval_penalty_receiver );
            ( "per_op_penalty_sensor",
              Json.Num verdicts.Exp_fig9.per_op_penalty_sensor );
            ( "per_op_penalty_receiver",
              Json.Num verdicts.Exp_fig9.per_op_penalty_receiver );
          ] );
    ]

let () =
  let fig9_seeds = getenv_int "ADPM_BENCH_SEEDS" (if fast then 10 else 60) in
  let fig7_seeds = if fast then 5 else 20 in
  let fig10_seeds = if fast then 3 else 10 in
  let ablation_seeds = if fast then 5 else 15 in
  let ablation_instances = if fast then 10 else 30 in

  section "Figures 2-4: Section 2.4 walkthrough";
  print_string (timed "fig234" (fun () -> Exp_fig234.render (Exp_fig234.run ())));

  section "Figure 7: per-operation profiles (simplified case)";
  print_string
    (timed "fig7" (fun () -> Exp_fig7.render (Exp_fig7.run ~seeds:fig7_seeds ())));

  section "Figure 8: design process statistics window";
  print_string (timed "fig8" (fun () -> Exp_fig8.render (Exp_fig8.run ())));

  section "Figure 9: performance and computational penalty";
  let fig9 = timed "fig9" (fun () -> Exp_fig9.run ~seeds:fig9_seeds ()) in
  print_string (Exp_fig9.render fig9);

  section "Figure 10: specification-tightness sweep";
  print_string
    (timed "fig10" (fun () ->
         Exp_fig10.render (Exp_fig10.run ~seeds:fig10_seeds ())));

  section "Ablations: ADPM heuristics, CSP orderings, DCM consistency";
  print_string
    (timed "ablation" (fun () ->
         Exp_ablation.render
           (Exp_ablation.run ~seeds:ablation_seeds ~instances:ablation_instances
              ())));

  section "Scaling study (extension): hardness vs acceleration and penalty";
  print_string
    (timed "scaling" (fun () ->
         Exp_scaling.render (Exp_scaling.run ~seeds:(if fast then 3 else 8) ())));

  section "Incremental DCM: full vs dirty-seeded HC4 (receiver, Fig. 9 case)";
  let incr =
    timed "incremental" (fun () ->
        Incremental.run ~seeds:(if fast then 3 else 10) ())
  in
  print_string (Incremental.render incr);

  section "Micro-benchmarks (bechamel)";
  timed "microbench" (fun () -> Microbench.run ~fast ());

  let json = results_json ~fig9_seeds (Exp_fig9.verdicts fig9) incr in
  let oc = open_out "BENCH_results.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.to_string json ^ "\n"));
  Printf.printf "\nwrote BENCH_results.json\n"
