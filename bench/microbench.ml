(* Bechamel micro-benchmarks of the engines underneath the experiments:
   interval arithmetic, HC4 revision, full propagation fixpoints on the
   paper's two design cases, a complete ADPM simulation, and the CSP
   backtracking search with the two informed orderings. *)

open Bechamel
open Toolkit
open Adpm_util
open Adpm_interval
open Adpm_expr
open Adpm_csp
open Adpm_core
open Adpm_teamsim
open Adpm_scenarios

let interval_mul_test =
  let a = Interval.make 1.5 3.5 and b = Interval.make (-2.) 7. in
  Test.make ~name:"interval mul" (Staged.stage (fun () -> Interval.mul a b))

let hc4_revise_test =
  let e =
    Expr.(
      Sub
        ( Add (Mul (Var "x", Var "y"), Sqrt (Var "z")),
          Mul (Const 2., Var "w") ))
  in
  let env = function
    | "x" -> Interval.make 1. 4.
    | "y" -> Interval.make 0.5 2.
    | "z" -> Interval.make 0. 9.
    | "w" -> Interval.make 1. 3.
    | _ -> raise Not_found
  in
  let target = Interval.make neg_infinity 0. in
  Test.make ~name:"HC4 revise (9-node expr)"
    (Staged.stage (fun () -> Hc4.revise ~env e target))

let propagate_test name build =
  let dpm = build () ~mode:Dpm.Adpm in
  let net = Dpm.network dpm in
  Test.make ~name (Staged.stage (fun () -> Propagate.run net))

(* Steady-state repropagation: one assignment perturbs the network, then
   the DCM re-establishes the fixpoint. The incremental engine restarts
   from the persisted box store seeded with the dirty property's
   constraints; the full engine recomputes from the initial domains. *)
let repropagate_test name engine =
  let dpm = Receiver.build () ~mode:Dpm.Adpm in
  Dpm.set_engine dpm engine;
  ignore (Dpm.run_propagation dpm);
  let net = Dpm.network dpm in
  Test.make ~name
    (Staged.stage (fun () ->
         Network.assign net "diff-pair-w" (Value.Num 5.);
         Dpm.run_propagation dpm))

let simulation_test name scenario mode =
  let cfg = Config.default ~mode ~seed:7 in
  Test.make ~name (Staged.stage (fun () -> Engine.run cfg scenario))

let search_test heuristic =
  let rng = Rng.create 42 in
  let csp =
    Search.random_csp rng ~nvars:12 ~domain_size:5 ~density:0.4 ~tightness:0.3
  in
  Test.make
    ~name:(Printf.sprintf "CSP search (%s)" (Search.heuristic_name heuristic))
    (Staged.stage (fun () -> Search.solve ~heuristic csp))

let tests =
  Test.make_grouped ~name:"adpm" ~fmt:"%s %s"
    [
      interval_mul_test;
      hc4_revise_test;
      propagate_test "propagate fixpoint (sensor, 21 constraints)"
        (fun () -> Sensor.build ());
      propagate_test "propagate fixpoint (receiver, 30 constraints)"
        (fun () -> Receiver.build ());
      repropagate_test "repropagate after 1 assign (receiver, full)" Dpm.Full;
      repropagate_test "repropagate after 1 assign (receiver, incremental)"
        Dpm.Incremental;
      simulation_test "full simulation (sensor, ADPM)" Sensor.scenario Dpm.Adpm;
      simulation_test "full simulation (sensor, conventional)" Sensor.scenario
        Dpm.Conventional;
      search_test Search.Lexicographic;
      search_test Search.Min_domain;
    ]

let run ~fast () =
  let quota = Time.second (if fast then 0.25 else 1.0) in
  let cfg = Benchmark.cfg ~limit:2000 ~quota ~kde:(Some 100) () in
  let instances = Instance.[ monotonic_clock ] in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let entries = Hashtbl.fold (fun name result acc -> (name, result) :: acc) results [] in
  let entries = List.sort (fun (a, _) (b, _) -> compare a b) entries in
  Printf.printf "%-55s %15s %10s\n" "benchmark" "time/run" "r^2";
  List.iter
    (fun (name, result) ->
      match Analyze.OLS.estimates result with
      | Some (est :: _) ->
        let pretty =
          if est > 1e9 then Printf.sprintf "%.3f s" (est /. 1e9)
          else if est > 1e6 then Printf.sprintf "%.3f ms" (est /. 1e6)
          else if est > 1e3 then Printf.sprintf "%.3f us" (est /. 1e3)
          else Printf.sprintf "%.1f ns" est
        in
        let r2 =
          match Analyze.OLS.r_square result with
          | Some r -> Printf.sprintf "%.4f" r
          | None -> "-"
        in
        Printf.printf "%-55s %15s %10s\n" name pretty r2
      | Some [] | None -> Printf.printf "%-55s %15s\n" name "(no estimate)")
    entries
