(* Crash-recovery bench for the journaled daemon, two measurements in
   one section (no forks, no domains — everything is select loops hosted
   in this thread, so it composes with main.ml's ordering rules):

   - recovery_ms: wall time of [Daemon.create] on a journal directory
     holding N in-flight sessions — the full scan + fingerprint-gated
     replay + compaction cost a restarted daemon pays before serving.

   - ok_sessions/sessions: N reconnecting clients drive scripted
     sessions through a chaos proxy (default plan: cuts, dribbles,
     delays, partial writes) with the daemon stopped and recreated
     mid-run; a session counts as ok only if every exec output is
     byte-identical to an undisturbed in-process run and the final
     fingerprint matches. Anything less than N/N is a recovery bug. *)

open Adpm_serve
module Chaos = Adpm_chaos.Chaos

type result = {
  sessions : int;
  ok_sessions : int;
  recovered : int;
  recovery_ms : float;
}

let designer i = if i mod 2 = 0 then "alice" else "bob"

let tmpdir prefix =
  let base = Filename.temp_file prefix "" in
  Sys.remove base;
  Unix.mkdir base 0o700;
  base

let rm_rf dir =
  let rec rm p =
    if Sys.is_directory p then begin
      Array.iter (fun n -> rm (Filename.concat p n)) (Sys.readdir p);
      Unix.rmdir p
    end
    else Sys.remove p
  in
  try rm dir with Sys_error _ | Unix.Unix_error _ -> ()

let config ~dir ~sock =
  {
    (Daemon.default_config
       ~addr:(Daemon.Unix_path sock)
       ~scenarios:[ Adpm_scenarios.Simple.scenario ])
    with
    Daemon.dc_checkpoint_dir = dir;
    dc_journal_dir = Some (Filename.concat dir "journal");
    dc_checkpoint_every = 4;
  }

let open_req i =
  Wire.Open
    {
      scenario = "simple";
      mode = Adpm_core.Dpm.Adpm;
      seed = i + 1;
      designer = designer i;
    }

let sid_of resp =
  match Client.body_str resp "session" with
  | Some sid -> sid
  | None ->
    failwith
      (Printf.sprintf "chaos_bench: open failed: %s"
         (Adpm_trace.Json.to_string resp.Wire.r_body))

(* Part A: how long does a restarted daemon take to rebuild [sessions]
   journaled sessions of [ops] commands each? *)
let measure_recovery ~sessions ~ops =
  let dir = tmpdir "adpm_chaos_bench_a" in
  let sock = Filename.concat dir "daemon.sock" in
  let cfg = config ~dir ~sock in
  let d1 = Daemon.create cfg in
  let pump () = ignore (Daemon.step ~timeout:0. d1 : bool) in
  let rpc c req = Client.rpc ~timeout:60. ~pump c req in
  let clients =
    Array.init sessions (fun _ ->
        let c = Client.connect (Unix.ADDR_UNIX sock) in
        pump ();
        c)
  in
  let sids = Array.mapi (fun i c -> sid_of (rpc c (open_req i))) clients in
  for round = 1 to ops do
    let line = if round mod 3 = 0 then "step" else "auto" in
    Array.iteri
      (fun i c ->
        let resp = rpc c (Wire.Exec { session = sids.(i); line }) in
        if not resp.Wire.r_ok then
          failwith
            (Printf.sprintf "chaos_bench: exec failed: %s"
               (Adpm_trace.Json.to_string resp.Wire.r_body)))
      clients
  done;
  let fps =
    Array.mapi
      (fun i c ->
        Client.body_str (rpc c (Wire.Status { session = sids.(i) })) "fingerprint")
      clients
  in
  Array.iter Client.close clients;
  Daemon.stop d1;
  let t0 = Unix.gettimeofday () in
  let d2 = Daemon.create cfg in
  let recovery_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  let recovered = List.length (Daemon.recovered_sessions d2) in
  (* every recovered session must still answer with its pre-stop state *)
  let pump () = ignore (Daemon.step ~timeout:0. d2 : bool) in
  Array.iteri
    (fun i sid ->
      let c = Client.connect (Unix.ADDR_UNIX sock) in
      pump ();
      let fp =
        Client.body_str
          (Client.rpc ~timeout:60. ~pump c (Wire.Status { session = sid }))
          "fingerprint"
      in
      if fp <> fps.(i) || fp = None then
        failwith
          (Printf.sprintf "chaos_bench: session %s fingerprint drifted across \
                           restart"
             sid);
      Client.close c)
    sids;
  Daemon.stop d2;
  rm_rf dir;
  (recovered, recovery_ms)

(* Part B: scripted sessions through the chaos proxy, daemon stopped and
   recreated mid-run; count sessions indistinguishable from an
   undisturbed run. *)
let run_chaos ~sessions =
  let script = [ "auto"; "step"; "auto"; "suggest"; "auto"; "status" ] in
  let kill_after = 3 in
  let dir = tmpdir "adpm_chaos_bench_b" in
  let sock = Filename.concat dir "daemon.sock" in
  let proxy_sock = Filename.concat dir "proxy.sock" in
  let cfg = config ~dir ~sock in
  let d = ref (Daemon.create cfg) in
  let proxy =
    Chaos.create ~seed:42 ~plan:Chaos.default
      ~listen:(Unix.ADDR_UNIX proxy_sock) ~upstream:(Unix.ADDR_UNIX sock)
  in
  let pump () =
    ignore (Daemon.step ~timeout:0. !d : bool);
    Chaos.step ~timeout:0. proxy
  in
  let rpc c req = Client.rpc ~timeout:60. ~pump c req in
  let references =
    Array.init sessions (fun i ->
        Adpm_teamsim.Interactive.create ~mode:Adpm_core.Dpm.Adpm ~seed:(i + 1)
          Adpm_scenarios.Simple.scenario ~designer:(designer i))
  in
  let expected =
    Array.map
      (fun r ->
        List.map
          (fun line ->
            match Adpm_teamsim.Interactive.execute r line with
            | Ok s -> Some s
            | Error _ -> None)
          script)
      references
  in
  let clients =
    Array.init sessions (fun i ->
        Client.connect_persistent ~retries:12 ~backoff:0.02 ~seed:(500 + i)
          ~client:(Printf.sprintf "bench-c%d" i)
          (Unix.ADDR_UNIX proxy_sock))
  in
  let sids = Array.mapi (fun i c -> sid_of (rpc c (open_req i))) clients in
  let got = Array.make sessions [] in
  List.iteri
    (fun round line ->
      if round = kill_after then begin
        (* in-process "crash": drop every connection and rebuild from the
           journals; clients resend through the proxy *)
        Daemon.stop !d;
        d := Daemon.create cfg
      end;
      Array.iteri
        (fun i c ->
          let resp = rpc c (Wire.Exec { session = sids.(i); line }) in
          got.(i) <- Client.body_str resp "output" :: got.(i))
        clients)
    script;
  let ok = ref 0 in
  Array.iteri
    (fun i c ->
      let outputs_match = List.rev got.(i) = expected.(i) in
      let fp_match =
        Client.body_str (rpc c (Wire.Status { session = sids.(i) })) "fingerprint"
        = Some (Session.fingerprint_of_interactive references.(i))
      in
      if outputs_match && fp_match then incr ok;
      ignore (rpc c (Wire.Close { session = sids.(i) }) : Wire.response);
      Client.close c)
    clients;
  Daemon.stop !d;
  Chaos.stop proxy;
  rm_rf dir;
  !ok

let run ?(sessions = 8) ?(ops_per_session = 6) () =
  let recovered, recovery_ms =
    measure_recovery ~sessions ~ops:ops_per_session
  in
  let ok_sessions = run_chaos ~sessions in
  { sessions; ok_sessions; recovered; recovery_ms }

let render r =
  Printf.sprintf
    "restart replayed %d journaled sessions in %.2fms; %d/%d chaos sessions \
     byte-identical to an undisturbed run across a mid-run restart\n"
    r.recovered r.recovery_ms r.ok_sessions r.sessions
