(* Supervision-overhead check: the resilient worker pool's healthy path
   (retry accounting, per-worker progress stamps, timeout-aware select)
   must cost essentially nothing over the same pool with supervision
   switched off (retries 0, no job timeout), and both paths must produce
   identical summaries. Three alternating repetitions per side, minimum
   wall each, so a one-off scheduling hiccup cannot fake a regression.
   The ratio lands in BENCH_results.json for check_results to gate on. *)

open Adpm_core
open Adpm_teamsim
open Adpm_scenarios

type result = {
  jobs : int;
  seeds : int;
  relaxed_s : float;  (* best wall, retries 0 / no timeout *)
  supervised_s : float;  (* best wall, default retries + generous timeout *)
  overhead : float;  (* supervised wall / relaxed wall *)
  agrees : bool;  (* identical summaries on every repetition *)
}

let run ~seeds ~jobs () =
  let seed_list = List.init seeds (fun i -> i + 1) in
  let cfg = Config.default ~mode:Dpm.Adpm ~seed:0 in
  let relaxed () =
    Engine.run_many ~backend:Engine.Fork ~jobs ~retries:0 cfg Sensor.scenario
      ~seeds:seed_list
  in
  let supervised () =
    Engine.run_many ~backend:Engine.Fork ~jobs ~job_timeout:600. cfg
      Sensor.scenario ~seeds:seed_list
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  let reference = relaxed () in
  let relaxed_s = ref infinity
  and supervised_s = ref infinity
  and agrees = ref true in
  for _ = 1 to 3 do
    let rv, rdt = time relaxed in
    let sv, sdt = time supervised in
    relaxed_s := Float.min !relaxed_s rdt;
    supervised_s := Float.min !supervised_s sdt;
    agrees := !agrees && rv = reference && sv = reference
  done;
  {
    jobs;
    seeds;
    relaxed_s = !relaxed_s;
    supervised_s = !supervised_s;
    overhead =
      (if !relaxed_s <= 0. then 1. else !supervised_s /. !relaxed_s);
    agrees = !agrees;
  }

let render r =
  Printf.sprintf
    "sensor x %d seeds at jobs=%d: relaxed %.3fs, supervised %.3fs -> \
     overhead %.2fx; summaries %s\n"
    r.seeds r.jobs r.relaxed_s r.supervised_s r.overhead
    (if r.agrees then "bit-identical" else "DIVERGED")
