(* Scheduler-overhead check: the discrete-event engine at latency 0 must
   produce exactly the summaries of the reference lockstep loop over the
   Fig. 9 grid (both scenarios, both modes, every seed), and its event
   queue should cost little on top of the design work itself. The measured
   wall-time ratio and the equality verdict land in BENCH_results.json so
   check_results can gate on them. *)

open Adpm_core
open Adpm_teamsim
open Adpm_scenarios

type result = {
  seeds : int;
  lockstep_s : float;
  scheduler_s : float;
  overhead : float;  (* scheduler wall / lockstep wall, latency 0 *)
  agrees : bool;  (* identical summaries across the whole grid *)
}

let grid seeds =
  List.concat_map
    (fun scenario ->
      List.concat_map
        (fun mode ->
          List.map
            (fun seed -> (scenario, mode, seed))
            (List.init seeds (fun i -> i + 1)))
        [ Dpm.Conventional; Dpm.Adpm ])
    [ Sensor.scenario; Receiver.scenario ]

let run ~seeds () =
  let cells = grid seeds in
  let time f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  let sweep engine =
    List.map
      (fun (scenario, mode, seed) ->
        (engine (Config.default ~mode ~seed) scenario).Engine.o_summary)
      cells
  in
  let lockstep, lockstep_s =
    time (fun () -> sweep (fun cfg sc -> Engine.run_lockstep cfg sc))
  in
  let scheduler, scheduler_s =
    time (fun () -> sweep (fun cfg sc -> Engine.run cfg sc))
  in
  {
    seeds;
    lockstep_s;
    scheduler_s;
    overhead = (if lockstep_s <= 0. then 1. else scheduler_s /. lockstep_s);
    agrees = lockstep = scheduler;
  }

let render r =
  Printf.sprintf
    "Fig. 9 grid x %d seeds: lockstep %.3fs, scheduler %.3fs -> overhead \
     %.2fx; summaries %s\n"
    r.seeds r.lockstep_s r.scheduler_s r.overhead
    (if r.agrees then "bit-identical" else "DIVERGED")
