(* Bench-smoke gate: fail loudly (nonzero exit) if BENCH_results.json is
   missing, unparseable, or lacks a finite positive incremental_speedup or
   parallel_speedup — so a refactor that silently stops producing the
   incremental-vs-full comparison or the parallel-vs-sequential comparison
   breaks @check instead of shipping an empty benchmark.

   The parallel gate: the field must always be a finite positive ratio,
   and on a real measurement (parallel_jobs >= 2, non-fast run) it must be
   >= 1 — a multi-worker pass of the Fig. 9 cells that fails to beat the
   sequential pass is a regression. Fast smoke runs are exempt from the
   >= 1 bar because their cells are milliseconds long, where fork overhead
   and timer noise dominate. *)

module Json = Adpm_trace.Json

let file = "BENCH_results.json"

let die fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "bench-smoke check FAILED: %s\n" msg;
      exit 1)
    fmt

let () =
  let contents =
    match In_channel.with_open_text file In_channel.input_all with
    | s -> s
    | exception Sys_error msg -> die "%s missing (%s)" file msg
  in
  let json =
    match Json.parse contents with
    | Ok j -> j
    | Error msg -> die "%s does not parse: %s" file msg
  in
  let speedup name =
    match Json.member name json with
    | None -> die "%s lacks the %s field" file name
    | Some v -> (
      match Json.to_float v with
      | None -> die "%s is not a number" name
      | Some s when not (Float.is_finite s && s > 0.) ->
        die "%s %g is not a finite positive ratio" name s
      | Some s -> s)
  in
  let incremental = speedup "incremental_speedup" in
  let parallel = speedup "parallel_speedup" in
  (* the discrete-event engine must both exist and agree: a missing or
     non-finite overhead ratio means the scheduler comparison silently
     stopped running, and des_agrees=false means the latency-0 fingerprint
     diverged from the lockstep reference — both are hard failures *)
  let des_overhead = speedup "des_overhead" in
  (match Option.bind (Json.member "des_agrees" json) Json.to_bool with
  | Some true -> ()
  | Some false ->
    die
      "des_agrees is false: the discrete-event engine's latency-0 summaries \
       diverged from the lockstep loop"
  | None -> die "%s lacks the des_agrees field" file);
  let fast =
    match Option.bind (Json.member "fast" json) Json.to_bool with
    | Some b -> b
    | None -> die "%s lacks the fast field" file
  in
  let jobs =
    match Option.bind (Json.member "parallel_jobs" json) Json.to_int with
    | Some n -> n
    | None -> die "%s lacks the parallel_jobs field" file
  in
  if jobs >= 2 && (not fast) && parallel < 1. then
    die "parallel_speedup %g < 1 with %d jobs: the parallel path regressed"
      parallel jobs;
  (* pool supervision must be measured and essentially free on the healthy
     path: a missing ratio means the comparison silently stopped running,
     and > 1.1x means the retry/timeout bookkeeping started costing real
     time. Fast smoke runs are exempt from the 1.1x bar (their cells are
     milliseconds long, fork timing noise dominates), not from existing. *)
  let pool = speedup "pool_retry_overhead" in
  (match Option.bind (Json.member "pool_retry_agrees" json) Json.to_bool with
  | Some true -> ()
  | Some false ->
    die
      "pool_retry_agrees is false: supervised and relaxed pool runs \
       diverged on the healthy path"
  | None -> die "%s lacks the pool_retry_agrees field" file);
  if (not fast) && pool > 1.1 then
    die "pool_retry_overhead %gx > 1.1x: supervision is no longer free" pool;
  (* the schedule fuzzer must have run at a finite positive throughput and
     found no property violation: fuzz_clean=false means a random schedule
     broke the temporal-property suite — a scheduling or bookkeeping bug,
     never acceptable noise *)
  let fuzz = speedup "fuzz_throughput" in
  (match Option.bind (Json.member "fuzz_clean" json) Json.to_bool with
  | Some true -> ()
  | Some false ->
    die
      "fuzz_clean is false: a fuzzed schedule violated the temporal-property \
       suite"
  | None -> die "%s lacks the fuzz_clean field" file);
  (* the fault sweep must have produced a degradation curve *)
  (match Json.member "fault_sweep" json with
  | None -> die "%s lacks the fault_sweep field" file
  | Some sweep -> (
    match
      Option.bind (Json.member "completion_by_drop" sweep) Json.to_list
    with
    | None | Some [] ->
      die "fault_sweep.completion_by_drop is missing or empty"
    | Some _ -> ()));
  Printf.printf
    "bench-smoke check OK: incremental_speedup=%.2fx parallel_speedup=%.2fx \
     (jobs=%d) des_overhead=%.2fx pool_retry_overhead=%.2fx \
     fuzz_throughput=%.1f/s\n"
    incremental parallel jobs des_overhead pool fuzz
