(* Bench-smoke gate: fail loudly (nonzero exit) if BENCH_results.json is
   missing, unparseable, or lacks a finite positive incremental_speedup —
   so a refactor that silently stops producing the incremental-vs-full
   comparison breaks @check instead of shipping an empty benchmark. *)

module Json = Adpm_trace.Json

let file = "BENCH_results.json"

let die fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "bench-smoke check FAILED: %s\n" msg;
      exit 1)
    fmt

let () =
  let contents =
    match In_channel.with_open_text file In_channel.input_all with
    | s -> s
    | exception Sys_error msg -> die "%s missing (%s)" file msg
  in
  let json =
    match Json.parse contents with
    | Ok j -> j
    | Error msg -> die "%s does not parse: %s" file msg
  in
  match Json.member "incremental_speedup" json with
  | None -> die "%s lacks the incremental_speedup field" file
  | Some v -> (
    match Json.to_float v with
    | None -> die "incremental_speedup is not a number"
    | Some s when not (Float.is_finite s && s > 0.) ->
      die "incremental_speedup %g is not a finite positive ratio" s
    | Some s -> Printf.printf "bench-smoke check OK: incremental_speedup=%.2fx\n" s)
