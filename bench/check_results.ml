(* Bench-smoke gate: fail loudly (nonzero exit) if BENCH_results.json is
   missing, unparseable, or lacks a finite positive incremental_speedup,
   parallel_speedup or domains_speedup — so a refactor that silently stops
   producing the incremental-vs-full, fork-vs-sequential or
   domains-vs-sequential comparison breaks @check instead of shipping an
   empty benchmark.

   The parallel (fork) and domains gates: each field must always be a
   finite positive ratio and its _agrees flag true, and on a real
   measurement (jobs >= 2 — plus >= 2 actual cores, for domains — in a
   non-fast run) the ratio must be >= 1: a multi-worker pass of the Fig. 9
   cells that fails to beat the sequential pass is a regression. Fast
   smoke runs are exempt from the >= 1 bar because their cells are
   milliseconds long, where spawn overhead and timer noise dominate. *)

module Json = Adpm_trace.Json

let file = "BENCH_results.json"

let die fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "bench-smoke check FAILED: %s\n" msg;
      exit 1)
    fmt

let () =
  let contents =
    match In_channel.with_open_text file In_channel.input_all with
    | s -> s
    | exception Sys_error msg -> die "%s missing (%s)" file msg
  in
  let json =
    match Json.parse contents with
    | Ok j -> j
    | Error msg -> die "%s does not parse: %s" file msg
  in
  let speedup name =
    match Json.member name json with
    | None -> die "%s lacks the %s field" file name
    | Some v -> (
      match Json.to_float v with
      | None -> die "%s is not a number" name
      | Some s when not (Float.is_finite s && s > 0.) ->
        die "%s %g is not a finite positive ratio" name s
      | Some s -> s)
  in
  let incremental = speedup "incremental_speedup" in
  let parallel = speedup "parallel_speedup" in
  (* the discrete-event engine must both exist and agree: a missing or
     non-finite overhead ratio means the scheduler comparison silently
     stopped running, and des_agrees=false means the latency-0 fingerprint
     diverged from the lockstep reference — both are hard failures *)
  let des_overhead = speedup "des_overhead" in
  (match Option.bind (Json.member "des_agrees" json) Json.to_bool with
  | Some true -> ()
  | Some false ->
    die
      "des_agrees is false: the discrete-event engine's latency-0 summaries \
       diverged from the lockstep loop"
  | None -> die "%s lacks the des_agrees field" file);
  let fast =
    match Option.bind (Json.member "fast" json) Json.to_bool with
    | Some b -> b
    | None -> die "%s lacks the fast field" file
  in
  let jobs =
    match Option.bind (Json.member "parallel_jobs" json) Json.to_int with
    | Some n -> n
    | None -> die "%s lacks the parallel_jobs field" file
  in
  if jobs >= 2 && (not fast) && parallel < 1. then
    die "parallel_speedup %g < 1 with %d jobs: the parallel path regressed"
      parallel jobs;
  (* The domain runner always executes (its jobs are forced to >= 2), so a
     missing domains_speedup or a false domains_agrees means the
     shared-memory backend silently stopped running or diverged from the
     sequential reference — both hard failures. The > 1 bar additionally
     needs real cores to overlap on and a non-fast run. *)
  let domains = speedup "domains_speedup" in
  (match Option.bind (Json.member "domains_agrees" json) Json.to_bool with
  | Some true -> ()
  | Some false ->
    die
      "domains_agrees is false: the domain-backend Fig. 9 cells diverged \
       from the sequential pass"
  | None -> die "%s lacks the domains_agrees field" file);
  let domains_jobs =
    match Option.bind (Json.member "domains_jobs" json) Json.to_int with
    | Some n -> n
    | None -> die "%s lacks the domains_jobs field" file
  in
  let cores =
    match Option.bind (Json.member "cores" json) Json.to_int with
    | Some n -> n
    | None -> die "%s lacks the cores field" file
  in
  if cores >= 2 && domains_jobs >= 2 && (not fast) && domains < 1. then
    die
      "domains_speedup %g < 1 with %d jobs on %d cores: the domain backend \
       regressed"
      domains domains_jobs cores;
  (* pool supervision must be measured and essentially free on the healthy
     path: a missing ratio means the comparison silently stopped running,
     and > 1.1x means the retry/timeout bookkeeping started costing real
     time. Fast smoke runs are exempt from the 1.1x bar (their cells are
     milliseconds long, fork timing noise dominates), not from existing. *)
  let pool = speedup "pool_retry_overhead" in
  (match Option.bind (Json.member "pool_retry_agrees" json) Json.to_bool with
  | Some true -> ()
  | Some false ->
    die
      "pool_retry_agrees is false: supervised and relaxed pool runs \
       diverged on the healthy path"
  | None -> die "%s lacks the pool_retry_agrees field" file);
  if (not fast) && pool > 1.1 then
    die "pool_retry_overhead %gx > 1.1x: supervision is no longer free" pool;
  (* the adaptability study and the generator-throughput measurement must
     both have run: adapt_advantage is the headline conventional/ADPM
     operation ratio under requirement shifts (geometric mean over
     families x schedules) and gen_scenarios_per_s the canonical-pipeline
     build rate — a missing or non-finite value means the adaptability
     workload or the DDDL generator silently stopped being measured *)
  let adapt_advantage = speedup "adapt_advantage" in
  let gen_rate = speedup "gen_scenarios_per_s" in
  (* the schedule fuzzer must have run at a finite positive throughput and
     found no property violation: fuzz_clean=false means a random schedule
     broke the temporal-property suite — a scheduling or bookkeeping bug,
     never acceptable noise *)
  let fuzz = speedup "fuzz_throughput" in
  (match Option.bind (Json.member "fuzz_clean" json) Json.to_bool with
  | Some true -> ()
  | Some false ->
    die
      "fuzz_clean is false: a fuzzed schedule violated the temporal-property \
       suite"
  | None -> die "%s lacks the fuzz_clean field" file);
  (* the teamsimd load bench must have run: a finite positive throughput
     and p99 latency always, and on a full (non-fast) run at least 64
     concurrent sessions — the daemon's headline capacity claim *)
  let teamsimd_ops = speedup "teamsimd_ops_per_s" in
  let teamsimd_p99 = speedup "teamsimd_p99_ms" in
  let teamsimd_sessions =
    match Option.bind (Json.member "teamsimd_sessions" json) Json.to_int with
    | Some n -> n
    | None -> die "%s lacks the teamsimd_sessions field" file
  in
  if (not fast) && teamsimd_sessions < 64 then
    die "teamsimd_sessions %d < 64 on a full run: the load bench shrank"
      teamsimd_sessions;
  (* crash recovery must have been measured (a finite positive replay
     time) and must be lossless: chaos_sessions_ok is the fraction of
     chaos-proxied sessions whose outputs and fingerprint were
     byte-identical to an undisturbed run across a mid-run daemon
     restart — anything below 1.0 is recovered-state corruption, never
     acceptable noise *)
  let recovery_ms = speedup "teamsimd_recovery_ms" in
  let chaos_sessions =
    match Option.bind (Json.member "chaos_sessions" json) Json.to_int with
    | Some n -> n
    | None -> die "%s lacks the chaos_sessions field" file
  in
  (match Option.bind (Json.member "chaos_sessions_ok" json) Json.to_float with
  | Some ok when ok = 1.0 -> ()
  | Some ok ->
    die
      "chaos_sessions_ok %g < 1.0: a chaos-proxied session diverged from the        undisturbed run after the mid-run restart"
      ok
  | None -> die "%s lacks the chaos_sessions_ok field" file);
  if (not fast) && chaos_sessions < 8 then
    die "chaos_sessions %d < 8 on a full run: the recovery bench shrank"
      chaos_sessions;
  (* the fault sweep must have produced a degradation curve *)
  (match Json.member "fault_sweep" json with
  | None -> die "%s lacks the fault_sweep field" file
  | Some sweep -> (
    match
      Option.bind (Json.member "completion_by_drop" sweep) Json.to_list
    with
    | None | Some [] ->
      die "fault_sweep.completion_by_drop is missing or empty"
    | Some _ -> ()));
  Printf.printf
    "bench-smoke check OK: incremental_speedup=%.2fx parallel_speedup=%.2fx \
     (jobs=%d) domains_speedup=%.2fx (jobs=%d, cores=%d) des_overhead=%.2fx \
     pool_retry_overhead=%.2fx adapt_advantage=%.2fx \
     gen_scenarios_per_s=%.1f fuzz_throughput=%.1f/s \
     teamsimd=%d sessions @ %.0f ops/s (p99 %.2fms) recovery=%.1fms \
     chaos_sessions=%d/%d ok\n"
    incremental parallel jobs domains domains_jobs cores des_overhead pool
    adapt_advantage gen_rate fuzz teamsimd_sessions teamsimd_ops teamsimd_p99
    recovery_ms chaos_sessions chaos_sessions
