(* Incremental-vs-full DCM comparison on the Fig. 9 receiver experiment.

   Runs the receiver scenario in ADPM mode twice per seed — once with the
   from-scratch propagation engine and once with the dirty-seeded
   incremental engine — and compares the HC4 revision counts (the unit of
   actual narrowing work, as opposed to [evaluations] which also charges
   the per-wave status sweep). The design outcomes must be identical: the
   incremental engine restarts from the persisted greatest fixpoint, so
   operation counts, completion, and spins are checked per seed and any
   disagreement is reported loudly (it would falsify the soundness
   argument in DESIGN.md). *)

open Adpm_core
open Adpm_teamsim
open Adpm_scenarios

type row = {
  seed : int;
  full_revisions : int;
  incr_revisions : int;
  operations : int;
  outcomes_agree : bool;
}

type result = {
  rows : row list;
  total_full : int;
  total_incr : int;
  speedup : float;
  all_agree : bool;
}

let run_engine engine seed =
  let cfg =
    { (Config.default ~mode:Dpm.Adpm ~seed) with Config.engine }
  in
  let outcome = Engine.run cfg Receiver.scenario in
  (outcome.Engine.o_summary, Dpm.revision_work outcome.Engine.o_dpm)

let run ~seeds () =
  let rows =
    List.map
      (fun seed ->
        let full_sum, full_revisions = run_engine Dpm.Full seed in
        let incr_sum, incr_revisions = run_engine Dpm.Incremental seed in
        let outcomes_agree =
          full_sum.Metrics.s_completed = incr_sum.Metrics.s_completed
          && full_sum.Metrics.s_operations = incr_sum.Metrics.s_operations
          && full_sum.Metrics.s_spins = incr_sum.Metrics.s_spins
        in
        {
          seed;
          full_revisions;
          incr_revisions;
          operations = incr_sum.Metrics.s_operations;
          outcomes_agree;
        })
      (List.init seeds (fun i -> i + 1))
  in
  let total_full = List.fold_left (fun a r -> a + r.full_revisions) 0 rows in
  let total_incr = List.fold_left (fun a r -> a + r.incr_revisions) 0 rows in
  let speedup =
    if total_incr = 0 then infinity
    else float_of_int total_full /. float_of_int total_incr
  in
  let all_agree = List.for_all (fun r -> r.outcomes_agree) rows in
  { rows; total_full; total_incr; speedup; all_agree }

let render result =
  let b = Buffer.create 1024 in
  Printf.bprintf b "%-6s %12s %12s %8s %8s %s\n" "seed" "full-revs"
    "incr-revs" "ratio" "ops" "outcome";
  List.iter
    (fun r ->
      Printf.bprintf b "%-6d %12d %12d %8.2f %8d %s\n" r.seed
        r.full_revisions r.incr_revisions
        (if r.incr_revisions = 0 then infinity
         else float_of_int r.full_revisions /. float_of_int r.incr_revisions)
        r.operations
        (if r.outcomes_agree then "identical" else "DIVERGED"))
    result.rows;
  Printf.bprintf b "\ntotal HC4 revisions: full=%d incremental=%d speedup=%.2fx\n"
    result.total_full result.total_incr result.speedup;
  if not result.all_agree then
    Buffer.add_string b
      "WARNING: engines produced different design outcomes on some seeds\n";
  Buffer.contents b
