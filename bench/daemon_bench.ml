(* teamsimd load bench: N concurrent scripted sessions over real unix
   sockets against an in-process daemon, all driven from one thread (the
   client's [pump] runs the daemon's event loop while it waits — no
   domains, no forks, so the section composes with the fork/domain
   ordering rules in main.ml).

   Reports the session count, aggregate exec throughput, and the p99
   per-op round-trip latency (client send -> response frame decoded). *)

open Adpm_serve
module Stats_acc = Adpm_util.Stats_acc

type result = {
  sessions : int;
  total_ops : int;
  ops_per_s : float;
  p99_ms : float;
  wall_s : float;
}

let designers = [| "alice"; "bob"; "leader" |]

let run ?(sessions = 64) ?(ops_per_session = 8) () =
  let path =
    let f = Filename.temp_file "teamsimd_bench" ".sock" in
    Sys.remove f;
    f
  in
  let cfg =
    {
      (Daemon.default_config ~addr:(Daemon.Unix_path path)
         ~scenarios:[ Adpm_scenarios.Simple.scenario ])
      with
      Daemon.dc_max_sessions = sessions;
    }
  in
  let daemon = Daemon.create cfg in
  let pump () = ignore (Daemon.step ~timeout:0. daemon : bool) in
  let rpc c req = Client.rpc ~timeout:60. ~pump c req in
  let clients =
    Array.init sessions (fun _ ->
        let c = Client.connect (Unix.ADDR_UNIX path) in
        pump ();
        c)
  in
  let session_ids =
    Array.mapi
      (fun i c ->
        let resp =
          rpc c
            (Wire.Open
               {
                 scenario = "simple";
                 mode = Adpm_core.Dpm.Adpm;
                 seed = i + 1;
                 designer = designers.(i mod Array.length designers);
               })
        in
        match Client.body_str resp "session" with
        | Some sid -> sid
        | None ->
          failwith
            (Printf.sprintf "daemon_bench: open %d failed: %s" i
               (Adpm_trace.Json.to_string resp.Wire.r_body)))
      clients
  in
  let latencies = Stats_acc.create () in
  let total_ops = ref 0 in
  let t0 = Unix.gettimeofday () in
  for round = 1 to ops_per_session do
    let line = if round mod 3 = 0 then "step" else "auto" in
    Array.iteri
      (fun i c ->
        let s0 = Unix.gettimeofday () in
        let resp = rpc c (Wire.Exec { session = session_ids.(i); line }) in
        Stats_acc.add latencies ((Unix.gettimeofday () -. s0) *. 1000.);
        incr total_ops;
        if not resp.Wire.r_ok then
          failwith
            (Printf.sprintf "daemon_bench: exec failed: %s"
               (Adpm_trace.Json.to_string resp.Wire.r_body)))
      clients
  done;
  let wall = Unix.gettimeofday () -. t0 in
  Array.iteri
    (fun i c ->
      ignore (rpc c (Wire.Close { session = session_ids.(i) }) : Wire.response);
      Client.close c)
    clients;
  Daemon.stop daemon;
  {
    sessions;
    total_ops = !total_ops;
    ops_per_s = float_of_int !total_ops /. wall;
    p99_ms = Stats_acc.quantile latencies 0.99;
    wall_s = wall;
  }

let render r =
  Printf.sprintf
    "%d concurrent sessions, %d exec ops in %.2fs -> %.0f ops/s, p99 %.2fms\n"
    r.sessions r.total_ops r.wall_s r.ops_per_s r.p99_ms
