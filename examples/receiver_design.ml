(* The MEMS wireless-receiver case (Section 3.2) — the "harder", mostly
   non-linear scenario — plus a DDDL-defined scenario to show the
   description-language path end to end.

     dune exec examples/receiver_design.exe *)

open Adpm_core
open Adpm_teamsim
open Adpm_scenarios

let () =
  print_endline "MEMS-based wireless receiver front-end: mixed-signal";
  print_endline "circuitry (circuit) and a MEMS channel-selection filter";
  print_endline "(device) designed concurrently under bandwidth, gain,";
  print_endline "impedance, precision and power constraints.";
  print_endline "35 properties, 30 mostly non-linear constraints.";

  (* one run per mode, with the notification traffic ADPM generates *)
  List.iter
    (fun mode ->
      Printf.printf "\n=== %s run (seed 3) ===\n" (Dpm.mode_to_string mode);
      let cfg = Config.default ~mode ~seed:3 in
      let outcome = Engine.run cfg Receiver.scenario in
      print_endline (Metrics.summary_line outcome.Engine.o_summary))
    [ Dpm.Conventional; Dpm.Adpm ];

  (* the tightness sweep of Fig. 10, in miniature *)
  print_endline "\n=== gain-requirement tightness (Fig. 10, 3 seeds/point) ===";
  List.iter
    (fun req_gain ->
      let scenario =
        Scenario.make ~name:"receiver" ~description:""
          ~models:Receiver.scenario.Scenario.sc_models (fun ~mode ->
            Receiver.build ~req_gain () ~mode)
      in
      let mean mode =
        let cfg = Config.default ~mode ~seed:0 in
        let summaries = Engine.run_many cfg scenario ~seeds:[ 1; 2; 3 ] in
        List.fold_left (fun a s -> a +. float_of_int s.Metrics.s_operations) 0. summaries
        /. 3.
      in
      Printf.printf "  req-gain %5.0f: conventional %6.1f ops | ADPM %5.1f ops\n"
        req_gain (mean Dpm.Conventional) (mean Dpm.Adpm))
    [ 30.; 1000.; 3000. ];

  (* the DDDL path: parse, elaborate, simulate *)
  print_endline "\n=== a DDDL-defined scenario, end to end ===";
  print_endline "(the simplified two-subsystem case, written in the";
  print_endline " scenario-description language; see Simple.source)";
  let scenario = Simple.scenario in
  List.iter
    (fun mode ->
      let cfg = Config.default ~mode ~seed:1 in
      let outcome = Engine.run cfg scenario in
      Printf.printf "  %s\n" (Metrics.summary_line outcome.Engine.o_summary))
    [ Dpm.Conventional; Dpm.Adpm ]
