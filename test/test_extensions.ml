(* Tests for the extension features: generated scenarios, bound shaving,
   indirect alpha/beta, forward-ordering variants, statistics export, and
   the scaling experiment. *)

open Adpm_interval
open Adpm_expr
open Adpm_csp
open Adpm_core
open Adpm_teamsim
open Adpm_scenarios

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* {2 Generated scenarios} *)

let test_generated_counts () =
  let p = Generated.default_params ~subsystems:4 ~vars:3 in
  let dpm = Generated.build p ~mode:Dpm.Adpm in
  let net = Dpm.network dpm in
  Alcotest.(check int) "properties" (Generated.property_count p)
    (List.length (Network.prop_names net));
  Alcotest.(check int) "constraints" (Generated.constraint_count p)
    (Network.constraint_count net);
  Alcotest.(check int) "designers (leader + 4)" 5
    (List.length (Dpm.designers dpm))

let test_generated_deterministic () =
  let p = Generated.default_params ~subsystems:3 ~vars:2 in
  let d1 = Generated.build p ~mode:Dpm.Adpm in
  let d2 = Generated.build p ~mode:Dpm.Adpm in
  (* identical generated coefficients => identical requirement values *)
  List.iter
    (fun prop ->
      Alcotest.(check (option (float 1e-12)))
        (prop ^ " equal across builds")
        (Network.assigned_num (Dpm.network d1) prop)
        (Network.assigned_num (Dpm.network d2) prop))
    [ "p_budget"; "gmin0"; "gmin1"; "gmin2" ];
  let p' = { p with Generated.g_seed = 99 } in
  let d3 = Generated.build p' ~mode:Dpm.Adpm in
  Alcotest.(check bool) "different seed differs" true
    (Network.assigned_num (Dpm.network d1) "p_budget"
    <> Network.assigned_num (Dpm.network d3) "p_budget")

let test_generated_witness_satisfiable () =
  (* binding every parameter to the witness value and every derived
     property to its model value satisfies all constraints *)
  let p = Generated.default_params ~subsystems:3 ~vars:2 in
  let scenario = Generated.scenario p in
  let dpm = scenario.Scenario.sc_build ~mode:Dpm.Conventional in
  let net = Dpm.network dpm in
  for i = 0 to 2 do
    for j = 0 to 1 do
      Network.assign net (Printf.sprintf "x%d_%d" i j) (Value.Num 5.)
    done
  done;
  List.iter
    (fun (prop, model) ->
      let v = Expr.eval (fun name ->
          match Network.assigned_num net name with
          | Some x -> x
          | None -> Alcotest.fail (name ^ " unbound")) model
      in
      Network.assign net prop (Value.Num v))
    scenario.Scenario.sc_models;
  Alcotest.(check bool) "witness satisfies everything" true (Network.solved net)

let test_generated_completes () =
  List.iter
    (fun mode ->
      List.iter
        (fun seed ->
          let p = Generated.default_params ~subsystems:3 ~vars:2 in
          let cfg = Config.default ~mode ~seed in
          let outcome = Engine.run cfg (Generated.scenario p) in
          Alcotest.(check bool)
            (Printf.sprintf "generated %s seed %d completes"
               (Dpm.mode_to_string mode) seed)
            true outcome.Engine.o_summary.Metrics.s_completed)
        [ 1; 2 ])
    [ Dpm.Conventional; Dpm.Adpm ]

let test_generated_validation () =
  Alcotest.(check bool) "1 subsystem rejected" true
    (try
       ignore (Generated.build (Generated.default_params ~subsystems:1 ~vars:2)
                 ~mode:Dpm.Adpm);
       false
     with Invalid_argument _ -> true)

(* {2 Bound shaving} *)

let shaving_fixture () =
  (* the mid-design receiver state where hull consistency is weak *)
  let dpm = Receiver.build ~req_gain:2000. () ~mode:Dpm.Adpm in
  let net = Dpm.network dpm in
  Network.assign net "bias-current" (Value.Num 9.);
  Network.assign net "mixer-gm" (Value.Num 18.);
  net

let mean_window net outcome =
  let widths =
    List.filter_map
      (fun (name, d) ->
        if Network.is_bound net name then None
        else
          Some (Domain.relative_measure ~initial:(Network.initial_domain net name) d))
      outcome.Propagate.feasible
  in
  List.fold_left ( +. ) 0. widths /. float_of_int (List.length widths)

let test_shaving_tightens () =
  let net = shaving_fixture () in
  let hull = Propagate.run ~consistency:`Hull net in
  let shaved = Propagate.run ~consistency:(`Shave 4) net in
  Alcotest.(check bool) "strictly narrower windows" true
    (mean_window net shaved < mean_window net hull -. 0.01);
  Alcotest.(check bool) "more evaluations" true
    (shaved.Propagate.evaluations > hull.Propagate.evaluations)

let test_shaving_sound () =
  (* shaving must not remove the witness solution *)
  let dpm = Receiver.build () ~mode:Dpm.Adpm in
  let net = Dpm.network dpm in
  let witness =
    [
      ("diff-pair-w", 4.); ("freq-ind", 0.2); ("bias-current", 4.);
      ("load-res", 1.); ("mixer-gm", 5.); ("mixer-bias", 2.);
      ("lna-gain", 40.); ("lna-power", 140.); ("lna-zin", 50.);
      ("mixer-gain", 7.5); ("mixer-power", 24.); ("beam-length", 13.);
      ("beam-width", 2.); ("beam-thickness", 2.25); ("gap", 0.5);
      ("resonator-q", 2000.); ("drive-v", 10.); ("center-freq", 100.);
      ("filter-bw", 1.); ("insertion-att", 1.37); ("filter-power", 4.);
      ("freq-precision", 1.9);
    ]
  in
  let outcome = Propagate.run ~consistency:(`Shave 8) net in
  List.iter
    (fun (prop, v) ->
      let d = List.assoc prop outcome.Propagate.feasible in
      match Domain.hull d with
      | Some iv ->
        Alcotest.(check bool)
          (Printf.sprintf "witness %s=%g survives shaving" prop v)
          true
          (Interval.mem v (Interval.inflate 1e-6 iv))
      | None -> Alcotest.fail (prop ^ " wiped out"))
    witness

let test_shaving_validation () =
  let net = shaving_fixture () in
  Alcotest.(check bool) "1 slice rejected" true
    (try
       ignore (Propagate.run ~consistency:(`Shave 1) net);
       false
     with Invalid_argument _ -> true)

(* {2 Indirect alpha/beta (the 2.3.2 extension)} *)

let test_indirect_beta () =
  let net = Network.create () in
  Network.add_prop net "a" (Domain.continuous 0. 1.);
  Network.add_prop net "b" (Domain.continuous 0. 1.);
  Network.add_prop net "c" (Domain.continuous 0. 1.);
  let v = Expr.var in
  let c1 = Network.add_constraint net ~name:"ab" (v "a") Constr.Le (v "b") in
  let c2 = Network.add_constraint net ~name:"bc" (v "b") Constr.Le (v "c") in
  let _c3 = Network.add_constraint net ~name:"cc" (v "c") Constr.Le (Expr.const 1.) in
  Alcotest.(check int) "direct beta a" 1 (Network.beta net "a");
  (* a -> {ab}; neighbours {a,b}; their constraints {ab, bc} *)
  Alcotest.(check int) "indirect beta a" 2 (Heuristic_data.indirect_beta net "a");
  Alcotest.(check int) "indirect beta b" 3 (Heuristic_data.indirect_beta net "b");
  Network.set_status net c2.Constr.id Constr.Violated;
  Alcotest.(check int) "indirect alpha a sees bc" 1
    (Heuristic_data.indirect_alpha net "a");
  Alcotest.(check int) "direct alpha a does not" 0 (Network.alpha net "a");
  ignore c1

(* {2 Forward orderings} *)

let test_forward_orderings_complete () =
  List.iter
    (fun ordering ->
      List.iter
        (fun mode ->
          let cfg = Config.default ~mode ~seed:4 in
          let cfg = { cfg with Config.forward_ordering = ordering } in
          let outcome = Engine.run cfg Sensor.scenario in
          Alcotest.(check bool) "completes" true
            outcome.Engine.o_summary.Metrics.s_completed)
        [ Dpm.Conventional; Dpm.Adpm ])
    [ Config.Smallest_subspace; Config.Most_constrained; Config.Random_target ]

(* {2 Export} *)

let sample_summary () =
  let cfg = Config.default ~mode:Dpm.Adpm ~seed:1 in
  (Engine.run cfg Simple.scenario).Engine.o_summary

let test_export_csv () =
  let s = sample_summary () in
  let csv = Export.profile_csv s in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + one row per record"
    (1 + List.length s.Metrics.s_profile)
    (List.length lines);
  Alcotest.(check bool) "header" true
    (String.length (List.hd lines) > 0 && contains (List.hd lines) "designer")

let test_export_json () =
  let s = sample_summary () in
  let json = Export.summary_json s in
  Alcotest.(check bool) "has scenario field" true (contains json {|"scenario":"simple"|});
  Alcotest.(check bool) "has profile array" true (contains json {|"profile":[|});
  (* crude structural sanity: balanced braces and brackets *)
  let count c = String.fold_left (fun n ch -> if ch = c then n + 1 else n) 0 json in
  Alcotest.(check int) "balanced braces" (count '{') (count '}');
  Alcotest.(check int) "balanced brackets" (count '[') (count ']')

let test_export_csv_escaping () =
  Alcotest.(check bool) "quotes doubled" true
    (contains
       (Export.runs_csv
          [
            {
              Metrics.s_scenario = "we,ird\"name";
              s_mode = Dpm.Adpm;
              s_seed = 1;
              s_completed = true;
              s_operations = 1;
              s_evaluations = 1;
              s_spins = 0;
              s_faults = Metrics.no_faults;
              s_profile = [];
            };
          ])
       "\"we,ird\"\"name\"")

(* {2 Scaling experiment} *)

let test_scaling_smoke () =
  let r = Adpm_experiments.Exp_scaling.run ~seeds:2 () in
  Alcotest.(check int) "five size points" 5
    (List.length r.Adpm_experiments.Exp_scaling.by_size);
  Alcotest.(check int) "four tightness points" 4
    (List.length r.Adpm_experiments.Exp_scaling.by_tightness);
  let points =
    r.Adpm_experiments.Exp_scaling.by_size
    @ r.Adpm_experiments.Exp_scaling.by_tightness
  in
  List.iter
    (fun p ->
      Alcotest.(check bool) (p.Adpm_experiments.Exp_scaling.label ^ " completed")
        true p.Adpm_experiments.Exp_scaling.completed)
    points;
  (* at two seeds per point individual ratios are noisy; the aggregate
     acceleration must still be clear *)
  let mean_ratio =
    List.fold_left (fun a p -> a +. p.Adpm_experiments.Exp_scaling.ops_ratio) 0.
      points
    /. float_of_int (List.length points)
  in
  Alcotest.(check bool) "ADPM accelerates on average" true (mean_ratio > 1.2);
  Alcotest.(check bool) "render works" true
    (String.length (Adpm_experiments.Exp_scaling.render r) > 0)

let suite =
  [
    ("generated scenario counts", `Quick, test_generated_counts);
    ("generated scenario determinism", `Quick, test_generated_deterministic);
    ("generated witness satisfiable", `Quick, test_generated_witness_satisfiable);
    ("generated scenarios complete", `Slow, test_generated_completes);
    ("generated validation", `Quick, test_generated_validation);
    ("shaving tightens windows", `Quick, test_shaving_tightens);
    ("shaving preserves witnesses", `Quick, test_shaving_sound);
    ("shaving validation", `Quick, test_shaving_validation);
    ("indirect alpha/beta", `Quick, test_indirect_beta);
    ("all forward orderings complete", `Slow, test_forward_orderings_complete);
    ("export: profile CSV", `Quick, test_export_csv);
    ("export: summary JSON", `Quick, test_export_json);
    ("export: CSV escaping", `Quick, test_export_csv_escaping);
    ("scaling experiment smoke", `Slow, test_scaling_smoke);
  ]
