(* Tests for the extension features: generated scenarios, bound shaving,
   indirect alpha/beta, forward-ordering variants, statistics export, and
   the scaling experiment. *)

open Adpm_interval
open Adpm_expr
open Adpm_csp
open Adpm_core
open Adpm_teamsim
open Adpm_scenarios

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* {2 Generated scenarios} *)

let test_generated_counts () =
  let p = Generated.default_params ~subsystems:4 ~vars:3 in
  let dpm = Generated.build p ~mode:Dpm.Adpm in
  let net = Dpm.network dpm in
  Alcotest.(check int) "properties" (Generated.property_count p)
    (List.length (Network.prop_names net));
  Alcotest.(check int) "constraints" (Generated.constraint_count p)
    (Network.constraint_count net);
  Alcotest.(check int) "designers (leader + 4)" 5
    (List.length (Dpm.designers dpm))

let test_generated_deterministic () =
  let p = Generated.default_params ~subsystems:3 ~vars:2 in
  let d1 = Generated.build p ~mode:Dpm.Adpm in
  let d2 = Generated.build p ~mode:Dpm.Adpm in
  (* identical generated coefficients => identical requirement values *)
  List.iter
    (fun prop ->
      Alcotest.(check (option (float 1e-12)))
        (prop ^ " equal across builds")
        (Network.assigned_num (Dpm.network d1) prop)
        (Network.assigned_num (Dpm.network d2) prop))
    [ "p_budget"; "gmin0"; "gmin1"; "gmin2" ];
  let p' = { p with Generated.g_seed = 99 } in
  let d3 = Generated.build p' ~mode:Dpm.Adpm in
  Alcotest.(check bool) "different seed differs" true
    (Network.assigned_num (Dpm.network d1) "p_budget"
    <> Network.assigned_num (Dpm.network d3) "p_budget")

let test_generated_witness_satisfiable () =
  (* binding every parameter to the witness value and every derived
     property to its model value satisfies all constraints *)
  let p = Generated.default_params ~subsystems:3 ~vars:2 in
  let scenario = Generated.scenario p in
  let dpm = scenario.Scenario.sc_build ~mode:Dpm.Conventional in
  let net = Dpm.network dpm in
  for i = 0 to 2 do
    for j = 0 to 1 do
      Network.assign net (Printf.sprintf "x%d_%d" i j) (Value.Num 5.)
    done
  done;
  List.iter
    (fun (prop, model) ->
      let v = Expr.eval (fun name ->
          match Network.assigned_num net name with
          | Some x -> x
          | None -> Alcotest.fail (name ^ " unbound")) model
      in
      Network.assign net prop (Value.Num v))
    scenario.Scenario.sc_models;
  Alcotest.(check bool) "witness satisfies everything" true (Network.solved net)

let test_generated_completes () =
  List.iter
    (fun mode ->
      List.iter
        (fun seed ->
          let p = Generated.default_params ~subsystems:3 ~vars:2 in
          let cfg = Config.default ~mode ~seed in
          let outcome = Engine.run cfg (Generated.scenario p) in
          Alcotest.(check bool)
            (Printf.sprintf "generated %s seed %d completes"
               (Dpm.mode_to_string mode) seed)
            true outcome.Engine.o_summary.Metrics.s_completed)
        [ 1; 2 ])
    [ Dpm.Conventional; Dpm.Adpm ]

let test_generated_validation () =
  Alcotest.(check bool) "1 subsystem rejected" true
    (try
       ignore (Generated.build (Generated.default_params ~subsystems:1 ~vars:2)
                 ~mode:Dpm.Adpm);
       false
     with Invalid_argument _ -> true)

let test_generated_spec_roundtrip () =
  let cases =
    [
      Generated.default_params ~subsystems:4 ~vars:3;
      { (Generated.default_params ~subsystems:5 ~vars:2) with
        Generated.g_seed = 7; g_slack = 0.3; g_topology = Generated.Star };
      { (Generated.default_params ~subsystems:6 ~vars:1) with
        Generated.g_topology = Generated.Random 0.25;
        g_coupling = 0.5; g_slack_jitter = 0.4 };
    ]
  in
  List.iter
    (fun p ->
      let spec = Generated.spec_of_params p in
      match Generated.params_of_spec spec with
      | Ok p' ->
        Alcotest.(check bool) (spec ^ " round-trips") true (p = p')
      | Error e -> Alcotest.failf "%s failed to parse: %s" spec e)
    cases;
  (* omitted fields default *)
  (match Generated.params_of_spec "n=3,k=2" with
  | Ok p ->
    Alcotest.(check bool) "defaults fill in" true
      (p = Generated.default_params ~subsystems:3 ~vars:2)
  | Error e -> Alcotest.fail e);
  let expect_error label spec needle =
    match Generated.params_of_spec spec with
    | Ok _ -> Alcotest.failf "%s unexpectedly parsed" label
    | Error e ->
      Alcotest.(check bool) (label ^ ": " ^ e) true (contains e needle)
  in
  expect_error "malformed field" "n=3,k" "key=value";
  expect_error "unknown key" "n=3,k=2,frobs=1" "unknown field";
  expect_error "bad number" "n=3,k=two" "not an integer";
  expect_error "bad topology" "n=3,k=2,topology=mesh" "unknown topology";
  expect_error "validation folds to Error" "n=1,k=2" "subsystems";
  expect_error "empty spec" "" "empty"

let test_generated_topologies () =
  let count_edges p =
    Generated.constraint_count p - (2 * p.Generated.g_subsystems) - 1
  in
  let base = Generated.default_params ~subsystems:4 ~vars:2 in
  Alcotest.(check int) "ring n=4 has 4 couplings" 4 (count_edges base);
  Alcotest.(check int) "star n=4 has 3 couplings" 3
    (count_edges { base with Generated.g_topology = Generated.Star });
  Alcotest.(check int) "random-0 is the spanning chain" 3
    (count_edges { base with Generated.g_topology = Generated.Random 0. });
  Alcotest.(check int) "random-1 is the complete graph" 6
    (count_edges { base with Generated.g_topology = Generated.Random 1. });
  Alcotest.(check int) "coupling adds round(c*n) edges" 6
    (count_edges { base with Generated.g_coupling = 0.5 });
  (* non-default knobs still elaborate and keep the witness satisfiable *)
  let p =
    { base with Generated.g_topology = Generated.Star;
      g_coupling = 0.5; g_slack_jitter = 0.5 }
  in
  let scenario = Generated.scenario p in
  let dpm = scenario.Scenario.sc_build ~mode:Dpm.Conventional in
  let net = Dpm.network dpm in
  for i = 0 to 3 do
    for j = 0 to 1 do
      Network.assign net (Printf.sprintf "x%d_%d" i j) (Value.Num 5.)
    done
  done;
  List.iter
    (fun (prop, model) ->
      let v = Expr.eval (fun name ->
          match Network.assigned_num net name with
          | Some x -> x
          | None -> Alcotest.fail (name ^ " unbound")) model
      in
      Network.assign net prop (Value.Num v))
    scenario.Scenario.sc_models;
  Alcotest.(check bool) "witness satisfies star+coupling+jitter" true
    (Network.solved net)

let test_generated_canonical_artifact () =
  (* the scenario's name is its spec, and resolving that spec on a fresh
     parse yields the identical DDDL text: same spec -> same artifact *)
  let p =
    { (Generated.default_params ~subsystems:3 ~vars:2) with
      Generated.g_seed = 11; g_topology = Generated.Random 0.5;
      g_coupling = 0.3; g_slack_jitter = 0.2 }
  in
  let scenario = Generated.scenario p in
  let spec = Generated.spec_of_params p in
  Alcotest.(check string) "scenario named by spec" ("gen:" ^ spec)
    scenario.Scenario.sc_name;
  match Generated.params_of_spec spec with
  | Error e -> Alcotest.fail e
  | Ok p' ->
    Alcotest.(check string) "same spec, same DDDL text" (Generated.source p)
      (Generated.source p')

let qcheck_generated_sources =
  (* 100 random parameter points: the emitted DDDL must round-trip
     (Emit.checked raises otherwise) and the spec string must be the
     identity on params *)
  let gen =
    QCheck.Gen.(
      let* n = int_range 2 5 in
      let* k = int_range 1 3 in
      let* seed = int_bound 1000 in
      let* slack = float_range 0.05 0.5 in
      let* jitter = float_range 0. 0.9 in
      let* coupling = float_range 0. 1. in
      let* topology =
        oneof
          [
            return Generated.Ring;
            return Generated.Star;
            map (fun p -> Generated.Random p) (float_range 0. 1.);
          ]
      in
      return
        { Generated.g_subsystems = n; g_vars_per_subsystem = k; g_seed = seed;
          g_slack = slack; g_topology = topology; g_coupling = coupling;
          g_slack_jitter = jitter })
  in
  QCheck.Test.make ~name:"generated specs emit round-tripping DDDL" ~count:100
    (QCheck.make ~print:Generated.spec_of_params gen)
    (fun p ->
      let src = Generated.source p in
      String.length src > 0
      && Generated.params_of_spec (Generated.spec_of_params p) = Ok p)

(* {2 Registry} *)

let expect_unresolvable name ~sub =
  match Registry.resolve name with
  | _ -> Alcotest.failf "%S resolved but should not" name
  | exception Invalid_argument msg ->
    if not (contains msg sub) then
      Alcotest.failf "%S: error %S does not mention %S" name msg sub

let test_registry_builtin () =
  let s = Registry.resolve "lna" in
  Alcotest.(check string) "plain name resolves" "lna" s.Scenario.sc_name;
  (match Registry.resolve_result "sensor" with
  | Ok s -> Alcotest.(check string) "result form" "sensor" s.Scenario.sc_name
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "four builtins" 4 (List.length Registry.builtin)

let test_registry_gen () =
  (* a partial spec resolves; its canonical name resolves back to the
     exact same artifact (the trace-header round trip) *)
  let s = Registry.resolve "gen:n=3,k=2,seed=7" in
  Alcotest.(check bool) "named by canonical spec" true
    (contains s.Scenario.sc_name "gen:n=3,k=2,seed=7");
  let s' = Registry.resolve s.Scenario.sc_name in
  Alcotest.(check string) "canonical name is a fixed point"
    s.Scenario.sc_name s'.Scenario.sc_name;
  match Generated.params_of_spec (String.sub s.Scenario.sc_name 4
                                    (String.length s.Scenario.sc_name - 4))
  with
  | Error e -> Alcotest.fail e
  | Ok p ->
    Alcotest.(check int) "seed carried through" 7 p.Generated.g_seed

let test_registry_file () =
  let path = Filename.temp_file "adpm_registry" ".dddl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc Lna.source);
      let s = Registry.resolve ("file:" ^ path) in
      Alcotest.(check string) "named by its reference" ("file:" ^ path)
        s.Scenario.sc_name;
      let from_file = s.Scenario.sc_build ~mode:Dpm.Adpm in
      let builtin = Lna.scenario.Scenario.sc_build ~mode:Dpm.Adpm in
      Alcotest.(check int) "same network as the builtin twin"
        (Network.constraint_count (Dpm.network builtin))
        (Network.constraint_count (Dpm.network from_file)))

let test_registry_failures () =
  (* the three failure classes are distinct, descriptive errors *)
  expect_unresolvable "nonesuch" ~sub:"unknown scenario nonesuch";
  expect_unresolvable "nonesuch" ~sub:"gen:<spec>";
  expect_unresolvable "gen:frobs=1" ~sub:"malformed gen: spec";
  expect_unresolvable "gen:frobs=1" ~sub:"unknown field";
  expect_unresolvable "file:/nonexistent/no.dddl"
    ~sub:"cannot read scenario file";
  let path = Filename.temp_file "adpm_registry" ".dddl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc "scenario broken { properties {");
      expect_unresolvable ("file:" ^ path) ~sub:"does not elaborate")

let test_registry_fingerprint_reproduction () =
  (* acceptance: the gen: name a run records in its trace header is
     enough for a fresh process to rebuild the scenario and reproduce the
     run bit-for-bit — replay resolves through the registry only *)
  let p =
    { (Generated.default_params ~subsystems:3 ~vars:2) with
      Generated.g_seed = 13; g_topology = Generated.Star; g_coupling = 0.4 }
  in
  let scenario = Generated.scenario p in
  let buffer, sink = Adpm_trace.Sink.memory ~capacity:100_000 in
  let tracer = Adpm_trace.Tracer.create sink in
  let cfg = Config.default ~mode:Dpm.Adpm ~seed:2 in
  let _ = Engine.run ~tracer cfg scenario in
  Adpm_trace.Tracer.close tracer;
  let events = Adpm_trace.Sink.Ring.contents buffer in
  (match events with
  | { Adpm_trace.Event.event = Adpm_trace.Event.Run_started { scenario; _ }; _ }
    :: _ ->
    Alcotest.(check string) "header records the spec"
      ("gen:" ^ Generated.spec_of_params p) scenario
  | _ -> Alcotest.fail "first event must be run_started");
  let report = Replay.run ~resolve:Registry.resolve events in
  if not (Replay.converged report) then
    Alcotest.failf "registry-resolved replay diverged:\n%s"
      (Replay.render report)

(* {2 Bound shaving} *)

let shaving_fixture () =
  (* the mid-design receiver state where hull consistency is weak *)
  let dpm = Receiver.build ~req_gain:2000. () ~mode:Dpm.Adpm in
  let net = Dpm.network dpm in
  Network.assign net "bias-current" (Value.Num 9.);
  Network.assign net "mixer-gm" (Value.Num 18.);
  net

let mean_window net outcome =
  let widths =
    List.filter_map
      (fun (name, d) ->
        if Network.is_bound net name then None
        else
          Some (Domain.relative_measure ~initial:(Network.initial_domain net name) d))
      outcome.Propagate.feasible
  in
  List.fold_left ( +. ) 0. widths /. float_of_int (List.length widths)

let test_shaving_tightens () =
  let net = shaving_fixture () in
  let hull = Propagate.run ~consistency:`Hull net in
  let shaved = Propagate.run ~consistency:(`Shave 4) net in
  Alcotest.(check bool) "strictly narrower windows" true
    (mean_window net shaved < mean_window net hull -. 0.01);
  Alcotest.(check bool) "more evaluations" true
    (shaved.Propagate.evaluations > hull.Propagate.evaluations)

let test_shaving_sound () =
  (* shaving must not remove the witness solution *)
  let dpm = Receiver.build () ~mode:Dpm.Adpm in
  let net = Dpm.network dpm in
  let witness =
    [
      ("diff-pair-w", 4.); ("freq-ind", 0.2); ("bias-current", 4.);
      ("load-res", 1.); ("mixer-gm", 5.); ("mixer-bias", 2.);
      ("lna-gain", 40.); ("lna-power", 140.); ("lna-zin", 50.);
      ("mixer-gain", 7.5); ("mixer-power", 24.); ("beam-length", 13.);
      ("beam-width", 2.); ("beam-thickness", 2.25); ("gap", 0.5);
      ("resonator-q", 2000.); ("drive-v", 10.); ("center-freq", 100.);
      ("filter-bw", 1.); ("insertion-att", 1.37); ("filter-power", 4.);
      ("freq-precision", 1.9);
    ]
  in
  let outcome = Propagate.run ~consistency:(`Shave 8) net in
  List.iter
    (fun (prop, v) ->
      let d = List.assoc prop outcome.Propagate.feasible in
      match Domain.hull d with
      | Some iv ->
        Alcotest.(check bool)
          (Printf.sprintf "witness %s=%g survives shaving" prop v)
          true
          (Interval.mem v (Interval.inflate 1e-6 iv))
      | None -> Alcotest.fail (prop ^ " wiped out"))
    witness

let test_shaving_validation () =
  let net = shaving_fixture () in
  Alcotest.(check bool) "1 slice rejected" true
    (try
       ignore (Propagate.run ~consistency:(`Shave 1) net);
       false
     with Invalid_argument _ -> true)

(* {2 Indirect alpha/beta (the 2.3.2 extension)} *)

let test_indirect_beta () =
  let net = Network.create () in
  Network.add_prop net "a" (Domain.continuous 0. 1.);
  Network.add_prop net "b" (Domain.continuous 0. 1.);
  Network.add_prop net "c" (Domain.continuous 0. 1.);
  let v = Expr.var in
  let c1 = Network.add_constraint net ~name:"ab" (v "a") Constr.Le (v "b") in
  let c2 = Network.add_constraint net ~name:"bc" (v "b") Constr.Le (v "c") in
  let _c3 = Network.add_constraint net ~name:"cc" (v "c") Constr.Le (Expr.const 1.) in
  Alcotest.(check int) "direct beta a" 1 (Network.beta net "a");
  (* a -> {ab}; neighbours {a,b}; their constraints {ab, bc} *)
  Alcotest.(check int) "indirect beta a" 2 (Heuristic_data.indirect_beta net "a");
  Alcotest.(check int) "indirect beta b" 3 (Heuristic_data.indirect_beta net "b");
  Network.set_status net c2.Constr.id Constr.Violated;
  Alcotest.(check int) "indirect alpha a sees bc" 1
    (Heuristic_data.indirect_alpha net "a");
  Alcotest.(check int) "direct alpha a does not" 0 (Network.alpha net "a");
  ignore c1

(* {2 Forward orderings} *)

let test_forward_orderings_complete () =
  List.iter
    (fun ordering ->
      List.iter
        (fun mode ->
          let cfg = Config.default ~mode ~seed:4 in
          let cfg = { cfg with Config.forward_ordering = ordering } in
          let outcome = Engine.run cfg Sensor.scenario in
          Alcotest.(check bool) "completes" true
            outcome.Engine.o_summary.Metrics.s_completed)
        [ Dpm.Conventional; Dpm.Adpm ])
    [ Config.Smallest_subspace; Config.Most_constrained; Config.Random_target ]

(* {2 Export} *)

let sample_summary () =
  let cfg = Config.default ~mode:Dpm.Adpm ~seed:1 in
  (Engine.run cfg Simple.scenario).Engine.o_summary

let test_export_csv () =
  let s = sample_summary () in
  let csv = Export.profile_csv s in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + one row per record"
    (1 + List.length s.Metrics.s_profile)
    (List.length lines);
  Alcotest.(check bool) "header" true
    (String.length (List.hd lines) > 0 && contains (List.hd lines) "designer")

let test_export_json () =
  let s = sample_summary () in
  let json = Export.summary_json s in
  Alcotest.(check bool) "has scenario field" true (contains json {|"scenario":"simple"|});
  Alcotest.(check bool) "has profile array" true (contains json {|"profile":[|});
  (* crude structural sanity: balanced braces and brackets *)
  let count c = String.fold_left (fun n ch -> if ch = c then n + 1 else n) 0 json in
  Alcotest.(check int) "balanced braces" (count '{') (count '}');
  Alcotest.(check int) "balanced brackets" (count '[') (count ']')

let test_export_csv_escaping () =
  Alcotest.(check bool) "quotes doubled" true
    (contains
       (Export.runs_csv
          [
            {
              Metrics.s_scenario = "we,ird\"name";
              s_mode = Dpm.Adpm;
              s_seed = 1;
              s_completed = true;
              s_operations = 1;
              s_evaluations = 1;
              s_spins = 0;
              s_faults = Metrics.no_faults;
              s_profile = [];
            };
          ])
       "\"we,ird\"\"name\"")

(* {2 Scaling experiment} *)

let test_scaling_smoke () =
  let r = Adpm_experiments.Exp_scaling.run ~seeds:2 () in
  Alcotest.(check int) "five size points" 5
    (List.length r.Adpm_experiments.Exp_scaling.by_size);
  Alcotest.(check int) "four tightness points" 4
    (List.length r.Adpm_experiments.Exp_scaling.by_tightness);
  let points =
    r.Adpm_experiments.Exp_scaling.by_size
    @ r.Adpm_experiments.Exp_scaling.by_tightness
  in
  List.iter
    (fun p ->
      Alcotest.(check bool) (p.Adpm_experiments.Exp_scaling.label ^ " completed")
        true p.Adpm_experiments.Exp_scaling.completed)
    points;
  (* at two seeds per point individual ratios are noisy; the aggregate
     acceleration must still be clear *)
  let mean_ratio =
    List.fold_left (fun a p -> a +. p.Adpm_experiments.Exp_scaling.ops_ratio) 0.
      points
    /. float_of_int (List.length points)
  in
  Alcotest.(check bool) "ADPM accelerates on average" true (mean_ratio > 1.2);
  Alcotest.(check bool) "render works" true
    (String.length (Adpm_experiments.Exp_scaling.render r) > 0)

let suite =
  [
    ("generated scenario counts", `Quick, test_generated_counts);
    ("generated scenario determinism", `Quick, test_generated_deterministic);
    ("generated witness satisfiable", `Quick, test_generated_witness_satisfiable);
    ("generated scenarios complete", `Slow, test_generated_completes);
    ("generated validation", `Quick, test_generated_validation);
    ("generated spec round-trip", `Quick, test_generated_spec_roundtrip);
    ("generated topologies", `Quick, test_generated_topologies);
    ("generated canonical artifact", `Quick, test_generated_canonical_artifact);
    QCheck_alcotest.to_alcotest qcheck_generated_sources;
    ("registry: builtins", `Quick, test_registry_builtin);
    ("registry: gen references", `Quick, test_registry_gen);
    ("registry: file references", `Quick, test_registry_file);
    ("registry: failure classes", `Quick, test_registry_failures);
    ( "registry: fingerprint reproduction",
      `Quick,
      test_registry_fingerprint_reproduction );
    ("shaving tightens windows", `Quick, test_shaving_tightens);
    ("shaving preserves witnesses", `Quick, test_shaving_sound);
    ("shaving validation", `Quick, test_shaving_validation);
    ("indirect alpha/beta", `Quick, test_indirect_beta);
    ("all forward orderings complete", `Slow, test_forward_orderings_complete);
    ("export: profile CSV", `Quick, test_export_csv);
    ("export: summary JSON", `Quick, test_export_json);
    ("export: CSV escaping", `Quick, test_export_csv_escaping);
    ("scaling experiment smoke", `Slow, test_scaling_smoke);
  ]
