(* Tests for HC4 revision: soundness (no solution is lost), contraction
   (results are sub-intervals of the inputs), and specific projections. *)

open Adpm_interval
open Adpm_expr

let iv = Alcotest.testable Interval.pp Interval.equal

let env_of bindings name = List.assoc name bindings

let narrowed = function
  | Hc4.Narrowed bs -> bs
  | Hc4.Empty -> Alcotest.fail "expected Narrowed"

let test_simple_le () =
  (* x + y <= 5 with x IN [0,10], y IN [2,3]:  x must be <= 3 *)
  let env = env_of [ ("x", Interval.make 0. 10.); ("y", Interval.make 2. 3.) ] in
  let expr = Expr.(Add (Var "x", Var "y")) in
  let bs = narrowed (Hc4.revise ~env expr (Interval.make neg_infinity 5.)) in
  let x = List.assoc "x" bs in
  Alcotest.(check bool) "x hi narrowed to ~3" true
    (Interval.hi x >= 3. && Interval.hi x < 3.001);
  Alcotest.(check (float 1e-9)) "x lo unchanged" 0. (Interval.lo x)

let test_point_satisfied_not_empty () =
  (* the one-ulp regression: degenerate boxes satisfying the target must
     not project to Empty (requires the projection slack) *)
  let env = env_of [ ("ga", Interval.of_point 6.25); ("xa", Interval.of_point 7.5) ] in
  let expr =
    Expr.(Sub (Var "ga", Add (Mul (Const 2., Var "xa"), Const 0.4)))
  in
  match Hc4.revise ~env expr (Interval.make neg_infinity 1e-9) with
  | Hc4.Empty -> Alcotest.fail "satisfied point box must not be Empty"
  | Hc4.Narrowed _ -> ()

let test_certain_violation_empty () =
  let env = env_of [ ("x", Interval.make 5. 6.) ] in
  let expr = Expr.Var "x" in
  (match Hc4.revise ~env expr (Interval.make neg_infinity 4.) with
  | Hc4.Empty -> ()
  | Hc4.Narrowed _ -> Alcotest.fail "x IN [5,6] <= 4 must be Empty");
  match Hc4.revise ~env (Expr.Sqrt (Expr.Neg expr)) Interval.full with
  | Hc4.Empty -> ()
  | Hc4.Narrowed _ -> Alcotest.fail "sqrt of negative box must be Empty"

let test_multiplication_projection () =
  (* x * y = 6, x IN [1,10], y IN [2,3] -> x IN [2,3] *)
  let env = env_of [ ("x", Interval.make 1. 10.); ("y", Interval.make 2. 3.) ] in
  let expr = Expr.(Mul (Var "x", Var "y")) in
  let bs = narrowed (Hc4.revise ~env expr (Interval.of_point 6.)) in
  let x = List.assoc "x" bs in
  Alcotest.(check bool) "x within [2,3] (+slack)" true
    (Interval.lo x > 1.99 && Interval.hi x < 3.01)

let test_multiple_occurrences () =
  (* x + x = 4 -> x = 2 (each occurrence projects to [2 - w, 2 + w]
     where w comes from the other occurrence's width; occurrences
     intersect) *)
  let env = env_of [ ("x", Interval.make 0. 10.) ] in
  let expr = Expr.(Add (Var "x", Var "x")) in
  let bs = narrowed (Hc4.revise ~env expr (Interval.of_point 4.)) in
  let x = List.assoc "x" bs in
  Alcotest.(check bool) "contains 2" true (Interval.mem 2. x);
  Alcotest.(check bool) "narrower than input" true (Interval.width x < 10.)

let test_min_max_projection () =
  (* min(x, y) >= 3 forces both above 3 *)
  let env = env_of [ ("x", Interval.make 0. 10.); ("y", Interval.make 0. 10.) ] in
  let expr = Expr.(Min (Var "x", Var "y")) in
  let bs = narrowed (Hc4.revise ~env expr (Interval.make 3. infinity)) in
  Alcotest.(check bool) "x >= 3" true (Interval.lo (List.assoc "x" bs) >= 2.99);
  Alcotest.(check bool) "y >= 3" true (Interval.lo (List.assoc "y" bs) >= 2.99)

let test_unchanged_variables_included () =
  let env = env_of [ ("x", Interval.make 0. 1.); ("y", Interval.make 0. 1.) ] in
  let expr = Expr.(Add (Var "x", Var "y")) in
  let bs = narrowed (Hc4.revise ~env expr Interval.full) in
  Alcotest.(check iv) "x unchanged" (Interval.make 0. 1.) (List.assoc "x" bs);
  Alcotest.(check iv) "y unchanged" (Interval.make 0. 1.) (List.assoc "y" bs)

(* {2 Property-based soundness: a random point solution is never lost} *)

let gen_case =
  QCheck.Gen.(
    let* x = float_range (-10.) 10. in
    let* y = float_range 0.1 10. in
    let* wx = float_range 0. 5. in
    let* wy = float_range 0. 5. in
    let* shape = int_range 0 5 in
    return (x, y, wx, wy, shape))

let shape_expr shape =
  let x = Expr.Var "x" and y = Expr.Var "y" in
  match shape with
  | 0 -> Expr.(Add (x, y))
  | 1 -> Expr.(Sub (Mul (x, y), Const 1.))
  | 2 -> Expr.(Add (Pow (x, 2), y))
  | 3 -> Expr.(Div (x, y))
  | 4 -> Expr.(Add (Abs x, Sqrt y))
  | _ -> Expr.(Max (x, Min (y, Const 3.)))

let hc4_preserves_solutions =
  QCheck.Test.make ~name:"HC4 never discards a witness point" ~count:1000
    (QCheck.make
       ~print:(fun (x, y, wx, wy, s) ->
         Printf.sprintf "x=%g y=%g wx=%g wy=%g shape=%d" x y wx wy s)
       gen_case)
    (fun (x, y, wx, wy, shape) ->
      let expr = shape_expr shape in
      let env =
        env_of
          [ ("x", Interval.make (x -. wx) (x +. wx));
            ("y", Interval.make (y -. wy) (y +. wy)) ]
      in
      let value = Expr.eval (env_of [ ("x", x); ("y", y) ]) expr in
      if not (Float.is_finite value) then true
      else begin
        (* target: an interval containing the witness value *)
        let target = Interval.make (value -. 0.5) (value +. 0.5) in
        match Hc4.revise ~env expr target with
        | Hc4.Empty -> false (* witness lost! *)
        | Hc4.Narrowed bs ->
          let tolerance_mem v iv' =
            Interval.mem v (Interval.inflate (1e-9 *. (1. +. abs_float v)) iv')
          in
          tolerance_mem x (List.assoc "x" bs)
          && tolerance_mem y (List.assoc "y" bs)
      end)

let hc4_contracts =
  QCheck.Test.make ~name:"HC4 outputs are sub-intervals of inputs" ~count:500
    (QCheck.make
       ~print:(fun (x, y, wx, wy, s) ->
         Printf.sprintf "x=%g y=%g wx=%g wy=%g shape=%d" x y wx wy s)
       gen_case)
    (fun (x, y, wx, wy, shape) ->
      let expr = shape_expr shape in
      let xiv = Interval.make (x -. wx) (x +. wx) in
      let yiv = Interval.make (y -. wy) (y +. wy) in
      let env = env_of [ ("x", xiv); ("y", yiv) ] in
      match Hc4.revise ~env expr (Interval.make (-5.) 5.) with
      | Hc4.Empty -> true
      | Hc4.Narrowed bs ->
        Interval.subset (List.assoc "x" bs) xiv
        && Interval.subset (List.assoc "y" bs) yiv)

(* {2 Compiled kernel: bit-identical to the boxed interpreter} *)

let shape_expr_k shape =
  let x = Expr.Var "x" and y = Expr.Var "y" in
  match shape with
  (* repeated occurrences exercise the accumulator intersection path *)
  | 6 -> Expr.(Add (x, x))
  | 7 -> Expr.(Mul (Add (x, y), Sub (x, y)))
  | 8 -> Expr.(Sub (Ln y, Neg x))
  | s -> shape_expr s

let gen_case_k =
  QCheck.Gen.(
    let* x = float_range (-10.) 10. in
    let* y = float_range 0.1 10. in
    let* wx = float_range 0. 5. in
    let* wy = float_range 0. 5. in
    let* shape = int_range 0 8 in
    return (x, y, wx, wy, shape))

let kernel_matches_boxed =
  QCheck.Test.make
    ~name:"compiled kernel is bit-identical to the boxed revise" ~count:2000
    (QCheck.make
       ~print:(fun (x, y, wx, wy, s) ->
         Printf.sprintf "x=%g y=%g wx=%g wy=%g shape=%d" x y wx wy s)
       gen_case_k)
    (fun (x, y, wx, wy, shape) ->
      let expr = shape_expr_k shape in
      let xiv = Interval.make (x -. wx) (x +. wx) in
      let yiv = Interval.make (y -. wy) (y +. wy) in
      let env = env_of [ ("x", xiv); ("y", yiv) ] in
      let target = Interval.make (-5.) 5. in
      let var_id = function "x" -> 0 | "y" -> 1 | n -> failwith n in
      let k = Hc4.compile ~var_id expr ~target in
      let lo = [| Interval.lo xiv; Interval.lo yiv |] in
      let hi = [| Interval.hi xiv; Interval.hi yiv |] in
      match (Hc4.revise ~env expr target, Hc4.revise_kernel k ~lo ~hi) with
      | Hc4.Empty, false -> true
      | Hc4.Empty, true | Hc4.Narrowed _, false -> false
      | Hc4.Narrowed bs, true ->
        (* the accumulators are indexed by position in [k_vars] (the
           expression's variable order), and must hold the exact same
           floats as the boxed result, down to the sign of zero *)
        let pos name =
          let id = var_id name in
          let rec find j = if k.Hc4.k_vars.(j) = id then j else find (j + 1) in
          find 0
        in
        List.for_all
          (fun (name, iv') ->
            let j = pos name in
            Float.equal k.Hc4.k_acc_lo.(j) (Interval.lo iv')
            && Float.equal k.Hc4.k_acc_hi.(j) (Interval.hi iv'))
          bs)

let suite =
  [
    ("simple inequality projection", `Quick, test_simple_le);
    ("satisfied point box is not Empty", `Quick, test_point_satisfied_not_empty);
    ("certain violation is Empty", `Quick, test_certain_violation_empty);
    ("multiplication projection", `Quick, test_multiplication_projection);
    ("multiple occurrences intersect", `Quick, test_multiple_occurrences);
    ("min/max projection", `Quick, test_min_max_projection);
    ("unchanged variables included", `Quick, test_unchanged_variables_included);
    QCheck_alcotest.to_alcotest hc4_preserves_solutions;
    QCheck_alcotest.to_alcotest hc4_contracts;
    QCheck_alcotest.to_alcotest kernel_matches_boxed;
  ]
