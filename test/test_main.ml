let () =
  Alcotest.run "adpm"
    [
      ("util", Test_util.suite);
      ("interval", Test_interval.suite);
      ("expr", Test_expr.suite);
      ("hc4", Test_hc4.suite);
      ("csp", Test_csp.suite);
      ("incremental", Test_incremental.suite);
      ("core", Test_core.suite);
      ("sim", Test_sim.suite);
      ("teamsim", Test_teamsim.suite);
      ("des", Test_des.suite);
      ("parallel", Test_parallel.suite);
      (* forks inside: must run before the "domains" suite spawns (the
         PR 7 fork latch) *)
      ("serve-wire", Test_serve.wire_suite);
      ("domains", Test_domains.suite);
      ("fault", Test_fault.suite);
      ("check", Test_check.suite);
      ("trace", Test_trace.suite);
      ("export", Test_export.suite);
      ("dddl", Test_dddl.suite);
      ("scenarios", Test_scenarios.suite);
      ("experiments", Test_experiments.suite);
      ("extensions", Test_extensions.suite);
      ("interactive", Test_interactive.suite);
      ("serve", Test_serve.suite);
      ("chaos", Test_chaos.suite);
    ]
