(* Tests for Adpm_util: deterministic RNG, streaming statistics, tables and
   charts. *)

open Adpm_util

let check_float = Alcotest.(check (float 1e-9))

(* {2 Rng} *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let ha = List.init 8 (fun _ -> Rng.bits64 a) in
  let hb = List.init 8 (fun _ -> Rng.bits64 b) in
  Alcotest.(check bool) "different seeds differ" true (ha <> hb)

let test_rng_split_independent () =
  let parent = Rng.create 7 in
  let child = Rng.split parent in
  let child_stream = List.init 8 (fun _ -> Rng.bits64 child) in
  let parent_stream = List.init 8 (fun _ -> Rng.bits64 parent) in
  Alcotest.(check bool) "split streams differ" true (child_stream <> parent_stream)

let test_rng_copy () =
  let a = Rng.create 3 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_int_bounds () =
  let rng = Rng.create 5 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 17)
  done;
  Alcotest.check_raises "bound 0 rejected"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng 0))

let test_rng_float_range () =
  let rng = Rng.create 11 in
  for _ = 1 to 1000 do
    let x = Rng.float_range rng 2.5 3.5 in
    Alcotest.(check bool) "in range" true (x >= 2.5 && x < 3.5)
  done;
  check_float "degenerate range" 4.0 (Rng.float_range rng 4.0 4.0)

let test_rng_uniformity () =
  (* crude chi-square-free check: each of 10 buckets gets 5-15% of draws *)
  let rng = Rng.create 13 in
  let buckets = Array.make 10 0 in
  let n = 10_000 in
  for _ = 1 to n do
    let i = Rng.int rng 10 in
    buckets.(i) <- buckets.(i) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "bucket roughly uniform" true
        (c > n / 20 && c < n * 3 / 20))
    buckets

let test_rng_pick_matches_pick_array () =
  (* pick walks the list without the old Array.of_list copy; it must keep
     drawing exactly one rng value and choosing the same element. *)
  let xs = [ "a"; "b"; "c"; "d"; "e"; "f"; "g" ] in
  let arr = Array.of_list xs in
  let a = Rng.create 23 and b = Rng.create 23 in
  for _ = 1 to 200 do
    Alcotest.(check string) "same choice, same stream" (Rng.pick_array b arr)
      (Rng.pick a xs)
  done

let test_rng_pick_and_shuffle () =
  let rng = Rng.create 17 in
  let xs = [ 1; 2; 3; 4; 5 ] in
  for _ = 1 to 50 do
    Alcotest.(check bool) "pick from list" true (List.mem (Rng.pick rng xs) xs)
  done;
  let shuffled = Rng.shuffle rng xs in
  Alcotest.(check (list int)) "permutation" xs (List.sort compare shuffled);
  Alcotest.check_raises "empty pick" (Invalid_argument "Rng.pick: empty list")
    (fun () -> ignore (Rng.pick rng []))

(* {2 Stats_acc} *)

let test_stats_basic () =
  let acc = Stats_acc.create () in
  List.iter (Stats_acc.add acc) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  Alcotest.(check int) "count" 8 (Stats_acc.count acc);
  check_float "mean" 5.0 (Stats_acc.mean acc);
  check_float "sample variance" (32. /. 7.) (Stats_acc.variance acc);
  check_float "min" 2. (Stats_acc.min_value acc);
  check_float "max" 9. (Stats_acc.max_value acc);
  check_float "total" 40. (Stats_acc.total acc)

let test_stats_empty () =
  let acc = Stats_acc.create () in
  Alcotest.(check bool) "mean is nan" true (Float.is_nan (Stats_acc.mean acc));
  check_float "variance 0" 0. (Stats_acc.variance acc);
  Alcotest.(check bool) "quantile nan" true (Float.is_nan (Stats_acc.quantile acc 0.5))

let test_stats_single () =
  let acc = Stats_acc.create () in
  Stats_acc.add acc 42.;
  check_float "mean" 42. (Stats_acc.mean acc);
  check_float "stddev" 0. (Stats_acc.stddev acc);
  check_float "median" 42. (Stats_acc.median acc)

let test_stats_quantiles () =
  let acc = Stats_acc.create () in
  List.iter (Stats_acc.add_int acc) [ 1; 2; 3; 4; 5 ];
  check_float "q0" 1. (Stats_acc.quantile acc 0.);
  check_float "q1" 5. (Stats_acc.quantile acc 1.);
  check_float "median" 3. (Stats_acc.median acc);
  check_float "q0.25" 2. (Stats_acc.quantile acc 0.25);
  (* clamped out-of-range arguments *)
  check_float "q>1 clamps" 5. (Stats_acc.quantile acc 2.)

let test_stats_quantile_cache_invalidation () =
  (* quantile caches the sorted array; an add must invalidate it so later
     queries see the new sample. *)
  let acc = Stats_acc.create () in
  List.iter (Stats_acc.add acc) [ 5.; 1.; 3. ];
  check_float "median before" 3. (Stats_acc.median acc);
  check_float "median again (cached)" 3. (Stats_acc.median acc);
  Stats_acc.add acc 100.;
  Stats_acc.add acc 200.;
  check_float "median after adds" 5. (Stats_acc.median acc);
  check_float "max quantile sees new samples" 200. (Stats_acc.quantile acc 1.)

let test_stats_insertion_order () =
  let acc = Stats_acc.create () in
  List.iter (Stats_acc.add acc) [ 3.; 1.; 2. ];
  Alcotest.(check (list (float 0.))) "to_list keeps order" [ 3.; 1.; 2. ]
    (Stats_acc.to_list acc)

let stats_welford_matches_naive =
  QCheck.Test.make ~name:"welford variance matches two-pass variance" ~count:200
    QCheck.(list_of_size Gen.(int_range 2 50) (float_bound_inclusive 1000.))
    (fun xs ->
      QCheck.assume (List.length xs >= 2);
      let acc = Stats_acc.create () in
      List.iter (Stats_acc.add acc) xs;
      let n = float_of_int (List.length xs) in
      let mean = List.fold_left ( +. ) 0. xs /. n in
      let var =
        List.fold_left (fun a x -> a +. ((x -. mean) ** 2.)) 0. xs /. (n -. 1.)
      in
      abs_float (Stats_acc.variance acc -. var) < 1e-6 *. (1. +. var))

(* {2 Table} *)

let test_table_render () =
  let t = Table.create ~title:"demo" [ "a"; "bb" ] in
  Table.set_align t [ Table.Left; Table.Right ];
  Table.add_row t [ "x"; "1" ];
  Table.add_row t [ "longer"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "has title" true (String.length s > 0 && s.[0] = 'd');
  Alcotest.(check bool) "right-aligned number" true
    (String.length s > 0
    &&
    let lines = String.split_on_char '\n' s in
    List.exists (fun l -> String.length l > 0 && String.ends_with ~suffix:" 1 |" l) lines)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_table_ragged_rows () =
  let t = Table.create [ "a"; "b"; "c" ] in
  Table.add_row t [ "only-one" ];
  Table.add_row t [ "1"; "2"; "3"; "4-too-many" ];
  let s = Table.render t in
  Alcotest.(check bool) "renders" true (String.length s > 0);
  Alcotest.(check bool) "extra cell dropped" false (contains s "4-too-many")

(* {2 Ascii_chart} *)

let test_chart_line () =
  let s =
    Ascii_chart.line_chart ~title:"t"
      [
        { Ascii_chart.label = "a"; points = [ (0., 0.); (1., 1.); (2., 4.) ] };
        { Ascii_chart.label = "b"; points = [ (0., 4.); (2., 0.) ] };
      ]
  in
  Alcotest.(check bool) "has legend a" true (contains s "* = a");
  Alcotest.(check bool) "has legend b" true (contains s "o = b")

let test_chart_empty_series () =
  let s = Ascii_chart.line_chart ~title:"empty" [] in
  Alcotest.(check bool) "renders" true (String.length s > 0)

let test_chart_bar () =
  let s = Ascii_chart.bar_chart ~title:"bars" [ ("x", 10.); ("y", 5.) ] in
  Alcotest.(check bool) "labels present" true (contains s "x" && contains s "y")

let test_chart_bar_zero () =
  let s = Ascii_chart.bar_chart ~title:"z" [ ("a", 0.) ] in
  Alcotest.(check bool) "no crash on zero max" true (String.length s > 0)

let test_chart_histogram () =
  let s = Ascii_chart.histogram ~title:"h" ~bins:4 [ 1.; 2.; 2.; 3.; 10. ] in
  Alcotest.(check bool) "renders bins" true (contains s "[");
  let empty = Ascii_chart.histogram ~title:"h" [] in
  Alcotest.(check bool) "empty ok" true (contains empty "empty")

let suite =
  [
    ("rng determinism", `Quick, test_rng_determinism);
    ("rng seed sensitivity", `Quick, test_rng_seed_sensitivity);
    ("rng split independence", `Quick, test_rng_split_independent);
    ("rng copy", `Quick, test_rng_copy);
    ("rng int bounds", `Quick, test_rng_int_bounds);
    ("rng float range", `Quick, test_rng_float_range);
    ("rng uniformity", `Quick, test_rng_uniformity);
    ("rng pick and shuffle", `Quick, test_rng_pick_and_shuffle);
    ("rng pick matches pick_array", `Quick, test_rng_pick_matches_pick_array);
    ("stats basics", `Quick, test_stats_basic);
    ("stats empty", `Quick, test_stats_empty);
    ("stats single", `Quick, test_stats_single);
    ("stats quantiles", `Quick, test_stats_quantiles);
    ("stats insertion order", `Quick, test_stats_insertion_order);
    ("stats quantile cache invalidation", `Quick,
     test_stats_quantile_cache_invalidation);
    QCheck_alcotest.to_alcotest stats_welford_matches_naive;
    ("table render", `Quick, test_table_render);
    ("table ragged rows", `Quick, test_table_ragged_rows);
    ("chart line", `Quick, test_chart_line);
    ("chart empty", `Quick, test_chart_empty_series);
    ("chart bar", `Quick, test_chart_bar);
    ("chart bar zero", `Quick, test_chart_bar_zero);
    ("chart histogram", `Quick, test_chart_histogram);
  ]
