(* Tests for Adpm_dddl: lexer, parser, elaboration, error reporting, and
   behavioural equivalence with the OCaml-built scenario. *)

open Adpm_expr
open Adpm_csp
open Adpm_core
open Adpm_teamsim
open Adpm_dddl

(* {2 Lexer} *)

let tokens src = List.map (fun t -> t.Token.token) (Lexer.tokenize src)

let test_lexer_basic () =
  Alcotest.(check bool) "keywords vs identifiers" true
    (tokens "scenario foo"
    = [ Token.KW_SCENARIO; Token.IDENT "foo"; Token.EOF ]);
  Alcotest.(check bool) "numbers" true
    (tokens "1 2.5 3e2 4.5e-1"
    = [ Token.NUMBER 1.; Token.NUMBER 2.5; Token.NUMBER 300.;
        Token.NUMBER 0.45; Token.EOF ]);
  Alcotest.(check bool) "operators" true
    (tokens "<= >= = + - * / ^"
    = [ Token.LE; Token.GE; Token.EQUAL; Token.PLUS; Token.MINUS; Token.STAR;
        Token.SLASH; Token.CARET; Token.EOF ])

let test_lexer_comments () =
  Alcotest.(check bool) "line comment" true
    (tokens "a // comment\n b" = [ Token.IDENT "a"; Token.IDENT "b"; Token.EOF ]);
  Alcotest.(check bool) "block comment" true
    (tokens "a /* x\n y */ b" = [ Token.IDENT "a"; Token.IDENT "b"; Token.EOF ])

let test_lexer_strings () =
  Alcotest.(check bool) "quoted name" true
    (tokens {|"Diff-pair-W"|} = [ Token.STRING "Diff-pair-W"; Token.EOF ])

let test_lexer_errors () =
  let expect_error src =
    Alcotest.(check bool) src true
      (try
         ignore (Lexer.tokenize src);
         false
       with Lexer.Error _ -> true)
  in
  expect_error "@";
  expect_error "\"unterminated";
  expect_error "/* unterminated";
  expect_error "1e"

let test_lexer_positions () =
  match Lexer.tokenize "a\n  b" with
  | [ _; b; _ ] ->
    Alcotest.(check int) "line" 2 b.Token.line;
    Alcotest.(check int) "col" 3 b.Token.col
  | _ -> Alcotest.fail "expected three tokens"

(* {2 Expression parsing} *)

let test_parse_expr_precedence () =
  let e = Parser.parse_expr "1 + 2 * x" in
  Alcotest.(check (float 1e-9)) "1 + 2*3" 7. (Expr.eval (fun _ -> 3.) e);
  let e2 = Parser.parse_expr "(1 + 2) * x" in
  Alcotest.(check (float 1e-9)) "(1+2)*3" 9. (Expr.eval (fun _ -> 3.) e2);
  let e3 = Parser.parse_expr "2 * x ^ 2" in
  Alcotest.(check (float 1e-9)) "2 * 3^2" 18. (Expr.eval (fun _ -> 3.) e3);
  let e4 = Parser.parse_expr "-x ^ 2" in
  Alcotest.(check (float 1e-9)) "-(3^2)" (-9.) (Expr.eval (fun _ -> 3.) e4)

let test_parse_expr_functions () =
  let env = function "x" -> 4. | _ -> 2. in
  Alcotest.(check (float 1e-9)) "sqrt" 2.
    (Expr.eval env (Parser.parse_expr "sqrt(x)"));
  Alcotest.(check (float 1e-9)) "min" 2.
    (Expr.eval env (Parser.parse_expr "min(x, y)"));
  Alcotest.(check (float 1e-9)) "nested" 6.
    (Expr.eval env (Parser.parse_expr "abs(0 - x) + max(y, ln(exp(y)))"));
  (* an identifier named like a function but not applied is a variable *)
  let e = Parser.parse_expr "sqrt + 1" in
  Alcotest.(check (list string)) "sqrt as var" [ "sqrt" ] (Expr.vars e)

let test_parse_errors () =
  let expect_error src =
    Alcotest.(check bool) src true
      (try
         ignore (Parser.parse_expr src);
         false
       with Parser.Error _ -> true)
  in
  expect_error "1 +";
  expect_error "x ^ y";
  expect_error "x ^ 2.5";
  expect_error "min(x)";
  expect_error "(x";
  expect_error ""

(* {2 Scenario parsing + elaboration} *)

let minimal_scenario =
  {|
scenario tiny {
  property x : real [0, 10];
  property req : real [1, 20];
  constraint budget : x <= req;
  requirement req = 5;
  object Widget { properties: x; }
  problem top owner leader {
    inputs: req;
    constraints: budget;
    subproblem sub owner worker {
      outputs: x;
      object: Widget;
    }
  }
}
|}

let test_elaborate_minimal () =
  let scenario = Elaborate.load_string minimal_scenario in
  Alcotest.(check string) "name" "tiny" scenario.Scenario.sc_name;
  let dpm = scenario.Scenario.sc_build ~mode:Dpm.Adpm in
  let net = Dpm.network dpm in
  Alcotest.(check (list string)) "properties" [ "x"; "req" ] (Network.prop_names net);
  Alcotest.(check int) "one constraint" 1 (Network.constraint_count net);
  Alcotest.(check (option (float 0.))) "requirement bound" (Some 5.)
    (Network.assigned_num net "req");
  Alcotest.(check (list string)) "designers" [ "leader"; "worker" ]
    (Dpm.designers dpm);
  Alcotest.(check bool) "object registered" true (Dpm.find_object dpm "Widget" <> None)

let test_monotone_declaration_applied () =
  let src =
    {|
scenario mono {
  property x : real [0, 10];
  property y : real [0, 10];
  constraint c : x * y - y * x + x <= 5.0 {
    monotone decreasing in x;
  }
  problem top owner lead {
    subproblem s owner w { outputs: x, y; constraints: c; }
  }
}
|}
  in
  let scenario = Elaborate.load_string src in
  let dpm = scenario.Scenario.sc_build ~mode:Dpm.Adpm in
  let net = Dpm.network dpm in
  let con = List.hd (Network.constraints net) in
  (* structurally x*y - y*x + x is Unknown in x (x appears in both mul
     factors of opposite sign); the declaration resolves it: decreasing x
     helps satisfy <=, so increasing x hurts -> helps = `Down... the
     declaration says the property is monotone decreasing, i.e. decreasing
     x helps *)
  Alcotest.(check bool) "declared direction used" true
    (Network.helps_direction net con "x" = `Down)

let test_problem_ordering () =
  let src =
    {|
scenario ordered {
  property a : real [0, 1];
  property b : real [0, 1];
  problem top owner lead {
    subproblem first owner w1 { outputs: a; }
    subproblem second owner w2 { outputs: b; after: first; }
  }
}
|}
  in
  let scenario = Elaborate.load_string src in
  let dpm = scenario.Scenario.sc_build ~mode:Dpm.Conventional in
  let second = List.find (fun p -> p.Problem.pr_name = "second") (Dpm.problems dpm) in
  Alcotest.(check bool) "dependency recorded" true (second.Problem.pr_depends_on <> [])

let test_elaborate_errors () =
  let expect_error src =
    Alcotest.(check bool) "semantic error" true
      (try
         ignore (Elaborate.load_string src);
         false
       with Elaborate.Error _ -> true)
  in
  (* unknown property in constraint *)
  expect_error
    {|scenario s { property x : real [0,1]; constraint c : zz <= 1.0;
      problem t owner l { subproblem a owner w { outputs: x; } } }|};
  (* duplicate property *)
  expect_error
    {|scenario s { property x : real [0,1]; property x : real [0,1];
      problem t owner l { subproblem a owner w { outputs: x; } } }|};
  (* unknown constraint in problem *)
  expect_error
    {|scenario s { property x : real [0,1];
      problem t owner l { subproblem a owner w { outputs: x; constraints: nope; } } }|};
  (* empty real domain *)
  expect_error
    {|scenario s { property x : real [2,1];
      problem t owner l { subproblem a owner w { outputs: x; } } }|};
  (* monotone declaration on non-argument *)
  expect_error
    {|scenario s { property x : real [0,1]; property y : real [0,1];
      constraint c : x <= 1.0 { monotone increasing in y; }
      problem t owner l { subproblem a owner w { outputs: x, y; constraints: c; } } }|};
  (* unknown sibling dependency *)
  expect_error
    {|scenario s { property x : real [0,1];
      problem t owner l { subproblem a owner w { outputs: x; after: ghost; } } }|}

let test_parse_error_positions () =
  try
    ignore (Parser.parse "scenario s {\n  property ; }");
    Alcotest.fail "expected parse error"
  with Parser.Error { line; _ } -> Alcotest.(check int) "line number" 2 line

(* Through [Elaborate.load_string], the same misplaced token surfaces as a
   caret-style [Elaborate.Error] pointing at line, column and source line
   — pinned exactly so the rendering never regresses. *)
let test_caret_error_message () =
  try
    ignore (Elaborate.load_string "scenario s {\n  property ; }");
    Alcotest.fail "expected Elaborate.Error"
  with Elaborate.Error msg ->
    Alcotest.(check string) "caret message"
      "line 2, column 12: expected a name but found ';'\n\
      \    property ; }\n\
      \             ^" msg

(* {2 Printer round-trips} *)

let test_printer_roundtrip_scenarios () =
  List.iter
    (fun (label, src) ->
      let ast = Parser.parse src in
      let printed = Printer.scenario ast in
      let ast2 = Parser.parse printed in
      Alcotest.(check bool) (label ^ " round-trips") true (ast = ast2))
    [
      ("simple", Adpm_scenarios.Simple.source);
      ("sensor", Adpm_scenarios.Sensor.source);
      ("receiver", Adpm_scenarios.Receiver.source);
      ("lna", Adpm_scenarios.Lna.source);
      ("minimal", minimal_scenario);
    ]

(* Same sources through the [Emit] front door: the canonical artifact
   contract is parse(emit(m)) = m, reported via [Emit.roundtrip]. *)
let test_emit_roundtrip_scenarios () =
  List.iter
    (fun (label, src) ->
      match Emit.roundtrip (Parser.parse src) with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "%s: %s" label msg)
    [
      ("simple", Adpm_scenarios.Simple.source);
      ("sensor", Adpm_scenarios.Sensor.source);
      ("receiver", Adpm_scenarios.Receiver.source);
      ("lna", Adpm_scenarios.Lna.source);
      ("minimal", minimal_scenario);
    ]

let printer_expr_roundtrip =
  let gen_expr =
    QCheck.Gen.(
      sized
      @@ fix (fun self n ->
             if n <= 1 then
               oneof
                 [ map (fun c -> Expr.Const c) (float_range (-10.) 10.);
                   oneofl
                     [ Expr.Var "x"; Expr.Var "y"; Expr.Var "weird-name" ] ]
             else
               let sub = self (n / 2) in
               oneof
                 [
                   map2 (fun a b -> Expr.Add (a, b)) sub sub;
                   map2 (fun a b -> Expr.Sub (a, b)) sub sub;
                   map2 (fun a b -> Expr.Mul (a, b)) sub sub;
                   map2 (fun a b -> Expr.Div (a, b)) sub sub;
                   map (fun a -> Expr.Neg a) sub;
                   map (fun a -> Expr.Sqrt a) sub;
                   map (fun a -> Expr.Abs a) sub;
                   map2 (fun a b -> Expr.Min (a, b)) sub sub;
                   map2 (fun a b -> Expr.Max (a, b)) sub sub;
                   map (fun a -> Expr.Pow (a, 2)) sub;
                 ]))
  in
  (* printing then parsing gives back the same tree, modulo the parser's
     unary-minus-on-literal folding (which the generator avoids by never
     nesting Neg directly over a constant... it can, so normalise both) *)
  let rec normalise e =
    match e with
    | Expr.Neg (Expr.Const c) -> Expr.Const (-.c)
    | Expr.Const _ | Expr.Var _ -> e
    | Expr.Neg a -> (
      match normalise a with
      | Expr.Const c -> Expr.Const (-.c)
      | a' -> Expr.Neg a')
    | Expr.Add (a, b) -> Expr.Add (normalise a, normalise b)
    | Expr.Sub (a, b) -> Expr.Sub (normalise a, normalise b)
    | Expr.Mul (a, b) -> Expr.Mul (normalise a, normalise b)
    | Expr.Div (a, b) -> Expr.Div (normalise a, normalise b)
    | Expr.Pow (a, n) -> Expr.Pow (normalise a, n)
    | Expr.Sqrt a -> Expr.Sqrt (normalise a)
    | Expr.Exp a -> Expr.Exp (normalise a)
    | Expr.Ln a -> Expr.Ln (normalise a)
    | Expr.Abs a -> Expr.Abs (normalise a)
    | Expr.Min (a, b) -> Expr.Min (normalise a, normalise b)
    | Expr.Max (a, b) -> Expr.Max (normalise a, normalise b)
  in
  QCheck.Test.make ~name:"printer/parser expression round-trip" ~count:500
    (QCheck.make ~print:Printer.expr gen_expr)
    (fun e ->
      let e = normalise e in
      Parser.parse_expr (Printer.expr e) = e)

(* {2 Equivalence with the OCaml-built simple scenario} *)

let test_dddl_matches_ocaml_scenario () =
  let open Adpm_scenarios in
  let ocaml_reference =
    Scenario.make ~name:"simple-ocaml" ~description:"OCaml-built reference"
      ~models:Simple.models
      (fun ~mode -> Simple.build () ~mode)
  in
  List.iter
    (fun (mode, seed) ->
      let cfg = Config.default ~mode ~seed in
      let a = (Engine.run cfg Simple.scenario).Engine.o_summary in
      let b = (Engine.run cfg ocaml_reference).Engine.o_summary in
      Alcotest.(check int) "ops equal" b.Metrics.s_operations a.Metrics.s_operations;
      Alcotest.(check int) "evals equal" b.Metrics.s_evaluations a.Metrics.s_evaluations;
      Alcotest.(check int) "spins equal" b.Metrics.s_spins a.Metrics.s_spins;
      Alcotest.(check bool) "completed" true a.Metrics.s_completed)
    [ (Dpm.Adpm, 1); (Dpm.Adpm, 5); (Dpm.Conventional, 1); (Dpm.Conventional, 5) ]

let suite =
  [
    ("lexer basics", `Quick, test_lexer_basic);
    ("lexer comments", `Quick, test_lexer_comments);
    ("lexer strings", `Quick, test_lexer_strings);
    ("lexer errors", `Quick, test_lexer_errors);
    ("lexer positions", `Quick, test_lexer_positions);
    ("expression precedence", `Quick, test_parse_expr_precedence);
    ("expression functions", `Quick, test_parse_expr_functions);
    ("expression errors", `Quick, test_parse_errors);
    ("elaborate minimal scenario", `Quick, test_elaborate_minimal);
    ("monotone declarations applied", `Quick, test_monotone_declaration_applied);
    ("problem ordering", `Quick, test_problem_ordering);
    ("semantic errors", `Quick, test_elaborate_errors);
    ("parse error positions", `Quick, test_parse_error_positions);
    ("caret-style load errors", `Quick, test_caret_error_message);
    ("DDDL scenario equals OCaml scenario", `Quick, test_dddl_matches_ocaml_scenario);
    ("printer round-trips scenarios", `Quick, test_printer_roundtrip_scenarios);
    ("emit round-trips scenarios", `Quick, test_emit_roundtrip_scenarios);
    QCheck_alcotest.to_alcotest printer_expr_roundtrip;
  ]
