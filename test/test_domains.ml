(* Tests for the shared-memory domain backend: randomized three-way
   equivalence (domains vs fork vs inline produce bit-identical summary
   lists on every scenario, both modes, jobs in {1,2,4}), and the Dpool
   failure contract — a raising worker surfaces as Worker_error with the
   lowest failing index, exactly like the fork pool. *)

open Adpm_core
open Adpm_teamsim
open Adpm_scenarios
module Pool = Adpm_parallel.Pool
module Dpool = Adpm_parallel.Dpool

let summary =
  Alcotest.testable
    (fun ppf s -> Format.pp_print_string ppf (Metrics.summary_line s))
    ( = )

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let scenarios =
  [
    Simple.scenario;
    Lna.scenario;
    Sensor.scenario;
    Receiver.scenario;
    Generated.scenario (Generated.default_params ~subsystems:4 ~vars:3);
  ]

(* The seed lists are randomized (drawn fresh per scenario x mode cell from
   a master PRNG) so repeated CI runs sweep different corners of seed
   space; the master seed is printed in every failure message so any
   discrepancy is reproducible with ADPM_TEST_SEED. *)
let master_seed =
  match Sys.getenv_opt "ADPM_TEST_SEED" with
  | Some s -> (try int_of_string s with _ -> 0x5eed)
  | None -> 0x5eed

let test_three_backend_equivalence () =
  let rng = Random.State.make [| master_seed |] in
  List.iter
    (fun scenario ->
      List.iter
        (fun mode ->
          let seeds =
            List.init 4 (fun _ -> 1 + Random.State.int rng 10_000)
          in
          let cfg = Config.default ~mode ~seed:0 in
          let reference =
            Engine.run_many ~backend:Engine.Inline ~jobs:1 cfg scenario ~seeds
          in
          List.iter
            (fun backend ->
              List.iter
                (fun jobs ->
                  let got =
                    Engine.run_many ~backend ~jobs cfg scenario ~seeds
                  in
                  List.iter2
                    (fun want have ->
                      Alcotest.check summary
                        (Printf.sprintf
                           "%s/%s backend=%s jobs=%d seed=%d \
                            (ADPM_TEST_SEED=%d)"
                           scenario.Scenario.sc_name (Dpm.mode_to_string mode)
                           (Engine.backend_to_string backend)
                           jobs want.Metrics.s_seed master_seed)
                        want have)
                    reference got)
                [ 1; 2; 4 ])
            (* Fork first: the first domain spawn permanently disables
               Unix.fork in this process, after which the fork backend
               (correctly) degrades to its inline fallback. *)
            [ Engine.Fork; Engine.Domains ])
        [ Dpm.Conventional; Dpm.Adpm ])
    scenarios

let test_dpool_identity () =
  let items = [ 3; 1; 4; 1; 5; 9; 2; 6 ] in
  let f x = string_of_int (x * x) in
  let expected = List.map f items in
  List.iter
    (fun jobs ->
      Alcotest.(check (list string))
        (Printf.sprintf "jobs=%d keeps order" jobs)
        expected
        (Dpool.map ~jobs ~f items))
    [ 1; 2; 3; 8; 100 ];
  Alcotest.(check (list string))
    "empty input" []
    (Dpool.map ~jobs:4 ~f:(fun (_ : int) -> "x") [])

let test_dpool_worker_raises_lowest_index () =
  (* Many items, several raising: the reported index must be the lowest
     failing one regardless of which domain got there first. *)
  let items = List.init 64 (fun i -> i) in
  let f i = if i mod 7 = 3 then failwith (Printf.sprintf "boom %d" i) else i in
  List.iter
    (fun jobs ->
      match Dpool.map ~jobs ~f items with
      | (_ : int list) -> Alcotest.failf "jobs=%d: expected Worker_error" jobs
      | exception Pool.Worker_error { index; message } ->
        Alcotest.(check int)
          (Printf.sprintf "jobs=%d: lowest failing index" jobs)
          3 index;
        Alcotest.(check bool)
          (Printf.sprintf "jobs=%d: message carries the exception" jobs)
          true
          (contains message "worker raised" && contains message "boom 3"))
    [ 1; 2; 4; 16 ]

let test_dpool_map_partial_slots () =
  let items = List.init 10 (fun i -> i) in
  let f i = if i mod 2 = 1 then failwith "odd" else i * 10 in
  let results = Dpool.map_partial ~jobs:4 ~f items in
  Alcotest.(check int) "one slot per item" 10 (List.length results);
  List.iteri
    (fun i r ->
      match (r, i mod 2) with
      | Ok v, 0 -> Alcotest.(check int) "even slot value" (i * 10) v
      | Error msg, 1 ->
        Alcotest.(check bool)
          (Printf.sprintf "odd slot %d carries the failure" i)
          true
          (contains msg "worker raised" && contains msg "odd")
      | Ok _, _ -> Alcotest.failf "slot %d unexpectedly succeeded" i
      | Error msg, _ -> Alcotest.failf "slot %d unexpectedly failed: %s" i msg)
    results

let test_domains_failure_names_seed () =
  (* A deterministically-raising build surfaces through the domain backend
     as Failure naming the lowest failing seed, matching fork-pool
     semantics. *)
  let broken =
    Scenario.make ~name:"broken" ~description:"always fails" (fun ~mode:_ ->
        failwith "synthetic build failure")
  in
  let cfg = Config.default ~mode:Dpm.Adpm ~seed:0 in
  match
    Engine.run_many ~backend:Engine.Domains ~jobs:2 cfg broken
      ~seeds:[ 7; 8; 9 ]
  with
  | (_ : Metrics.run_summary list) -> Alcotest.fail "expected Failure"
  | exception Failure msg ->
    Alcotest.(check bool)
      "failure names the lowest failing seed" true (contains msg "seed 7");
    Alcotest.(check bool)
      "failure carries the worker message" true
      (contains msg "synthetic build failure")

let test_domains_partial_isolates_bad_seeds () =
  let broken =
    Scenario.make ~name:"broken" ~description:"always fails" (fun ~mode:_ ->
        failwith "synthetic build failure")
  in
  let cfg = Config.default ~mode:Dpm.Adpm ~seed:0 in
  let results =
    Engine.run_many_partial ~backend:Engine.Domains ~jobs:2 cfg broken
      ~seeds:[ 7; 8; 9 ]
  in
  Alcotest.(check int) "one slot per seed" 3 (List.length results);
  List.iteri
    (fun i r ->
      match r with
      | Error msg ->
        Alcotest.(check bool)
          (Printf.sprintf "slot %d carries the failure" i)
          true
          (contains msg "synthetic build failure")
      | Ok _ -> Alcotest.failf "slot %d unexpectedly succeeded" i)
    results

let test_backend_of_string () =
  List.iter
    (fun (s, b) ->
      match Engine.backend_of_string s with
      | Ok got ->
        Alcotest.(check string) ("parses " ^ s) (Engine.backend_to_string b)
          (Engine.backend_to_string got)
      | Error e -> Alcotest.failf "%s failed to parse: %s" s e)
    [ ("domains", Engine.Domains); ("fork", Engine.Fork); ("inline", Engine.Inline) ];
  match Engine.backend_of_string "threads" with
  | Ok _ -> Alcotest.fail "bogus backend parsed"
  | Error e ->
    Alcotest.(check bool)
      "error names the bogus backend" true (contains e "threads")

let suite =
  [
    Alcotest.test_case "three-backend randomized equivalence" `Slow
      test_three_backend_equivalence;
    Alcotest.test_case "dpool map is order-preserving List.map" `Quick
      test_dpool_identity;
    Alcotest.test_case "dpool raise surfaces lowest index" `Quick
      test_dpool_worker_raises_lowest_index;
    Alcotest.test_case "dpool map_partial isolates failing slots" `Quick
      test_dpool_map_partial_slots;
    Alcotest.test_case "domains run_many failure names seed" `Quick
      test_domains_failure_names_seed;
    Alcotest.test_case "domains run_many_partial isolates bad seeds" `Quick
      test_domains_partial_isolates_bad_seeds;
    Alcotest.test_case "backend_of_string round-trips" `Quick
      test_backend_of_string;
  ]
