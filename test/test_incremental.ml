(* Randomized equivalence of the incremental and full propagation engines.

   The incremental engine restarts HC4 from the box store persisted by the
   previous fixpoint, seeding the worklist with only the dirty properties'
   constraints; the soundness argument (see DESIGN.md) says the result must
   be *identical* — not approximately equal — to a from-scratch run. This
   suite drives both engines through the same randomized assign/unassign
   sequences over the bundled scenario networks (including the generated
   family) and asserts bit-identical feasible subspaces, constraint
   statuses, and violation sets after every step. *)

open Adpm_util
open Adpm_interval
open Adpm_csp
open Adpm_core
open Adpm_teamsim
open Adpm_scenarios

let dom = Alcotest.testable Domain.pp Domain.equal
let status = Alcotest.testable Constr.pp_status ( = )

let build scenario = Dpm.network (scenario.Scenario.sc_build ~mode:Dpm.Adpm)

(* Numeric properties with a finite initial range we can draw values from. *)
let assignable_props net =
  List.filter
    (fun p ->
      match Domain.hull (Network.initial_domain net p) with
      | Some iv ->
        Float.is_finite (Interval.lo iv) && Float.is_finite (Interval.hi iv)
      | None -> false)
    (Network.prop_names net)

let violation_ids net =
  List.sort compare (List.map (fun c -> c.Constr.id) (Network.violated net))

let check_networks_equal label net_full net_incr =
  List.iter
    (fun p ->
      Alcotest.(check dom)
        (Printf.sprintf "%s: feasible %s" label p)
        (Network.feasible net_full p)
        (Network.feasible net_incr p))
    (Network.prop_names net_full);
  List.iter
    (fun c ->
      Alcotest.(check status)
        (Printf.sprintf "%s: status of %s" label c.Constr.name)
        (Network.status net_full c.Constr.id)
        (Network.status net_incr c.Constr.id))
    (Network.constraints net_full);
  Alcotest.(check (list int))
    (Printf.sprintf "%s: violation set" label)
    (violation_ids net_full) (violation_ids net_incr)

(* Apply the same randomly drawn operation to both networks: mostly
   assignments (uniform in the initial range, so in- and out-of-feasible
   values both occur), some unassignments to exercise the widening
   fallback. *)
let random_op rng props net_full net_incr =
  let p = Rng.pick rng props in
  if Network.is_bound net_full p && Rng.float rng 1.0 < 0.35 then begin
    Network.unassign net_full p;
    Network.unassign net_incr p
  end
  else
    match Domain.hull (Network.initial_domain net_full p) with
    | None -> ()
    | Some iv ->
      let value = Rng.float_range rng (Interval.lo iv) (Interval.hi iv) in
      Network.assign net_full p (Value.Num value);
      Network.assign net_incr p (Value.Num value)

let drive scenario seed steps () =
  let net_full = build scenario and net_incr = build scenario in
  let rng = Rng.create seed in
  let props = assignable_props net_full in
  ignore (Propagate.run_and_apply net_full);
  ignore (Propagate.run_incremental_and_apply net_incr);
  check_networks_equal "setup" net_full net_incr;
  for step = 1 to steps do
    random_op rng props net_full net_incr;
    ignore (Propagate.run_and_apply net_full);
    ignore (Propagate.run_incremental_and_apply net_incr);
    check_networks_equal (Printf.sprintf "step %d" step) net_full net_incr
  done

let scenarios =
  [
    ("simple", Simple.scenario);
    ("lna", Lna.scenario);
    ("sensor", Sensor.scenario);
    ("receiver", Receiver.scenario);
    ( "generated-4x3",
      Generated.scenario (Generated.default_params ~subsystems:4 ~vars:3) );
    ( "generated-8x4",
      Generated.scenario (Generated.default_params ~subsystems:8 ~vars:4) );
  ]

let suite =
  List.concat_map
    (fun (name, scenario) ->
      List.map
        (fun seed ->
          ( Printf.sprintf "incremental = full (%s, seed %d)" name seed,
            `Quick,
            drive scenario seed 15 ))
        [ 1; 2; 3 ])
    scenarios
