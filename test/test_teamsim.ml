(* Tests for Adpm_teamsim: configuration, designer behaviour, engine runs
   (determinism, termination, mode differences), metrics and reports. *)

open Adpm_util
open Adpm_csp
open Adpm_core
open Adpm_teamsim
open Adpm_scenarios

let quick_cfg mode seed =
  let cfg = Config.default ~mode ~seed in
  { cfg with Config.max_ops = 500 }

(* {2 Engine determinism and termination} *)

let test_determinism () =
  let cfg = quick_cfg Dpm.Conventional 11 in
  let s1 = (Engine.run cfg Simple.scenario).Engine.o_summary in
  let s2 = (Engine.run cfg Simple.scenario).Engine.o_summary in
  Alcotest.(check int) "same ops" s1.Metrics.s_operations s2.Metrics.s_operations;
  Alcotest.(check int) "same evals" s1.Metrics.s_evaluations s2.Metrics.s_evaluations;
  Alcotest.(check int) "same spins" s1.Metrics.s_spins s2.Metrics.s_spins;
  Alcotest.(check int) "same profile length"
    (List.length s1.Metrics.s_profile)
    (List.length s2.Metrics.s_profile)

let test_seed_changes_run () =
  let conv seed =
    (Engine.run (quick_cfg Dpm.Conventional seed) Simple.scenario).Engine.o_summary
  in
  let ops = List.map (fun s -> (conv s).Metrics.s_operations) [ 1; 2; 3; 4; 5 ] in
  Alcotest.(check bool) "seeds vary outcomes" true
    (List.length (List.sort_uniq compare ops) > 1)

let test_completion_both_modes () =
  List.iter
    (fun mode ->
      List.iter
        (fun seed ->
          let outcome = Engine.run (quick_cfg mode seed) Simple.scenario in
          Alcotest.(check bool)
            (Printf.sprintf "%s seed %d completes" (Dpm.mode_to_string mode) seed)
            true outcome.Engine.o_summary.Metrics.s_completed;
          Alcotest.(check bool) "ground truth satisfied" true
            (Dpm.ground_truth_solved outcome.Engine.o_dpm))
        [ 1; 2; 3 ])
    [ Dpm.Conventional; Dpm.Adpm ]

let test_op_budget_respected () =
  let cfg = { (quick_cfg Dpm.Conventional 1) with Config.max_ops = 5 } in
  let outcome = Engine.run cfg Simple.scenario in
  Alcotest.(check bool) "at most 5 ops" true
    (outcome.Engine.o_summary.Metrics.s_operations <= 5)

let test_adpm_setup_record () =
  let outcome = Engine.run (quick_cfg Dpm.Adpm 1) Simple.scenario in
  match outcome.Engine.o_summary.Metrics.s_profile with
  | first :: _ ->
    Alcotest.(check string) "setup first" "setup" first.Metrics.m_kind;
    Alcotest.(check bool) "setup evaluations counted" true
      (first.Metrics.m_evaluations > 0)
  | [] -> Alcotest.fail "profile must not be empty"

let test_conventional_has_verifications () =
  let outcome = Engine.run (quick_cfg Dpm.Conventional 1) Simple.scenario in
  let kinds =
    List.map (fun r -> r.Metrics.m_kind) outcome.Engine.o_summary.Metrics.s_profile
  in
  Alcotest.(check bool) "verification ops present" true
    (List.mem "verification" kinds);
  Alcotest.(check bool) "synthesis ops present" true (List.mem "synthesis" kinds)

let test_adpm_needs_no_verifications () =
  let outcome = Engine.run (quick_cfg Dpm.Adpm 1) Simple.scenario in
  let kinds =
    List.map (fun r -> r.Metrics.m_kind) outcome.Engine.o_summary.Metrics.s_profile
  in
  Alcotest.(check bool) "no verification ops" false (List.mem "verification" kinds)

let test_modes_shape () =
  (* the headline Fig. 9 directional claims at tiny sample size *)
  let seeds = [ 1; 2; 3; 4; 5; 6 ] in
  let mean mode =
    let summaries = Engine.run_many (quick_cfg mode 0) Simple.scenario ~seeds in
    let acc = Stats_acc.create () in
    List.iter (fun s -> Stats_acc.add_int acc s.Metrics.s_operations) summaries;
    let eacc = Stats_acc.create () in
    List.iter (fun s -> Stats_acc.add_int eacc s.Metrics.s_evaluations) summaries;
    (Stats_acc.mean acc, Stats_acc.mean eacc)
  in
  let conv_ops, conv_evals = mean Dpm.Conventional in
  let adpm_ops, adpm_evals = mean Dpm.Adpm in
  Alcotest.(check bool) "conventional needs more operations" true
    (conv_ops > adpm_ops);
  Alcotest.(check bool) "ADPM needs more evaluations" true
    (adpm_evals > conv_evals)

let test_on_op_callback () =
  let count = ref 0 in
  let outcome =
    Engine.run ~on_op:(fun _ -> incr count) (quick_cfg Dpm.Adpm 1) Simple.scenario
  in
  Alcotest.(check int) "callback per profile record" !count
    (List.length outcome.Engine.o_summary.Metrics.s_profile)

(* {2 Metrics and report} *)

let test_metrics_derivations () =
  let summary =
    {
      Metrics.s_scenario = "s";
      s_mode = Dpm.Adpm;
      s_seed = 1;
      s_completed = true;
      s_operations = 10;
      s_evaluations = 50;
      s_spins = 2;
      s_faults = Metrics.no_faults;
      s_profile =
        [
          { Metrics.m_index = 1; m_designer = "d"; m_kind = "synthesis";
            m_evaluations = 25; m_new_violations = 1; m_known_violations = 1;
            m_spin = false };
          { Metrics.m_index = 2; m_designer = "d"; m_kind = "synthesis";
            m_evaluations = 25; m_new_violations = 2; m_known_violations = 0;
            m_spin = true };
        ];
    }
  in
  Alcotest.(check (float 1e-9)) "evals per op" 5. (Metrics.evaluations_per_op summary);
  Alcotest.(check int) "violations found" 3 (Metrics.violations_found summary);
  Alcotest.(check bool) "summary line formats" true
    (String.length (Metrics.summary_line summary) > 0)

let test_report_aggregate () =
  let seeds = [ 1; 2; 3; 4 ] in
  let summaries = Engine.run_many (quick_cfg Dpm.Adpm 0) Simple.scenario ~seeds in
  let agg = Report.aggregate summaries in
  Alcotest.(check int) "runs" 4 agg.Report.a_runs;
  Alcotest.(check int) "all complete" 4 agg.Report.a_completed;
  Alcotest.(check bool) "mean ops positive" true (Stats_acc.mean agg.Report.a_ops > 0.);
  Alcotest.(check bool) "table renders" true
    (String.length (Report.comparison_table ~title:"t" [ agg ]) > 0)

let test_report_aggregate_validation () =
  Alcotest.(check bool) "empty rejected" true
    (try
       ignore (Report.aggregate []);
       false
     with Invalid_argument _ -> true);
  let s1 = Engine.run_many (quick_cfg Dpm.Adpm 0) Simple.scenario ~seeds:[ 1 ] in
  let s2 = Engine.run_many (quick_cfg Dpm.Conventional 0) Simple.scenario ~seeds:[ 1 ] in
  Alcotest.(check bool) "mixed modes rejected" true
    (try
       ignore (Report.aggregate (s1 @ s2));
       false
     with Invalid_argument _ -> true)

let test_mean_profile () =
  let seeds = [ 1; 2 ] in
  let summaries = Engine.run_many (quick_cfg Dpm.Adpm 0) Simple.scenario ~seeds in
  let profile = Report.mean_profile summaries in
  Alcotest.(check bool) "non-empty" true (profile <> []);
  List.iter
    (fun (i, viol, evals) ->
      Alcotest.(check bool) "index positive" true (i >= 1);
      Alcotest.(check bool) "violations nonnegative" true (viol >= 0.);
      Alcotest.(check bool) "evals nonnegative" true (evals >= 0.))
    profile

let test_mean_profile_survivor_mean () =
  (* Synthetic profiles with an index gap: no run has a record at op 2.
     The mean must be taken over the runs that reached each index (the
     survivor mean), and unreached indices must be omitted — not padded
     with zeros as the old quadratic implementation did. *)
  let make records =
    {
      Metrics.s_scenario = "synthetic";
      s_mode = Dpm.Adpm;
      s_seed = 1;
      s_completed = true;
      s_operations = List.length records;
      s_evaluations = 0;
      s_spins = 0;
      s_faults = Metrics.no_faults;
      s_profile =
        List.map
          (fun (i, viol, evals) ->
            { Metrics.m_index = i; m_designer = "d"; m_kind = "synthesis";
              m_evaluations = evals; m_new_violations = viol;
              m_known_violations = 0; m_spin = false })
          records;
    }
  in
  let a = make [ (1, 1, 10); (3, 1, 30) ] in
  let b = make [ (1, 3, 20) ] in
  Alcotest.(check (list (triple int (float 1e-9) (float 1e-9))))
    "survivor means, gap omitted"
    [ (1, 2., 15.); (3, 1., 30.) ]
    (Report.mean_profile [ a; b ])

(* {2 Designer-level checks through the engine} *)

let test_tool_consistency () =
  (* after any completed run, every derived property equals its model value
     within the band tolerance (the tool computed it) *)
  let outcome = Engine.run (quick_cfg Dpm.Adpm 2) Simple.scenario in
  let net = Dpm.network outcome.Engine.o_dpm in
  List.iter
    (fun (prop, model) ->
      match Network.assigned_num net prop with
      | None -> Alcotest.fail (prop ^ " should be bound")
      | Some actual ->
        let expected =
          Adpm_expr.Expr.eval
            (fun v ->
              match Network.assigned_num net v with
              | Some x -> x
              | None -> Alcotest.fail (v ^ " unbound"))
            model
        in
        Alcotest.(check (float 1e-6)) (prop ^ " = model") expected actual)
    Simple.models

let test_ablation_flags_run () =
  (* every ablation configuration still completes the simple case *)
  let base = quick_cfg Dpm.Adpm 3 in
  List.iter
    (fun cfg ->
      let outcome = Engine.run cfg Simple.scenario in
      Alcotest.(check bool) "completes" true
        outcome.Engine.o_summary.Metrics.s_completed)
    [
      { base with Config.forward_ordering = Config.Random_target };
      { base with Config.forward_ordering = Config.Most_constrained };
      { base with Config.use_alpha_repair = false };
      { base with Config.use_monotone_hints = false };
      { base with Config.use_history_tabu = false };
      { base with Config.use_relaxed_feasible = false };
      { base with Config.adaptive_delta = false };
    ]

let suite =
  [
    ("engine determinism", `Quick, test_determinism);
    ("seed sensitivity", `Quick, test_seed_changes_run);
    ("completion in both modes", `Quick, test_completion_both_modes);
    ("operation budget respected", `Quick, test_op_budget_respected);
    ("ADPM setup propagation recorded", `Quick, test_adpm_setup_record);
    ("conventional mode issues verifications", `Quick,
     test_conventional_has_verifications);
    ("ADPM mode needs no verifications", `Quick, test_adpm_needs_no_verifications);
    ("mode comparison shape", `Quick, test_modes_shape);
    ("on_op callback", `Quick, test_on_op_callback);
    ("metrics derivations", `Quick, test_metrics_derivations);
    ("report aggregation", `Quick, test_report_aggregate);
    ("report validation", `Quick, test_report_aggregate_validation);
    ("mean profile", `Quick, test_mean_profile);
    ("mean profile survivor mean", `Quick, test_mean_profile_survivor_mean);
    ("tool-model consistency at completion", `Quick, test_tool_consistency);
    ("ablation configurations complete", `Quick, test_ablation_flags_run);
  ]
