(* Tests for the parallel multi-seed runner: the fork pool's failure
   contract (loud, deterministic, names the failing item/seed), the
   Metrics_codec JSON round-trip it ships summaries through, and the
   headline guarantee — Engine.run_many returns bit-identical summary
   lists for any jobs value, on every scenario in both modes. *)

open Adpm_core
open Adpm_teamsim
open Adpm_scenarios
module Pool = Adpm_parallel.Pool

let summary =
  Alcotest.testable
    (fun ppf s -> Format.pp_print_string ppf (Metrics.summary_line s))
    ( = )

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* {2 Pool} *)

let test_pool_identity () =
  let items = [ 3; 1; 4; 1; 5; 9; 2; 6 ] in
  let f x = string_of_int (x * x) in
  let expected = List.map f items in
  List.iter
    (fun jobs ->
      Alcotest.(check (list string))
        (Printf.sprintf "jobs=%d keeps order" jobs)
        expected
        (Pool.map_serialized ~jobs ~f items))
    [ 1; 2; 3; 8; 100 ]

let test_pool_empty () =
  Alcotest.(check (list string))
    "empty input" []
    (Pool.map_serialized ~jobs:4 ~f:(fun (_ : int) -> "x") [])

let test_pool_hostile_payloads () =
  (* Length framing must survive payloads full of newlines and frame-ish
     text. *)
  let items = [ "plain"; "line\nbreak"; "ok 0 5\nfake"; "\r\n\r\n"; "" ] in
  let f x = x ^ "\n" ^ x in
  Alcotest.(check (list string))
    "payloads with newlines survive" (List.map f items)
    (Pool.map_serialized ~jobs:2 ~f items)

let check_worker_error name expected_index f =
  match f () with
  | (_ : string list) -> Alcotest.failf "%s: expected Worker_error" name
  | exception Pool.Worker_error { index; message } ->
    Alcotest.(check int) (name ^ ": failing index") expected_index index;
    Alcotest.(check bool)
      (name ^ ": message is not empty")
      true
      (String.length message > 0)

let test_pool_worker_raises () =
  (* Item 3 fails; every other item's work still exists but the pool must
     raise, lowest failing index first, in both execution paths. *)
  let f x = if x = 30 then failwith "boom on 30" else string_of_int x in
  let items = [ 0; 10; 20; 30; 40 ] in
  check_worker_error "forked" 3 (fun () ->
      Pool.map_serialized ~jobs:2 ~f items);
  check_worker_error "inline" 3 (fun () ->
      Pool.map_serialized ~jobs:1 ~f items)

let test_pool_worker_raises_lowest_index () =
  let f x = if x mod 2 = 0 then failwith "even" else string_of_int x in
  check_worker_error "many failures" 1 (fun () ->
      Pool.map_serialized ~jobs:3 ~f [ 1; 2; 3; 4; 5; 6 ])

let test_pool_worker_dies () =
  (* A worker that exits mid-shard (simulating a crash) must surface a
     loud error naming its undelivered item, not a short result list. *)
  let f x = if x = 2 then Unix._exit 7 else string_of_int x in
  match Pool.map_serialized ~jobs:2 ~f [ 0; 1; 2; 3 ] with
  | (_ : string list) -> Alcotest.fail "expected Worker_error after exit 7"
  | exception Pool.Worker_error { index; message } ->
    Alcotest.(check int) "undelivered item named" 2 index;
    Alcotest.(check bool)
      "message mentions the exit status" true
      (contains message "status 7")

(* {2 Metrics_codec} *)

let hostile_names =
  [
    "plain";
    "quote \" inside";
    "line\nbreak";
    "carriage\rreturn";
    "comma, \"mix\"\r\n";
    "tab\tand control \x01 bytes";
  ]

let synthetic_summary name i =
  {
    Metrics.s_scenario = name;
    s_mode = (if i mod 2 = 0 then Dpm.Adpm else Dpm.Conventional);
    s_seed = 17 + i;
    s_completed = i mod 3 <> 0;
    s_operations = 2;
    s_evaluations = 41 + i;
    s_spins = i;
    s_profile =
      [
        {
          Metrics.m_index = 1;
          m_designer = name;
          m_kind = "synthesis";
          m_evaluations = 40 + i;
          m_new_violations = 1;
          m_known_violations = 1;
          m_spin = false;
        };
        {
          Metrics.m_index = 2;
          m_designer = "d2 " ^ name;
          m_kind = "verification";
          m_evaluations = 1;
          m_new_violations = 0;
          m_known_violations = 0;
          m_spin = true;
        };
      ];
  }

let test_codec_roundtrip_hostile () =
  List.iteri
    (fun i name ->
      let s = synthetic_summary name i in
      match Metrics_codec.of_string (Metrics_codec.to_string s) with
      | Ok s' -> Alcotest.check summary (Printf.sprintf "round-trip %S" name) s s'
      | Error e -> Alcotest.failf "round-trip %S failed: %s" name e)
    hostile_names

let test_codec_roundtrip_real_run () =
  let cfg = Config.default ~mode:Dpm.Adpm ~seed:5 in
  let s = (Engine.run cfg Lna.scenario).Engine.o_summary in
  match Metrics_codec.of_string (Metrics_codec.to_string s) with
  | Ok s' -> Alcotest.check summary "real run round-trips" s s'
  | Error e -> Alcotest.failf "real run round-trip failed: %s" e

let test_codec_rejects_garbage () =
  List.iter
    (fun garbage ->
      match Metrics_codec.of_string garbage with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "garbage %S decoded" garbage)
    [
      "";
      "not json";
      "{}";
      {|{"scenario":"x"}|};
      {|{"scenario":"x","mode":"warp","seed":1,"completed":true,"operations":0,"evaluations":0,"spins":0,"profile":[]}|};
      {|{"scenario":"x","mode":"ADPM","seed":1,"completed":true,"operations":0,"evaluations":0,"spins":0,"profile":[{"op":1}]}|};
    ]

(* {2 Engine.run_many equivalence} *)

let scenarios =
  [
    Simple.scenario;
    Simple_dddl.scenario;
    Lna.scenario;
    Sensor.scenario;
    Receiver.scenario;
    Generated.scenario (Generated.default_params ~subsystems:4 ~vars:3);
  ]

let test_equivalence () =
  let seeds = [ 1; 2; 3; 4 ] in
  List.iter
    (fun scenario ->
      List.iter
        (fun mode ->
          let cfg = Config.default ~mode ~seed:0 in
          let reference = Engine.run_many ~jobs:1 cfg scenario ~seeds in
          List.iter
            (fun jobs ->
              Alcotest.(check (list summary))
                (Printf.sprintf "%s/%s jobs=%d" scenario.Scenario.sc_name
                   (Dpm.mode_to_string mode) jobs)
                reference
                (Engine.run_many ~jobs cfg scenario ~seeds))
            [ 2; 4 ])
        [ Dpm.Conventional; Dpm.Adpm ])
    scenarios

let test_equivalence_preserves_seed_order () =
  let seeds = [ 9; 3; 7; 1; 5 ] in
  let cfg = Config.default ~mode:Dpm.Adpm ~seed:0 in
  let summaries = Engine.run_many ~jobs:3 cfg Sensor.scenario ~seeds in
  Alcotest.(check (list int))
    "seed order preserved" seeds
    (List.map (fun s -> s.Metrics.s_seed) summaries)

let test_run_many_failure_names_seed () =
  (* A scenario whose build raises makes every worker fail; the engine
     must report the lowest-indexed seed, deterministically. *)
  let broken =
    Scenario.make ~name:"broken" ~description:"always fails" (fun ~mode:_ ->
        failwith "synthetic build failure")
  in
  let cfg = Config.default ~mode:Dpm.Adpm ~seed:0 in
  match Engine.run_many ~jobs:2 cfg broken ~seeds:[ 7; 8; 9 ] with
  | (_ : Metrics.run_summary list) -> Alcotest.fail "expected Failure"
  | exception Failure msg ->
    Alcotest.(check bool)
      (Printf.sprintf "error %S names seed 7" msg)
      true (contains msg "seed 7")

let suite =
  [
    ("pool identity and order", `Quick, test_pool_identity);
    ("pool empty input", `Quick, test_pool_empty);
    ("pool hostile payloads", `Quick, test_pool_hostile_payloads);
    ("pool worker raises", `Quick, test_pool_worker_raises);
    ("pool lowest failing index", `Quick, test_pool_worker_raises_lowest_index);
    ("pool worker dies", `Quick, test_pool_worker_dies);
    ("codec round-trip hostile names", `Quick, test_codec_roundtrip_hostile);
    ("codec round-trip real run", `Quick, test_codec_roundtrip_real_run);
    ("codec rejects garbage", `Quick, test_codec_rejects_garbage);
    ("parallel equals sequential", `Slow, test_equivalence);
    ("seed order preserved", `Quick, test_equivalence_preserves_seed_order);
    ("worker failure names seed", `Quick, test_run_many_failure_names_seed);
  ]
