(* Tests for the parallel multi-seed runner: the fork pool's failure
   contract (loud, deterministic, names the failing item/seed), the
   Metrics_codec JSON round-trip it ships summaries through, and the
   headline guarantee — Engine.run_many returns bit-identical summary
   lists for any jobs value, on every scenario in both modes. *)

open Adpm_core
open Adpm_teamsim
open Adpm_scenarios
module Pool = Adpm_parallel.Pool

let summary =
  Alcotest.testable
    (fun ppf s -> Format.pp_print_string ppf (Metrics.summary_line s))
    ( = )

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* {2 Pool} *)

let test_pool_identity () =
  let items = [ 3; 1; 4; 1; 5; 9; 2; 6 ] in
  let f x = string_of_int (x * x) in
  let expected = List.map f items in
  List.iter
    (fun jobs ->
      Alcotest.(check (list string))
        (Printf.sprintf "jobs=%d keeps order" jobs)
        expected
        (Pool.map_serialized ~jobs ~f items))
    [ 1; 2; 3; 8; 100 ]

let test_pool_empty () =
  Alcotest.(check (list string))
    "empty input" []
    (Pool.map_serialized ~jobs:4 ~f:(fun (_ : int) -> "x") [])

let test_pool_hostile_payloads () =
  (* Length framing must survive payloads full of newlines and frame-ish
     text. *)
  let items = [ "plain"; "line\nbreak"; "ok 0 5\nfake"; "\r\n\r\n"; "" ] in
  let f x = x ^ "\n" ^ x in
  Alcotest.(check (list string))
    "payloads with newlines survive" (List.map f items)
    (Pool.map_serialized ~jobs:2 ~f items)

let check_worker_error name expected_index f =
  match f () with
  | (_ : string list) -> Alcotest.failf "%s: expected Worker_error" name
  | exception Pool.Worker_error { index; message } ->
    Alcotest.(check int) (name ^ ": failing index") expected_index index;
    Alcotest.(check bool)
      (name ^ ": message is not empty")
      true
      (String.length message > 0)

let test_pool_worker_raises () =
  (* Item 3 fails; every other item's work still exists but the pool must
     raise, lowest failing index first, in both execution paths. *)
  let f x = if x = 30 then failwith "boom on 30" else string_of_int x in
  let items = [ 0; 10; 20; 30; 40 ] in
  check_worker_error "forked" 3 (fun () ->
      Pool.map_serialized ~jobs:2 ~f items);
  check_worker_error "inline" 3 (fun () ->
      Pool.map_serialized ~jobs:1 ~f items)

let test_pool_worker_raises_lowest_index () =
  let f x = if x mod 2 = 0 then failwith "even" else string_of_int x in
  check_worker_error "many failures" 1 (fun () ->
      Pool.map_serialized ~jobs:3 ~f [ 1; 2; 3; 4; 5; 6 ])

let test_pool_worker_dies () =
  (* A worker that exits mid-shard (simulating a crash) must surface a
     loud error naming its undelivered item, not a short result list. *)
  let f x = if x = 2 then Unix._exit 7 else string_of_int x in
  match Pool.map_serialized ~jobs:2 ~f [ 0; 1; 2; 3 ] with
  | (_ : string list) -> Alcotest.fail "expected Worker_error after exit 7"
  | exception Pool.Worker_error { index; message } ->
    Alcotest.(check int) "undelivered item named" 2 index;
    Alcotest.(check bool)
      "message mentions the exit status" true
      (contains message "status 7")

(* {2 Pool supervision: crashes, hangs, retry budgets} *)

(* A marker file in the temp directory lets a forked worker misbehave on
   the first attempt only: the respawned worker sees the marker and
   behaves. Everything a test needs to prove recovery is deterministic —
   which items fail, where they are requeued — even though wall-clock
   interleaving is not. *)
let with_marker f =
  let path = Filename.temp_file "adpm_pool_test" ".marker" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let touch path =
  let oc = open_out path in
  close_out oc

let test_pool_crash_once_recovers () =
  with_marker (fun marker ->
      let f x =
        if x = 2 && not (Sys.file_exists marker) then begin
          touch marker;
          Unix._exit 9
        end
        else string_of_int (x * 10)
      in
      let events = ref [] in
      let got =
        Pool.map_serialized ~jobs:2
          ~on_retry:(fun e -> events := e :: !events)
          ~f [ 0; 1; 2; 3 ]
      in
      Alcotest.(check (list string))
        "crash-once run matches healthy output"
        [ "0"; "10"; "20"; "30" ] got;
      match !events with
      | [ e ] ->
        Alcotest.(check int) "crashed item charged" 2 e.Pool.sv_index;
        Alcotest.(check int) "first attempt" 1 e.Pool.sv_attempt;
        Alcotest.(check bool)
          "reason names the exit status" true
          (contains e.Pool.sv_reason "status 9");
        Alcotest.(check bool) "undelivered work requeued" true
          (e.Pool.sv_requeued >= 1)
      | es -> Alcotest.failf "expected exactly one retry, saw %d" (List.length es))

let test_pool_hang_is_killed_and_requeued () =
  with_marker (fun marker ->
      let f x =
        if x = 1 && not (Sys.file_exists marker) then begin
          touch marker;
          Unix.sleepf 30.
        end;
        string_of_int (x + 100)
      in
      let events = ref [] in
      let got =
        Pool.map_serialized ~jobs:2 ~job_timeout:0.4
          ~on_retry:(fun e -> events := e :: !events)
          ~f [ 0; 1; 2; 3 ]
      in
      Alcotest.(check (list string))
        "hung worker's shard still completes"
        [ "100"; "101"; "102"; "103" ] got;
      match !events with
      | [ e ] ->
        Alcotest.(check int) "hung item charged" 1 e.Pool.sv_index;
        Alcotest.(check bool)
          "reason says it timed out" true
          (contains e.Pool.sv_reason "timed out")
      | es -> Alcotest.failf "expected exactly one retry, saw %d" (List.length es))

let test_pool_retry_budget_exhausted () =
  (* Item 1 dies on every attempt: 1 initial + 1 retry, then the pool
     gives up on it — Fail_fast raises, naming it. *)
  let f x = if x = 1 then Unix._exit 3 else string_of_int x in
  let attempts = ref 0 in
  (match
     Pool.map_serialized ~jobs:2 ~retries:1
       ~on_retry:(fun _ -> incr attempts)
       ~f [ 0; 1; 2; 3 ]
   with
  | (_ : string list) -> Alcotest.fail "expected Worker_error"
  | exception Pool.Worker_error { index; message } ->
    Alcotest.(check int) "exhausted item named" 1 index;
    Alcotest.(check bool)
      "message mentions the exit status" true (contains message "status 3"));
  Alcotest.(check int) "1 initial + 1 retry attempts reported" 2 !attempts

let test_pool_partial_error_placement () =
  (* Under `Partial the poisoned item costs its own slot only; every
     healthy item still delivers, in item order. *)
  let f x = if x = 2 then Unix._exit 5 else string_of_int (x * 2) in
  let results = Pool.map_partial ~jobs:2 ~retries:1 ~f [ 0; 1; 2; 3; 4 ] in
  Alcotest.(check int) "one result per item" 5 (List.length results);
  List.iteri
    (fun i r ->
      match (i, r) with
      | 2, Error msg ->
        Alcotest.(check bool)
          "error slot names the exit status" true (contains msg "status 5")
      | 2, Ok got -> Alcotest.failf "item 2 unexpectedly succeeded: %s" got
      | _, Ok got ->
        Alcotest.(check string)
          (Printf.sprintf "item %d delivered" i)
          (string_of_int (i * 2)) got
      | _, Error msg -> Alcotest.failf "item %d failed: %s" i msg)
    results

let test_pool_partial_raising_f () =
  (* A deterministic exception in f is terminal (no pointless respawns)
     and lands in its own slot in both execution paths. *)
  let f x = if x = 1 then failwith "bad item" else string_of_int x in
  let check name results =
    match results with
    | [ Ok "0"; Error msg; Ok "2" ] ->
      Alcotest.(check bool)
        (name ^ ": error carries the exception") true
        (contains msg "bad item")
    | _ -> Alcotest.failf "%s: unexpected result shape" name
  in
  check "forked" (Pool.map_partial ~jobs:2 ~f [ 0; 1; 2 ]);
  check "inline" (Pool.map_partial ~jobs:1 ~f [ 0; 1; 2 ])

let test_pool_fail_fast_lowest_index_on_crashes () =
  (* Two items crash their workers on every attempt; Fail_fast must name
     the lowest index once everything has been resolved. *)
  let f x = if x = 1 || x = 3 then Unix._exit 4 else string_of_int x in
  match Pool.map_serialized ~jobs:2 ~retries:0 ~f [ 0; 1; 2; 3 ] with
  | (_ : string list) -> Alcotest.fail "expected Worker_error"
  | exception Pool.Worker_error { index; _ } ->
    Alcotest.(check int) "lowest crashing index" 1 index

(* {2 Metrics_codec} *)

let hostile_names =
  [
    "plain";
    "quote \" inside";
    "line\nbreak";
    "carriage\rreturn";
    "comma, \"mix\"\r\n";
    "tab\tand control \x01 bytes";
  ]

let synthetic_summary name i =
  {
    Metrics.s_scenario = name;
    s_mode = (if i mod 2 = 0 then Dpm.Adpm else Dpm.Conventional);
    s_seed = 17 + i;
    s_completed = i mod 3 <> 0;
    s_operations = 2;
    s_evaluations = 41 + i;
    s_spins = i;
    s_faults =
      { Metrics.f_dropped = i; f_duplicated = i mod 2; f_crashes = i mod 3 };
    s_profile =
      [
        {
          Metrics.m_index = 1;
          m_designer = name;
          m_kind = "synthesis";
          m_evaluations = 40 + i;
          m_new_violations = 1;
          m_known_violations = 1;
          m_spin = false;
        };
        {
          Metrics.m_index = 2;
          m_designer = "d2 " ^ name;
          m_kind = "verification";
          m_evaluations = 1;
          m_new_violations = 0;
          m_known_violations = 0;
          m_spin = true;
        };
      ];
  }

let test_codec_roundtrip_hostile () =
  List.iteri
    (fun i name ->
      let s = synthetic_summary name i in
      match Metrics_codec.of_string (Metrics_codec.to_string s) with
      | Ok s' -> Alcotest.check summary (Printf.sprintf "round-trip %S" name) s s'
      | Error e -> Alcotest.failf "round-trip %S failed: %s" name e)
    hostile_names

let test_codec_roundtrip_real_run () =
  let cfg = Config.default ~mode:Dpm.Adpm ~seed:5 in
  let s = (Engine.run cfg Lna.scenario).Engine.o_summary in
  match Metrics_codec.of_string (Metrics_codec.to_string s) with
  | Ok s' -> Alcotest.check summary "real run round-trips" s s'
  | Error e -> Alcotest.failf "real run round-trip failed: %s" e

let test_codec_rejects_garbage () =
  List.iter
    (fun garbage ->
      match Metrics_codec.of_string garbage with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "garbage %S decoded" garbage)
    [
      "";
      "not json";
      "{}";
      {|{"scenario":"x"}|};
      {|{"scenario":"x","mode":"warp","seed":1,"completed":true,"operations":0,"evaluations":0,"spins":0,"profile":[]}|};
      {|{"scenario":"x","mode":"ADPM","seed":1,"completed":true,"operations":0,"evaluations":0,"spins":0,"profile":[{"op":1}]}|};
    ]

(* {2 Engine.run_many equivalence} *)

let scenarios =
  [
    Simple.scenario;
    Lna.scenario;
    Sensor.scenario;
    Receiver.scenario;
    Generated.scenario (Generated.default_params ~subsystems:4 ~vars:3);
  ]

let test_equivalence () =
  let seeds = [ 1; 2; 3; 4 ] in
  List.iter
    (fun scenario ->
      List.iter
        (fun mode ->
          let cfg = Config.default ~mode ~seed:0 in
          let reference = Engine.run_many ~backend:Engine.Fork ~jobs:1 cfg scenario ~seeds in
          List.iter
            (fun jobs ->
              Alcotest.(check (list summary))
                (Printf.sprintf "%s/%s jobs=%d" scenario.Scenario.sc_name
                   (Dpm.mode_to_string mode) jobs)
                reference
                (Engine.run_many ~backend:Engine.Fork ~jobs cfg scenario ~seeds))
            [ 2; 4 ])
        [ Dpm.Conventional; Dpm.Adpm ])
    scenarios

let test_equivalence_preserves_seed_order () =
  let seeds = [ 9; 3; 7; 1; 5 ] in
  let cfg = Config.default ~mode:Dpm.Adpm ~seed:0 in
  let summaries = Engine.run_many ~backend:Engine.Fork ~jobs:3 cfg Sensor.scenario ~seeds in
  Alcotest.(check (list int))
    "seed order preserved" seeds
    (List.map (fun s -> s.Metrics.s_seed) summaries)

let test_run_many_crash_recovery_bit_identical () =
  (* A scenario whose build kills its worker exactly once: the supervised
     pool respawns, reruns the lost seeds, and the aggregate summaries
     come out bit-identical to a healthy sequential run. *)
  with_marker (fun marker ->
      let flaky =
        Scenario.make ~name:Sensor.scenario.Scenario.sc_name
          ~description:"sensor, but the first worker build crashes"
          ~models:Sensor.scenario.Scenario.sc_models
          (fun ~mode ->
            if not (Sys.file_exists marker) then begin
              touch marker;
              Unix._exit 11
            end;
            Sensor.scenario.Scenario.sc_build ~mode)
      in
      let cfg = Config.default ~mode:Dpm.Adpm ~seed:0 in
      let seeds = [ 1; 2; 3; 4 ] in
      let healthy = Engine.run_many ~backend:Engine.Fork ~jobs:1 cfg Sensor.scenario ~seeds in
      let retried = ref 0 in
      let recovered =
        Engine.run_many ~backend:Engine.Fork ~jobs:2
          ~on_retry:(fun _ -> incr retried) cfg flaky
          ~seeds
      in
      Alcotest.(check bool) "at least one worker was respawned" true
        (!retried >= 1);
      Alcotest.(check (list summary))
        "recovered run matches the healthy sequential run" healthy recovered)

let test_run_many_partial_isolates_bad_seeds () =
  (* Under `Partial a broken scenario poisons each seed's slot separately;
     the shapes match on the forked and inline paths. *)
  let broken =
    Scenario.make ~name:"broken" ~description:"always fails" (fun ~mode:_ ->
        failwith "synthetic build failure")
  in
  let cfg = Config.default ~mode:Dpm.Adpm ~seed:0 in
  let check name results =
    Alcotest.(check int) (name ^ ": one slot per seed") 3 (List.length results);
    List.iteri
      (fun i r ->
        match r with
        | Error msg ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: slot %d carries the failure" name i)
            true
            (contains msg "synthetic build failure"
            || contains msg "worker raised")
        | Ok _ -> Alcotest.failf "%s: slot %d unexpectedly succeeded" name i)
      results
  in
  check "forked"
    (Engine.run_many_partial ~backend:Engine.Fork ~jobs:2 ~retries:0 cfg broken
       ~seeds:[ 7; 8; 9 ]);
  check "inline"
    (Engine.run_many_partial ~backend:Engine.Fork ~jobs:1 cfg broken
       ~seeds:[ 7; 8; 9 ])

let test_run_many_partial_healthy_matches_fail_fast () =
  let cfg = Config.default ~mode:Dpm.Conventional ~seed:0 in
  let seeds = [ 1; 2; 3 ] in
  let plain = Engine.run_many ~backend:Engine.Fork ~jobs:2 cfg Sensor.scenario ~seeds in
  let partial =
    Engine.run_many_partial ~backend:Engine.Fork ~jobs:2 cfg Sensor.scenario
      ~seeds
  in
  Alcotest.(check (list summary))
    "healthy `Partial run carries the same summaries" plain
    (List.map
       (function
         | Ok s -> s
         | Error msg -> Alcotest.failf "unexpected Error slot: %s" msg)
       partial)

let test_run_many_failure_names_seed () =
  (* A scenario whose build raises makes every worker fail; the engine
     must report the lowest-indexed seed, deterministically. *)
  let broken =
    Scenario.make ~name:"broken" ~description:"always fails" (fun ~mode:_ ->
        failwith "synthetic build failure")
  in
  let cfg = Config.default ~mode:Dpm.Adpm ~seed:0 in
  match Engine.run_many ~backend:Engine.Fork ~jobs:2 cfg broken ~seeds:[ 7; 8; 9 ] with
  | (_ : Metrics.run_summary list) -> Alcotest.fail "expected Failure"
  | exception Failure msg ->
    Alcotest.(check bool)
      (Printf.sprintf "error %S names seed 7" msg)
      true (contains msg "seed 7")

let suite =
  [
    ("pool identity and order", `Quick, test_pool_identity);
    ("pool empty input", `Quick, test_pool_empty);
    ("pool hostile payloads", `Quick, test_pool_hostile_payloads);
    ("pool worker raises", `Quick, test_pool_worker_raises);
    ("pool lowest failing index", `Quick, test_pool_worker_raises_lowest_index);
    ("pool worker dies", `Quick, test_pool_worker_dies);
    ("pool crash once recovers", `Quick, test_pool_crash_once_recovers);
    ("pool hang killed and requeued", `Quick,
     test_pool_hang_is_killed_and_requeued);
    ("pool retry budget exhausted", `Quick, test_pool_retry_budget_exhausted);
    ("pool partial error placement", `Quick, test_pool_partial_error_placement);
    ("pool partial raising f", `Quick, test_pool_partial_raising_f);
    ("pool fail-fast lowest crashing index", `Quick,
     test_pool_fail_fast_lowest_index_on_crashes);
    ("codec round-trip hostile names", `Quick, test_codec_roundtrip_hostile);
    ("codec round-trip real run", `Quick, test_codec_roundtrip_real_run);
    ("codec rejects garbage", `Quick, test_codec_rejects_garbage);
    ("parallel equals sequential", `Slow, test_equivalence);
    ("seed order preserved", `Quick, test_equivalence_preserves_seed_order);
    ("worker failure names seed", `Quick, test_run_many_failure_names_seed);
    ("run_many crash recovery bit-identical", `Quick,
     test_run_many_crash_recovery_bit_identical);
    ("run_many_partial isolates bad seeds", `Quick,
     test_run_many_partial_isolates_bad_seeds);
    ("run_many_partial healthy matches fail-fast", `Quick,
     test_run_many_partial_healthy_matches_fail_fast);
  ]
