(* Tests for the interactive session (a human playing one designer) and the
   full-scale DDDL scenario twins. *)

open Adpm_core
open Adpm_teamsim
open Adpm_scenarios

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let session () =
  Interactive.create ~mode:Dpm.Adpm ~seed:1 Lna.scenario ~designer:"circuit"

let ok s = match s with Ok out -> out | Error e -> Alcotest.fail e
let err s = match s with Error e -> e | Ok _ -> Alcotest.fail "expected error"

let test_create_validation () =
  Alcotest.(check bool) "unknown designer rejected" true
    (try
       ignore
         (Interactive.create ~mode:Dpm.Adpm ~seed:1 Lna.scenario
            ~designer:"nobody");
       false
     with Invalid_argument _ -> true)

let test_help_and_status () =
  let s = session () in
  Alcotest.(check bool) "help lists set" true (contains (ok (Interactive.execute s "help")) "set PROP VALUE");
  let status = ok (Interactive.execute s "status") in
  Alcotest.(check bool) "status lists problems" true (contains status "analog");
  Alcotest.(check bool) "status lists props" true (contains status "Diff-pair-W");
  Alcotest.(check bool) "prompt renders" true
    (contains (Interactive.prompt s) "circuit")

let test_browse () =
  let s = session () in
  Alcotest.(check bool) "object browser" true
    (contains (ok (Interactive.execute s "browse LNA+Mixer")) "Consistent values");
  Alcotest.(check bool) "unknown object" true
    (contains (err (Interactive.execute s "browse Nothing")) "unknown object");
  Alcotest.(check bool) "props view" true
    (contains (ok (Interactive.execute s "props")) "# c's");
  Alcotest.(check bool) "conflicts view" true
    (contains (ok (Interactive.execute s "conflicts")) "PROPERTIES")

let test_set_and_feedback () =
  let s = session () in
  let out = ok (Interactive.execute s "set Diff-pair-W 2.5") in
  Alcotest.(check bool) "reports execution" true (contains out "executed");
  Alcotest.(check bool) "reports evaluations" true (contains out "evaluations");
  (* not an own output *)
  Alcotest.(check bool) "foreign property rejected" true
    (contains (err (Interactive.execute s "set Beam-length 13")) "not an output");
  Alcotest.(check bool) "non-number rejected" true
    (contains (err (Interactive.execute s "set Diff-pair-W abc")) "not a number")

let test_set_derived_rejected () =
  let s =
    Interactive.create ~mode:Dpm.Adpm ~seed:1 Simple.scenario ~designer:"alice"
  in
  Alcotest.(check bool) "derived property rejected" true
    (contains (err (Interactive.execute s "set pa 10")) "tool computes")

let test_suggest_auto_step () =
  let s = session () in
  Alcotest.(check bool) "suggest names an operation" true
    (contains (ok (Interactive.execute s "suggest")) "suggested");
  Alcotest.(check bool) "auto executes" true
    (contains (ok (Interactive.execute s "auto")) "executed");
  Alcotest.(check bool) "step drives teammates" true
    (let out = ok (Interactive.execute s "step") in
     contains out "device" || contains out "leader" || contains out "executed"
     || contains out "idles")

let test_unknown_command () =
  let s = session () in
  Alcotest.(check bool) "unknown command" true
    (contains (err (Interactive.execute s "frobnicate")) "unknown command");
  Alcotest.(check string) "empty line is a no-op" ""
    (ok (Interactive.execute s ""))

let test_playthrough_to_completion () =
  (* drive the whole design with auto + step: the human delegates *)
  let s = session () in
  let steps = ref 0 in
  while (not (Interactive.finished s)) && !steps < 200 do
    incr steps;
    ignore (Interactive.execute s "auto");
    ignore (Interactive.execute s "step")
  done;
  Alcotest.(check bool) "session reaches completion" true (Interactive.finished s)

let test_conventional_verify () =
  let s =
    Interactive.create ~mode:Dpm.Conventional ~seed:1 Lna.scenario
      ~designer:"circuit"
  in
  ignore (ok (Interactive.execute s "set Diff-pair-W 3.5"));
  ignore (ok (Interactive.execute s "set Freq-ind 0.2"));
  let out = ok (Interactive.execute s "verify") in
  Alcotest.(check bool) "verification executes" true (contains out "verification")

(* {2 Exception containment (PR 8 regressions)}

   Before PR 8 only the [set] branch of [Interactive.execute] caught
   [Invalid_argument]; a session command that made a designer model raise
   on the [auto]/[step]/[verify] paths killed the whole loop — fatal for
   a daemon hosting many sessions. These scenarios are deliberately
   poisoned so those exact raises happen. *)

(* alice owns two problems: "params" with the free output x, and "perf"
   whose output y is derived (model y = x + 1). Her forward synthesis on
   x recomputes every derived output she can address and ships the
   (y, …) assignment inside an operation targeting "params" — which
   [Dpm.apply] rejects with [Invalid_argument] ("y is not an output of
   problem params"). *)
let cross_problem_scenario =
  let open Adpm_csp in
  let open Adpm_expr in
  let build ~mode =
    let net = Network.create () in
    Builder.continuous net "x" 0. 10.;
    Builder.continuous net "y" 0. 20.;
    let band = Builder.le net "y-band" (Expr.var "y") (Expr.const 15.) in
    Builder.assemble ~mode ~net ~objects:[] ~top_name:"top" ~leader:"leader"
      ~requirements:[] ~system_constraints:[]
      ~subproblems:
        [
          {
            Builder.ps_name = "params";
            ps_owner = "alice";
            ps_inputs = [];
            ps_outputs = [ "x" ];
            ps_constraints = [];
            ps_object = None;
          };
          {
            Builder.ps_name = "perf";
            ps_owner = "alice";
            ps_inputs = [];
            ps_outputs = [ "y" ];
            ps_constraints = [ band ];
            ps_object = None;
          };
        ]
  in
  Scenario.make ~name:"broken-synthesis"
    ~description:"poisoned: synthesis ships a cross-problem assignment"
    ~models:[ ("y", Adpm_expr.Expr.(var "x" + const 1.)) ]
    build

(* alice's problem lists a constraint id that the session's network does
   not know (the constraint was built on a different network), so in
   conventional mode [Dpm.eligible_verifications] raises
   [Invalid_argument] at {e choose} time — before any apply. *)
let alien_constraint_scenario =
  let open Adpm_csp in
  let open Adpm_expr in
  let build ~mode =
    let net = Network.create () in
    Builder.continuous net "x" 0. 10.;
    let alien_net = Network.create () in
    Builder.continuous alien_net "a" 0. 1.;
    let alien =
      List.nth
        (List.map
           (fun i ->
             Builder.le alien_net
               (Printf.sprintf "alien-%d" i)
               (Expr.var "a") (Expr.const (float_of_int i)))
           [ 1; 2; 3; 4; 5 ])
        4
    in
    Builder.assemble ~mode ~net ~objects:[] ~top_name:"top" ~leader:"leader"
      ~requirements:[] ~system_constraints:[]
      ~subproblems:
        [
          {
            Builder.ps_name = "work";
            ps_owner = "alice";
            ps_inputs = [];
            ps_outputs = [ "x" ];
            ps_constraints = [ alien ];
            ps_object = None;
          };
        ]
  in
  Scenario.make ~name:"broken-verify"
    ~description:"poisoned: a problem lists an unknown constraint id" build

let no_exception_leak name result =
  match result with
  | Error msg ->
    Alcotest.(check bool)
      (Printf.sprintf "%s reports the engine error" name)
      true
      (contains msg "not an output" || contains msg "unknown constraint")
  | Ok out -> Alcotest.failf "%s unexpectedly succeeded: %s" name out
  | exception Invalid_argument msg ->
    Alcotest.failf "%s leaked Invalid_argument: %s" name msg

let test_auto_contains_exceptions () =
  let s =
    Interactive.create ~mode:Dpm.Adpm ~seed:1 cross_problem_scenario
      ~designer:"alice"
  in
  no_exception_leak "auto" (Interactive.execute s "auto");
  (* the session survives and keeps answering *)
  ignore (ok (Interactive.execute s "status"))

let test_step_contains_exceptions () =
  (* same poison, but the throwing designer is a simulated teammate *)
  let s =
    Interactive.create ~mode:Dpm.Adpm ~seed:1 cross_problem_scenario
      ~designer:"leader"
  in
  no_exception_leak "step" (Interactive.execute s "step");
  ignore (ok (Interactive.execute s "status"))

let test_verify_contains_exceptions () =
  let s =
    Interactive.create ~mode:Dpm.Conventional ~seed:1 alien_constraint_scenario
      ~designer:"alice"
  in
  no_exception_leak "verify" (Interactive.execute s "verify");
  ignore (ok (Interactive.execute s "status"))

(* {2 Full-scale DDDL twins}

   The shipped scenarios are now elaborated from their embedded DDDL
   sources; the hand-built OCaml networks remain as the equivalence
   reference these tests run against. *)

let check_twin ?(must_complete = true) name dddl ocaml =
  List.iter
    (fun (mode, seed) ->
      let cfg = Config.default ~mode ~seed in
      let a = (Engine.run cfg dddl).Engine.o_summary in
      let b = (Engine.run cfg ocaml).Engine.o_summary in
      Alcotest.(check int)
        (Printf.sprintf "%s/%s ops equal" name (Dpm.mode_to_string mode))
        b.Metrics.s_operations a.Metrics.s_operations;
      Alcotest.(check int) "evals equal" b.Metrics.s_evaluations
        a.Metrics.s_evaluations;
      Alcotest.(check int) "spins equal" b.Metrics.s_spins a.Metrics.s_spins;
      if must_complete then
        Alcotest.(check bool) "completed" true a.Metrics.s_completed
      else
        Alcotest.(check bool) "completed equal" b.Metrics.s_completed
          a.Metrics.s_completed)
    [ (Dpm.Adpm, 1); (Dpm.Adpm, 3); (Dpm.Conventional, 1); (Dpm.Conventional, 3) ]

let test_sensor_dddl_twin () =
  check_twin "sensor" Sensor.scenario
    (Scenario.make ~name:"sensor-ocaml" ~description:"OCaml-built reference"
       ~models:Sensor.models
       (fun ~mode -> Sensor.build () ~mode))

let test_receiver_dddl_twin () =
  check_twin "receiver" Receiver.scenario
    (Scenario.make ~name:"receiver-ocaml" ~description:"OCaml-built reference"
       ~models:Receiver.models
       (fun ~mode -> Receiver.build () ~mode))

let test_lna_dddl_twin () =
  check_twin ~must_complete:false "lna" Lna.scenario
    (Scenario.make ~name:"lna-ocaml" ~description:"OCaml-built reference"
       (fun ~mode -> Lna.build () ~mode))

let suite =
  [
    ("create validation", `Quick, test_create_validation);
    ("help and status", `Quick, test_help_and_status);
    ("browser commands", `Quick, test_browse);
    ("set with tool feedback", `Quick, test_set_and_feedback);
    ("derived properties are tool-owned", `Quick, test_set_derived_rejected);
    ("suggest, auto, step", `Quick, test_suggest_auto_step);
    ("unknown command", `Quick, test_unknown_command);
    ("delegated playthrough completes", `Quick, test_playthrough_to_completion);
    ("conventional verify", `Quick, test_conventional_verify);
    ("auto contains engine exceptions", `Quick, test_auto_contains_exceptions);
    ("step contains engine exceptions", `Quick, test_step_contains_exceptions);
    ( "verify contains engine exceptions",
      `Quick,
      test_verify_contains_exceptions );
    ("sensor DDDL twin is exact", `Slow, test_sensor_dddl_twin);
    ("lna DDDL twin is exact", `Quick, test_lna_dddl_twin);
    ("receiver DDDL twin is exact", `Slow, test_receiver_dddl_twin);
  ]
