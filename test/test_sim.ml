(* Tests for Adpm_sim (event queue, mailbox, scheduler, duration model)
   and for Config.validate, which gates the discrete-event engine's new
   numeric settings. *)

open Adpm_core
open Adpm_sim
open Adpm_teamsim

(* {2 Event queue} *)

let test_queue_time_order () =
  let q = Event_queue.create () in
  List.iter (fun t -> Event_queue.push q ~time:t t) [ 5; 1; 9; 3; 7 ];
  let rec drain acc =
    match Event_queue.pop q with
    | None -> List.rev acc
    | Some (t, v) ->
      Alcotest.(check int) "payload matches its timestamp" t v;
      drain (t :: acc)
  in
  Alcotest.(check (list int)) "pops in time order" [ 1; 3; 5; 7; 9 ] (drain []);
  Alcotest.(check bool) "empty after drain" true (Event_queue.is_empty q)

let test_queue_tie_break () =
  let q = Event_queue.create () in
  List.iter (fun v -> Event_queue.push q ~time:4 v) [ "a"; "b"; "c" ];
  Event_queue.push q ~time:2 "first";
  let pops = List.init 4 (fun _ ->
      match Event_queue.pop q with Some (_, v) -> v | None -> "?")
  in
  Alcotest.(check (list string))
    "same-time entries pop in push order" [ "first"; "a"; "b"; "c" ] pops

let test_queue_negative_time () =
  let q = Event_queue.create () in
  Alcotest.check_raises "negative time rejected"
    (Invalid_argument "Event_queue.push: negative time") (fun () ->
      Event_queue.push q ~time:(-1) ())

let test_queue_interleaved () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:10 "late";
  Event_queue.push q ~time:0 "early";
  (match Event_queue.pop q with
  | Some (0, "early") -> ()
  | _ -> Alcotest.fail "expected the early entry");
  Event_queue.push q ~time:5 "mid";
  Alcotest.(check (option int)) "peek sees the mid entry" (Some 5)
    (Event_queue.peek_time q);
  Alcotest.(check int) "two entries pending" 2 (Event_queue.length q);
  Event_queue.clear q;
  Alcotest.(check bool) "clear empties" true (Event_queue.is_empty q)

(* {2 Mailbox} *)

let test_mailbox_fifo () =
  let m = Mailbox.create () in
  Alcotest.(check bool) "starts empty" true (Mailbox.is_empty m);
  List.iter (Mailbox.push m) [ 1; 2; 3 ];
  Alcotest.(check int) "three queued" 3 (Mailbox.length m);
  Alcotest.(check (option int)) "pop oldest" (Some 1) (Mailbox.pop m);
  Mailbox.push m 4;
  Alcotest.(check (list int)) "drain oldest-first" [ 2; 3; 4 ] (Mailbox.drain m);
  Alcotest.(check (list int)) "drained empty" [] (Mailbox.drain m)

(* {2 Scheduler} *)

let test_scheduler_clock () =
  let sch = Scheduler.create () in
  Alcotest.(check int) "starts at 0" 0 (Scheduler.now sch);
  let seen = ref [] in
  Scheduler.schedule sch ~delay:3 `A;
  Scheduler.schedule sch ~delay:1 `B;
  Scheduler.run sch (fun ev ->
      seen := (ev, Scheduler.now sch) :: !seen;
      (* the handler schedules relative to the advanced clock *)
      if ev = `B then Scheduler.schedule sch ~delay:4 `C);
  Alcotest.(check bool) "fires B(1), A(3), C(5)" true
    (List.rev !seen = [ (`B, 1); (`A, 3); (`C, 5) ]);
  Alcotest.(check int) "clock rests at the last event" 5 (Scheduler.now sch)

let test_scheduler_halt () =
  let sch = Scheduler.create () in
  let fired = ref 0 in
  Scheduler.schedule sch ~delay:0 ();
  Scheduler.schedule sch ~delay:1 ();
  Scheduler.schedule sch ~delay:2 ();
  Scheduler.run sch (fun () ->
      incr fired;
      Scheduler.halt sch);
  Alcotest.(check int) "halt stops after the current event" 1 !fired;
  Alcotest.(check bool) "halted" true (Scheduler.halted sch);
  Scheduler.schedule sch ~delay:0 ();
  Alcotest.(check int) "schedule after halt is a no-op" 0 (Scheduler.pending sch);
  Alcotest.check_raises "negative delay rejected"
    (Invalid_argument "Scheduler.schedule: negative delay") (fun () ->
      Scheduler.schedule (Scheduler.create ()) ~delay:(-2) ())

(* {2 Duration model} *)

let test_model_roundtrip () =
  List.iter
    (fun d ->
      match Model.duration_of_string (Model.duration_to_string d) with
      | Ok d' ->
        Alcotest.(check bool)
          (Model.duration_to_string d ^ " round-trips")
          true (d = d')
      | Error msg -> Alcotest.fail msg)
    [
      Model.Uniform 1;
      Model.Uniform 7;
      Model.Per_kind { dm_synthesis = 2; dm_verification = 5; dm_decompose = 1 };
    ];
  List.iter
    (fun s ->
      match Model.duration_of_string s with
      | Ok _ -> Alcotest.fail (s ^ " should not parse")
      | Error _ -> ())
    [ ""; "uniform"; "uniform:x"; "per-kind:1,2"; "gaussian:3" ]

let test_model_durations () =
  let per =
    Model.Per_kind { dm_synthesis = 2; dm_verification = 5; dm_decompose = 1 }
  in
  Alcotest.(check int) "synthesis" 2 (Model.duration_for per Model.Synthesis);
  Alcotest.(check int) "verification" 5
    (Model.duration_for per Model.Verification);
  Alcotest.(check int) "decompose" 1 (Model.duration_for per Model.Decompose);
  Alcotest.(check int) "uniform" 3
    (Model.duration_for (Model.Uniform 3) Model.Verification);
  Alcotest.(check int) "own delivery instant" 0
    (Model.delivery_delay ~latency:9 ~own:true ());
  Alcotest.(check int) "teammate delivery lags" 9
    (Model.delivery_delay ~latency:9 ~own:false ());
  Alcotest.(check int) "jitter stretches teammate delivery" 12
    (Model.delivery_delay ~extra:3 ~latency:9 ~own:false ());
  Alcotest.(check int) "jitter never delays own feedback" 0
    (Model.delivery_delay ~extra:3 ~latency:9 ~own:true ())

(* {2 Config validation} *)

let base = Config.default ~mode:Dpm.Adpm ~seed:1

let rejects name cfg =
  match Config.validate cfg with
  | Error _ -> ()
  | Ok () -> Alcotest.fail (name ^ ": expected a validation error")

let test_config_validate () =
  (match Config.validate base with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("default config must validate: " ^ msg));
  rejects "zero max_ops" { base with Config.max_ops = 0 };
  rejects "negative max_ops" { base with Config.max_ops = -3 };
  rejects "zero max_revisions" { base with Config.max_revisions = 0 };
  rejects "negative latency" { base with Config.latency = -1 };
  rejects "negative duration"
    { base with Config.duration_model = Adpm_sim.Model.Uniform (-2) };
  rejects "negative per-kind duration"
    {
      base with
      Config.duration_model =
        Adpm_sim.Model.Per_kind
          { dm_synthesis = 1; dm_verification = -1; dm_decompose = 1 };
    };
  rejects "zero delta divisor" { base with Config.delta_divisor = 0. };
  rejects "nan delta divisor" { base with Config.delta_divisor = Float.nan };
  Alcotest.check_raises "validate_exn raises Invalid_argument"
    (Invalid_argument
       "Config.validate: max_ops must be positive (got 0)") (fun () ->
      Config.validate_exn { base with Config.max_ops = 0 })

let suite =
  [
    ("event queue: time order", `Quick, test_queue_time_order);
    ("event queue: FIFO tie-break", `Quick, test_queue_tie_break);
    ("event queue: negative time", `Quick, test_queue_negative_time);
    ("event queue: interleaved use", `Quick, test_queue_interleaved);
    ("mailbox FIFO", `Quick, test_mailbox_fifo);
    ("scheduler clock", `Quick, test_scheduler_clock);
    ("scheduler halt", `Quick, test_scheduler_halt);
    ("duration model round-trip", `Quick, test_model_roundtrip);
    ("duration and delivery lookups", `Quick, test_model_durations);
    ("config validation", `Quick, test_config_validate);
  ]
