(* The discrete-event engine's contracts.

   The load-bearing one: at latency 0 (any duration model), Engine.run is
   bit-identical — whole summary, per-op profile included — to the
   preserved lockstep loop, across every scenario, both modes, and a
   spread of seeds. Then the latency > 0 behaviours: delivery timestamps
   strictly after the originating operation, determinism, replayability,
   and the virtual makespan. *)

open Adpm_core
open Adpm_teamsim
open Adpm_scenarios
open Adpm_trace

let scenarios =
  [
    Simple.scenario;
    Lna.scenario;
    Sensor.scenario;
    Receiver.scenario;
    Generated.scenario (Generated.default_params ~subsystems:4 ~vars:3);
  ]

let cfg ?(latency = 0) ?(duration_model = Adpm_sim.Model.unit_duration) mode
    seed =
  {
    (Config.default ~mode ~seed) with
    Config.max_ops = 500;
    latency;
    duration_model;
  }

(* {2 Latency-0 equivalence} *)

let check_identical label a b =
  (* compare field by field first so a mismatch names what diverged *)
  Alcotest.(check bool)
    (label ^ ": completed")
    a.Metrics.s_completed b.Metrics.s_completed;
  Alcotest.(check int) (label ^ ": operations") a.Metrics.s_operations
    b.Metrics.s_operations;
  Alcotest.(check int) (label ^ ": evaluations") a.Metrics.s_evaluations
    b.Metrics.s_evaluations;
  Alcotest.(check int) (label ^ ": spins") a.Metrics.s_spins b.Metrics.s_spins;
  Alcotest.(check bool)
    (label ^ ": full summary incl. profile")
    true (a = b)

let test_latency0_equivalence () =
  List.iter
    (fun scenario ->
      List.iter
        (fun mode ->
          List.iter
            (fun seed ->
              let c = cfg mode seed in
              let des = (Engine.run c scenario).Engine.o_summary in
              let reference =
                (Engine.run_lockstep c scenario).Engine.o_summary
              in
              check_identical
                (Printf.sprintf "%s/%s seed %d" scenario.Scenario.sc_name
                   (Dpm.mode_to_string mode) seed)
                des reference)
            [ 1; 2; 3; 4; 5 ])
        [ Dpm.Adpm; Dpm.Conventional ])
    scenarios

let test_duration_model_invariant_at_latency0 () =
  let stretched =
    Adpm_sim.Model.Per_kind
      { dm_synthesis = 3; dm_verification = 7; dm_decompose = 2 }
  in
  List.iter
    (fun mode ->
      let plain = (Engine.run (cfg mode 2) Sensor.scenario).Engine.o_summary in
      let slow =
        (Engine.run (cfg ~duration_model:stretched mode 2) Sensor.scenario)
          .Engine.o_summary
      in
      Alcotest.(check bool)
        (Dpm.mode_to_string mode
        ^ ": durations stretch the clock, not the outcome")
        true (plain = slow))
    [ Dpm.Adpm; Dpm.Conventional ]

let test_makespan_counts_ops_at_unit_duration () =
  let outcome = Engine.run (cfg Dpm.Adpm 1) Sensor.scenario in
  Alcotest.(check int) "makespan = operation count (uniform:1, latency 0)"
    outcome.Engine.o_summary.Metrics.s_operations outcome.Engine.o_makespan;
  let lockstep = Engine.run_lockstep (cfg Dpm.Adpm 1) Sensor.scenario in
  Alcotest.(check int) "lockstep reports the same makespan"
    outcome.Engine.o_makespan lockstep.Engine.o_makespan

let test_engine_validates_config () =
  let bad = { (cfg Dpm.Adpm 1) with Config.max_ops = 0 } in
  let raises f =
    match f () with
    | (_ : Engine.outcome) -> Alcotest.fail "expected Invalid_argument"
    | exception Invalid_argument _ -> ()
  in
  raises (fun () -> Engine.run bad Simple.scenario);
  raises (fun () -> Engine.run_lockstep bad Simple.scenario)

(* {2 Latency > 0} *)

let traced_run c scenario =
  let buffer, sink = Sink.memory ~capacity:100_000 in
  let tracer = Tracer.create sink in
  let outcome =
    Fun.protect
      ~finally:(fun () -> Tracer.close tracer)
      (fun () -> Engine.run ~tracer c scenario)
  in
  (outcome, Sink.Ring.contents buffer)

let test_latency_delivery_timestamps () =
  let latency = 3 in
  let c = cfg ~latency Dpm.Adpm 1 in
  let _, events = traced_run c Sensor.scenario in
  let completions = Hashtbl.create 64 in
  List.iter
    (fun { Event.event; _ } ->
      match event with
      | Event.Op_completed { index; at } -> Hashtbl.replace completions index at
      | _ -> ())
    events;
  Alcotest.(check bool) "trace has completions" true
    (Hashtbl.length completions > 0);
  let deliveries =
    List.filter_map
      (fun { Event.event; _ } ->
        match event with
        | Event.Notification_delivered { op_index; sent_at; delivered_at; _ } ->
          Some (op_index, sent_at, delivered_at)
        | _ -> None)
      events
  in
  Alcotest.(check bool) "trace has teammate deliveries" true
    (deliveries <> []);
  List.iter
    (fun (op_index, sent_at, delivered_at) ->
      Alcotest.(check bool) "delivered strictly after the operation" true
        (delivered_at > sent_at);
      Alcotest.(check int) "transit time is the configured latency" latency
        (delivered_at - sent_at);
      match Hashtbl.find_opt completions op_index with
      | Some at ->
        Alcotest.(check int) "sent when the operation completed" at sent_at
      | None -> Alcotest.fail "delivery references an unknown operation")
    deliveries;
  let report = Analyze.analyze events in
  Alcotest.(check int) "analyzer counts the deliveries"
    (List.length deliveries) report.Analyze.r_deliveries;
  Alcotest.(check (float 1e-9)) "analyzer mean transit" (float_of_int latency)
    report.Analyze.r_delivery_latency_mean;
  Alcotest.(check bool) "analyzer sees a positive makespan" true
    (report.Analyze.r_makespan > 0)

let test_latency_deterministic () =
  let c = cfg ~latency:2 Dpm.Conventional 7 in
  let o1, t1 = traced_run c Sensor.scenario in
  let o2, t2 = traced_run c Sensor.scenario in
  Alcotest.(check bool) "same summary" true
    (o1.Engine.o_summary = o2.Engine.o_summary);
  Alcotest.(check bool) "same trace, event for event" true
    (List.map Codec.to_line t1 = List.map Codec.to_line t2)

let test_latency_trace_replays () =
  let c = cfg ~latency:2 Dpm.Adpm 3 in
  let _, events = traced_run c Sensor.scenario in
  let report = Replay.run ~resolve:(Scenario.resolver scenarios) events in
  Alcotest.(check bool) "latency trace replays and converges" true
    (Replay.converged report)

let test_latency_changes_conventional_run () =
  (* a sanity check that the knob is live: some scenario/seed must react
     to a large notification lag *)
  let differs =
    List.exists
      (fun seed ->
        let at latency =
          (Engine.run (cfg ~latency Dpm.Conventional seed) Sensor.scenario)
            .Engine.o_summary
        in
        at 0 <> at 8)
      [ 1; 2; 3; 4; 5 ]
  in
  Alcotest.(check bool) "latency 8 alters at least one run" true differs

(* {2 Requirement shifts — the adaptability workload} *)

let gen_scenario = Generated.scenario (Generated.default_params ~subsystems:3 ~vars:2)

(* in-range for gen:n=3,k=2's p_budget (initial range 1 .. 2*budget);
   tight enough that the team must re-work after the shift *)
let squeeze = Shift.{ sh_prop = "p_budget"; sh_value = 20.; sh_at = 10 }

let shift_cfg ?(policy = Config.Endpoint) ?(shifts = []) mode seed =
  { (cfg mode seed) with Config.shifts; value_policy = policy }

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1))
  in
  go 0

let test_shift_syntax () =
  let plan =
    match Shift.plan_of_string "p_budget>=140@30; gmin0>=9.5@60" with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check int) "two shifts" 2 (List.length plan);
  Alcotest.(check string)
    "round-trips" "p_budget>=140@30;gmin0>=9.5@60"
    (Shift.plan_to_string plan);
  List.iter
    (fun (bad, want) ->
      match Shift.plan_of_string bad with
      | Ok _ -> Alcotest.failf "%S parsed" bad
      | Error msg ->
        Alcotest.(check bool)
          (Printf.sprintf "%S error mentions %S" bad want)
          true (contains msg want))
    [
      ("p_budget>=140", "@TICK");
      (">=140@30", "names no property");
      ("p_budget>=x@30", "not a number");
      ("p_budget>=140@x", "not an integer");
      ("p_budget>=140@-3", ">= 0");
      ("p_budget=140@30", "PROP>=FLOOR@TICK");
    ]

let test_shift_run_replays () =
  let c = shift_cfg ~shifts:[ squeeze ] Dpm.Adpm 1 in
  let outcome, events = traced_run c gen_scenario in
  Alcotest.(check bool) "completed after the shift" true
    outcome.Engine.o_summary.Metrics.s_completed;
  let shift_events =
    List.filter
      (fun s ->
        match s.Event.event with
        | Event.Requirement_shifted _ -> true
        | _ -> false)
      events
  in
  Alcotest.(check int) "one shift event" 1 (List.length shift_events);
  Alcotest.(check int) "analyze counts it" 1
    (Analyze.analyze events).Analyze.r_shifts;
  (* the recorded name is gen:<spec>, so the registry re-resolves it *)
  let report = Replay.run ~resolve:Registry.resolve events in
  Alcotest.(check bool) "shifted trace replays and converges" true
    (Replay.converged report)

let test_shift_is_live_and_deterministic () =
  let run shifts =
    (Engine.run (shift_cfg ~shifts Dpm.Adpm 1) gen_scenario).Engine.o_summary
  in
  let plain = run [] and shifted = run [ squeeze ] in
  Alcotest.(check bool) "shift changes the run" true (plain <> shifted);
  Alcotest.(check bool) "same plan, same run" true (shifted = run [ squeeze ])

let test_shift_after_solve_still_halts () =
  (* a shift scheduled far past the solve: the team idles until it fires,
     re-checks, and the run still completes *)
  let loose = Shift.{ squeeze with sh_value = 40.; sh_at = 300 } in
  let outcome =
    Engine.run (shift_cfg ~shifts:[ loose ] Dpm.Adpm 1) gen_scenario
  in
  Alcotest.(check bool) "still completes" true
    outcome.Engine.o_summary.Metrics.s_completed;
  Alcotest.(check bool) "idled until the shift tick" true
    (outcome.Engine.o_makespan >= 300)

let test_conventional_pays_more_after_shift () =
  (* the adaptability asymmetry: the same squeeze costs the conventional
     team more operations than the ADPM team (staleness until the next
     verification vs immediate propagation) *)
  let ops mode =
    let s =
      (Engine.run
         { (shift_cfg ~shifts:[ squeeze ] mode 1) with Config.max_ops = 2000 }
         gen_scenario)
        .Engine.o_summary
    in
    Alcotest.(check bool)
      (Dpm.mode_to_string mode ^ " completes")
      true s.Metrics.s_completed;
    s.Metrics.s_operations
  in
  Alcotest.(check bool) "conventional needs more ops" true
    (ops Dpm.Conventional > ops Dpm.Adpm)

let test_shift_rejections () =
  let expect_invalid label f =
    match f () with
    | _ -> Alcotest.failf "%s: expected Invalid_argument" label
    | exception Invalid_argument _ -> ()
  in
  expect_invalid "lockstep refuses shifts" (fun () ->
      Engine.run_lockstep
        (shift_cfg ~shifts:[ squeeze ] Dpm.Adpm 1)
        gen_scenario);
  expect_invalid "unknown property" (fun () ->
      Engine.run
        (shift_cfg
           ~shifts:[ Shift.{ squeeze with sh_prop = "nonesuch" } ]
           Dpm.Adpm 1)
        gen_scenario);
  expect_invalid "out-of-range value" (fun () ->
      Engine.run
        (shift_cfg
           ~shifts:[ Shift.{ squeeze with sh_value = 1e9 } ]
           Dpm.Adpm 1)
        gen_scenario)

(* {2 The headroom value policy} *)

let test_headroom_policy_runs () =
  List.iter
    (fun seed ->
      let c = shift_cfg ~policy:Config.Headroom Dpm.Adpm seed in
      let des = (Engine.run c gen_scenario).Engine.o_summary in
      Alcotest.(check bool)
        (Printf.sprintf "headroom seed %d completes" seed)
        true des.Metrics.s_completed;
      (* the policy is engine-independent, like every designer choice *)
      let reference = (Engine.run_lockstep c gen_scenario).Engine.o_summary in
      Alcotest.(check bool)
        (Printf.sprintf "headroom seed %d: DES = lockstep" seed)
        true (des = reference))
    [ 1; 2; 3 ]

let test_headroom_policy_is_live () =
  let at policy =
    (Engine.run (shift_cfg ~policy Dpm.Adpm 1) gen_scenario).Engine.o_summary
  in
  Alcotest.(check bool) "headroom differs from endpoint" true
    (at Config.Headroom <> at Config.Endpoint)

let test_headroom_trace_replays () =
  let c = shift_cfg ~policy:Config.Headroom ~shifts:[ squeeze ] Dpm.Adpm 1 in
  let _, events = traced_run c gen_scenario in
  let report = Replay.run ~resolve:Registry.resolve events in
  Alcotest.(check bool) "headroom+shift trace replays" true
    (Replay.converged report)

let suite =
  [
    ("latency-0 DES = lockstep (all scenarios)", `Slow,
     test_latency0_equivalence);
    ("duration model invariant at latency 0", `Slow,
     test_duration_model_invariant_at_latency0);
    ("makespan counts operations", `Quick,
     test_makespan_counts_ops_at_unit_duration);
    ("engine validates config", `Quick, test_engine_validates_config);
    ("delivery timestamps lag completions", `Quick,
     test_latency_delivery_timestamps);
    ("latency runs are deterministic", `Quick, test_latency_deterministic);
    ("latency traces replay", `Quick, test_latency_trace_replays);
    ("latency knob is live", `Slow, test_latency_changes_conventional_run);
    ("shift plan syntax", `Quick, test_shift_syntax);
    ("shifted run replays", `Quick, test_shift_run_replays);
    ("shift knob is live and deterministic", `Quick,
     test_shift_is_live_and_deterministic);
    ("post-solve shift still halts", `Quick, test_shift_after_solve_still_halts);
    ("conventional pays more after a shift", `Slow,
     test_conventional_pays_more_after_shift);
    ("bad shift plans are rejected", `Quick, test_shift_rejections);
    ("headroom policy runs (DES = lockstep)", `Slow, test_headroom_policy_runs);
    ("headroom policy is live", `Quick, test_headroom_policy_is_live);
    ("headroom+shift trace replays", `Quick, test_headroom_trace_replays);
  ]
