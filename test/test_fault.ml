(* The fault-injection layer's contracts.

   The load-bearing one first: a zero-rate fault plan is structurally
   [Fault.none], so the engine takes the fault-free path — no Rng split,
   no fate draws — and stays bit-identical (full summary, per-op profile
   included) to the lockstep reference across every scenario, both modes
   and a spread of seeds. Then the faulty behaviours: every knob is live,
   runs are pure functions of their seed, recorded faulty traces replay
   and converge, and a crashed designer's believed-status table is
   rebuilt only from post-restart deliveries. *)

open Adpm_core
open Adpm_teamsim
open Adpm_scenarios
open Adpm_trace
module Fault = Adpm_fault.Fault

let scenarios =
  [
    Simple.scenario;
    Lna.scenario;
    Sensor.scenario;
    Receiver.scenario;
    Generated.scenario (Generated.default_params ~subsystems:4 ~vars:3);
  ]

(* the same plan [Fault.none] denotes, built field by field as the CLI
   does from all-default flags *)
let zero_plan = { Fault.p_drop = 0.; p_dup = 0.; p_jitter = 0; p_crashes = [] }

let cfg ?(faults = Fault.none) ?(latency = 0) mode seed =
  { (Config.default ~mode ~seed) with Config.max_ops = 500; latency; faults }

(* {2 Plan algebra and parsing} *)

let test_plan_none_and_validate () =
  Alcotest.(check bool) "zero-rate plan is none" true (Fault.is_none zero_plan);
  Alcotest.(check bool)
    "drop 0.1 is not none" false
    (Fault.is_none { zero_plan with Fault.p_drop = 0.1 });
  Alcotest.(check bool) "none validates" true
    (Result.is_ok (Fault.validate Fault.none));
  List.iter
    (fun (label, plan) ->
      match Fault.validate plan with
      | Error _ -> ()
      | Ok () -> Alcotest.failf "%s: expected a validation error" label)
    [
      ("drop > 1", { zero_plan with Fault.p_drop = 1.5 });
      ("negative dup", { zero_plan with Fault.p_dup = -0.1 });
      ("nan drop", { zero_plan with Fault.p_drop = Float.nan });
      ("negative jitter", { zero_plan with Fault.p_jitter = -1 });
      ( "zero recovery",
        {
          zero_plan with
          Fault.p_crashes =
            [ { Fault.cr_designer = "a"; cr_at = 3; cr_recover = 0 } ];
        } );
      ( "negative crash time",
        {
          zero_plan with
          Fault.p_crashes =
            [ { Fault.cr_designer = "a"; cr_at = -1; cr_recover = 2 } ];
        } );
      ( "empty designer name",
        {
          zero_plan with
          Fault.p_crashes =
            [ { Fault.cr_designer = ""; cr_at = 1; cr_recover = 2 } ];
        } );
    ]

let test_crash_plan_string_roundtrip () =
  let crashes =
    [
      { Fault.cr_designer = "alice"; cr_at = 12; cr_recover = 5 };
      { Fault.cr_designer = "bob"; cr_at = 30; cr_recover = 10 };
    ]
  in
  let s = Fault.crashes_to_string crashes in
  (match Fault.crashes_of_string s with
  | Ok parsed ->
    Alcotest.(check bool) (s ^ " round-trips") true (parsed = crashes)
  | Error e -> Alcotest.failf "%s failed to parse back: %s" s e);
  (match Fault.crashes_of_string "" with
  | Ok [] -> ()
  | Ok _ | Error _ -> Alcotest.fail "empty string should be the empty plan");
  List.iter
    (fun garbage ->
      match Fault.crashes_of_string garbage with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "garbage %S parsed" garbage)
    [ "alice"; "alice@"; "alice@x+1"; "alice@3"; "alice@3+"; "@3+1" ];
  (* a trailing separator is tolerated, like a trailing comma in a list *)
  match Fault.crashes_of_string "a@3+1;" with
  | Ok [ { Fault.cr_designer = "a"; cr_at = 3; cr_recover = 1 } ] -> ()
  | Ok _ | Error _ -> Alcotest.fail "trailing semicolon should be tolerated"

(* {2 Zero-fault bit-identity with the PR 4 engine} *)

let check_identical label a b =
  Alcotest.(check bool)
    (label ^ ": completed")
    a.Metrics.s_completed b.Metrics.s_completed;
  Alcotest.(check int) (label ^ ": operations") a.Metrics.s_operations
    b.Metrics.s_operations;
  Alcotest.(check int) (label ^ ": evaluations") a.Metrics.s_evaluations
    b.Metrics.s_evaluations;
  Alcotest.(check bool)
    (label ^ ": full summary incl. profile")
    true (a = b)

let test_zero_fault_bit_identity () =
  List.iter
    (fun scenario ->
      List.iter
        (fun mode ->
          List.iter
            (fun seed ->
              let with_zero_plan =
                (Engine.run (cfg ~faults:zero_plan mode seed) scenario)
                  .Engine.o_summary
              in
              let reference =
                (Engine.run_lockstep (cfg mode seed) scenario)
                  .Engine.o_summary
              in
              check_identical
                (Printf.sprintf "%s/%s seed %d" scenario.Scenario.sc_name
                   (Dpm.mode_to_string mode) seed)
                with_zero_plan reference)
            [ 1; 2; 3 ])
        [ Dpm.Adpm; Dpm.Conventional ])
    scenarios

let test_lockstep_rejects_faults () =
  let faulty = cfg ~faults:{ zero_plan with Fault.p_drop = 0.5 } Dpm.Adpm 1 in
  match Engine.run_lockstep faulty Sensor.scenario with
  | (_ : Engine.outcome) ->
    Alcotest.fail "run_lockstep accepted a fault plan"
  | exception Invalid_argument _ -> ()

(* {2 Knobs are live and runs are seed-deterministic} *)

let faults_of summary = summary.Metrics.s_faults

(* A knob "works" when some seed in a small window exercises it; a fixed
   single seed would make the test hostage to one random draw. *)
let exists_seed pred =
  List.exists
    (fun seed -> pred (Engine.run (cfg Dpm.Adpm seed) Sensor.scenario))
    [ 1; 2; 3; 4; 5 ]

let test_drop_knob_is_live () =
  let plan = { zero_plan with Fault.p_drop = 0.5 } in
  Alcotest.(check bool) "some seed drops a notification" true
    (List.exists
       (fun seed ->
         let s =
           (Engine.run (cfg ~faults:plan Dpm.Adpm seed) Sensor.scenario)
             .Engine.o_summary
         in
         (faults_of s).Metrics.f_dropped > 0)
       [ 1; 2; 3; 4; 5 ]);
  Alcotest.(check bool) "fault-free runs report zero faults" true
    (exists_seed (fun o ->
         faults_of o.Engine.o_summary = Metrics.no_faults))

let test_dup_knob_is_live () =
  let plan = { zero_plan with Fault.p_dup = 0.6 } in
  Alcotest.(check bool) "some seed duplicates a notification" true
    (List.exists
       (fun seed ->
         let s =
           (Engine.run (cfg ~faults:plan Dpm.Adpm seed) Sensor.scenario)
             .Engine.o_summary
         in
         (faults_of s).Metrics.f_duplicated > 0)
       [ 1; 2; 3; 4; 5 ])

let first_designer scenario =
  match Dpm.designers (scenario.Scenario.sc_build ~mode:Dpm.Adpm) with
  | first :: _ -> first
  | [] -> Alcotest.fail "scenario has no designers"

let crash_plan ?(at = 2) ?(recover = 8) scenario =
  {
    zero_plan with
    Fault.p_crashes =
      [
        {
          Fault.cr_designer = first_designer scenario;
          cr_at = at;
          cr_recover = recover;
        };
      ];
  }

let test_crash_knob_is_live () =
  let plan = crash_plan Sensor.scenario in
  let s =
    (Engine.run (cfg ~faults:plan Dpm.Conventional 3) Sensor.scenario)
      .Engine.o_summary
  in
  Alcotest.(check int) "the scheduled crash fired" 1
    (faults_of s).Metrics.f_crashes

let test_unknown_crash_designer_rejected () =
  let plan =
    {
      zero_plan with
      Fault.p_crashes =
        [ { Fault.cr_designer = "nobody"; cr_at = 1; cr_recover = 1 } ];
    }
  in
  match Engine.run (cfg ~faults:plan Dpm.Adpm 1) Sensor.scenario with
  | (_ : Engine.outcome) -> Alcotest.fail "unknown designer accepted"
  | exception Invalid_argument msg ->
    let contains haystack needle =
      let nl = String.length needle and hl = String.length haystack in
      let rec go i =
        i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1))
      in
      go 0
    in
    Alcotest.(check bool) "names the designer" true (contains msg "nobody")

let summary_testable =
  Alcotest.testable
    (fun ppf s -> Format.pp_print_string ppf (Metrics.summary_line s))
    ( = )

let test_faulty_runs_are_seed_deterministic () =
  let plan =
    {
      Fault.p_drop = 0.25;
      p_dup = 0.2;
      p_jitter = 3;
      p_crashes = (crash_plan ~at:3 ~recover:6 Sensor.scenario).Fault.p_crashes;
    }
  in
  List.iter
    (fun mode ->
      List.iter
        (fun seed ->
          let once =
            (Engine.run (cfg ~faults:plan ~latency:1 mode seed)
               Sensor.scenario)
              .Engine.o_summary
          in
          let again =
            (Engine.run (cfg ~faults:plan ~latency:1 mode seed)
               Sensor.scenario)
              .Engine.o_summary
          in
          Alcotest.check summary_testable
            (Printf.sprintf "%s seed %d replays bit-identically"
               (Dpm.mode_to_string mode) seed)
            once again)
        [ 1; 2; 3 ])
    [ Dpm.Adpm; Dpm.Conventional ]

(* {2 Faulty traces record and replay} *)

let test_faulty_trace_replays () =
  let plan =
    {
      Fault.p_drop = 0.3;
      p_dup = 0.2;
      p_jitter = 2;
      p_crashes = (crash_plan Sensor.scenario).Fault.p_crashes;
    }
  in
  let buffer, sink = Sink.memory ~capacity:100_000 in
  let tracer = Tracer.create sink in
  let outcome =
    Engine.run ~tracer (cfg ~faults:plan ~latency:1 Dpm.Conventional 2)
      Sensor.scenario
  in
  Tracer.close tracer;
  let events = Sink.Ring.contents buffer in
  let kinds = List.map (fun e -> Event.kind_label e.Event.event) events in
  Alcotest.(check bool) "trace records a designer crash" true
    (List.mem "designer_crashed" kinds);
  Alcotest.(check bool) "trace records the matching restart" true
    (List.mem "designer_restarted" kinds);
  Alcotest.(check bool) "trace records dropped notifications" true
    ((faults_of outcome.Engine.o_summary).Metrics.f_dropped = 0
    || List.mem "notification_dropped" kinds);
  let report = Replay.run ~resolve:(Scenario.resolver scenarios) events in
  Alcotest.(check bool) "faulty trace replays and converges" true
    (Replay.converged report)

(* {2 Crash/restart semantics at the designer level} *)

let test_restart_loses_believed_statuses () =
  let scenario = Sensor.scenario in
  let dpm = scenario.Scenario.sc_build ~mode:Dpm.Adpm in
  ignore (Dpm.run_propagation dpm);
  let c = Config.default ~mode:Dpm.Adpm ~seed:5 in
  let designers =
    List.map
      (fun name ->
        Designer.create c
          ~rng:(Adpm_util.Rng.create 5)
          ~models:scenario.Scenario.sc_models name)
      (Dpm.designers dpm)
  in
  List.iter
    (fun d -> Designer.learn_statuses d (Dpm.known_statuses dpm))
    designers;
  (* restart one designer that is actually able to act right now *)
  let d, op =
    match
      List.find_map
        (fun d ->
          Option.map (fun op -> (d, op)) (Designer.choose_operation d dpm))
        designers
    with
    | Some pair -> pair
    | None -> Alcotest.fail "no designer can act at kickoff"
  in
  Alcotest.(check bool) "kickoff seeds the believed table" true
    (Designer.believed_snapshot d <> []);
  Designer.restart d;
  Alcotest.(check bool) "restart wipes the table" true
    (Designer.believed_snapshot d = []);
  (* a post-restart delivery is the only thing that repopulates it *)
  let result = Dpm.apply dpm op in
  Designer.deliver d ~own:false op result;
  let absorbed = Designer.drain d dpm in
  Alcotest.(check int) "one queued delivery absorbed" 1 absorbed;
  let rebuilt = Designer.believed_snapshot d in
  let touched =
    List.sort_uniq compare
      (List.map (fun (cid, _, _) -> cid) result.Dpm.r_status_changes)
  in
  Alcotest.(check (list int))
    "rebuilt beliefs come only from the post-restart delivery" touched
    (List.sort compare (List.map fst rebuilt))

(* {2 Engine crash produces degraded-but-recovering runs} *)

let test_crash_then_recovery_completes () =
  (* With a mid-run crash window the run must still terminate (the idle
     team waits out the recovery rather than halting), and the outcome
     stays a pure function of the seed. *)
  let plan = crash_plan ~at:4 ~recover:10 Sensor.scenario in
  List.iter
    (fun mode ->
      let a =
        (Engine.run (cfg ~faults:plan mode 7) Sensor.scenario)
          .Engine.o_summary
      in
      let b =
        (Engine.run (cfg ~faults:plan mode 7) Sensor.scenario)
          .Engine.o_summary
      in
      Alcotest.(check int)
        (Dpm.mode_to_string mode ^ ": crash fired")
        1 (faults_of a).Metrics.f_crashes;
      Alcotest.check summary_testable
        (Dpm.mode_to_string mode ^ ": deterministic")
        a b)
    [ Dpm.Adpm; Dpm.Conventional ]

let suite =
  [
    ("plan none and validate", `Quick, test_plan_none_and_validate);
    ("crash plan string round-trip", `Quick, test_crash_plan_string_roundtrip);
    ("zero-fault bit-identity", `Slow, test_zero_fault_bit_identity);
    ("lockstep rejects faults", `Quick, test_lockstep_rejects_faults);
    ("drop knob is live", `Quick, test_drop_knob_is_live);
    ("dup knob is live", `Quick, test_dup_knob_is_live);
    ("crash knob is live", `Quick, test_crash_knob_is_live);
    ("unknown crash designer rejected", `Quick,
     test_unknown_crash_designer_rejected);
    ("faulty runs are seed-deterministic", `Quick,
     test_faulty_runs_are_seed_deterministic);
    ("faulty trace replays", `Quick, test_faulty_trace_replays);
    ("restart loses believed statuses", `Quick,
     test_restart_loses_believed_statuses);
    ("crash then recovery completes", `Quick, test_crash_then_recovery_completes);
  ]
