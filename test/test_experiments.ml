(* Tests for Adpm_experiments: the walkthrough reproduces the paper's
   published values; the aggregate experiments reproduce the directional
   claims at reduced seed counts. *)

open Adpm_experiments

let test_fig234_walkthrough () =
  let r = Exp_fig234.run () in
  let lo, hi = r.Exp_fig234.freq_ind_window in
  Alcotest.(check (float 1e-4)) "Freq-ind window low (paper 0.174255)" 0.174255 lo;
  Alcotest.(check (float 1e-4)) "Freq-ind window high (paper 0.5)" 0.5 hi;
  let wlo, whi = r.Exp_fig234.diff_pair_window in
  Alcotest.(check (float 1e-4)) "Diff-pair-W low (paper 2.5)" 2.5 wlo;
  Alcotest.(check (float 1e-3)) "Diff-pair-W high (paper 3.698225)" 3.698225 whi;
  Alcotest.(check int) "beta = 3 (Fig. 3)" 3 r.Exp_fig234.beta_diff_pair;
  Alcotest.(check int) "alpha = 2 (Fig. 4)" 2 r.Exp_fig234.alpha_after_conflicts;
  Alcotest.(check int) "one gain violation" 1
    (List.length r.Exp_fig234.violations_after_gain_choice);
  Alcotest.(check int) "one impedance violation" 1
    (List.length r.Exp_fig234.violations_after_tightening);
  Alcotest.(check int) "both fixed by one re-sizing" 2
    (List.length r.Exp_fig234.resolved_by_resize);
  Alcotest.(check int) "no violations remain" 0 r.Exp_fig234.remaining_violations;
  Alcotest.(check bool) "render works" true
    (String.length (Exp_fig234.render r) > 0)

let test_fig7_shape () =
  let r = Exp_fig7.run ~seeds:10 () in
  (* ADPM finds fewer violations, stops finding them earlier, and the run
     is shorter; it pays more evaluations per operation *)
  Alcotest.(check bool) "fewer violations" true
    (r.Exp_fig7.adpm_total_viol < r.Exp_fig7.conv_total_viol);
  Alcotest.(check bool) "violations stop earlier" true
    (r.Exp_fig7.adpm_last_violation_op <= r.Exp_fig7.conv_last_violation_op);
  Alcotest.(check bool) "shorter run on average" true
    (r.Exp_fig7.adpm_mean_ops < r.Exp_fig7.conv_mean_ops);
  Alcotest.(check bool) "render works" true
    (String.length (Exp_fig7.render r) > 0)

let test_fig8_series () =
  let r = Exp_fig8.run ~seed:2 () in
  Alcotest.(check int) "receiver has 30 constraints" 30 r.Exp_fig8.constraints;
  Alcotest.(check int) "receiver has 35 properties" 35 r.Exp_fig8.properties;
  Alcotest.(check bool) "completed" true r.Exp_fig8.completed;
  (* cumulative series are monotone *)
  let rec monotone = function
    | a :: (b :: _ as rest) ->
      a.Exp_fig8.cumulative_evaluations <= b.Exp_fig8.cumulative_evaluations
      && a.Exp_fig8.cumulative_spins <= b.Exp_fig8.cumulative_spins
      && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "cumulative monotone" true (monotone r.Exp_fig8.rows);
  Alcotest.(check bool) "render works" true (String.length (Exp_fig8.render r) > 0)

let test_fig9_claims () =
  let r = Exp_fig9.run ~seeds:10 () in
  let v = Exp_fig9.verdicts r in
  Alcotest.(check bool) "conventional >= 2x ops (sensor)" true
    (v.Exp_fig9.ops_ratio_sensor >= 2.);
  Alcotest.(check bool) "conventional >= 2x ops (receiver)" true
    (v.Exp_fig9.ops_ratio_receiver >= 2.);
  Alcotest.(check bool) "reduction larger for receiver" true
    v.Exp_fig9.reduction_larger_for_receiver;
  Alcotest.(check bool) "ADPM at least 3x less variable (receiver)" true
    (v.Exp_fig9.variability_ratio_receiver >= 3.);
  Alcotest.(check bool) "ADPM spins at most ~7% of conventional" true
    (v.Exp_fig9.spin_fraction <= 0.15);
  Alcotest.(check bool) "ADPM pays more evaluations (sensor)" true
    (v.Exp_fig9.eval_penalty_sensor > 1.);
  Alcotest.(check bool) "ADPM pays more evaluations (receiver)" true
    (v.Exp_fig9.eval_penalty_receiver > 1.);
  Alcotest.(check bool) "total penalty smaller for harder case" true
    v.Exp_fig9.penalty_smaller_for_receiver;
  Alcotest.(check bool) "per-op penalty exceeds total penalty" true
    (v.Exp_fig9.per_op_penalty_sensor > v.Exp_fig9.eval_penalty_sensor
    && v.Exp_fig9.per_op_penalty_receiver > v.Exp_fig9.eval_penalty_receiver);
  Alcotest.(check bool) "render works" true (String.length (Exp_fig9.render r) > 0)

let test_fig10_robustness () =
  let r = Exp_fig10.run ~seeds:3 ~sweep:[ 30.; 1000.; 3000. ] () in
  Alcotest.(check bool) "conventional varies more with tightness" true
    (r.Exp_fig10.conv_spread > r.Exp_fig10.adpm_spread);
  Alcotest.(check bool) "render works" true (String.length (Exp_fig10.render r) > 0)

let test_ablation () =
  let r = Exp_ablation.run ~seeds:3 ~instances:10 () in
  Alcotest.(check int) "eight TeamSim rows" 8 (List.length r.Exp_ablation.teamsim);
  Alcotest.(check int) "seven search rows" 7 (List.length r.Exp_ablation.search);
  (* the informed CSP orderings beat the lexicographic baseline *)
  let nodes h inf =
    (List.find
       (fun row ->
         row.Exp_ablation.heuristic = h && row.Exp_ablation.inference = inf)
       r.Exp_ablation.search)
      .Exp_ablation.mean_nodes
  in
  let fc = Adpm_csp.Search.Forward_check in
  Alcotest.(check bool) "min-domain beats lex" true
    (nodes Adpm_csp.Search.Min_domain fc < nodes Adpm_csp.Search.Lexicographic fc);
  Alcotest.(check bool) "dom/deg beats lex" true
    (nodes Adpm_csp.Search.Min_domain_over_degree fc
    < nodes Adpm_csp.Search.Lexicographic fc);
  Alcotest.(check bool) "MAC expands fewest nodes" true
    (nodes Adpm_csp.Search.Min_domain Adpm_csp.Search.Mac
    <= nodes Adpm_csp.Search.Min_domain fc);
  Alcotest.(check int) "three consistency rows" 3
    (List.length r.Exp_ablation.consistency);
  Alcotest.(check bool) "render works" true
    (String.length (Exp_ablation.render r) > 0)

let test_latency_sweep_smoke () =
  let r = Exp_latency.run ~seeds:3 ~latencies:[ 0; 2 ] () in
  Alcotest.(check int) "one point per latency" 2 (List.length r.Exp_latency.points);
  List.iter
    (fun p ->
      Alcotest.(check int) "conv cell has the runs" 3
        p.Exp_latency.p_conv.Adpm_teamsim.Report.a_runs;
      Alcotest.(check int) "adpm cell has the runs" 3
        p.Exp_latency.p_adpm.Adpm_teamsim.Report.a_runs)
    r.Exp_latency.points;
  let v = Exp_latency.verdicts r in
  Alcotest.(check int) "a ratio per latency" 2
    (List.length v.Exp_latency.ops_ratio_by_latency);
  Alcotest.(check bool) "finite ratio at zero" true
    (Float.is_finite v.Exp_latency.ratio_at_zero);
  Alcotest.(check bool) "render works" true
    (String.length (Exp_latency.render r) > 0)

let test_adapt_smoke () =
  let r = Exp_adapt.run ~seeds:2 () in
  Alcotest.(check int) "families x schedules" 9
    (List.length r.Exp_adapt.points);
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s plan is concrete" p.Exp_adapt.family
           p.Exp_adapt.schedule)
        true
        (String.length p.Exp_adapt.plan > 0);
      Alcotest.(check bool) "adpm completes under the shift" true
        (p.Exp_adapt.adpm.Exp_adapt.done_rate > 0.))
    r.Exp_adapt.points;
  Alcotest.(check bool) "adapt_advantage is finite" true
    (Float.is_finite r.Exp_adapt.adapt_advantage);
  Alcotest.(check bool) "render works" true
    (String.length (Exp_adapt.render r) > 0)

let suite =
  [
    ("Fig 2-4 walkthrough values", `Quick, test_fig234_walkthrough);
    ("latency sweep smoke", `Slow, test_latency_sweep_smoke);
    ("Fig 7 profile shape", `Slow, test_fig7_shape);
    ("Fig 8 statistics window", `Quick, test_fig8_series);
    ("Fig 9 headline claims", `Slow, test_fig9_claims);
    ("Fig 10 robustness", `Slow, test_fig10_robustness);
    ("ablations", `Slow, test_ablation);
    ("adaptability smoke", `Slow, test_adapt_smoke);
  ]
